// Textual graph format round-trip property (parse . print == identity on
// the test suite's whole random-graph distribution) plus the malformed
// corpus in tests/corpus/io: every file must be rejected with a ParseError
// whose line/column point at the offending token (docs/ERRORS.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "sdf/repetitions.h"
#include "util/status.h"

#include "test_util.h"

namespace sdf {
namespace {

using testing::random_consistent_graph;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(IoRoundTrip, ParsePrintIdentityOnRandomGraphs) {
  // print -> parse -> print must be byte-identical, and the reparsed graph
  // must be semantically equal (same structure, same repetitions vector).
  for (std::uint32_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Graph g = random_consistent_graph(seed, 4 + (seed % 9));
    const std::string text = write_graph_text(g);
    const Graph reparsed = parse_graph_text(text);
    EXPECT_EQ(write_graph_text(reparsed), text);

    ASSERT_EQ(reparsed.num_actors(), g.num_actors());
    ASSERT_EQ(reparsed.num_edges(), g.num_edges());
    for (std::size_t a = 0; a < g.num_actors(); ++a) {
      EXPECT_EQ(reparsed.actor(static_cast<ActorId>(a)).name,
                g.actor(static_cast<ActorId>(a)).name);
    }
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const Edge& lhs = reparsed.edge(static_cast<EdgeId>(e));
      const Edge& rhs = g.edge(static_cast<EdgeId>(e));
      EXPECT_EQ(lhs.src, rhs.src);
      EXPECT_EQ(lhs.snk, rhs.snk);
      EXPECT_EQ(lhs.prod, rhs.prod);
      EXPECT_EQ(lhs.cns, rhs.cns);
      EXPECT_EQ(lhs.delay, rhs.delay);
    }
    EXPECT_EQ(repetitions_vector(reparsed), repetitions_vector(g));
  }
}

TEST(IoRoundTrip, CrlfAndBomParseToTheSameGraph) {
  // A Windows-edited copy (CRLF + UTF-8 BOM) must parse to the exact
  // graph the plain text does — to_string round-trips prove it.
  const std::string plain = "graph g\nactor A\nactor B\nedge A B 2 3 1\n";
  const std::string crlf =
      "graph g\r\nactor A\r\nactor B\r\nedge A B 2 3 1\r\n";
  const std::string bom = "\xEF\xBB\xBF" + plain;
  const std::string expected = write_graph_text(parse_graph_text(plain));
  EXPECT_EQ(write_graph_text(parse_graph_text(crlf)), expected);
  EXPECT_EQ(write_graph_text(parse_graph_text(bom)), expected);
}

TEST(IoRoundTrip, CommentsAndBlankLinesAreIgnored) {
  const Graph g = parse_graph_text(
      "# leading comment\n"
      "graph demo\n"
      "\n"
      "actor A  # trailing comment\n"
      "actor B\n"
      "edge A B 2 3 1  # rates\n");
  EXPECT_EQ(g.name(), "demo");
  EXPECT_EQ(g.num_actors(), 2u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(static_cast<EdgeId>(0)).delay, 1);
}

struct ExpectedDiagnostic {
  int line;
  int column;
  const char* message_fragment;
};

/// Expectation table for tests/corpus/io. Every corpus file must appear
/// here, and every entry must have a corpus file — a mismatch in either
/// direction fails the test, keeping the corpus and the table in lockstep.
const std::map<std::string, ExpectedDiagnostic>& corpus_expectations() {
  static const std::map<std::string, ExpectedDiagnostic> table = {
      {"missing_graph_name.sdf", {1, 1, "graph needs a name"}},
      {"duplicate_actor.sdf", {3, 7, "duplicate actor"}},
      {"edge_too_few.sdf", {4, 1, "edge needs"}},
      {"edge_trailing.sdf", {4, 16, "trailing tokens"}},
      {"bad_rate.sdf", {4, 10, "must be an integer"}},
      {"unknown_actor_src.sdf", {4, 6, "unknown actor 'Z'"}},
      {"unknown_actor_snk.sdf", {4, 8, "unknown actor 'Z'"}},
      {"unknown_keyword.sdf", {2, 1, "unknown keyword"}},
      {"zero_rate.sdf", {4, 10, "rates must be positive"}},
      {"negative_delay.sdf", {4, 10, "delay must be non-negative"}},
      {"actor_without_name.sdf", {5, 1, "actor needs a name"}},
      // A file cut off mid-write (no trailing newline, edge missing its
      // rates) — the torn-file analogue of the batch journal's torn tail.
      {"truncated_edge.sdf", {4, 1, "edge needs"}},
      // CRLF line endings: the \r must count as whitespace, not shift the
      // reported column of the offending token.
      {"crlf_bad_rate.sdf", {4, 12, "must be an integer"}},
      // UTF-8 BOM is stripped, so the real error (line 2) is reported —
      // not a phantom unknown keyword at line 1.
      {"utf8_bom_unknown_keyword.sdf", {2, 1, "unknown keyword"}},
  };
  return table;
}

TEST(IoCorpus, EveryMalformedFileFailsWithPreciseLocation) {
  const std::filesystem::path dir = SDFMEM_CORPUS_DIR "/io";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);
    const auto it = corpus_expectations().find(name);
    ASSERT_NE(it, corpus_expectations().end())
        << "corpus file without an expectation entry";
    ++seen;

    const std::string text = read_file(entry.path());
    try {
      (void)parse_graph_text(text);
      FAIL() << "malformed corpus file parsed successfully";
    } catch (const ParseError& e) {
      const Diagnostic& diag = e.diagnostic();
      EXPECT_EQ(diag.code, ErrorCode::kParse);
      EXPECT_EQ(diag.loc.line, it->second.line);
      EXPECT_EQ(diag.loc.column, it->second.column);
      EXPECT_NE(diag.message.find(it->second.message_fragment),
                std::string::npos)
          << diag.message;
      // The human-facing message embeds the same position.
      EXPECT_NE(diag.message.find("line " + std::to_string(it->second.line)),
                std::string::npos)
          << diag.message;
    }
  }
  EXPECT_EQ(seen, corpus_expectations().size())
      << "expectation entry without a corpus file";
}

TEST(IoCorpus, CorpusFilesFailIdenticallyThroughLoadGraph) {
  // load_graph must surface the same diagnostics as parse_graph_text.
  const std::filesystem::path path =
      std::filesystem::path(SDFMEM_CORPUS_DIR) / "io" / "bad_rate.sdf";
  try {
    (void)load_graph(path.string());
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().loc.line, 4);
    EXPECT_EQ(e.diagnostic().loc.column, 10);
  }
}

TEST(IoRoundTrip, SaveLoadRoundTripOnDisk) {
  const Graph g = random_consistent_graph(77, 9);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "sdfmem_roundtrip.sdf";
  save_graph(g, path.string());
  const Graph loaded = load_graph(path.string());
  EXPECT_EQ(write_graph_text(loaded), write_graph_text(g));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sdf
