#include "alloc/first_fit.h"

#include <gtest/gtest.h>

#include "alloc/clique.h"
#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/apgan.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

BufferLifetime make_buffer(EdgeId e, std::int64_t width, std::int64_t start,
                           std::int64_t dur) {
  BufferLifetime b;
  b.edge = e;
  b.width = width;
  b.interval = PeriodicInterval::solid(start, dur);
  return b;
}

TEST(FirstFit, DisjointBuffersShareAddressZero) {
  std::vector<BufferLifetime> ls{make_buffer(0, 4, 0, 2),
                                 make_buffer(1, 4, 2, 2)};
  const IntersectionGraph wig = build_intersection_graph_generic(ls);
  const Allocation a = first_fit(wig, ls, FirstFitOrder::kInputOrder);
  EXPECT_EQ(a.offsets, (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(a.total_size, 4);
  EXPECT_TRUE(allocation_is_valid(wig, a));
}

TEST(FirstFit, OverlappingBuffersStack) {
  std::vector<BufferLifetime> ls{make_buffer(0, 3, 0, 4),
                                 make_buffer(1, 2, 2, 4)};
  const IntersectionGraph wig = build_intersection_graph_generic(ls);
  const Allocation a = first_fit(wig, ls, FirstFitOrder::kInputOrder);
  EXPECT_EQ(a.offsets[0], 0);
  EXPECT_EQ(a.offsets[1], 3);
  EXPECT_EQ(a.total_size, 5);
}

TEST(FirstFit, FillsGapBetweenNeighbors) {
  // Buffers 0 and 1 overlap everything; buffer 2 fits into the hole left
  // after buffer 1 dies... construct: 0 at [0,10) w3; 1 at [0,4) w2;
  // 2 at [5,9) w2 conflicts only with 0 -> placed at offset 3.
  std::vector<BufferLifetime> ls{make_buffer(0, 3, 0, 10),
                                 make_buffer(1, 2, 0, 4),
                                 make_buffer(2, 2, 5, 4)};
  const IntersectionGraph wig = build_intersection_graph_generic(ls);
  const Allocation a = first_fit(wig, ls, FirstFitOrder::kInputOrder);
  EXPECT_EQ(a.offsets[0], 0);
  EXPECT_EQ(a.offsets[1], 3);
  EXPECT_EQ(a.offsets[2], 3);  // reuses buffer 1's slot
  EXPECT_EQ(a.total_size, 5);
  EXPECT_TRUE(allocation_is_valid(wig, a));
}

TEST(FirstFit, GapTooSmallSkipsToNextHole) {
  std::vector<BufferLifetime> ls{make_buffer(0, 1, 0, 10),
                                 make_buffer(1, 3, 0, 10),
                                 make_buffer(2, 2, 0, 10)};
  const IntersectionGraph wig = build_intersection_graph_generic(ls);
  // Enumeration: 0 then 1 then 2: offsets 0, 1, 4 (no gap big enough).
  const Allocation a = first_fit(wig, ls, FirstFitOrder::kInputOrder);
  EXPECT_EQ(a.offsets, (std::vector<std::int64_t>{0, 1, 4}));
  EXPECT_EQ(a.total_size, 6);
}

TEST(FirstFit, EnumerationOrderByDuration) {
  std::vector<BufferLifetime> ls{make_buffer(0, 1, 0, 2),
                                 make_buffer(1, 1, 0, 9),
                                 make_buffer(2, 1, 0, 5)};
  const auto order = enumeration_order(ls, FirstFitOrder::kByDuration);
  EXPECT_EQ(order, (std::vector<std::int32_t>{1, 2, 0}));
}

TEST(FirstFit, EnumerationOrderByStart) {
  std::vector<BufferLifetime> ls{make_buffer(0, 1, 5, 2),
                                 make_buffer(1, 1, 0, 2),
                                 make_buffer(2, 1, 3, 2)};
  const auto order = enumeration_order(ls, FirstFitOrder::kByStartTime);
  EXPECT_EQ(order, (std::vector<std::int32_t>{1, 2, 0}));
}

TEST(FirstFit, EnumerationOrderByWidth) {
  std::vector<BufferLifetime> ls{make_buffer(0, 2, 0, 2),
                                 make_buffer(1, 9, 0, 2),
                                 make_buffer(2, 5, 0, 2)};
  const auto order = enumeration_order(ls, FirstFitOrder::kByWidth);
  EXPECT_EQ(order, (std::vector<std::int32_t>{1, 2, 0}));
}

TEST(FirstFit, AllOrdersProduceValidAllocations) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver()}) {
    const Repetitions q = repetitions_vector(g);
    const SdppoResult opt = sdppo(g, q, apgan(g, q).lexorder);
    const ScheduleTree tree(g, opt.schedule);
    const auto lifetimes = extract_lifetimes(g, q, tree);
    const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
    for (const FirstFitOrder order :
         {FirstFitOrder::kByDuration, FirstFitOrder::kByStartTime,
          FirstFitOrder::kByWidth, FirstFitOrder::kInputOrder}) {
      const Allocation a = first_fit(wig, lifetimes, order);
      EXPECT_TRUE(allocation_is_valid(wig, a)) << g.name();
      EXPECT_GE(a.total_size, mcw_optimistic(lifetimes)) << g.name();
    }
  }
}

TEST(FirstFit, NeverWorseThanSumOfWidths) {
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, apgan(g, q).lexorder);
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
  std::int64_t sum = 0;
  for (const BufferLifetime& b : lifetimes) sum += b.width;
  const Allocation a = first_fit(wig, lifetimes, FirstFitOrder::kByDuration);
  EXPECT_LE(a.total_size, sum);
}

TEST(AllocationIsValid, DetectsViolations) {
  std::vector<BufferLifetime> ls{make_buffer(0, 3, 0, 4),
                                 make_buffer(1, 2, 2, 4)};
  const IntersectionGraph wig = build_intersection_graph_generic(ls);
  Allocation bad;
  bad.offsets = {0, 1};  // overlapping ranges for conflicting buffers
  bad.total_size = 3;
  EXPECT_FALSE(allocation_is_valid(wig, bad));
  Allocation negative;
  negative.offsets = {-1, 3};
  negative.total_size = 5;
  EXPECT_FALSE(allocation_is_valid(wig, negative));
  Allocation short_total;
  short_total.offsets = {0, 3};
  short_total.total_size = 4;  // buffer 1 ends at 5
  EXPECT_FALSE(allocation_is_valid(wig, short_total));
  Allocation wrong_size;
  wrong_size.offsets = {0};
  EXPECT_FALSE(allocation_is_valid(wig, wrong_size));
}

TEST(FirstFit, EmptyInstance) {
  const IntersectionGraph wig;
  const Allocation a = first_fit_enumerated(wig, {});
  EXPECT_EQ(a.total_size, 0);
  EXPECT_TRUE(allocation_is_valid(wig, a));
}

}  // namespace
}  // namespace sdf
