#include "sched/rpmc.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/satellite.h"
#include "sched/sdppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(Rpmc, OrderIsTopological) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver(), qmf12(3)}) {
    const Repetitions q = repetitions_vector(g);
    const RpmcResult r = rpmc(g, q);
    EXPECT_TRUE(is_topological_order(g, r.lexorder)) << g.name();
    EXPECT_TRUE(is_valid_schedule(g, q, r.flat)) << g.name();
  }
}

TEST(Rpmc, ChainOrderIsTheChain) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const RpmcResult r = rpmc(g, q);
  EXPECT_EQ(r.lexorder, *chain_order(g));
}

TEST(Rpmc, PrefersCheapCut) {
  // src fans into an expensive chain and a cheap chain that rejoin; the
  // recursion must never put the two sides of a heavy edge far apart.
  // Minimal check: resulting order is topological and the flat SAS valid.
  Graph g;
  const ActorId s = g.add_actor("S");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId t = g.add_actor("T");
  g.add_edge(s, a, 10, 1);  // heavy: q(A) = 10 q(S)
  g.add_edge(s, b, 1, 1);
  g.add_edge(a, t, 1, 10);
  g.add_edge(b, t, 1, 1);
  const Repetitions q = repetitions_vector(g);
  const RpmcResult r = rpmc(g, q);
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
}

TEST(Rpmc, SingleActor) {
  Graph g;
  g.add_actor("A");
  const RpmcResult r = rpmc(g, {3});
  EXPECT_EQ(r.lexorder, (std::vector<ActorId>{0}));
  EXPECT_EQ(r.flat.firings(0), 3);
}

TEST(Rpmc, ThrowsOnCycle) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  g.connect(b, a);
  EXPECT_THROW(rpmc(g, {1, 1}), std::invalid_argument);
}

TEST(Rpmc, ThrowsOnEmptyGraph) { EXPECT_THROW(rpmc(Graph{}, {}), std::invalid_argument); }

TEST(Rpmc, DisconnectedGraphCovered) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 2, 3);
  // c isolated.
  (void)c;
  const Repetitions q = repetitions_vector(g);
  const RpmcResult r = rpmc(g, q);
  EXPECT_EQ(r.lexorder.size(), 3u);
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
}

TEST(Rpmc, BalanceBoundsRespectedOnMesh) {
  // On a 2x4 homogeneous mesh every prefix cut is legal with equal cost 2
  // (or less at component boundaries); recursion must still terminate and
  // cover all actors exactly once.
  Graph g;
  std::vector<ActorId> actors;
  const ActorId src = g.add_actor("src");
  const ActorId snk = g.add_actor("snk");
  for (int c = 0; c < 2; ++c) {
    ActorId prev = src;
    for (int i = 0; i < 4; ++i) {
      const ActorId x = g.add_actor("x" + std::to_string(c * 4 + i));
      g.connect(prev, x);
      prev = x;
    }
    g.connect(prev, snk);
  }
  const Repetitions q = repetitions_vector(g);
  const RpmcResult r = rpmc(g, q);
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
  EXPECT_TRUE(is_valid_schedule(g, q, r.flat));
}

TEST(Rpmc, RefinementNeverBreaksLegality) {
  // Dense-ish random-looking DAG; every recursion level must keep all
  // crossing edges oriented left -> right (equivalent: order topological).
  Graph g;
  std::vector<ActorId> v;
  for (int i = 0; i < 12; ++i) v.push_back(g.add_actor("n" + std::to_string(i)));
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; j += (i % 3) + 2) {
      g.add_edge(v[static_cast<std::size_t>(i)],
                 v[static_cast<std::size_t>(j)], 1, 1);
    }
  }
  const Repetitions q = repetitions_vector(g);
  const RpmcResult r = rpmc(g, q);
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
}

TEST(Rpmc, MultistartNeverWorseOnEstimate) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver(), qmf12(4)}) {
    const Repetitions q = repetitions_vector(g);
    const RpmcResult single = rpmc(g, q);
    const RpmcResult multi = rpmc_multistart(g, q);
    EXPECT_TRUE(is_topological_order(g, multi.lexorder)) << g.name();
    EXPECT_LE(sdppo(g, q, multi.lexorder).estimate,
              sdppo(g, q, single.lexorder).estimate)
        << g.name();
  }
  EXPECT_THROW(rpmc_multistart(cd_to_dat(), {147, 147, 98, 28, 32, 160}, {}),
               std::invalid_argument);
}

TEST(Rpmc, MultistartImprovesQmf125d) {
  // The motivating case: denominator 5 finds a dramatically better cut
  // structure than the default 3 on the depth-5 half-band bank.
  const Graph g = qmf12(5);
  const Repetitions q = repetitions_vector(g);
  const RpmcResult multi = rpmc_multistart(g, q);
  EXPECT_LT(sdppo(g, q, multi.lexorder).estimate,
            sdppo(g, q, rpmc(g, q).lexorder).estimate);
}

TEST(Rpmc, OptionsControlBalance) {
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  RpmcOptions opts;
  opts.balance_denominator = 2;
  opts.refine_passes = 1;
  const RpmcResult r = rpmc(g, q, opts);
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
}

}  // namespace
}  // namespace sdf
