// Telemetry subsystem: span nesting, counter aggregation, JSON round-trip,
// the disabled-path guard, and the pipeline's per-stage span contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "graphs/satellite.h"
#include "obs/counters.h"
#include "obs/json_report.h"
#include "obs/trace.h"
#include "pipeline/compile.h"

namespace sdf {
namespace {

/// Enables a fresh telemetry session for the test and disables it after,
/// so the global session never leaks into other tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

std::size_t count_spans(const std::string& name) {
  return static_cast<std::size_t>(
      std::count_if(obs::spans().begin(), obs::spans().end(),
                    [&](const obs::SpanRecord& r) { return r.name == name; }));
}

TEST_F(ObsTest, SpanNestingTracksDepth) {
  {
    obs::Span outer("outer");
    {
      obs::Span inner1("inner1");
    }
    {
      obs::Span inner2("inner2");
      obs::Span innermost("innermost");
    }
  }
  obs::Span after("after");

  ASSERT_EQ(obs::spans().size(), 5u);
  EXPECT_EQ(obs::spans()[0].name, "outer");
  EXPECT_EQ(obs::spans()[0].depth, 0);
  EXPECT_EQ(obs::spans()[1].name, "inner1");
  EXPECT_EQ(obs::spans()[1].depth, 1);
  EXPECT_EQ(obs::spans()[2].depth, 1);
  EXPECT_EQ(obs::spans()[3].name, "innermost");
  EXPECT_EQ(obs::spans()[3].depth, 2);
  EXPECT_EQ(obs::spans()[4].name, "after");
  EXPECT_EQ(obs::spans()[4].depth, 0);  // siblings of `outer` re-use depth 0
}

TEST_F(ObsTest, SpanTimestampsAreMonotonicAndNested) {
  {
    obs::Span outer("outer");
    obs::Span inner("inner");
  }
  const auto& spans = obs::spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto& outer = spans[0];
  const auto& inner = spans[1];
  EXPECT_GE(outer.start_ns, 0);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.start_ns, inner.end_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_GE(outer.duration_ns(), inner.duration_ns());
}

TEST_F(ObsTest, OpenSpanReportsZeroDuration) {
  obs::Span open("open");
  ASSERT_EQ(obs::spans().size(), 1u);
  EXPECT_EQ(obs::spans()[0].end_ns, -1);
  EXPECT_EQ(obs::spans()[0].duration_ns(), 0);
}

TEST_F(ObsTest, CountersAggregateAndGaugesOverwrite) {
  obs::count("t.counter", 3);
  obs::count("t.counter", 4);
  obs::count("t.other");
  obs::gauge("t.gauge", 10);
  obs::gauge("t.gauge", 7);

  EXPECT_EQ(obs::counter("t.counter"), 7);
  EXPECT_EQ(obs::counter("t.other"), 1);
  EXPECT_EQ(obs::counter("t.absent"), 0);
  EXPECT_EQ(obs::gauge_value("t.gauge"), 7);
  EXPECT_EQ(obs::counters().size(), 2u);
  EXPECT_EQ(obs::gauges().size(), 1u);
}

TEST_F(ObsTest, DisabledTracingAddsNoEntries) {
  obs::set_enabled(false);
  {
    obs::Span s("ignored");
    obs::count("ignored.counter", 5);
    obs::gauge("ignored.gauge", 5);
  }
  EXPECT_TRUE(obs::spans().empty());
  EXPECT_TRUE(obs::counters().empty());
  EXPECT_TRUE(obs::gauges().empty());

  // A full pipeline run must also leave the session untouched.
  (void)compile(satellite_receiver());
  EXPECT_TRUE(obs::spans().empty());
  EXPECT_TRUE(obs::counters().empty());
}

TEST_F(ObsTest, ResetClearsEverything) {
  {
    obs::Span s("span");
    obs::count("c", 1);
    obs::gauge("g", 1);
  }
  obs::reset();
  EXPECT_TRUE(obs::spans().empty());
  EXPECT_TRUE(obs::counters().empty());
  EXPECT_TRUE(obs::gauges().empty());
}

TEST(ObsJson, ScalarAndContainerRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["null"] = obs::Json();
  doc["true"] = true;
  doc["false"] = false;
  doc["int"] = std::int64_t{-12345678901234};
  doc["double"] = 2.5;
  doc["string"] = "with \"quotes\", \\slashes\\ and\nnewlines\tplus \x01";
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  obs::Json nested = obs::Json::object();
  nested["k"] = 3;
  arr.push_back(std::move(nested));
  doc["array"] = std::move(arr);

  for (const int indent : {-1, 0, 2}) {
    const std::string text = doc.dump(indent);
    const obs::Json parsed = obs::Json::parse(text);
    EXPECT_EQ(parsed, doc) << "indent=" << indent << "\n" << text;
  }
}

TEST(ObsJson, ObjectsPreserveInsertionOrder) {
  obs::Json doc = obs::Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[1].first, "alpha");
  // Re-assigning an existing key must not duplicate it.
  doc["zebra"] = 3;
  EXPECT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.find("zebra")->as_int(), 3);
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)obs::Json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("{\"a\":1} x"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("\"unterminated"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("tru"), std::invalid_argument);
}

TEST(ObsJson, ParsesNumbersAsIntOrDouble) {
  EXPECT_EQ(obs::Json::parse("42").type(), obs::Json::Type::kInt);
  EXPECT_EQ(obs::Json::parse("42").as_int(), 42);
  EXPECT_EQ(obs::Json::parse("-1e3").type(), obs::Json::Type::kDouble);
  EXPECT_DOUBLE_EQ(obs::Json::parse("2.5").as_double(), 2.5);
}

TEST_F(ObsTest, CompileEmitsOneSpanPerFig21Stage) {
  (void)compile(satellite_receiver());

  // Fig. 21: topological sort -> loop DP -> (simulate check) ->
  // lifetime extraction -> intersection graph -> allocation.
  EXPECT_EQ(count_spans("pipeline.stage.order"), 1u);
  EXPECT_EQ(count_spans("pipeline.compile"), 1u);
  EXPECT_EQ(count_spans("pipeline.stage.loop_dp"), 1u);
  EXPECT_EQ(count_spans("pipeline.stage.simulate"), 1u);
  EXPECT_EQ(count_spans("pipeline.stage.lifetimes"), 1u);
  EXPECT_EQ(count_spans("pipeline.stage.wig"), 1u);
  EXPECT_EQ(count_spans("pipeline.stage.allocate"), 1u);

  // Stage spans nest under the top-level compile span.
  for (const obs::SpanRecord& rec : obs::spans()) {
    if (rec.name.starts_with("pipeline.stage.") &&
        rec.name != "pipeline.stage.order") {
      EXPECT_GE(rec.depth, 1) << rec.name;
    }
    EXPECT_GE(rec.end_ns, rec.start_ns) << rec.name;
  }
}

TEST_F(ObsTest, CompilePopulatesCountersAcrossLayers) {
  (void)compile(satellite_receiver());  // default RPMC + SDPPO + first-fit

  // sched/ layer.
  EXPECT_GT(obs::counter("sched.rpmc.partitions"), 0);
  EXPECT_GT(obs::counter("sched.rpmc.cuts_considered"), 0);
  EXPECT_GT(obs::counter("sched.sdppo.cells"), 0);
  EXPECT_GT(obs::counter("sched.sdppo.splits"), 0);
  // alloc/ layer.
  EXPECT_GT(obs::counter("alloc.wig.pairs_checked"), 0);
  EXPECT_GT(obs::counter("alloc.first_fit.placements"), 0);
  EXPECT_GT(obs::counter("alloc.first_fit.probes"), 0);
  // pipeline/ layer.
  EXPECT_EQ(obs::counter("pipeline.compile.runs"), 1);
  EXPECT_GT(obs::gauge_value("pipeline.result.shared_size"), 0);
}

TEST_F(ObsTest, ReportCarriesSpansCountersAndGauges) {
  (void)compile(satellite_receiver());
  const obs::Json doc = obs::report();

  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "sdfmem.telemetry.v1");
  ASSERT_NE(doc.find("spans"), nullptr);
  EXPECT_GE(doc.find("spans")->size(), 6u);
  ASSERT_NE(doc.find("counters"), nullptr);
  EXPECT_GE(doc.find("counters")->size(), 8u);
  ASSERT_NE(doc.find("gauges"), nullptr);

  // The serialized report must survive a parse round-trip.
  const obs::Json reparsed = obs::Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);

  // Every span entry carries the schema's fields.
  const obs::Json& spans = *doc.find("spans");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::Json& s = spans.at(i);
    EXPECT_NE(s.find("name"), nullptr);
    EXPECT_NE(s.find("depth"), nullptr);
    EXPECT_NE(s.find("start_ns"), nullptr);
    EXPECT_NE(s.find("dur_ns"), nullptr);
  }
}

// ------------------------------------------------- string escaping paths

/// escape -> wrap in quotes -> parse must reproduce the input exactly.
std::string escape_roundtrip(const std::string& in) {
  const std::string doc = "\"" + obs::json_escape(in) + "\"";
  return obs::Json::parse(doc).as_string();
}

TEST(JsonEscape, RoundTripsEveryControlCharacter) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    EXPECT_EQ(escape_roundtrip(in), in) << "control char " << c;
  }
}

TEST(JsonEscape, RoundTripsQuotesBackslashesAndMixedText) {
  const std::string cases[] = {
      "",
      "plain",
      "say \"hi\"",
      "back\\slash",
      "tab\there\nnewline\rreturn",
      "bell\x07 vertical\x0b form\x0c",
      std::string("embedded\0nul", 12),
      "trailing backslash\\",
      "\\u0041 looks escaped but is literal text",
  };
  for (const std::string& in : cases) {
    EXPECT_EQ(escape_roundtrip(in), in);
  }
}

TEST(JsonEscape, RoundTripsHighBytesUntouched) {
  // Bytes >= 0x80 (UTF-8 continuation bytes) pass through unescaped.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x86\x92 done";
  EXPECT_EQ(obs::json_escape(utf8), utf8);
  EXPECT_EQ(escape_roundtrip(utf8), utf8);
}

TEST(JsonEscape, ControlCharsSerializeAsLowercaseU) {
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x1f')), "\\u001f");
  // The named short escapes win over \u for the classic whitespace ones.
  EXPECT_EQ(obs::json_escape("\b\f\n\r\t\"\\"),
            "\\b\\f\\n\\r\\t\\\"\\\\");
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(obs::Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(obs::Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(obs::Json::parse("\"\\u2192\"").as_string(), "\xe2\x86\x92");
  // Uppercase hex digits are accepted on input.
  EXPECT_EQ(obs::Json::parse("\"\\u001F\"").as_string(),
            std::string(1, '\x1f'));
  EXPECT_EQ(obs::Json::parse("\"\\/\"").as_string(), "/");
}

TEST(JsonParse, RejectsMalformedEscapes) {
  // Truncated \u sequences (the "bad \u escape" length path).
  EXPECT_THROW((void)obs::Json::parse("\"\\u12\""), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("\"\\u\""), std::invalid_argument);
  // Non-hex digits inside \u (the digit-validation path).
  EXPECT_THROW((void)obs::Json::parse("\"\\u12g4\""),
               std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("\"\\uzzzz\""),
               std::invalid_argument);
  // Unknown escape character.
  EXPECT_THROW((void)obs::Json::parse("\"\\q\""), std::invalid_argument);
  // Unterminated string / escape at end of input.
  EXPECT_THROW((void)obs::Json::parse("\"abc"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("\"abc\\"), std::invalid_argument);
}

TEST(JsonParse, EscapedKeysRoundTripThroughDump) {
  obs::Json doc = obs::Json::object();
  doc["line\nbreak \"key\""] = std::string("value\twith\ttabs");
  const obs::Json back = obs::Json::parse(doc.dump());
  EXPECT_EQ(back, doc);
  EXPECT_EQ(back.find("line\nbreak \"key\"")->as_string(),
            "value\twith\ttabs");
}

}  // namespace
}  // namespace sdf
