#include "sdf/throughput.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "sdf/transform.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(CriticalPath, ChainIsSumOfFiringTimes) {
  // fig2 chain A(3x) B(6x) C(2x): with unit exec times the longest
  // dependence chain is A_0 .. one token's path... compute directly and
  // sanity-bound: between max per-actor time and the full serialization.
  const Graph g = testing::fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const std::int64_t latency = critical_path_latency(g, q, {1, 1, 1});
  EXPECT_GE(latency, 3);   // at least one firing of each actor in a chain
  EXPECT_LE(latency, 11);  // never more than full serialization
}

TEST(CriticalPath, HomogeneousChainExact) {
  const Graph g = testing::chain({{1, 1}, {1, 1}, {1, 1}});
  const Repetitions q = repetitions_vector(g);
  EXPECT_EQ(critical_path_latency(g, q, {2, 3, 4, 5}), 14);
}

TEST(CriticalPath, ParallelBranchesTakeMax) {
  Graph g;
  const ActorId s = g.add_actor("s");
  const ActorId a = g.add_actor("a");
  const ActorId b = g.add_actor("b");
  const ActorId t = g.add_actor("t");
  g.connect(s, a);
  g.connect(s, b);
  g.connect(a, t);
  g.connect(b, t);
  EXPECT_EQ(critical_path_latency(g, {1, 1, 1, 1}, {1, 10, 2, 1}), 12);
}

TEST(CriticalPath, DelayEdgesDoNotConstrain) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1, 1);  // B reads last period's token
  EXPECT_EQ(critical_path_latency(g, {1, 1}, {5, 7}), 7);  // parallel
}

TEST(CriticalPath, MultiratePipelining) {
  // A -(2/1)-> B: q = (1, 2); B_1 waits for A_0's second token, both B
  // firings depend on A_0: latency = exec(A) + exec(B).
  const Graph g = testing::two_actor(2, 1);
  const Repetitions q = repetitions_vector(g);
  EXPECT_EQ(critical_path_latency(g, q, {4, 3}), 7);
}

TEST(CriticalPath, ValidatesArguments) {
  const Graph g = testing::two_actor(1, 1);
  EXPECT_THROW((void)critical_path_latency(g, {1, 1}, {1}),
               std::invalid_argument);
  const Graph big = cd_to_dat();
  EXPECT_THROW((void)critical_path_latency(big, repetitions_vector(big),
                                     {1, 1, 1, 1, 1, 1}, /*max_nodes=*/10),
               std::length_error);
}

TEST(IterationBound, AcyclicHasNone) {
  const Graph g = testing::fig2_graph();
  EXPECT_FALSE(iteration_bound(g, {1, 1, 1}).has_value());
}

TEST(IterationBound, SimpleLoopMean) {
  // A -> B -> A with 2 delays on the back edge: bound = (tA + tB) / 2.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  g.add_edge(b, a, 1, 1, 2);
  const auto bound = iteration_bound(g, {3, 4});
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->numerator, 7);
  EXPECT_EQ(bound->denominator, 2);
  EXPECT_DOUBLE_EQ(bound->value(), 3.5);
}

TEST(IterationBound, TakesTheWorstCycle) {
  // Two loops sharing A: A<->B (1 delay, weight 5) and A<->C (2 delays,
  // weight 12): means 5 and 6 -> bound 6.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.connect(a, b);
  g.add_edge(b, a, 1, 1, 1);
  g.connect(a, c);
  g.add_edge(c, a, 1, 1, 2);
  const auto bound = iteration_bound(g, {2, 3, 10});
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->numerator, 6);
  EXPECT_EQ(bound->denominator, 1);
}

TEST(IterationBound, SelfLoopState) {
  Graph g;
  const ActorId a = g.add_actor("A");
  g.add_edge(a, a, 1, 1, 1);
  const auto bound = iteration_bound(g, {9});
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->numerator, 9);
  EXPECT_EQ(bound->denominator, 1);
}

TEST(IterationBound, DelayFreeCycleThrows) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  g.connect(b, a);  // no delay: deadlock
  EXPECT_THROW((void)iteration_bound(g, {1, 1}), std::invalid_argument);
}

TEST(IterationBound, MultirateViaExpansion) {
  // Multirate loop: A -(2/1)-> B, B -(1/2)-> A with 4 delays; expand to
  // HSDF first. q = (1, 2); exec A=6, B=1 per firing.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 1);
  g.add_edge(b, a, 1, 2, 4);
  const Repetitions q = repetitions_vector(g);
  const HsdfExpansion x = expand_to_homogeneous(g, q);
  std::vector<std::int64_t> exec;
  for (ActorId original : x.actor_of) {
    exec.push_back(original == a ? 6 : 1);
  }
  const auto bound = iteration_bound(x.graph, exec);
  ASSERT_TRUE(bound.has_value());
  EXPECT_GT(bound->value(), 0.0);
}

TEST(IterationBound, ValidatesArguments) {
  const Graph g = testing::two_actor(1, 1);
  EXPECT_THROW((void)iteration_bound(g, {1}), std::invalid_argument);
  EXPECT_THROW((void)iteration_bound(g, {-1, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace sdf
