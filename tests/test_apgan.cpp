#include "sched/apgan.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/bounds.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(Apgan, ProducesValidSasOnChain) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const ApganResult r = apgan(g, q);
  EXPECT_TRUE(r.schedule.is_single_appearance(g.num_actors()));
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
}

TEST(Apgan, ClustersLargestGcdFirst) {
  // A -(1/1)-> B -(3/1)-> C: q = (1, 1, 3). gcd(A,B) = 1, gcd(B,C) = 1...
  // use q = (2, 2, 6): scale rates so gcd(A,B) = 2 dominates.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 1);  // q(A) = q(B)
  g.add_edge(b, c, 3, 1);  // q(C) = 3 q(B)
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{1, 1, 3}));
  const ApganResult r = apgan(g, q);
  // (A B) clusters first (gcd 1 everywhere, ties broken by id), giving
  // ((A)(B))(3C).
  EXPECT_EQ(r.schedule.to_string(g), "(A)(B)(3C)");
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST(Apgan, InnermostLoopsPairHeavyCommunicators) {
  // q = (6, 2, 3): gcd(A,B) = 2 > gcd(B,C) = 1 -> A,B cluster first:
  // schedule (2 (3A)(B))(3C).
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 3);  // q(A) = 3 q(B)
  g.add_edge(b, c, 3, 2);  // 3 q(B) = 2 q(C)
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{6, 2, 3}));
  const ApganResult r = apgan(g, q);
  EXPECT_EQ(r.schedule.to_string(g), "(2 (3A)(B))(3C)");
}

TEST(Apgan, AvoidsCycleCreatingMerge) {
  // A->B->C plus A->C. Merging (A, C) directly would create a cycle with
  // B; APGAN must pick a legal pair even if (A, C) had the best gcd.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 5);   // q(A) = 5 q(B)
  g.add_edge(b, c, 1, 1);   // q(C) = q(B)
  g.add_edge(a, c, 1, 5);   // consistent with above; gcd(q(A),q(C)) = 1
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{5, 1, 1}));
  const ApganResult r = apgan(g, q);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST(Apgan, CycleCheckBlocksIndirectPath) {
  // Give (A, C) the max gcd but an indirect path A->B->C; APGAN must skip
  // it and still terminate with a valid SAS.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 2);  // q(A) = 2 q(B)
  g.add_edge(b, c, 2, 1);  // q(C) = 2 q(B)
  g.add_edge(a, c, 1, 1);  // q(A) = q(C); gcd(q(A),q(C)) = 2 is max
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{2, 1, 2}));
  const ApganResult r = apgan(g, q);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  // lexorder must still be topological despite the blocked best pair.
  EXPECT_TRUE(is_topological_order(g, r.lexorder));
}

TEST(Apgan, SatelliteReceiverReproducesPaperStructure) {
  // The paper's APGAN schedule nests (4 source)(filter) pairs inside
  // 11x loops inside the 24x outer loop, with the 240-rate back end in a
  // 10x loop; our reconstruction must recover exactly those loop factors.
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  const ApganResult r = apgan(g, q);
  ASSERT_TRUE(is_valid_schedule(g, q, r.schedule));
  const std::string text = r.schedule.to_string(g);
  EXPECT_NE(text.find("(24 "), std::string::npos) << text;
  EXPECT_NE(text.find("(11 (4A)(B))"), std::string::npos) << text;
  EXPECT_NE(text.find("(11 (4D)(E))"), std::string::npos) << text;
  EXPECT_NE(text.find("(10 (N)(S)(J)(T)(U)(P))"), std::string::npos) << text;
  EXPECT_NE(text.find("(240W)"), std::string::npos) << text;
}

TEST(Apgan, DisconnectedComponentsConcatenate) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 2, 1);
  g.add_edge(c, d, 1, 3);
  const Repetitions q = repetitions_vector(g);
  const ApganResult r = apgan(g, q);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_EQ(r.schedule.firing_vector(4), q);
}

TEST(Apgan, ThrowsOnCyclicGraph) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  g.connect(b, a);
  EXPECT_THROW(apgan(g, {1, 1}), std::invalid_argument);
}

TEST(Apgan, ThrowsOnEmptyGraph) {
  EXPECT_THROW(apgan(Graph{}, {}), std::invalid_argument);
}

TEST(Apgan, SingleActor) {
  Graph g;
  g.add_actor("A");
  const ApganResult r = apgan(g, {4});
  EXPECT_EQ(r.schedule.firings(0), 4);
}

TEST(Apgan, AttainsBmlbOnUniformChain) {
  // For chains whose gcd structure is "coprime down the chain", APGAN is
  // BMLB-optimal [3]; verify on a simple instance.
  const Graph g = testing::chain({{1, 2}, {1, 2}, {1, 2}});
  const Repetitions q = repetitions_vector(g);  // (8,4,2,1)
  const ApganResult r = apgan(g, q);
  EXPECT_EQ(simulate(g, r.schedule).buffer_memory, bmlb(g));
}

}  // namespace
}  // namespace sdf
