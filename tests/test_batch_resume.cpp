// Crash-safety matrix for the batch service (docs/DURABILITY.md):
// journal round-trip and torn-tail recovery, SIGKILL-anywhere resume with
// byte-identical outputs, graceful shutdown, retry/watchdog tallies, and
// the explore checkpoint/restore contract. The `batch_kill` fault site is
// forced here (from fork()ed children — it raises SIGKILL), completing
// the closed-site coverage matrix started in test_faults.cpp.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "alloc/pool_checker.h"
#include "lifetime/lifetime_extract.h"
#include "lifetime/schedule_tree.h"
#include "obs/json_report.h"
#include "pipeline/batch.h"
#include "pipeline/explore.h"
#include "sdf/io.h"
#include "sdf/repetitions.h"
#include "util/fault.h"
#include "util/journal.h"
#include "util/shutdown.h"
#include "util/status.h"

#include "test_util.h"

namespace sdf {
namespace {

namespace fs = std::filesystem;
using sdf::testing::random_consistent_graph;

class BatchResume : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    util::reset_shutdown();
    char tmpl[] = "/tmp/sdfmem_batch_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    fault::clear();
    util::reset_shutdown();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& rel) const {
    return dir_ + "/" + rel;
  }

  /// Writes a seeded random graph as jobs/<name>.sdf and returns its path.
  std::string write_job(const std::string& name, std::uint32_t seed) {
    fs::create_directories(path("jobs"));
    const std::string p = path("jobs/" + name + ".sdf");
    std::ofstream out(p);
    out << write_graph_text(random_consistent_graph(seed, 5));
    EXPECT_TRUE(bool(out));
    return p;
  }

  static std::string read_file(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << p;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  /// Byte-compares every per-job output (and the summary) in two dirs.
  static void expect_same_outputs(const std::string& ref,
                                  const std::string& got) {
    for (const auto& entry : fs::directory_iterator(ref)) {
      const std::string name = entry.path().filename().string();
      if (name.find(".json") == std::string::npos) continue;
      SCOPED_TRACE(name);
      EXPECT_EQ(read_file(entry.path().string()), read_file(got + "/" + name));
    }
  }

  std::string dir_;
};

// --- journal layer ----------------------------------------------------

TEST_F(BatchResume, JournalRoundTripsAndTruncatesTornTail) {
  const std::string journal = path("j.journal");
  {
    util::JournalWriter w = util::JournalWriter::create(journal, "header");
    w.append("one");
    w.append(std::string(1000, 'x'));
    w.append("three");
  }
  util::RecoveredJournal rec = util::recover_journal(journal);
  EXPECT_FALSE(rec.torn_tail);
  ASSERT_EQ(rec.records.size(), 4u);
  EXPECT_EQ(rec.records[0], "header");
  EXPECT_EQ(rec.records[2], std::string(1000, 'x'));
  const std::uint64_t intact = rec.valid_bytes;

  // A torn append: length prefix promising 64 bytes, only 3 present.
  {
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    const char torn[] = {64, 0, 0, 0, 1, 2, 3, 4, 'a', 'b', 'c'};
    out.write(torn, sizeof torn);
  }
  rec = util::recover_journal(journal);
  EXPECT_TRUE(rec.torn_tail);
  ASSERT_EQ(rec.records.size(), 4u);  // intact prefix untouched
  EXPECT_EQ(rec.valid_bytes, intact);

  // Resuming truncates the tail and appends cleanly after it.
  {
    util::JournalWriter w =
        util::JournalWriter::append_to(journal, rec.valid_bytes);
    w.append("four");
  }
  rec = util::recover_journal(journal);
  EXPECT_FALSE(rec.torn_tail);
  ASSERT_EQ(rec.records.size(), 5u);
  EXPECT_EQ(rec.records[4], "four");
}

TEST_F(BatchResume, CorruptedRecordStopsRecoveryAtLastIntactOne) {
  const std::string journal = path("j.journal");
  {
    util::JournalWriter w = util::JournalWriter::create(journal, "header");
    w.append("one");
    w.append("two");
  }
  // Flip a payload byte of the last record: its CRC now fails, so
  // recovery must treat it (and everything after) as a torn tail.
  {
    std::fstream f(journal,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  const util::RecoveredJournal rec = util::recover_journal(journal);
  EXPECT_TRUE(rec.torn_tail);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[1], "one");
}

TEST_F(BatchResume, NonJournalsAreCorruptNotTorn) {
  const std::string bad = path("not_a_journal");
  std::ofstream(bad) << "definitely not SDFJRNL1 content";
  EXPECT_THROW((void)util::recover_journal(bad), CorruptJournalError);

  const std::string empty = path("empty");
  std::ofstream(empty).flush();
  EXPECT_THROW((void)util::recover_journal(empty), CorruptJournalError);

  EXPECT_THROW((void)util::recover_journal(path("missing")), IoError);

  // A corrupt journal carries the documented error code.
  try {
    (void)util::recover_journal(bad);
    FAIL();
  } catch (const CorruptJournalError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptJournal);
  }
}

TEST_F(BatchResume, CreateRefusesToOverwriteAJournal) {
  const std::string journal = path("j.journal");
  { (void)util::JournalWriter::create(journal, "h"); }
  EXPECT_THROW((void)util::JournalWriter::create(journal, "h"),
               BadArgumentError);
}

// --- scan_jobs ----------------------------------------------------------

TEST_F(BatchResume, ScanJobsHandlesDirsManifestsAndDuplicates) {
  write_job("b", 2);
  write_job("a", 1);
  const std::vector<BatchJob> from_dir = scan_jobs(path("jobs"));
  ASSERT_EQ(from_dir.size(), 2u);
  EXPECT_EQ(from_dir[0].name, "a");  // sorted, not directory order
  EXPECT_EQ(from_dir[1].name, "b");

  // Manifest: comments, blank lines, duplicate stems from different dirs.
  fs::create_directories(path("other"));
  fs::copy_file(path("jobs/a.sdf"), path("other/a.sdf"));
  std::ofstream manifest(path("list.txt"));
  manifest << "# a manifest\n\njobs/a.sdf\nother/a.sdf\njobs/b.sdf\n";
  manifest.close();
  const std::vector<BatchJob> from_manifest = scan_jobs(path("list.txt"));
  ASSERT_EQ(from_manifest.size(), 3u);
  EXPECT_EQ(from_manifest[0].name, "a");
  EXPECT_EQ(from_manifest[1].name, "a~2");  // deduplicated stem
  EXPECT_EQ(from_manifest[2].name, "b");

  EXPECT_THROW((void)scan_jobs(path("nowhere")), IoError);
  fs::create_directories(path("empty_dir"));
  EXPECT_THROW((void)scan_jobs(path("empty_dir")), BadArgumentError);
}

// --- explore checkpoint/restore ----------------------------------------

/// Fingerprint covering every deterministic field of an explore result.
std::string fingerprint(const ExploreResult& r) {
  std::ostringstream out;
  for (const DesignPoint& p : r.points) {
    out << p.strategy << "|" << p.code_size << "|" << p.shared_memory << "|"
        << p.nonshared_memory << "|" << p.pareto << "|" << p.degraded_from
        << "\n";
  }
  out << "frontier:";
  for (const DesignPoint& p : r.frontier) {
    out << " " << p.strategy << "(" << p.code_size << ","
        << p.shared_memory << ")";
  }
  out << "\ndropped:" << r.points_dropped
      << " retries:" << r.retries
      << " exhausted:" << r.retries_exhausted
      << " requeues:" << r.watchdog_requeues << "\n";
  return out.str();
}

TEST_F(BatchResume, ExploreRestoreReproducesTheRunByteForByte) {
  const Graph g = random_consistent_graph(11, 6);
  std::map<std::size_t, TaskOutcome> outcomes;
  std::mutex mu;
  ExploreOptions record;
  record.on_task_done = [&](std::size_t i, const TaskOutcome& o) {
    const std::lock_guard<std::mutex> lock(mu);
    outcomes[i] = o;
  };
  const ExploreResult reference = explore_designs(g, record);
  ASSERT_EQ(outcomes.size(),
            static_cast<std::size_t>(reference.tasks_total));

  // Full restore: nothing is evaluated, the output is identical.
  ExploreOptions restore_all;
  restore_all.restore = &outcomes;
  const ExploreResult restored = explore_designs(g, restore_all);
  EXPECT_EQ(restored.tasks_restored, reference.tasks_total);
  EXPECT_EQ(fingerprint(restored), fingerprint(reference));

  // Partial restore at several thread counts: still identical.
  std::map<std::size_t, TaskOutcome> half;
  for (const auto& [i, o] : outcomes) {
    if (i % 2 == 0) half[i] = o;
  }
  for (const int jobs : {1, 8}) {
    ExploreOptions partial;
    partial.restore = &half;
    partial.jobs = jobs;
    const ExploreResult r = explore_designs(g, partial);
    EXPECT_EQ(r.tasks_restored,
              static_cast<std::int64_t>(half.size()));
    EXPECT_EQ(fingerprint(r), fingerprint(reference)) << "jobs=" << jobs;
  }

  // The restored frontier's schedules round-tripped through text: prove
  // one end-to-end with the execution-level pool checker.
  const Repetitions q = repetitions_vector(g);
  bool checked = false;
  for (const DesignPoint& p : restored.frontier) {
    if (!p.schedule.is_single_appearance(g.num_actors())) continue;
    const ScheduleTree tree(g, p.schedule);
    const std::vector<BufferLifetime> lifetimes =
        extract_lifetimes(g, q, tree);
    const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
    const Allocation alloc =
        first_fit(wig, lifetimes, FirstFitOrder::kByDuration);
    const PoolCheckResult check = check_allocation_by_execution(
        g, p.schedule, lifetimes, alloc);
    EXPECT_TRUE(check.ok) << check.error;
    checked = true;
    break;
  }
  EXPECT_TRUE(checked) << "no SAS frontier point to validate";
}

TEST_F(BatchResume, RetriesAndWatchdogTalliesAreConsistent) {
  const Graph g = random_consistent_graph(3, 6);

  // Find a seed where the baseline sweep drops at least one task.
  std::uint64_t seed = 0;
  std::int64_t baseline_dropped = 0;
  for (std::uint64_t s = 1; s <= 64 && baseline_dropped == 0; ++s) {
    fault::configure("explore_point:4", s);
    baseline_dropped = explore_designs(g, {}).points_dropped;
    seed = s;
  }
  ASSERT_GT(baseline_dropped, 0) << "no seed dropped a task";

  // Retries re-draw the fault per attempt, so some drops recover; the
  // rest exhaust their retries.
  fault::configure("explore_point:4", seed);
  ExploreOptions with_retries;
  with_retries.max_point_retries = 3;
  const ExploreResult retried = explore_designs(g, with_retries);
  EXPECT_GT(retried.retries, 0);
  EXPECT_LE(retried.points_dropped, baseline_dropped);
  EXPECT_EQ(retried.retries_exhausted, retried.points_dropped);

  // The watchdog requeues exactly the exhausted tasks; each either lands
  // at the flat tier (requeued) or fails once more (dropped).
  fault::configure("explore_point:4", seed);
  ExploreOptions with_watchdog = with_retries;
  with_watchdog.watchdog_requeue = true;
  const ExploreResult requeued = explore_designs(g, with_watchdog);
  EXPECT_EQ(requeued.watchdog_requeues + requeued.points_dropped,
            retried.points_dropped);
  if (requeued.watchdog_requeues > 0) {
    bool saw_watchdog_point = false;
    for (const DesignPoint& p : requeued.points) {
      if (p.degraded_from.find(">watchdog") != std::string::npos) {
        saw_watchdog_point = true;
      }
    }
    EXPECT_TRUE(saw_watchdog_point);
  }

  // The whole retry/watchdog pipeline is thread-count independent.
  fault::configure("explore_point:4", seed);
  ExploreOptions parallel = with_watchdog;
  parallel.jobs = 8;
  const ExploreResult par = explore_designs(g, parallel);
  EXPECT_EQ(fingerprint(par), fingerprint(requeued));
}

TEST_F(BatchResume, ExploreCancelStopsAdmittingTasks) {
  const Graph g = random_consistent_graph(7, 6);
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> done{0};
  ExploreOptions options;
  options.cancel = &cancel;
  options.on_task_done = [&](std::size_t, const TaskOutcome&) {
    if (done.fetch_add(1) + 1 >= 3) cancel.store(true);
  };
  const ExploreResult r = explore_designs(g, options);
  EXPECT_TRUE(r.cancelled);
  EXPECT_GE(done.load(), 3);
  EXPECT_LT(done.load(), r.tasks_total);  // some tasks were never admitted
}

// --- batch crash matrix -------------------------------------------------

/// Recovers the finalized journal and asserts every (job, task) was
/// evaluated at most once across the original run and all resumes.
void expect_no_task_ran_twice(const std::string& done_journal) {
  const util::RecoveredJournal rec = util::recover_journal(done_journal);
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  std::set<std::int64_t> jobs_done;
  for (std::size_t i = 1; i < rec.records.size(); ++i) {
    const obs::Json r = obs::Json::parse(rec.records[i]);
    if (r.find("type") == nullptr) continue;
    if (r.find("type")->as_string() == "task") {
      const auto key = std::make_pair(r.find("job")->as_int(),
                                      r.find("task")->as_int());
      EXPECT_TRUE(seen.insert(key).second)
          << "task " << key.second << " of job " << key.first
          << " journaled twice";
    } else if (r.find("type")->as_string() == "job_done") {
      EXPECT_TRUE(jobs_done.insert(r.find("job")->as_int()).second)
          << "job finished twice";
    }
  }
}

TEST_F(BatchResume, SigkillAnywhereThenResumeIsByteIdentical) {
  write_job("alpha", 21);
  write_job("beta", 22);
  const std::vector<BatchJob> jobs = scan_jobs(path("jobs"));

  // Uninterrupted reference run.
  BatchOptions ref_opts;
  ref_opts.out_dir = path("ref");
  ref_opts.jobs = 2;
  const BatchResult ref = run_batch(jobs, ref_opts);
  EXPECT_TRUE(ref.all_ok());

  // Kill a child batch at a seeded journal append, then resume in this
  // process — alternating resume thread counts — and require the exact
  // reference bytes.
  int resume_jobs = 1;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string out = path("out" + std::to_string(seed));
    BatchOptions opts;
    opts.out_dir = out;
    opts.jobs = 2;

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: arm the SIGKILL site and run. _exit keeps gtest state out
      // of the child's teardown; reaching it means the kill never fired.
      fault::configure("batch_kill:6", seed);
      try {
        (void)run_batch(jobs, opts);
      } catch (...) {
        ::_exit(9);
      }
      ::_exit(7);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << status;
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    const BatchResult resumed =
        resume_batch(out + "/batch.journal", resume_jobs);
    resume_jobs = resume_jobs == 1 ? 8 : 1;
    EXPECT_TRUE(resumed.all_ok());
    EXPECT_EQ(resumed.jobs_total, ref.jobs_total);
    expect_same_outputs(path("ref"), out);
    expect_no_task_ran_twice(out + "/batch.journal.done");

    // Resuming a finalized batch is a no-op that reports completion.
    const BatchResult again = resume_batch(out + "/batch.journal");
    EXPECT_EQ(again.jobs_skipped + again.jobs_failed, again.jobs_total);
  }
}

TEST_F(BatchResume, SigtermDrainsCheckpointsAndResumes) {
  fs::create_directories(path("jobs"));
  for (int i = 0; i < 16; ++i) {
    write_job("g" + std::string(1, static_cast<char>('a' + i)), 31);
  }
  const std::vector<BatchJob> jobs = scan_jobs(path("jobs"));

  BatchOptions ref_opts;
  ref_opts.out_dir = path("ref");
  const BatchResult ref = run_batch(jobs, ref_opts);
  EXPECT_TRUE(ref.all_ok());

  BatchOptions opts;
  opts.out_dir = path("out");
  const std::string journal = path("out/batch.journal");

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    util::install_shutdown_handlers();
    try {
      const BatchResult r = run_batch(jobs, opts);
      ::_exit(r.interrupted ? 23 : 0);
    } catch (...) {
      ::_exit(9);
    }
  }
  // Wait for the journal to gain its first records, then ask the child
  // to stop. It may legitimately win the race and finish first.
  for (int spin = 0; spin < 2000; ++spin) {
    std::error_code ec;
    if (fs::exists(journal, ec) && fs::file_size(journal, ec) > 64) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(pid, SIGTERM);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  const int code = WEXITSTATUS(status);
  ASSERT_TRUE(code == 23 || code == 0) << "child exited " << code;

  if (code == 23) {
    const BatchResult resumed = resume_batch(journal);
    EXPECT_TRUE(resumed.all_ok());
    EXPECT_GT(resumed.jobs_skipped + resumed.jobs_ok, 0);
  }
  expect_same_outputs(path("ref"), path("out"));
  expect_no_task_ran_twice(journal + ".done");
}

TEST_F(BatchResume, ShutdownBeforeStartIsTypedInterrupted) {
  write_job("solo", 41);
  util::request_shutdown(SIGTERM);
  BatchOptions opts;
  opts.out_dir = path("out");
  try {
    (void)run_batch(scan_jobs(path("jobs")), opts);
    FAIL() << "expected InterruptedError";
  } catch (const InterruptedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInterrupted);
  }
  util::reset_shutdown();
}

TEST_F(BatchResume, RestartingAnInterruptedBatchIsRefused) {
  write_job("solo", 42);
  const std::vector<BatchJob> jobs = scan_jobs(path("jobs"));
  BatchOptions opts;
  opts.out_dir = path("out");
  const BatchResult r = run_batch(jobs, opts);
  EXPECT_TRUE(r.all_ok());
  // The finalized journal is gone, but a half-run one (simulated by
  // recreating it) must block a fresh `batch` at the same path.
  { (void)util::JournalWriter::create(path("out/batch.journal"), "stale"); }
  EXPECT_THROW((void)run_batch(jobs, opts), BadArgumentError);
}

}  // namespace
}  // namespace sdf
