#include "lifetime/schedule_tree.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sdf {
namespace {

using testing::fig2_graph;

TEST(ScheduleTree, PaperTimeBaseExample) {
  // Sec. 8.1: 2(A 3B) takes 4 time steps; first A at time 0, the 3B leaf
  // of the last iteration spans [3, 4).
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 3, 1);
  const Schedule s = Schedule::loop(
      2, {Schedule::leaf(a, 1), Schedule::leaf(b, 3)});
  const ScheduleTree tree(g, s);
  EXPECT_EQ(tree.total_duration(), 4);
  const TreeNode& leaf_a = tree.node(tree.leaf_of(a));
  const TreeNode& leaf_b = tree.node(tree.leaf_of(b));
  EXPECT_EQ(leaf_a.start, 0);
  EXPECT_EQ(leaf_a.dur, 1);
  EXPECT_EQ(leaf_b.start, 1);
  EXPECT_EQ(leaf_b.stop, 2);  // first iteration span
}

TEST(ScheduleTree, DurationsCompose) {
  // ((2 (3B)(5C))(7A)): dur(B)=dur(C)=1, inner loop dur = 2*(1+1)=4,
  // root = 1*(4+1) = 5.
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(2 (3B)(5C))(7A)");
  const ScheduleTree tree(g, s);
  EXPECT_EQ(tree.total_duration(), 5);
  EXPECT_EQ(tree.node(tree.root()).loop, 1);
  const TreeNode& root = tree.node(tree.root());
  EXPECT_EQ(tree.node(root.left).dur, 4);
  EXPECT_EQ(tree.node(root.right).dur, 1);
}

TEST(ScheduleTree, StartStopFirstIteration) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(2 (3B)(5C))(7A)");
  const ScheduleTree tree(g, s);
  const TreeNode& leaf_b = tree.node(tree.leaf_of(1));
  const TreeNode& leaf_c = tree.node(tree.leaf_of(2));
  const TreeNode& leaf_a = tree.node(tree.leaf_of(0));
  EXPECT_EQ(leaf_b.start, 0);
  EXPECT_EQ(leaf_c.start, 1);
  EXPECT_EQ(leaf_a.start, 4);
  EXPECT_EQ(leaf_a.stop, 5);
}

TEST(ScheduleTree, LeafResidualCountsAreOneStep) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(3A)(6B)(2C)");
  const ScheduleTree tree(g, s);
  EXPECT_EQ(tree.total_duration(), 3);  // three leaves, one step each
}

TEST(ScheduleTree, BinarizationPreservesLeafOrderAndTimes) {
  // A 4-leaf flat sequence binarizes right-leaning; starts must be 0,1,2,3.
  Graph g;
  std::vector<ActorId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(g.add_actor(std::string(1, static_cast<char>('A' + i))));
  }
  for (int i = 0; i + 1 < 4; ++i) g.connect(ids[static_cast<std::size_t>(i)],
                                            ids[static_cast<std::size_t>(i + 1)]);
  const Schedule s = parse_schedule(g, "A B C D");
  const ScheduleTree tree(g, s);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.node(tree.leaf_of(ids[static_cast<std::size_t>(i)])).start,
              i);
  }
}

TEST(ScheduleTree, LeastCommonParent) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(2 (3B)(5C))(7A)");
  const ScheduleTree tree(g, s);
  const TreeNodeId lb = tree.leaf_of(1);
  const TreeNodeId lc = tree.leaf_of(2);
  const TreeNodeId la = tree.leaf_of(0);
  const TreeNodeId bc = tree.least_common_parent(lb, lc);
  EXPECT_EQ(tree.node(bc).loop, 2);  // the (2 ...) loop
  EXPECT_EQ(tree.least_common_parent(lb, la), tree.root());
  EXPECT_EQ(tree.least_common_parent(lb, lb), lb);
}

TEST(ScheduleTree, AncestorQueries) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(2 (3B)(5C))(7A)");
  const ScheduleTree tree(g, s);
  const TreeNodeId lb = tree.leaf_of(1);
  EXPECT_TRUE(tree.is_ancestor_or_self(tree.root(), lb));
  EXPECT_TRUE(tree.is_ancestor_or_self(lb, lb));
  EXPECT_FALSE(tree.is_ancestor_or_self(lb, tree.root()));
  EXPECT_FALSE(tree.is_ancestor_or_self(lb, tree.leaf_of(2)));
}

TEST(ScheduleTree, IterationsOfMultipliesAncestorLoops) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  // (3 (2 (A)(B))): iterations of the inner loop node = 6.
  const Schedule s = Schedule::loop(
      3, {Schedule::loop(2, {Schedule::leaf(a), Schedule::leaf(b)})});
  const ScheduleTree tree(g, s);
  const TreeNodeId inner = tree.least_common_parent(tree.leaf_of(a),
                                                    tree.leaf_of(b));
  EXPECT_EQ(tree.iterations_of(inner), 6);
  EXPECT_EQ(tree.iterations_of(tree.leaf_of(a)), 6);
}

TEST(ScheduleTree, SingleChildLoopsMerge) {
  Graph g;
  const ActorId a = g.add_actor("A");
  // (3 (2A)) must collapse to a single 6A leaf.
  const Schedule s = Schedule::loop(3, {Schedule::leaf(a, 2)});
  const ScheduleTree tree(g, s);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.node(tree.root()).leaf_count, 6);
  EXPECT_EQ(tree.total_duration(), 1);
}

TEST(ScheduleTree, RejectsNonSas) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  const Schedule s = Schedule::sequence(
      {Schedule::leaf(a), Schedule::leaf(b), Schedule::leaf(a)});
  EXPECT_THROW(ScheduleTree(g, s), std::invalid_argument);
}

TEST(ScheduleTree, DepthsAreConsistent) {
  const Graph g = fig2_graph();
  const ScheduleTree tree(g, parse_schedule(g, "(3 (A)(2B))(2C)"));
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const TreeNode& n = tree.node(static_cast<TreeNodeId>(i));
    if (n.parent != kNoTreeNode) {
      EXPECT_EQ(n.depth, tree.node(n.parent).depth + 1);
    } else {
      EXPECT_EQ(n.depth, 0);
    }
    if (!n.is_leaf()) {
      EXPECT_EQ(tree.node(n.left).parent, static_cast<TreeNodeId>(i));
      EXPECT_EQ(tree.node(n.right).parent, static_cast<TreeNodeId>(i));
      EXPECT_EQ(n.dur, n.loop * (tree.node(n.left).dur +
                                 tree.node(n.right).dur));
    }
  }
}

}  // namespace
}  // namespace sdf
