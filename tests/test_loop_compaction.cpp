#include "sched/loop_compaction.h"

#include <gtest/gtest.h>

#include <random>

#include "graphs/cddat.h"
#include "sched/demand_driven.h"
#include "sdf/repetitions.h"
#include "test_util.h"

namespace sdf {
namespace {

std::vector<ActorId> ids(std::initializer_list<int> xs) {
  std::vector<ActorId> out;
  for (int x : xs) out.push_back(static_cast<ActorId>(x));
  return out;
}

TEST(LoopCompaction, SingleRunIsOneLeaf) {
  const CompactionResult r = compact_firing_sequence(ids({0, 0, 0, 0}));
  EXPECT_EQ(r.appearances, 1);
  EXPECT_TRUE(r.schedule.is_leaf());
  EXPECT_EQ(r.schedule.count(), 4);
}

TEST(LoopCompaction, AlternationBecomesLoop) {
  // ABABAB -> (3 (A)(B)): 2 appearances.
  const CompactionResult r =
      compact_firing_sequence(ids({0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(r.appearances, 2);
  EXPECT_EQ(r.schedule.flatten(), ids({0, 1, 0, 1, 0, 1}));
}

TEST(LoopCompaction, PaperSectionThreeExample) {
  // BCCBCC = 2(B(2C)) (Sec. 3's notation example): 2 appearances.
  const CompactionResult r =
      compact_firing_sequence(ids({1, 2, 2, 1, 2, 2}));
  EXPECT_EQ(r.appearances, 2);
  EXPECT_EQ(r.schedule.flatten(), ids({1, 2, 2, 1, 2, 2}));
}

TEST(LoopCompaction, NestedPeriodsFound) {
  // (AB AB C) x2 -> (2 (2 (A)(B))(C)): 3 appearances.
  const CompactionResult r = compact_firing_sequence(
      ids({0, 1, 0, 1, 2, 0, 1, 0, 1, 2}));
  EXPECT_EQ(r.appearances, 3);
  EXPECT_EQ(r.schedule.flatten(),
            ids({0, 1, 0, 1, 2, 0, 1, 0, 1, 2}));
}

TEST(LoopCompaction, FirThreadingRecoversHandLoop) {
  // The Sec. 12 FIR pattern over types: G G A G A G A -> G (3 (G)(A)):
  // 3 appearances (first gain + looped gain/add pair).
  const CompactionResult r =
      compact_firing_sequence(ids({1, 1, 2, 1, 2, 1, 2}));
  EXPECT_EQ(r.appearances, 3);
  EXPECT_EQ(r.schedule.flatten(), ids({1, 1, 2, 1, 2, 1, 2}));
}

TEST(LoopCompaction, IrregularSequenceStaysFlat) {
  const std::vector<ActorId> seq = ids({0, 1, 2, 0, 2, 1});
  const CompactionResult r = compact_firing_sequence(seq);
  EXPECT_EQ(r.appearances, 6);
  EXPECT_EQ(r.schedule.flatten(), seq);
}

TEST(LoopCompaction, MixedRunLengthsBlockNaiveLooping) {
  // A B A A B: runs (A,1)(B,1)(A,2)(B,1) — no period; 4 appearances.
  const CompactionResult r = compact_firing_sequence(ids({0, 1, 0, 0, 1}));
  EXPECT_EQ(r.appearances, 4);
  EXPECT_EQ(r.schedule.flatten(), ids({0, 1, 0, 0, 1}));
}

TEST(LoopCompaction, PrefersLoopOverSplitOnTies) {
  // AABB AABB: loop (2 (2A)(2B)) with 2 appearances.
  const CompactionResult r =
      compact_firing_sequence(ids({0, 0, 1, 1, 0, 0, 1, 1}));
  EXPECT_EQ(r.appearances, 2);
}

TEST(LoopCompaction, RejectsEmpty) {
  EXPECT_THROW(compact_firing_sequence({}), std::invalid_argument);
}

TEST(LoopCompaction, LengthGuard) {
  std::vector<ActorId> long_seq;
  for (int i = 0; i < 100; ++i) {
    long_seq.push_back(static_cast<ActorId>(i % 7));
  }
  EXPECT_THROW(compact_firing_sequence(long_seq, /*max_length=*/10),
               std::length_error);
}

TEST(LoopCompaction, RecompactNeverIncreasesAppearances) {
  const Graph g = testing::fig2_graph();
  for (const char* text :
       {"(3A)(6B)(2C)", "(3 (A)(2B))(2C)", "A 2B A B C A 3B C"}) {
    const Schedule s = parse_schedule(g, text);
    const CompactionResult r = recompact(s);
    EXPECT_LE(r.appearances, s.num_leaves()) << text;
    EXPECT_EQ(r.schedule.flatten(), s.flatten()) << text;
  }
}

TEST(LoopCompaction, CompressesDemandDrivenSchedules) {
  // The dynamic schedule of CD-DAT is 612 firings; compaction recovers a
  // looped form with far fewer appearances while firing identically.
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult dynamic = demand_driven_schedule(g, q);
  const CompactionResult r = compact_firing_sequence(dynamic.firing_seq);
  EXPECT_EQ(r.schedule.flatten(), dynamic.firing_seq);
  EXPECT_LE(r.appearances,
            static_cast<std::int64_t>(dynamic.firing_seq.size()) / 4);
}

TEST(LoopCompaction, RandomSequencesRoundTrip) {
  std::mt19937 rng(17);
  std::uniform_int_distribution<int> actor(0, 3);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<ActorId> seq;
    const int len = 1 + trial % 30;
    for (int i = 0; i < len; ++i) {
      seq.push_back(static_cast<ActorId>(actor(rng)));
    }
    const CompactionResult r = compact_firing_sequence(seq);
    EXPECT_EQ(r.schedule.flatten(), seq) << trial;
    EXPECT_LE(r.appearances, static_cast<std::int64_t>(seq.size()));
  }
}

}  // namespace
}  // namespace sdf
