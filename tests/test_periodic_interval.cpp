#include "lifetime/periodic_interval.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace sdf {
namespace {

/// Brute-force burst starts by enumerating all count combinations.
std::set<std::int64_t> all_starts(const PeriodicInterval& p) {
  std::set<std::int64_t> starts{p.first_start()};
  const auto& periods = p.periods();
  const auto& counts = p.counts();
  std::vector<std::int64_t> k(periods.size(), 0);
  while (true) {
    std::size_t i = 0;
    for (; i < k.size(); ++i) {
      if (++k[i] < counts[i]) break;
      k[i] = 0;
    }
    if (i == k.size()) break;
    std::int64_t s = p.first_start();
    for (std::size_t j = 0; j < k.size(); ++j) s += k[j] * periods[j];
    starts.insert(s);
  }
  return starts;
}

TEST(PeriodicInterval, SolidBasics) {
  const PeriodicInterval p = PeriodicInterval::solid(3, 4);
  EXPECT_FALSE(p.is_periodic());
  EXPECT_EQ(p.first_start(), 3);
  EXPECT_EQ(p.burst_duration(), 4);
  EXPECT_EQ(p.last_stop(), 7);
  EXPECT_EQ(p.occurrences(), 1);
  EXPECT_FALSE(p.live_at(2));
  EXPECT_TRUE(p.live_at(3));
  EXPECT_TRUE(p.live_at(6));
  EXPECT_FALSE(p.live_at(7));  // half-open
}

TEST(PeriodicInterval, PaperFig17BufferAB) {
  // start 0, dur 2, periods (4, 9), counts (2, 2):
  // live on [0,2), [4,6), [9,11), [13,15).
  const PeriodicInterval p(0, 2, {4, 9}, {2, 2});
  EXPECT_EQ(p.occurrences(), 4);
  EXPECT_EQ(p.last_stop(), 15);
  const std::set<std::int64_t> expect_starts{0, 4, 9, 13};
  EXPECT_EQ(all_starts(p), expect_starts);
  for (std::int64_t t = -2; t <= 16; ++t) {
    bool expected = false;
    for (std::int64_t s : expect_starts) expected |= (t >= s && t < s + 2);
    EXPECT_EQ(p.live_at(t), expected) << "t=" << t;
  }
}

TEST(PeriodicInterval, DropsCountOneComponents) {
  const PeriodicInterval p(0, 1, {5, 7}, {1, 2});
  EXPECT_EQ(p.periods().size(), 1u);
  EXPECT_EQ(p.periods()[0], 7);
}

TEST(PeriodicInterval, SortsComponentsAscending) {
  const PeriodicInterval p(0, 1, {9, 2}, {2, 3});
  EXPECT_EQ(p.periods(), (std::vector<std::int64_t>{2, 9}));
  EXPECT_EQ(p.counts(), (std::vector<std::int64_t>{3, 2}));
}

TEST(PeriodicInterval, RejectsMixedRadixViolation) {
  // (count-1)*2 = 4 >= 3: ambiguous decomposition must be rejected.
  EXPECT_THROW(PeriodicInterval(0, 1, {2, 3}, {3, 2}), std::invalid_argument);
}

TEST(PeriodicInterval, RejectsBadArguments) {
  EXPECT_THROW(PeriodicInterval(0, 0, {}, {}), std::invalid_argument);
  EXPECT_THROW(PeriodicInterval(0, 1, {2}, {}), std::invalid_argument);
  EXPECT_THROW(PeriodicInterval(0, 1, {0}, {2}), std::invalid_argument);
  EXPECT_THROW(PeriodicInterval(0, 1, {2}, {0}), std::invalid_argument);
}

TEST(PeriodicInterval, NextStartPaperIncrementExample) {
  // Sec. 8.4: periods (4, 13, 28), counts (2, 2, 2); after the burst at
  // 0*28 + 1*13 + 1*4 = 17 the next start is 28 (increment in the mixed
  // radix basis).
  const PeriodicInterval p(0, 2, {4, 13, 28}, {2, 2, 2});
  EXPECT_EQ(p.next_start_at_or_after(18), 28);
  EXPECT_EQ(p.next_start_at_or_after(17), 17);
  EXPECT_EQ(p.next_start_at_or_after(0), 0);
  EXPECT_EQ(p.next_start_at_or_after(-5), 0);
}

TEST(PeriodicInterval, NextStartExhaustive) {
  const PeriodicInterval p(3, 2, {4, 9}, {2, 2});
  const auto starts = all_starts(p);  // {3, 7, 12, 16}
  for (std::int64_t t = 0; t <= 20; ++t) {
    const auto expected = starts.lower_bound(t);
    const auto got = p.next_start_at_or_after(t);
    if (expected == starts.end()) {
      EXPECT_FALSE(got.has_value()) << t;
    } else {
      ASSERT_TRUE(got.has_value()) << t;
      EXPECT_EQ(*got, *expected) << t;
    }
  }
}

TEST(PeriodicInterval, NextStartPastEnd) {
  const PeriodicInterval p(0, 1, {4}, {3});
  EXPECT_EQ(p.next_start_at_or_after(8), 8);
  EXPECT_FALSE(p.next_start_at_or_after(9).has_value());
}

TEST(PeriodicInterval, OverlapsSolidPairs) {
  const auto a = PeriodicInterval::solid(0, 5);
  const auto b = PeriodicInterval::solid(4, 2);
  const auto c = PeriodicInterval::solid(5, 2);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));  // half-open: [0,5) and [5,7) disjoint
  EXPECT_FALSE(c.overlaps(a));
}

TEST(PeriodicInterval, OverlapsPeriodicDisjointLikeFig17) {
  // Buffers AB and CD of Fig. 17 interleave without overlap.
  const PeriodicInterval ab(0, 2, {4, 9}, {2, 2});
  const PeriodicInterval cd(2, 2, {4, 9}, {2, 2});
  EXPECT_FALSE(ab.overlaps(cd));
  EXPECT_FALSE(cd.overlaps(ab));
  // Shifting by one makes the tails collide.
  const PeriodicInterval cd_shift(1, 2, {4, 9}, {2, 2});
  EXPECT_TRUE(ab.overlaps(cd_shift));
}

TEST(PeriodicInterval, OverlapsPeriodicVsSolid) {
  const PeriodicInterval p(0, 2, {4}, {3});  // [0,2),[4,6),[8,10)
  EXPECT_TRUE(p.overlaps(PeriodicInterval::solid(5, 1)));
  EXPECT_FALSE(p.overlaps(PeriodicInterval::solid(2, 2)));
  EXPECT_FALSE(p.overlaps(PeriodicInterval::solid(10, 3)));
  EXPECT_TRUE(PeriodicInterval::solid(3, 2).overlaps(p));
}

TEST(PeriodicInterval, OverlapsMatchesBruteForce) {
  // Cross-check the two-pointer walk against dense enumeration.
  const std::vector<PeriodicInterval> instances = {
      PeriodicInterval(0, 2, {4, 9}, {2, 2}),
      PeriodicInterval(1, 1, {3}, {4}),
      PeriodicInterval(2, 3, {}, {}),
      PeriodicInterval(5, 2, {8}, {2}),
      PeriodicInterval(0, 1, {2, 8}, {2, 3}),
  };
  auto live_sets_intersect = [](const PeriodicInterval& x,
                                const PeriodicInterval& y) {
    for (std::int64_t t = -1; t < 40; ++t) {
      if (x.live_at(t) && y.live_at(t)) return true;
    }
    return false;
  };
  for (const auto& x : instances) {
    for (const auto& y : instances) {
      EXPECT_EQ(x.overlaps(y), live_sets_intersect(x, y));
    }
  }
}

TEST(PeriodicInterval, EqualityIsStructural) {
  EXPECT_EQ(PeriodicInterval(0, 2, {4}, {2}), PeriodicInterval(0, 2, {4}, {2}));
  EXPECT_NE(PeriodicInterval(0, 2, {4}, {2}), PeriodicInterval(1, 2, {4}, {2}));
}

}  // namespace
}  // namespace sdf
