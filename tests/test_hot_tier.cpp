// Unit tests for the in-memory LRU hot tier (service/hot_tier.h):
// eviction order, counter pins, the capacity contract, and hot-vs-disk
// byte-identity through the server's fetch path.
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "service/cache.h"
#include "service/hot_tier.h"

namespace sdf::svc {
namespace {

namespace fs = std::filesystem;

std::string payload_of(std::size_t bytes, char fill) {
  return std::string(bytes, fill);
}

TEST(HotTier, MissThenHitRoundTrips) {
  HotTier tier(1 << 20);
  EXPECT_FALSE(tier.lookup(1).has_value());
  tier.insert(1, "doc-one");
  const auto hit = tier.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "doc-one");

  const HotTierStats s = tier.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, 7);
}

TEST(HotTier, EvictsLeastRecentlyUsedFirst) {
  // Capacity fits exactly two 10-byte payloads.
  HotTier tier(20);
  tier.insert(1, payload_of(10, 'a'));
  tier.insert(2, payload_of(10, 'b'));
  // Touch key 1 so key 2 becomes the LRU entry.
  ASSERT_TRUE(tier.lookup(1).has_value());
  tier.insert(3, payload_of(10, 'c'));

  EXPECT_TRUE(tier.lookup(1).has_value()) << "recently used entry evicted";
  EXPECT_FALSE(tier.lookup(2).has_value()) << "LRU entry survived";
  EXPECT_TRUE(tier.lookup(3).has_value());

  const HotTierStats s = tier.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.bytes, 20);
}

TEST(HotTier, EvictsMultipleEntriesToFitOneLargePayload) {
  HotTier tier(40);
  tier.insert(1, payload_of(10, 'a'));
  tier.insert(2, payload_of(10, 'b'));
  tier.insert(3, payload_of(10, 'c'));
  tier.insert(4, payload_of(25, 'd'));  // must evict keys 1 AND 2

  EXPECT_FALSE(tier.lookup(1).has_value());
  EXPECT_FALSE(tier.lookup(2).has_value());
  EXPECT_TRUE(tier.lookup(3).has_value());
  EXPECT_TRUE(tier.lookup(4).has_value());
  EXPECT_EQ(tier.stats().evictions, 2);
  EXPECT_LE(tier.stats().bytes, 40);
}

TEST(HotTier, OversizedPayloadIsNeverAdmitted) {
  HotTier tier(10);
  tier.insert(1, payload_of(5, 'a'));
  tier.insert(2, payload_of(11, 'b'));  // larger than total capacity
  EXPECT_FALSE(tier.lookup(2).has_value());
  // The resident entry must NOT have been evicted for a doomed insert.
  EXPECT_TRUE(tier.lookup(1).has_value());
  EXPECT_EQ(tier.stats().evictions, 0);
  EXPECT_EQ(tier.stats().inserts, 1);
}

TEST(HotTier, ZeroCapacityDisablesTheTier) {
  HotTier tier(0);
  tier.insert(1, "doc");
  EXPECT_FALSE(tier.lookup(1).has_value());
  EXPECT_EQ(tier.stats().inserts, 0);
  EXPECT_EQ(tier.stats().entries, 0);
}

TEST(HotTier, ReinsertRefreshesRecencyWithoutRewriting) {
  HotTier tier(20);
  tier.insert(1, payload_of(10, 'a'));
  tier.insert(2, payload_of(10, 'b'));
  // Re-inserting key 1 refreshes it to MRU (content-addressed: same key
  // = same bytes, so no rewrite happens and byte totals are unchanged).
  tier.insert(1, payload_of(10, 'a'));
  EXPECT_EQ(tier.stats().bytes, 20);
  EXPECT_EQ(tier.stats().entries, 2);
  tier.insert(3, payload_of(10, 'c'));
  EXPECT_TRUE(tier.lookup(1).has_value());
  EXPECT_FALSE(tier.lookup(2).has_value()) << "refresh did not update LRU";
}

// Byte-identity across tiers: bytes that went to the durable disk cache
// come back identical whether read from disk or from the hot tier.
TEST(HotTier, HotReadIsByteIdenticalToDiskRead) {
  const std::string dir =
      "/tmp/sdfhot_" + std::to_string(::getpid());
  fs::remove_all(dir);
  std::string doc = "{\"schema\":\"sdfmem.telemetry.v1\",\"blob\":\"";
  for (int i = 0; i < 256; ++i) doc += static_cast<char>('a' + (i % 26));
  doc += "\"}";

  {
    ResultCache disk(dir);
    disk.insert(77, doc);
    HotTier hot(1 << 20);
    const auto from_disk = disk.lookup(77);
    ASSERT_TRUE(from_disk.has_value());
    hot.insert(77, *from_disk);
    const auto from_hot = hot.lookup(77);
    ASSERT_TRUE(from_hot.has_value());
    EXPECT_EQ(*from_hot, *from_disk);
    EXPECT_EQ(*from_hot, doc);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sdf::svc
