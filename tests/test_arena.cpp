// Unit + property tests for the DP bump arena (util/arena.h): alignment
// for every POD the DP tables allocate, scoped reset reuse, high-water
// accounting, the STL allocator adapter, and the OOM path raising the
// same typed dp_mem diagnostic the legacy DpMemoryCharge produced.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "pipeline/governor.h"
#include "sched/chain_dp.h"
#include "util/fault.h"
#include "util/status.h"

namespace sdf {
namespace {

class Arena : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

template <typename T>
bool aligned(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0;
}

TEST_F(Arena, AlignsEveryPodUsedByTheDpTables) {
  util::Arena a("test.arena");
  // Interleave oddly-sized byte allocations to force misaligned bump
  // offsets before each typed allocation.
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (int round = 0; round < 200; ++round) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    (void)a.allocate(1 + (rng >> 33) % 7, 1);
    switch (round % 5) {
      case 0:
        EXPECT_TRUE(aligned(a.alloc_array<std::int32_t>(3)));
        break;
      case 1:
        EXPECT_TRUE(aligned(a.alloc_array<std::int64_t>(5)));
        break;
      case 2:
        EXPECT_TRUE(aligned(a.alloc_array<std::uint32_t>(7)));
        break;
      case 3:
        EXPECT_TRUE(aligned(a.alloc_array<std::size_t>(2)));
        break;
      case 4:
        EXPECT_TRUE(aligned(a.alloc_array<CostTriple>(4)));
        break;
    }
  }
}

TEST_F(Arena, AllocationsDoNotOverlapAndHoldTheirBytes) {
  util::Arena a("test.arena");
  std::vector<std::int64_t*> blocks;
  for (std::int64_t v = 0; v < 64; ++v) {
    std::int64_t* p = a.alloc_array<std::int64_t>(16);
    std::fill_n(p, 16, v);
    blocks.push_back(p);
  }
  for (std::int64_t v = 0; v < 64; ++v) {
    for (int i = 0; i < 16; ++i) EXPECT_EQ(blocks[v][i], v);
  }
}

TEST_F(Arena, ZeroByteAllocationIsValidAndFree) {
  util::Arena a("test.arena");
  void* p = a.allocate(0);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(a.stats().bytes_in_use, 0);
  EXPECT_EQ(a.stats().chunk_allocs, 0);
}

TEST_F(Arena, ScopedResetReusesTheChunkInsteadOfGrowing) {
  util::Arena a("test.arena");
  for (int round = 0; round < 50; ++round) {
    const util::Arena::Scope scope(a);
    (void)a.alloc_array<std::int64_t>(1024);  // 8 KiB per round
  }
  // 50 rounds x 8 KiB fit one reused 16 KiB chunk thanks to the scoped
  // rewind; without it the arena would hold ~400 KiB.
  EXPECT_EQ(a.stats().chunk_allocs, 1);
  EXPECT_EQ(a.stats().bytes_in_use, 0);
  EXPECT_EQ(a.stats().allocs, 50);
}

TEST_F(Arena, MarkerRewindDropsOnlyWhatCameAfter) {
  util::Arena a("test.arena");
  std::int64_t* keep = a.alloc_array<std::int64_t>(8);
  std::fill_n(keep, 8, 42);
  const util::Arena::Marker m = a.mark();
  const std::int64_t live_at_mark = a.stats().bytes_in_use;
  (void)a.alloc_array<std::int64_t>(256);
  a.rewind(m);
  EXPECT_EQ(a.stats().bytes_in_use, live_at_mark);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(keep[i], 42);
  // The next allocation reuses the rewound space.
  const std::int64_t chunks_before = a.stats().chunk_allocs;
  (void)a.alloc_array<std::int64_t>(256);
  EXPECT_EQ(a.stats().chunk_allocs, chunks_before);
}

TEST_F(Arena, HighWaterTracksThePeakNotThePresent) {
  util::Arena a("test.arena");
  (void)a.alloc_array<std::int64_t>(512);  // 4 KiB
  (void)a.alloc_array<std::int64_t>(512);  // peak: 8 KiB
  const std::int64_t peak = a.stats().high_water;
  EXPECT_GE(peak, 8 * 1024);
  a.reset();
  EXPECT_EQ(a.stats().bytes_in_use, 0);
  EXPECT_EQ(a.stats().resets, 1);
  (void)a.alloc_array<std::int64_t>(16);
  EXPECT_EQ(a.stats().high_water, peak);  // smaller round keeps the peak
  EXPECT_LT(a.stats().bytes_in_use, peak);
}

TEST_F(Arena, OversizeRequestGetsADedicatedChunk) {
  util::Arena a("test.arena");
  (void)a.alloc_array<std::int64_t>(8);
  const auto huge =
      static_cast<std::size_t>(util::Arena::kMinChunkBytes) * 4;
  std::byte* p = static_cast<std::byte*>(a.allocate(huge));
  std::memset(p, 0xab, huge);
  EXPECT_EQ(a.stats().oversize_chunks, 1);
  EXPECT_GE(a.stats().chunk_bytes, static_cast<std::int64_t>(huge));
}

TEST_F(Arena, ArenaVectorGrowsFromTheArenaAndReadsBack) {
  util::Arena a("test.arena");
  util::ArenaVector<std::int64_t> v{util::ArenaAllocator<std::int64_t>(&a)};
  for (std::int64_t i = 0; i < 10000; ++i) v.push_back(i * i);
  for (std::int64_t i = 0; i < 10000; ++i) EXPECT_EQ(v[i], i * i);
  EXPECT_GT(a.stats().allocs, 0);
  EXPECT_GT(a.stats().bytes_in_use, 0);
  // Heap-fallback mode: a default allocator never touches an arena.
  util::ArenaVector<std::int64_t> heap;
  heap.assign(100, 7);
  EXPECT_EQ(std::accumulate(heap.begin(), heap.end(), std::int64_t{0}),
            700);
  EXPECT_EQ(heap.get_allocator().arena(), nullptr);
  EXPECT_FALSE(heap.get_allocator() == v.get_allocator());
}

TEST_F(Arena, MemoryBudgetTripRaisesTheTypedDpMemDiagnostic) {
  ResourceGovernor governor(ResourceBudget{0, /*dp_mem_bytes=*/64});
  const ResourceGovernor::Scope scope(governor);
  util::Arena a("test.arena");
  try {
    (void)a.alloc_array<std::int64_t>(1024);
    FAIL() << "expected ResourceExhaustedError";
  } catch (const ResourceExhaustedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    EXPECT_NE(std::string(e.what()).find("test.arena"), std::string::npos);
  }
  // The failed acquisition holds nothing; release() leaves the governor's
  // accounting clean either way.
  a.release();
  EXPECT_EQ(governor.dp_bytes_in_use(), 0);
  EXPECT_EQ(a.stats().chunk_allocs, 0);
}

TEST_F(Arena, InjectedDpMemFaultFiresOnChunkAcquisition) {
  fault::configure("dp_mem:1", 0);
  util::Arena a("test.arena");
  EXPECT_THROW((void)a.alloc_array<std::int64_t>(8),
               ResourceExhaustedError);
  EXPECT_EQ(fault::fire_count("dp_mem"), 1);
  // The site fired once per context; the next acquisition proceeds.
  std::int64_t* p = a.alloc_array<std::int64_t>(8);
  EXPECT_NE(p, nullptr);
}

TEST_F(Arena, ReleaseReturnsEveryChargedByteToTheGovernor) {
  ResourceGovernor governor(ResourceBudget{0, /*dp_mem_bytes=*/1 << 30});
  const ResourceGovernor::Scope scope(governor);
  {
    util::Arena a("test.arena");
    (void)a.alloc_array<std::int64_t>(4096);
    EXPECT_GT(governor.dp_bytes_in_use(), 0);
    EXPECT_EQ(governor.dp_bytes_in_use(), a.stats().chunk_bytes);
    a.release();
    EXPECT_EQ(governor.dp_bytes_in_use(), 0);
    EXPECT_EQ(a.stats().chunk_bytes, 0);
    // The arena is reusable after release(); charges re-accumulate.
    (void)a.alloc_array<std::int64_t>(16);
    EXPECT_GT(governor.dp_bytes_in_use(), 0);
  }
  // Destruction of the arena (its DpMemoryCharge) releases the rest.
  EXPECT_EQ(governor.dp_bytes_in_use(), 0);
}

}  // namespace
}  // namespace sdf
