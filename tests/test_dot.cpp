#include "sdf/dot.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "lifetime/lifetime_extract.h"
#include "pipeline/compile.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(Dot, GraphExportContainsActorsAndRates) {
  const Graph g = testing::fig1_graph(/*with_delay=*/true);
  const std::string dot = graph_to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
  EXPECT_NE(dot.find("2/1 (1D)"), std::string::npos);
  EXPECT_NE(dot.find("1/3"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, GraphExportBalancedBraces) {
  const std::string dot = graph_to_dot(cd_to_dat());
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
  // One edge line per graph edge.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '>'),
            static_cast<std::ptrdiff_t>(cd_to_dat().num_edges()));
}

TEST(Dot, ScheduleTreeExportShowsLoopsAndSpans) {
  const Graph g = testing::fig2_graph();
  const ScheduleTree tree(g, parse_schedule(g, "(3 (A)(2B))(2C)"));
  const std::string dot = schedule_tree_to_dot(g, tree);
  EXPECT_NE(dot.find("x3"), std::string::npos);   // the 3x loop
  EXPECT_NE(dot.find("(2B)"), std::string::npos);  // residual leaf factor
  EXPECT_NE(dot.find("[0,"), std::string::npos);   // spans
}

TEST(Dot, LifetimeGanttMarksLiveColumns) {
  const Graph g = testing::fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const ScheduleTree tree(g, parse_schedule(g, "(3 (A)(2B))(2C)"));
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const std::string chart =
      lifetime_gantt(g, lifetimes, tree.total_duration());
  // Period 7 fits uncompressed: A->B live on steps 0-5 (3 bursts of 2),
  // B->C on 1-6.
  EXPECT_NE(chart.find("A->B ######."), std::string::npos) << chart;
  EXPECT_NE(chart.find("B->C .######"), std::string::npos) << chart;
  EXPECT_NE(chart.find("w=10"), std::string::npos);
}

TEST(Dot, LifetimeGanttDownsamplesLongPeriods) {
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  const ScheduleTree tree(g, res.schedule);
  const std::string chart = lifetime_gantt(
      g, res.lifetimes, tree.total_duration(), &res.allocation, 40);
  // Row lines stay within label + 40 columns + annotations.
  EXPECT_NE(chart.find("@"), std::string::npos);  // offsets annotated
  EXPECT_NE(chart.find("steps/col"), std::string::npos);
}

TEST(Dot, LifetimeGanttEmptyPeriod) {
  const Graph g = testing::fig2_graph();
  EXPECT_TRUE(lifetime_gantt(g, {}, 0).empty());
}

TEST(Dot, AllocationTextListsAllBuffers) {
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  const std::string text =
      allocation_to_text(g, res.lifetimes, res.allocation);
  EXPECT_NE(text.find("pool size: " + std::to_string(res.shared_size)),
            std::string::npos);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(text.find(g.actor(e.src).name + "->" + g.actor(e.snk).name),
              std::string::npos);
  }
}

}  // namespace
}  // namespace sdf
