#include "sdf/graph.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace sdf {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_actors(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AddActorAssignsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_actor("A"), 0);
  EXPECT_EQ(g.add_actor("B"), 1);
  EXPECT_EQ(g.add_actor("C"), 2);
  EXPECT_EQ(g.actor(1).name, "B");
}

TEST(Graph, AddEdgeStoresRates) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const EdgeId e = g.add_edge(a, b, 3, 5, 2);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).snk, b);
  EXPECT_EQ(g.edge(e).prod, 3);
  EXPECT_EQ(g.edge(e).cns, 5);
  EXPECT_EQ(g.edge(e).delay, 2);
}

TEST(Graph, ConnectIsHomogeneous) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const EdgeId e = g.connect(a, b);
  EXPECT_EQ(g.edge(e).prod, 1);
  EXPECT_EQ(g.edge(e).cns, 1);
  EXPECT_EQ(g.edge(e).delay, 0);
}

TEST(Graph, RejectsInvalidActorIds) {
  Graph g;
  const ActorId a = g.add_actor("A");
  EXPECT_THROW(g.add_edge(a, 7, 1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, a, 1, 1), std::invalid_argument);
}

TEST(Graph, RejectsNonPositiveRates) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  EXPECT_THROW(g.add_edge(a, b, 0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, 1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, -2, 1), std::invalid_argument);
}

TEST(Graph, RejectsNegativeDelay) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  EXPECT_THROW(g.add_edge(a, b, 1, 1, -1), std::invalid_argument);
}

TEST(Graph, OutAndInEdgesTrackMultiEdges) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const EdgeId e1 = g.add_edge(a, b, 1, 1);
  const EdgeId e2 = g.add_edge(a, b, 2, 2);
  ASSERT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.out_edges(a)[0], e1);
  EXPECT_EQ(g.out_edges(a)[1], e2);
  ASSERT_EQ(g.in_edges(b).size(), 2u);
  EXPECT_TRUE(g.out_edges(b).empty());
  EXPECT_TRUE(g.in_edges(a).empty());
}

TEST(Graph, FindEdgeReturnsFirstMatch) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const EdgeId ab = g.add_edge(a, b, 1, 1);
  g.add_edge(a, c, 1, 1);
  EXPECT_EQ(g.find_edge(a, b), ab);
  EXPECT_FALSE(g.find_edge(b, a).has_value());
  EXPECT_FALSE(g.find_edge(c, b).has_value());
}

TEST(Graph, FindActorByName) {
  Graph g;
  g.add_actor("alpha");
  const ActorId beta = g.add_actor("beta");
  EXPECT_EQ(g.find_actor("beta"), beta);
  EXPECT_FALSE(g.find_actor("gamma").has_value());
}

TEST(Graph, AccessorsThrowOnBadIds) {
  Graph g;
  g.add_actor("A");
  EXPECT_THROW((void)g.actor(3), std::out_of_range);
  EXPECT_THROW((void)g.edge(0), std::out_of_range);
  EXPECT_THROW((void)g.out_edges(-1), std::out_of_range);
  EXPECT_THROW((void)g.in_edges(9), std::out_of_range);
}

TEST(Graph, SelfLoopAllowed) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const EdgeId e = g.add_edge(a, a, 2, 2, 2);
  EXPECT_EQ(g.edge(e).src, g.edge(e).snk);
  EXPECT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.in_edges(a).size(), 1u);
}

TEST(Graph, PrintingListsEdges) {
  Graph g("demo");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 3, 1);
  std::ostringstream os;
  os << g;
  const std::string text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("A -(2/3,D1)-> B"), std::string::npos);
}

TEST(Graph, NameRoundTrip) {
  Graph g("first");
  EXPECT_EQ(g.name(), "first");
  g.set_name("second");
  EXPECT_EQ(g.name(), "second");
}

}  // namespace
}  // namespace sdf
