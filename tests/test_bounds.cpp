#include "sched/bounds.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "sched/dppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

Edge make_edge(std::int64_t prod, std::int64_t cns, std::int64_t delay = 0) {
  return Edge{0, 1, prod, cns, delay};
}

TEST(Bmlb, DelaylessEdgeIsEta) {
  EXPECT_EQ(bmlb_edge(make_edge(1, 1)), 1);
  EXPECT_EQ(bmlb_edge(make_edge(2, 3)), 6);
  EXPECT_EQ(bmlb_edge(make_edge(4, 6)), 12);  // 4*6/gcd(4,6)=12
  EXPECT_EQ(bmlb_edge(make_edge(10, 5)), 10);
}

TEST(Bmlb, SmallDelayAdds) {
  EXPECT_EQ(bmlb_edge(make_edge(2, 3, 1)), 7);
  EXPECT_EQ(bmlb_edge(make_edge(2, 3, 5)), 11);
}

TEST(Bmlb, LargeDelayDominates) {
  EXPECT_EQ(bmlb_edge(make_edge(2, 3, 6)), 6);
  EXPECT_EQ(bmlb_edge(make_edge(2, 3, 9)), 9);
}

TEST(Bmlb, GraphSumsEdges) {
  const Graph g = testing::fig2_graph();
  // eta(A->B) = 10*5/5 = 10, eta(B->C) = 5*15/5 = 15.
  EXPECT_EQ(bmlb(g), 25);
}

TEST(Bmlb, NeverExceedsAnySasBufmem) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  const DppoResult best = dppo(g, q, *order);
  EXPECT_LE(bmlb(g), best.cost);
}

TEST(MinBufferAnySchedule, DelaylessFormula) {
  // a + b - gcd(a,b)
  EXPECT_EQ(min_buffer_any_schedule_edge(make_edge(1, 1)), 1);
  EXPECT_EQ(min_buffer_any_schedule_edge(make_edge(2, 3)), 4);
  EXPECT_EQ(min_buffer_any_schedule_edge(make_edge(4, 6)), 8);
}

TEST(MinBufferAnySchedule, DelayBranches) {
  // d < a+b-c: bound + d mod c.
  EXPECT_EQ(min_buffer_any_schedule_edge(make_edge(4, 6, 3)), 9);  // 8 + 3%2
  // d >= a+b-c: just d.
  EXPECT_EQ(min_buffer_any_schedule_edge(make_edge(2, 3, 10)), 10);
}

TEST(MinBufferAnySchedule, NeverExceedsBmlb) {
  for (std::int64_t a = 1; a <= 8; ++a) {
    for (std::int64_t b = 1; b <= 8; ++b) {
      for (std::int64_t d : {0, 1, 3, 12}) {
        EXPECT_LE(min_buffer_any_schedule_edge(make_edge(a, b, d)),
                  bmlb_edge(make_edge(a, b, d)))
            << a << "/" << b << " D" << d;
      }
    }
  }
}

TEST(MinBufferAnySchedule, AchievedByDemandDrivenChainSchedule) {
  // On a two-actor graph the bound a+b-c is achieved by alternating
  // firings; verify against exhaustive simulation of the greedy schedule.
  const Graph g = testing::two_actor(2, 3);
  const Repetitions q = repetitions_vector(g);  // (3, 2)
  // Greedy data-driven: fire snk whenever possible: A A B A B.
  const Schedule s = parse_schedule(g, "A A B A B");
  const SimulationResult r = simulate(g, s);
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(is_valid_schedule(g, q, s));
  EXPECT_EQ(r.max_tokens[0], min_buffer_any_schedule_edge(g.edge(0)));
}

TEST(MinBufferAnySchedule, GraphSum) {
  const Graph g = cd_to_dat();
  std::int64_t by_hand = 0;
  for (const Edge& e : g.edges()) {
    by_hand += min_buffer_any_schedule_edge(e);
  }
  EXPECT_EQ(min_buffer_any_schedule(g), by_hand);
  EXPECT_LE(min_buffer_any_schedule(g), bmlb(g));
}

}  // namespace
}  // namespace sdf
