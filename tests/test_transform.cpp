#include "sdf/transform.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

using testing::fig2_graph;

TEST(HsdfExpansion, NodeCountsAreSumOfRepetitions) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);  // (3, 6, 2)
  const HsdfExpansion x = expand_to_homogeneous(g, q);
  EXPECT_EQ(x.graph.num_actors(), 11u);
  EXPECT_TRUE(is_homogeneous(x.graph));
  EXPECT_EQ(x.node_of[0].size(), 3u);
  EXPECT_EQ(x.node_of[1].size(), 6u);
  EXPECT_EQ(x.node_of[2].size(), 2u);
  EXPECT_EQ(x.actor_of.size(), 11u);
  EXPECT_EQ(x.firing_of[1], 1);
}

TEST(HsdfExpansion, ExpansionIsConsistentWithUnitRepetitions) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const HsdfExpansion x = expand_to_homogeneous(g, q);
  EXPECT_EQ(repetitions_vector(x.graph),
            Repetitions(x.graph.num_actors(), 1));
}

TEST(HsdfExpansion, DelaylessExpansionIsAcyclicAndSchedulable) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const HsdfExpansion x = expand_to_homogeneous(g, q);
  // Delayless SDF -> every dependence inside one period -> acyclic HSDF
  // with zero-delay edges only.
  bool any_delay = false;
  for (const Edge& e : x.graph.edges()) any_delay |= (e.delay != 0);
  EXPECT_FALSE(any_delay);
  EXPECT_TRUE(is_acyclic(x.graph));
}

TEST(HsdfExpansion, PrecedenceMatchesTokenFlow) {
  // fig2: A -(10/5)-> B: firing j of A produces tokens 10j..10j+9;
  // firing k of B consumes 5k..5k+4 -> B_k depends on A_floor(k/2).
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const HsdfExpansion x = expand_to_homogeneous(g, q);
  for (std::int64_t k = 0; k < 6; ++k) {
    const ActorId bk = x.node_of[1][static_cast<std::size_t>(k)];
    const ActorId expect_src = x.node_of[0][static_cast<std::size_t>(k / 2)];
    bool found = false;
    for (EdgeId e : x.graph.in_edges(bk)) {
      found |= (x.graph.edge(e).src == expect_src);
    }
    EXPECT_TRUE(found) << "B_" << k;
  }
}

TEST(HsdfExpansion, DelayBecomesCrossPeriodEdge) {
  // A -(1/1, 1D)-> B with q = (1,1): B_0 consumes the initial token
  // (produced by A_0 of the previous period): edge with delay 1.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1, 1);
  const HsdfExpansion x = expand_to_homogeneous(g, {1, 1});
  ASSERT_EQ(x.graph.num_edges(), 1u);
  EXPECT_EQ(x.graph.edge(0).delay, 1);
}

TEST(HsdfExpansion, HomogeneousGraphExpandsToItself) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  const HsdfExpansion x = expand_to_homogeneous(g, {1, 1});
  EXPECT_EQ(x.graph.num_actors(), 2u);
  EXPECT_EQ(x.graph.num_edges(), 1u);
}

TEST(HsdfExpansion, GuardsAgainstExplosion) {
  const Graph g = cd_to_dat();  // sum(q) = 612
  EXPECT_THROW(expand_to_homogeneous(g, repetitions_vector(g), 100),
               std::length_error);
}

TEST(ClusterSubgraph, BasicPairCluster) {
  const Graph g = fig2_graph();  // A -> B -> C, q = (3, 6, 2)
  const Repetitions q = repetitions_vector(g);
  const ClusteredGraph c = cluster_subgraph(g, q, {0, 1});  // cluster A,B
  EXPECT_EQ(c.graph.num_actors(), 2u);  // C + supernode
  EXPECT_EQ(c.supernode_repetitions, 3);  // gcd(3, 6)
  // Boundary edge B->C: prod scales by q(B)/gcd = 2 -> prod 10.
  ASSERT_EQ(c.graph.num_edges(), 1u);
  EXPECT_EQ(c.graph.edge(0).prod, 10);
  EXPECT_EQ(c.graph.edge(0).cns, 15);
  // The clustered graph stays consistent with q(super) = 3, q(C) = 2.
  const Repetitions qc = repetitions_vector(c.graph);
  EXPECT_EQ(qc[static_cast<std::size_t>(c.supernode)] * 10,
            qc[static_cast<std::size_t>(c.image_of[2])] * 15);
}

TEST(ClusterSubgraph, RejectsCycleCreation) {
  // A -> B -> C and A -> C: clustering {A, C} creates a cycle through B.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.connect(a, b);
  g.connect(b, c);
  g.connect(a, c);
  EXPECT_THROW(cluster_subgraph(g, {1, 1, 1}, {a, c}),
               std::invalid_argument);
}

TEST(ClusterSubgraph, ValidatesInputs) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_THROW(cluster_subgraph(g, q, {}), std::invalid_argument);
  EXPECT_THROW(cluster_subgraph(g, q, {9}), std::invalid_argument);
}

TEST(ClusterSubgraph, WholeGraphClusterHasNoEdges) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const ClusteredGraph c = cluster_subgraph(g, q, {0, 1, 2});
  EXPECT_EQ(c.graph.num_actors(), 1u);
  EXPECT_EQ(c.graph.num_edges(), 0u);
  EXPECT_EQ(c.supernode_repetitions, 1);  // gcd(3,6,2)
}

}  // namespace
}  // namespace sdf
