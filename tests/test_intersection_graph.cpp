#include "alloc/intersection_graph.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/apgan.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

std::pair<IntersectionGraph, std::vector<BufferLifetime>> wig_for(
    const Graph& g, const Schedule& s) {
  const Repetitions q = repetitions_vector(g);
  const ScheduleTree tree(g, s);
  auto lifetimes = extract_lifetimes(g, q, tree);
  auto wig = build_intersection_graph(tree, lifetimes);
  return {std::move(wig), std::move(lifetimes)};
}

TEST(IntersectionGraph, FlatFig2AllOverlap) {
  const Graph g = testing::fig2_graph();
  const auto [wig, lifetimes] =
      wig_for(g, parse_schedule(g, "(3A)(6B)(2C)"));
  ASSERT_EQ(wig.size(), 2u);
  EXPECT_TRUE(wig.adjacent(0, 1));
  EXPECT_TRUE(wig.adjacent(1, 0));
  EXPECT_EQ(wig.weights, (std::vector<std::int64_t>{30, 30}));
}

TEST(IntersectionGraph, AdjacencyIsSymmetricAndIrreflexive) {
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  const ApganResult a = apgan(g, q);
  const ScheduleTree tree(g, a.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
  for (std::size_t i = 0; i < wig.size(); ++i) {
    for (std::int32_t j : wig.adjacency[i]) {
      EXPECT_NE(static_cast<std::size_t>(j), i);
      EXPECT_TRUE(wig.adjacent(j, static_cast<std::int32_t>(i)));
    }
  }
}

TEST(IntersectionGraph, TreeAwareMatchesGenericOnPracticalGraphs) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver()}) {
    const Repetitions q = repetitions_vector(g);
    const SdppoResult opt = sdppo(g, q, apgan(g, q).lexorder);
    const ScheduleTree tree(g, opt.schedule);
    const auto lifetimes = extract_lifetimes(g, q, tree);
    const IntersectionGraph fast = build_intersection_graph(tree, lifetimes);
    const IntersectionGraph slow = build_intersection_graph_generic(lifetimes);
    EXPECT_EQ(fast.adjacency, slow.adjacency) << g.name();
  }
}

TEST(IntersectionGraph, DisjointChainsShareNothing) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(c, d, 1, 1);
  const Schedule s = parse_schedule(g, "A B C D");
  const auto [wig, lifetimes] = wig_for(g, s);
  EXPECT_TRUE(wig.adjacency[0].empty());
  EXPECT_TRUE(wig.adjacency[1].empty());
}

TEST(IntersectionGraph, DelayBufferConflictsWithEverything) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 1, 1);  // delayed: whole-period lifetime
  g.add_edge(b, c, 1, 1);
  const auto [wig, lifetimes] = wig_for(g, parse_schedule(g, "A B C"));
  EXPECT_TRUE(wig.adjacent(0, 1));
}

}  // namespace
}  // namespace sdf
