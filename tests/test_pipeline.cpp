#include "pipeline/compile.h"

#include <gtest/gtest.h>

#include "alloc/clique.h"
#include "alloc/pool_checker.h"
#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/homogeneous.h"
#include "graphs/ptolemy.h"
#include "graphs/satellite.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"

namespace sdf {
namespace {

class PipelineOnGraph : public ::testing::TestWithParam<int> {
 public:
  static Graph graph_for(int index) {
    switch (index) {
      case 0: return cd_to_dat();
      case 1: return satellite_receiver();
      case 2: return qmf12(2);
      case 3: return qmf23(2);
      case 4: return qmf235(2);
      case 5: return nqmf23(3);
      case 6: return modem_16qam();
      case 7: return pam4_xmitrec();
      case 8: return block_vox();
      case 9: return overlap_add_fft();
      case 10: return phased_array();
      case 11: return homogeneous_mesh(4, 4);
      default: return qmf12(3);
    }
  }
};

TEST_P(PipelineOnGraph, EveryConfigurationProducesValidResults) {
  const Graph g = graph_for(GetParam());
  const Repetitions q = repetitions_vector(g);
  for (const OrderHeuristic order :
       {OrderHeuristic::kApgan, OrderHeuristic::kRpmc,
        OrderHeuristic::kTopological}) {
    for (const LoopOptimizer optimizer :
         {LoopOptimizer::kDppo, LoopOptimizer::kSdppo,
          LoopOptimizer::kFlat}) {
      CompileOptions options;
      options.order = order;
      options.optimizer = optimizer;
      const CompileResult res = compile(g, options);
      EXPECT_TRUE(is_valid_schedule(g, q, res.schedule)) << g.name();
      EXPECT_TRUE(res.schedule.is_single_appearance(g.num_actors()));
      EXPECT_TRUE(allocation_is_valid(res.wig, res.allocation)) << g.name();
      EXPECT_EQ(res.shared_size, res.allocation.total_size);
      EXPECT_LE(res.mcw_optimistic, res.mcw_pessimistic) << g.name();
      EXPECT_LE(res.mcw_optimistic, res.shared_size) << g.name();
      EXPECT_GE(res.nonshared_bufmem, res.bmlb) << g.name();
    }
  }
}

TEST_P(PipelineOnGraph, SharedNeverBeatenByNonShared) {
  // First-fit over overlapping lifetimes can never exceed the non-shared
  // sum (placing everything disjointly is always feasible), and in
  // practice lands well below.
  const Graph g = graph_for(GetParam());
  const CompileResult res = compile(g);
  std::int64_t width_sum = 0;
  for (const BufferLifetime& b : res.lifetimes) width_sum += b.width;
  EXPECT_LE(res.shared_size, width_sum);
}

INSTANTIATE_TEST_SUITE_P(PracticalSystems, PipelineOnGraph,
                         ::testing::Range(0, 12));

TEST(Pipeline, Table1RowColumnsAreCoherent) {
  const Graph g = satellite_receiver();
  const Table1Row row = table1_row(g);
  EXPECT_EQ(row.system, "satrec");
  EXPECT_GT(row.dppo_r, 0);
  EXPECT_GT(row.dppo_a, 0);
  EXPECT_LE(row.bmlb, row.best_nonshared());
  EXPECT_LE(row.best_shared(),
            std::min({row.ffdur_r, row.ffstart_r, row.ffdur_a,
                      row.ffstart_a}));
  EXPECT_LE(row.mco_r, row.mcp_r);
  EXPECT_LE(row.mco_a, row.mcp_a);
  EXPECT_GT(row.improvement_percent(), 0.0);
}

TEST(Pipeline, SharedBeatsNonSharedOnPracticalSystems) {
  // The paper's headline: substantial shared-memory reduction on every
  // practical system (Table 1 improvements range 27-83%).
  for (const Graph& g :
       {satellite_receiver(), qmf12(3), qmf23(2), nqmf23(4)}) {
    const Table1Row row = table1_row(g);
    EXPECT_LT(row.best_shared(), row.best_nonshared()) << g.name();
    EXPECT_GT(row.improvement_percent(), 20.0) << g.name();
  }
}

TEST(Pipeline, HomogeneousMeshMatchesPaperFormulas) {
  // The paper's "complete suite" takes the best of the first-fit
  // enumeration orders; ffdur alone can be one location above M+1 on odd
  // chain lengths.
  for (int m : {2, 3, 5}) {
    for (int n : {2, 3, 6}) {
      const Graph g = homogeneous_mesh(m, n);
      CompileOptions options;
      options.order = OrderHeuristic::kTopological;
      const CompileResult res = compile(g, options);
      EXPECT_EQ(res.nonshared_bufmem, homogeneous_mesh_nonshared(m, n));
      const std::int64_t ffstart =
          first_fit(res.wig, res.lifetimes, FirstFitOrder::kByStartTime)
              .total_size;
      EXPECT_EQ(std::min(res.shared_size, ffstart),
                homogeneous_mesh_shared(m))
          << "M=" << m << " N=" << n;
    }
  }
}

TEST(Pipeline, CompileWithOrderRespectsCustomOrder) {
  const Graph g = cd_to_dat();
  const auto order = *topological_sort(g);
  const CompileResult res = compile_with_order(g, order);
  EXPECT_EQ(res.lexorder, order);
}

TEST(Pipeline, CompileRejectsCyclicGraphs) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  g.connect(b, a);
  EXPECT_THROW(compile(g), std::invalid_argument);
}

TEST(Pipeline, CompileRejectsInconsistentGraphs) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, c, 2, 1);
  g.add_edge(a, c, 1, 1);
  EXPECT_THROW(compile(g), std::runtime_error);
}

TEST(Pipeline, ChainExactOptimizerUsedOnChains) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  CompileOptions opts;
  opts.optimizer = LoopOptimizer::kChainExact;
  const CompileResult exact = compile(g, opts);
  EXPECT_TRUE(is_valid_schedule(g, q, exact.schedule));
  opts.optimizer = LoopOptimizer::kSdppo;
  const CompileResult heuristic = compile(g, opts);
  // The Sec. 6 DP's estimate can only improve on EQ 5.
  EXPECT_LE(exact.dp_estimate, heuristic.dp_estimate);
  EXPECT_TRUE(allocation_is_valid(exact.wig, exact.allocation));
}

TEST(Pipeline, ChainExactFallsBackOffChain) {
  const Graph g = satellite_receiver();
  CompileOptions opts;
  opts.optimizer = LoopOptimizer::kChainExact;
  const CompileResult res = compile(g, opts);
  EXPECT_TRUE(allocation_is_valid(res.wig, res.allocation));
  EXPECT_GT(res.dp_estimate, 0);
}

TEST(Pipeline, BlockingFactorScalesPeriod) {
  const Graph g = cd_to_dat();
  CompileOptions opts;
  const CompileResult base = compile(g, opts);
  for (const std::int64_t j : {2, 4}) {
    opts.blocking_factor = j;
    const CompileResult blocked = compile(g, opts);
    // J periods per schedule iteration.
    EXPECT_EQ(blocked.schedule.total_firings(),
              base.schedule.total_firings() * j);
    EXPECT_TRUE(allocation_is_valid(blocked.wig, blocked.allocation));
    // Memory can only grow with blocking.
    EXPECT_GE(blocked.shared_size, base.shared_size);
    EXPECT_GE(blocked.nonshared_bufmem, base.nonshared_bufmem);
  }
  opts.blocking_factor = 0;
  EXPECT_THROW(compile(g, opts), std::invalid_argument);
}

TEST(Pipeline, BlockedAllocationSurvivesPoolExecution) {
  const Graph g = qmf23(2);
  CompileOptions opts;
  opts.blocking_factor = 3;
  const CompileResult res = compile(g, opts);
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, res.lifetimes, res.allocation);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Pipeline, AllocationOrderOptionChangesEnumeration) {
  const Graph g = satellite_receiver();
  CompileOptions dur;
  dur.allocation_order = FirstFitOrder::kByDuration;
  CompileOptions start;
  start.allocation_order = FirstFitOrder::kByStartTime;
  const CompileResult rd = compile(g, dur);
  const CompileResult rs = compile(g, start);
  EXPECT_TRUE(allocation_is_valid(rd.wig, rd.allocation));
  EXPECT_TRUE(allocation_is_valid(rs.wig, rs.allocation));
}

}  // namespace
}  // namespace sdf
