#include "sdf/repetitions.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "test_util.h"

namespace sdf {
namespace {

using testing::fig1_graph;
using testing::fig2_graph;
using testing::two_actor;

TEST(Repetitions, Fig1Graph) {
  // A -(2/1)-> B -(1/3)-> C: q = (3, 6, 2) scaled minimally.
  const Graph g = fig1_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_EQ(q, (Repetitions{3, 6, 2}));
}

TEST(Repetitions, Fig2Graph) {
  const Graph g = fig2_graph();
  EXPECT_EQ(repetitions_vector(g), (Repetitions{3, 6, 2}));
}

TEST(Repetitions, TwoActorCoprimeRates) {
  const Graph g = two_actor(3, 5);
  EXPECT_EQ(repetitions_vector(g), (Repetitions{5, 3}));
}

TEST(Repetitions, TwoActorSharedFactor) {
  const Graph g = two_actor(4, 6);
  EXPECT_EQ(repetitions_vector(g), (Repetitions{3, 2}));
}

TEST(Repetitions, HomogeneousGraphAllOnes) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.connect(a, b);
  g.connect(b, c);
  g.connect(a, c);
  EXPECT_EQ(repetitions_vector(g), (Repetitions{1, 1, 1}));
}

TEST(Repetitions, CdDatMatchesLiterature) {
  const Graph g = cd_to_dat();
  EXPECT_EQ(repetitions_vector(g), (Repetitions{147, 147, 98, 28, 32, 160}));
}

TEST(Repetitions, SatelliteReceiverMatchesPaperSchedule) {
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("A"))], 1056);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("B"))], 264);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("C"))], 24);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("D"))], 1056);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("N"))], 240);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("Q"))], 1);
  EXPECT_EQ(q[static_cast<std::size_t>(*g.find_actor("W"))], 240);
}

TEST(Repetitions, InconsistentDiamondDetected) {
  // A->B->D and A->C->D with mismatched rates around the diamond.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(a, c, 1, 1);
  g.add_edge(b, d, 2, 1);
  g.add_edge(c, d, 1, 1);  // forces q(D) = 2q(B) and q(D) = q(C) = q(B)
  const ConsistencyResult r = analyze_consistency(g);
  EXPECT_FALSE(r.consistent);
  EXPECT_NE(r.offending_edge, kInvalidEdge);
  EXPECT_THROW(repetitions_vector(g), std::runtime_error);
}

TEST(Repetitions, ConsistentDiamond) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 2, 1);
  g.add_edge(a, c, 1, 1);
  g.add_edge(b, d, 1, 2);
  g.add_edge(c, d, 1, 1);
  EXPECT_EQ(repetitions_vector(g), (Repetitions{1, 2, 1, 1}));
}

TEST(Repetitions, DisconnectedComponentsScaledIndependently) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 2, 1);  // q(A)=1, q(B)=2
  g.add_edge(c, d, 1, 3);  // q(C)=3, q(D)=1
  EXPECT_EQ(repetitions_vector(g), (Repetitions{1, 2, 3, 1}));
}

TEST(Repetitions, IsolatedActorGetsOne) {
  Graph g;
  g.add_actor("lonely");
  EXPECT_EQ(repetitions_vector(g), (Repetitions{1}));
}

TEST(Repetitions, SelfLoopConsistent) {
  Graph g;
  const ActorId a = g.add_actor("A");
  g.add_edge(a, a, 3, 3, 3);
  EXPECT_EQ(repetitions_vector(g), (Repetitions{1}));
}

TEST(Repetitions, SelfLoopInconsistent) {
  Graph g;
  const ActorId a = g.add_actor("A");
  g.add_edge(a, a, 2, 3, 3);
  EXPECT_FALSE(analyze_consistency(g).consistent);
}

TEST(Repetitions, BalanceEquationsHoldOnEveryEdge) {
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(e.prod * q[static_cast<std::size_t>(e.src)],
              e.cns * q[static_cast<std::size_t>(e.snk)]);
  }
}

TEST(Tnse, MatchesProdTimesRepetitions) {
  const Graph g = fig1_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_EQ(tnse(g, q, 0), 6);  // A fires 3x producing 2
  EXPECT_EQ(tnse(g, q, 1), 6);  // B fires 6x producing 1
  EXPECT_EQ(total_tnse(g, q), 12);
}

TEST(Tnse, EqualFromBothEndpoints) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    EXPECT_EQ(tnse(g, q, static_cast<EdgeId>(e)),
              edge.cns * q[static_cast<std::size_t>(edge.snk)]);
  }
}

}  // namespace
}  // namespace sdf
