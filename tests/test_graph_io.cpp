#include "sdf/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sdf/repetitions.h"

namespace sdf {
namespace {

TEST(GraphIo, ParsesBasicGraph) {
  const Graph g = parse_graph_text(
      "# a comment\n"
      "graph demo\n"
      "actor A\n"
      "actor B\n"
      "edge A B 2 3\n"
      "edge A B 1 1 4   # with delay\n");
  EXPECT_EQ(g.name(), "demo");
  EXPECT_EQ(g.num_actors(), 2u);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0).prod, 2);
  EXPECT_EQ(g.edge(0).cns, 3);
  EXPECT_EQ(g.edge(0).delay, 0);
  EXPECT_EQ(g.edge(1).delay, 4);
}

TEST(GraphIo, RoundTripsPracticalGraphs) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver()}) {
    const Graph back = parse_graph_text(write_graph_text(g));
    EXPECT_EQ(back.name(), g.name());
    ASSERT_EQ(back.num_actors(), g.num_actors());
    ASSERT_EQ(back.num_edges(), g.num_edges());
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const Edge& a = g.edge(static_cast<EdgeId>(e));
      const Edge& b = back.edge(static_cast<EdgeId>(e));
      EXPECT_EQ(a.src, b.src);
      EXPECT_EQ(a.snk, b.snk);
      EXPECT_EQ(a.prod, b.prod);
      EXPECT_EQ(a.cns, b.cns);
      EXPECT_EQ(a.delay, b.delay);
    }
    EXPECT_EQ(repetitions_vector(back), repetitions_vector(g));
  }
}

TEST(GraphIo, BlankAndCommentOnlyLinesIgnored) {
  const Graph g = parse_graph_text("\n\n# nothing\n   \nactor X\n");
  EXPECT_EQ(g.num_actors(), 1u);
}

TEST(GraphIo, ReportsLineNumbersOnErrors) {
  try {
    (void)parse_graph_text("actor A\nedge A Z 1 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Z"), std::string::npos);
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_graph_text("bogus\n"), std::invalid_argument);
  EXPECT_THROW(parse_graph_text("graph\n"), std::invalid_argument);
  EXPECT_THROW(parse_graph_text("actor\n"), std::invalid_argument);
  EXPECT_THROW(parse_graph_text("actor A\nactor A\n"), std::invalid_argument);
  EXPECT_THROW(parse_graph_text("actor A\nedge A A 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_graph_text("actor A\nedge A A 0 1\n"),
               std::invalid_argument);
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sdfmem_io_test.sdf";
  const Graph g = cd_to_dat();
  save_graph(g, path);
  const Graph back = load_graph(path);
  EXPECT_EQ(back.num_actors(), g.num_actors());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/definitely/not/here.sdf"),
               std::runtime_error);
}

}  // namespace
}  // namespace sdf
