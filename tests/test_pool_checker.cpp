#include "alloc/pool_checker.h"

#include <gtest/gtest.h>

#include "alloc/first_fit.h"
#include "alloc/optimal_dsa.h"
#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/homogeneous.h"
#include "graphs/ptolemy.h"
#include "graphs/satellite.h"
#include "pipeline/compile.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(PoolChecker, AcceptsPipelineAllocations) {
  for (const Graph& g :
       {cd_to_dat(), satellite_receiver(), qmf23(3), qmf235(2),
        modem_16qam(), block_vox(), overlap_add_fft(),
        homogeneous_mesh(3, 4)}) {
    for (const OrderHeuristic order :
         {OrderHeuristic::kApgan, OrderHeuristic::kRpmc}) {
      CompileOptions opts;
      opts.order = order;
      const CompileResult res = compile(g, opts);
      const PoolCheckResult check = check_allocation_by_execution(
          g, res.schedule, res.lifetimes, res.allocation);
      EXPECT_TRUE(check.ok) << g.name() << ": " << check.error;
    }
  }
}

TEST(PoolChecker, AcceptsEveryFirstFitOrder) {
  const Graph g = satellite_receiver();
  const CompileResult res = compile(g);
  for (const FirstFitOrder order :
       {FirstFitOrder::kByDuration, FirstFitOrder::kByStartTime,
        FirstFitOrder::kByWidth, FirstFitOrder::kInputOrder}) {
    const Allocation alloc = first_fit(res.wig, res.lifetimes, order);
    const PoolCheckResult check = check_allocation_by_execution(
        g, res.schedule, res.lifetimes, alloc);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

TEST(PoolChecker, AcceptsBestFit) {
  const Graph g = qmf12(3);
  const CompileResult res = compile(g);
  const Allocation alloc =
      best_fit(res.wig, res.lifetimes, FirstFitOrder::kByDuration);
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, res.lifetimes, alloc);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(PoolChecker, DetectsOverlappingPlacement) {
  // Force two time-overlapping buffers onto the same address.
  const Graph g = testing::fig2_graph();
  const CompileResult res = compile(g);
  Allocation bad = res.allocation;
  for (auto& offset : bad.offsets) offset = 0;  // everything at 0
  bad.total_size = 64;
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, res.lifetimes, bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("overwrite"), std::string::npos);
}

TEST(PoolChecker, DetectsUndersizedWidth) {
  const Graph g = testing::fig2_graph();
  const CompileResult res = compile(g);
  auto lifetimes = res.lifetimes;
  lifetimes[0].width = 1;  // buffer too small: wraps onto live tokens
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, lifetimes, res.allocation);
  EXPECT_FALSE(check.ok);
}

TEST(PoolChecker, DelayEdgesSteadyState) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 2, 2);
  const CompileResult res = compile(g);
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, res.lifetimes, res.allocation);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(PoolChecker, RejectsMismatchedInputs) {
  const Graph g = testing::fig2_graph();
  const CompileResult res = compile(g);
  Allocation wrong;
  wrong.offsets = {0};
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, res.lifetimes, wrong);
  EXPECT_FALSE(check.ok);
}

}  // namespace
}  // namespace sdf
