#include "alloc/clique.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/satellite.h"
#include "sched/apgan.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

BufferLifetime solid(std::int64_t width, std::int64_t start,
                     std::int64_t dur) {
  BufferLifetime b;
  b.edge = 0;
  b.width = width;
  b.interval = PeriodicInterval::solid(start, dur);
  return b;
}

BufferLifetime periodic(std::int64_t width, std::int64_t start,
                        std::int64_t dur, std::vector<std::int64_t> periods,
                        std::vector<std::int64_t> counts) {
  BufferLifetime b;
  b.edge = 0;
  b.width = width;
  b.interval = PeriodicInterval(start, dur, std::move(periods),
                                std::move(counts));
  return b;
}

TEST(Clique, SolidInstanceAllEstimatesAgree) {
  const std::vector<BufferLifetime> ls{
      solid(2, 0, 4), solid(3, 2, 4), solid(5, 10, 2)};
  EXPECT_EQ(mcw_exact(ls), 5);
  EXPECT_EQ(mcw_optimistic(ls), 5);
  EXPECT_EQ(mcw_pessimistic(ls), 5);
}

TEST(Clique, PessimisticIgnoresPeriodicGaps) {
  // A periodic buffer with gaps + a solid buffer inside a gap: the true
  // MCW is max(w1, w2); pessimistic sees them stacked.
  const std::vector<BufferLifetime> ls{
      periodic(4, 0, 2, {4}, {3}),  // [0,2) [4,6) [8,10)
      solid(3, 2, 2),               // fits in the first gap
  };
  EXPECT_EQ(mcw_exact(ls), 4);
  EXPECT_EQ(mcw_optimistic(ls), 4);
  EXPECT_EQ(mcw_pessimistic(ls), 7);
}

TEST(Clique, OptimisticMissesLateCollisions) {
  // Fig. 20's phenomenon: the max overlap happens at a later occurrence
  // of a periodic interval, not at any earliest start.
  const std::vector<BufferLifetime> ls{
      periodic(4, 0, 2, {10}, {2}),  // [0,2) and [10,12)
      solid(2, 9, 3),                // [9,12): overlaps 2nd occurrence only
      solid(3, 1, 2),                // [1,3): overlaps 1st occurrence
  };
  // At earliest starts: t=0 -> 4+0 = 4... t=1 -> 4+3=7; t=9 -> 2;
  // optimistic = 7. True MCW: t in [10,12): 4+2 = 6 < 7 here, so make the
  // late collision heavier:
  const std::vector<BufferLifetime> heavy{
      periodic(4, 0, 1, {10}, {2}),  // [0,1) and [10,11)
      solid(9, 9, 3),                // [9,12)
  };
  // Optimistic checks t=0 (4), t=9 (9, periodic not live: k=0 of 10 ->
  // rem 9 >= dur 1): misses t=10 where 4+9=13.
  EXPECT_EQ(mcw_optimistic(heavy), 9);
  EXPECT_EQ(mcw_exact(heavy), 13);
  EXPECT_EQ(mcw_pessimistic(heavy), 13);
  EXPECT_LE(mcw_optimistic(ls), mcw_exact(ls));
}

TEST(Clique, OrderingSandwichOnPracticalSystems) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver(), qmf23(2)}) {
    const Repetitions q = repetitions_vector(g);
    const SdppoResult opt = sdppo(g, q, apgan(g, q).lexorder);
    const ScheduleTree tree(g, opt.schedule);
    const auto lifetimes = extract_lifetimes(g, q, tree);
    const std::int64_t opt_est = mcw_optimistic(lifetimes);
    const std::int64_t pes_est = mcw_pessimistic(lifetimes);
    EXPECT_LE(opt_est, pes_est) << g.name();
    const std::int64_t exact = mcw_exact(lifetimes);
    EXPECT_LE(opt_est, exact) << g.name();
    EXPECT_GE(pes_est, exact) << g.name();
  }
}

TEST(Clique, EmptyInstance) {
  EXPECT_EQ(mcw_exact({}), 0);
  EXPECT_EQ(mcw_optimistic({}), 0);
  EXPECT_EQ(mcw_pessimistic({}), 0);
}

TEST(Clique, ExactRespectsBurstLimit) {
  const std::vector<BufferLifetime> ls{
      periodic(1, 0, 1, {2, 2000, 2000000}, {2, 100, 100})};
  EXPECT_THROW((void)mcw_exact(ls, /*burst_limit=*/100), std::length_error);
}

TEST(Clique, SingleBuffer) {
  const std::vector<BufferLifetime> ls{solid(7, 3, 5)};
  EXPECT_EQ(mcw_exact(ls), 7);
  EXPECT_EQ(mcw_optimistic(ls), 7);
  EXPECT_EQ(mcw_pessimistic(ls), 7);
}

}  // namespace
}  // namespace sdf
