// Fault-injection matrix (util/fault.h, docs/ERRORS.md): every registered
// injection site is forced by at least one test here, each forced fault is
// asserted to produce the intended degradation (not a crash), degraded
// results still pass the execution-level pool checker, and the explore
// sweep stays byte-identical across thread counts and fault seeds.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/pool_checker.h"
#include "graphs/filterbank.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "pipeline/compile.h"
#include "pipeline/explore.h"
#include "pipeline/governor.h"
#include "sdf/io.h"
#include "sdf/repetitions.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/thread_pool.h"

#include "test_util.h"

namespace sdf {
namespace {

using testing::chain;
using testing::fig2_graph;
using testing::random_consistent_graph;

/// Every test leaves the process-global fault registry (and telemetry)
/// clean, whatever path it exits through.
class Faults : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::clear();
    obs::set_enabled(false);
    obs::reset();
  }
};

/// Execution-level oracle for a (possibly degraded) compile result.
void expect_pool_valid(const Graph& g, const CompileResult& res) {
  const PoolCheckResult check = check_allocation_by_execution(
      g, res.schedule, res.lifetimes, res.allocation);
  EXPECT_TRUE(check.ok) << check.error;
}

/// One line per point, covering every deterministic field (including the
/// degradation chain), for byte-exact comparison across runs.
std::string fingerprint(const ExploreResult& r) {
  std::ostringstream out;
  for (const DesignPoint& p : r.points) {
    out << p.strategy << "|" << p.code_size << "|" << p.shared_memory << "|"
        << p.nonshared_memory << "|" << p.pareto << "|" << p.degraded_from
        << "\n";
  }
  out << "frontier:";
  for (const DesignPoint& p : r.frontier) {
    out << " " << p.strategy << "(" << p.code_size << ","
        << p.shared_memory << ")";
  }
  out << "\ndropped:" << r.points_dropped << "\n";
  return out.str();
}

TEST_F(Faults, KnownSitesListIsClosedAndCoveredHere) {
  // The closed site list this file forces, one by one. A new injection
  // point must be added both to fault.cpp and to this matrix.
  // batch_kill raises SIGKILL from inside a journal append, so it is
  // forced from a fork()ed child in tests/test_batch_resume.cpp rather
  // than here; the svc_* service sites need a live daemon/router/cache
  // and are forced end-to-end in tests/test_chaos.cpp and
  // tests/test_transport.cpp.
  const std::vector<std::string_view> expected = {
      "parse_oom",       "io_open",        "dp_mem",
      "dp_deadline",     "explore_point",  "pool_spawn",
      "batch_kill",      "svc_accept",     "svc_recv_torn",
      "svc_send_short",  "svc_peer_timeout", "svc_cache_read",
      "svc_cache_write", "svc_worker_stall",
  };
  EXPECT_EQ(fault::known_sites(), expected);
}

TEST_F(Faults, SpecParsingRejectsGarbage) {
  EXPECT_THROW(fault::configure("definitely_not_a_site:1", 0),
               BadArgumentError);
  EXPECT_THROW(fault::configure("parse_oom:x", 0), BadArgumentError);
  EXPECT_THROW(fault::configure("parse_oom:0", 0), BadArgumentError);
  fault::configure("", 0);
  EXPECT_FALSE(fault::enabled());
  fault::configure("parse_oom:2,dp_mem:3", 0);
  EXPECT_TRUE(fault::enabled());
}

TEST_F(Faults, ParseOomSiteForcesResourceExhaustedWithLocation) {
  fault::configure("parse_oom:1", 0);
  try {
    (void)parse_graph_text("graph g\nactor A\nactor B\nedge A B 1 1\n");
    FAIL() << "expected injected parse_oom";
  } catch (const ResourceExhaustedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    EXPECT_TRUE(e.diagnostic().loc.known());
  }
  EXPECT_EQ(fault::fire_count("parse_oom"), 1);
}

TEST_F(Faults, IoOpenSiteForcesIoError) {
  fault::configure("io_open:1", 0);
  EXPECT_THROW(save_graph(fig2_graph(), "/tmp/sdfmem_fault_test.sdf"),
               IoError);
  EXPECT_EQ(fault::fire_count("io_open"), 1);
}

TEST_F(Faults, DpMemSiteDegradesTheLadderOnce) {
  obs::set_enabled(true);
  obs::reset();
  fault::configure("dp_mem:1", 0);
  CompileOptions opts;
  opts.optimizer = LoopOptimizer::kChainExact;
  const Graph g = chain({{2, 3}, {1, 2}, {3, 1}});
  const CompileResult res = compile(g, opts);
  // The injected trip hits the first DP-table charge (the chain-exact
  // rung); the retry's checks are later check numbers in the same context,
  // so exactly one rung is abandoned.
  EXPECT_EQ(fault::fire_count("dp_mem"), 1);
  ASSERT_EQ(res.degraded_from.size(), 1u);
  EXPECT_EQ(res.degraded_from[0], LoopOptimizer::kChainExact);
  EXPECT_EQ(res.effective_optimizer, LoopOptimizer::kSdppo);
  EXPECT_EQ(res.degradation_path(), "chainx");
  EXPECT_EQ(obs::counter("pipeline.compile.degraded"), 1);
  expect_pool_valid(g, res);
}

TEST_F(Faults, DpDeadlineSiteDegradesAndStaysPoolValid) {
  obs::set_enabled(true);
  obs::reset();
  fault::configure("dp_deadline:1", 0);
  CompileOptions opts;
  opts.optimizer = LoopOptimizer::kSdppo;
  const Graph g = fig2_graph();
  const CompileResult res = compile(g, opts);
  EXPECT_EQ(fault::fire_count("dp_deadline"), 1);
  EXPECT_EQ(res.degradation_path(), "sdppo");
  EXPECT_EQ(res.effective_optimizer, LoopOptimizer::kDppo);
  EXPECT_GE(obs::counter("pipeline.compile.degraded"), 1);
  EXPECT_GE(obs::counter("util.fault.dp_deadline.fired"), 1);
  expect_pool_valid(g, res);
}

TEST_F(Faults, ExplorePointSiteDropsEveryTaskAtWindowOne) {
  fault::configure("explore_point:1", 0);
  ExploreOptions opts;
  opts.jobs = 1;
  const ExploreResult r = explore_designs(fig2_graph(), opts);
  // Window 1 fires at the first check of every task context: all dropped.
  EXPECT_TRUE(r.points.empty());
  EXPECT_TRUE(r.frontier.empty());
  EXPECT_GT(r.points_dropped, 0);
  EXPECT_EQ(fault::fire_count("explore_point"), r.points_dropped);
}

TEST_F(Faults, PoolSpawnSiteDegradesToFewerWorkers) {
  obs::set_enabled(true);
  obs::reset();
  fault::configure("pool_spawn:1", 0);
  {
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);     // queues (requested width)
    EXPECT_LT(pool.threads(), 4);  // the injected spawn failure stopped it
    EXPECT_EQ(fault::fire_count("pool_spawn"), 1);

    // The degraded pool still completes submitted work (wait() drains on
    // the calling thread if no worker ever spawned).
    std::vector<int> hit(64, 0);
    util::parallel_for(&pool, hit.size(),
                       [&](std::size_t i) { hit[i] = 1; });
    for (const int h : hit) EXPECT_EQ(h, 1);
  }
  EXPECT_GE(obs::counter("util.thread_pool.spawn_failures"), 1);
}

TEST_F(Faults, ExploreSurvivesSpawnFailures) {
  fault::configure("pool_spawn:1", 0);
  ExploreOptions opts;
  opts.jobs = 4;
  const ExploreResult faulted = explore_designs(fig2_graph(), opts);
  fault::clear();
  const ExploreResult clean = explore_designs(fig2_graph(), opts);
  EXPECT_EQ(fingerprint(faulted), fingerprint(clean));
}

// The ISSUE's acceptance scenario: a 1 ms deadline on the depth-5
// filterbank must not fail — it degrades off the expensive rungs and the
// result still passes the execution-level pool checker.
TEST_F(Faults, DeadlineOneMsOnDepth5FilterbankDegradesGracefully) {
  obs::set_enabled(true);
  obs::reset();
  const Graph g = qmf12(5);  // 188 actors
  ResourceGovernor governor(ResourceBudget{/*deadline_ms=*/1, 0});
  // Make the deadline unambiguously expired before the DP rungs run so
  // the test does not depend on machine speed.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const ResourceGovernor::Scope scope(governor);
  CompileOptions opts;
  opts.order = OrderHeuristic::kApgan;
  opts.optimizer = LoopOptimizer::kChainExact;
  const CompileResult res = compile(g, opts);
  EXPECT_NE(res.effective_optimizer, LoopOptimizer::kChainExact);
  EXPECT_EQ(res.effective_optimizer, LoopOptimizer::kFlat);
  EXPECT_EQ(res.degradation_path(), "chainx>sdppo>dppo");
  EXPECT_GE(obs::counter("pipeline.compile.degraded"), 3);
  EXPECT_GE(obs::counter("pipeline.governor.trips"), 1);
  expect_pool_valid(g, res);
}

TEST_F(Faults, DpMemoryBudgetTripsAndRecoversAccounting) {
  // A tiny DP-memory budget trips sdppo/dppo (quadratic tables) but not
  // the flat rung; after the compile the governor's accounting is back to
  // zero (DpMemoryCharge released every charged byte during unwind).
  ResourceGovernor governor(ResourceBudget{0, /*dp_mem_bytes=*/64});
  const ResourceGovernor::Scope scope(governor);
  const Graph g = random_consistent_graph(11, 10);
  CompileOptions opts;
  opts.optimizer = LoopOptimizer::kSdppo;
  const CompileResult res = compile(g, opts);
  EXPECT_EQ(res.effective_optimizer, LoopOptimizer::kFlat);
  EXPECT_EQ(res.degradation_path(), "sdppo>dppo");
  EXPECT_EQ(governor.dp_bytes_in_use(), 0);
  expect_pool_valid(g, res);
}

TEST_F(Faults, GovernedCompileWithRoomyBudgetsDoesNotDegrade) {
  ResourceGovernor governor(
      ResourceBudget{/*deadline_ms=*/60000, /*dp_mem_bytes=*/1 << 30});
  const ResourceGovernor::Scope scope(governor);
  const CompileResult res = compile(fig2_graph());
  EXPECT_TRUE(res.degraded_from.empty());
  EXPECT_FALSE(res.order_degraded);
}

// Byte-identical explore output for any jobs under injected faults at a
// fixed seed — the tentpole determinism guarantee.
TEST_F(Faults, ExploreIsByteIdenticalAcrossJobsUnderFaults) {
  const Graph g = random_consistent_graph(123, 10);
  const std::vector<std::uint64_t> seeds = {1, 7, 42};
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<std::string> prints;
    for (const int jobs : {1, 2, 4}) {
      fault::configure("explore_point:5,dp_deadline:3,dp_mem:2", seed);
      ExploreOptions opts;
      opts.jobs = jobs;
      prints.push_back(fingerprint(explore_designs(g, opts)));
    }
    EXPECT_EQ(prints[0], prints[1]) << "jobs=1 vs jobs=2";
    EXPECT_EQ(prints[0], prints[2]) << "jobs=1 vs jobs=4";
  }
}

TEST_F(Faults, SeedChangesWhereAWindowedFaultFires) {
  // With window 5 the firing check is drawn from [1, 5] keyed by seed:
  // some seed pair must disagree somewhere in the sweep (if every seed
  // fired identically the draw would be broken).
  const Graph g = random_consistent_graph(5, 8);
  std::vector<std::string> prints;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  for (const std::uint64_t seed : seeds) {
    fault::configure("explore_point:5", seed);
    ExploreOptions opts;
    opts.jobs = 2;
    prints.push_back(fingerprint(explore_designs(g, opts)));
  }
  bool any_difference = false;
  for (std::size_t i = 1; i < prints.size(); ++i) {
    any_difference |= prints[i] != prints[0];
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(Faults, DegradedFromReachesDesignPoints) {
  fault::configure("dp_deadline:1", 0);
  ExploreOptions opts;
  opts.jobs = 1;
  const ExploreResult r = explore_designs(fig2_graph(), opts);
  bool any_degraded = false;
  for (const DesignPoint& p : r.points) {
    any_degraded |= !p.degraded_from.empty();
  }
  EXPECT_TRUE(any_degraded);
}

TEST_F(Faults, EnvConfigurationRoundTrip) {
  // configure_from_env is what the CLI calls; exercise the parse without
  // mutating the test environment permanently.
  ASSERT_EQ(setenv("SDFMEM_FAULTS", "parse_oom:2", 1), 0);
  ASSERT_EQ(setenv("SDFMEM_FAULT_SEED", "99", 1), 0);
  EXPECT_TRUE(fault::configure_from_env());
  EXPECT_TRUE(fault::enabled());
  ASSERT_EQ(unsetenv("SDFMEM_FAULTS"), 0);
  ASSERT_EQ(unsetenv("SDFMEM_FAULT_SEED"), 0);
  EXPECT_FALSE(fault::configure_from_env());
}

}  // namespace
}  // namespace sdf
