// Second property sweep: the extension modules (cyclic scheduling,
// demand-driven, loop compaction, merging, HSDF expansion, blocking)
// cross-checked on random graphs.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <random>

#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "alloc/pool_checker.h"
#include "graphs/random_sdf.h"
#include "merge/buffer_merge.h"
#include "pipeline/compile.h"
#include "sched/bounds.h"
#include "sched/cyclic.h"
#include "sched/demand_driven.h"
#include "sched/loop_compaction.h"
#include "sched/nappearance.h"
#include "sched/sas.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "sdf/transform.h"

namespace sdf {
namespace {

RandomSdfOptions small_options(int seed) {
  RandomSdfOptions options;
  options.num_actors = 5 + (seed * 3) % 14;
  options.extra_edge_ratio = 0.4;
  return options;
}

class ExtensionProperties : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionProperties, DemandDrivenIsValidAndBounded) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7 + 5);
  const Graph g = random_sdf_graph(small_options(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_GE(r.buffer_memory, min_buffer_any_schedule(g));
  // Total production bounds every peak.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(r.max_tokens[e],
              tnse(g, q, static_cast<EdgeId>(e)) +
                  g.edge(static_cast<EdgeId>(e)).delay);
  }
  EXPECT_LE(r.max_live_tokens, r.buffer_memory);
}

TEST_P(ExtensionProperties, CyclicSchedulerHandlesDelayedBackEdges) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 11 + 3);
  Graph g = random_sdf_graph(small_options(GetParam()), rng);
  const Repetitions q0 = repetitions_vector(g);
  // Add up to two random back edges with a full period's worth of initial
  // tokens (always live).
  const auto order = *topological_sort(g);
  std::uniform_int_distribution<std::size_t> pick(0, order.size() - 1);
  for (int back = 0; back < 2; ++back) {
    std::size_t i = pick(rng), j = pick(rng);
    if (i == j) continue;
    if (i < j) std::swap(i, j);  // i later than j: edge i -> j is a back edge
    const ActorId src = order[i];
    const ActorId snk = order[j];
    // Rates consistent with q0; delay covers one period of consumption.
    const std::int64_t qs = q0[static_cast<std::size_t>(src)];
    const std::int64_t qt = q0[static_cast<std::size_t>(snk)];
    const std::int64_t gcd = std::gcd(qs, qt);
    g.add_edge(src, snk, qt / gcd, qs / gcd, (qs / gcd) * qt);
  }
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule)) << g.name();
  EXPECT_EQ(r.nonshared_bufmem, simulate(g, r.schedule).buffer_memory);
}

TEST_P(ExtensionProperties, LoopCompactionRoundTripsSasSchedules) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 13 + 1);
  const Graph g = random_sdf_graph(small_options(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  if (std::accumulate(q.begin(), q.end(), std::int64_t{0}) > 900) {
    GTEST_SKIP() << "period too long for the compaction DP";
  }
  const CompileResult res = compile(g);
  const CompactionResult r = recompact(res.schedule);
  EXPECT_EQ(r.schedule.flatten(), res.schedule.flatten());
  EXPECT_LE(r.appearances, res.schedule.num_leaves());
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST_P(ExtensionProperties, MergedAllocationsStayValidAndSmaller) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 17 + 11);
  const Graph g = random_sdf_graph(small_options(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  const CompileResult res = compile(g);
  const ScheduleTree tree(g, res.schedule);
  const MergeResult merged =
      merge_buffers(g, tree, res.lifetimes, cbp_all_consuming(g));
  // Region map covers every edge exactly once.
  for (std::int32_t region : merged.region_of_edge) {
    ASSERT_GE(region, 0);
    ASSERT_LT(region, static_cast<std::int32_t>(merged.buffers.size()));
  }
  std::int64_t merged_widths = 0, original_widths = 0;
  for (const MergedBuffer& b : merged.buffers) merged_widths += b.width;
  for (const BufferLifetime& b : res.lifetimes) original_widths += b.width;
  EXPECT_EQ(original_widths - merged_widths, merged.width_saved);

  const auto merged_ls = merged_lifetimes(merged);
  const IntersectionGraph wig = build_intersection_graph_generic(merged_ls);
  const Allocation alloc =
      first_fit(wig, merged_ls, FirstFitOrder::kByDuration);
  EXPECT_TRUE(allocation_is_valid(wig, alloc));
}

TEST_P(ExtensionProperties, NAppearanceBudgetsMonotonicallyHelp) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 19 + 7);
  const Graph g = random_sdf_graph(small_options(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  const CompileResult res = compile(g);
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t budget : {0, 8, 64}) {
    const NAppearanceResult r =
        relax_appearances(g, q, res.schedule, budget);
    EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
    EXPECT_LE(r.buffer_memory, previous);
    previous = r.buffer_memory;
  }
}

TEST_P(ExtensionProperties, HsdfExpansionPreservesStructure) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 23 + 29);
  RandomSdfOptions options = small_options(GetParam());
  options.max_rate_factors = 1;  // keep sum(q) small
  const Graph g = random_sdf_graph(options, rng);
  const Repetitions q = repetitions_vector(g);
  if (std::accumulate(q.begin(), q.end(), std::int64_t{0}) > 2000) {
    GTEST_SKIP() << "expansion too large";
  }
  const HsdfExpansion x = expand_to_homogeneous(g, q);
  EXPECT_EQ(x.graph.num_actors(),
            static_cast<std::size_t>(
                std::accumulate(q.begin(), q.end(), std::int64_t{0})));
  EXPECT_TRUE(is_homogeneous(x.graph));
  EXPECT_TRUE(is_acyclic(x.graph));  // source graph is delayless acyclic
  EXPECT_EQ(repetitions_vector(x.graph),
            Repetitions(x.graph.num_actors(), 1));
}

TEST_P(ExtensionProperties, BlockedCompilesSurvivePoolExecution) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 29 + 13);
  const Graph g = random_sdf_graph(small_options(GetParam()), rng);
  for (const std::int64_t j : {2, 3}) {
    CompileOptions opts;
    opts.blocking_factor = j;
    const CompileResult res = compile(g, opts);
    const PoolCheckResult check = check_allocation_by_execution(
        g, res.schedule, res.lifetimes, res.allocation);
    EXPECT_TRUE(check.ok) << g.name() << " J=" << j << ": " << check.error;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ExtensionProperties,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace sdf
