#include "sched/sdppo.h"

#include <gtest/gtest.h>

#include "sched/dppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(Sdppo, EstimateUsesMaxOfHalves) {
  // A -(2/1)-> B -(1/3)-> C, q = (3,6,2): crossing costs are 6 for both
  // splits; EQ 5 takes max of sub-costs instead of their sum:
  //   split at A: 6/1 + max(0, b[B,C]=6... ) -> evaluate exactly.
  const Graph g = testing::fig1_graph();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult r = sdppo(g, q, {0, 1, 2});
  // b[B,C] = 6 (TNSE/gcd(6,2)=3 -> 6/... gcd(6,2)=2, TNSE(B,C)=6 -> 3).
  // Exhaustively: b[A,B] = TNSE(A,B)/gcd(3,6) = 6/3 = 2.
  //   split after A: max(0, b[B,C]=3) + 6/gcd(3,6,2)=6 -> 9.
  //   split after B: max(b[A,B]=2, 0) + 6/1 = 8.
  EXPECT_EQ(r.estimate, 8);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST(Sdppo, EstimateNeverExceedsDppoCost) {
  // max(a,b) <= a+b with identical crossing terms, cell by cell.
  for (const Graph& g :
       {testing::fig1_graph(), testing::fig2_graph(),
        testing::chain({{2, 3}, {3, 2}, {1, 4}}),
        testing::chain({{5, 3}, {2, 2}, {4, 1}, {1, 6}})}) {
    const Repetitions q = repetitions_vector(g);
    const auto order = *topological_sort(g);
    EXPECT_LE(sdppo(g, q, order).estimate, dppo(g, q, order).cost)
        << g.name();
  }
}

TEST(Sdppo, SchedulesAreValidSas) {
  for (const Graph& g :
       {testing::fig1_graph(), testing::fig2_graph(),
        testing::chain({{2, 3}, {3, 2}, {1, 4}, {2, 1}})}) {
    const Repetitions q = repetitions_vector(g);
    const SdppoResult r = sdppo(g, q, *topological_sort(g));
    EXPECT_TRUE(r.schedule.is_single_appearance(g.num_actors()));
    EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  }
}

TEST(Sdppo, FactoringHeuristicSkipsEdgelessSplits) {
  // Fig. 7 situation: two parallel two-actor chains with no cross edges.
  // q(all) share a factor, but the top-level split has no internal edges,
  // so the heuristic must NOT factor the outer loop.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(c, d, 1, 1);
  Repetitions q{2, 2, 2, 2};  // common factor 2 everywhere
  const SdppoResult r = sdppo(g, q, {a, b, c, d});
  // The outer split (A,B) | (C,D) has no internal edges: schedule must be
  // (2A)(2B)(2C)(2D)-shaped at top level, not (2 (A)(B)(C)(D)).
  ASSERT_FALSE(r.schedule.is_leaf());
  EXPECT_EQ(r.schedule.count(), 1);
  // The inner pairs DO have internal edges and factor by gcd 2.
  const std::string text = r.schedule.to_string(g);
  EXPECT_EQ(text, "(2 (A)(B))(2 (C)(D))");
}

TEST(Sdppo, SharedOptimalDiffersFromNonSharedOptimal) {
  // Fig. 4's point: the two DPs can legitimately choose different splits.
  // On this chain the EQ 5 estimate strictly beats applying EQ 5 cost
  // accounting to the DPPO schedule's splits.
  const Graph g = testing::chain({{4, 1}, {1, 4}, {2, 1}});
  const Repetitions q = repetitions_vector(g);
  const auto order = *chain_order(g);
  const SdppoResult shared = sdppo(g, q, order);
  const DppoResult nonshared = dppo(g, q, order);
  EXPECT_TRUE(is_valid_schedule(g, q, shared.schedule));
  EXPECT_TRUE(is_valid_schedule(g, q, nonshared.schedule));
  EXPECT_LE(shared.estimate, nonshared.cost);
}

TEST(Sdppo, RejectsNonTopologicalOrder) {
  const Graph g = testing::fig2_graph();
  EXPECT_THROW(sdppo(g, repetitions_vector(g), {2, 1, 0}),
               std::invalid_argument);
}

TEST(Sdppo, SingleActor) {
  Graph g;
  g.add_actor("A");
  const SdppoResult r = sdppo(g, {1}, {0});
  EXPECT_EQ(r.estimate, 0);
}

TEST(Sdppo, HomogeneousChainEstimate) {
  // Homogeneous chain of 5: every buffer has TNSE 1; halves overlay, so
  // the estimate stays far below the non-shared sum of 4.
  const Graph g = testing::chain({{1, 1}, {1, 1}, {1, 1}, {1, 1}});
  const Repetitions q = repetitions_vector(g);
  const auto order = *chain_order(g);
  const SdppoResult r = sdppo(g, q, order);
  const DppoResult d = dppo(g, q, order);
  EXPECT_EQ(d.cost, 4);
  EXPECT_LT(r.estimate, d.cost);
}

}  // namespace
}  // namespace sdf
