#include "sched/dppo.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "graphs/cddat.h"
#include "sched/sas.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

/// Brute-force order-optimal SAS cost: enumerate every binary
/// parenthesization of the order (fully factored, matching Fact 1) and
/// simulate. Exponential; keep n small.
std::int64_t brute_force_order_optimal(const Graph& g, const Repetitions& q,
                                       const std::vector<ActorId>& order) {
  const std::size_t n = order.size();
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  SplitTable splits;
  splits.at.assign(n, std::vector<std::size_t>(n, 0));

  auto enumerate = [&](auto&& self, std::vector<std::pair<std::size_t,
                                                          std::size_t>>
                                        open) -> void {
    // `open` holds subranges still needing a split choice.
    while (!open.empty() && open.back().first == open.back().second) {
      open.pop_back();
    }
    if (open.empty()) {
      const Schedule s = schedule_from_splits(g, q, order, splits);
      const SimulationResult r = simulate(g, s);
      ASSERT_TRUE(r.valid) << r.error;
      best = std::min(best, r.buffer_memory);
      return;
    }
    const auto [i, j] = open.back();
    open.pop_back();
    for (std::size_t k = i; k < j; ++k) {
      splits.at[i][j] = k;
      auto next = open;
      next.emplace_back(i, k);
      next.emplace_back(k + 1, j);
      self(self, next);
    }
  };
  enumerate(enumerate, {{0, n - 1}});
  return best;
}

TEST(Dppo, Fig2OrderOptimal) {
  // Order (A,B,C): optimal nesting (3A(2B))(2C) with cost 40.
  const Graph g = testing::fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const DppoResult r = dppo(g, q, {0, 1, 2});
  EXPECT_EQ(r.cost, 40);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_EQ(simulate(g, r.schedule).buffer_memory, r.cost);
}

TEST(Dppo, CostMatchesSimulationOnCdDat) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  const DppoResult r = dppo(g, q, *order);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_EQ(simulate(g, r.schedule).buffer_memory, r.cost);
  // Regression pin (measured, stable): the EQ 2-4 order-optimal cost for
  // the CD-DAT chain. The [19] literature value with its slightly
  // different split-cost accounting is 260.
  EXPECT_EQ(r.cost, 264);
}

TEST(Dppo, MatchesBruteForceOnRandomChains) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<std::int64_t> rate(1, 6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::pair<std::int64_t, std::int64_t>> rates;
    const int edges = 2 + trial % 3;  // chains of 3-5 actors
    for (int e = 0; e < edges; ++e) {
      rates.emplace_back(rate(rng), rate(rng));
    }
    const Graph g = testing::chain(rates);
    const auto consistency = analyze_consistency(g);
    ASSERT_TRUE(consistency.consistent);
    const Repetitions& q = consistency.repetitions;
    if (*std::max_element(q.begin(), q.end()) > 60) continue;  // keep fast

    const auto order = chain_order(g);
    ASSERT_TRUE(order.has_value());
    const DppoResult r = dppo(g, q, *order);
    EXPECT_EQ(r.cost, brute_force_order_optimal(g, q, *order))
        << "chain trial " << trial;
    EXPECT_EQ(simulate(g, r.schedule).buffer_memory, r.cost);
  }
}

TEST(Dppo, MatchesBruteForceOnDiamonds) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::int64_t> rate(1, 4);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g;
    const ActorId a = g.add_actor("A");
    const ActorId b = g.add_actor("B");
    const ActorId c = g.add_actor("C");
    const ActorId d = g.add_actor("D");
    // Rates chosen to stay consistent: derive from a target q.
    const std::int64_t qa = rate(rng), qb = rate(rng), qc = rate(rng),
                       qd = rate(rng);
    auto connect = [&](ActorId u, ActorId v, std::int64_t qu,
                       std::int64_t qv) {
      const std::int64_t gcd = std::gcd(qu, qv);
      g.add_edge(u, v, qv / gcd, qu / gcd);
    };
    connect(a, b, qa, qb);
    connect(a, c, qa, qc);
    connect(b, d, qb, qd);
    connect(c, d, qc, qd);
    const Repetitions q = repetitions_vector(g);
    for (const std::vector<ActorId>& order :
         {std::vector<ActorId>{a, b, c, d}, std::vector<ActorId>{a, c, b,
                                                                 d}}) {
      const DppoResult r = dppo(g, q, order);
      EXPECT_EQ(r.cost, brute_force_order_optimal(g, q, order))
          << "diamond trial " << trial;
    }
  }
}

TEST(Dppo, HandlesDelaysAsCarriedCost) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 1, 4);
  const Repetitions q = repetitions_vector(g);  // (1, 2)
  const DppoResult r = dppo(g, q, {a, b});
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_EQ(simulate(g, r.schedule).buffer_memory, r.cost);
}

TEST(Dppo, RejectsNonTopologicalOrder) {
  const Graph g = testing::fig2_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_THROW(dppo(g, q, {2, 1, 0}), std::invalid_argument);
}

TEST(Dppo, SingleActorCostZero) {
  Graph g;
  g.add_actor("A");
  const DppoResult r = dppo(g, {1}, {0});
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.schedule.is_leaf());
}

TEST(Dppo, TwoActorFactoring) {
  // A -(2/4)-> B: q = (2, 1)... choose rates with shared factor:
  // prod 2, cns 4 -> q = (2, 1); TNSE = 4; gcd(q) = 1: cost 4.
  const Graph g = testing::two_actor(2, 4);
  const Repetitions q = repetitions_vector(g);
  const DppoResult r = dppo(g, q, {0, 1});
  EXPECT_EQ(r.cost, 4);
  // prod 2, cns 2 -> q = (1,1), TNSE 2, cost 2.
  const Graph g2 = testing::two_actor(2, 2);
  EXPECT_EQ(dppo(g2, repetitions_vector(g2), {0, 1}).cost, 2);
}

TEST(SplitCosts, PrefixSumsMatchDirectEnumeration) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const auto order = *topological_sort(g);
  const SplitCosts costs(g, q, order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      for (std::size_t k = i; k < j; ++k) {
        const auto crossing = crossing_edges(g, order, i, k, j);
        std::int64_t tnse_sum = 0;
        for (EdgeId e : crossing) tnse_sum += tnse(g, q, e);
        EXPECT_EQ(costs.tnse_sum(i, k, j), tnse_sum);
        EXPECT_EQ(costs.edge_count(i, k, j),
                  static_cast<std::int64_t>(crossing.size()));
      }
    }
  }
}

}  // namespace
}  // namespace sdf
