// Property-based sweeps over random SDF graphs: every stage of the
// pipeline is cross-checked against the token-accurate simulator.
#include <gtest/gtest.h>

#include <numeric>
#include <limits>
#include <random>

#include "alloc/clique.h"
#include "alloc/first_fit.h"
#include "alloc/pool_checker.h"
#include "graphs/random_sdf.h"
#include "lifetime/lifetime_extract.h"
#include "pipeline/compile.h"
#include "sched/apgan.h"
#include "sched/bounds.h"
#include "sched/dppo.h"
#include "sched/rpmc.h"
#include "sched/sdppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"

namespace sdf {
namespace {

/// Executes `s` firing by firing while tracking the leaf-step clock, and
/// reports per-edge liveness per step: live_steps[e][t] is true when edge e
/// held a token at any instant during step t.
std::vector<std::vector<bool>> step_liveness(const Graph& g,
                                             const Schedule& s,
                                             std::int64_t total_steps) {
  std::vector<std::vector<bool>> live(
      g.num_edges(), std::vector<bool>(static_cast<std::size_t>(total_steps),
                                       false));
  std::vector<std::int64_t> tokens(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    tokens[e] = g.edge(static_cast<EdgeId>(e)).delay;
  }
  std::int64_t step = 0;
  auto mark = [&](std::int64_t t) {
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      if (tokens[e] > 0) live[e][static_cast<std::size_t>(t)] = true;
    }
  };
  auto walk = [&](auto&& self, const Schedule& node) -> void {
    if (node.is_leaf()) {
      mark(step);  // state at the step's start
      for (std::int64_t i = 0; i < node.count(); ++i) {
        const ActorId a = node.actor();
        for (EdgeId e : g.in_edges(a)) {
          tokens[static_cast<std::size_t>(e)] -= g.edge(e).cns;
          EXPECT_GE(tokens[static_cast<std::size_t>(e)], 0);
        }
        for (EdgeId e : g.out_edges(a)) {
          tokens[static_cast<std::size_t>(e)] += g.edge(e).prod;
        }
        mark(step);  // state after each firing within the step
      }
      ++step;
      return;
    }
    for (std::int64_t i = 0; i < node.count(); ++i) {
      for (const Schedule& child : node.body()) self(self, child);
    }
  };
  walk(walk, s);
  EXPECT_EQ(step, total_steps);
  return live;
}

RandomSdfOptions options_for(int seed) {
  RandomSdfOptions options;
  options.num_actors = 6 + (seed * 5) % 24;
  options.extra_edge_ratio = 0.3 + 0.1 * (seed % 4);
  return options;
}

class PipelineProperties : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperties, CoarseLifetimesCoverTrueTokenLiveness) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const Graph g = random_sdf_graph(options_for(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  if (std::accumulate(q.begin(), q.end(), std::int64_t{0}) > 40000) {
    GTEST_SKIP() << "period too long for the step oracle";
  }
  const SdppoResult opt = sdppo(g, q, rpmc(g, q).lexorder);
  ASSERT_TRUE(is_valid_schedule(g, q, opt.schedule));
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const auto live = step_liveness(g, opt.schedule, tree.total_duration());

  for (const BufferLifetime& b : lifetimes) {
    for (std::int64_t t = 0; t < tree.total_duration(); ++t) {
      if (live[static_cast<std::size_t>(b.edge)]
              [static_cast<std::size_t>(t)]) {
        EXPECT_TRUE(b.interval.live_at(t))
            << g.name() << " edge " << b.edge << " step " << t;
      }
    }
  }
}

TEST_P(PipelineProperties, WidthsDominateSimulatedPeaks) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31 + 7);
  const Graph g = random_sdf_graph(options_for(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, apgan(g, q).lexorder);
  const SimulationResult sim = simulate(g, opt.schedule);
  ASSERT_TRUE(sim.valid) << sim.error;
  const ScheduleTree tree(g, opt.schedule);
  for (const BufferLifetime& b : extract_lifetimes(g, q, tree)) {
    EXPECT_GE(b.width, sim.max_tokens[static_cast<std::size_t>(b.edge)]);
  }
}

TEST_P(PipelineProperties, TreeAwareOverlapMatchesGenericWalk) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 17 + 3);
  const Graph g = random_sdf_graph(options_for(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, rpmc(g, q).lexorder);
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const IntersectionGraph fast = build_intersection_graph(tree, lifetimes);
  const IntersectionGraph slow = build_intersection_graph_generic(lifetimes);
  EXPECT_EQ(fast.adjacency, slow.adjacency) << g.name();
}

TEST_P(PipelineProperties, EveryHeuristicComboIsValidAndBounded) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 13 + 1);
  const Graph g = random_sdf_graph(options_for(GetParam()), rng);
  const Repetitions q = repetitions_vector(g);
  std::int64_t best_shared = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_nonshared = std::numeric_limits<std::int64_t>::max();
  for (const OrderHeuristic order :
       {OrderHeuristic::kApgan, OrderHeuristic::kRpmc}) {
    CompileOptions options;
    options.order = order;
    options.optimizer = LoopOptimizer::kSdppo;
    const CompileResult res = compile(g, options);
    EXPECT_TRUE(allocation_is_valid(res.wig, res.allocation));
    EXPECT_LE(res.mcw_optimistic, res.shared_size);
    best_shared = std::min(best_shared, res.shared_size);

    options.optimizer = LoopOptimizer::kDppo;
    const CompileResult ns = compile(g, options);
    EXPECT_EQ(ns.nonshared_bufmem, ns.dp_estimate)
        << "DPPO cost must equal simulated bufmem";
    best_nonshared = std::min(best_nonshared, ns.nonshared_bufmem);
  }
  // Sharing can only help relative to the same schedule's width sum, and
  // in these sparse graphs it must never exceed the best non-shared cost
  // by construction of the widths... it CAN exceed it when the sdppo
  // schedule differs; so only sanity-bound it loosely.
  EXPECT_LE(best_shared, 4 * best_nonshared);
  EXPECT_GE(best_nonshared, bmlb(g));
}

TEST_P(PipelineProperties, DppoIsOrderOptimalAgainstRandomNestings) {
  // The DP must never lose to a randomly parenthesized R-schedule over
  // the same lexical order.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 41 + 11);
  RandomSdfOptions small = options_for(GetParam());
  small.num_actors = 5 + GetParam() % 4;
  const Graph g = random_sdf_graph(small, rng);
  const Repetitions q = repetitions_vector(g);
  const auto order = *topological_sort(g);
  const DppoResult best = dppo(g, q, order);

  const std::size_t n = order.size();
  std::uniform_int_distribution<std::size_t> pick;
  for (int trial = 0; trial < 20; ++trial) {
    SplitTable splits;
    splits.at.assign(n, std::vector<std::size_t>(n, 0));
    // Random split per subrange (only reachable cells matter).
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        splits.at[i][j] =
            i + pick(rng, decltype(pick)::param_type(0, j - i - 1));
      }
    }
    const Schedule s = schedule_from_splits(g, q, order, splits);
    const SimulationResult sim = simulate(g, s);
    ASSERT_TRUE(sim.valid);
    EXPECT_LE(best.cost, sim.buffer_memory);
  }
}

TEST_P(PipelineProperties, PoolExecutionNeverOverwritesLiveTokens) {
  // The ultimate end-to-end check: run the schedule against the actual
  // shared pool layout, token by token. Any modeling error anywhere in
  // the pipeline surfaces as an overwrite here.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 101 + 9);
  for (const RandomRateMode mode : {RandomRateMode::kBoundedRepetitions,
                                    RandomRateMode::kCompoundingRates}) {
    RandomSdfOptions options = options_for(GetParam());
    options.rate_mode = mode;
    const Graph g = random_sdf_graph(options, rng);
    for (const OrderHeuristic order :
         {OrderHeuristic::kApgan, OrderHeuristic::kRpmc}) {
      CompileOptions copts;
      copts.order = order;
      const CompileResult res = compile(g, copts);
      for (const FirstFitOrder fforder :
           {FirstFitOrder::kByDuration, FirstFitOrder::kByStartTime}) {
        const Allocation alloc =
            first_fit(res.wig, res.lifetimes, fforder);
        const PoolCheckResult check = check_allocation_by_execution(
            g, res.schedule, res.lifetimes, alloc);
        EXPECT_TRUE(check.ok) << g.name() << ": " << check.error;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PipelineProperties,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace sdf
