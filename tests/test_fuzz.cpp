// Robustness fuzzing: the text parsers must never crash — malformed input
// either parses or throws a std:: exception, on arbitrary byte soup — and
// the full compile pipeline must hold its invariants on seeded random
// consistent graphs (the same generator the parallel-exploration
// differential tests draw from, via test_util.h).
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "alloc/pool_checker.h"
#include "pipeline/compile.h"
#include "sched/schedule.h"
#include "sched/simulator.h"
#include "sdf/io.h"
#include "test_util.h"

namespace sdf {
namespace {

std::string random_text(std::mt19937& rng, const std::string& alphabet,
                        std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::string out;
  const std::size_t n = len(rng);
  for (std::size_t i = 0; i < n; ++i) out.push_back(alphabet[pick(rng)]);
  return out;
}

TEST(Fuzz, GraphParserNeverCrashes) {
  std::mt19937 rng(2026);
  const std::string alphabet =
      "graph actor edge AB01 \n#\t-";
  for (int trial = 0; trial < 500; ++trial) {
    const std::string text = random_text(rng, alphabet, 120);
    try {
      const Graph g = parse_graph_text(text);
      // Whatever parsed must be internally consistent.
      for (const Edge& e : g.edges()) {
        EXPECT_TRUE(g.valid_actor(e.src));
        EXPECT_TRUE(g.valid_actor(e.snk));
        EXPECT_GT(e.prod, 0);
        EXPECT_GT(e.cns, 0);
      }
    } catch (const std::exception&) {
      // rejected input: fine
    }
  }
}

TEST(Fuzz, GraphParserStructuredMutations) {
  // Near-valid inputs: mutate one character of a valid file.
  const std::string valid =
      "graph g\nactor A\nactor B\nedge A B 2 3 1\nedge B A 3 2 6\n";
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    mutated[pos(rng)] = static_cast<char>(ch(rng));
    try {
      (void)parse_graph_text(mutated);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, ScheduleParserNeverCrashes) {
  const Graph g = testing::fig2_graph();
  std::mt19937 rng(77);
  const std::string alphabet = "ABC()0123 ";
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string text = random_text(rng, alphabet, 60);
    try {
      const Schedule s = parse_schedule(g, text);
      // Parsed schedules must be well formed.
      EXPECT_GE(s.total_firings(), 1);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, RandomConsistentGraphsCompileAndPoolCheck) {
  // The shared seeded generator feeds the end-to-end pipeline: every graph
  // must compile, simulate validly, and pass the execution-level pool
  // checker (the library's strongest oracle).
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const Graph g = testing::random_consistent_graph(seed, 7);
    const CompileResult res = compile(g);
    const Repetitions q = repetitions_vector(g);
    EXPECT_TRUE(is_valid_schedule(g, q, res.schedule)) << "seed " << seed;
    const PoolCheckResult check = check_allocation_by_execution(
        g, res.schedule, res.lifetimes, res.allocation);
    EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.error;
  }
}

TEST(Fuzz, RandomGraphGeneratorIsSeedDeterministic) {
  // The differential tests depend on same-seed reproducibility.
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    const Graph a = testing::random_consistent_graph(seed, 9);
    const Graph b = testing::random_consistent_graph(seed, 9);
    EXPECT_EQ(write_graph_text(a), write_graph_text(b)) << "seed " << seed;
  }
}

TEST(Fuzz, ScheduleRoundTripOnRandomValidSchedules) {
  // Generate random nested schedules, print, reparse, compare firings.
  const Graph g = testing::fig2_graph();
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> count(1, 4);
  std::uniform_int_distribution<int> actor(0, 2);
  std::uniform_int_distribution<int> children(1, 3);
  auto gen = [&](auto&& self, int depth) -> Schedule {
    if (depth == 0 || count(rng) == 1) {
      return Schedule::leaf(actor(rng), count(rng));
    }
    std::vector<Schedule> body;
    const int n = children(rng);
    for (int i = 0; i < n; ++i) body.push_back(self(self, depth - 1));
    return Schedule::loop(count(rng), std::move(body));
  };
  for (int trial = 0; trial < 200; ++trial) {
    const Schedule s = gen(gen, 3);
    const Schedule back = parse_schedule(g, s.to_string(g));
    EXPECT_EQ(back.flatten(), s.flatten()) << s.to_string(g);
  }
}

}  // namespace
}  // namespace sdf
