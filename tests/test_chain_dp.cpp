#include "sched/chain_dp.h"

#include <gtest/gtest.h>

#include <random>

#include "graphs/cddat.h"
#include "sched/sdppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(CombineTriples, CaseOneSequentialHalves) {
  // rL = rR = 1 (Sec. 6.1.1): t1 = l1, t3 = r3,
  // t2 = max(l2, l3 + c, r1 + c, r2).
  const CostTriple l{5, 20, 9};
  const CostTriple r{4, 15, 6};
  const CostTriple t = combine_triples(l, r, 10, 1, 1);
  EXPECT_EQ(t.left, 5);
  EXPECT_EQ(t.right, 6);
  EXPECT_EQ(t.cost, std::max({20l, 9l + 10, 4l + 10, 15l}));
}

TEST(CombineTriples, CaseTwoLeftIteratesTwice) {
  // rL = 2 (Sec. 6.1.2): t1 = max(l1 + c, l2).
  const CostTriple l{5, 20, 9};
  const CostTriple r{4, 15, 6};
  const CostTriple t = combine_triples(l, r, 10, 2, 1);
  EXPECT_EQ(t.left, std::max<std::int64_t>(5 + 10, 20));
  EXPECT_EQ(t.right, 6);
  EXPECT_EQ(t.cost, std::max({20l + 10, 4l + 10, 15l}));
}

TEST(CombineTriples, CaseThreeLeftIteratesMore) {
  // rL >= 3 (Sec. 6.1.3): t1 = l2 + c unconditionally.
  const CostTriple l{5, 20, 9};
  const CostTriple r{4, 15, 6};
  const CostTriple t = combine_triples(l, r, 10, 5, 1);
  EXPECT_EQ(t.left, 30);
  EXPECT_EQ(t.right, 6);
  EXPECT_EQ(t.cost, std::max({20l + 10, 4l + 10, 15l}));
}

TEST(CombineTriples, MirroredRightCases) {
  const CostTriple l{4, 15, 6};
  const CostTriple r{5, 20, 9};
  const CostTriple two = combine_triples(l, r, 10, 1, 2);
  EXPECT_EQ(two.right, std::max<std::int64_t>(9 + 10, 20));
  EXPECT_EQ(two.left, 4);
  const CostTriple three = combine_triples(l, r, 10, 1, 7);
  EXPECT_EQ(three.right, 30);
  EXPECT_EQ(three.left, 4);
}

TEST(CombineTriples, MiddleComponentDominatesSides) {
  // Invariant: cost >= left and cost >= right for every case.
  const CostTriple l{3, 11, 7};
  const CostTriple r{2, 9, 5};
  for (std::int64_t rl : {1, 2, 3, 6}) {
    for (std::int64_t rr : {1, 2, 3, 6}) {
      const CostTriple t = combine_triples(l, r, 4, rl, rr);
      EXPECT_GE(t.cost, t.left) << rl << "," << rr;
      EXPECT_GE(t.cost, t.right) << rl << "," << rr;
    }
  }
}

TEST(CombineTriples, PaperFig6Arithmetic) {
  // Sub-chain ABCD: split on BC (c = 84) with both halves iterating >= 3
  // times; left half costs 20, right half 7. The paper reports the triple
  // (104, 104, 91).
  const CostTriple abcd =
      combine_triples(CostTriple{20, 20, 20}, CostTriple{7, 7, 7}, 84, 4, 4);
  EXPECT_EQ(abcd.left, 104);
  EXPECT_EQ(abcd.cost, 104);
  EXPECT_EQ(abcd.right, 91);

  // Top level ABCDEF: split on DE (c = 36) against EF = 8, sequential.
  // The naive EQ 5 value would be 36 + max(104, 8) = 140; the triple math
  // recovers the paper's exact 127.
  const CostTriple top =
      combine_triples(abcd, CostTriple{8, 8, 8}, 36, 1, 1);
  EXPECT_EQ(top.cost, 127);
}

TEST(CostTriple, DominationIsComponentwise) {
  const CostTriple a{1, 2, 3};
  const CostTriple b{2, 2, 3};
  const CostTriple c{2, 1, 4};
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_FALSE(a.dominates(c));
  EXPECT_FALSE(c.dominates(a));
  EXPECT_TRUE(a.dominates(a));
}

TEST(ChainDp, TwoActorChain) {
  const Graph g = testing::two_actor(2, 3);
  const Repetitions q = repetitions_vector(g);
  const ChainDpResult r = chain_sdppo_exact(g, q);
  EXPECT_EQ(r.estimate, 6);  // single buffer, TNSE/gcd(3,2) = 6
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST(ChainDp, EstimateNeverExceedsSdppoHeuristic) {
  std::mt19937 rng(23);
  std::uniform_int_distribution<std::int64_t> rate(1, 6);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::pair<std::int64_t, std::int64_t>> rates;
    const int edges = 2 + trial % 4;
    for (int e = 0; e < edges; ++e) rates.emplace_back(rate(rng), rate(rng));
    const Graph g = testing::chain(rates);
    const Repetitions q = repetitions_vector(g);
    if (*std::max_element(q.begin(), q.end()) > 200) continue;
    const auto order = *chain_order(g);
    const ChainDpResult exact = chain_sdppo_exact(g, q, order);
    const SdppoResult heuristic = sdppo(g, q, order);
    EXPECT_LE(exact.estimate, heuristic.estimate) << "trial " << trial;
    EXPECT_TRUE(is_valid_schedule(g, q, exact.schedule));
  }
}

TEST(ChainDp, Fig11StyleIncomparableTuplesAppear) {
  // 5A 4B 6C: distinct loop structures trade left/right exposure against
  // total cost, producing incomparable tuples the DP must carry.
  Graph g("fig11");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 4, 5);  // q(A)=5, q(B)=4
  g.add_edge(b, c, 3, 2);  // q(B)=4, q(C)=6
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{5, 4, 6}));
  const ChainDpResult r = chain_sdppo_exact(g, q);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_GE(r.max_pareto_width, 1u);
  EXPECT_FALSE(r.truncated);
}

TEST(ChainDp, ParetoBoundTruncates) {
  // A long chain with irregular rates; bound 1 forces truncation pressure
  // while the DP must still produce a valid schedule.
  const Graph g = testing::chain({{3, 2}, {5, 3}, {2, 5}, {7, 2}, {3, 7}});
  const Repetitions q = repetitions_vector(g);
  const auto order = *chain_order(g);
  const ChainDpResult r = chain_sdppo_exact(g, q, order, /*max=*/1);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_LE(r.max_pareto_width, 1u);
}

TEST(ChainDp, RejectsNonChains) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.connect(a, b);
  g.connect(a, c);
  const Repetitions q = repetitions_vector(g);
  EXPECT_THROW(chain_sdppo_exact(g, q), std::invalid_argument);
}

TEST(ChainDp, RejectsNonTopologicalOrder) {
  const Graph g = testing::two_actor(1, 1);
  EXPECT_THROW(chain_sdppo_exact(g, {1, 1}, {1, 0}), std::invalid_argument);
}

TEST(ChainDp, CddatChainBeatsOrEqualsHeuristic) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const auto order = *chain_order(g);
  const ChainDpResult exact = chain_sdppo_exact(g, q, order);
  const SdppoResult heuristic = sdppo(g, q, order);
  EXPECT_LE(exact.estimate, heuristic.estimate);
  EXPECT_TRUE(is_valid_schedule(g, q, exact.schedule));
  EXPECT_TRUE(exact.schedule.is_single_appearance(g.num_actors()));
}

}  // namespace
}  // namespace sdf
