// Deterministic chaos harness (docs/RELIABILITY.md, "Chaos testing"):
// a 3-worker in-process fleet whose kill/restart/request schedule is
// drawn from a seeded splitmix64 stream — same seed, same chaos, so a
// failing soak replays byte-for-byte under a debugger.
//
// "Kill" is a graceful stop()+join+destroy of the worker: from the
// router's point of view the socket vanishes mid-conversation exactly
// like a crash, but the process stays sanitizer-clean (no fork, no
// SIGKILL of a thread-sharing child). "Restart" reconstructs the worker
// over the SAME cache directory and worker id, so cache persistence
// across restarts is part of what every soak exercises.
#pragma once

#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/protocol.h"
#include "service/router.h"
#include "service/server.h"
#include "util/shutdown.h"

namespace sdf::svc::chaos {

/// splitmix64 finalizer — the same mixer the fault injector uses.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The `step`-th value of the seeded chaos stream.
inline std::uint64_t draw(std::uint64_t seed, std::uint64_t step) {
  return mix64(seed ^ mix64(step + 1));
}

/// A fresh scratch directory with sockaddr_un-short socket paths.
struct Scratch {
  std::string dir;

  Scratch() {
    static int counter = 0;
    dir = "/tmp/sdfchaos_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter++);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~Scratch() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  [[nodiscard]] std::string sock(const std::string& name) const {
    return dir + "/" + name + ".sock";
  }
  [[nodiscard]] std::string cache(const std::string& name) const {
    return dir + "/" + name + ".cache";
  }
};

/// One worker the chaos schedule can kill and resurrect. Holds its
/// ServerOptions so a restart reuses the same socket, cache directory,
/// and worker id.
class ChaosWorker {
 public:
  explicit ChaosWorker(ServerOptions options) : options_(std::move(options)) {
    start();
  }
  ~ChaosWorker() { stop(); }

  ChaosWorker(const ChaosWorker&) = delete;
  ChaosWorker& operator=(const ChaosWorker&) = delete;

  void start() {
    if (up_) return;
    util::reset_shutdown();
    server_ = std::make_unique<Server>(options_);
    server_->start();
    runner_ = std::thread([this] { server_->run(); });
    up_ = true;
  }

  void stop() {
    if (!up_) return;
    server_->stop();
    runner_.join();
    server_.reset();  // releases the cache lock + unlinks the socket
    up_ = false;
  }

  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] Server* server() { return server_.get(); }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
  bool up_ = false;
};

/// A 3-worker fleet behind a router, tuned for fast chaos turnaround:
/// short worker deadlines, a 2-failure breaker, and a 25 ms health
/// prober so recovery happens within a few tens of milliseconds.
class ChaosFleet {
 public:
  static constexpr int kWorkers = 3;

  explicit ChaosFleet(int worker_timeout_ms = 250) {
    for (int i = 0; i < kWorkers; ++i) {
      const std::string id = "w" + std::to_string(i + 1);
      ServerOptions sopts;
      sopts.socket_path = scratch_.sock(id);
      sopts.cache_dir = scratch_.cache(id);
      sopts.worker_id = id;
      sopts.jobs = 1;
      workers_.push_back(std::make_unique<ChaosWorker>(std::move(sopts)));
    }
    RouterOptions ropts;
    ropts.socket_path = scratch_.sock("router");
    for (int i = 0; i < kWorkers; ++i) {
      WorkerConfig cfg;
      cfg.id = "w" + std::to_string(i + 1);
      cfg.endpoint.socket_path = workers_[i]->options().socket_path;
      cfg.pinned_id = true;
      ropts.workers.push_back(cfg);
    }
    ropts.worker_timeout_ms = worker_timeout_ms;
    ropts.breaker_threshold = 2;
    ropts.health_interval_ms = 25;
    util::reset_shutdown();
    router_ = std::make_unique<Router>(ropts);
    router_->start();
    router_runner_ = std::thread([this] { router_->run(); });
  }

  ~ChaosFleet() {
    if (router_runner_.joinable()) {
      router_->stop();
      router_runner_.join();
    }
  }

  ChaosFleet(const ChaosFleet&) = delete;
  ChaosFleet& operator=(const ChaosFleet&) = delete;

  void kill(int i) { workers_[static_cast<std::size_t>(i)]->stop(); }
  void restart(int i) { workers_[static_cast<std::size_t>(i)]->start(); }
  [[nodiscard]] ChaosWorker& worker(int i) {
    return *workers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Router* router() { return router_.get(); }
  [[nodiscard]] std::string router_socket() const {
    return scratch_.sock("router");
  }

  /// True once the router's health prober sees every worker routable
  /// (breaker out of the open state) — the fleet has healed.
  [[nodiscard]] bool wait_all_alive(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      const RouterStats stats = router_->stats();
      int alive = 0;
      for (const auto& [id, w] : stats.workers) {
        if (w.alive) ++alive;
      }
      if (alive == kWorkers) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

 private:
  Scratch scratch_;
  std::vector<std::unique_ptr<ChaosWorker>> workers_;
  std::unique_ptr<Router> router_;
  std::thread router_runner_;
};

/// A distinct, deterministically-compiled graph per index.
inline CompileRequest chaos_graph(int i) {
  CompileRequest req;
  req.graph_text = "graph chaos" + std::to_string(i) +
                   "\nactor A\nactor B\nactor C\nedge A B " +
                   std::to_string(1 + (i % 3)) + " " +
                   std::to_string(2 + (i % 2)) + "\nedge B C 3 1\n";
  return req;
}

/// One compile over a fresh connection; transport failures come back as
/// the typed diagnostics Client already throws/returns.
inline Result<std::string> compile_once(const std::string& socket_path,
                                        const CompileRequest& req) {
  ClientOptions copts;
  copts.socket_path = socket_path;
  Client client(copts);
  return client.compile(req);
}

}  // namespace sdf::svc::chaos
