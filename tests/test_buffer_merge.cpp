#include "merge/buffer_merge.h"

#include <gtest/gtest.h>

#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "graphs/cddat.h"
#include "sched/sas.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

struct Fixture {
  Graph g;
  Repetitions q;
  Schedule schedule;
  ScheduleTree tree;
  std::vector<BufferLifetime> lifetimes;

  Fixture(Graph graph, const std::string& text)
      : g(std::move(graph)),
        q(repetitions_vector(g)),
        schedule(parse_schedule(g, text)),
        tree(g, schedule),
        lifetimes(extract_lifetimes(g, q, tree)) {}
};

TEST(CbpTables, Defaults) {
  const Graph g = testing::fig2_graph();
  EXPECT_EQ(cbp_none(g), (CbpTable{0, 0, 0}));
  // B consumes 5 per firing on its single input; sources get 0.
  EXPECT_EQ(cbp_all_consuming(g), (CbpTable{0, 5, 15}));
}

TEST(BufferMerge, NoCbpMeansNoMerging) {
  Fixture f(testing::fig2_graph(), "(3A)(6B)(2C)");
  const MergeResult r = merge_buffers(f.g, f.tree, f.lifetimes,
                                      cbp_none(f.g));
  EXPECT_EQ(r.buffers.size(), 2u);
  EXPECT_EQ(r.width_saved, 0);
}

TEST(BufferMerge, FlatChainMergesThroughConsumingActor) {
  // Flat fig2: both buffers (widths 30, 30) have lca = root; B consumes 5
  // before producing: merged region = max(30, 30 + 0) = 30, saving 30.
  Fixture f(testing::fig2_graph(), "(3A)(6B)(2C)");
  const MergeResult r = merge_buffers(f.g, f.tree, f.lifetimes,
                                      cbp_all_consuming(f.g));
  ASSERT_EQ(r.buffers.size(), 1u);
  EXPECT_EQ(r.buffers[0].width, 30);
  EXPECT_EQ(r.width_saved, 30);
  EXPECT_EQ(r.buffers[0].edges, (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(r.region_of_edge, (std::vector<std::int32_t>{0, 0}));
}

TEST(BufferMerge, PartialCbpLeavesLag) {
  // cbp(B) = 2 of cns 5: merged width = max(w_i, w_o + (5-2)) = 33.
  Fixture f(testing::fig2_graph(), "(3A)(6B)(2C)");
  CbpTable cbp = cbp_none(f.g);
  cbp[1] = 2;
  const MergeResult r = merge_buffers(f.g, f.tree, f.lifetimes, cbp);
  ASSERT_EQ(r.buffers.size(), 1u);
  EXPECT_EQ(r.buffers[0].width, 33);
  EXPECT_EQ(r.width_saved, 27);
}

TEST(BufferMerge, UnprofitableMergeSkipped) {
  // Tiny input, huge output and no CBP slack benefit: if saving <= 0 the
  // pair stays separate. Construct: A-(1/1)->B-(100/1)->C, cbp(B)=1:
  // merged = max(1, 100 + 0) = 100 vs separate 101 -> saving 1 > 0, so it
  // merges; with cbp(B) = 0 merging is disabled entirely.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, c, 100, 100);
  Fixture f(std::move(g), "A B C");
  CbpTable cbp = cbp_none(f.g);
  const MergeResult none = merge_buffers(f.g, f.tree, f.lifetimes, cbp);
  EXPECT_EQ(none.buffers.size(), 2u);
  cbp[b] = 1;
  const MergeResult merged = merge_buffers(f.g, f.tree, f.lifetimes, cbp);
  EXPECT_EQ(merged.buffers.size(), 1u);
  EXPECT_EQ(merged.buffers[0].width, 100);
}

TEST(BufferMerge, ChainFoldsLeftToRight) {
  // Four-actor homogeneous flat chain: all three buffers fold into one.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 4, 4);
  g.add_edge(b, c, 4, 4);
  g.add_edge(c, d, 4, 4);
  Fixture f(std::move(g), "A B C D");
  const MergeResult r = merge_buffers(f.g, f.tree, f.lifetimes,
                                      cbp_all_consuming(f.g));
  ASSERT_EQ(r.buffers.size(), 1u);
  EXPECT_EQ(r.buffers[0].width, 4);
  EXPECT_EQ(r.width_saved, 8);
}

TEST(BufferMerge, BranchingActorsBlockMerging) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(a, c, 1, 1);  // A has two outputs; B,C single in/out
  g.add_edge(b, d, 1, 1);
  g.add_edge(c, d, 1, 1);  // D has two inputs
  Fixture f(std::move(g), "A B C D");
  const MergeResult r = merge_buffers(f.g, f.tree, f.lifetimes,
                                      cbp_all_consuming(f.g));
  // Only B and C are single-in single-out: (A,B)+(B,D) merge and
  // (A,C)+(C,D) merge; nothing merges through A or D.
  EXPECT_EQ(r.buffers.size(), 2u);
}

TEST(BufferMerge, DifferentLcaBlocksMerging) {
  // (3 (A)(2B))(2C): buffer AB lives in the inner loop (lca = loop node),
  // BC spans the period (lca = root): not mergeable under the same-lca
  // rule.
  Fixture f(testing::fig2_graph(), "(3 (A)(2B))(2C)");
  const MergeResult r = merge_buffers(f.g, f.tree, f.lifetimes,
                                      cbp_all_consuming(f.g));
  EXPECT_EQ(r.buffers.size(), 2u);
  EXPECT_EQ(r.width_saved, 0);
}

TEST(BufferMerge, MergedAllocationIsSmallerAndValid) {
  Fixture f(testing::fig2_graph(), "(3A)(6B)(2C)");
  const IntersectionGraph base_wig =
      build_intersection_graph(f.tree, f.lifetimes);
  const Allocation base = first_fit(base_wig, f.lifetimes,
                                    FirstFitOrder::kByDuration);

  const MergeResult merged = merge_buffers(f.g, f.tree, f.lifetimes,
                                           cbp_all_consuming(f.g));
  const auto merged_ls = merged_lifetimes(merged);
  const IntersectionGraph merged_wig =
      build_intersection_graph_generic(merged_ls);
  const Allocation after = first_fit(merged_wig, merged_ls,
                                     FirstFitOrder::kByDuration);
  EXPECT_TRUE(allocation_is_valid(merged_wig, after));
  EXPECT_LT(after.total_size, base.total_size);
}

TEST(BufferMerge, ValidatesInputs) {
  Fixture f(testing::fig2_graph(), "(3A)(6B)(2C)");
  EXPECT_THROW(merge_buffers(f.g, f.tree, f.lifetimes, CbpTable{1}),
               std::invalid_argument);
  std::vector<BufferLifetime> wrong(f.lifetimes);
  wrong.pop_back();
  EXPECT_THROW(merge_buffers(f.g, f.tree, wrong, cbp_none(f.g)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sdf
