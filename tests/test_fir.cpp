#include "graphs/fir.h"

#include <gtest/gtest.h>

#include "sched/loop_compaction.h"
#include "sched/sas.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"

namespace sdf {
namespace {

TEST(Fir, StructureCounts) {
  // src + fork + taps gains + (taps-1) adds + sink.
  for (int taps : {2, 4, 8}) {
    const FirGraph fir = fir_fine_grained(taps);
    EXPECT_EQ(fir.graph.num_actors(),
              static_cast<std::size_t>(2 * taps + 2));  // src, fork, taps gains, taps-1 adds, sink
    EXPECT_EQ(fir.type_of.size(), fir.graph.num_actors());
    EXPECT_TRUE(is_acyclic(fir.graph));
    EXPECT_TRUE(is_connected(fir.graph));
    EXPECT_EQ(repetitions_vector(fir.graph),
              Repetitions(fir.graph.num_actors(), 1));
  }
}

TEST(Fir, RejectsTooFewTaps) {
  EXPECT_THROW(fir_fine_grained(1), std::invalid_argument);
}

TEST(Fir, TypeLabelsPartitionActors) {
  const FirGraph fir = fir_fine_grained(5);
  int gains = 0, adds = 0;
  for (std::int32_t t : fir.type_of) {
    gains += (t == 1);
    adds += (t == 2);
  }
  EXPECT_EQ(gains, 5);
  EXPECT_EQ(adds, 4);
}

TEST(Fir, ChainHofBuildsRequestedLength) {
  Graph g("counted");
  int calls = 0;
  const ActorId last = chain_hof(
      g, 6, [&](Graph& graph, int index, std::optional<ActorId> prev) {
        ++calls;
        const ActorId a = graph.add_actor("u" + std::to_string(index));
        if (prev) graph.connect(*prev, a);
        return a;
      });
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(g.num_actors(), 6u);
  EXPECT_EQ(last, 5);
  EXPECT_THROW(chain_hof(g, 0, [](Graph&, int, std::optional<ActorId>) {
                 return ActorId{0};
               }),
               std::invalid_argument);
}

TEST(Fir, ThreadedScheduleCompactsOverTypes) {
  // The Sec. 12 story end to end: the topological threading of a
  // fine-grained FIR is one block per instance; relabeling instances by
  // type and compacting recovers a loop whose appearance count is
  // constant in the number of taps.
  for (int taps : {4, 8, 16}) {
    const FirGraph fir = fir_fine_grained(taps);
    const Repetitions q = repetitions_vector(fir.graph);
    const Schedule threaded = flat_sas(fir.graph, q);
    ASSERT_TRUE(is_valid_schedule(fir.graph, q, threaded));

    // Instance-level: one appearance per actor.
    EXPECT_EQ(threaded.num_leaves(),
              static_cast<std::int64_t>(fir.graph.num_actors()));

    // Type-level: relabel and compact.
    std::vector<ActorId> typed;
    for (ActorId a : threaded.flatten()) {
      typed.push_back(static_cast<ActorId>(
          fir.type_of[static_cast<std::size_t>(a)]));
    }
    const CompactionResult compacted = compact_firing_sequence(typed);
    // src fork G (taps-1)x(G A) y: compacts to <= 6 appearances
    // regardless of taps.
    EXPECT_LE(compacted.appearances, 6) << taps << " taps";
  }
}

}  // namespace
}  // namespace sdf
