#include "pipeline/explore.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/satellite.h"
#include "sched/simulator.h"
#include "sdf/repetitions.h"

namespace sdf {
namespace {

TEST(Explore, EvaluatesMultipleStrategies) {
  const ExploreResult r = explore_designs(cd_to_dat());
  EXPECT_GE(r.points.size(), 6u);  // 2 orders x 3 optimizers at least
  EXPECT_FALSE(r.frontier.empty());
}

TEST(Explore, FrontierIsPareto) {
  const ExploreResult r = explore_designs(satellite_receiver());
  for (const DesignPoint& f : r.frontier) {
    EXPECT_TRUE(f.pareto);
    for (const DesignPoint& other : r.points) {
      const bool dominates =
          other.code_size <= f.code_size &&
          other.shared_memory <= f.shared_memory &&
          (other.code_size < f.code_size ||
           other.shared_memory < f.shared_memory);
      EXPECT_FALSE(dominates)
          << other.strategy << " dominates " << f.strategy;
    }
  }
  // Frontier sorted by code size, memory strictly decreasing along it.
  for (std::size_t i = 1; i < r.frontier.size(); ++i) {
    EXPECT_GE(r.frontier[i].code_size, r.frontier[i - 1].code_size);
    EXPECT_LE(r.frontier[i].shared_memory,
              r.frontier[i - 1].shared_memory);
  }
}

TEST(Explore, SchedulesAreAllValid) {
  const Graph g = qmf23(2);
  const Repetitions q = repetitions_vector(g);
  ExploreOptions options;
  options.keep_point_schedules = true;  // points drop schedules by default
  const ExploreResult r = explore_designs(g, options);
  for (const DesignPoint& p : r.points) {
    EXPECT_TRUE(is_valid_schedule(g, q, p.schedule)) << p.strategy;
    EXPECT_EQ(simulate(g, p.schedule).buffer_memory, p.nonshared_memory)
        << p.strategy;
  }
}

TEST(Explore, FrontierAlwaysCarriesItsSchedules) {
  const Graph g = qmf23(2);
  const Repetitions q = repetitions_vector(g);
  const ExploreResult r = explore_designs(g);  // default: lean points
  ASSERT_FALSE(r.frontier.empty());
  for (const DesignPoint& f : r.frontier) {
    EXPECT_TRUE(is_valid_schedule(g, q, f.schedule)) << f.strategy;
  }
}

TEST(Explore, MergingPointsAppearWhenEnabled) {
  ExploreOptions options;
  options.try_merging = true;
  const ExploreResult with = explore_designs(cd_to_dat(), options);
  bool merged_point = false;
  for (const DesignPoint& p : with.points) {
    merged_point |= p.strategy.find("+merge") != std::string::npos;
  }
  EXPECT_TRUE(merged_point);

  options.try_merging = false;
  const ExploreResult without = explore_designs(cd_to_dat(), options);
  for (const DesignPoint& p : without.points) {
    EXPECT_EQ(p.strategy.find("+merge"), std::string::npos);
  }
}

TEST(Explore, AppearanceBudgetsAddPoints) {
  ExploreOptions lean;
  lean.appearance_budgets = {0};
  ExploreOptions rich;
  rich.appearance_budgets = {0, 64, 512};
  const Graph g = cd_to_dat();
  EXPECT_LE(explore_designs(g, lean).points.size(),
            explore_designs(g, rich).points.size());
}

TEST(Explore, CustomModelRespected) {
  ExploreOptions options;
  const Graph g = cd_to_dat();
  options.model = CodeSizeModel::uniform(g, 1000);
  const ExploreResult r = explore_designs(g, options);
  for (const DesignPoint& p : r.points) {
    EXPECT_GE(p.code_size, 6000);  // six actors, 1000 units each
  }
}

}  // namespace
}  // namespace sdf
