#include "sched/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace sdf {
namespace {

using testing::fig2_graph;

TEST(Schedule, LeafBasics) {
  const Schedule s = Schedule::leaf(2, 3);
  EXPECT_TRUE(s.is_leaf());
  EXPECT_EQ(s.actor(), 2);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.total_firings(), 3);
  EXPECT_EQ(s.num_leaves(), 1);
}

TEST(Schedule, RejectsBadCounts) {
  EXPECT_THROW(Schedule::leaf(0, 0), std::invalid_argument);
  EXPECT_THROW(Schedule::loop(0, {Schedule::leaf(0)}), std::invalid_argument);
  EXPECT_THROW(Schedule::loop(2, {}), std::invalid_argument);
}

TEST(Schedule, FiringsMultiplyThroughLoops) {
  // (2 (3 B) (5 C)) fires B 6x, C 10x.
  const Schedule s =
      Schedule::loop(2, {Schedule::leaf(1, 3), Schedule::leaf(2, 5)});
  EXPECT_EQ(s.firings(1), 6);
  EXPECT_EQ(s.firings(2), 10);
  EXPECT_EQ(s.firings(0), 0);
  EXPECT_EQ(s.total_firings(), 16);
}

TEST(Schedule, FiringVector) {
  const Schedule s = Schedule::sequence(
      {Schedule::leaf(0, 3),
       Schedule::loop(2, {Schedule::leaf(1, 1), Schedule::leaf(2, 2)})});
  const Repetitions v = s.firing_vector(3);
  EXPECT_EQ(v, (Repetitions{3, 2, 4}));
}

TEST(Schedule, AppearancesCountLeaves) {
  const Schedule s = Schedule::sequence(
      {Schedule::leaf(0, 1), Schedule::leaf(1, 2), Schedule::leaf(0, 1)});
  EXPECT_EQ(s.appearances(0), 2);
  EXPECT_EQ(s.appearances(1), 1);
  EXPECT_FALSE(s.is_single_appearance(2));
}

TEST(Schedule, SingleAppearanceDetection) {
  const Schedule sas = Schedule::loop(
      2, {Schedule::leaf(0, 1),
          Schedule::loop(3, {Schedule::leaf(1, 2), Schedule::leaf(2, 1)})});
  EXPECT_TRUE(sas.is_single_appearance(3));
}

TEST(Schedule, LexorderFollowsFirstAppearance) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(2 (3B)(5C))(7A)");
  const auto order = s.lexorder();
  EXPECT_EQ(order, (std::vector<ActorId>{1, 2, 0}));  // B, C, A
}

TEST(Schedule, FlattenMatchesLoopSemantics) {
  // 2(B(2C)) = BCCBCC (paper Sec. 3).
  const Schedule s = Schedule::loop(
      2, {Schedule::leaf(1, 1), Schedule::leaf(2, 2)});
  EXPECT_EQ(s.flatten(),
            (std::vector<ActorId>{1, 2, 2, 1, 2, 2}));
}

TEST(Schedule, FlattenRespectsLimit) {
  const Schedule s = Schedule::loop(
      1000000, {Schedule::leaf(0, 1000000)});
  EXPECT_THROW(s.flatten(1000), std::length_error);
}

TEST(Schedule, NormalizedSplicesCountOneLoops) {
  const Schedule s = Schedule::sequence(
      {Schedule::sequence({Schedule::leaf(0, 1), Schedule::leaf(1, 1)}),
       Schedule::leaf(2, 1)});
  const Schedule n = s.normalized();
  EXPECT_EQ(n.body().size(), 3u);
  EXPECT_TRUE(n.body()[0].is_leaf());
}

TEST(Schedule, NormalizedMergesSingleChildCounts) {
  const Schedule s = Schedule::loop(2, {Schedule::leaf(0, 3)});
  const Schedule n = s.normalized();
  EXPECT_TRUE(n.is_leaf());
  EXPECT_EQ(n.count(), 6);
}

TEST(Schedule, NormalizedPreservesFirings) {
  const Schedule s = Schedule::loop(
      2, {Schedule::sequence({Schedule::loop(3, {Schedule::leaf(0, 1)}),
                              Schedule::leaf(1, 2)})});
  const Schedule n = s.normalized();
  EXPECT_EQ(s.firings(0), n.firings(0));
  EXPECT_EQ(s.firings(1), n.firings(1));
  EXPECT_EQ(s.flatten(), n.flatten());
}

TEST(Schedule, ToStringUsesPaperNotation) {
  const Graph g = fig2_graph();
  const Schedule s = Schedule::sequence(
      {Schedule::leaf(0, 3),
       Schedule::loop(2, {Schedule::leaf(1, 3), Schedule::leaf(2, 1)})});
  EXPECT_EQ(s.to_string(g), "(3A)(2 (3B)(C))");
}

TEST(ScheduleParse, FlatSchedule) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(3A)(6B)(2C)");
  EXPECT_EQ(s.firings(0), 3);
  EXPECT_EQ(s.firings(1), 6);
  EXPECT_EQ(s.firings(2), 2);
  EXPECT_TRUE(s.is_single_appearance(3));
}

TEST(ScheduleParse, NestedSchedule) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(3 A (2B)) (2C)");
  EXPECT_EQ(s.firings(0), 3);
  EXPECT_EQ(s.firings(1), 6);
  EXPECT_EQ(s.firings(2), 2);
}

TEST(ScheduleParse, BareNamesAndCounts) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "A 2B C");
  EXPECT_EQ(s.flatten(), (std::vector<ActorId>{0, 1, 1, 2}));
}

TEST(ScheduleParse, RoundTripThroughToString) {
  const Graph g = fig2_graph();
  for (const char* text :
       {"(3A)(6B)(2C)", "(3 (A)(2B))(2C)", "(2 (3 (A)(2B))(C))"}) {
    const Schedule s = parse_schedule(g, text);
    const Schedule again = parse_schedule(g, s.to_string(g));
    EXPECT_EQ(s.flatten(), again.flatten()) << text;
  }
}

TEST(ScheduleParse, ErrorsOnUnknownActor) {
  const Graph g = fig2_graph();
  EXPECT_THROW(parse_schedule(g, "(3A)(2Z)"), std::invalid_argument);
}

TEST(ScheduleParse, ErrorsOnMalformedInput) {
  const Graph g = fig2_graph();
  EXPECT_THROW(parse_schedule(g, "(3A"), std::invalid_argument);
  EXPECT_THROW(parse_schedule(g, ")A("), std::invalid_argument);
  EXPECT_THROW(parse_schedule(g, ""), std::invalid_argument);
  EXPECT_THROW(parse_schedule(g, "(2 )"), std::invalid_argument);
}

TEST(Schedule, EqualityIsStructural) {
  const Schedule a = Schedule::loop(2, {Schedule::leaf(0), Schedule::leaf(1)});
  const Schedule b = Schedule::loop(2, {Schedule::leaf(0), Schedule::leaf(1)});
  const Schedule c = Schedule::loop(3, {Schedule::leaf(0), Schedule::leaf(1)});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Schedule, NumLeaves) {
  const Graph g = fig2_graph();
  EXPECT_EQ(parse_schedule(g, "(2 (3B)(5C))(7A)").num_leaves(), 3);
  EXPECT_EQ(parse_schedule(g, "A B B").num_leaves(), 3);
}

}  // namespace
}  // namespace sdf
