// Seeded fuzz battery for the SDFSVC1 decoder and the JSON payload
// parsers (service/protocol.h). The service accepts bytes from the
// network, so the decoder must map EVERY input to a typed DecodeStatus —
// never crash, never over-read, never consume bytes it did not decode.
// Deterministic seeds keep failures reproducible; the CI sanitizer
// matrix (ASan/UBSan) runs this file to catch the over-reads a plain
// build would miss.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "service/protocol.h"

namespace sdf::svc {
namespace {

constexpr int kRounds = 2000;

/// Decodes `bytes` and asserts the universal contract: a status from the
/// enum, `consumed` exactly the frame size on kOk and untouched (0)
/// otherwise, and the decoded payload length consistent with the input.
void check_decode_contract(std::string_view bytes) {
  Frame frame;
  std::size_t consumed = 0;
  const DecodeStatus status = decode_frame(bytes, &frame, &consumed);
  switch (status) {
    case DecodeStatus::kOk:
      ASSERT_EQ(consumed, kHeaderBytes + frame.payload.size());
      ASSERT_LE(consumed, bytes.size());
      ASSERT_TRUE(frame_kind_valid(static_cast<std::uint8_t>(frame.kind)));
      break;
    case DecodeStatus::kNeedMore:
    case DecodeStatus::kBadMagic:
    case DecodeStatus::kBadKind:
    case DecodeStatus::kTooLarge:
    case DecodeStatus::kBadCrc:
      ASSERT_EQ(consumed, 0u);
      break;
    default:
      FAIL() << "decode_frame returned a status outside the enum";
  }
  // The status must have a stable printable name (logs never see enum
  // integers).
  ASSERT_FALSE(decode_status_name(status).empty());
}

std::string random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

std::string valid_frame(std::mt19937_64& rng) {
  static constexpr FrameKind kKinds[] = {
      FrameKind::kCompileRequest, FrameKind::kCompileResponse,
      FrameKind::kErrorResponse,  FrameKind::kPing,
      FrameKind::kPong,           FrameKind::kStatsRequest,
      FrameKind::kStatsResponse,  FrameKind::kPeerLookupRequest,
      FrameKind::kPeerLookupResponse, FrameKind::kPeerInsertRequest,
      FrameKind::kPeerInsertResponse};
  std::uniform_int_distribution<std::size_t> kind_dist(
      0, std::size(kKinds) - 1);
  return encode_frame(kKinds[kind_dist(rng)], random_bytes(rng, 200));
}

TEST(ProtocolFuzz, RandomBytesNeverCrashTheDecoder) {
  std::mt19937_64 rng(0xf022ed01);
  for (int i = 0; i < kRounds; ++i) {
    check_decode_contract(random_bytes(rng, 256));
  }
}

TEST(ProtocolFuzz, BitFlippedValidFramesAreRejectedOrReencoded) {
  std::mt19937_64 rng(0xb17f11b5);
  for (int i = 0; i < kRounds; ++i) {
    std::string wire = valid_frame(rng);
    std::uniform_int_distribution<std::size_t> pos_dist(0, wire.size() - 1);
    std::uniform_int_distribution<int> bit_dist(0, 7);
    const std::size_t pos = pos_dist(rng);
    wire[pos] ^= static_cast<char>(1 << bit_dist(rng));
    check_decode_contract(wire);

    // A flip inside the payload or CRC MUST surface as corruption (or a
    // header-field error) — it can never decode as a clean frame with
    // the altered bytes.
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status = decode_frame(wire, &frame, &consumed);
    if (status == DecodeStatus::kOk) {
      // Only possible if the flip landed somewhere that re-encodes to
      // the same bytes — i.e. it didn't actually change the frame.
      ASSERT_EQ(encode_frame(frame.kind, frame.payload), wire);
    }
  }
}

TEST(ProtocolFuzz, TruncationsAlwaysAskForMoreOrRejectCleanly) {
  std::mt19937_64 rng(0x7a011ca7);
  for (int i = 0; i < kRounds; ++i) {
    const std::string wire = valid_frame(rng);
    std::uniform_int_distribution<std::size_t> cut_dist(0, wire.size());
    const std::string_view prefix(wire.data(), cut_dist(rng));
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status = decode_frame(prefix, &frame, &consumed);
    if (prefix.size() < wire.size()) {
      // A strict prefix of a valid frame is incomplete, never corrupt.
      ASSERT_EQ(status, DecodeStatus::kNeedMore) << "cut at " << prefix.size();
      ASSERT_EQ(consumed, 0u);
    } else {
      ASSERT_EQ(status, DecodeStatus::kOk);
    }
  }
}

TEST(ProtocolFuzz, TrailingGarbageDoesNotLeakIntoTheFrame) {
  std::mt19937_64 rng(0x9a4ba9e1);
  for (int i = 0; i < kRounds; ++i) {
    const std::string wire = valid_frame(rng);
    const std::string tail = random_bytes(rng, 64);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(wire + tail, &frame, &consumed), DecodeStatus::kOk);
    // Exactly one frame consumed; the garbage stays in the buffer for
    // the next decode round.
    ASSERT_EQ(consumed, wire.size());
  }
}

TEST(ProtocolFuzz, HugeDeclaredLengthIsRejectedBeforeBuffering) {
  std::mt19937_64 rng(0x5caff01d);
  for (int i = 0; i < kRounds; ++i) {
    std::string wire = valid_frame(rng);
    // Overwrite the u32 length field with a value above the cap.
    std::uniform_int_distribution<std::uint32_t> len_dist(
        kMaxPayloadBytes + 1, 0xffffffffu);
    const std::uint32_t huge = len_dist(rng);
    wire[8] = static_cast<char>(huge & 0xff);
    wire[9] = static_cast<char>((huge >> 8) & 0xff);
    wire[10] = static_cast<char>((huge >> 16) & 0xff);
    wire[11] = static_cast<char>((huge >> 24) & 0xff);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(wire, &frame, &consumed), DecodeStatus::kTooLarge);
    ASSERT_EQ(consumed, 0u);
  }
}

// The JSON payload parsers sit one layer above the framing and receive
// arbitrary (CRC-valid) payload bytes; they must return a typed Result,
// never throw, never crash.
TEST(ProtocolFuzz, CompileRequestParserNeverThrowsOnGarbage) {
  std::mt19937_64 rng(0xc0de9a59);
  for (int i = 0; i < kRounds; ++i) {
    const Result<CompileRequest> parsed =
        parse_compile_request(random_bytes(rng, 300));
    if (!parsed.ok()) {
      ASSERT_FALSE(parsed.error().message.empty());
    }
  }
}

TEST(ProtocolFuzz, PeerParsersNeverThrowOnGarbage) {
  std::mt19937_64 rng(0x9ee59a59);
  for (int i = 0; i < kRounds; ++i) {
    const std::string bytes = random_bytes(rng, 300);
    (void)parse_peer_lookup(bytes);
    (void)parse_peer_insert(bytes);
  }
  // And mutated-but-plausible JSON: corrupt a valid peer payload.
  for (int i = 0; i < kRounds; ++i) {
    std::string payload = encode_peer_insert(rng(), "cached-bytes");
    std::uniform_int_distribution<std::size_t> pos_dist(0, payload.size() - 1);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    payload[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    (void)parse_peer_lookup(payload);
    (void)parse_peer_insert(payload);
  }
}

TEST(ProtocolFuzz, PeerPayloadsRoundTrip) {
  std::mt19937_64 rng(0x900d5eed);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const Result<std::uint64_t> lookup =
        parse_peer_lookup(encode_peer_lookup(key));
    ASSERT_TRUE(lookup.ok());
    EXPECT_EQ(lookup.value(), key);

    const std::string object = "obj-" + std::to_string(rng());
    const Result<PeerInsert> insert =
        parse_peer_insert(encode_peer_insert(key, object));
    ASSERT_TRUE(insert.ok());
    EXPECT_EQ(insert.value().key, key);
    EXPECT_EQ(insert.value().object, object);
  }
}

TEST(ProtocolFuzz, KeyHexRejectsEverythingButSixteenLowerHex) {
  EXPECT_TRUE(parse_key_hex("00000000deadbeef").has_value());
  EXPECT_FALSE(parse_key_hex("").has_value());
  EXPECT_FALSE(parse_key_hex("deadbeef").has_value());           // short
  EXPECT_FALSE(parse_key_hex("00000000DEADBEEF").has_value());   // upper
  EXPECT_FALSE(parse_key_hex("00000000deadbeef0").has_value());  // long
  EXPECT_FALSE(parse_key_hex("0000000gdeadbeef").has_value());   // non-hex
  std::mt19937_64 rng(0x4e71d5);
  for (int i = 0; i < kRounds; ++i) {
    const std::uint64_t key = rng();
    const auto parsed = parse_key_hex(key_hex(key));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, key);
  }
}

}  // namespace
}  // namespace sdf::svc
