// Shared helpers for the sdfmem test suite: the paper's figure graphs,
// the seeded random-graph source, and oracles used by several test files.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "graphs/random_sdf.h"
#include "sched/schedule.h"
#include "sdf/graph.h"
#include "sdf/repetitions.h"

namespace sdf::testing {

/// The one source of random SDF graphs for the test suite: a seeded,
/// consistent, connected, acyclic multirate graph. Both the fuzz sweep
/// (test_fuzz.cpp) and the parallel-exploration differential tests
/// (test_explore_parallel.cpp) draw from here so they cover the same
/// distribution. Same seed => same graph, on every platform.
inline Graph random_consistent_graph(std::uint32_t seed, int num_actors = 8,
                                     double extra_edge_ratio = 0.5) {
  RandomSdfOptions options;
  options.num_actors = num_actors;
  options.extra_edge_ratio = extra_edge_ratio;
  std::mt19937 rng(seed);
  return random_sdf_graph(options, rng);
}

/// Fig. 1: A -(2/1,D1)-> B -(1/3)-> C  with one delay on (A,B).
/// (The delay is omitted when `with_delay` is false; the paper's bufmem
/// examples for Fig. 1 use the delayless rates.)
inline Graph fig1_graph(bool with_delay = false) {
  Graph g("fig1");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 2, 1, with_delay ? 1 : 0);
  g.add_edge(b, c, 1, 3);
  return g;
}

/// Fig. 2: a three-actor chain with q = (3, 6, 2) whose four schedules
/// cost 50/40/60/50 (Sec. 3). Those costs pin the rates:
/// flat (3A)(6B)(2C) = 60 and nested (3A(2B))(2C) = 40 imply
/// TNSE(A,B) = TNSE(B,C) = 30, i.e. A -(10/5)-> B -(5/15)-> C.
inline Graph fig2_graph() {
  Graph g("fig2");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 10, 5);   // q(A)*10 == q(B)*5  -> 30 == 30
  g.add_edge(b, c, 5, 15);   // q(B)*5 == q(C)*15  -> 30 == 30
  return g;
}

/// A simple two-actor graph with chosen rates.
inline Graph two_actor(std::int64_t prod, std::int64_t cns,
                       std::int64_t delay = 0) {
  Graph g("two");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, prod, cns, delay);
  return g;
}

/// Chain x0 -> x1 -> ... with the given (prod, cns) per edge.
inline Graph chain(const std::vector<std::pair<std::int64_t, std::int64_t>>&
                       rates) {
  Graph g("chain");
  ActorId prev = g.add_actor("x0");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const ActorId cur = g.add_actor("x" + std::to_string(i + 1));
    g.add_edge(prev, cur, rates[i].first, rates[i].second);
    prev = cur;
  }
  return g;
}

/// Walks a schedule in execution order; calls `on_step(leaf_index)` before
/// each leaf invocation and `fire(actor, count)` for its firings. Mirrors
/// the schedule-tree time base (one leaf invocation = one step).
template <typename OnLeaf>
void walk_leaf_steps(const Schedule& s, OnLeaf&& on_leaf) {
  std::int64_t step = 0;
  auto walk = [&](auto&& self, const Schedule& node) -> void {
    for (std::int64_t i = 0; i < node.count(); ++i) {
      if (node.is_leaf()) {
        on_leaf(step, node.actor(), node.count());
        ++step;
        return;  // leaf counts are one step regardless of residual factor
      }
      for (const Schedule& child : node.body()) self(self, child);
    }
  };
  walk(walk, s);
}

}  // namespace sdf::testing
