// Transcriptions of the paper's worked examples, checked end to end.
#include <gtest/gtest.h>

#include "alloc/clique.h"
#include "alloc/first_fit.h"
#include "graphs/homogeneous.h"
#include "graphs/satellite.h"
#include "lifetime/lifetime_extract.h"
#include "pipeline/compile.h"
#include "sched/dppo.h"
#include "sched/sdppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(PaperExamples, Fig1BufmemValues) {
  // Sec. 4: bufmem(S1) = 13, bufmem(S2) = 9 (with the unit delay on A->B).
  const Graph g = testing::fig1_graph(/*with_delay=*/true);
  EXPECT_EQ(simulate(g, parse_schedule(g, "(3A)(6B)(2C)")).buffer_memory, 13);
  EXPECT_EQ(simulate(g, parse_schedule(g, "(3 (A)(2B))(2C)")).buffer_memory,
            9);
}

TEST(PaperExamples, Fig2SasCosts) {
  // Sec. 3: schedule 2 costs 40, flat schedule 3 costs 60.
  const Graph g = testing::fig2_graph();
  EXPECT_EQ(simulate(g, parse_schedule(g, "(3 (A)(2B))(2C)")).buffer_memory,
            40);
  EXPECT_EQ(simulate(g, parse_schedule(g, "(3A)(6B)(2C)")).buffer_memory, 60);
}

TEST(PaperExamples, Fig15Fig17PeriodicLifetimes) {
  // A 5-actor system scheduled as (2 (2 (A)(B)(X)(Y))(Z)) reproduces the
  // Fig. 17 lifetime of buffer (A,B): start 0, dur 2, periods (4, 9),
  // counts (2, 2), live on [0,2), [4,6), [9,11), [13,15); and the (X,Y)
  // buffer interleaves with it exactly like Fig. 17's (C,D).
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId x = g.add_actor("X");
  const ActorId y = g.add_actor("Y");
  const ActorId z = g.add_actor("Z");
  const ActorId w = g.add_actor("W");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, x, 1, 1);
  g.add_edge(x, y, 1, 1);
  g.add_edge(y, z, 1, 2);
  g.add_edge(z, w, 1, 2);
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{4, 4, 4, 4, 2, 1}));
  const Schedule s = parse_schedule(g, "(2 (2 (A)(B)(X)(Y))(Z))(W)");
  ASSERT_TRUE(is_valid_schedule(g, q, s));
  const ScheduleTree tree(g, s);
  EXPECT_EQ(tree.total_duration(), 19);

  const auto lifetimes = extract_lifetimes(g, q, tree);
  const BufferLifetime& ab = lifetimes[0];
  EXPECT_EQ(ab.interval,
            PeriodicInterval(0, 2, {4, 9}, {2, 2}));
  for (std::int64_t t : {0, 1, 4, 5, 9, 10, 13, 14}) {
    EXPECT_TRUE(ab.interval.live_at(t)) << t;
  }
  for (std::int64_t t : {2, 3, 6, 7, 8, 11, 12, 15, 16, 17}) {
    EXPECT_FALSE(ab.interval.live_at(t)) << t;
  }

  const BufferLifetime& xy = lifetimes[2];
  EXPECT_EQ(xy.interval, PeriodicInterval(2, 2, {4, 9}, {2, 2}));
  // Fig. 17's point: (A,B) and (X,Y) are disjoint and can share memory.
  EXPECT_FALSE(lifetimes_overlap(tree, ab, xy));
  const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
  const Allocation alloc = first_fit(wig, lifetimes,
                                     FirstFitOrder::kByDuration);
  EXPECT_EQ(alloc.offsets[0], alloc.offsets[2]);  // same location
}

TEST(PaperExamples, Sec5FlatVsNestedSharedTradeoff) {
  // Sec. 5's point (Fig. 4): the shared-optimal schedule can differ from
  // the non-shared-optimal one. Check both DPs agree with their own cost
  // models on the same lexical order and that the shared estimate is
  // never worse than the non-shared cost.
  const Graph g = testing::fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const std::vector<ActorId> order{0, 1, 2};
  EXPECT_LE(sdppo(g, q, order).estimate, dppo(g, q, order).cost);
}

TEST(PaperExamples, Sec10SatrecReferenceComparisons) {
  // Sec. 11.1.3 context for the satellite receiver: our shared result must
  // land below our non-shared result by roughly the paper's proportion
  // (991/1542 ~ 0.64), and both must respect the BMLB.
  const Table1Row row = table1_row(satellite_receiver());
  EXPECT_LE(row.bmlb, row.best_nonshared());
  const double ratio = static_cast<double>(row.best_shared()) /
                       static_cast<double>(row.best_nonshared());
  EXPECT_LT(ratio, 0.8);  // paper: 0.64
  EXPECT_GT(ratio, 0.2);
}

TEST(PaperExamples, Fig26HomogeneousFamily) {
  // Sec. 10.2: the complete suite (best first-fit order) allocates M+1
  // for every M, N; non-shared needs M(N+1).
  for (int m : {2, 4, 7}) {
    for (int n : {3, 5}) {
      const Graph g = homogeneous_mesh(m, n);
      CompileOptions options;
      options.order = OrderHeuristic::kTopological;
      const CompileResult res = compile(g, options);
      const std::int64_t ffstart =
          first_fit(res.wig, res.lifetimes, FirstFitOrder::kByStartTime)
              .total_size;
      EXPECT_EQ(std::min(res.shared_size, ffstart), m + 1)
          << "M=" << m << " N=" << n;
      EXPECT_EQ(res.nonshared_bufmem, m * (n + 1));
    }
  }
}

TEST(PaperExamples, Sec8ScheduleStepSemantics) {
  // "the looped schedule 2(A 3B) would be considered to take 4 time steps"
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 3, 1);
  const ScheduleTree tree(
      g, Schedule::loop(2, {Schedule::leaf(a), Schedule::leaf(b, 3)}));
  EXPECT_EQ(tree.total_duration(), 4);
}

TEST(PaperExamples, Sec84MixedRadixIncrement) {
  // "(0,1,1) + 1 = (1,0,0): next starting time 28" with basis (2,2,2),
  // weights (28,13,4).
  const PeriodicInterval p(0, 1, {4, 13, 28}, {2, 2, 2});
  // Occurrence at 17 = 13 + 4; the next is 28.
  ASSERT_TRUE(p.live_at(17));
  EXPECT_EQ(p.next_start_at_or_after(18), 28);
}

}  // namespace
}  // namespace sdf
