#include "sdf/analysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "graphs/satellite.h"
#include "test_util.h"

namespace sdf {
namespace {

Graph diamond() {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.connect(a, b);
  g.connect(a, c);
  g.connect(b, d);
  g.connect(c, d);
  return g;
}

Graph cycle3() {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.connect(a, b);
  g.connect(b, c);
  g.connect(c, a);
  return g;
}

TEST(Analysis, AcyclicDetection) {
  EXPECT_TRUE(is_acyclic(diamond()));
  EXPECT_FALSE(is_acyclic(cycle3()));
  EXPECT_TRUE(is_acyclic(Graph{}));
}

TEST(Analysis, ConnectivityDetection) {
  EXPECT_TRUE(is_connected(diamond()));
  Graph g;
  g.add_actor("A");
  g.add_actor("B");
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph{}));
  Graph single;
  single.add_actor("A");
  EXPECT_TRUE(is_connected(single));
}

TEST(Analysis, HomogeneousDetection) {
  EXPECT_TRUE(is_homogeneous(diamond()));
  EXPECT_FALSE(is_homogeneous(testing::fig1_graph()));
}

TEST(Analysis, ChainOrderOnChain) {
  const Graph g = testing::chain({{1, 2}, {3, 4}, {5, 6}});
  const auto order = chain_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<ActorId>{0, 1, 2, 3}));
}

TEST(Analysis, ChainOrderRejectsBranching) {
  EXPECT_FALSE(chain_order(diamond()).has_value());
}

TEST(Analysis, ChainOrderRejectsCycle) {
  EXPECT_FALSE(chain_order(cycle3()).has_value());
}

TEST(Analysis, ChainOrderRejectsDisconnected) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.connect(a, b);
  g.add_actor("C");
  EXPECT_FALSE(chain_order(g).has_value());
}

TEST(Analysis, TopologicalSortIsDeterministicAndValid) {
  const Graph g = diamond();
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(is_topological_order(g, *order));
  EXPECT_EQ(*order, (std::vector<ActorId>{0, 1, 2, 3}));  // id tie-break
}

TEST(Analysis, TopologicalSortFailsOnCycle) {
  EXPECT_FALSE(topological_sort(cycle3()).has_value());
}

TEST(Analysis, RandomTopologicalSortsAreAllValid) {
  const Graph g = satellite_receiver();
  std::mt19937 rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(is_topological_order(g, random_topological_sort(g, rng)));
  }
}

TEST(Analysis, RandomTopologicalSortThrowsOnCycle) {
  std::mt19937 rng(1);
  const Graph g = cycle3();
  EXPECT_THROW(random_topological_sort(g, rng), std::invalid_argument);
}

TEST(Analysis, IsTopologicalOrderRejectsBadInputs) {
  const Graph g = diamond();
  EXPECT_FALSE(is_topological_order(g, {0, 1, 2}));        // missing actor
  EXPECT_FALSE(is_topological_order(g, {0, 1, 1, 3}));     // duplicate
  EXPECT_FALSE(is_topological_order(g, {3, 1, 2, 0}));     // edge violated
  EXPECT_FALSE(is_topological_order(g, {0, 1, 2, 9}));     // out of range
  EXPECT_TRUE(is_topological_order(g, {0, 2, 1, 3}));
}

TEST(Analysis, ReachableFromFollowsDirection) {
  const Graph g = diamond();
  const auto reach = reachable_from(g, 0);
  EXPECT_FALSE(reach[0]);  // A not on a cycle
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_TRUE(reach[3]);
  const auto reach_b = reachable_from(g, 1);
  EXPECT_FALSE(reach_b[0]);
  EXPECT_FALSE(reach_b[2]);
  EXPECT_TRUE(reach_b[3]);
}

TEST(Analysis, SccSingletonsInDag) {
  const auto comp = strongly_connected_components(diamond());
  // All components distinct in a DAG.
  std::vector<std::int32_t> sorted = comp;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Analysis, SccDetectsCycle) {
  const auto comp = strongly_connected_components(cycle3());
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
}

TEST(Analysis, SccMixed) {
  // cycle B<->C reachable from A, leading to D.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.connect(a, b);
  g.connect(b, c);
  g.connect(c, b);
  g.connect(c, d);
  const auto comp = strongly_connected_components(g);
  EXPECT_EQ(comp[b], comp[c]);
  EXPECT_NE(comp[a], comp[b]);
  EXPECT_NE(comp[d], comp[b]);
}

}  // namespace
}  // namespace sdf
