#include "sched/cyclic.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(Cyclic, AcyclicGraphStaysSingleAppearance) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver()}) {
    const CyclicScheduleResult r = schedule_cyclic(g);
    EXPECT_TRUE(r.is_single_appearance) << g.name();
    EXPECT_EQ(r.nontrivial_components, 0) << g.name();
    EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule)) << g.name();
  }
}

TEST(Cyclic, SimpleFeedbackLoop) {
  // A <-> B with one initial token on the back edge.
  Graph g("loop");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1, 1);
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_EQ(r.nontrivial_components, 1);
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
}

TEST(Cyclic, MultirateFeedbackLoop) {
  // A -(2/3)-> B -(3/2)-> A with enough initial tokens: q = (3, 2).
  Graph g("mloop");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 3);
  g.add_edge(b, a, 3, 2, 4);
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_EQ(r.q, (Repetitions{3, 2}));
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
}

TEST(Cyclic, CycleFeedingDownstreamChain) {
  // Feedback pair feeding an acyclic tail; outer DAG machinery must nest
  // the component invocations.
  Graph g("looptail");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1, 1);
  g.add_edge(b, c, 1, 2);  // q(C) = q(B)/2
  g.add_edge(c, d, 1, 1);
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_EQ(r.q, (Repetitions{2, 2, 1, 1}));
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
  EXPECT_EQ(r.nontrivial_components, 1);
}

TEST(Cyclic, TightlyInterdependentFallsBackToOneInvocation) {
  // q = (2, 2) but only one token in the loop: per-invocation (1,1)
  // schedules exist (A B), so gcd splitting works; starve it more by
  // requiring 2 tokens per firing with only 2 initial: q = (2,2),
  // A needs both tokens each firing.
  Graph g("tight");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 1);      // B fires twice per A
  g.add_edge(b, a, 1, 2, 2);   // A needs 2 back-tokens
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{1, 2}));
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
}

TEST(Cyclic, DeadlockedLoopThrows) {
  Graph g("dead");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1);  // no initial tokens anywhere
  EXPECT_THROW(schedule_cyclic(g), std::runtime_error);
}

TEST(Cyclic, SelfLoopState) {
  Graph g("state");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, a, 1, 1, 1);  // unit-delay self loop (state variable)
  g.add_edge(a, b, 1, 2);
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
  EXPECT_EQ(r.nontrivial_components, 1);
}

TEST(Cyclic, SelfLoopWithInsufficientDelayThrows) {
  Graph g("starved");
  const ActorId a = g.add_actor("A");
  g.add_edge(a, a, 1, 2, 1);  // needs 2, provides 1, returns 1
  EXPECT_FALSE(analyze_consistency(g).consistent);
  EXPECT_THROW(schedule_cyclic(g), std::runtime_error);
}

TEST(Cyclic, RpmcVariantAlsoWorks) {
  Graph g("looptail2");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1, 2);
  g.add_edge(b, c, 2, 1);
  CyclicScheduleOptions options;
  options.use_apgan = false;
  const CyclicScheduleResult r = schedule_cyclic(g, options);
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
}

TEST(Cyclic, NestedTwoComponents) {
  // Two feedback pairs in series.
  Graph g("twoLoops");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1, 1);
  g.add_edge(b, c, 1, 1);
  g.add_edge(c, d, 1, 1);
  g.add_edge(d, c, 1, 1, 1);
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_EQ(r.nontrivial_components, 2);
  EXPECT_TRUE(is_valid_schedule(g, r.q, r.schedule));
}

TEST(Cyclic, BufmemReported) {
  const Graph g = cd_to_dat();
  const CyclicScheduleResult r = schedule_cyclic(g);
  EXPECT_EQ(r.nonshared_bufmem, simulate(g, r.schedule).buffer_memory);
  EXPECT_GT(r.nonshared_bufmem, 0);
}

}  // namespace
}  // namespace sdf
