// The adaptive control plane (src/service/control.h, docs/CONTROL.md):
// the per-bucket cost model's integer EWMA, the feedback controller's
// exact control law (hysteresis, clamps, boost grant/decay, quiet
// resets, ladder ordering), the canonical decision-line rendering the
// determinism gate compares byte-for-byte, trace record round-trips and
// the strict read_trace() rejection rules, the reset-on-snapshot
// telemetry windows, and the virtual-time trace simulator's determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "service/control.h"
#include "service/protocol.h"
#include "service/qos.h"
#include "service/server.h"
#include "service/trace.h"
#include "util/journal.h"
#include "util/status.h"

namespace sdf::svc::ctl {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------------- cost model

TEST(CostModel, BucketsAreFloorLog2OfActorCount) {
  EXPECT_EQ(cost_bucket(0), 0);
  EXPECT_EQ(cost_bucket(1), 0);
  EXPECT_EQ(cost_bucket(2), 1);
  EXPECT_EQ(cost_bucket(3), 1);
  EXPECT_EQ(cost_bucket(4), 2);
  EXPECT_EQ(cost_bucket(7), 2);
  EXPECT_EQ(cost_bucket(8), 3);
  EXPECT_EQ(cost_bucket(15), 3);
  EXPECT_EQ(cost_bucket(16), 4);
  EXPECT_EQ(cost_bucket(31), 4);
  EXPECT_EQ(cost_bucket(32), 5);
  EXPECT_EQ(cost_bucket(63), 5);
  EXPECT_EQ(cost_bucket(64), 6);
  EXPECT_EQ(cost_bucket(1'000'000), 6);  // everything huge shares the top

  EXPECT_EQ(cost_bucket_floor(0), 1);
  EXPECT_EQ(cost_bucket_floor(3), 8);
  EXPECT_EQ(cost_bucket_floor(6), 64);
}

TEST(CostModel, FirstSampleSeedsTheAverageExactly) {
  CostModel model;
  model.record(10, 8'000'000);  // bucket 3 (8-15 actors)
  EXPECT_EQ(model.buckets()[3].samples, 1);
  EXPECT_EQ(model.buckets()[3].ewma_ns, 8'000'000);
  EXPECT_EQ(model.estimate_ms(10, 999), 8);
}

TEST(CostModel, EwmaAlphaIsExactlyOneEighth) {
  CostModel model;
  model.record(10, 8'000'000);
  model.record(12, 16'000'000);  // same bucket: 8e6 + (16e6-8e6)/8
  EXPECT_EQ(model.buckets()[3].ewma_ns, 9'000'000);
  model.record(15, 1'000'000);  // 9e6 + (1e6-9e6)/8 = 8e6
  EXPECT_EQ(model.buckets()[3].ewma_ns, 8'000'000);
  EXPECT_EQ(model.buckets()[3].samples, 3);
}

TEST(CostModel, BucketsAreIndependent) {
  CostModel model;
  model.record(2, 1'000'000);       // bucket 1
  model.record(100, 500'000'000);   // bucket 6
  EXPECT_EQ(model.estimate_ms(3, 999), 1);    // bucket 1: 1ms
  EXPECT_EQ(model.estimate_ms(200, 999), 500);  // bucket 6: 500ms
  EXPECT_EQ(model.estimate_ms(8, 999), 999);  // bucket 3 empty: fallback
}

TEST(CostModel, EstimateCeilsClampsAndFallsBack) {
  CostModel model;
  EXPECT_EQ(model.estimate_ms(4, 123), 123);  // empty bucket -> fallback
  model.record(4, 1'500'001);
  EXPECT_EQ(model.estimate_ms(4, 123), 2);  // ceil(1.500001ms)
  CostModel tiny;
  tiny.record(4, 10);  // 10ns rounds up to the 1ms floor
  EXPECT_EQ(tiny.estimate_ms(4, 123), 1);
  CostModel huge;
  huge.record(4, 900'000'000'000'000);  // corrupt sample: clamped at cap
  EXPECT_EQ(huge.estimate_ms(4, 123), CostModel::kEstimateCapMs);
  CostModel negative;
  negative.record(4, -5);  // negative walls are dropped, not recorded
  EXPECT_EQ(negative.buckets()[2].samples, 0);
}

// ----------------------------------------------------------- controller

/// Interval with `overloaded` sheds and `degraded` capped-tier serves
/// out of `requests` total.
IntervalMetrics interval(std::int64_t requests, std::int64_t overloaded,
                         std::int64_t degraded) {
  IntervalMetrics m;
  m.requests = requests;
  m.overloaded = overloaded;
  m.shed_degraded = degraded;
  return m;
}

TEST(Controller, UtilityScoresFullDegradedAndShed) {
  // 7 full * 1.0 + 2 degraded * 0.5 - 1 shed * 2.0 over 10 requests.
  EXPECT_EQ(utility_x1000(interval(10, 1, 2)), 600);
  EXPECT_EQ(utility_x1000(interval(10, 0, 0)), 1000);  // all full fidelity
  EXPECT_EQ(utility_x1000(interval(0, 0, 0)), 0);      // empty window
  EXPECT_EQ(utility_x1000(interval(10, 10, 0)), -2000);  // everything shed
}

TEST(Controller, ReliefWaitsForHysteresisThenStepsTripsDown) {
  Controller ctl;  // defaults: hysteresis 2, step 50, trips 500/750
  const Decision first = ctl.tick(interval(10, 5, 0));  // shed 50% > 8%
  EXPECT_EQ(first.reason, "hold");  // one hot interval is not a trend
  EXPECT_EQ(first.knobs.capped_x1000, 500);
  EXPECT_EQ(first.shed_x1000, 500);

  const Decision second = ctl.tick(interval(10, 5, 0));
  EXPECT_EQ(second.reason, "relief");
  EXPECT_EQ(second.knobs.capped_x1000, 450);
  EXPECT_EQ(second.knobs.degraded_x1000, 700);
  EXPECT_EQ(second.adjustments, 2);  // both trip points moved
  EXPECT_EQ(second.clamped, 0);

  // The applied step re-arms the hysteresis: the very next hot interval
  // holds again instead of stepping every tick.
  const Decision third = ctl.tick(interval(10, 5, 0));
  EXPECT_EQ(third.reason, "hold");
  EXPECT_EQ(third.knobs.capped_x1000, 450);
}

TEST(Controller, QuietWindowsResetEveryStreak) {
  Controller ctl;
  ctl.tick(interval(10, 5, 0));  // relief streak 1
  const Decision quiet = ctl.tick(interval(2, 2, 0));  // below min_requests
  EXPECT_EQ(quiet.reason, "quiet");
  // The lull wiped the streak: two more hot intervals are needed.
  EXPECT_EQ(ctl.tick(interval(10, 5, 0)).reason, "hold");
  EXPECT_EQ(ctl.tick(interval(10, 5, 0)).reason, "relief");
}

TEST(Controller, ReliefClampsAtTheFloorAndKeepsTheLadderOrdered) {
  Controller ctl;
  // Drive relief to the floor: one step per two hot intervals.
  for (int i = 0; i < 40; ++i) ctl.tick(interval(10, 9, 0));
  EXPECT_EQ(ctl.knobs().capped_x1000, 200);    // capped_min
  EXPECT_EQ(ctl.knobs().degraded_x1000, 300);  // degraded_min
  EXPECT_GT(ctl.clamped(), 0);
  // Pinned floor: further relief changes nothing but still counts clamps.
  const std::int64_t clamped_before = ctl.clamped();
  ctl.tick(interval(10, 9, 0));
  const Decision d = ctl.tick(interval(10, 9, 0));
  EXPECT_EQ(d.adjustments, 0);
  EXPECT_EQ(d.clamped, 2);
  EXPECT_EQ(ctl.clamped(), clamped_before + 2);
}

TEST(Controller, RecoverStepsTripsUpAndClampsAtTheCeiling) {
  Controller ctl;
  // Healthy shed (0%) but 40% of responses degraded: fidelity is being
  // left on the table.
  ctl.tick(interval(10, 0, 4));
  const Decision d = ctl.tick(interval(10, 0, 4));
  EXPECT_EQ(d.reason, "recover");
  EXPECT_EQ(d.knobs.capped_x1000, 550);
  EXPECT_EQ(d.knobs.degraded_x1000, 800);
  for (int i = 0; i < 40; ++i) ctl.tick(interval(10, 0, 4));
  EXPECT_EQ(ctl.knobs().capped_x1000, 900);    // capped_max
  EXPECT_EQ(ctl.knobs().degraded_x1000, 950);  // degraded_max
}

TEST(Controller, BoostGrantsWhenOneTenantStarvesThenDecaysWhenCalm) {
  Controller ctl;
  // "hog" sheds 80% while the other 90 requests all succeed; global shed
  // is exactly 8.0% — not above shed_hi, so relief stays out of the way.
  IntervalMetrics starving = interval(100, 8, 0);
  starving.tenant_requests = {{"hog", 10}, {"light", 90}};
  starving.tenant_overloaded = {{"hog", 8}};

  EXPECT_EQ(ctl.tick(starving).reason, "hold");
  const Decision granted = ctl.tick(starving);
  EXPECT_EQ(granted.reason, "boost");
  ASSERT_EQ(granted.knobs.boost_x1000.count("hog"), 1u);
  EXPECT_EQ(granted.knobs.boost_x1000.at("hog"), 1250);
  EXPECT_EQ(granted.adjustments, 1);

  // Once the tenant calms down the boost decays a step — and a boost
  // back at 1.0x is erased entirely (absent means no multiplier).
  IntervalMetrics calm = interval(100, 0, 0);
  calm.tenant_requests = {{"hog", 10}, {"light", 90}};
  ctl.tick(calm);
  const Decision decayed = ctl.tick(calm);
  EXPECT_EQ(decayed.reason, "boost");
  EXPECT_TRUE(decayed.knobs.boost_x1000.empty());
}

TEST(Controller, BoostClampsAtTwoX) {
  Controller ctl;
  IntervalMetrics starving = interval(100, 8, 0);
  starving.tenant_requests = {{"hog", 10}, {"light", 90}};
  starving.tenant_overloaded = {{"hog", 8}};
  for (int i = 0; i < 20; ++i) ctl.tick(starving);
  EXPECT_EQ(ctl.knobs().boost_x1000.at("hog"), 2000);  // boost_max
  const std::int64_t adjustments = ctl.adjustments();
  ctl.tick(starving);
  const Decision d = ctl.tick(starving);
  EXPECT_EQ(d.clamped, 1);  // wanted 2250, pinned at 2000
  EXPECT_EQ(ctl.adjustments(), adjustments);  // nothing actually moved
}

TEST(Controller, SameMetricsSequenceYieldsIdenticalDecisionLines) {
  // The determinism contract the replay harness relies on: the
  // controller is pure, so two instances fed the same interval sequence
  // render byte-identical decision logs.
  std::vector<IntervalMetrics> sequence;
  for (int i = 0; i < 12; ++i) {
    IntervalMetrics m = interval(10 + i % 3, (i * 7) % 10, i % 4);
    m.tenant_requests = {{"a", 5}, {"b", 5 + i % 3}};
    m.tenant_overloaded = {{"a", (i * 7) % 10}};
    sequence.push_back(m);
  }
  Controller one;
  Controller two;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const std::string line_one = Controller::decision_line(
        static_cast<std::int64_t>(i), sequence[i], one.tick(sequence[i]));
    const std::string line_two = Controller::decision_line(
        static_cast<std::int64_t>(i), sequence[i], two.tick(sequence[i]));
    EXPECT_EQ(line_one, line_two) << "tick " << i;
  }
  EXPECT_EQ(one.ticks(), two.ticks());
  EXPECT_EQ(one.adjustments(), two.adjustments());
  EXPECT_EQ(one.clamped(), two.clamped());
}

TEST(Controller, DecisionLineCarriesEveryField) {
  Controller ctl;
  const IntervalMetrics m = interval(10, 5, 0);
  const Decision d = ctl.tick(m);
  const std::string line = Controller::decision_line(0, m, d);
  EXPECT_EQ(line,
            "tick=0 req=10 shed_x1000=500 deg_x1000=0 util_x1000=-500 "
            "capped_x1000=500 degraded_x1000=750 boosts=- adj=0 clamped=0 "
            "reason=hold");
}

// ------------------------------------------------------- trace records

TraceRecord sample_record() {
  TraceRecord rec;
  rec.tick_us = 12'345;
  rec.lane = 3;
  rec.tenant = "batch";
  rec.key_hex = "00deadbeef00cafe";
  rec.outcome = "ok";
  rec.shed = true;
  rec.full_fidelity = false;
  rec.deadline_ms = 250;
  rec.cost_ms = 40;
  rec.actors = 17;
  rec.wall_ns = 5'000'000;
  rec.wall_ns_capped = 2'000'000;
  rec.wall_ns_degraded = 1'000'000;
  rec.response_hash = "0123456789abcdef";
  rec.request = "raw request bytes \x01\x02";
  return rec;
}

TEST(TraceFormat, RecordRoundTripsEveryField) {
  const TraceRecord rec = sample_record();
  const Result<TraceRecord> back = parse_trace_record(encode_trace_record(rec));
  ASSERT_TRUE(back.ok()) << back.error().message;
  const TraceRecord& r = back.value();
  EXPECT_EQ(r.tick_us, rec.tick_us);
  EXPECT_EQ(r.lane, rec.lane);
  EXPECT_EQ(r.tenant, rec.tenant);
  EXPECT_EQ(r.key_hex, rec.key_hex);
  EXPECT_EQ(r.outcome, rec.outcome);
  EXPECT_EQ(r.shed, rec.shed);
  EXPECT_EQ(r.full_fidelity, rec.full_fidelity);
  EXPECT_EQ(r.deadline_ms, rec.deadline_ms);
  EXPECT_EQ(r.cost_ms, rec.cost_ms);
  EXPECT_EQ(r.actors, rec.actors);
  EXPECT_EQ(r.wall_ns, rec.wall_ns);
  EXPECT_EQ(r.wall_ns_capped, rec.wall_ns_capped);
  EXPECT_EQ(r.wall_ns_degraded, rec.wall_ns_degraded);
  EXPECT_EQ(r.response_hash, rec.response_hash);
  EXPECT_EQ(r.request, rec.request);
}

TEST(TraceFormat, ParseRejectsGarbageAndMissingFields) {
  EXPECT_FALSE(parse_trace_record("not json").ok());
  EXPECT_FALSE(parse_trace_record("{}").ok());
  // An outcome-free record is unreplayable, not defaultable.
  EXPECT_FALSE(
      parse_trace_record(
          R"({"tick_us": 1, "lane": 0, "tenant": "", "key": "k"})")
          .ok());
}

/// Scratch path under /tmp, removed on destruction.
struct TracePath {
  std::string path;
  TracePath() {
    static int counter = 0;
    path = "/tmp/sdfctl_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".trace";
    fs::remove(path);
  }
  ~TracePath() {
    std::error_code ec;
    fs::remove(path, ec);
  }
};

TEST(TraceFile, WriteReadRoundTripSortsByTickThenLane) {
  TracePath scratch;
  {
    auto writer = TraceWriter::create(scratch.path);
    TraceRecord late = sample_record();
    late.tick_us = 900;
    late.lane = 0;
    TraceRecord early = sample_record();
    early.tick_us = 100;
    early.lane = 2;
    TraceRecord mid = sample_record();
    mid.tick_us = 900;
    mid.lane = 0;
    mid.tenant = "second-on-lane";  // same (tick, lane): append order wins
    writer->append(late);
    writer->append(early);
    writer->append(mid);
    EXPECT_EQ(writer->records(), 3);
  }
  const Trace trace = read_trace(scratch.path);
  ASSERT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.records[0].tick_us, 100);
  EXPECT_EQ(trace.records[1].tenant, "batch");
  EXPECT_EQ(trace.records[2].tenant, "second-on-lane");
}

TEST(TraceFile, CreateRefusesToOverwriteAnExistingTrace) {
  TracePath scratch;
  { auto writer = TraceWriter::create(scratch.path); }
  EXPECT_THROW(TraceWriter::create(scratch.path), BadArgumentError);
}

TEST(TraceFile, MissingFileIsAnIoError) {
  EXPECT_THROW(read_trace("/tmp/sdfctl_definitely_absent.trace"), IoError);
}

TEST(TraceFile, TornTailIsRejectedNotSilentlyTruncated) {
  TracePath scratch;
  {
    auto writer = TraceWriter::create(scratch.path);
    writer->append(sample_record());
    writer->append(sample_record());
  }
  // Chop mid-record: the batch journal would shrug this off as crash
  // debris; a trace consumer must refuse to replay a partial workload.
  const auto size = fs::file_size(scratch.path);
  fs::resize_file(scratch.path, size - 5);
  EXPECT_THROW(read_trace(scratch.path), CorruptJournalError);
}

TEST(TraceFile, WrongSchemaHeaderIsRejected) {
  TracePath scratch;
  {
    util::JournalWriter journal = util::JournalWriter::create(
        scratch.path, R"({"schema": "sdfmem.batch.v1"})");
    journal.append(encode_trace_record(sample_record()));
  }
  EXPECT_THROW(read_trace(scratch.path), CorruptJournalError);
}

TEST(TraceFile, UnparseableRecordIsAParseError) {
  TracePath scratch;
  {
    util::JournalWriter journal = util::JournalWriter::create(
        scratch.path, R"({"schema": "sdfmem.trace.v1"})");
    journal.append("this is not a trace record");
  }
  EXPECT_THROW(read_trace(scratch.path), ParseError);
}

// -------------------------------------------------- telemetry windows

/// CounterWindow owns no global state, but the counter table it reads is
/// global — enable a fresh session per test.
class ControlTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ControlTelemetryTest, CounterWindowReportsDeltasAndRearms) {
  obs::CounterWindow window;
  obs::count("service.test.a", 5);
  auto first = window.snapshot("service.");
  EXPECT_EQ(first.at("service.test.a"), 5);

  obs::count("service.test.a", 2);
  auto second = window.snapshot("service.");
  EXPECT_EQ(second.at("service.test.a"), 2);  // delta, not the total 7

  // Nothing moved: the window is empty, not a repeat of stale totals.
  EXPECT_TRUE(window.snapshot("service.").empty());
}

TEST_F(ControlTelemetryTest, CounterWindowFiltersByPrefix) {
  obs::CounterWindow window;
  obs::count("service.test.a", 1);
  obs::count("pipeline.test.b", 1);
  auto snap = window.snapshot("service.");
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.count("pipeline.test.b"), 0u);
  // The baseline re-armed against the FULL table: the pipeline counter
  // does not reappear as a stale delta under a wider prefix later.
  EXPECT_TRUE(window.snapshot("").empty());
}

TEST(LatencyWindow, DeltaSinceSubtractsAnEarlierSnapshot) {
  LatencyHistogram h;
  h.record(50);
  h.record(5'000);
  const LatencyHistogram baseline = h;
  h.record(50);
  h.record(200'000);
  const LatencyHistogram delta = h.delta_since(baseline);
  EXPECT_EQ(delta.count, 2);
  EXPECT_EQ(delta.sum_us, 200'050);
  EXPECT_EQ(h.count, 4);  // the source histogram is untouched
}

// ------------------------------------------------- trace simulation

/// A small adversarial trace: a hog streaming unique graphs on two lanes
/// interleaved with a light tenant repeating one cacheable graph.
Trace synthetic_trace() {
  CompileRequest req;
  req.graph_text = "graph tiny\nactor A\nactor B\nedge A B 2 3\n";
  req.options.optimizer = LoopOptimizer::kChainExact;  // fully degradable

  Trace trace;
  for (int i = 0; i < 40; ++i) {
    TraceRecord rec;
    rec.tick_us = i * 500;
    rec.lane = 1 + i % 2;
    rec.tenant = "hog";
    rec.key_hex = "h0g" + std::to_string(i % 8);
    rec.outcome = "ok";
    rec.actors = 2;
    rec.wall_ns = 2'000'000;
    rec.wall_ns_capped = 800'000;
    rec.wall_ns_degraded = 300'000;
    req.tenant = "hog";
    rec.request = encode_compile_request(req);
    trace.records.push_back(rec);
  }
  for (int i = 0; i < 10; ++i) {
    TraceRecord rec;
    rec.tick_us = i * 2'000;
    rec.lane = 0;
    rec.tenant = "light";
    rec.key_hex = "light-shared-key";
    rec.outcome = "ok";
    rec.actors = 2;
    rec.wall_ns = 2'000'000;
    rec.wall_ns_capped = 800'000;
    rec.wall_ns_degraded = 300'000;
    req.tenant = "light";
    rec.request = encode_compile_request(req);
    trace.records.push_back(rec);
  }
  return trace;
}

SimOptions sim_options(bool controller_on, int compression) {
  SimOptions options;
  options.slots = 2;
  options.queue_capacity = 4;
  options.default_cost_ms = 50;  // gross overestimate of the 2ms truth
  options.compression = compression;
  options.controller_on = controller_on;
  options.control_interval_ms = 5;
  qos::TenantSettings light;
  light.weight = 8.0;
  options.tenants.add("light", light);
  options.tenants.add("hog", qos::TenantSettings{});
  return options;
}

TEST(SimulateTrace, ConservesRequestsAcrossOutcomes) {
  const Trace trace = synthetic_trace();
  const SimResult r = simulate_trace(trace, sim_options(false, 1));
  EXPECT_EQ(r.requests, 50);
  EXPECT_EQ(r.requests,
            r.cache_hits + r.overloaded + r.shed_degraded + r.served_full);
  EXPECT_TRUE(r.decisions.empty());  // controller off: no decision log
  std::int64_t tenant_total = 0;
  for (const auto& [name, totals] : r.tenants) tenant_total += totals.requests;
  EXPECT_EQ(tenant_total, r.requests);
}

TEST(SimulateTrace, IsByteDeterministicAcrossRuns) {
  const Trace trace = synthetic_trace();
  for (const bool on : {false, true}) {
    for (const int compression : {1, 2, 4}) {
      const SimOptions options = sim_options(on, compression);
      const SimResult a = simulate_trace(trace, options);
      const SimResult b = simulate_trace(trace, options);
      // The decision log is the determinism gate: byte-identical lines.
      EXPECT_EQ(a.decisions, b.decisions)
          << "on=" << on << " compression=" << compression;
      EXPECT_EQ(a.requests, b.requests);
      EXPECT_EQ(a.overloaded, b.overloaded);
      EXPECT_EQ(a.shed_degraded, b.shed_degraded);
      EXPECT_EQ(a.cache_hits, b.cache_hits);
      EXPECT_EQ(a.served_full, b.served_full);
      EXPECT_EQ(a.p95_us, b.p95_us);
      EXPECT_EQ(a.final_knobs.capped_x1000, b.final_knobs.capped_x1000);
      EXPECT_EQ(a.final_knobs.degraded_x1000, b.final_knobs.degraded_x1000);
      ASSERT_EQ(a.intervals.size(), b.intervals.size());
      for (std::size_t i = 0; i < a.intervals.size(); ++i) {
        EXPECT_EQ(a.intervals[i].requests, b.intervals[i].requests);
        EXPECT_EQ(a.intervals[i].overloaded, b.intervals[i].overloaded);
        EXPECT_EQ(a.intervals[i].p95_us, b.intervals[i].p95_us);
      }
      if (on) EXPECT_FALSE(a.decisions.empty());
    }
  }
}

TEST(SimulateTrace, ControllerOnTicksOncePerInterval) {
  const Trace trace = synthetic_trace();  // spans ~20ms of virtual time
  const SimResult r = simulate_trace(trace, sim_options(true, 1));
  // One decision per elapsed 5ms interval plus the trailing partial
  // window; the exact count is pinned by the virtual clock, not wall time.
  EXPECT_EQ(r.decisions.size(), r.intervals.size());
  EXPECT_GE(r.decisions.size(), 4u);
}

TEST(SimulateTrace, CompressionSqueezesArrivalsNotServiceTimes) {
  const Trace trace = synthetic_trace();
  const SimResult relaxed = simulate_trace(trace, sim_options(false, 1));
  const SimResult squeezed = simulate_trace(trace, sim_options(false, 4));
  // 4x compression quadruples the offered load; with service times
  // unchanged the same trace must shed at least as much, and the virtual
  // span must shrink.
  EXPECT_GE(squeezed.overloaded + squeezed.shed_degraded,
            relaxed.overloaded + relaxed.shed_degraded);
  ASSERT_FALSE(relaxed.intervals.empty());
  ASSERT_FALSE(squeezed.intervals.empty());
  EXPECT_LT(squeezed.intervals.back().end_ms, relaxed.intervals.back().end_ms);
}

}  // namespace
}  // namespace sdf::svc::ctl
