#include "codegen/code_size.h"

#include <gtest/gtest.h>

#include "graphs/fir.h"
#include "sched/loop_compaction.h"
#include "sched/sas.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(CodeSize, InlineCountsAppearancesAndLoops) {
  const Graph g = testing::fig2_graph();
  const CodeSizeModel model = CodeSizeModel::uniform(g, 10);
  // (3A)(6B)(2C): three leaves with residual counts -> 3 blocks + 3 loops.
  const Schedule flat = parse_schedule(g, "(3A)(6B)(2C)");
  EXPECT_EQ(inline_code_size(flat, model), 30 + 3 * 2);
  // (3 (A)(2B))(2C): 3 blocks, loops: outer 3x, inner leaf 2B, leaf 2C.
  const Schedule nested = parse_schedule(g, "(3 (A)(2B))(2C)");
  EXPECT_EQ(inline_code_size(nested, model), 30 + 3 * 2);
}

TEST(CodeSize, InlineGrowsWithAppearances) {
  const Graph g = testing::fig2_graph();
  const CodeSizeModel model = CodeSizeModel::uniform(g, 10);
  const Schedule sas = parse_schedule(g, "(3A)(6B)(2C)");
  const Schedule interleaved = parse_schedule(g, "A 2B A B C A 3B C");
  EXPECT_LT(inline_code_size(sas, model),
            inline_code_size(interleaved, model));
}

TEST(CodeSize, SubroutineSharesTypeBlocks) {
  const Graph g = testing::fig2_graph();
  CodeSizeModel model = CodeSizeModel::uniform(g, 10);
  model.type_of = {0, 0, 0};  // everything one type
  const Schedule s = parse_schedule(g, "(3A)(6B)(2C)");
  // One shared block + 3 call sites + 3 leaf loops.
  EXPECT_EQ(subroutine_code_size(s, model), 10 + 3 * 2 + 3 * 2);
}

TEST(CodeSize, SubroutineUsesLargestBlockPerType) {
  const Graph g = testing::fig2_graph();
  CodeSizeModel model;
  model.actor_size = {10, 30, 20};
  model.type_of = {7, 7, 9};
  const Schedule s = parse_schedule(g, "A B C");
  // type 7 -> max(10,30)=30, type 9 -> 20; 3 calls, no loops.
  EXPECT_EQ(subroutine_code_size(s, model), 50 + 3 * 2);
}

TEST(CodeSize, SubroutineWinsWhenInstancesShareTypes) {
  // The Sec. 11.2 trade-off on the fine-grained FIR: inline grows with
  // taps, subroutine code stays near-constant.
  const FirGraph small = fir_fine_grained(4);
  const FirGraph big = fir_fine_grained(16);
  auto sizes = [](const FirGraph& fir) {
    const Repetitions q = repetitions_vector(fir.graph);
    const Schedule s = flat_sas(fir.graph, q);
    CodeSizeModel model = CodeSizeModel::uniform(fir.graph, 20);
    model.type_of = fir.type_of;
    return std::pair(inline_code_size(s, model),
                     subroutine_code_size(s, model));
  };
  const auto [inline_small, sub_small] = sizes(small);
  const auto [inline_big, sub_big] = sizes(big);
  EXPECT_GT(inline_big, inline_small * 2);
  EXPECT_LT(sub_big - sub_small, inline_big - inline_small);
  EXPECT_LT(sub_big, inline_big);
}

TEST(CodeSize, CompactionReducesInlineSize) {
  // Loop compaction's purpose: fewer appearances = less inline code.
  const Graph g = testing::fig2_graph();
  const CodeSizeModel model = CodeSizeModel::uniform(g, 10);
  const Schedule verbose = parse_schedule(g, "A A A 2B 2B 2B C C");
  const CompactionResult tight = recompact(verbose);
  EXPECT_LT(inline_code_size(tight.schedule, model),
            inline_code_size(verbose, model));
}

TEST(CodeSize, ThrowsOnActorOutsideModel) {
  CodeSizeModel model;
  model.actor_size = {10};
  EXPECT_THROW((void)inline_code_size(Schedule::leaf(3, 1), model),
               std::invalid_argument);
}

TEST(CodeSize, UniformFactory) {
  const Graph g = testing::fig2_graph();
  const CodeSizeModel model = CodeSizeModel::uniform(g, 7);
  EXPECT_EQ(model.actor_size, (std::vector<std::int64_t>{7, 7, 7}));
  EXPECT_TRUE(model.type_of.empty());
}

}  // namespace
}  // namespace sdf
