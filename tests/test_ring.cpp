// Property tests for the consistent-hash ring (service/ring.h): the
// balance and minimal-remap guarantees the fleet router's cache locality
// rests on (docs/SERVICE.md, "Fleet mode").
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "sdf/diagnostics.h"
#include "service/ring.h"
#include "util/status.h"

namespace sdf::svc {
namespace {

constexpr int kKeys = 20000;

std::vector<std::uint64_t> sample_keys(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> keys(kKeys);
  for (auto& k : keys) k = rng();
  return keys;
}

std::map<std::string, int> owner_histogram(
    const HashRing& ring, const std::vector<std::uint64_t>& keys) {
  std::map<std::string, int> counts;
  for (const std::uint64_t k : keys) ++counts[ring.owner(k)];
  return counts;
}

TEST(Ring, EmptyRingThrowsTypedError) {
  HashRing ring;
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_THROW((void)ring.owner(42), InternalError);
  EXPECT_TRUE(ring.owners(42, 3).empty());
}

TEST(Ring, RejectsEmptyId) {
  HashRing ring;
  EXPECT_THROW(ring.add(""), BadArgumentError);
}

TEST(Ring, AddIsIdempotentAndRemoveIsNoOpWhenAbsent) {
  HashRing ring;
  ring.add("w1");
  ring.add("w1");
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring.contains("w1"));
  ring.remove("ghost");
  EXPECT_EQ(ring.size(), 1u);
  ring.remove("w1");
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.contains("w1"));
}

TEST(Ring, SingleWorkerOwnsEverything) {
  HashRing ring;
  ring.add("only");
  for (const std::uint64_t k : sample_keys(1)) {
    EXPECT_EQ(ring.owner(k), "only");
  }
}

TEST(Ring, OwnershipIsDeterministicAcrossInsertionOrder) {
  HashRing forward;
  HashRing backward;
  const std::vector<std::string> ids = {"w1", "w2", "w3", "w4"};
  for (const auto& id : ids) forward.add(id);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) backward.add(*it);
  for (const std::uint64_t k : sample_keys(2)) {
    EXPECT_EQ(forward.owner(k), backward.owner(k));
  }
}

// The balance bound the header documents: with 64 vnodes, each of 4
// workers owns its ideal share of a large random keyspace within +-25%.
TEST(Ring, FourWorkersBalanceWithinTwentyFivePercent) {
  HashRing ring;
  for (const char* id : {"w1", "w2", "w3", "w4"}) ring.add(id);
  const auto keys = sample_keys(3);
  const auto counts = owner_histogram(ring, keys);
  ASSERT_EQ(counts.size(), 4u);
  const double ideal = static_cast<double>(kKeys) / 4.0;
  for (const auto& [id, n] : counts) {
    EXPECT_GT(n, ideal * 0.75) << id << " underloaded: " << n;
    EXPECT_LT(n, ideal * 1.25) << id << " overloaded: " << n;
  }
}

// Consistent-hashing contract: adding a worker moves keys ONLY onto the
// new worker (never between survivors), and fewer than 1/N of them.
TEST(Ring, AddingWorkerRemapsLessThanOneNth) {
  HashRing before;
  for (const char* id : {"w1", "w2", "w3", "w4"}) before.add(id);
  HashRing after;
  for (const char* id : {"w1", "w2", "w3", "w4", "w5"}) after.add(id);

  const auto keys = sample_keys(4);
  int moved = 0;
  for (const std::uint64_t k : keys) {
    const std::string& was = before.owner(k);
    const std::string& now = after.owner(k);
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, "w5") << "key moved between surviving workers";
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 4) << "added worker remapped >= 1/N of keys";
}

// Removing a worker reassigns ONLY its keys; survivors keep theirs.
TEST(Ring, RemovingWorkerOnlyMovesItsOwnKeys) {
  HashRing before;
  for (const char* id : {"w1", "w2", "w3", "w4"}) before.add(id);
  HashRing after;
  for (const char* id : {"w1", "w2", "w3", "w4"}) after.add(id);
  after.remove("w3");

  const auto keys = sample_keys(5);
  int moved = 0;
  for (const std::uint64_t k : keys) {
    const std::string& was = before.owner(k);
    const std::string& now = after.owner(k);
    if (was == "w3") {
      EXPECT_NE(now, "w3");
      ++moved;
    } else {
      EXPECT_EQ(was, now) << "survivor's key reshuffled";
    }
  }
  // w3's share was roughly 1/4; all of it (and nothing else) moved.
  EXPECT_LT(moved, kKeys / 2);
}

// owners() yields distinct workers starting at the owner — the failover
// preference order the router walks when the owner is dead.
TEST(Ring, OwnersAreDistinctAndStartAtOwner) {
  HashRing ring;
  for (const char* id : {"w1", "w2", "w3", "w4"}) ring.add(id);
  for (const std::uint64_t k : sample_keys(6)) {
    const auto order = ring.owners(k, 4);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), ring.owner(k));
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(Ring, OwnersClampsToRingSize) {
  HashRing ring;
  ring.add("w1");
  ring.add("w2");
  const auto order = ring.owners(7, 10);
  EXPECT_EQ(order.size(), 2u);
}

}  // namespace
}  // namespace sdf::svc
