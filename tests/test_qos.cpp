// Unit coverage for the multi-tenant QoS layer (service/qos.h,
// docs/TENANCY.md): token-bucket refill arithmetic at boundary costs,
// weighted-fair scheduling determinism, starvation freedom under a 10:1
// hog mix, throttle interactions, and the tenants-config parser. All of
// it runs on explicit timestamps — no sockets, no wall clock, so every
// assertion is exact and replayable.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/qos.h"

namespace sdf::svc::qos {
namespace {

// --- TokenBucket -----------------------------------------------------

TEST(TokenBucket, StartsFullAndRefillsAtExactRate) {
  // rate 1000 cost-ms/s, burst 2000 cost-ms. Accrual is integer: 1000
  // cost-ns per us, so affordability flips at an exact microsecond.
  TokenBucket bucket(1000, 2000);
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_EQ(bucket.available_ms(), 2000);  // born full

  bucket.refill(0);  // primes the clock
  EXPECT_TRUE(bucket.affordable(2000));
  bucket.spend(2000);
  EXPECT_EQ(bucket.available_ms(), 0);
  EXPECT_FALSE(bucket.affordable(1000));
  EXPECT_EQ(bucket.ready_in_us(1000), 1'000'000);

  bucket.refill(999'999);
  EXPECT_FALSE(bucket.affordable(1000));  // one us short
  bucket.refill(1'000'000);
  EXPECT_TRUE(bucket.affordable(1000));
}

TEST(TokenBucket, RefillClampsAtBurstAfterLongIdle) {
  TokenBucket bucket(100, 500);
  bucket.refill(0);
  bucket.spend(500);
  // An hour idle must not overflow or exceed the burst.
  bucket.refill(3'600'000'000LL);
  EXPECT_EQ(bucket.available_ms(), 500);
}

TEST(TokenBucket, CostAboveBurstIsAffordableAtFullBucket) {
  // The lizardfs oversized-front rule: a request costing more than the
  // whole burst passes when the bucket is full (and empties it), rather
  // than waiting forever for capacity that can never accumulate.
  TokenBucket bucket(100, 500);
  bucket.refill(0);
  EXPECT_TRUE(bucket.affordable(10'000));
  bucket.spend(10'000);
  EXPECT_EQ(bucket.available_ms(), 0);  // clamped at zero, no debt
  // It becomes affordable again exactly when the bucket is full again:
  // 500 cost-ms at 100 cost-ms/s = 5 s.
  EXPECT_EQ(bucket.ready_in_us(10'000), 5'000'000);
}

TEST(TokenBucket, BoundaryCostRefillUsesExactCeiling) {
  // rate 3 cost-ms/s: 1 cost-ms deficit needs ceil(1e6 / 3) us, not the
  // float-rounded value.
  TokenBucket bucket(3, 1);
  bucket.refill(0);
  bucket.spend(1);
  EXPECT_EQ(bucket.ready_in_us(1), 333'334);
  bucket.refill(333'333);
  EXPECT_FALSE(bucket.affordable(1));
  bucket.refill(333'334);
  EXPECT_TRUE(bucket.affordable(1));
}

TEST(TokenBucket, DefaultConstructedIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.affordable(1'000'000));
  EXPECT_EQ(bucket.ready_in_us(1'000'000), 0);
  bucket.spend(1'000'000);  // no-op
  EXPECT_TRUE(bucket.affordable(1));
}

TEST(TokenBucket, ZeroBurstDefaultsToOneSecondOfRate) {
  TokenBucket bucket(250, 0);
  EXPECT_EQ(bucket.available_ms(), 250);
}

TEST(TokenBucket, StaleTimestampsAreIgnored) {
  TokenBucket bucket(1000, 1000);
  bucket.refill(5'000'000);
  bucket.spend(1000);
  bucket.refill(4'000'000);  // clock went backwards: no accrual
  EXPECT_EQ(bucket.available_ms(), 0);
  bucket.refill(5'500'000);
  EXPECT_EQ(bucket.available_ms(), 500);
}

// --- WeightedFairQueue -----------------------------------------------

std::vector<std::string> pop_all(WeightedFairQueue& queue,
                                 std::int64_t now_us = 0) {
  std::vector<std::string> order;
  while (auto item = queue.pop(now_us)) order.push_back(item->tenant);
  return order;
}

TEST(WeightedFairQueue, EqualWeightsInterleaveDeterministically) {
  WeightedFairQueue queue;
  queue.add_tenant("a", 1.0, TokenBucket());
  queue.add_tenant("b", 1.0, TokenBucket());
  for (int i = 0; i < 4; ++i) {
    queue.push("a", 100);
    queue.push("b", 100);
  }
  const std::vector<std::string> order = pop_all(queue);
  // Identical virtual finish times tie-break on tenant name, so the
  // schedule is exactly alternating, "a" first — every run.
  const std::vector<std::string> expected{"a", "b", "a", "b",
                                          "a", "b", "a", "b"};
  EXPECT_EQ(order, expected);
}

TEST(WeightedFairQueue, ReplayIsByteForByteDeterministic) {
  const auto run = [] {
    WeightedFairQueue queue;
    queue.add_tenant("x", 2.0, TokenBucket());
    queue.add_tenant("y", 1.0, TokenBucket());
    queue.add_tenant("z", 1.0, TokenBucket());
    for (int i = 0; i < 5; ++i) {
      queue.push("z", 70);
      queue.push("x", 100);
      queue.push("y", 30);
    }
    return pop_all(queue);
  };
  EXPECT_EQ(run(), run());
}

TEST(WeightedFairQueue, WeightsShapeTheServiceRatio) {
  // heavy:light = 3:1 by weight, equal costs. In any long-enough pop
  // prefix, heavy gets ~3x the service.
  WeightedFairQueue queue;
  queue.add_tenant("heavy", 3.0, TokenBucket());
  queue.add_tenant("light", 1.0, TokenBucket());
  for (int i = 0; i < 12; ++i) queue.push("heavy", 100);
  for (int i = 0; i < 4; ++i) queue.push("light", 100);
  const std::vector<std::string> order = pop_all(queue);
  int heavy_in_first_8 = 0;
  for (int i = 0; i < 8; ++i) heavy_in_first_8 += order[i] == "heavy";
  EXPECT_EQ(heavy_in_first_8, 6);  // 3:1 ratio, exactly
}

TEST(WeightedFairQueue, NoStarvationUnderTenToOneHogMix) {
  // A hog with 100 queued compiles vs a light tenant with 10, equal
  // weights. SFQ bounds the light tenant's wait: its k-th item has
  // virtual finish k*cost, the same as the hog's k-th item, so each
  // light item appears within the first ~2k pops — never after the
  // hog's backlog drains.
  WeightedFairQueue queue;
  queue.add_tenant("hog", 1.0, TokenBucket());
  queue.add_tenant("light", 1.0, TokenBucket());
  for (int i = 0; i < 100; ++i) queue.push("hog", 100);
  for (int i = 0; i < 10; ++i) queue.push("light", 100);
  const std::vector<std::string> order = pop_all(queue);
  ASSERT_EQ(order.size(), 110u);
  int seen_light = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "light") ++seen_light;
    if (seen_light == 10) {
      EXPECT_LE(i, 20u) << "light tenant starved until pop " << i;
      break;
    }
  }
  EXPECT_EQ(seen_light, 10);
}

TEST(WeightedFairQueue, PerTenantOrderStaysFifo) {
  WeightedFairQueue queue;
  queue.add_tenant("a", 1.0, TokenBucket());
  queue.add_tenant("b", 4.0, TokenBucket());
  const std::uint64_t s1 = queue.push("a", 50);
  const std::uint64_t s2 = queue.push("a", 10);
  const std::uint64_t s3 = queue.push("a", 500);
  queue.push("b", 100);
  std::vector<std::uint64_t> a_seqs;
  while (auto item = queue.pop(0)) {
    if (item->tenant == "a") a_seqs.push_back(item->seq);
  }
  const std::vector<std::uint64_t> expected{s1, s2, s3};
  EXPECT_EQ(a_seqs, expected);  // FIFO within the tenant, regardless of cost
}

TEST(WeightedFairQueue, ThrottledTenantYieldsToOthers) {
  // hog can afford exactly one 100 cost-ms item (burst 100), then its
  // queue blocks; the light tenant keeps flowing.
  WeightedFairQueue queue;
  queue.add_tenant("hog", 1.0, TokenBucket(10, 100));
  queue.add_tenant("light", 1.0, TokenBucket());
  for (int i = 0; i < 3; ++i) queue.push("hog", 100);
  for (int i = 0; i < 3; ++i) queue.push("light", 100);
  const std::vector<std::string> order = pop_all(queue, /*now_us=*/0);
  const std::vector<std::string> expected{"hog", "light", "light", "light"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(queue.size(), 2u);  // two hog items stuck behind the bucket
  EXPECT_EQ(queue.depth("hog"), 2);

  // next_ready_us names the exact refill instant: 100 cost-ms at 10
  // cost-ms/s = 10 s.
  const auto ready = queue.next_ready_us(0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(*ready, 10'000'000);
  EXPECT_FALSE(queue.pop(*ready - 1).has_value());
  auto unlocked = queue.pop(*ready);
  ASSERT_TRUE(unlocked.has_value());
  EXPECT_EQ(unlocked->tenant, "hog");
}

TEST(WeightedFairQueue, DrainModeIgnoresThrottle) {
  WeightedFairQueue queue;
  queue.add_tenant("hog", 1.0, TokenBucket(1, 1));
  queue.push("hog", 1000);
  queue.push("hog", 1000);
  (void)queue.pop(0, /*ignore_throttle=*/true);
  auto second = queue.pop(0, /*ignore_throttle=*/true);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(queue.empty());
}

TEST(WeightedFairQueue, PushForUnknownTenantThrowsTyped) {
  WeightedFairQueue queue;
  queue.add_tenant("public", 1.0, TokenBucket());
  EXPECT_THROW((void)queue.push("ghost", 1), UnknownTenantError);
}

// --- TenantRegistry --------------------------------------------------

TEST(TenantRegistry, DefaultHoldsOnlyPublic) {
  const TenantRegistry registry;
  ASSERT_NE(registry.find("public"), nullptr);
  EXPECT_EQ(registry.find("public")->weight, 1.0);
  EXPECT_EQ(registry.find("public")->rate_ms_per_sec, 0);
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.total_weight(), 1.0);
}

TEST(TenantRegistry, ParsesFullConfig) {
  const Result<TenantRegistry> parsed = TenantRegistry::parse(R"({
    "schema": "sdfmem.tenants.v1",
    "tenants": {
      "interactive": {"weight": 8},
      "batch": {"weight": 2, "rate_ms_per_sec": 500, "burst_ms": 2000,
                "cache_quota_bytes": 1048576}
    }
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const TenantRegistry& registry = parsed.value();
  // public is implicit, at the default weight.
  ASSERT_NE(registry.find("public"), nullptr);
  ASSERT_NE(registry.find("interactive"), nullptr);
  EXPECT_EQ(registry.find("interactive")->weight, 8.0);
  const TenantSettings* batch = registry.find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->weight, 2.0);
  EXPECT_EQ(batch->rate_ms_per_sec, 500);
  EXPECT_EQ(batch->burst_ms, 2000);
  EXPECT_EQ(batch->cache_quota_bytes, 1048576);
  EXPECT_EQ(registry.total_weight(), 11.0);
}

TEST(TenantRegistry, ConfigCanRetunePublic) {
  const Result<TenantRegistry> parsed = TenantRegistry::parse(R"({
    "schema": "sdfmem.tenants.v1",
    "tenants": {"public": {"weight": 0.5, "rate_ms_per_sec": 100}}
  })");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().find("public")->weight, 0.5);
  EXPECT_EQ(parsed.value().find("public")->rate_ms_per_sec, 100);
}

TEST(TenantRegistry, RejectsMalformedConfigs) {
  const auto rejects = [](std::string_view text) {
    const Result<TenantRegistry> parsed = TenantRegistry::parse(text);
    EXPECT_FALSE(parsed.ok()) << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.error().code, ErrorCode::kBadArgument);
    }
  };
  rejects("not json");
  rejects(R"({"schema": "wrong.v1", "tenants": {}})");
  rejects(R"({"schema": "sdfmem.tenants.v1"})");  // no tenants object
  rejects(R"({"schema": "sdfmem.tenants.v1",
              "tenants": {"Bad.Name": {}}})");
  rejects(R"({"schema": "sdfmem.tenants.v1",
              "tenants": {"a": {"weight": 0}}})");
  rejects(R"({"schema": "sdfmem.tenants.v1",
              "tenants": {"a": {"weight": -1}}})");
  rejects(R"({"schema": "sdfmem.tenants.v1",
              "tenants": {"a": {"rate_ms_per_sec": -5}}})");
  rejects(R"({"schema": "sdfmem.tenants.v1",
              "tenants": {"a": {"typo_key": 1}}})");
}

// --- AdmissionController ---------------------------------------------

TEST(AdmissionController, SplitsCapacityByWeight) {
  TenantRegistry registry;
  registry.add("gold", {3.0, 0, 0, 0});
  // public (1.0) + gold (3.0): shares are 1/4 and 3/4 of 8000 ms.
  AdmissionController controller(registry, {1, 8000});
  EXPECT_EQ(controller.share_ms("public"), 2000);
  EXPECT_EQ(controller.share_ms("gold"), 6000);
  EXPECT_EQ(controller.share_ms("nope"), 0);
}

TEST(AdmissionController, RejectsUnknownTenantAndOverShare) {
  AdmissionController controller(TenantRegistry{}, {1, 4000});
  const auto unknown = controller.acquire("ghost", 100);
  EXPECT_EQ(unknown.status,
            AdmissionController::Ticket::Status::kUnknownTenant);

  // Cost above the tenant's entire share: typed overload, nothing queued.
  const auto too_big = controller.acquire("public", 5000);
  EXPECT_EQ(too_big.status,
            AdmissionController::Ticket::Status::kOverloaded);
  EXPECT_EQ(too_big.share_ms, 4000);
  EXPECT_EQ(controller.total_depth(), 0);
}

TEST(AdmissionController, PressureTiersTrackTheTenantShare) {
  AdmissionController controller(TenantRegistry{}, {4, 4000});
  // 1000/4000 backlog: normal.
  const auto a = controller.acquire("public", 1000);
  EXPECT_EQ(a.tier, AdmissionController::PressureTier::kNormal);
  // 2000/4000: capped at dppo.
  const auto b = controller.acquire("public", 1000);
  EXPECT_EQ(b.tier, AdmissionController::PressureTier::kCapped);
  // 3000/4000: flat tier.
  const auto c = controller.acquire("public", 1000);
  EXPECT_EQ(c.tier, AdmissionController::PressureTier::kDegraded);
  controller.release(a);
  controller.release(b);
  controller.release(c);
  EXPECT_EQ(controller.total_depth(), 0);
  EXPECT_EQ(controller.backlog_ms("public"), 0);
}

TEST(AdmissionController, MovableTripPointsReshapeTheLadder) {
  AdmissionController controller(TenantRegistry{}, {4, 4000});
  // Untouched, the trips are the historical 1/2 and 3/4 constants.
  EXPECT_EQ(controller.capped_x1000(), 500);
  EXPECT_EQ(controller.degraded_x1000(), 750);

  // Lower them (the controller's relief move): the same 1000/4000
  // backlog that was kNormal at the 1/2 point trips capped at 0.25.
  controller.set_trip_points(250, 400);
  const auto a = controller.acquire("public", 1000);
  EXPECT_EQ(a.tier, AdmissionController::PressureTier::kCapped);
  const auto b = controller.acquire("public", 1000);
  EXPECT_EQ(b.tier, AdmissionController::PressureTier::kDegraded);
  controller.release(a);
  controller.release(b);

  // Hard floor under ANY caller: clamped into [100, 1000], reordered.
  controller.set_trip_points(5, 2000);
  EXPECT_EQ(controller.capped_x1000(), 100);
  EXPECT_EQ(controller.degraded_x1000(), 1000);
  controller.set_trip_points(900, 300);
  EXPECT_LE(controller.capped_x1000(), controller.degraded_x1000());
}

TEST(AdmissionController, ShareBoostRelaxesOneTenantsBacklogCap) {
  AdmissionController controller(TenantRegistry{}, {4, 8000});
  const auto rejected = controller.acquire("public", 8100);
  EXPECT_EQ(rejected.status,
            AdmissionController::Ticket::Status::kOverloaded);

  controller.set_share_boost("public", 1500);
  EXPECT_EQ(controller.share_ms("public"), 12000);
  const auto granted = controller.acquire("public", 8100);
  EXPECT_EQ(granted.status, AdmissionController::Ticket::Status::kGranted);
  controller.release(granted);

  // Clamped into [1000, 4000]; 1000 removes the boost entirely.
  controller.set_share_boost("public", 9999);
  EXPECT_EQ(controller.share_boost_x1000("public"), 4000);
  controller.set_share_boost("public", 500);
  EXPECT_EQ(controller.share_boost_x1000("public"), 1000);
  EXPECT_EQ(controller.share_ms("public"), 8000);
}

TEST(AdmissionController, SlotLimitSerializesGrants) {
  AdmissionController controller(TenantRegistry{}, {1, 100'000});
  const auto first = controller.acquire("public", 1000);
  ASSERT_EQ(first.status, AdmissionController::Ticket::Status::kGranted);

  std::atomic<bool> second_granted{false};
  std::thread waiter([&] {
    const auto second = controller.acquire("public", 1000);
    second_granted.store(second.status ==
                         AdmissionController::Ticket::Status::kGranted);
    controller.release(second);
  });
  // The single slot is held; the waiter must block.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_granted.load());
  controller.release(first);
  waiter.join();
  EXPECT_TRUE(second_granted.load());
  EXPECT_EQ(controller.total_depth(), 0);
}

TEST(AdmissionController, DrainLiftsThrottlesSoShutdownCannotWedge) {
  TenantRegistry registry;
  TenantSettings slow;
  slow.rate_ms_per_sec = 1;  // 1000 cost-ms would otherwise wait ~17 min
  slow.burst_ms = 1;
  registry.add("slow", slow);
  AdmissionController controller(registry, {1, 100'000});

  // Exhaust the bucket so the next acquire would throttle.
  const auto first = controller.acquire("slow", 1000);
  ASSERT_EQ(first.status, AdmissionController::Ticket::Status::kGranted);
  std::thread waiter([&] {
    const auto second = controller.acquire("slow", 1000);
    controller.release(second);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  controller.drain();
  controller.release(first);
  waiter.join();  // would hang without the drain override
  EXPECT_EQ(controller.total_depth(), 0);
}

}  // namespace
}  // namespace sdf::svc::qos
