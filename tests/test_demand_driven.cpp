#include "sched/demand_driven.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/bounds.h"
#include "sched/dppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(DemandDriven, ScheduleIsValid) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver()}) {
    const Repetitions q = repetitions_vector(g);
    const DemandDrivenResult r = demand_driven_schedule(g, q);
    EXPECT_TRUE(is_valid_schedule(g, q, r.schedule)) << g.name();
    EXPECT_EQ(r.firing_seq.size(),
              static_cast<std::size_t>(r.schedule.total_firings()));
  }
}

TEST(DemandDriven, TwoActorReachesLowerBound) {
  // A -(2/3)-> B: demand-driven buffer = a + b - gcd = 4, below the SAS
  // minimum ab/gcd = 6.
  const Graph g = testing::two_actor(2, 3);
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  EXPECT_EQ(r.max_tokens[0], min_buffer_any_schedule_edge(g.edge(0)));
  EXPECT_EQ(r.buffer_memory, 4);
}

TEST(DemandDriven, ChainReachesLowerBoundPerEdge) {
  // Sec. 11.1.3: on chain-structured graphs the greedy scheduler is
  // buffer-optimal on every edge simultaneously.
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(r.max_tokens[e],
              min_buffer_any_schedule_edge(g.edge(static_cast<EdgeId>(e))))
        << "edge " << e;
  }
  EXPECT_EQ(r.buffer_memory, min_buffer_any_schedule(g));
}

TEST(DemandDriven, BeatsBestSasOnBufferMemory) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult dynamic = demand_driven_schedule(g, q);
  const DppoResult sas = dppo(g, q, *topological_sort(g));
  EXPECT_LT(dynamic.buffer_memory, sas.cost);
}

TEST(DemandDriven, SatrecMirrorsPaperComparison) {
  // Sec. 11.1.3: dynamic scheduling's non-shared requirement sits in the
  // same range as (not dramatically below) the static SAS values, while
  // its pooled requirement is lower. Check the orderings we can check:
  // pooled <= non-shared, and both bounded by the SAS result.
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult dynamic = demand_driven_schedule(g, q);
  EXPECT_LE(dynamic.max_live_tokens, dynamic.buffer_memory);
  const DppoResult sas = dppo(g, q, *topological_sort(g));
  EXPECT_LE(dynamic.buffer_memory, sas.cost);
  EXPECT_GE(dynamic.buffer_memory, min_buffer_any_schedule(g));
}

TEST(DemandDriven, RespectsDelays) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1, 3);
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  // B is deeper, fires first using the initial tokens.
  EXPECT_EQ(r.firing_seq.front(), b);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST(DemandDriven, DetectsDeadlock) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1);  // no delay anywhere: deadlock
  EXPECT_THROW(demand_driven_schedule(g, {1, 1}), std::runtime_error);
}

TEST(DemandDriven, HandlesDelayBrokenCycle) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1, 1);  // one initial token breaks the cycle
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
}

TEST(DemandDriven, MaxLiveTokensNeverBelowAnyInstant) {
  const Graph g = testing::fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  const TokenTrace trace = trace_tokens(g, r.schedule);
  ASSERT_TRUE(trace.valid);
  EXPECT_EQ(r.max_live_tokens, max_live_tokens(trace));
}

TEST(DemandDriven, RunLengthCompressionPreservesSequence) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult r = demand_driven_schedule(g, q);
  EXPECT_EQ(r.schedule.flatten(), r.firing_seq);
}

}  // namespace
}  // namespace sdf
