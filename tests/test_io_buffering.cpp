#include "sched/io_buffering.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "sched/dppo.h"
#include "sched/sas.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(IoBuffering, UniformScheduleNeedsOneSample) {
  // A -(1/1)-> B with equal exec times: the source fires evenly, so only
  // the sample being consumed needs buffering.
  const Graph g = testing::two_actor(1, 1);
  const Repetitions q = repetitions_vector(g);
  const Schedule s = flat_sas(g, q);
  const InterfaceBufferingResult r =
      interface_buffering(g, q, s, {1, 1}, /*source=*/0, /*sink=*/1);
  EXPECT_EQ(r.input_backlog, 1);
  EXPECT_EQ(r.output_backlog, 1);
  EXPECT_EQ(r.period_cycles, 2);
  EXPECT_EQ(r.input_samples_per_period, 1);
}

TEST(IoBuffering, BurstySourceBacksUp) {
  // q(src) = 4 fired back to back at the start of a long period: almost
  // the whole period's samples must be buffered.
  Graph g;
  const ActorId src = g.add_actor("src");
  const ActorId work = g.add_actor("work");
  g.add_edge(src, work, 1, 4);
  const Repetitions q = repetitions_vector(g);  // (4, 1)
  const Schedule s = parse_schedule(g, "(4src)(work)");
  // src takes 1 cycle, work takes 96: period 100, 4 samples per period.
  const InterfaceBufferingResult r =
      interface_buffering(g, q, s, {1, 96}, src, kInvalidActor);
  // Sample arrivals every 25 cycles. With the minimal stream lead (just
  // enough that firing 3 finds its sample at cycle 3), 3 samples are
  // already queued before firing 0 of each steady-state period and the
  // 4th lands mid-burst: worst backlog 3.
  EXPECT_EQ(r.input_backlog, 3);
}

TEST(IoBuffering, SpreadSourceNeedsLess) {
  Graph g;
  const ActorId src = g.add_actor("src");
  const ActorId work = g.add_actor("work");
  g.add_edge(src, work, 1, 1);
  const Repetitions q{4, 4};
  const Schedule s = parse_schedule(g, "(4 (src)(work))");
  const InterfaceBufferingResult r =
      interface_buffering(g, q, s, {1, 24}, src, kInvalidActor);
  // One sample per 25 cycles, consumed every 25 cycles: backlog 1.
  EXPECT_EQ(r.input_backlog, 1);
}

TEST(IoBuffering, CdDatNestedVsFlat) {
  // Sec. 11.1.3: for CD-DAT the nested buffer-optimal SAS needs an input
  // buffer well under 10% of the 147-sample period, while the flat SAS
  // needs most of a period.
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const ActorId src = *g.find_actor("A");
  // Typical relative execution times (multirate filters dominate).
  const ExecutionTimes exec{2, 6, 8, 10, 10, 2};

  const Schedule flat = flat_sas(g, q);
  const Schedule nested = dppo(g, q, *topological_sort(g)).schedule;

  const auto flat_r =
      interface_buffering(g, q, flat, exec, src, kInvalidActor);
  const auto nested_r =
      interface_buffering(g, q, nested, exec, src, kInvalidActor);

  EXPECT_EQ(flat_r.input_samples_per_period, 147);
  // Flat: all 147 source firings happen first; nearly nothing has arrived
  // yet, so with minimal stream lead the whole period backs up.
  EXPECT_GT(flat_r.input_backlog, 100);
  // Nested: the source is spread through the period (the paper's exact
  // factor depends on its 1994 execution-time table; the qualitative gap
  // is what must reproduce).
  EXPECT_LT(nested_r.input_backlog, flat_r.input_backlog / 2);
}

TEST(IoBuffering, OutputSideMirrorsInput) {
  Graph g;
  const ActorId src = g.add_actor("src");
  const ActorId snk = g.add_actor("snk");
  g.add_edge(src, snk, 1, 4);
  const Repetitions q = repetitions_vector(g);  // (4, 1)
  const Schedule s = parse_schedule(g, "(4src)(snk)");
  const InterfaceBufferingResult r =
      interface_buffering(g, q, s, {10, 10}, kInvalidActor, snk);
  // snk produces its sample(s) at the very end of the period; the
  // fixed-rate consumer drains 1 per period: backlog 1.
  EXPECT_EQ(r.output_backlog, 1);
}

TEST(IoBuffering, ValidatesArguments) {
  const Graph g = testing::two_actor(1, 1);
  const Repetitions q{1, 1};
  const Schedule s = flat_sas(g, q);
  EXPECT_THROW((void)interface_buffering(g, q, s, {1}, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)interface_buffering(g, q, s, {1, 0}, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)interface_buffering(g, q, s, {1, 1}, 0, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)interface_buffering(g, q, s, {1, 1}, 5, kInvalidActor),
               std::invalid_argument);
}

TEST(IoBuffering, WrongFiringCountRejected) {
  const Graph g = testing::two_actor(1, 1);
  const Repetitions q{2, 2};  // doubled period
  const Schedule s = parse_schedule(g, "A B");  // fires once only
  EXPECT_THROW((void)interface_buffering(g, q, s, {1, 1}, 0, kInvalidActor),
               std::invalid_argument);
}

TEST(IoBuffering, SamplesPerFiringScales) {
  const Graph g = testing::two_actor(1, 1);
  const Repetitions q{1, 1};
  const Schedule s = flat_sas(g, q);
  const auto r = interface_buffering(g, q, s, {1, 1}, 0, kInvalidActor, 8);
  EXPECT_EQ(r.input_samples_per_period, 8);
  EXPECT_GE(r.input_backlog, 8);  // one firing consumes all 8 at once
}

}  // namespace
}  // namespace sdf
