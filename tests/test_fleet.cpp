// Fleet-mode end-to-end tests (docs/SERVICE.md, "Fleet mode"): a Router
// over real workers on real Unix sockets — deterministic shard routing,
// peer cache warming on shard misses, SIGKILL failover with typed errors
// and zero hung clients, and the no-live-worker `unavailable` contract.
//
// The SIGKILL test forks its victim worker BEFORE the parent starts any
// threads (fork from a multithreaded process may deadlock in malloc), so
// it runs the fork first and builds the in-process fleet afterwards.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/ring.h"
#include "service/router.h"
#include "service/server.h"
#include "util/shutdown.h"

namespace sdf::svc {
namespace {

namespace fs = std::filesystem;

/// A fresh scratch directory with sockaddr_un-short socket paths.
struct Scratch {
  std::string dir;

  Scratch() {
    static int counter = 0;
    dir = "/tmp/sdffleet_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter++);
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  [[nodiscard]] std::string sock(const std::string& name) const {
    return dir + "/" + name + ".sock";
  }
  [[nodiscard]] std::string cache(const std::string& name) const {
    return dir + "/" + name + ".cache";
  }
};

struct RunningServer {
  explicit RunningServer(ServerOptions options) {
    util::reset_shutdown();
    server = std::make_unique<Server>(std::move(options));
    server->start();
    runner = std::thread([this] { server->run(); });
  }
  ~RunningServer() { stop(); }

  void stop() {
    if (runner.joinable()) {
      server->stop();
      runner.join();
    }
  }

  std::unique_ptr<Server> server;
  std::thread runner;
};

struct RunningRouter {
  explicit RunningRouter(RouterOptions options) {
    util::reset_shutdown();
    router = std::make_unique<Router>(std::move(options));
    router->start();
    runner = std::thread([this] { router->run(); });
  }
  ~RunningRouter() { stop(); }

  void stop() {
    if (runner.joinable()) {
      router->stop();
      runner.join();
    }
  }

  std::unique_ptr<Router> router;
  std::thread runner;
};

ServerOptions worker_options(const Scratch& scratch, const std::string& id) {
  ServerOptions opts;
  opts.socket_path = scratch.sock(id);
  opts.cache_dir = scratch.cache(id);
  opts.worker_id = id;
  opts.jobs = 1;
  return opts;
}

WorkerConfig worker_config(const Scratch& scratch, const std::string& id) {
  WorkerConfig cfg;
  cfg.id = id;
  cfg.endpoint.socket_path = scratch.sock(id);
  cfg.pinned_id = true;
  return cfg;
}

CompileRequest graph_request(int i) {
  CompileRequest req;
  req.graph_text = "graph g" + std::to_string(i) +
                   "\nactor A\nactor B\nedge A B 2 3\n";
  return req;
}

/// The shard key exactly as the router derives it.
std::uint64_t shard_key(const CompileRequest& req) {
  return cache_key(write_graph_text(parse_graph_text(req.graph_text)),
                   option_fingerprint(req));
}

Result<std::string> compile_via(const std::string& socket_path,
                                const CompileRequest& req) {
  ClientOptions copts;
  copts.socket_path = socket_path;
  Client client(copts);
  return client.compile(req);
}

void wait_for_pingable(const std::string& socket_path) {
  for (int i = 0; i < 400; ++i) {
    try {
      ClientOptions copts;
      copts.socket_path = socket_path;
      Client client(copts);
      if (client.ping("up?")) return;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "worker never became pingable: " << socket_path;
}

// ------------------------------------------------------------ spec parsing

TEST(FleetSpec, ParsesPlainAndPinnedSpecs) {
  const Result<WorkerConfig> plain = parse_worker_spec("/tmp/w.sock");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().endpoint.socket_path, "/tmp/w.sock");
  EXPECT_EQ(plain.value().id, "/tmp/w.sock");
  EXPECT_FALSE(plain.value().pinned_id);

  const Result<WorkerConfig> pinned = parse_worker_spec("w1@/tmp/w.sock");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.value().id, "w1");
  EXPECT_EQ(pinned.value().endpoint.socket_path, "/tmp/w.sock");
  EXPECT_TRUE(pinned.value().pinned_id);

  const Result<WorkerConfig> tcp = parse_worker_spec("w2@tcp:9321");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().id, "w2");
  EXPECT_EQ(tcp.value().endpoint.tcp_port, 9321);
  EXPECT_TRUE(tcp.value().endpoint.socket_path.empty());
}

TEST(FleetSpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_worker_spec("").ok());
  EXPECT_FALSE(parse_worker_spec("w1@").ok());
  EXPECT_FALSE(parse_worker_spec("@/tmp/w.sock").ok());
  EXPECT_FALSE(parse_worker_spec("tcp:").ok());
  EXPECT_FALSE(parse_worker_spec("tcp:notaport").ok());
  EXPECT_FALSE(parse_worker_spec("tcp:70000").ok());
}

TEST(FleetSpec, RouterRejectsEmptyAndDuplicateWorkers) {
  RouterOptions none;
  none.socket_path = "/tmp/unused.sock";
  EXPECT_THROW(Router router(none), BadArgumentError);

  RouterOptions dup;
  dup.socket_path = "/tmp/unused.sock";
  dup.workers.push_back(parse_worker_spec("w1@/tmp/a.sock").value());
  dup.workers.push_back(parse_worker_spec("w1@/tmp/b.sock").value());
  EXPECT_THROW(Router router(dup), BadArgumentError);
}

// ------------------------------------------------------------------- e2e

TEST(Fleet, DeterministicShardRoutingAndHotLookups) {
  Scratch scratch;
  std::vector<std::unique_ptr<RunningServer>> workers;
  RouterOptions ropts;
  ropts.socket_path = scratch.sock("router");
  for (const char* id : {"w1", "w2", "w3"}) {
    workers.push_back(
        std::make_unique<RunningServer>(worker_options(scratch, id)));
    ropts.workers.push_back(worker_config(scratch, id));
  }
  ropts.health_interval_ms = 0;  // inline detection only; keeps it quiet
  RunningRouter router(ropts);

  std::map<int, std::string> first_responses;
  for (int i = 0; i < 8; ++i) {
    const Result<std::string> response =
        compile_via(ropts.socket_path, graph_request(i));
    ASSERT_TRUE(response.ok()) << response.error().message;
    first_responses[i] = response.value();
  }

  RouterStats stats = router.router->stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.compiles, 8);  // all cold: every request forwarded
  EXPECT_EQ(stats.lookup_hits, 0);
  EXPECT_EQ(stats.unavailable, 0);

  // Forwarded counts land exactly on the ring owners.
  std::map<std::string, std::int64_t> expected;
  for (int i = 0; i < 8; ++i) {
    ++expected[router.router->shard_owner(shard_key(graph_request(i)))];
  }
  for (const auto& [id, st] : stats.workers) {
    EXPECT_EQ(st.forwarded, expected[id]) << "worker " << id;
  }

  // Repeats are served from the shard owner's cache (no recompiles) and
  // byte-identical to the cold responses.
  for (int i = 0; i < 8; ++i) {
    const Result<std::string> response =
        compile_via(ropts.socket_path, graph_request(i));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value(), first_responses[i]) << "graph " << i;
  }
  stats = router.router->stats();
  EXPECT_EQ(stats.compiles, 8) << "a repeat was recompiled";
  EXPECT_EQ(stats.lookup_hits, 8);
}

TEST(Fleet, PeerHitWarmsTheShardOwner) {
  Scratch scratch;
  std::vector<std::unique_ptr<RunningServer>> workers;
  RouterOptions ropts;
  ropts.socket_path = scratch.sock("router");
  for (const char* id : {"w1", "w2", "w3"}) {
    workers.push_back(
        std::make_unique<RunningServer>(worker_options(scratch, id)));
    ropts.workers.push_back(worker_config(scratch, id));
  }
  ropts.health_interval_ms = 0;
  RunningRouter router(ropts);

  const CompileRequest req = graph_request(0);
  const std::string owner =
      router.router->shard_owner(shard_key(req));
  // Seed the cache of a worker that is NOT the shard owner — the state a
  // fleet resize leaves behind.
  std::string non_owner;
  for (const char* id : {"w1", "w2", "w3"}) {
    if (owner != id) {
      non_owner = id;
      break;
    }
  }
  const Result<std::string> seeded =
      compile_via(scratch.sock(non_owner), req);
  ASSERT_TRUE(seeded.ok());

  // Routed request: owner misses, the peer probe finds the seeded bytes,
  // and the owner is warmed for next time.
  const Result<std::string> routed = compile_via(ropts.socket_path, req);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value(), seeded.value());
  RouterStats stats = router.router->stats();
  EXPECT_EQ(stats.peer_hits, 1);
  EXPECT_EQ(stats.warms, 1);
  EXPECT_EQ(stats.compiles, 0) << "peer hit still recompiled";

  // The warm landed: the owner now answers the shard lookup itself.
  const Result<std::string> again = compile_via(ropts.socket_path, req);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), seeded.value());
  stats = router.router->stats();
  EXPECT_EQ(stats.lookup_hits, 1);
  EXPECT_EQ(stats.compiles, 0);
}

TEST(Fleet, NoLiveWorkerYieldsTypedUnavailable) {
  Scratch scratch;
  RouterOptions ropts;
  ropts.socket_path = scratch.sock("router");
  ropts.workers.push_back(worker_config(scratch, "ghost"));  // never started
  ropts.health_interval_ms = 0;
  // One failure opens the breaker — this test pins the instant-dead
  // behaviour of a single-shot outage.
  ropts.breaker_threshold = 1;
  RunningRouter router(ropts);

  const Result<std::string> response =
      compile_via(ropts.socket_path, graph_request(0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(exit_code_for(response.error().code), 26);
  const RouterStats stats = router.router->stats();
  EXPECT_EQ(stats.unavailable, 1);
  EXPECT_EQ(stats.workers.at("ghost").alive, false);
}

TEST(Fleet, HealthProbeRevivesARestartedWorker) {
  Scratch scratch;
  RouterOptions ropts;
  ropts.socket_path = scratch.sock("router");
  ropts.workers.push_back(worker_config(scratch, "w1"));
  ropts.health_interval_ms = 20;
  RunningRouter router(ropts);

  // Worker not started yet: the request fails typed, worker marked dead.
  ASSERT_FALSE(compile_via(ropts.socket_path, graph_request(0)).ok());

  // Start the worker; the prober must bring it back without a restart.
  RunningServer worker(worker_options(scratch, "w1"));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool recovered = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const Result<std::string> response =
        compile_via(ropts.socket_path, graph_request(0));
    if (response.ok()) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "router never re-routed to the revived worker";
}

TEST(Fleet, PinnedIdMismatchCountsAsDown) {
  Scratch scratch;
  // The worker reports worker_id "actually-w9" but the spec pins "w1".
  ServerOptions wopts = worker_options(scratch, "actually-w9");
  wopts.socket_path = scratch.sock("w1");
  RunningServer worker(std::move(wopts));

  RouterOptions ropts;
  ropts.socket_path = scratch.sock("router");
  ropts.workers.push_back(worker_config(scratch, "w1"));
  ropts.health_interval_ms = 20;
  RunningRouter router(ropts);

  // The prober verifies the pinned id and refuses the mis-wired socket.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool marked_down = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!router.router->stats().workers.at("w1").alive) {
      marked_down = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(marked_down) << "id mismatch never detected";
}

// The headline failure drill: SIGKILL a worker mid-load; every client
// completes (success or typed error — never a hang), and every response
// after the kill is byte-identical to its pre-kill counterpart.
TEST(Fleet, KilledWorkerMidLoadReroutesWithoutHangingClients) {
  Scratch scratch;
  const std::string victim_sock = scratch.sock("w3");
  const std::string victim_cache = scratch.cache("w3");

  // Fork the victim BEFORE any threads exist in this process.
  const pid_t victim = fork();
  ASSERT_GE(victim, 0) << "fork failed";
  if (victim == 0) {
    // Child: run worker w3 until SIGKILLed. _exit keeps gtest teardown
    // and parent-owned state out of the child.
    try {
      util::reset_shutdown();
      ServerOptions opts;
      opts.socket_path = victim_sock;
      opts.cache_dir = victim_cache;
      opts.worker_id = "w3";
      opts.jobs = 1;
      Server server(opts);
      server.start();
      server.run();
    } catch (...) {
    }
    _exit(0);
  }
  wait_for_pingable(victim_sock);

  std::vector<std::unique_ptr<RunningServer>> workers;
  workers.push_back(
      std::make_unique<RunningServer>(worker_options(scratch, "w1")));
  workers.push_back(
      std::make_unique<RunningServer>(worker_options(scratch, "w2")));

  RouterOptions ropts;
  ropts.socket_path = scratch.sock("router");
  for (const char* id : {"w1", "w2", "w3"}) {
    ropts.workers.push_back(worker_config(scratch, id));
  }
  // The probe period exceeds the load burst on purpose: if the prober
  // could mark w3 dead first, `rerouted` would race it (requests after
  // the mark route straight to survivors and count nothing). With the
  // probe idle, inline failure detection must do the rerouting — the
  // probe-driven path is pinned by HealthProbeRevivesARestartedWorker.
  ropts.health_interval_ms = 60000;
  ropts.worker_timeout_ms = 5000;
  RunningRouter router(ropts);

  constexpr int kGraphs = 10;
  std::vector<std::string> pre_kill(kGraphs);
  for (int i = 0; i < kGraphs; ++i) {
    const Result<std::string> response =
        compile_via(ropts.socket_path, graph_request(i));
    ASSERT_TRUE(response.ok()) << response.error().message;
    pre_kill[i] = response.value();
  }

  // Load from several client threads while the victim dies under them.
  std::vector<std::thread> clients;
  std::vector<int> completed(4, 0);
  std::vector<int> succeeded(4, 0);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < kGraphs; ++i) {
          try {
            const Result<std::string> response =
                compile_via(ropts.socket_path, graph_request(i));
            if (response.ok()) {
              ++succeeded[t];
              // Deterministic compiles: a re-routed answer is
              // byte-identical even when a different worker produced it.
              EXPECT_EQ(response.value(), pre_kill[i]);
            }
          } catch (const std::exception&) {
            // Transport-level failure still counts as completion — the
            // assertion is "no hang", not "no error".
          }
          ++completed[t];
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(victim, &wstatus, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  for (auto& c : clients) c.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(completed[t], 5 * kGraphs) << "client " << t << " hung";
    EXPECT_GT(succeeded[t], 0);
  }

  // After the dust settles every graph still answers — the dead worker's
  // shards re-route to survivors — and stays byte-identical.
  for (int i = 0; i < kGraphs; ++i) {
    const Result<std::string> response =
        compile_via(ropts.socket_path, graph_request(i));
    ASSERT_TRUE(response.ok()) << "graph " << i << " lost after worker kill: "
                               << response.error().message;
    EXPECT_EQ(response.value(), pre_kill[i]);
  }
  const RouterStats stats = router.router->stats();
  EXPECT_EQ(stats.workers.at("w3").alive, false);
  EXPECT_GT(stats.rerouted, 0);
}

}  // namespace
}  // namespace sdf::svc
