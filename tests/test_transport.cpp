// Transport robustness tests (service/transport.h): the framing layer
// driven over socketpairs — deadline expiry mid-frame, partial reads
// dribbled through FrameReader, zero-byte close, oversized-length
// rejection — plus the SIGPIPE and injected-fault (svc_send_short /
// svc_recv_torn) contracts every service layer above relies on.
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "sdf/diagnostics.h"
#include "service/protocol.h"
#include "service/transport.h"
#include "util/fault.h"

namespace sdf::svc {
namespace {

/// A connected Unix stream socketpair; a[0] is "ours", a[1] the peer's.
struct SocketPair {
  int fds[2] = {-1, -1};

  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    close_fd(fds[0]);
    close_fd(fds[1]);
  }

  void close_peer() { close_fd(fds[1]); }
};

class Transport : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

TEST_F(Transport, FullFrameRoundTripsThroughReader) {
  SocketPair sp;
  const std::string wire = encode_frame(FrameKind::kPing, "hello frames");
  ASSERT_TRUE(send_all(sp.fds[1], wire));
  FrameReader reader;
  Frame frame;
  ASSERT_EQ(reader.read(sp.fds[0], &frame, 1000), ReadOutcome::kFrame);
  EXPECT_EQ(frame.kind, FrameKind::kPing);
  EXPECT_EQ(frame.payload, "hello frames");
  EXPECT_FALSE(reader.mid_frame());
}

TEST_F(Transport, DeadlineExpiryMidFrameIsTimeoutNotHang) {
  SocketPair sp;
  const std::string wire = encode_frame(FrameKind::kPing, "torn");
  // Only half the frame ever arrives; the reader must give up at its
  // total deadline with the partial bytes still buffered.
  ASSERT_TRUE(send_all(sp.fds[1], wire.substr(0, kHeaderBytes - 4)));
  FrameReader reader;
  Frame frame;
  const auto started = std::chrono::steady_clock::now();
  EXPECT_EQ(reader.read(sp.fds[0], &frame, 100), ReadOutcome::kTimeout);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  EXPECT_GE(waited.count(), 90);
  EXPECT_LT(waited.count(), 5000);  // a deadline, not a hang
  EXPECT_TRUE(reader.mid_frame());
}

TEST_F(Transport, PartialWritesReassembleIntoFrames) {
  SocketPair sp;
  const std::string wire =
      encode_frame(FrameKind::kPong, std::string(300, 'x')) +
      encode_frame(FrameKind::kPing, "second");
  // Dribble both frames a few bytes at a time from a writer thread; the
  // reader must reassemble each frame and keep the follow-on bytes that
  // arrive in the same recv() for the next read() call.
  std::thread writer([&] {
    for (std::size_t at = 0; at < wire.size(); at += 7) {
      ASSERT_TRUE(
          send_all(sp.fds[1], std::string_view(wire).substr(at, 7)));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  FrameReader reader;
  Frame frame;
  ASSERT_EQ(reader.read(sp.fds[0], &frame, 5000), ReadOutcome::kFrame);
  EXPECT_EQ(frame.kind, FrameKind::kPong);
  EXPECT_EQ(frame.payload, std::string(300, 'x'));
  ASSERT_EQ(reader.read(sp.fds[0], &frame, 5000), ReadOutcome::kFrame);
  EXPECT_EQ(frame.kind, FrameKind::kPing);
  EXPECT_EQ(frame.payload, "second");
  writer.join();
}

TEST_F(Transport, ZeroByteCloseIsClosedNotError) {
  SocketPair sp;
  sp.close_peer();  // EOF before any byte
  FrameReader reader;
  Frame frame;
  EXPECT_EQ(reader.read(sp.fds[0], &frame, 1000), ReadOutcome::kClosed);
  EXPECT_FALSE(reader.mid_frame());
}

TEST_F(Transport, CloseMidFrameIsClosed) {
  SocketPair sp;
  const std::string wire = encode_frame(FrameKind::kPing, "will tear");
  ASSERT_TRUE(send_all(sp.fds[1], wire.substr(0, wire.size() - 3)));
  sp.close_peer();
  FrameReader reader;
  Frame frame;
  EXPECT_EQ(reader.read(sp.fds[0], &frame, 1000), ReadOutcome::kClosed);
}

TEST_F(Transport, OversizedLengthIsRejectedBeforeBuffering) {
  SocketPair sp;
  // Hand-build a header whose length field exceeds kMaxPayloadBytes; the
  // reader must reject it from the 16 header bytes alone instead of
  // trying to buffer 4 GiB.
  std::string header(kMagic);
  header.push_back(static_cast<char>(FrameKind::kPing));
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  header.append(4, '\0');  // CRC, never reached
  ASSERT_EQ(header.size(), kHeaderBytes);
  ASSERT_TRUE(send_all(sp.fds[1], header));
  FrameReader reader;
  Frame frame;
  EXPECT_EQ(reader.read(sp.fds[0], &frame, 1000), ReadOutcome::kBadFrame);
  EXPECT_EQ(reader.last_decode(), DecodeStatus::kTooLarge);
}

TEST_F(Transport, SendToClosedPeerFailsTypedNotSigpipe) {
  // The process-wide guarantee the server/router/client all rely on: a
  // peer that hangs up mid-conversation turns writes into errors, never
  // a SIGPIPE kill. send_all passes MSG_NOSIGNAL; ignore_sigpipe() backs
  // up everything else.
  ignore_sigpipe();
  SocketPair sp;
  sp.close_peer();
  // Large enough to overflow the socket buffer so the kernel must
  // surface EPIPE rather than accept the bytes.
  const std::string big = encode_frame(FrameKind::kPing,
                                       std::string(1 << 20, 'p'));
  EXPECT_FALSE(send_all(sp.fds[0], big));
  EXPECT_THROW(send_all_or_throw(sp.fds[0], big), IoError);
  // Still alive to assert: SIGPIPE did not terminate the process.
}

TEST_F(Transport, InjectedSendShortFaultIsTypedIo) {
  fault::configure("svc_send_short:1", 7);
  SocketPair sp;
  EXPECT_FALSE(send_all(sp.fds[0], "doomed"));
  EXPECT_EQ(fault::fire_count("svc_send_short"), 1);
  // After firing once the site is spent: the next send succeeds.
  EXPECT_TRUE(send_all(sp.fds[0], "fine"));
}

TEST_F(Transport, InjectedRecvTornFaultReadsAsClosed) {
  fault::configure("svc_recv_torn:1", 7);
  SocketPair sp;
  ASSERT_TRUE(send_all(sp.fds[1], encode_frame(FrameKind::kPing, "x")));
  FrameReader reader;
  Frame frame;
  // The bytes arrived, but the injected tear discards them mid-frame —
  // exactly what a mid-read connection reset looks like to callers.
  EXPECT_EQ(reader.read(sp.fds[0], &frame, 1000), ReadOutcome::kClosed);
  EXPECT_EQ(fault::fire_count("svc_recv_torn"), 1);
  EXPECT_FALSE(reader.mid_frame());
}

}  // namespace
}  // namespace sdf::svc
