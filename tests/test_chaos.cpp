// Chaos soak tests (docs/RELIABILITY.md, "Chaos testing"): a seeded
// in-process fleet put through kill/restart schedules and injected
// service faults (svc_* sites, util/fault.h). The three invariants every
// scenario asserts:
//
//   1. no hangs — every request returns within its deadlines,
//   2. failures are typed — only retryable transport-ish codes (kIo,
//      kOverloaded, kUnavailable) ever surface mid-chaos,
//   3. answers are byte-identical — whichever worker compiles, whatever
//      was killed in between, successful payloads never drift.
//
// Schedules are drawn from splitmix64 streams at fixed seeds (0, 7, 42),
// so a failure replays exactly. The retry/budget/breaker pieces also get
// focused scenarios here: budget exhaustion as typed kUnavailable, the
// breaker's open → half-open → closed round trip, the cache scrubber
// quarantining a corrupted object, and injected cache read/write faults
// degrading to clean misses instead of corrupt answers.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos_harness.h"
#include "obs/json_report.h"
#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "service/protocol.h"
#include "service/retry.h"
#include "util/fault.h"
#include "util/status.h"

namespace sdf::svc {
namespace {

namespace fs = std::filesystem;
using chaos::ChaosFleet;
using chaos::ChaosWorker;
using chaos::chaos_graph;
using chaos::compile_once;
using chaos::draw;

class Chaos : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

/// The shard key exactly as the router derives it.
std::uint64_t shard_key(const CompileRequest& req) {
  return cache_key(write_graph_text(parse_graph_text(req.graph_text)),
                   option_fingerprint(req));
}

RetryPolicy soak_policy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 40;
  policy.seed = seed;
  return policy;
}

// ------------------------------------------------------ policy mechanics

TEST_F(Chaos, RetryTaxonomyIsTransientOnly) {
  EXPECT_TRUE(retryable(ErrorCode::kIo));
  EXPECT_TRUE(retryable(ErrorCode::kOverloaded));
  EXPECT_TRUE(retryable(ErrorCode::kUnavailable));

  EXPECT_FALSE(retryable(ErrorCode::kOk));
  EXPECT_FALSE(retryable(ErrorCode::kParse));
  EXPECT_FALSE(retryable(ErrorCode::kInconsistent));
  EXPECT_FALSE(retryable(ErrorCode::kDeadlocked));
  EXPECT_FALSE(retryable(ErrorCode::kBadArgument));
  EXPECT_FALSE(retryable(ErrorCode::kResourceExhausted));
  EXPECT_FALSE(retryable(ErrorCode::kInternal));
  EXPECT_FALSE(retryable(ErrorCode::kUnknownTenant));
}

TEST_F(Chaos, BackoffIsDeterministicBoundedAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 100;
  policy.seed = 42;
  for (int k = 0; k < 8; ++k) {
    const std::int64_t first = retry_backoff_ms(policy, k);
    // Same (seed, k) — same sleep, byte-reproducible schedules.
    EXPECT_EQ(first, retry_backoff_ms(policy, k)) << "retry " << k;
    // Within [d/2, d] for d = min(cap, base * 2^k).
    std::int64_t d = 10;
    for (int i = 0; i < k && d < 100; ++i) d *= 2;
    d = std::min<std::int64_t>(d, 100);
    EXPECT_GE(first, d / 2) << "retry " << k;
    EXPECT_LE(first, d) << "retry " << k;
  }
  // A different seed draws a different schedule somewhere in 8 retries.
  RetryPolicy other = policy;
  other.seed = 43;
  bool differs = false;
  for (int k = 0; k < 8; ++k) {
    differs = differs || retry_backoff_ms(other, k) != retry_backoff_ms(policy, k);
  }
  EXPECT_TRUE(differs);
}

TEST_F(Chaos, RetryBudgetExhaustionIsTypedUnavailable) {
  // No listener at this path: every attempt fails with a typed kIo, so
  // the two-token budget drains after two granted retries and the
  // client must surface a typed kUnavailable — never a silent spin.
  ClientOptions copts;
  copts.socket_path = "/tmp/sdfchaos_no_such_listener.sock";
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  policy.seed = 7;
  RetryBudget budget(2);
  RetryingClient client(copts, policy, &budget);

  const Result<std::string> got = client.compile(chaos_graph(0));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(got.error().message.find("retry budget exhausted"),
            std::string::npos)
      << got.error().message;
  EXPECT_EQ(budget.retries_granted(), 2);
  EXPECT_EQ(budget.exhausted_count(), 1);
}

// ------------------------------------------------- injected cache faults

TEST_F(Chaos, CacheWriteFaultServesUncachedAndRecovers) {
  chaos::Scratch scratch;
  ServerOptions sopts;
  sopts.socket_path = scratch.sock("w1");
  sopts.cache_dir = scratch.cache("w1");
  sopts.worker_id = "w1";
  sopts.jobs = 1;
  ChaosWorker worker(sopts);

  fault::configure("svc_cache_write:1", 7);
  // First compile: the durable insert fails (injected), but the response
  // is still served — degraded to uncached, never an error.
  const Result<std::string> first =
      compile_once(sopts.socket_path, chaos_graph(500));
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(worker.server()->stats().cache_write_failures, 1);
  EXPECT_EQ(fault::fire_count("svc_cache_write"), 1);

  // Nothing was cached (the hot tier only holds disk-vouched bytes), so
  // the second compile is a clean miss that recompiles byte-identically
  // and — the fault now spent — caches durably.
  const Result<std::string> second =
      compile_once(sopts.socket_path, chaos_graph(500));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(worker.server()->stats().cache_misses, 2);

  const Result<std::string> third =
      compile_once(sopts.socket_path, chaos_graph(500));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value(), first.value());
  EXPECT_EQ(worker.server()->stats().cache_hits, 1);
}

TEST_F(Chaos, CacheReadFaultIsCleanMissNotCorruption) {
  chaos::Scratch scratch;
  ServerOptions sopts;
  sopts.socket_path = scratch.sock("w1");
  sopts.cache_dir = scratch.cache("w1");
  sopts.worker_id = "w1";
  sopts.jobs = 1;
  ChaosWorker worker(sopts);

  fault::configure("svc_cache_read:1", 7);
  // Wherever the single injected read fault lands (hot-tier lookup or
  // the disk read), the worst case is a clean miss plus a recompile —
  // the answers stay byte-identical.
  const Result<std::string> first =
      compile_once(sopts.socket_path, chaos_graph(501));
  ASSERT_TRUE(first.ok()) << first.error().message;
  const Result<std::string> second =
      compile_once(sopts.socket_path, chaos_graph(501));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(fault::fire_count("svc_cache_read"), 1);
  EXPECT_EQ(worker.server()->stats().cache_write_failures, 0);
}

// ---------------------------------------------------------- the scrubber

TEST_F(Chaos, ScrubberQuarantinesCorruptObjectAndHeals) {
  chaos::Scratch scratch;
  ServerOptions sopts;
  sopts.socket_path = scratch.sock("w1");
  sopts.cache_dir = scratch.cache("w1");
  sopts.worker_id = "w1";
  sopts.jobs = 1;
  sopts.scrub_interval_ms = 30;
  ChaosWorker worker(sopts);

  const Result<std::string> first =
      compile_once(sopts.socket_path, chaos_graph(502));
  ASSERT_TRUE(first.ok()) << first.error().message;

  // The response echoes its cache key; that locates the object file.
  const obs::Json doc = obs::Json::parse(first.value());
  const obs::Json* request = doc.find("request");
  ASSERT_NE(request, nullptr);
  const obs::Json* key = request->find("key");
  ASSERT_NE(key, nullptr);
  const std::string hex = key->as_string();
  const fs::path object =
      fs::path(sopts.cache_dir) / "objects" / (hex + ".json");
  ASSERT_TRUE(fs::exists(object));

  // Flip the object's bytes on disk — a torn write / bit-rot stand-in.
  {
    std::ofstream out(object, std::ios::trunc);
    out << "CORRUPT GARBAGE, NOT THE CACHED DOCUMENT";
  }

  // The scrubber's next CRC walk must quarantine it (file moved aside
  // for forensics, hot-tier copy dropped).
  const fs::path quarantined =
      fs::path(sopts.cache_dir) / "quarantine" / (hex + ".json");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (!fs::exists(quarantined) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(fs::exists(quarantined)) << "scrubber never quarantined";
  EXPECT_FALSE(fs::exists(object));
  // The hot-tier eviction lands just after the quarantine rename; a few
  // scrub intervals are more than enough.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Next read is a clean miss: recompile, byte-identical, re-cached.
  const std::int64_t misses_before = worker.server()->stats().cache_misses;
  const Result<std::string> second =
      compile_once(sopts.socket_path, chaos_graph(502));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(worker.server()->stats().cache_misses, misses_before + 1);

  const obs::Json stats = obs::Json::parse(worker.server()->stats_json());
  const obs::Json* cache = stats.find("cache");
  ASSERT_NE(cache, nullptr);
  const obs::Json* quarantine_count = cache->find("scrub_quarantined");
  ASSERT_NE(quarantine_count, nullptr);
  EXPECT_GE(quarantine_count->as_int(), 1);
}

// -------------------------------------------------- breaker state machine

TEST_F(Chaos, BreakerOpensOnDeadWorkerAndClosesViaProbeAndTrial) {
  ChaosFleet fleet;
  ASSERT_TRUE(fleet.wait_all_alive(std::chrono::seconds(5)));

  // Kill w1. The 25 ms health prober alone racks up the two consecutive
  // failures that open its breaker — no client traffic required.
  fleet.kill(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool opened = false;
  while (!opened && std::chrono::steady_clock::now() < deadline) {
    const RouterStats now = fleet.router()->stats();
    const auto it = now.workers.find("w1");
    if (it != now.workers.end() && it->second.breaker == BreakerState::kOpen) {
      opened = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(opened) << "breaker never opened for the dead worker";
  const RouterStats down = fleet.router()->stats();
  EXPECT_GE(down.worker_down, 1);
  ASSERT_TRUE(down.workers.contains("w1"));
  EXPECT_FALSE(down.workers.at("w1").alive);

  // Restart: the prober's next success moves it open → half-open (alive
  // again, but only a single trial request may cross).
  fleet.restart(0);
  ASSERT_TRUE(fleet.wait_all_alive(std::chrono::seconds(5)));
  const RouterStats half = fleet.router()->stats();
  EXPECT_GE(half.breaker_half_open, 1);

  // Drive compiles until one lands on w1 as shard owner — that trial's
  // success closes the breaker for good.
  RetryBudget budget(100);
  ClientOptions copts;
  copts.socket_path = fleet.router_socket();
  RetryingClient client(copts, soak_policy(7), &budget);
  bool drove_w1 = false;
  for (int i = 0; i < 12; ++i) {
    const CompileRequest req = chaos_graph(200 + i);
    drove_w1 =
        drove_w1 || fleet.router()->shard_owner(shard_key(req)) == "w1";
    const Result<std::string> got = client.compile(req);
    EXPECT_TRUE(got.ok()) << got.error().message;
    if (drove_w1) break;
  }
  ASSERT_TRUE(drove_w1) << "no probe graph landed on w1";
  const RouterStats closed = fleet.router()->stats();
  EXPECT_GE(closed.breaker_close, 1);
  ASSERT_TRUE(closed.workers.contains("w1"));
  EXPECT_TRUE(closed.workers.at("w1").alive);
  EXPECT_EQ(closed.workers.at("w1").breaker, BreakerState::kClosed);
}

// ------------------------------------------------ injected service chaos

TEST_F(Chaos, InjectedServiceFaultsStayTypedAndHeal) {
  ChaosFleet fleet;
  ASSERT_TRUE(fleet.wait_all_alive(std::chrono::seconds(5)));

  // Five single-fire faults across accept, recv, send, peer round-trips,
  // and the worker compile path. Fresh (uncached) graphs force real
  // compiles so the stall site actually runs.
  fault::configure(
      "svc_accept:2,svc_recv_torn:2,svc_send_short:3,svc_peer_timeout:2,"
      "svc_worker_stall:1",
      42);

  RetryBudget budget(100);
  ClientOptions copts;
  copts.socket_path = fleet.router_socket();
  RetryingClient client(copts, soak_policy(42), &budget);
  std::vector<std::string> answers;
  for (int i = 0; i < 12; ++i) {
    const Result<std::string> got = client.compile(chaos_graph(100 + i));
    if (got.ok()) {
      answers.push_back(got.value());
    } else {
      // Mid-chaos failures must be typed and transient — never a parse
      // error, never an internal, and (enforced by gtest's timeout-free
      // run finishing at all) never a hang.
      EXPECT_TRUE(retryable(got.error().code))
          << error_code_name(got.error().code) << ": "
          << got.error().message;
      answers.emplace_back();  // placeholder: re-checked after healing
    }
  }

  // Every armed site fired exactly once — the chaos actually happened.
  for (const char* site :
       {"svc_accept", "svc_recv_torn", "svc_send_short", "svc_peer_timeout",
        "svc_worker_stall"}) {
    EXPECT_EQ(fault::fire_count(site), 1) << site;
  }

  // Disarm and heal: every graph now compiles, twice, byte-identically,
  // and matches any answer obtained mid-chaos.
  fault::clear();
  ASSERT_TRUE(fleet.wait_all_alive(std::chrono::seconds(5)));
  for (int i = 0; i < 12; ++i) {
    const Result<std::string> a = client.compile(chaos_graph(100 + i));
    const Result<std::string> b = client.compile(chaos_graph(100 + i));
    ASSERT_TRUE(a.ok()) << a.error().message;
    ASSERT_TRUE(b.ok()) << b.error().message;
    EXPECT_EQ(a.value(), b.value());
    if (!answers[static_cast<std::size_t>(i)].empty()) {
      EXPECT_EQ(a.value(), answers[static_cast<std::size_t>(i)]);
    }
  }
}

// --------------------------------------------------------- the kill soak

TEST_F(Chaos, KillRestartSoakIsTypedAndByteIdentical) {
  for (const std::uint64_t seed : {0ULL, 7ULL, 42ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosFleet fleet;
    ASSERT_TRUE(fleet.wait_all_alive(std::chrono::seconds(5)));

    RetryBudget budget(1000);
    ClientOptions copts;
    copts.socket_path = fleet.router_socket();
    RetryingClient client(copts, soak_policy(seed), &budget);

    // Baseline answers on a healthy fleet.
    std::vector<std::string> expect;
    for (int g = 0; g < 6; ++g) {
      const Result<std::string> got = client.compile(chaos_graph(g));
      ASSERT_TRUE(got.ok()) << got.error().message;
      expect.push_back(got.value());
    }

    // 40 seeded steps: kill, restart, or request. Kills and restarts of
    // already-down/up workers are no-ops, so every schedule is legal.
    int ok = 0;
    for (std::uint64_t step = 0; step < 40; ++step) {
      const std::uint64_t r = draw(seed, step);
      const int w = static_cast<int>((r >> 8) % ChaosFleet::kWorkers);
      switch (r % 4) {
        case 0:
          fleet.kill(w);
          break;
        case 1:
          fleet.restart(w);
          break;
        default: {
          const int g = static_cast<int>((r >> 16) % 6);
          const Result<std::string> got = client.compile(chaos_graph(g));
          if (got.ok()) {
            EXPECT_EQ(got.value(), expect[static_cast<std::size_t>(g)])
                << "step " << step << " graph " << g;
            ++ok;
          } else {
            EXPECT_TRUE(retryable(got.error().code))
                << "step " << step << ": "
                << error_code_name(got.error().code) << ": "
                << got.error().message;
          }
          break;
        }
      }
    }
    // The schedule must have produced real traffic, not only failures.
    EXPECT_GT(ok, 0);

    // Heal everything; the fleet converges and every answer (including
    // from caches that lived through kill/restart cycles) is unchanged.
    for (int i = 0; i < ChaosFleet::kWorkers; ++i) fleet.restart(i);
    ASSERT_TRUE(fleet.wait_all_alive(std::chrono::seconds(10)));
    for (int g = 0; g < 6; ++g) {
      const Result<std::string> got = client.compile(chaos_graph(g));
      ASSERT_TRUE(got.ok()) << got.error().message;
      EXPECT_EQ(got.value(), expect[static_cast<std::size_t>(g)])
          << "graph " << g;
    }
  }
}

}  // namespace
}  // namespace sdf::svc
