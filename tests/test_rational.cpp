#include "sdf/rational.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "util/status.h"

namespace sdf {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesSign) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroNumeratorCanonicalizesDenominator) {
  const Rational r(0, 17);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(0) * Rational(5, 7), Rational(0));
  EXPECT_EQ(Rational(-2, 5) * Rational(5, 2), Rational(-1));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 6) + Rational(1, 3), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(3, 4) - Rational(1, 4), Rational(1, 2));
}

TEST(Rational, IsInteger) {
  EXPECT_TRUE(Rational(8, 4).is_integer());
  EXPECT_FALSE(Rational(5, 4).is_integer());
}

TEST(Rational, EqualityIsCanonical) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, CrossReductionAvoidsSpuriousOverflow) {
  // (k/3) * (3/k) with huge k must not overflow thanks to cross-reduction.
  const std::int64_t k = (1ll << 61);
  EXPECT_EQ(Rational(k, 3) * Rational(3, k), Rational(1));
}

TEST(Rational, MultiplicationOverflowThrows) {
  const std::int64_t big = (1ll << 62);
  EXPECT_THROW(Rational(big, 1) * Rational(big, 1), std::overflow_error);
}

TEST(Rational, AdditionOverflowThrows) {
  const std::int64_t big = (1ll << 62);
  EXPECT_THROW(Rational(big, 1) + Rational(big * 0 + big, 1),
               std::overflow_error);
}

TEST(Rational, OverflowCarriesTypedDiagnostic) {
  // The std::overflow_error is also an SdfError with code kOverflow, so
  // the pipeline boundary maps it to the documented exit code.
  const std::int64_t big = (1ll << 62);
  try {
    const Rational r = Rational(big, 1) * Rational(big, 1);
    (void)r;
    FAIL() << "expected overflow";
  } catch (const ArithmeticOverflowError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverflow);
  }
}

TEST(Rational, ZeroDenominatorIsTypedBadArgument) {
  EXPECT_THROW(Rational(1, 0), BadArgumentError);
}

TEST(Rational, NegationOverflowIsCheckedNotUb) {
  // INT64_MIN cannot be negated; normalization and subtraction must
  // report that as a typed overflow instead of signed-overflow UB.
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  EXPECT_THROW(Rational(1, min), ArithmeticOverflowError);
  EXPECT_THROW(Rational(0) - Rational(min, 1), ArithmeticOverflowError);
}

}  // namespace
}  // namespace sdf
