#include "sched/simulator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sdf {
namespace {

using testing::fig1_graph;
using testing::fig2_graph;

TEST(Simulator, Fig1MaxTokensS1) {
  // S1 = (3A)(6B)(2C): max_tokens(A->B) = 7 with the unit delay, 6 without.
  const Graph g = fig1_graph(/*with_delay=*/true);
  const Schedule s = parse_schedule(g, "(3A)(6B)(2C)");
  const SimulationResult r = simulate(g, s);
  ASSERT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.max_tokens[0], 7);  // paper: max_tokens((A,B), S1) = 7
  EXPECT_EQ(r.max_tokens[1], 6);
  EXPECT_EQ(r.buffer_memory, 13);  // paper: bufmem(S1) = 13
}

TEST(Simulator, Fig1MaxTokensS2) {
  // S2 = (3A(2B))(2C): max_tokens(A->B) = 3.
  const Graph g = fig1_graph(/*with_delay=*/true);
  const Schedule s = parse_schedule(g, "(3 (A)(2B))(2C)");
  const SimulationResult r = simulate(g, s);
  ASSERT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.max_tokens[0], 3);
  EXPECT_EQ(r.max_tokens[1], 6);
  EXPECT_EQ(r.buffer_memory, 9);  // paper: bufmem(S2) = 9
}

TEST(Simulator, Fig2ScheduleBufferMemories) {
  // Paper Sec. 3 quotes 50/40/60/50 for the four Fig. 2(b) schedules; the
  // two single appearance schedules (2 and 3) are reproducible exactly:
  const Graph g = fig2_graph();
  EXPECT_EQ(simulate(g, parse_schedule(g, "(3 (A)(2B))(2C)")).buffer_memory,
            40);
  EXPECT_EQ(simulate(g, parse_schedule(g, "(3A)(6B)(2C)")).buffer_memory,
            60);
}

TEST(Simulator, DetectsUnderflow) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(6B)(3A)(2C)");  // B before A
  const SimulationResult r = simulate(g, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("B"), std::string::npos);
}

TEST(Simulator, DelayEnablesEarlyFiring) {
  // B can fire once before A thanks to 3 initial tokens.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 3, 3, 3);
  const Schedule s = parse_schedule(g, "B A");
  const SimulationResult r = simulate(g, s);
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.max_tokens[0], 3);
}

TEST(Simulator, CountsFirings) {
  const Graph g = fig2_graph();
  const SimulationResult r = simulate(g, parse_schedule(g, "(3A)(6B)(2C)"));
  EXPECT_EQ(r.firings, 11);
}

TEST(IsValidSchedule, AcceptsMinimalPeriod) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_TRUE(is_valid_schedule(g, q, parse_schedule(g, "(3A)(6B)(2C)")));
  EXPECT_TRUE(is_valid_schedule(g, q, parse_schedule(g, "(3 (A)(2B))(2C)")));
}

TEST(IsValidSchedule, RejectsWrongFiringCounts) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_FALSE(is_valid_schedule(g, q, parse_schedule(g, "(6A)(12B)(4C)")));
  EXPECT_FALSE(is_valid_schedule(g, q, parse_schedule(g, "(3A)(6B)")));
}

TEST(IsValidSchedule, RejectsUnderflowingOrder) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  EXPECT_FALSE(is_valid_schedule(g, q, parse_schedule(g, "(2C)(6B)(3A)")));
}

TEST(TraceTokens, RecordsEveryFiring) {
  const Graph g = fig2_graph();
  const TokenTrace t = trace_tokens(g, parse_schedule(g, "(3 (A)(2B))(2C)"));
  ASSERT_TRUE(t.valid);
  EXPECT_EQ(t.firing_seq.size(), 11u);
  EXPECT_EQ(t.counts.size(), 12u);  // initial state + one per firing
  // After the first A: 10 tokens on (A,B).
  EXPECT_EQ(t.counts[1][0], 10);
  // Final state: all edges drained.
  EXPECT_EQ(t.counts.back()[0], 0);
  EXPECT_EQ(t.counts.back()[1], 0);
}

TEST(TraceTokens, MaxLiveTokensFineModel) {
  const Graph g = fig2_graph();
  // Token conservation through B keeps every SAS at a peak of 30 here
  // (all of A's tokens are in flight until the first C), but a non-SAS
  // schedule that interleaves C strictly reduces the fine-model peak —
  // the Sec. 11.1.3 argument for n-appearance/dynamic schedules.
  const std::int64_t flat =
      max_live_tokens(trace_tokens(g, parse_schedule(g, "(3A)(6B)(2C)")));
  const std::int64_t nested =
      max_live_tokens(trace_tokens(g, parse_schedule(g, "(3 (A)(2B))(2C)")));
  const std::int64_t interleaved =
      max_live_tokens(trace_tokens(g, parse_schedule(g, "A 2B A B C A 3B C")));
  EXPECT_EQ(flat, 30);
  EXPECT_LE(nested, flat);
  EXPECT_LT(interleaved, flat);
  EXPECT_EQ(interleaved, 20);
}

TEST(TraceTokens, RespectsFiringLimit) {
  const Graph g = fig2_graph();
  const Schedule big = Schedule::loop(
      1 << 21, {parse_schedule(g, "(3A)(6B)(2C)")});
  const TokenTrace t = trace_tokens(g, big, /*firing_limit=*/100);
  EXPECT_FALSE(t.valid);
}

}  // namespace
}  // namespace sdf
