// util/hash.h: FNV-1a against the published reference vectors, plus the
// chaining and stability properties the fault injector and the service
// cache key depend on.
#include "util/hash.h"

#include <gtest/gtest.h>

#include <string>

#include "util/flags.h"

namespace sdf::util {
namespace {

TEST(Fnv1a64, ReferenceVectors) {
  // Vectors from the FNV reference implementation (Noll's test suite).
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("b"), 0xaf63df4c8601f1a5ULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a32, ReferenceVectors) {
  EXPECT_EQ(fnv1a32(""), 0x811c9dc5u);
  EXPECT_EQ(fnv1a32("a"), 0xe40c292cu);
  EXPECT_EQ(fnv1a32("foobar"), 0xbf9cf968u);
}

TEST(Fnv1a64, EmptyInputReturnsSeed) {
  EXPECT_EQ(fnv1a64(""), kFnv64Offset);
  EXPECT_EQ(fnv1a64("", 12345u), 12345u);
}

TEST(Fnv1a64, ChainingEqualsConcatenation) {
  // fnv1a64(b, fnv1a64(a)) must hash exactly like fnv1a64(a + b) — the
  // cache key relies on this to chain graph text with the option
  // fingerprint without concatenating strings.
  const std::string a = "graph satrec\nactor A\n";
  const std::string b = "order=rpmc;opt=sdppo";
  EXPECT_EQ(fnv1a64(b, fnv1a64(a)), fnv1a64(a + b));
  EXPECT_EQ(fnv1a32(b, fnv1a32(a)), fnv1a32(a + b));
}

TEST(Fnv1a64, ChainingIsOrderSensitive) {
  EXPECT_NE(fnv1a64("b", fnv1a64("a")), fnv1a64("a", fnv1a64("b")));
}

TEST(Fnv1a64, HighBytesAreNotSignExtended) {
  // Bytes >= 0x80 must enter as unsigned; a char sign-extension bug
  // would smear the high bits and break on-disk cache keys.
  const std::string high("\xff\x80\x01", 3);
  EXPECT_EQ(fnv1a64(high),
            fnv1a64("\x01", fnv1a64("\x80", fnv1a64("\xff"))));
}

TEST(Fnv1a64, IsConstexpr) {
  static_assert(fnv1a64("a") == 0xaf63dc4c8601ec8cULL);
  static_assert(fnv1a32("a") == 0xe40c292cu);
  SUCCEED();
}

TEST(ParsePositiveFlag, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_positive_flag("1"), 1);
  EXPECT_EQ(parse_positive_flag("250"), 250);
  EXPECT_EQ(parse_positive_flag("9223372036854775807"),
            9223372036854775807LL);
}

TEST(ParsePositiveFlag, RejectsNonPositiveAndMalformed) {
  EXPECT_FALSE(parse_positive_flag("0"));
  EXPECT_FALSE(parse_positive_flag("-1"));
  EXPECT_FALSE(parse_positive_flag("+4"));
  EXPECT_FALSE(parse_positive_flag(""));
  EXPECT_FALSE(parse_positive_flag("abc"));
  EXPECT_FALSE(parse_positive_flag("4x"));       // atoi would say 4
  EXPECT_FALSE(parse_positive_flag(" 4"));
  EXPECT_FALSE(parse_positive_flag("00"));       // zero, however spelled
  EXPECT_FALSE(parse_positive_flag("9223372036854775808"));  // overflow
}

TEST(ParsePositiveFlag, LeadingZerosOnPositiveValueAreFine) {
  EXPECT_EQ(parse_positive_flag("007"), 7);
}

}  // namespace
}  // namespace sdf::util
