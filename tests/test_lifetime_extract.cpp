#include "lifetime/lifetime_extract.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "sched/sdppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

using testing::fig2_graph;

const BufferLifetime& lifetime_of(const std::vector<BufferLifetime>& ls,
                                  EdgeId e) {
  for (const BufferLifetime& b : ls) {
    if (b.edge == e) return b;
  }
  throw std::out_of_range("no lifetime for edge");
}

TEST(LifetimeExtract, FlatScheduleWidthsAreTnse) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const ScheduleTree tree(g, parse_schedule(g, "(3A)(6B)(2C)"));
  const auto lifetimes = extract_lifetimes(g, q, tree);
  ASSERT_EQ(lifetimes.size(), 2u);
  EXPECT_EQ(lifetime_of(lifetimes, 0).width, 30);
  EXPECT_EQ(lifetime_of(lifetimes, 1).width, 30);
  // A->B live from step 0 (leaf A) to end of leaf B (step 2 of 3).
  EXPECT_EQ(lifetime_of(lifetimes, 0).interval.first_start(), 0);
  EXPECT_EQ(lifetime_of(lifetimes, 0).interval.burst_duration(), 2);
  // B->C live [1, 3).
  EXPECT_EQ(lifetime_of(lifetimes, 1).interval.first_start(), 1);
  EXPECT_EQ(lifetime_of(lifetimes, 1).interval.burst_duration(), 2);
}

TEST(LifetimeExtract, NestedLoopShrinksWidthAndAddsPeriodicity) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  // (3 (A)(2B))(2C): the A->B buffer lives inside the 3x loop.
  const ScheduleTree tree(g, parse_schedule(g, "(3 (A)(2B))(2C)"));
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const BufferLifetime& ab = lifetime_of(lifetimes, 0);
  EXPECT_EQ(ab.width, 10);  // TNSE 30 / 3 iterations
  EXPECT_TRUE(ab.interval.is_periodic());
  EXPECT_EQ(ab.interval.counts(), (std::vector<std::int64_t>{3}));
  EXPECT_EQ(ab.interval.periods(), (std::vector<std::int64_t>{2}));
  EXPECT_EQ(ab.interval.first_start(), 0);
  EXPECT_EQ(ab.interval.burst_duration(), 2);

  const BufferLifetime& bc = lifetime_of(lifetimes, 1);
  EXPECT_EQ(bc.width, 30);
  EXPECT_FALSE(bc.interval.is_periodic());
  // B first fires at step 1; C's leaf ends at step 7.
  EXPECT_EQ(bc.interval.first_start(), 1);
  EXPECT_EQ(bc.interval.burst_duration(), 6);
}

TEST(LifetimeExtract, StopTimeWalkSubtractsTrailingSiblings) {
  // (2 (A)(2B))(2 (C)(D)) with edges A->B and A->C: the A->C buffer's lca
  // is the root; C's last firing inside the period ends before D's leaf,
  // so the stop time must subtract dur(D-subtree of the last iteration).
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(a, c, 1, 1);
  g.add_edge(c, d, 1, 1);
  const Repetitions q{2, 2, 2, 2};
  const Schedule s = parse_schedule(g, "(2 (A)(B))(2 (C)(D))");
  ASSERT_TRUE(is_valid_schedule(g, q, s));
  const ScheduleTree tree(g, s);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  // Steps: A@0 B@1 A@2 B@3 C@4 D@5 C@6 D@7.
  const BufferLifetime& ac = lifetime_of(lifetimes, 1);
  EXPECT_EQ(ac.interval.first_start(), 0);
  // Last C firing ends at step 7 (end of leaf C of the last iteration).
  EXPECT_EQ(ac.interval.burst_duration(), 7);
  EXPECT_FALSE(ac.interval.is_periodic());
}

TEST(LifetimeExtract, DelayEdgesPinnedToWholePeriod) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1, 2);
  const Repetitions q{1, 1};
  const ScheduleTree tree(g, parse_schedule(g, "A B"));
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const BufferLifetime& ab = lifetimes.front();
  EXPECT_EQ(ab.lca, kNoTreeNode);
  EXPECT_EQ(ab.width, 3);  // 1 token per period + 2 initial
  EXPECT_EQ(ab.interval.first_start(), 0);
  EXPECT_EQ(ab.interval.burst_duration(), tree.total_duration());
}

TEST(LifetimeExtract, SelfLoopIsState) {
  Graph g;
  const ActorId a = g.add_actor("A");
  g.add_edge(a, a, 1, 1, 2);
  const ScheduleTree tree(g, Schedule::leaf(a, 1));
  const auto lifetimes = extract_lifetimes(g, {1}, tree);
  EXPECT_EQ(lifetimes.front().width, 2);
  EXPECT_EQ(lifetimes.front().lca, kNoTreeNode);
}

TEST(LifetimeExtract, DelaylessSelfLoopThrows) {
  Graph g;
  const ActorId a = g.add_actor("A");
  g.add_edge(a, a, 1, 1, 0);
  const ScheduleTree tree(g, Schedule::leaf(a, 1));
  EXPECT_THROW(extract_lifetimes(g, {1}, tree), std::invalid_argument);
}

TEST(LifetimeExtract, NonTopologicalScheduleThrows) {
  const Graph g = fig2_graph();
  // Valid-looking SAS with C before A: extraction must reject it for the
  // delayless edges.
  const Schedule s = parse_schedule(g, "(2C)(6B)(3A)");
  const ScheduleTree tree(g, s);
  EXPECT_THROW(extract_lifetimes(g, repetitions_vector(g), tree),
               std::invalid_argument);
}

TEST(LifetimeExtract, WidthTimesOccurrencesCoversTnse) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, *chain_order(g));
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  for (const BufferLifetime& b : lifetimes) {
    EXPECT_EQ(b.width * b.interval.occurrences(),
              tnse(g, q, b.edge));
  }
}

TEST(LifetimeExtract, WidthsBoundSimulatedPeaks) {
  // The coarse model width must dominate the fine-grained simulated peak.
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, *chain_order(g));
  const SimulationResult sim = simulate(g, opt.schedule);
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  for (const BufferLifetime& b : lifetimes) {
    EXPECT_GE(b.width,
              sim.max_tokens[static_cast<std::size_t>(b.edge)]);
  }
}

TEST(LifetimesOverlap, MatchesGenericIntervalTest) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, *chain_order(g));
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  for (const BufferLifetime& x : lifetimes) {
    for (const BufferLifetime& y : lifetimes) {
      EXPECT_EQ(lifetimes_overlap(tree, x, y),
                x.interval.overlaps(y.interval))
          << "edges " << x.edge << " vs " << y.edge;
    }
  }
}

TEST(LifetimesOverlap, DisjointSubtreesNeverOverlap) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  g.add_edge(a, b, 1, 1);
  g.add_edge(c, d, 1, 1);
  const Repetitions q{2, 2, 2, 2};
  const ScheduleTree tree(g, parse_schedule(g, "(2 (A)(B))(2 (C)(D))"));
  const auto lifetimes = extract_lifetimes(g, q, tree);
  EXPECT_FALSE(lifetimes_overlap(tree, lifetimes[0], lifetimes[1]));
  EXPECT_FALSE(lifetimes[0].interval.overlaps(lifetimes[1].interval));
}

}  // namespace
}  // namespace sdf
