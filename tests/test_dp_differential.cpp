// Differential harness pinning byte-identity of the arena-backed,
// structure-of-arrays DP rewrite (sched/dppo.cpp, sdppo.cpp,
// chain_dp.cpp) against naive reference re-implementations kept here —
// nested-vector prefix squares and tables, exactly the shape the code had
// before the rewrite, with no arena, no governor charges and no
// counters. The contract: for every graph, every cost, split table,
// schedule string, Pareto set and truncation flag must match
// byte-for-byte, in heap mode, arena mode, and with a shared SplitCosts
// slab; and the explore sweep must stay byte-identical across job counts
// under injected faults (degradation paths included).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "graphs/filterbank.h"
#include "graphs/satellite.h"
#include "pipeline/explore.h"
#include "sched/chain_dp.h"
#include "sched/dppo.h"
#include "sched/sas.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "sdf/repetitions.h"
#include "test_util.h"
#include "util/arena.h"
#include "util/fault.h"

namespace sdf {
namespace ref {

// ---------------------------------------------------------------------
// Reference split-cost oracle: nested-vector prefix squares, one vector
// per row, a full n x n gcd matrix — the pre-arena representation.
// ---------------------------------------------------------------------

using Prefix = std::vector<std::vector<std::int64_t>>;

template <typename WeightFn>
Prefix build_prefix(const Graph& g, const std::vector<ActorId>& order,
                    WeightFn&& weight) {
  const std::size_t n = order.size();
  std::vector<std::int32_t> pos(g.num_actors(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }
  Prefix prefix(n + 1, std::vector<std::int64_t>(n + 1, 0));
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    const auto ps = static_cast<std::size_t>(
        pos[static_cast<std::size_t>(edge.src)]);
    const auto pt = static_cast<std::size_t>(
        pos[static_cast<std::size_t>(edge.snk)]);
    prefix[ps + 1][pt + 1] += weight(static_cast<EdgeId>(e));
  }
  for (std::size_t a = 1; a <= n; ++a) {
    for (std::size_t b = 1; b <= n; ++b) {
      prefix[a][b] +=
          prefix[a - 1][b] + prefix[a][b - 1] - prefix[a - 1][b - 1];
    }
  }
  return prefix;
}

std::int64_t rect(const Prefix& prefix, std::size_t i, std::size_t k,
                  std::size_t j) {
  return prefix[k + 1][j + 1] - prefix[i][j + 1] - prefix[k + 1][k + 1] +
         prefix[i][k + 1];
}

struct SplitCosts {
  SplitCosts(const Graph& g, const Repetitions& q,
             const std::vector<ActorId>& order)
      : n(order.size()),
        tnse_prefix(build_prefix(
            g, order, [&](EdgeId e) { return tnse(g, q, e); })),
        delay_prefix(build_prefix(
            g, order, [&](EdgeId e) { return g.edge(e).delay; })),
        count_prefix(build_prefix(g, order, [](EdgeId) { return 1; })) {
    gcd.assign(n, std::vector<std::int64_t>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t acc = 0;
      for (std::size_t j = i; j < n; ++j) {
        acc = std::gcd(acc, q[static_cast<std::size_t>(order[j])]);
        gcd[i][j] = acc;
      }
    }
  }

  std::int64_t cost(std::size_t i, std::size_t k, std::size_t j) const {
    return rect(tnse_prefix, i, k, j) / gcd[i][j] +
           rect(delay_prefix, i, k, j);
  }
  std::int64_t edge_count(std::size_t i, std::size_t k,
                          std::size_t j) const {
    return rect(count_prefix, i, k, j);
  }

  std::size_t n;
  Prefix tnse_prefix;
  Prefix delay_prefix;
  Prefix count_prefix;
  std::vector<std::vector<std::int64_t>> gcd;
};

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

// ---------------------------------------------------------------------
// Reference DPPO (EQ 2-4): nested-vector b table, strict `<` split
// tie-break toward the smallest k.
// ---------------------------------------------------------------------

DppoResult dppo(const Graph& g, const Repetitions& q,
                const std::vector<ActorId>& order) {
  const std::size_t n = order.size();
  const SplitCosts costs(g, q, order);
  std::vector<std::vector<std::int64_t>> b(
      n, std::vector<std::int64_t>(n, 0));
  SplitTable splits;
  splits.at.assign(n, std::vector<std::size_t>(n, 0));
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      std::int64_t best = kInf;
      std::size_t best_k = i;
      for (std::size_t k = i; k < j; ++k) {
        const std::int64_t total =
            b[i][k] + b[k + 1][j] + costs.cost(i, k, j);
        if (total < best) {
          best = total;
          best_k = k;
        }
      }
      b[i][j] = best;
      splits.at[i][j] = best_k;
    }
  }
  DppoResult result;
  result.cost = n >= 2 ? b[0][n - 1] : 0;
  result.splits = splits;
  result.schedule = schedule_from_splits(g, q, order, splits);
  return result;
}

// ---------------------------------------------------------------------
// Reference SDPPO (EQ 5): overlay max-combine, fewer-crossing-edges
// tie-break, factoring only across splits with internal edges.
// ---------------------------------------------------------------------

SdppoResult sdppo(const Graph& g, const Repetitions& q,
                  const std::vector<ActorId>& order) {
  const std::size_t n = order.size();
  const SplitCosts costs(g, q, order);
  std::vector<std::vector<std::int64_t>> b(
      n, std::vector<std::int64_t>(n, 0));
  SplitTable splits;
  splits.at.assign(n, std::vector<std::size_t>(n, 0));
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      std::int64_t best = kInf;
      std::int64_t best_edges = kInf;
      std::size_t best_k = i;
      for (std::size_t k = i; k < j; ++k) {
        const std::int64_t total =
            std::max(b[i][k], b[k + 1][j]) + costs.cost(i, k, j);
        const std::int64_t edges = costs.edge_count(i, k, j);
        if (total < best || (total == best && edges < best_edges)) {
          best = total;
          best_edges = edges;
          best_k = k;
        }
      }
      b[i][j] = best;
      splits.at[i][j] = best_k;
    }
  }
  SdppoResult result;
  result.estimate = n >= 2 ? b[0][n - 1] : 0;
  result.splits = splits;
  result.schedule = schedule_from_splits(
      g, q, order, splits,
      [&](std::size_t i, std::size_t k, std::size_t j) {
        return costs.edge_count(i, k, j) > 0;
      });
  return result;
}

// ---------------------------------------------------------------------
// Reference exact chain DP (Sec. 6): table of nested vectors of Pareto
// entries, the same insert/truncate discipline, combine_triples shared
// with production (it is a pure function the rewrite did not touch).
// ---------------------------------------------------------------------

struct Entry {
  CostTriple t;
  std::size_t split = 0;
  std::size_t left_index = 0;
  std::size_t right_index = 0;
};

bool pareto_insert(std::vector<Entry>& set, const Entry& e,
                   std::size_t bound) {
  for (const Entry& existing : set) {
    if (existing.t.dominates(e.t)) return false;
  }
  std::erase_if(set, [&](const Entry& existing) {
    return e.t.dominates(existing.t);
  });
  set.push_back(e);
  if (set.size() > bound) {
    std::sort(set.begin(), set.end(), [](const Entry& a, const Entry& b) {
      if (a.t.cost != b.t.cost) return a.t.cost < b.t.cost;
      return a.t.left + a.t.right < b.t.left + b.t.right;
    });
    set.resize(bound);
    return true;
  }
  return false;
}

ChainDpResult chain_sdppo_exact(const Graph& g, const Repetitions& q,
                                const std::vector<ActorId>& order,
                                std::size_t max_incomparable) {
  const std::size_t n = order.size();
  const SplitCosts costs(g, q, order);
  ChainDpResult result;
  std::vector<std::vector<std::vector<Entry>>> table(
      n, std::vector<std::vector<Entry>>(n));
  for (std::size_t i = 0; i < n; ++i) {
    table[i][i].push_back(Entry{CostTriple{0, 0, 0}, i, 0, 0});
  }
  result.max_pareto_width = 1;
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      const std::int64_t gij = costs.gcd[i][j];
      auto& cell = table[i][j];
      for (std::size_t k = i; k < j; ++k) {
        const std::int64_t c = costs.cost(i, k, j);
        const std::int64_t rl = costs.gcd[i][k] / gij;
        const std::int64_t rr = costs.gcd[k + 1][j] / gij;
        const auto& lcell = table[i][k];
        const auto& rcell = table[k + 1][j];
        for (std::size_t li = 0; li < lcell.size(); ++li) {
          for (std::size_t ri = 0; ri < rcell.size(); ++ri) {
            Entry e;
            e.t = combine_triples(lcell[li].t, rcell[ri].t, c, rl, rr);
            e.split = k;
            e.left_index = li;
            e.right_index = ri;
            result.truncated |= pareto_insert(cell, e, max_incomparable);
          }
        }
      }
      result.max_pareto_width =
          std::max(result.max_pareto_width, cell.size());
    }
  }
  const auto& top = table[0][n - 1];
  std::size_t best = 0;
  for (std::size_t e = 1; e < top.size(); ++e) {
    if (top[e].t.cost < top[best].t.cost) best = e;
  }
  result.estimate = n >= 2 ? top[best].t.cost : 0;
  result.pareto.reserve(top.size());
  for (const Entry& e : top) result.pareto.push_back(e.t);
  auto build = [&](auto&& self, std::size_t i, std::size_t j,
                   std::size_t entry, std::int64_t divisor) -> Schedule {
    if (i == j) {
      return Schedule::leaf(
          order[i], q[static_cast<std::size_t>(order[i])] / divisor);
    }
    const Entry& e = table[i][j][entry];
    const std::int64_t gij = costs.gcd[i][j];
    Schedule body = Schedule::sequence(
        {self(self, i, e.split, e.left_index, gij),
         self(self, e.split + 1, j, e.right_index, gij)});
    body.set_count(gij / divisor);
    return body;
  };
  result.schedule = build(build, 0, n - 1, best, 1).normalized();
  return result;
}

}  // namespace ref

namespace {

std::vector<ActorId> topo(const Graph& g) {
  const auto order = topological_sort(g);
  if (!order) throw std::runtime_error("differential: cyclic graph");
  return *order;
}

/// The workload both sides run over: the paper's Table 1 practical
/// systems plus the shared seeded random-graph source.
std::vector<Graph> differential_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(qmf12(3));
  graphs.push_back(qmf23(2));
  graphs.push_back(qmf235(2));
  graphs.push_back(nqmf23(3));
  graphs.push_back(satellite_receiver());
  graphs.push_back(testing::fig2_graph());
  graphs.push_back(
      testing::chain({{10, 5}, {5, 15}, {3, 2}, {4, 6}, {9, 3}}));
  for (const std::uint32_t seed : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u}) {
    graphs.push_back(testing::random_consistent_graph(
        seed, 4 + static_cast<int>(seed % 7)));
  }
  return graphs;
}

std::string splits_text(const SplitTable& s) {
  std::string out;
  for (std::size_t i = 0; i < s.at.size(); ++i) {
    for (std::size_t j = i + 1; j < s.at[i].size(); ++j) {
      out += std::to_string(i) + "," + std::to_string(j) + "=" +
             std::to_string(s.at[i][j]) + ";";
    }
  }
  return out;
}

class DpDifferential : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

TEST_F(DpDifferential, SplitCostOracleMatchesNaivePrefixSums) {
  for (const Graph& g : differential_graphs()) {
    const Repetitions q = repetitions_vector(g);
    const std::vector<ActorId> order = topo(g);
    const std::size_t n = order.size();
    const ref::SplitCosts naive(g, q, order);
    util::Arena arena("test.differential");
    const SplitCosts heap_mode(g, q, order);
    const SplitCosts arena_mode(g, q, order, &arena);
    for (const SplitCosts* fast : {&heap_mode, &arena_mode}) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
          ASSERT_EQ(fast->gij(i, j), naive.gcd[i][j]) << g.name();
          for (std::size_t k = i; k < j; ++k) {
            ASSERT_EQ(fast->cost(i, k, j), naive.cost(i, k, j))
                << g.name();
            ASSERT_EQ(fast->split_cost(i, k, j, fast->gij(i, j)),
                      naive.cost(i, k, j))
                << g.name();
            ASSERT_EQ(fast->edge_count(i, k, j),
                      naive.edge_count(i, k, j))
                << g.name();
            ASSERT_EQ(fast->tnse_sum(i, k, j),
                      ref::rect(naive.tnse_prefix, i, k, j))
                << g.name();
            ASSERT_EQ(fast->delay_sum(i, k, j),
                      ref::rect(naive.delay_prefix, i, k, j))
                << g.name();
          }
        }
      }
    }
  }
}

TEST_F(DpDifferential, DppoIsByteIdenticalToTheReference) {
  for (const Graph& g : differential_graphs()) {
    const Repetitions q = repetitions_vector(g);
    const std::vector<ActorId> order = topo(g);
    const DppoResult want = ref::dppo(g, q, order);
    util::Arena arena("test.differential");
    const SplitCosts slab(g, q, order);
    // Heap mode, arena mode, and arena + shared slab must all agree.
    for (const DppoResult& got :
         {dppo(g, q, order), dppo(g, q, order, &arena),
          dppo(g, q, order, &arena, &slab)}) {
      EXPECT_EQ(got.cost, want.cost) << g.name();
      EXPECT_EQ(splits_text(got.splits), splits_text(want.splits))
          << g.name();
      EXPECT_EQ(got.schedule.to_string(g), want.schedule.to_string(g))
          << g.name();
    }
  }
}

TEST_F(DpDifferential, SdppoIsByteIdenticalToTheReference) {
  for (const Graph& g : differential_graphs()) {
    const Repetitions q = repetitions_vector(g);
    const std::vector<ActorId> order = topo(g);
    const SdppoResult want = ref::sdppo(g, q, order);
    util::Arena arena("test.differential");
    const SplitCosts slab(g, q, order);
    for (const SdppoResult& got :
         {sdppo(g, q, order), sdppo(g, q, order, &arena),
          sdppo(g, q, order, &arena, &slab)}) {
      EXPECT_EQ(got.estimate, want.estimate) << g.name();
      EXPECT_EQ(splits_text(got.splits), splits_text(want.splits))
          << g.name();
      EXPECT_EQ(got.schedule.to_string(g), want.schedule.to_string(g))
          << g.name();
    }
  }
}

TEST_F(DpDifferential, ChainDpIsByteIdenticalToTheReference) {
  // Tight Pareto bounds force truncation, exercising the std::sort
  // tie-break path whose survivor order the arena rewrite must not
  // perturb (entries stay array-of-structs for exactly this reason).
  for (const Graph& g : differential_graphs()) {
    const Repetitions q = repetitions_vector(g);
    const std::vector<ActorId> order = topo(g);
    for (const std::size_t bound : {std::size_t{1}, std::size_t{2},
                                    std::size_t{32}}) {
      const ChainDpResult want =
          ref::chain_sdppo_exact(g, q, order, bound);
      util::Arena arena("test.differential");
      const SplitCosts slab(g, q, order);
      for (const ChainDpResult& got :
           {chain_sdppo_exact(g, q, order, bound),
            chain_sdppo_exact(g, q, order, bound, &arena),
            chain_sdppo_exact(g, q, order, bound, &arena, &slab)}) {
        EXPECT_EQ(got.estimate, want.estimate)
            << g.name() << " bound " << bound;
        EXPECT_EQ(got.truncated, want.truncated)
            << g.name() << " bound " << bound;
        EXPECT_EQ(got.max_pareto_width, want.max_pareto_width)
            << g.name() << " bound " << bound;
        ASSERT_EQ(got.pareto.size(), want.pareto.size())
            << g.name() << " bound " << bound;
        for (std::size_t e = 0; e < got.pareto.size(); ++e) {
          EXPECT_EQ(got.pareto[e], want.pareto[e])
              << g.name() << " bound " << bound << " entry " << e;
        }
        EXPECT_EQ(got.schedule.to_string(g), want.schedule.to_string(g))
            << g.name() << " bound " << bound;
      }
    }
  }
}

TEST_F(DpDifferential, ArenaReuseAcrossRunsDoesNotLeakState) {
  // One arena hosting many consecutive DP runs (the pipeline's ladder
  // pattern) must give the same answers as a fresh arena per run.
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  const std::vector<ActorId> order = topo(g);
  const DppoResult want_dppo = ref::dppo(g, q, order);
  const SdppoResult want_sdppo = ref::sdppo(g, q, order);
  util::Arena arena("test.differential");
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(dppo(g, q, order, &arena).cost, want_dppo.cost);
    EXPECT_EQ(sdppo(g, q, order, &arena).estimate, want_sdppo.estimate);
    EXPECT_EQ(
        chain_sdppo_exact(g, q, order, 32, &arena).schedule.to_string(g),
        ref::chain_sdppo_exact(g, q, order, 32).schedule.to_string(g));
  }
  // The ladder's rewind discipline keeps the arena from growing: after
  // round one the chunks are warm and no further chunk is acquired.
  const std::int64_t chunks = arena.stats().chunk_allocs;
  EXPECT_EQ(dppo(g, q, order, &arena).cost, want_dppo.cost);
  EXPECT_EQ(arena.stats().chunk_allocs, chunks);
}

/// Explore fingerprint including the degradation provenance — faults are
/// part of the byte-identity contract.
std::string fault_fingerprint(const Graph& g, const ExploreResult& r) {
  std::string out;
  for (const DesignPoint& p : r.points) {
    out += p.strategy + "|" + std::to_string(p.code_size) + "|" +
           std::to_string(p.shared_memory) + "|" +
           std::to_string(p.nonshared_memory) + "|" + p.degraded_from +
           "|" + (p.pareto ? "P" : "-") + "\n";
  }
  out += "dropped=" + std::to_string(r.points_dropped) + "\n";
  for (const DesignPoint& f : r.frontier) {
    out += f.strategy + "|" + f.schedule.to_string(g) + "\n";
  }
  return out;
}

TEST_F(DpDifferential, ExploreIsByteIdenticalAcrossJobsUnderFaults) {
  // The slab registry and per-compile arenas must not perturb fault
  // determinism: same spec + seed => same points, same degraded_from
  // chains, whatever the job count.
  const Graph g = qmf23(2);
  for (const std::uint32_t seed : {0u, 7u, 42u}) {
    std::vector<std::string> prints;
    for (const int jobs : {1, 4}) {
      fault::configure("explore_point:5,dp_deadline:3,dp_mem:2", seed);
      ExploreOptions options;
      options.jobs = jobs;
      prints.push_back(fault_fingerprint(g, explore_designs(g, options)));
      fault::clear();
    }
    EXPECT_EQ(prints[0], prints[1]) << "seed " << seed;
    EXPECT_NE(prints[0].find("dropped="), std::string::npos);
  }
}

}  // namespace
}  // namespace sdf
