#include "codegen/c_codegen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "graphs/cddat.h"
#include "pipeline/compile.h"
#include "test_util.h"

namespace sdf {
namespace {

std::string generate_for(const Graph& g, const CodegenOptions& options = {}) {
  const CompileResult res = compile(g);
  return generate_c_source(g, res.q, res.schedule, res.lifetimes,
                           res.allocation, options);
}

TEST(Codegen, EmitsPoolSizedByAllocation) {
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  const std::string src = generate_c_source(g, res.q, res.schedule,
                                            res.lifetimes, res.allocation);
  EXPECT_NE(src.find("#define SDF_POOL_SIZE " +
                     std::to_string(res.shared_size)),
            std::string::npos);
  EXPECT_NE(src.find("static int32_t sdf_pool[SDF_POOL_SIZE];"),
            std::string::npos);
}

TEST(Codegen, EmitsOffsetAndCapacityPerEdge) {
  const std::string src = generate_for(cd_to_dat());
  EXPECT_NE(src.find("_OFF "), std::string::npos);
  EXPECT_NE(src.find("_CAP "), std::string::npos);
  EXPECT_NE(src.find("E0_A_B_OFF"), std::string::npos);
}

TEST(Codegen, EmitsActorPrototypeAndBodyPerActor) {
  const Graph g = cd_to_dat();
  const std::string src = generate_for(g);
  for (const Actor& a : g.actors()) {
    EXPECT_NE(src.find("void actor_" + a.name + "("), std::string::npos)
        << a.name;
  }
}

TEST(Codegen, LoopNestMirrorsSchedule) {
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  const std::string src = generate_c_source(g, res.q, res.schedule,
                                            res.lifetimes, res.allocation);
  // The optimized schedule has at least one loop; the code must too.
  EXPECT_NE(src.find("for (int64_t i0 = 0;"), std::string::npos);
  EXPECT_NE(src.find("void sdf_run_period(void)"), std::string::npos);
}

TEST(Codegen, MainIsOptional) {
  CodegenOptions options;
  options.emit_main = false;
  const std::string without = generate_for(cd_to_dat(), options);
  EXPECT_EQ(without.find("int main"), std::string::npos);
  const std::string with_main = generate_for(cd_to_dat());
  EXPECT_NE(with_main.find("int main"), std::string::npos);
}

TEST(Codegen, TokenTypeConfigurable) {
  CodegenOptions options;
  options.token_type = "float";
  const std::string src = generate_for(cd_to_dat(), options);
  EXPECT_NE(src.find("static float sdf_pool"), std::string::npos);
}

TEST(Codegen, SanitizesAwkwardNames) {
  Graph g("odd names");
  const ActorId a = g.add_actor("my-src 1");
  const ActorId b = g.add_actor("2nd");
  g.add_edge(a, b, 1, 1);
  const std::string src = generate_for(g);
  EXPECT_NE(src.find("actor_my_src_1"), std::string::npos);
  EXPECT_NE(src.find("actor__2nd"), std::string::npos);
}

TEST(Codegen, DelayInitializesWriteCounter) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 2, 4);
  const std::string src = generate_for(g);
  EXPECT_NE(src.find("E0_A_B_wr = 4;"), std::string::npos);
}

TEST(Codegen, MismatchedInputsThrow) {
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  Allocation wrong;
  wrong.offsets = {0};
  EXPECT_THROW(generate_c_source(g, res.q, res.schedule, res.lifetimes,
                                 wrong),
               std::invalid_argument);
}

TEST(Codegen, DeterministicOutput) {
  EXPECT_EQ(generate_for(cd_to_dat()), generate_for(cd_to_dat()));
}

TEST(Codegen, CodeSharingEmitsOneFunctionPerType) {
  // Two actors share the "work" implementation (Sec. 11.2 code sharing).
  Graph g("shared");
  const ActorId a = g.add_actor("srcA");
  const ActorId b = g.add_actor("work1");
  const ActorId c = g.add_actor("work2");
  const ActorId d = g.add_actor("snkD");
  g.add_edge(a, b, 2, 2);
  g.add_edge(b, c, 2, 2);
  g.add_edge(c, d, 2, 2);
  const CompileResult res = compile(g);
  CodegenOptions options;
  options.impl_of = {"source", "work", "work", "sink"};
  const std::string src = generate_c_source(g, res.q, res.schedule,
                                            res.lifetimes, res.allocation,
                                            options);
  // One definition of actor_work; two call sites.
  std::size_t defs = 0, calls = 0, pos = 0;
  while ((pos = src.find("actor_work(", pos)) != std::string::npos) {
    if (src.compare(pos - 5, 5, "void ") == 0) {
      ++defs;
    } else {
      ++calls;
    }
    ++pos;
  }
  EXPECT_EQ(defs, 2u);  // prototype + weak body
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(src.find("actor_work1"), std::string::npos);
}

TEST(Codegen, CodeSharingValidatesArity) {
  Graph g("bad");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, c, 1, 1);
  const CompileResult res = compile(g);
  CodegenOptions options;
  options.impl_of = {"same", "same", "same"};  // A has 0 inputs, B has 1
  EXPECT_THROW(generate_c_source(g, res.q, res.schedule, res.lifetimes,
                                 res.allocation, options),
               std::invalid_argument);
}

TEST(Codegen, ImplOfSizeValidated) {
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  CodegenOptions options;
  options.impl_of = {"x"};
  EXPECT_THROW(generate_c_source(g, res.q, res.schedule, res.lifetimes,
                                 res.allocation, options),
               std::invalid_argument);
}

TEST(Codegen, GeneratedSourceCompilesWithSystemCc) {
  // Full-loop integration: emit C for CD-DAT and hand it to the system C
  // compiler. Skipped when no `cc` is available.
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no system C compiler";
  }
  const Graph g = cd_to_dat();
  const CompileResult res = compile(g);
  const std::string source = generate_c_source(g, res.q, res.schedule,
                                               res.lifetimes, res.allocation);
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/sdfmem_codegen_test.c";
  const std::string bin_path = dir + "/sdfmem_codegen_test.bin";
  {
    std::ofstream out(c_path);
    ASSERT_TRUE(out.good());
    out << source;
  }
  const std::string compile_cmd =
      "cc -std=c11 -Wall -Werror -o " + bin_path + " " + c_path +
      " > /dev/null 2>&1";
  ASSERT_EQ(std::system(compile_cmd.c_str()), 0)
      << "generated C failed to compile";
  // The emitted main() runs one full period against the shared pool.
  EXPECT_EQ(std::system(bin_path.c_str()), 0);
  std::remove(c_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace sdf
