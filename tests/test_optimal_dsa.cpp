#include "alloc/optimal_dsa.h"

#include <gtest/gtest.h>

#include <random>

#include "alloc/clique.h"
#include "alloc/first_fit.h"
#include "graphs/cddat.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

BufferLifetime solid(EdgeId e, std::int64_t width, std::int64_t start,
                     std::int64_t dur) {
  BufferLifetime b;
  b.edge = e;
  b.width = width;
  b.interval = PeriodicInterval::solid(start, dur);
  return b;
}

TEST(BestFit, MatchesFirstFitOnSimpleStacks) {
  // Buffers 0,1,2 pairwise disjoint in time; buffer 3 conflicts with all.
  IntersectionGraph wig;
  wig.weights = {2, 4, 2, 2};
  wig.adjacency = {{3}, {3}, {3}, {0, 1, 2}};
  std::vector<BufferLifetime> lifetimes{
      solid(0, 2, 0, 2), solid(1, 4, 2, 2), solid(2, 2, 4, 2),
      solid(3, 2, 0, 6)};
  const Allocation ff = first_fit_enumerated(wig, {0, 1, 2, 3});
  const Allocation bf = best_fit(wig, lifetimes, FirstFitOrder::kInputOrder);
  EXPECT_TRUE(allocation_is_valid(wig, ff));
  EXPECT_TRUE(allocation_is_valid(wig, bf));
  // 0,1,2 all share [0,w); 3 sits on top of the tallest (4): height 6.
  EXPECT_EQ(ff.total_size, 6);
  EXPECT_EQ(bf.total_size, 6);
}

TEST(BestFit, PrefersTightGapOverOpenTop) {
  // Placement order: 0 (w1) at 0; 1 (w2) above it at 1 (conflicts 0);
  // 2 (w2) conflicts only 1: first-fit puts it at 0 (gap below 1),
  // best-fit also picks that slack-0 gap; then 3 (w1) conflicts 0 and 1:
  // the hole [0,1)... is taken? No: 3 conflicts {0,1}: busy [0,1),[1,3):
  // both allocators continue at 3. The interesting divergence: 4 (w1)
  // conflicts {1,2} -> busy [1,3) and [0,2): first-fit scans to 3;
  // best-fit finds no bounded gap either: equal. Verify equality holds --
  // the allocators only diverge on multi-gap profiles, which the random
  // trials in NeverWorseThanFirstFitOrBestFit exercise.
  IntersectionGraph wig;
  wig.weights = {1, 2, 2, 1, 1};
  wig.adjacency = {{1, 3}, {0, 2, 3, 4}, {1, 4}, {0, 1}, {1, 2}};
  std::vector<BufferLifetime> lifetimes;
  for (int i = 0; i < 5; ++i) {
    lifetimes.push_back(solid(static_cast<EdgeId>(i), wig.weights[
        static_cast<std::size_t>(i)], 0, 1));
  }
  const Allocation bf = best_fit(wig, lifetimes, FirstFitOrder::kInputOrder);
  EXPECT_TRUE(allocation_is_valid(wig, bf));
}

TEST(BestFit, ValidOnPracticalInstances) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, *chain_order(g));
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
  for (const FirstFitOrder order :
       {FirstFitOrder::kByDuration, FirstFitOrder::kByStartTime,
        FirstFitOrder::kByWidth}) {
    const Allocation a = best_fit(wig, lifetimes, order);
    EXPECT_TRUE(allocation_is_valid(wig, a));
  }
}

TEST(OptimalDsa, EmptyInstance) {
  const IntersectionGraph wig;
  const auto a = optimal_allocation(wig);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_size, 0);
}

TEST(OptimalDsa, SingleBuffer) {
  IntersectionGraph wig;
  wig.weights = {7};
  wig.adjacency = {{}};
  const auto a = optimal_allocation(wig);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_size, 7);
  EXPECT_EQ(a->offsets[0], 0);
}

TEST(OptimalDsa, TriangleNeedsSum) {
  IntersectionGraph wig;
  wig.weights = {2, 3, 4};
  wig.adjacency = {{1, 2}, {0, 2}, {0, 1}};
  const auto a = optimal_allocation(wig);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_size, 9);
}

TEST(OptimalDsa, IndependentBuffersShareZero) {
  IntersectionGraph wig;
  wig.weights = {5, 6, 7};
  wig.adjacency = {{}, {}, {}};
  const auto a = optimal_allocation(wig);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_size, 7);
}

TEST(OptimalDsa, BeatsGreedyOnKnownHardInstance) {
  // Path conflict graph P4 with weights chosen so naive stacking wastes
  // space: 0-1, 1-2, 2-3 conflicts.
  IntersectionGraph wig;
  wig.weights = {4, 3, 4, 3};
  wig.adjacency = {{1}, {0, 2}, {1, 3}, {2}};
  const auto a = optimal_allocation(wig);
  ASSERT_TRUE(a.has_value());
  // 0 and 2 can share [0,4); 1 and 3 share [4,7): optimal 7.
  EXPECT_EQ(a->total_size, 7);
  EXPECT_TRUE(allocation_is_valid(wig, *a));
}

TEST(OptimalDsa, NeverWorseThanFirstFitOrBestFit) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::int64_t> width(1, 6);
  std::uniform_int_distribution<std::int64_t> start(0, 12);
  std::uniform_int_distribution<std::int64_t> dur(1, 6);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<BufferLifetime> ls;
    const int n = 4 + trial % 6;
    for (int i = 0; i < n; ++i) {
      ls.push_back(solid(static_cast<EdgeId>(i), width(rng), start(rng),
                         dur(rng)));
    }
    const IntersectionGraph wig = build_intersection_graph_generic(ls);
    const auto opt = optimal_allocation(wig);
    ASSERT_TRUE(opt.has_value()) << trial;
    EXPECT_TRUE(allocation_is_valid(wig, *opt)) << trial;
    for (const FirstFitOrder order :
         {FirstFitOrder::kByDuration, FirstFitOrder::kByStartTime}) {
      EXPECT_LE(opt->total_size,
                first_fit(wig, ls, order).total_size)
          << trial;
      EXPECT_LE(opt->total_size, best_fit(wig, ls, order).total_size)
          << trial;
    }
    // And never below the MCW lower bound.
    EXPECT_GE(opt->total_size, mcw_exact(ls)) << trial;
  }
}

TEST(OptimalDsa, RefusesOversizedInstances) {
  IntersectionGraph wig;
  wig.weights.assign(30, 1);
  wig.adjacency.assign(30, {});
  EXPECT_FALSE(optimal_allocation(wig, /*max_buffers=*/18).has_value());
}

TEST(OptimalDsa, FirstFitGapToOptimalOnCdDat) {
  // Quantify the paper's "first-fit is near-optimal in practice" claim.
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const SdppoResult opt = sdppo(g, q, *chain_order(g));
  const ScheduleTree tree(g, opt.schedule);
  const auto lifetimes = extract_lifetimes(g, q, tree);
  const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
  const auto exact = optimal_allocation(wig);
  ASSERT_TRUE(exact.has_value());
  const Allocation ff = first_fit(wig, lifetimes,
                                  FirstFitOrder::kByDuration);
  EXPECT_LE(exact->total_size, ff.total_size);
  // First-fit within 25% of optimal here.
  EXPECT_LE(ff.total_size, exact->total_size + exact->total_size / 4 + 1);
}

}  // namespace
}  // namespace sdf
