#include "sched/sas.h"

#include <gtest/gtest.h>

#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

using testing::fig2_graph;

TEST(FlatSas, FiresEachActorQTimes) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const Schedule s = flat_sas(g, q);
  EXPECT_TRUE(s.is_single_appearance(g.num_actors()));
  EXPECT_TRUE(is_valid_schedule(g, q, s));
  EXPECT_EQ(s.to_string(g), "(3A)(6B)(2C)");
}

TEST(FlatSas, RespectsCustomOrder) {
  const Graph g = fig2_graph();
  const Repetitions q = repetitions_vector(g);
  const Schedule s = flat_sas(g, q, {0, 1, 2});
  EXPECT_EQ(s.lexorder(), (std::vector<ActorId>{0, 1, 2}));
}

TEST(FlatSas, SingleActorGraph) {
  Graph g;
  g.add_actor("A");
  const Schedule s = flat_sas(g, {1});
  EXPECT_TRUE(s.is_leaf());
}

TEST(FlatSas, ThrowsOnWrongOrderSize) {
  const Graph g = fig2_graph();
  EXPECT_THROW(flat_sas(g, repetitions_vector(g), {0, 1}),
               std::invalid_argument);
}

TEST(RangeGcd, ContiguousRanges) {
  const Repetitions q{12, 8, 6, 9};
  const std::vector<ActorId> order{0, 1, 2, 3};
  EXPECT_EQ(range_gcd(q, order, 0, 0), 12);
  EXPECT_EQ(range_gcd(q, order, 0, 1), 4);
  EXPECT_EQ(range_gcd(q, order, 0, 2), 2);
  EXPECT_EQ(range_gcd(q, order, 0, 3), 1);
  EXPECT_EQ(range_gcd(q, order, 2, 3), 3);
}

TEST(CrossingEdges, IdentifiesSplitCrossers) {
  // A->B, A->C, B->C: split {A} | {B,C} crosses A->B and A->C;
  // split {A,B} | {C} crosses A->C and B->C.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const EdgeId ab = g.add_edge(a, b, 1, 1);
  const EdgeId ac = g.add_edge(a, c, 1, 1);
  const EdgeId bc = g.add_edge(b, c, 1, 1);
  const std::vector<ActorId> order{a, b, c};
  EXPECT_EQ(crossing_edges(g, order, 0, 0, 2),
            (std::vector<EdgeId>{ab, ac}));
  EXPECT_EQ(crossing_edges(g, order, 0, 1, 2),
            (std::vector<EdgeId>{ac, bc}));
  // Sub-range excluding A sees only B->C.
  EXPECT_EQ(crossing_edges(g, order, 1, 1, 2), (std::vector<EdgeId>{bc}));
}

TEST(ScheduleFromSplits, FullyFactoredChain) {
  // q = (4, 2, 2); splits: ((x0)(x1 x2)). Factoring pulls out gcd 2.
  const Graph g = testing::chain({{1, 2}, {1, 1}});
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{2, 1, 1}));
  SplitTable splits;
  splits.at.assign(3, std::vector<std::size_t>(3, 0));
  splits.at[0][2] = 0;  // split after x0
  splits.at[1][2] = 1;
  const Schedule s = schedule_from_splits(g, q, {0, 1, 2}, splits);
  EXPECT_TRUE(is_valid_schedule(g, q, s));
  EXPECT_EQ(s.to_string(g), "(2x0)(x1)(x2)");
}

TEST(ScheduleFromSplits, CoprimeRepetitionsStayFlat) {
  // q = (2, 3): gcd 1, so factoring changes nothing.
  const Graph g = testing::two_actor(3, 2);
  const Repetitions q = repetitions_vector(g);
  ASSERT_EQ(q, (Repetitions{2, 3}));
  SplitTable splits;
  splits.at.assign(2, std::vector<std::size_t>(2, 0));
  splits.at[0][1] = 0;
  const Schedule s = schedule_from_splits(g, q, {0, 1}, splits);
  EXPECT_EQ(s.to_string(g), "(2A)(3B)");
}

TEST(ScheduleFromSplits, FactorsOutGcd) {
  // Non-minimal period q = (2, 4): factoring pulls the common factor 2.
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 1);
  const Repetitions q{2, 4};
  SplitTable splits;
  splits.at.assign(2, std::vector<std::size_t>(2, 0));
  splits.at[0][1] = 0;
  const Schedule s = schedule_from_splits(g, q, {a, b}, splits);
  EXPECT_EQ(s.to_string(g), "(2 (A)(2B))");
}

TEST(ScheduleFromSplits, FactorPredicateSuppressesFactoring) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 1);
  const Repetitions q{2, 4};
  SplitTable splits;
  splits.at.assign(2, std::vector<std::size_t>(2, 0));
  splits.at[0][1] = 0;
  const Schedule s = schedule_from_splits(
      g, q, {a, b}, splits,
      [](std::size_t, std::size_t, std::size_t) { return false; });
  EXPECT_EQ(s.to_string(g), "(2A)(4B)");
}

TEST(ScheduleFromSplits, MalformedSplitTableThrows) {
  const Graph g = testing::two_actor(1, 1);
  const Repetitions q{1, 1};
  SplitTable splits;
  splits.at.assign(2, std::vector<std::size_t>(2, 5));  // k out of range
  EXPECT_THROW(schedule_from_splits(g, q, {0, 1}, splits), std::logic_error);
}

TEST(BufmemNonshared, MatchesSimulator) {
  const Graph g = fig2_graph();
  const Schedule s = parse_schedule(g, "(3 (A)(2B))(2C)");
  EXPECT_EQ(bufmem_nonshared(g, s), 40);
}

}  // namespace
}  // namespace sdf
