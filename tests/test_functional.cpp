#include "sim/functional.h"

#include <gtest/gtest.h>

#include <random>

#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/homogeneous.h"
#include "graphs/random_sdf.h"
#include "graphs/satellite.h"
#include "pipeline/compile.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(Functional, ReferenceRunConsumesEveryProducedToken) {
  const Graph g = testing::fig2_graph();
  const CompileResult res = compile(g);
  const FunctionalRunResult r =
      run_reference(g, res.schedule, default_kernels(g));
  ASSERT_TRUE(r.ok) << r.error;
  // Consumption count = sum over edges of TNSE (delayless graph).
  EXPECT_EQ(r.consumed.size(), 60u);  // 30 + 30
}

TEST(Functional, PooledMatchesReferenceOnPracticalSystems) {
  for (const Graph& g : {cd_to_dat(), satellite_receiver(), qmf23(2),
                         qmf12(3), homogeneous_mesh(3, 3)}) {
    const CompileResult res = compile(g);
    const FunctionalRunResult r = run_pooled_and_compare(
        g, res.schedule, default_kernels(g), res.lifetimes, res.allocation);
    EXPECT_TRUE(r.ok) << g.name() << ": " << r.error;
  }
}

TEST(Functional, PooledMatchesReferenceWithDelays) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  g.add_edge(a, b, 2, 2, 4);
  g.add_edge(b, c, 3, 3);
  const CompileResult res = compile(g);
  const FunctionalRunResult r = run_pooled_and_compare(
      g, res.schedule, default_kernels(g), res.lifetimes, res.allocation);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Functional, CorruptAllocationDetectedByValues) {
  const Graph g = testing::fig2_graph();
  const CompileResult res = compile(g);
  Allocation bad = res.allocation;
  for (auto& offset : bad.offsets) offset = 0;  // everything overlaps
  bad.total_size = 64;
  const FunctionalRunResult r = run_pooled_and_compare(
      g, res.schedule, default_kernels(g), res.lifetimes, bad);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("mismatch"), std::string::npos);
}

TEST(Functional, UndersizedWidthDetected) {
  const Graph g = testing::fig2_graph();
  const CompileResult res = compile(g);
  auto lifetimes = res.lifetimes;
  lifetimes[0].width = 3;  // wraps too early
  const FunctionalRunResult r = run_pooled_and_compare(
      g, res.schedule, default_kernels(g), lifetimes, res.allocation);
  EXPECT_FALSE(r.ok);
}

TEST(Functional, CustomKernelsFlowThrough) {
  // Identity-forwarding pipeline: sink consumes exactly what src made.
  Graph g;
  const ActorId src = g.add_actor("src");
  const ActorId mid = g.add_actor("mid");
  const ActorId snk = g.add_actor("snk");
  g.add_edge(src, mid, 2, 2);
  g.add_edge(mid, snk, 2, 1);
  KernelTable kernels(3);
  kernels[static_cast<std::size_t>(src)] =
      [](const std::vector<std::vector<TokenValue>>&) {
        return std::vector<std::vector<TokenValue>>{{41, 42}};
      };
  kernels[static_cast<std::size_t>(mid)] =
      [](const std::vector<std::vector<TokenValue>>& in) {
        return std::vector<std::vector<TokenValue>>{{in[0][0], in[0][1]}};
      };
  kernels[static_cast<std::size_t>(snk)] =
      [](const std::vector<std::vector<TokenValue>>&) {
        return std::vector<std::vector<TokenValue>>{};
      };
  const CompileResult res = compile(g);
  const FunctionalRunResult r = run_pooled_and_compare(
      g, res.schedule, kernels, res.lifetimes, res.allocation);
  ASSERT_TRUE(r.ok) << r.error;
  // snk consumed 41 then 42 (after mid's pass-through).
  const std::size_t n = r.consumed.size();
  ASSERT_GE(n, 2u);
  EXPECT_EQ(r.consumed[n - 2], 41);
  EXPECT_EQ(r.consumed[n - 1], 42);
}

TEST(Functional, MisbehavingKernelReported) {
  const Graph g = testing::two_actor(1, 1);
  KernelTable kernels(2);
  kernels[0] = [](const std::vector<std::vector<TokenValue>>&) {
    return std::vector<std::vector<TokenValue>>{{1, 2, 3}};  // prod is 1!
  };
  kernels[1] = [](const std::vector<std::vector<TokenValue>>&) {
    return std::vector<std::vector<TokenValue>>{};
  };
  const CompileResult res = compile(g);
  const FunctionalRunResult r =
      run_reference(g, res.schedule, kernels);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("token count"), std::string::npos);
}

TEST(Functional, RandomGraphsValueEquivalence) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomSdfOptions options;
    options.num_actors = 6 + trial * 2;
    const Graph g = random_sdf_graph(options, rng);
    const CompileResult res = compile(g);
    const FunctionalRunResult r = run_pooled_and_compare(
        g, res.schedule, default_kernels(g), res.lifetimes, res.allocation);
    EXPECT_TRUE(r.ok) << g.name() << ": " << r.error;
  }
}

}  // namespace
}  // namespace sdf
