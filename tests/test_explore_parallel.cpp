// Determinism / differential suite for the parallel design-space
// exploration (pipeline/explore.cpp + explore_cache.h + util/thread_pool).
//
// The contract under test: `explore_designs` with any number of worker
// threads produces byte-identical points, frontier, and strategy strings
// to the serial run — on the paper's benchmark systems (satellite
// receiver, filterbanks) and on a randomized sweep drawn from the shared
// seeded generator in test_util.h. On top of the differential checks, the
// suite pins the execution-level pool-checker invariant for every
// parallel point, the frontier-only schedule-retention behavior, the
// deterministic memo-cache counters, and the thread pool itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "alloc/pool_checker.h"
#include "graphs/filterbank.h"
#include "graphs/satellite.h"
#include "lifetime/lifetime_extract.h"
#include "lifetime/schedule_tree.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "pipeline/explore.h"
#include "pipeline/governor.h"
#include "sched/simulator.h"
#include "sdf/repetitions.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace sdf {
namespace {

/// Canonical text form of a sweep result: every point (strategy + all
/// numbers + pareto flag) and the frontier including its schedules. Two
/// runs are equivalent iff these match byte-for-byte.
std::string fingerprint(const Graph& g, const ExploreResult& r) {
  std::string out;
  for (const DesignPoint& p : r.points) {
    out += p.strategy + "|" + std::to_string(p.code_size) + "|" +
           std::to_string(p.shared_memory) + "|" +
           std::to_string(p.nonshared_memory) + "|" +
           (p.pareto ? "P" : "-") + "\n";
  }
  out += "--frontier--\n";
  for (const DesignPoint& f : r.frontier) {
    out += f.strategy + "|" + std::to_string(f.code_size) + "|" +
           std::to_string(f.shared_memory) + "|" + f.schedule.to_string(g) +
           "\n";
  }
  return out;
}

ExploreResult explore_with_jobs(const Graph& g, int jobs) {
  ExploreOptions options;
  options.jobs = jobs;
  return explore_designs(g, options);
}

void expect_differential_identical(const Graph& g) {
  const ExploreResult serial = explore_with_jobs(g, 1);
  const std::string want = fingerprint(g, serial);
  ASSERT_FALSE(serial.points.empty()) << g.name();
  for (const int jobs : {2, util::ThreadPool::hardware_jobs()}) {
    const ExploreResult parallel = explore_with_jobs(g, jobs);
    EXPECT_EQ(fingerprint(g, parallel), want)
        << g.name() << " diverged with " << jobs << " jobs";
  }
}

TEST(ExploreParallel, DifferentialOnSatelliteReceiver) {
  expect_differential_identical(satellite_receiver());
}

TEST(ExploreParallel, DifferentialOnFilterbanks) {
  expect_differential_identical(qmf23(2));
  expect_differential_identical(nqmf23(2));
}

TEST(ExploreParallel, RandomizedDifferentialSweep) {
  // The same seeded generator the fuzz suite uses (test_util.h); small
  // graphs keep the 8-seed sweep fast while still mixing rates/topology.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const Graph g = testing::random_consistent_graph(seed, 6);
    const ExploreResult serial = explore_with_jobs(g, 1);
    const ExploreResult parallel = explore_with_jobs(g, 4);
    EXPECT_EQ(fingerprint(g, parallel), fingerprint(g, serial))
        << "seed " << seed;
  }
}

TEST(ExploreParallel, PoolCheckerHoldsForEveryParallelPoint) {
  // Every SAS design point evaluated by the parallel sweep must survive
  // the execution-level pool checker on both first-fit orders (merged and
  // n-appearance points live outside the per-edge lifetime model the
  // checker replays, so they are skipped — their memory numbers are
  // validated by the differential tests above).
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  ExploreOptions options;
  options.jobs = util::ThreadPool::hardware_jobs();
  options.keep_point_schedules = true;
  const ExploreResult r = explore_designs(g, options);
  int checked = 0;
  for (const DesignPoint& p : r.points) {
    if (p.strategy.find("+merge") != std::string::npos) continue;
    if (!p.schedule.is_single_appearance(g.num_actors())) continue;
    const ScheduleTree tree(g, p.schedule);
    const std::vector<BufferLifetime> lifetimes =
        extract_lifetimes(g, q, tree);
    const IntersectionGraph wig =
        build_intersection_graph(tree, lifetimes);
    for (const FirstFitOrder order :
         {FirstFitOrder::kByDuration, FirstFitOrder::kByStartTime}) {
      const Allocation alloc = first_fit(wig, lifetimes, order);
      const PoolCheckResult check =
          check_allocation_by_execution(g, p.schedule, lifetimes, alloc);
      EXPECT_TRUE(check.ok) << p.strategy << ": " << check.error;
    }
    ++checked;
  }
  EXPECT_GE(checked, 6);  // at least the 3x3 SAS bases minus non-SAS
}

TEST(ExploreParallel, PointsCarryNoScheduleByDefault) {
  // Regression for the DesignPoint memory fix: a sweep of P points keeps
  // schedules only for the frontier, so `points` must all hold a
  // default-constructed Schedule — while the opt-in flag retains every
  // schedule without changing the point set.
  const Graph g = qmf23(2);
  const ExploreResult lean = explore_designs(g);
  ASSERT_FALSE(lean.points.empty());
  for (const DesignPoint& p : lean.points) {
    EXPECT_TRUE(p.schedule == Schedule())
        << p.strategy << " retained a schedule in the lean sweep";
  }
  for (const DesignPoint& f : lean.frontier) {
    EXPECT_FALSE(f.schedule == Schedule()) << f.strategy;
  }

  ExploreOptions keep;
  keep.keep_point_schedules = true;
  const ExploreResult full = explore_designs(g, keep);
  ASSERT_EQ(full.points.size(), lean.points.size());
  const Repetitions q = repetitions_vector(g);
  for (std::size_t i = 0; i < full.points.size(); ++i) {
    EXPECT_EQ(full.points[i].strategy, lean.points[i].strategy);
    EXPECT_TRUE(is_valid_schedule(g, q, full.points[i].schedule))
        << full.points[i].strategy;
  }
}

TEST(ExploreParallel, CacheCountersAreDeterministicAcrossJobCounts) {
  // The memo cache computes 3 orderings + 9 loop-DP bases exactly once
  // whatever the thread count; with 3 budgets the 27 point tasks then hit
  // the base cache 27 times and the base computes hit the ordering cache
  // 9 times. Misses/hits must not depend on scheduling.
  const Graph g = qmf23(2);
  ExploreOptions options;
  options.appearance_budgets = {0, 16, 128};
  for (const int jobs : {1, 4}) {
    obs::set_enabled(true);
    obs::reset();
    options.jobs = jobs;
    (void)explore_designs(g, options);
    EXPECT_EQ(obs::counter("pipeline.explore.cache_miss"), 12)
        << jobs << " jobs";
    EXPECT_EQ(obs::counter("pipeline.explore.cache_hit"), 36)
        << jobs << " jobs";
    obs::set_enabled(false);
    obs::reset();
  }
}

TEST(ExploreParallel, SlabSharingOnOffIsByteIdentical) {
  // The per-ordering SplitCosts slab (explore_cache.h) is a pure memo:
  // turning it off must not move a single byte of output, at any job
  // count.
  for (const Graph& g : {satellite_receiver(), qmf23(2)}) {
    ExploreOptions shared;
    shared.jobs = 1;
    shared.share_dp_bases = true;
    const std::string want = fingerprint(g, explore_designs(g, shared));
    for (const int jobs : {1, 4}) {
      for (const bool share : {true, false}) {
        ExploreOptions options;
        options.jobs = jobs;
        options.share_dp_bases = share;
        EXPECT_EQ(fingerprint(g, explore_designs(g, options)), want)
            << g.name() << " jobs=" << jobs << " share=" << share;
      }
    }
  }
}

TEST(ExploreParallel, SlabCountersAreDeterministicAcrossJobCounts) {
  // Slab builds happen inside the registry mutex, so misses == distinct
  // ordering hashes and hits == remaining DP-base lookups — independent
  // of thread interleaving. With sharing off, the registry stays silent.
  const Graph g = qmf23(2);
  std::int64_t want_hits = -1;
  std::int64_t want_misses = -1;
  for (const int jobs : {1, 4}) {
    obs::set_enabled(true);
    obs::reset();
    ExploreOptions options;
    options.jobs = jobs;
    (void)explore_designs(g, options);
    const std::int64_t hits = obs::counter("dp.arena.slab_hits");
    const std::int64_t misses = obs::counter("dp.arena.slab_misses");
    obs::set_enabled(false);
    obs::reset();
    EXPECT_GE(misses, 1) << jobs << " jobs";
    EXPECT_GE(hits, 1) << jobs << " jobs";
    if (want_hits < 0) {
      want_hits = hits;
      want_misses = misses;
    } else {
      EXPECT_EQ(hits, want_hits) << jobs << " jobs";
      EXPECT_EQ(misses, want_misses) << jobs << " jobs";
    }
  }

  obs::set_enabled(true);
  obs::reset();
  ExploreOptions off;
  off.jobs = 4;
  off.share_dp_bases = false;
  (void)explore_designs(g, off);
  EXPECT_EQ(obs::counter("dp.arena.slab_hits"), 0);
  EXPECT_EQ(obs::counter("dp.arena.slab_misses"), 0);
  obs::set_enabled(false);
  obs::reset();
}

TEST(ExploreParallel, SlabRegistryUnderMemoryPressureStaysValid) {
  // A dp_mem budget too small for even one slab forces the registry down
  // its skip path (build, fail to retain, hand the slab to the one
  // caller) while every DP compile's arena trips and degrades to flat.
  // The sweep must still complete with pool-valid schedules and leave
  // the governor's accounting at zero. (No byte-identity assertion here:
  // under a shared global budget, concurrent arenas make individual trip
  // points interleaving-dependent.)
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  ResourceGovernor governor(ResourceBudget{0, /*dp_mem_bytes=*/4096});
  ExploreResult r;
  {
    const ResourceGovernor::Scope scope(governor);
    obs::set_enabled(true);
    obs::reset();
    ExploreOptions options;
    options.jobs = 4;
    options.keep_point_schedules = true;
    r = explore_designs(g, options);
    EXPECT_GE(obs::counter("dp.arena.slab_skips"), 1);
    obs::set_enabled(false);
    obs::reset();
  }
  EXPECT_EQ(governor.dp_bytes_in_use(), 0);
  ASSERT_FALSE(r.points.empty());
  int checked = 0;
  for (const DesignPoint& p : r.points) {
    if (p.strategy.find("+merge") != std::string::npos) continue;
    if (!p.schedule.is_single_appearance(g.num_actors())) continue;
    const ScheduleTree tree(g, p.schedule);
    const std::vector<BufferLifetime> lifetimes =
        extract_lifetimes(g, q, tree);
    const IntersectionGraph wig = build_intersection_graph(tree, lifetimes);
    const Allocation alloc =
        first_fit(wig, lifetimes, FirstFitOrder::kByDuration);
    const PoolCheckResult check =
        check_allocation_by_execution(g, p.schedule, lifetimes, alloc);
    EXPECT_TRUE(check.ok) << p.strategy << ": " << check.error;
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

TEST(ExploreParallel, WorkerSpansAreRecorded) {
  obs::set_enabled(true);
  obs::reset();
  (void)explore_with_jobs(qmf23(2), 2);
  std::size_t point_spans = 0;
  bool fan_span = false;
  for (const obs::SpanRecord& rec : obs::spans()) {
    point_spans += rec.name == "pipeline.explore.point";
    fan_span |= rec.name == "pipeline.explore.points";
    EXPECT_GE(rec.thread, 0);
  }
  EXPECT_GE(point_spans, 9u);  // one per (order x optimizer x budget) task
  EXPECT_TRUE(fan_span);
  obs::set_enabled(false);
  obs::reset();
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  util::parallel_for(&pool, hits.size(),
                     [&hits](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  util::ThreadPool pool(4);
  try {
    util::parallel_for(&pool, 64, [](std::size_t i) {
      if (i == 7 || i == 50) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");  // lowest index, deterministically
  }
}

TEST(ThreadPool, WaitDrainsTasksSpawnedByTasks) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &ran] {
      pool.submit([&ran] { ran.fetch_add(1); });
    });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ResolveJobsHonorsRequestThenEnvThenSerialDefault) {
  const char* saved = std::getenv("SDFMEM_JOBS");
  const std::string saved_value = saved ? saved : "";

  EXPECT_EQ(util::ThreadPool::resolve_jobs(3), 3);
  EXPECT_GE(util::ThreadPool::resolve_jobs(-1), 1);

  ::setenv("SDFMEM_JOBS", "5", 1);
  EXPECT_EQ(util::ThreadPool::resolve_jobs(0), 5);
  EXPECT_EQ(util::ThreadPool::resolve_jobs(2), 2);  // explicit wins

  ::setenv("SDFMEM_JOBS", "not-a-number", 1);
  EXPECT_EQ(util::ThreadPool::resolve_jobs(0), 1);

  ::unsetenv("SDFMEM_JOBS");
  EXPECT_EQ(util::ThreadPool::resolve_jobs(0), 1);

  if (saved != nullptr) ::setenv("SDFMEM_JOBS", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace sdf
