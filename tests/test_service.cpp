// The compile service (src/service/): wire protocol framing, the
// persistent content-addressed result cache, and the daemon end-to-end
// over a real Unix socket — cold/hot byte-identity, admission control,
// load shedding, corruption recovery, and graceful drain.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "obs/json_report.h"
#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/qos.h"
#include "service/server.h"
#include "service/trace.h"
#include "service/transport.h"
#include "util/hash.h"
#include "util/shutdown.h"

namespace sdf::svc {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kTinyGraph =
    "graph tiny\nactor A\nactor B\nedge A B 2 3\n";

/// A fresh scratch directory with a socket path short enough for
/// sockaddr_un (so TEST_TMPDIR-style deep paths cannot break binds).
struct Scratch {
  std::string dir;

  Scratch() {
    static int counter = 0;
    dir = "/tmp/sdfsvc_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter++);
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  [[nodiscard]] std::string socket_path() const { return dir + "/d.sock"; }
  [[nodiscard]] std::string cache_dir() const { return dir + "/cache"; }
};

/// Runs a Server on its own thread; stops and joins on destruction.
struct RunningServer {
  explicit RunningServer(ServerOptions options) {
    util::reset_shutdown();
    server = std::make_unique<Server>(std::move(options));
    server->start();
    runner = std::thread([this] { server->run(); });
  }
  ~RunningServer() { stop(); }

  void stop() {
    if (runner.joinable()) {
      server->stop();
      runner.join();
    }
  }

  std::unique_ptr<Server> server;
  std::thread runner;
};

CompileRequest tiny_request() {
  CompileRequest req;
  req.graph_text = std::string(kTinyGraph);
  return req;
}

// ---------------------------------------------------------------- framing

TEST(Protocol, FrameRoundTrip) {
  const std::string wire =
      encode_frame(FrameKind::kCompileRequest, "payload bytes");
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(wire, &frame, &consumed), DecodeStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame.kind, FrameKind::kCompileRequest);
  EXPECT_EQ(frame.payload, "payload bytes");
}

TEST(Protocol, DecodeIsIncremental) {
  const std::string wire = encode_frame(FrameKind::kPing, "tok");
  Frame frame;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(decode_frame(wire.substr(0, n), &frame, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << n;
  }
  EXPECT_EQ(decode_frame(wire, &frame, &consumed), DecodeStatus::kOk);
}

TEST(Protocol, RejectsBadMagicOnFirstDivergentByte) {
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame("GET / HTTP/1.1", &frame, &consumed),
            DecodeStatus::kBadMagic);
  // One wrong byte is enough — no need to buffer a full header.
  EXPECT_EQ(decode_frame("X", &frame, &consumed), DecodeStatus::kBadMagic);
}

TEST(Protocol, RejectsBadKindAndBadCrc) {
  std::string wire = encode_frame(FrameKind::kPong, "abc");
  Frame frame;
  std::size_t consumed = 0;

  std::string bad_kind = wire;
  bad_kind[7] = '\x63';  // kind byte well outside the enum
  EXPECT_EQ(decode_frame(bad_kind, &frame, &consumed),
            DecodeStatus::kBadKind);

  std::string bad_crc = wire;
  bad_crc.back() ^= 0x01;  // flip one payload byte; CRC now disagrees
  EXPECT_EQ(decode_frame(bad_crc, &frame, &consumed),
            DecodeStatus::kBadCrc);
}

TEST(Protocol, RejectsOversizedDeclaredLength) {
  std::string wire = encode_frame(FrameKind::kPing, "x");
  // Rewrite the length field to > kMaxPayloadBytes.
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  wire[8] = static_cast<char>(huge & 0xFF);
  wire[9] = static_cast<char>((huge >> 8) & 0xFF);
  wire[10] = static_cast<char>((huge >> 16) & 0xFF);
  wire[11] = static_cast<char>((huge >> 24) & 0xFF);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(wire, &frame, &consumed), DecodeStatus::kTooLarge);
}

TEST(Protocol, CompileRequestRoundTrip) {
  CompileRequest req = tiny_request();
  req.options.order = OrderHeuristic::kApgan;
  req.options.optimizer = LoopOptimizer::kChainExact;
  req.options.allocation_order = FirstFitOrder::kByWidth;
  req.options.blocking_factor = 3;
  req.deadline_ms = 250;
  req.dp_mem_bytes = 1 << 20;

  const Result<CompileRequest> back =
      parse_compile_request(encode_compile_request(req));
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().graph_text, req.graph_text);
  EXPECT_EQ(back.value().options.order, OrderHeuristic::kApgan);
  EXPECT_EQ(back.value().options.optimizer, LoopOptimizer::kChainExact);
  EXPECT_EQ(back.value().options.allocation_order, FirstFitOrder::kByWidth);
  EXPECT_EQ(back.value().options.blocking_factor, 3);
  EXPECT_EQ(back.value().deadline_ms, 250);
  EXPECT_EQ(back.value().dp_mem_bytes, 1 << 20);
  EXPECT_EQ(option_fingerprint(back.value()), option_fingerprint(req));
}

TEST(Protocol, CompileRequestValidation) {
  EXPECT_FALSE(parse_compile_request("not json").ok());
  EXPECT_FALSE(parse_compile_request("{\"graph\": \"g\"}").ok())
      << "missing schema must be rejected";
  const Result<CompileRequest> bad_opt = parse_compile_request(
      R"({"schema": "sdfmem.request.v1", "graph": "g",
          "options": {"optimizer": "warp"}})");
  ASSERT_FALSE(bad_opt.ok());
  EXPECT_EQ(bad_opt.error().code, ErrorCode::kBadArgument);
}

TEST(Protocol, CacheKeySeparatesGraphAndOptions) {
  const std::string fp_a = "order=rpmc;opt=sdppo";
  const std::string fp_b = "order=rpmc;opt=dppo";
  EXPECT_NE(cache_key("g1", fp_a), cache_key("g2", fp_a));
  EXPECT_NE(cache_key("g1", fp_a), cache_key("g1", fp_b));
  EXPECT_EQ(cache_key("g1", fp_a), cache_key("g1", fp_a));
  EXPECT_EQ(key_hex(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(key_hex(0), "0000000000000000");
}

// ----------------------------------------------------------------- cache

TEST(ResultCache, InsertLookupAndReopen) {
  Scratch scratch;
  const std::uint64_t key = cache_key("graph", "opts");
  {
    ResultCache cache(scratch.cache_dir());
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, "response-bytes");
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "response-bytes");
    EXPECT_EQ(cache.stats().inserts, 1);
  }
  // A fresh process (new ResultCache) replays the index and still hits.
  ResultCache reopened(scratch.cache_dir());
  EXPECT_EQ(reopened.size(), 1u);
  const auto hit = reopened.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "response-bytes");
}

TEST(ResultCache, InsertIsFirstWriterWins) {
  Scratch scratch;
  ResultCache cache(scratch.cache_dir());
  const std::uint64_t key = 42;
  cache.insert(key, "first");
  cache.insert(key, "second");  // ignored: hot responses stay byte-stable
  EXPECT_EQ(cache.lookup(key).value_or(""), "first");
  EXPECT_EQ(cache.stats().inserts, 1);
}

TEST(ResultCache, CorruptObjectIsNeverServed) {
  Scratch scratch;
  const std::uint64_t key = cache_key("graph", "opts");
  ResultCache cache(scratch.cache_dir());
  cache.insert(key, "precious bytes");

  // Flip one byte in the stored object.
  const std::string path =
      scratch.cache_dir() + "/objects/" + key_hex(key) + ".json";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  EXPECT_FALSE(cache.lookup(key).has_value())
      << "a flipped byte must read as a miss, not as data";
  EXPECT_EQ(cache.stats().corrupt, 1);
  // The entry was dropped; a re-insert repairs the cache.
  cache.insert(key, "precious bytes");
  EXPECT_EQ(cache.lookup(key).value_or(""), "precious bytes");
}

TEST(ResultCache, TornIndexTailIsTruncatedOnReopen) {
  Scratch scratch;
  const std::uint64_t key = 7;
  {
    ResultCache cache(scratch.cache_dir());
    cache.insert(key, "kept");
  }
  // Simulate a crash mid-append: garbage after the last valid record.
  {
    std::ofstream out(scratch.cache_dir() + "/index.journal",
                      std::ios::binary | std::ios::app);
    out << "\x13\x37torn";
  }
  ResultCache reopened(scratch.cache_dir());
  EXPECT_EQ(reopened.lookup(key).value_or(""), "kept");
  // And the recovered journal accepts new appends.
  reopened.insert(9, "after-recovery");
  EXPECT_EQ(reopened.lookup(9).value_or(""), "after-recovery");
}

TEST(ResultCache, RejectsForeignJournal) {
  Scratch scratch;
  fs::create_directories(scratch.cache_dir());
  {
    std::ofstream out(scratch.cache_dir() + "/index.journal",
                      std::ios::binary);
    out << "not a journal at all";
  }
  EXPECT_THROW(ResultCache cache(scratch.cache_dir()), std::exception);
}

// ------------------------------------------------------------ end to end

TEST(Service, ColdThenHotAreByteIdentical) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  opts.jobs = 2;
  RunningServer running(opts);

  Client client({scratch.socket_path(), 0});
  const Result<std::string> cold = client.compile(tiny_request());
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  const Result<std::string> hot = client.compile(tiny_request());
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(cold.value(), hot.value())
      << "a cache hit must serve the exact bytes of the cold response";

  const obs::Json doc = obs::Json::parse(cold.value());
  ASSERT_NE(doc.find("results"), nullptr);
  const obs::Json& results = *doc.find("results");
  EXPECT_NE(results.find("schedule"), nullptr);
  EXPECT_GT(results.find("shared_size")->as_int(), 0);
  EXPECT_GT(results.find("nonshared_bufmem")->as_int(), 0);

  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
}

TEST(Service, HitSurvivesServerRestart) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();

  std::string cold;
  {
    RunningServer running(opts);
    Client client({scratch.socket_path(), 0});
    const Result<std::string> r = client.compile(tiny_request());
    ASSERT_TRUE(r.ok());
    cold = r.value();
  }
  RunningServer restarted(opts);
  Client client({scratch.socket_path(), 0});
  const Result<std::string> hot = client.compile(tiny_request());
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot.value(), cold);
  EXPECT_EQ(restarted.server->stats().cache_hits, 1);
}

TEST(Service, CorruptCacheEntryIsRecompiled) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  const Result<std::string> cold = client.compile(tiny_request());
  ASSERT_TRUE(cold.ok());

  // Flip a byte in the single stored object.
  std::string object;
  for (const auto& entry :
       fs::directory_iterator(scratch.cache_dir() + "/objects")) {
    object = entry.path().string();
  }
  ASSERT_FALSE(object.empty());
  std::string bytes;
  {
    std::ifstream in(object, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(object, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  const Result<std::string> again = client.compile(tiny_request());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), cold.value())
      << "the recompiled response must match the original, byte for byte";
}

TEST(Service, MalformedGraphGetsStructuredParseError) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  CompileRequest req;
  req.graph_text = "graph broken\nactor A\nedge A Missing 1 1\n";
  const Result<std::string> r = client.compile(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kParse);
  EXPECT_FALSE(r.error().message.empty());
}

TEST(Service, PingAndStats) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});
  EXPECT_TRUE(client.ping("are-you-there"));
  const obs::Json stats = obs::Json::parse(client.stats());
  ASSERT_NE(stats.find("schema"), nullptr);
  EXPECT_EQ(stats.find("schema")->as_string(), "sdfmem.stats.v1");
  ASSERT_NE(stats.find("requests"), nullptr);
}

TEST(Service, TcpListenerWorksOnEphemeralPort) {
  Scratch scratch;
  ServerOptions opts;
  opts.tcp_port = -1;  // ephemeral
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);
  ASSERT_GT(running.server->tcp_port(), 0);
  Client client({"", running.server->tcp_port()});
  const Result<std::string> r = client.compile(tiny_request());
  ASSERT_TRUE(r.ok()) << r.error().message;
}

TEST(Service, ZeroQueueShedsMissesButServesHits) {
  Scratch scratch;
  // Pre-warm the cache exactly like the server would key it.
  const CompileRequest req = tiny_request();
  const std::string canonical =
      write_graph_text(parse_graph_text(req.graph_text));
  const std::uint64_t key =
      cache_key(canonical, option_fingerprint(req));
  {
    ResultCache warm(scratch.cache_dir());
    warm.insert(key, "prewarmed-response");
  }

  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  opts.queue_capacity = 0;  // read-only replica: shed every miss
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  // The hit is served without admission (lookup precedes admit).
  const Result<std::string> hit = client.compile(req);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), "prewarmed-response");

  // A miss cannot be admitted and comes back typed `overloaded`.
  CompileRequest other = tiny_request();
  other.options.optimizer = LoopOptimizer::kDppo;
  const Result<std::string> miss = client.compile(other);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.error().code, ErrorCode::kOverloaded);
  EXPECT_EQ(exit_code_for(miss.error().code), 24);
  EXPECT_EQ(running.server->stats().overloaded, 1);
}

TEST(Service, HighLoadShedsToFlatTierAndSkipsCache) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  opts.queue_capacity = 4;      // capacity: 4000 ms of backlog
  opts.default_cost_ms = 1000;
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  CompileRequest req = tiny_request();
  req.options.optimizer = LoopOptimizer::kChainExact;
  req.deadline_ms = 3500;  // 3500/4000 >= 3/4: flat tier

  const Result<std::string> r = client.compile(req);
  ASSERT_TRUE(r.ok()) << r.error().message;
  const obs::Json doc = obs::Json::parse(r.value());
  const obs::Json& results = *doc.find("results");
  EXPECT_EQ(results.find("optimizer")->as_string(), "flat");
  EXPECT_EQ(results.find("requested_optimizer")->as_string(), "chainx");
  ASSERT_NE(results.find("load_shed"), nullptr);

  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.shed_degraded, 1);
  // Shed responses are never cached: the same request compiles again.
  const Result<std::string> again = client.compile(req);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(running.server->stats().cache_misses, 2);
}

TEST(Service, BadFramingDropsConnectionWithError) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  RunningServer running(opts);

  // Raw socket: speak HTTP at the daemon and expect a framed error
  // followed by a close.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, scratch.socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr), 0);
  const std::string junk = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));

  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // server closes after the error frame
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(reply, &frame, &consumed), DecodeStatus::kOk);
  EXPECT_EQ(frame.kind, FrameKind::kErrorResponse);
  const Diagnostic diag = parse_error_response(frame.payload);
  EXPECT_EQ(diag.code, ErrorCode::kBadArgument);
  EXPECT_NE(diag.message.find("bad-magic"), std::string::npos);
  EXPECT_EQ(running.server->stats().bad_frames, 1);
}

TEST(Service, DrainRemovesSocketAndRefusesNewConnections) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  auto running = std::make_unique<RunningServer>(opts);
  {
    Client client({scratch.socket_path(), 0});
    ASSERT_TRUE(client.compile(tiny_request()).ok());
  }
  running->stop();
  EXPECT_FALSE(fs::exists(scratch.socket_path()))
      << "a drained daemon must unlink its socket";
  EXPECT_THROW(Client client({scratch.socket_path(), 0}), IoError);
  // A drained daemon exits, releasing its cache flock with the process;
  // destroying the Server models that (single-writer contract,
  // service/cache.h).
  running.reset();

  // The cache index survived the drain: a restart hits immediately.
  RunningServer restarted(opts);
  Client client({scratch.socket_path(), 0});
  ASSERT_TRUE(client.compile(tiny_request()).ok());
  EXPECT_EQ(restarted.server->stats().cache_hits, 1);
}

// ---------------------------------------------------------------- tenancy

TEST(Protocol, TenantFieldNegotiatesSchemaVersion) {
  // No tenant: the wire payload stays at schema v1 with no tenant key,
  // so old servers keep accepting new clients.
  const CompileRequest v1 = tiny_request();
  const std::string v1_wire = encode_compile_request(v1);
  EXPECT_NE(v1_wire.find("sdfmem.request.v1"), std::string::npos);
  EXPECT_EQ(v1_wire.find("tenant"), std::string::npos);

  // A tenant id upgrades the payload to v2 and round-trips.
  CompileRequest v2 = tiny_request();
  v2.tenant = "team-a";
  const std::string v2_wire = encode_compile_request(v2);
  EXPECT_NE(v2_wire.find("sdfmem.request.v2"), std::string::npos);
  const Result<CompileRequest> back = parse_compile_request(v2_wire);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().tenant, "team-a");

  // The tenant never enters the option fingerprint: every tenant hits
  // the same shared cache entry and gets byte-identical responses.
  EXPECT_EQ(option_fingerprint(back.value()), option_fingerprint(v1));

  // Malformed tenant ids are rejected at parse time, typed kBadArgument.
  const Result<CompileRequest> bad = parse_compile_request(
      R"({"schema": "sdfmem.request.v2", "graph": "g", "tenant": "No!"})");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kBadArgument);
}

TEST(Service, UnknownTenantRejectedTyped) {
  Scratch scratch;
  ServerOptions opts;  // default registry: only `public`
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  CompileRequest req = tiny_request();
  req.tenant = "ghost";
  const Result<std::string> r = client.compile(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnknownTenant);
  EXPECT_EQ(exit_code_for(r.error().code), 25);
  EXPECT_NE(r.error().message.find("ghost"), std::string::npos);

  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.unknown_tenant, 1);
  // Rejected before any work: no compile, no cache traffic, and no
  // stats entry minted for the unknown name (bounded cardinality).
  EXPECT_EQ(stats.cache_misses, 0);
  EXPECT_EQ(stats.tenants.count("ghost"), 0u);
}

TEST(Service, OldProtocolClientLandsInPublic) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  // tiny_request() has no tenant, so the wire payload is schema v1 —
  // exactly what a pre-tenancy client sends.
  ASSERT_TRUE(client.compile(tiny_request()).ok());

  const ServerStats stats = running.server->stats();
  ASSERT_EQ(stats.tenants.count("public"), 1u);
  EXPECT_EQ(stats.tenants.at("public").requests, 1);
  EXPECT_EQ(stats.tenants.at("public").cache_misses, 1);

  // The same attribution is visible over the wire in stats_json.
  const obs::Json doc = obs::Json::parse(client.stats());
  const obs::Json* tenants = doc.find("tenants");
  ASSERT_NE(tenants, nullptr);
  const obs::Json* pub = tenants->find("public");
  ASSERT_NE(pub, nullptr);
  EXPECT_EQ(pub->find("requests")->as_int(), 1);
  ASSERT_NE(pub->find("weight"), nullptr);
  ASSERT_NE(pub->find("latency"), nullptr);
}

TEST(Service, WeightedShareOverloadIsPerTenant) {
  Scratch scratch;
  const Result<qos::TenantRegistry> registry = qos::TenantRegistry::parse(
      R"({"schema": "sdfmem.tenants.v1",
          "tenants": {"hog": {"weight": 1}, "light": {"weight": 3}}})");
  ASSERT_TRUE(registry.ok()) << registry.error().message;

  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.queue_capacity = 4;  // 4 x 1000 ms = 4000 ms total capacity
  opts.default_cost_ms = 1000;
  opts.tenants = registry.value();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  // Total weight is public(1) + hog(1) + light(3) = 5, so hog's share
  // is 4000/5 = 800 ms and light's is 4000*3/5 = 2400 ms. The same
  // 1500 ms request overloads hog but is admitted for light.
  CompileRequest req = tiny_request();
  req.deadline_ms = 1500;

  req.tenant = "hog";
  const Result<std::string> hog = client.compile(req);
  ASSERT_FALSE(hog.ok());
  EXPECT_EQ(hog.error().code, ErrorCode::kOverloaded);
  EXPECT_EQ(exit_code_for(hog.error().code), 24);
  EXPECT_NE(hog.error().message.find("hog"), std::string::npos)
      << "the rejection must name the tenant that exceeded its share";

  req.tenant = "light";
  const Result<std::string> light = client.compile(req);
  ASSERT_TRUE(light.ok()) << light.error().message;

  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.tenants.at("hog").overloaded, 1);
  EXPECT_EQ(stats.tenants.at("light").overloaded, 0);
  EXPECT_EQ(stats.overloaded, 1);
}

TEST(Service, CacheQuotaDeniesInsertButServesSharedHits) {
  Scratch scratch;
  const Result<qos::TenantRegistry> registry = qos::TenantRegistry::parse(
      R"({"schema": "sdfmem.tenants.v1",
          "tenants": {"small": {"cache_quota_bytes": 1}}})");
  ASSERT_TRUE(registry.ok()) << registry.error().message;

  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  opts.tenants = registry.value();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});

  // `small`'s compile succeeds, but its 1-byte quota blocks the insert:
  // the same request misses again.
  CompileRequest req = tiny_request();
  req.tenant = "small";
  const Result<std::string> first = client.compile(req);
  ASSERT_TRUE(first.ok()) << first.error().message;
  ASSERT_TRUE(client.compile(req).ok());
  {
    const ServerStats stats = running.server->stats();
    EXPECT_EQ(stats.tenants.at("small").cache_misses, 2);
    EXPECT_EQ(stats.tenants.at("small").quota_denied, 2);
    EXPECT_EQ(stats.tenants.at("small").cache_inserts, 0);
  }

  // `public` (unlimited quota) populates the shared cache...
  CompileRequest pub = tiny_request();
  const Result<std::string> warmed = client.compile(pub);
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(warmed.value(), first.value())
      << "identical requests stay byte-identical across tenants";

  // ...and `small` now hits it: reads are never quota-gated.
  const Result<std::string> hit = client.compile(req);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), first.value());
  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.tenants.at("small").cache_hits, 1);
  EXPECT_EQ(stats.tenants.at("public").cache_inserts, 1);
}

TEST(Service, ShutdownFlagDrainsRunLoop) {
  // The process-wide shutdown flag (SIGINT/SIGTERM path) must stop the
  // accept loop just like stop().
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  util::reset_shutdown();
  Server server(opts);
  server.start();
  std::thread runner([&] { server.run(); });
  util::request_shutdown(15);
  runner.join();
  util::reset_shutdown();
  SUCCEED();
}

// ----------------------------------------------------- fleet foundations

// The single-writer contract (service/cache.h): opening a cache dir that
// another ResultCache already holds is a typed IoError, never silent
// index interleaving. The flock dies with its holder, so the dir is
// reusable the moment the first cache is gone.
TEST(ResultCache, SecondOpenOfLockedDirIsATypedError) {
  Scratch scratch;
  {
    ResultCache first(scratch.cache_dir());
    first.insert(1, "doc");
    try {
      ResultCache second(scratch.cache_dir());
      FAIL() << "second open of a locked cache dir did not throw";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("locked by another process"),
                std::string::npos)
          << e.what();
    }
  }
  // Lock released with the first cache: reopening now succeeds.
  ResultCache reopened(scratch.cache_dir());
  EXPECT_EQ(reopened.lookup(1).value_or(""), "doc");
}

TEST(Service, TwoWorkersSharingACacheDirRefuseToStart) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);

  // A second worker misconfigured onto the same --cache dir fails its
  // construction with the typed locking error (exit 12 via the CLI).
  ServerOptions second = opts;
  second.socket_path = scratch.dir + "/d2.sock";
  EXPECT_THROW(Server other(second), IoError);
}

// ---------------------------------------------------------- peer frames

Frame raw_roundtrip(const std::string& socket_path, FrameKind kind,
                    std::string_view payload) {
  const int fd = connect_unix(socket_path);
  send_all_or_throw(fd, encode_frame(kind, payload));
  FrameReader reader;
  Frame reply;
  EXPECT_EQ(reader.read(fd, &reply), ReadOutcome::kFrame);
  ::close(fd);
  return reply;
}

std::uint64_t tiny_cache_key() {
  const CompileRequest req = tiny_request();
  return cache_key(write_graph_text(parse_graph_text(req.graph_text)),
                   option_fingerprint(req));
}

TEST(Service, PeerLookupServesExactCachedBytesAndMissesEmpty) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);

  Client client({scratch.socket_path(), 0});
  const Result<std::string> cold = client.compile(tiny_request());
  ASSERT_TRUE(cold.ok());

  // A peer lookup for the key the compile populated returns the exact
  // response bytes; an unknown key returns the unambiguous empty miss.
  const Frame hit = raw_roundtrip(scratch.socket_path(),
                                  FrameKind::kPeerLookupRequest,
                                  encode_peer_lookup(tiny_cache_key()));
  ASSERT_EQ(hit.kind, FrameKind::kPeerLookupResponse);
  EXPECT_EQ(hit.payload, cold.value());

  const Frame miss = raw_roundtrip(scratch.socket_path(),
                                   FrameKind::kPeerLookupRequest,
                                   encode_peer_lookup(0xdeadu));
  ASSERT_EQ(miss.kind, FrameKind::kPeerLookupResponse);
  EXPECT_TRUE(miss.payload.empty());

  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.peer_lookups, 2);
  EXPECT_EQ(stats.peer_lookup_hits, 1);
}

TEST(Service, PeerInsertIsDurableAndServedBack) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  const std::string doc = "{\"schema\":\"sdfmem.telemetry.v1\"}";
  {
    RunningServer running(opts);
    const Frame ack = raw_roundtrip(scratch.socket_path(),
                                    FrameKind::kPeerInsertRequest,
                                    encode_peer_insert(42, doc));
    ASSERT_EQ(ack.kind, FrameKind::kPeerInsertResponse);
    const Frame hit = raw_roundtrip(scratch.socket_path(),
                                    FrameKind::kPeerLookupRequest,
                                    encode_peer_lookup(42));
    ASSERT_EQ(hit.kind, FrameKind::kPeerLookupResponse);
    EXPECT_EQ(hit.payload, doc);
    EXPECT_EQ(running.server->stats().peer_inserts, 1);
  }
  // Durable: the warmed entry survives a worker restart (disk tier, not
  // just the hot tier).
  RunningServer restarted(opts);
  const Frame hit = raw_roundtrip(scratch.socket_path(),
                                  FrameKind::kPeerLookupRequest,
                                  encode_peer_lookup(42));
  ASSERT_EQ(hit.kind, FrameKind::kPeerLookupResponse);
  EXPECT_EQ(hit.payload, doc);
}

TEST(Service, PeerInsertWithoutCacheIsATypedError) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();  // no cache_dir
  RunningServer running(opts);

  const Frame reply = raw_roundtrip(scratch.socket_path(),
                                    FrameKind::kPeerInsertRequest,
                                    encode_peer_insert(7, "doc"));
  EXPECT_EQ(reply.kind, FrameKind::kErrorResponse);

  // Malformed peer payloads are typed errors too, not closed sockets.
  const Frame bad = raw_roundtrip(scratch.socket_path(),
                                  FrameKind::kPeerLookupRequest,
                                  "{\"schema\":\"wrong.v9\"}");
  EXPECT_EQ(bad.kind, FrameKind::kErrorResponse);
}

TEST(Service, HotTierServesRepeatHitsFromMemory) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);

  Client client({scratch.socket_path(), 0});
  const Result<std::string> cold = client.compile(tiny_request());
  ASSERT_TRUE(cold.ok());
  const Result<std::string> hot = client.compile(tiny_request());
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot.value(), cold.value());

  // The repeat was served by the in-memory tier (the compile's
  // cache_store warmed it), and the combined "hits" counter keeps its
  // pre-fleet served-from-cache meaning.
  const obs::Json doc = obs::Json::parse(client.stats());
  const obs::Json& cache = *doc.find("cache");
  EXPECT_EQ(cache.find("hot_hits")->as_int(), 1);
  EXPECT_EQ(cache.find("hits")->as_int(), 1);
  EXPECT_GE(cache.find("hot_bytes")->as_int(), 1);
}

TEST(Service, HotTierDisabledStillServesFromDisk) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  opts.hot_tier_bytes = 0;  // --hot-mb 0
  RunningServer running(opts);

  Client client({scratch.socket_path(), 0});
  const Result<std::string> cold = client.compile(tiny_request());
  ASSERT_TRUE(cold.ok());
  const Result<std::string> hot = client.compile(tiny_request());
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot.value(), cold.value());
  const ServerStats stats = running.server->stats();
  EXPECT_EQ(stats.cache_hits, 1);
}

// --------------------------------------------------- adaptive control

TEST(Service, RecordedTraceReplaysTheRequestStream) {
  Scratch scratch;
  const std::string trace_path = scratch.dir + "/requests.trace";
  std::string cold;
  {
    ServerOptions opts;
    opts.socket_path = scratch.socket_path();
    opts.cache_dir = scratch.cache_dir();
    opts.record_path = trace_path;
    RunningServer running(opts);
    Client client({scratch.socket_path(), 0});
    const Result<std::string> miss = client.compile(tiny_request());
    ASSERT_TRUE(miss.ok());
    cold = miss.value();
    const Result<std::string> hit = client.compile(tiny_request());
    ASSERT_TRUE(hit.ok());
  }  // stop() drains before the journal handle closes

  const Trace trace = read_trace(trace_path);
  ASSERT_EQ(trace.records.size(), 2u);
  const TraceRecord& miss = trace.records[0];
  const TraceRecord& hit = trace.records[1];
  EXPECT_EQ(miss.outcome, "ok");
  EXPECT_EQ(hit.outcome, "hit");
  EXPECT_GE(hit.tick_us, miss.tick_us);
  EXPECT_EQ(miss.tenant, "public");
  EXPECT_EQ(miss.actors, 2);
  EXPECT_GT(miss.wall_ns, 0);  // a real compile ran and was measured
  EXPECT_EQ(hit.wall_ns, 0);   // a hit compiles nothing

  // Full-fidelity responses carry the byte-identity hash replay checks.
  EXPECT_TRUE(miss.full_fidelity);
  EXPECT_EQ(miss.response_hash, key_hex(util::fnv1a64(cold)));
  EXPECT_EQ(hit.response_hash, miss.response_hash);

  // The recorded payload is the exact request, ready for re-issue.
  const Result<CompileRequest> replayed = parse_compile_request(miss.request);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().graph_text, kTinyGraph);
  EXPECT_FALSE(miss.key_hex.empty());
  EXPECT_EQ(miss.key_hex, hit.key_hex);
}

TEST(Service, StatsExposeControlPlaneAndCostModel) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  RunningServer running(opts);
  Client client({scratch.socket_path(), 0});
  ASSERT_TRUE(client.compile(tiny_request()).ok());

  const obs::Json doc = obs::Json::parse(client.stats());
  ASSERT_NE(doc.find("control"), nullptr);
  const obs::Json& control = *doc.find("control");
  EXPECT_EQ(control.find("schema")->as_string(), "sdfmem.controlstats.v1");
  // Default daemon: controller off, static admission costs, no recording.
  EXPECT_FALSE(control.find("enabled")->as_bool());
  const obs::Json& cost = *control.find("cost_model");
  EXPECT_EQ(cost.find("source")->as_string(), "static");
  EXPECT_FALSE(control.find("recording")->find("active")->as_bool());

  // The model measures even while the controller is off: the compile
  // above seeded the 2-actor bucket with its real wall time.
  std::int64_t samples = 0;
  for (const obs::Json& bucket : cost.find("buckets")->elements()) {
    samples += bucket.find("samples")->as_int();
  }
  EXPECT_EQ(samples, 1);

  // The interval window rides along in the same document.
  ASSERT_NE(doc.find("window"), nullptr);
  EXPECT_EQ(doc.find("window")->find("requests")->as_int(), 1);
}

TEST(Service, ControlTickMovesTheAdmissionKnobs) {
  Scratch scratch;
  ServerOptions opts;
  opts.socket_path = scratch.socket_path();
  opts.cache_dir = scratch.cache_dir();
  opts.control = true;
  opts.control_interval_ms = 3'600'000;  // tick manually, not on a timer
  RunningServer running(opts);
  ASSERT_TRUE(running.server->control_enabled());

  // An idle window is "quiet": the controller must hold every knob.
  const ctl::Decision quiet = running.server->control_tick();
  EXPECT_EQ(quiet.reason, "quiet");
  EXPECT_EQ(quiet.knobs.capped_x1000, 500);

  // Shed-heavy windows (driven synthetically through the public tick so
  // the test owns the metrics) walk the real admission trip points.
  Client client({scratch.socket_path(), 0});
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.compile(tiny_request()).ok());
  }
  const ctl::Decision busy = running.server->control_tick();
  EXPECT_EQ(busy.reason, "hold");  // healthy traffic: no knee-jerk moves

  const obs::Json doc = obs::Json::parse(client.stats());
  const obs::Json& control = *doc.find("control");
  EXPECT_TRUE(control.find("enabled")->as_bool());
  EXPECT_GE(control.find("ticks")->as_int(), 2);
  EXPECT_EQ(control.find("cost_model")->find("source")->as_string(), "ewma");
  EXPECT_EQ(control.find("capped_x1000")->as_int(), 500);
  EXPECT_EQ(control.find("degraded_x1000")->as_int(), 750);
}

}  // namespace
}  // namespace sdf::svc
