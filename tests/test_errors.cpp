// Table-driven coverage of the structured error taxonomy (util/status.h,
// docs/ERRORS.md): every ErrorCode is produced by at least one real throw
// site in src/sdf and src/sched, every typed error still satisfies the
// historical std-exception catch contract, and the name/exit-code surface
// is stable.
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "pipeline/compile.h"
#include "sched/chain_dp.h"
#include "sched/cyclic.h"
#include "sched/demand_driven.h"
#include "sched/dppo.h"
#include "sched/schedule.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "sdf/repetitions.h"
#include "service/qos.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/status.h"

#include "test_util.h"

namespace sdf {
namespace {

using testing::chain;
using testing::fig2_graph;

/// A consistent cyclic graph with no initial tokens: every scheduler that
/// needs to make progress on it deadlocks.
Graph deadlocked_cycle() {
  Graph g("cycle");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, a, 1, 1);  // no delay anywhere: nothing is fireable
  return g;
}

/// An inconsistent two-actor graph (the two parallel edges demand
/// incompatible rate balances).
Graph inconsistent_graph() {
  Graph g("bad");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 3);
  g.add_edge(a, b, 1, 1);
  return g;
}

/// A lexical order that is NOT topological (sinks before sources).
std::vector<ActorId> reversed_order(const Graph& g) {
  std::vector<ActorId> order;
  for (std::size_t i = g.num_actors(); i-- > 0;) {
    order.push_back(static_cast<ActorId>(i));
  }
  return order;
}

struct ThrowSite {
  const char* name;            ///< "<file>: <site>" label for failures
  std::function<void()> fire;  ///< provokes the throw
  ErrorCode code;              ///< expected Diagnostic.code
};

std::vector<ThrowSite> throw_sites() {
  return {
      // --- src/sdf ---------------------------------------------------
      {"io: edge with too few tokens",
       [] { (void)parse_graph_text("graph g\nactor A\nedge A\n"); },
       ErrorCode::kParse},
      {"io: non-integer rate",
       [] {
         (void)parse_graph_text("graph g\nactor A\nactor B\n"
                                "edge A B x 1\n");
       },
       ErrorCode::kParse},
      {"io: unknown actor",
       [] { (void)parse_graph_text("graph g\nactor A\nedge A Z 1 1\n"); },
       ErrorCode::kParse},
      {"io: load_graph missing file",
       [] { (void)load_graph("/nonexistent/definitely/missing.sdf"); },
       ErrorCode::kIo},
      {"repetitions: inconsistent graph",
       [] { (void)repetitions_vector(inconsistent_graph()); },
       ErrorCode::kInconsistent},
      {"repetitions: overflow",
       [] {
         // Each (1000000, 1) stage multiplies the head's repetitions by
         // 1e6; nine stages overflow int64 during consistency analysis.
         (void)repetitions_vector(chain({{1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1},
                                         {1000000, 1}}));
       },
       ErrorCode::kOverflow},
      {"analysis: random_topological_sort on a cycle",
       [] {
         std::mt19937 rng(7);
         (void)random_topological_sort(deadlocked_cycle(), rng);
       },
       ErrorCode::kCyclic},
      {"graph: add_edge invalid actor",
       [] {
         Graph g("g");
         (void)g.add_actor("A");
         g.add_edge(static_cast<ActorId>(0), static_cast<ActorId>(5), 1, 1);
       },
       ErrorCode::kBadArgument},
      {"graph: add_edge bad rate",
       [] {
         Graph g("g");
         const ActorId a = g.add_actor("A");
         const ActorId b = g.add_actor("B");
         g.add_edge(a, b, 0, 1);
       },
       ErrorCode::kBadArgument},
      // --- src/sched -------------------------------------------------
      {"dppo: non-topological order",
       [] {
         const Graph g = fig2_graph();
         (void)dppo(g, repetitions_vector(g), reversed_order(g));
       },
       ErrorCode::kBadOrder},
      {"sdppo: non-topological order",
       [] {
         const Graph g = fig2_graph();
         (void)sdppo(g, repetitions_vector(g), reversed_order(g));
       },
       ErrorCode::kBadOrder},
      {"chain_dp: non-topological order",
       [] {
         const Graph g = fig2_graph();
         (void)chain_sdppo_exact(g, repetitions_vector(g),
                                 reversed_order(g));
       },
       ErrorCode::kBadOrder},
      {"chain_dp: wrong-size order",
       [] {
         const Graph g = fig2_graph();
         (void)chain_sdppo_exact(g, repetitions_vector(g), {});
       },
       ErrorCode::kBadOrder},
      {"chain_dp: non-chain graph",
       [] {
         Graph g("tri");  // A feeds B and C: not a chain
         const ActorId a = g.add_actor("A");
         const ActorId b = g.add_actor("B");
         const ActorId c = g.add_actor("C");
         g.add_edge(a, b, 1, 1);
         g.add_edge(a, c, 1, 1);
         (void)chain_sdppo_exact(g, repetitions_vector(g));
       },
       ErrorCode::kBadArgument},
      {"demand_driven: deadlock",
       [] {
         const Graph g = deadlocked_cycle();
         (void)demand_driven_schedule(g, repetitions_vector(g));
       },
       ErrorCode::kDeadlocked},
      {"cyclic: deadlocked component",
       [] { (void)schedule_cyclic(deadlocked_cycle()); },
       ErrorCode::kDeadlocked},
      {"schedule: flatten firing limit",
       [] {
         (void)Schedule::leaf(static_cast<ActorId>(0), 100).flatten(10);
       },
       ErrorCode::kLimit},
      {"schedule: bad leaf count",
       [] { (void)Schedule::leaf(static_cast<ActorId>(0), 0); },
       ErrorCode::kBadArgument},
      // --- pipeline boundary ----------------------------------------
      {"compile: cyclic graph",
       [] {
         CompileOptions opts;
         opts.order = OrderHeuristic::kTopological;
         (void)compile(deadlocked_cycle(), opts);
       },
       ErrorCode::kCyclic},
      {"compile: bad blocking factor",
       [] {
         CompileOptions opts;
         opts.blocking_factor = 0;
         (void)compile(fig2_graph(), opts);
       },
       ErrorCode::kBadArgument},
      {"fault: unknown site",
       [] { fault::configure("no_such_site:1", 0); },
       ErrorCode::kBadArgument},
      {"governor: injected resource trip",
       [] {
         fault::configure("dp_deadline:1", 0);
         const Graph g = fig2_graph();
         const Repetitions q = repetitions_vector(g);
         const std::vector<ActorId> order{static_cast<ActorId>(0),
                                          static_cast<ActorId>(1),
                                          static_cast<ActorId>(2)};
         try {
           (void)sdppo(g, q, order);
         } catch (...) {
           fault::clear();
           throw;
         }
         fault::clear();
       },
       ErrorCode::kResourceExhausted},

      // --- src/service -----------------------------------------------
      {"qos: weighted-fair push for an unregistered tenant",
       [] {
         svc::qos::WeightedFairQueue queue;
         queue.add_tenant("public", 1.0, svc::qos::TokenBucket());
         (void)queue.push("ghost", 100);
       },
       ErrorCode::kUnknownTenant},
  };
}

TEST(Errors, EveryThrowSiteProducesItsErrorCode) {
  for (const ThrowSite& site : throw_sites()) {
    SCOPED_TRACE(site.name);
    bool threw = false;
    try {
      site.fire();
    } catch (const std::exception& e) {
      threw = true;
      const Diagnostic diag = diagnostic_from_exception(e);
      EXPECT_EQ(diag.code, site.code)
          << "message: " << diag.message
          << " code: " << error_code_name(diag.code);
      EXPECT_FALSE(diag.message.empty());
    }
    EXPECT_TRUE(threw) << "site did not throw";
  }
}

TEST(Errors, EveryErrorCodeIsCoveredBySomeSite) {
  std::vector<bool> covered(
      static_cast<std::size_t>(ErrorCode::kUnavailable) + 1);
  for (const ThrowSite& site : throw_sites()) {
    covered[static_cast<std::size_t>(site.code)] = true;
  }
  covered[static_cast<std::size_t>(ErrorCode::kOk)] = true;  // not a throw
  // kInternal is the "bug, not input" class; classification of a plain
  // std::logic_error is asserted separately below.
  covered[static_cast<std::size_t>(ErrorCode::kInternal)] = true;
  // These fire from whole-process flows (journal recovery, SIGTERM
  // drains, service admission) exercised by their own suites
  // (test_batch_resume, test_service) rather than one library call.
  covered[static_cast<std::size_t>(ErrorCode::kCorruptJournal)] = true;
  covered[static_cast<std::size_t>(ErrorCode::kInterrupted)] = true;
  covered[static_cast<std::size_t>(ErrorCode::kOverloaded)] = true;
  // kUnavailable is produced by the fleet router when no live worker
  // remains (a whole-fleet condition, exercised in test_fleet).
  covered[static_cast<std::size_t>(ErrorCode::kUnavailable)] = true;
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_TRUE(covered[i]) << "no throw site covers "
                            << error_code_name(static_cast<ErrorCode>(i));
  }
}

TEST(Errors, TypedErrorsKeepTheHistoricalStdContract) {
  // The dual-inheritance contract the seed suite relies on: typed errors
  // remain catchable as the std type each site always threw.
  EXPECT_THROW((void)parse_graph_text("nonsense\n"), std::invalid_argument);
  EXPECT_THROW((void)repetitions_vector(inconsistent_graph()),
               std::runtime_error);
  EXPECT_THROW((void)load_graph("/nonexistent.sdf"), std::runtime_error);
  const Graph g = fig2_graph();
  EXPECT_THROW((void)dppo(g, repetitions_vector(g), reversed_order(g)),
               std::invalid_argument);
}

TEST(Errors, ParseDiagnosticsCarryLineAndColumn) {
  try {
    (void)parse_graph_text("graph g\nactor A\nactor B\nedge A B x 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
    EXPECT_EQ(e.diagnostic().loc.line, 4);
    EXPECT_GT(e.diagnostic().loc.column, 0);
    EXPECT_NE(e.diagnostic().message.find("line 4"), std::string::npos);
  }
}

TEST(Errors, InconsistentDiagnosticNamesTheEdge) {
  try {
    (void)repetitions_vector(inconsistent_graph());
    FAIL() << "expected InconsistentError";
  } catch (const InconsistentError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInconsistent);
    EXPECT_EQ(e.diagnostic().edge, "A->B");
  }
}

TEST(Errors, DeadlockDiagnosticNamesTheActor) {
  try {
    (void)schedule_cyclic(deadlocked_cycle());
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlocked);
    EXPECT_FALSE(e.diagnostic().actor.empty());
  }
}

TEST(Errors, NamesAndExitCodesAreStable) {
  // Machine-readable surface: renaming any of these is a breaking change.
  EXPECT_EQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_EQ(error_code_name(ErrorCode::kParse), "parse");
  EXPECT_EQ(error_code_name(ErrorCode::kIo), "io");
  EXPECT_EQ(error_code_name(ErrorCode::kInconsistent), "inconsistent");
  EXPECT_EQ(error_code_name(ErrorCode::kDeadlocked), "deadlocked");
  EXPECT_EQ(error_code_name(ErrorCode::kCyclic), "cyclic");
  EXPECT_EQ(error_code_name(ErrorCode::kBadOrder), "bad-order");
  EXPECT_EQ(error_code_name(ErrorCode::kBadArgument), "bad-argument");
  EXPECT_EQ(error_code_name(ErrorCode::kOverflow), "overflow");
  EXPECT_EQ(error_code_name(ErrorCode::kLimit), "limit");
  EXPECT_EQ(error_code_name(ErrorCode::kResourceExhausted),
            "resource-exhausted");
  EXPECT_EQ(error_code_name(ErrorCode::kInternal), "internal");
  EXPECT_EQ(error_code_name(ErrorCode::kCorruptJournal), "corrupt-journal");
  EXPECT_EQ(error_code_name(ErrorCode::kInterrupted), "interrupted");
  EXPECT_EQ(error_code_name(ErrorCode::kOverloaded), "overloaded");
  EXPECT_EQ(error_code_name(ErrorCode::kUnknownTenant), "unknown-tenant");
  EXPECT_EQ(error_code_name(ErrorCode::kUnavailable), "unavailable");

  EXPECT_EQ(exit_code_for(ErrorCode::kOk), 0);
  EXPECT_EQ(exit_code_for(ErrorCode::kParse), 11);
  EXPECT_EQ(exit_code_for(ErrorCode::kInternal), 21);
  EXPECT_EQ(exit_code_for(ErrorCode::kInterrupted), 23);
  EXPECT_EQ(exit_code_for(ErrorCode::kOverloaded), 24);
  EXPECT_EQ(exit_code_for(ErrorCode::kUnknownTenant), 25);
  EXPECT_EQ(exit_code_for(ErrorCode::kUnavailable), 26);

  for (int c = 0; c <= static_cast<int>(ErrorCode::kUnavailable); ++c) {
    const auto code = static_cast<ErrorCode>(c);
    EXPECT_EQ(error_code_from_name(error_code_name(code)), code);
  }
  EXPECT_EQ(error_code_from_name("no-such-code"), ErrorCode::kInternal);
}

TEST(Errors, OverloadedErrorIsTypedAndCatchable) {
  // The service backpressure error satisfies the same dual-inheritance
  // contract as every other typed error: a std::runtime_error for
  // historical catch sites, an SdfError carrying the structured code.
  try {
    throw OverloadedError("queue full");
  } catch (const std::runtime_error& e) {
    const Diagnostic diag = diagnostic_from_exception(e);
    EXPECT_EQ(diag.code, ErrorCode::kOverloaded);
    EXPECT_EQ(diag.message, "queue full");
    EXPECT_EQ(exit_code_for(diag.code), 24);
  }
}

TEST(Errors, UnavailableErrorIsTypedAndCatchable) {
  // The fleet-router "no live worker" rejection (docs/SERVICE.md, "Fleet
  // mode") follows the same dual-inheritance contract; exit 26 is the
  // documented code.
  try {
    throw UnavailableError("no live worker");
  } catch (const std::runtime_error& e) {
    const Diagnostic diag = diagnostic_from_exception(e);
    EXPECT_EQ(diag.code, ErrorCode::kUnavailable);
    EXPECT_EQ(diag.message, "no live worker");
    EXPECT_EQ(exit_code_for(diag.code), 26);
  }
}

TEST(Errors, UnknownTenantErrorIsTypedAndCatchable) {
  // The multi-tenant rejection (docs/TENANCY.md) follows the same
  // dual-inheritance contract; exit 25 is the documented code.
  try {
    throw UnknownTenantError("no tenant 'ghost'");
  } catch (const std::runtime_error& e) {
    const Diagnostic diag = diagnostic_from_exception(e);
    EXPECT_EQ(diag.code, ErrorCode::kUnknownTenant);
    EXPECT_EQ(diag.message, "no tenant 'ghost'");
    EXPECT_EQ(exit_code_for(diag.code), 25);
  }
}

TEST(Errors, StrictFlagParsingRejectsWhatAtoiAccepted) {
  // The CLI routes --jobs/--deadline-ms/--dp-mem-mb through
  // util::parse_positive_flag; each rejected value is a usage error
  // (exit 2) instead of a silently-misread count.
  EXPECT_FALSE(util::parse_positive_flag("0"));
  EXPECT_FALSE(util::parse_positive_flag("-3"));
  EXPECT_FALSE(util::parse_positive_flag("abc"));   // atoi: 0
  EXPECT_FALSE(util::parse_positive_flag("8q"));    // atoi: 8
  EXPECT_FALSE(util::parse_positive_flag(""));
  EXPECT_EQ(util::parse_positive_flag("4"), 4);
}

TEST(Errors, SwitchFlagParsingIsExactlyOnOff) {
  // --control routes through util::parse_on_off; the switch is
  // documented as exactly on|off, so truthy spellings and typos are
  // usage errors (exit 2), never a silently-guessed state.
  EXPECT_EQ(util::parse_on_off("on"), true);
  EXPECT_EQ(util::parse_on_off("off"), false);
  EXPECT_FALSE(util::parse_on_off("ON"));
  EXPECT_FALSE(util::parse_on_off("Off"));
  EXPECT_FALSE(util::parse_on_off("1"));
  EXPECT_FALSE(util::parse_on_off("true"));
  EXPECT_FALSE(util::parse_on_off("of"));  // the typo that motivates strict
  EXPECT_FALSE(util::parse_on_off(""));
}

TEST(Errors, TenantNameValidation) {
  // Tenant ids become counter segments and JSON keys (util/flags.h), so
  // the charset is pinned: 1-64 of [a-z0-9_-].
  EXPECT_TRUE(util::valid_tenant_name("public"));
  EXPECT_TRUE(util::valid_tenant_name("team-a_01"));
  EXPECT_FALSE(util::valid_tenant_name(""));
  EXPECT_FALSE(util::valid_tenant_name("Upper"));
  EXPECT_FALSE(util::valid_tenant_name("dot.name"));
  EXPECT_FALSE(util::valid_tenant_name("sp ace"));
  EXPECT_FALSE(util::valid_tenant_name(std::string(65, 'a')));
}

TEST(Errors, DiagnosticFromExceptionClassifiesPlainStdTypes) {
  EXPECT_EQ(diagnostic_from_exception(std::overflow_error("x")).code,
            ErrorCode::kOverflow);
  EXPECT_EQ(diagnostic_from_exception(std::length_error("x")).code,
            ErrorCode::kLimit);
  EXPECT_EQ(diagnostic_from_exception(std::invalid_argument("x")).code,
            ErrorCode::kBadArgument);
  EXPECT_EQ(diagnostic_from_exception(std::logic_error("x")).code,
            ErrorCode::kInternal);
  EXPECT_EQ(diagnostic_from_exception(std::runtime_error("x")).code,
            ErrorCode::kInternal);
}

TEST(Errors, CompileCheckedReturnsValueOrDiagnostic) {
  const Result<CompileResult> ok = compile_checked(fig2_graph());
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().lexorder.empty());
  EXPECT_TRUE(ok.value().degraded_from.empty());

  const Result<CompileResult> bad = compile_checked(inconsistent_graph());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInconsistent);
  EXPECT_FALSE(bad.error().message.empty());
}

TEST(Errors, DiagnosticToJsonShape) {
  Diagnostic diag;
  diag.code = ErrorCode::kParse;
  diag.message = "boom";
  diag.loc = SourceLoc{3, 7};
  const obs::Json j = diagnostic_to_json(diag);
  ASSERT_NE(j.find("code"), nullptr);
  EXPECT_EQ(j.find("code")->as_string(), "parse");
  EXPECT_EQ(j.find("message")->as_string(), "boom");
  ASSERT_NE(j.find("loc"), nullptr);
  EXPECT_EQ(j.find("loc")->find("line")->as_int(), 3);
  EXPECT_EQ(j.find("loc")->find("column")->as_int(), 7);
  ASSERT_NE(j.find("exit_code"), nullptr);
  EXPECT_EQ(j.find("exit_code")->as_int(), 11);
  EXPECT_EQ(j.find("actor"), nullptr);  // empty fields omitted
}

}  // namespace
}  // namespace sdf
