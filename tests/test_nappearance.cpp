#include "sched/nappearance.h"

#include <gtest/gtest.h>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/apgan.h"
#include "sched/dppo.h"
#include "sched/simulator.h"
#include "sdf/analysis.h"
#include "test_util.h"

namespace sdf {
namespace {

TEST(NAppearance, ZeroBudgetIsIdentity) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const Schedule sas = dppo(g, q, *topological_sort(g)).schedule;
  const NAppearanceResult r = relax_appearances(g, q, sas, 0);
  EXPECT_EQ(r.rewrites, 0);
  EXPECT_EQ(r.buffer_memory, simulate(g, sas).buffer_memory);
  EXPECT_EQ(r.appearances, sas.num_leaves());
}

TEST(NAppearance, BudgetBuysBufferMemory) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const Schedule sas = dppo(g, q, *topological_sort(g)).schedule;
  const std::int64_t base = simulate(g, sas).buffer_memory;

  std::int64_t previous = base;
  for (const std::int64_t budget : {4, 16, 64, 256}) {
    const NAppearanceResult r = relax_appearances(g, q, sas, budget);
    EXPECT_TRUE(is_valid_schedule(g, q, r.schedule)) << budget;
    EXPECT_LE(r.buffer_memory, previous) << budget;
    EXPECT_LE(r.appearances,
              sas.num_leaves() + budget);
    previous = r.buffer_memory;
  }
  // With a generous budget something must actually improve on CD-DAT.
  const NAppearanceResult big = relax_appearances(g, q, sas, 256);
  EXPECT_LT(big.buffer_memory, base);
  EXPECT_GT(big.rewrites, 0);
}

TEST(NAppearance, TwoActorLoopRewritesToInterleaving) {
  // (3 (A)(2B)) over A -(10/5)-> B... use fig2's first pair scaled: the
  // inner loop (1 (3A)(2B)) for two_actor(2,3) has buffer 6; interleaved
  // A A B A B needs 4.
  const Graph g = testing::two_actor(2, 3);
  const Repetitions q = repetitions_vector(g);  // (3, 2)
  const Schedule sas = parse_schedule(g, "(3A)(2B)");
  const NAppearanceResult r = relax_appearances(g, q, sas, 16);
  EXPECT_EQ(r.rewrites, 1);
  EXPECT_EQ(r.buffer_memory, 4);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_EQ(r.schedule.flatten(),
            (std::vector<ActorId>{0, 0, 1, 0, 1}));
}

TEST(NAppearance, TightBudgetSkipsExpensiveRewrites) {
  const Graph g = testing::two_actor(2, 3);
  const Repetitions q = repetitions_vector(g);
  const Schedule sas = parse_schedule(g, "(3A)(2B)");
  // The interleaving A A B A B needs 2 extra appearances; budget 1 cannot
  // afford it.
  const NAppearanceResult r = relax_appearances(g, q, sas, 1);
  EXPECT_EQ(r.rewrites, 0);
  EXPECT_EQ(r.buffer_memory, 6);
}

TEST(NAppearance, NestedLoopBodiesRewrite) {
  const Graph g = satellite_receiver();
  const Repetitions q = repetitions_vector(g);
  const Schedule sas = apgan(g, q).schedule;
  const std::int64_t base = simulate(g, sas).buffer_memory;
  const NAppearanceResult r = relax_appearances(g, q, sas, 64);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_LE(r.buffer_memory, base);
}

TEST(NAppearance, RejectsInvalidInput) {
  const Graph g = testing::two_actor(2, 3);
  const Repetitions q = repetitions_vector(g);
  EXPECT_THROW(relax_appearances(g, q, parse_schedule(g, "(2B)(3A)"), 4),
               std::invalid_argument);
}

TEST(NAppearance, DelayedEdgePairStillCorrect) {
  Graph g;
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  g.add_edge(a, b, 2, 3, 1);
  const Repetitions q = repetitions_vector(g);  // (3, 2)
  const Schedule sas = parse_schedule(g, "(3A)(2B)");
  const NAppearanceResult r = relax_appearances(g, q, sas, 16);
  EXPECT_TRUE(is_valid_schedule(g, q, r.schedule));
  EXPECT_LE(r.buffer_memory, simulate(g, sas).buffer_memory);
}

}  // namespace
}  // namespace sdf
