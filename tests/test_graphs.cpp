#include <gtest/gtest.h>

#include <random>

#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/homogeneous.h"
#include "graphs/ptolemy.h"
#include "graphs/random_sdf.h"
#include "graphs/satellite.h"
#include "sdf/analysis.h"
#include "sdf/repetitions.h"

namespace sdf {
namespace {

TEST(Filterbank, TwoSidedNodeCountsMatchPaper) {
  // Paper: depth 5/3/2 two-sided banks have 188/44/20 nodes.
  EXPECT_EQ(qmf235(5).num_actors(), 188u);
  EXPECT_EQ(qmf12(3).num_actors(), 44u);
  EXPECT_EQ(qmf23(2).num_actors(), 20u);
  for (int d = 1; d <= 5; ++d) {
    EXPECT_EQ(two_sided_filterbank(d, kRates12).num_actors(),
              static_cast<std::size_t>(6 * (1 << d) - 4));
  }
}

TEST(Filterbank, OneSidedNodeCountsAreLinear) {
  for (int d = 1; d <= 6; ++d) {
    EXPECT_EQ(one_sided_filterbank(d, kRates23).num_actors(),
              static_cast<std::size_t>(6 * d + 2));
  }
}

TEST(Filterbank, AllVariantsConsistentAcyclicConnected) {
  for (int d = 1; d <= 4; ++d) {
    for (const Graph& g : {qmf12(d), qmf23(d), qmf235(d), nqmf23(d)}) {
      EXPECT_TRUE(is_acyclic(g)) << g.name();
      EXPECT_TRUE(is_connected(g)) << g.name();
      EXPECT_TRUE(analyze_consistency(g).consistent) << g.name();
    }
  }
}

TEST(Filterbank, AnalysisSynthesisRatesMirror) {
  // Source and sink must fire equally often (perfect reconstruction).
  for (const Graph& g : {qmf23(3), qmf235(2), nqmf23(4)}) {
    const Repetitions q = repetitions_vector(g);
    const ActorId src = *g.find_actor("src");
    const ActorId snk = *g.find_actor("snk");
    EXPECT_EQ(q[static_cast<std::size_t>(src)],
              q[static_cast<std::size_t>(snk)])
        << g.name();
  }
}

TEST(Filterbank, DepthIncreasesSourceRate) {
  // Each extra level multiplies the source repetition count by den/overlap
  // structure; it must grow strictly.
  std::int64_t prev = 0;
  for (int d = 1; d <= 4; ++d) {
    const Graph g = qmf23(d);
    const Repetitions q = repetitions_vector(g);
    const std::int64_t src_rate =
        q[static_cast<std::size_t>(*g.find_actor("src"))];
    EXPECT_GT(src_rate, prev);
    prev = src_rate;
  }
}

TEST(Filterbank, RejectsNonPositiveDepth) {
  EXPECT_THROW(qmf12(0), std::invalid_argument);
  EXPECT_THROW(one_sided_filterbank(-1, kRates12), std::invalid_argument);
}

TEST(Satellite, StructureMatchesPaper) {
  const Graph g = satellite_receiver();
  EXPECT_EQ(g.num_actors(), 22u);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(analyze_consistency(g).consistent);
}

TEST(CdDat, IsConsistentChain) {
  const Graph g = cd_to_dat();
  EXPECT_TRUE(chain_order(g).has_value());
  // 147 CD frames -> 160 DAT frames per period.
  const Repetitions q = repetitions_vector(g);
  EXPECT_EQ(q.front(), 147);
  EXPECT_EQ(q.back(), 160);
}

TEST(Homogeneous, MeshShape) {
  const Graph g = homogeneous_mesh(3, 4);
  EXPECT_EQ(g.num_actors(), 2u + 3u * 4u);
  EXPECT_EQ(g.num_edges(), 3u * 5u);
  EXPECT_TRUE(is_homogeneous(g));
  EXPECT_EQ(repetitions_vector(g),
            Repetitions(g.num_actors(), 1));
}

TEST(Homogeneous, RejectsBadParameters) {
  EXPECT_THROW(homogeneous_mesh(0, 3), std::invalid_argument);
  EXPECT_THROW(homogeneous_mesh(3, 0), std::invalid_argument);
}

TEST(PtolemyGraphs, AllConsistentAcyclicConnected) {
  for (const Graph& g : {modem_16qam(), pam4_xmitrec(), block_vox(),
                         overlap_add_fft(), phased_array()}) {
    EXPECT_TRUE(is_acyclic(g)) << g.name();
    EXPECT_TRUE(is_connected(g)) << g.name();
    EXPECT_TRUE(analyze_consistency(g).consistent) << g.name();
    EXPECT_GE(g.num_actors(), 8u) << g.name();
  }
}

TEST(PtolemyGraphs, ModemIsMultirate) {
  const Graph g = modem_16qam();
  const Repetitions q = repetitions_vector(g);
  // The bit-rate front end fires 16x as often as the symbol-rate core.
  const std::int64_t bit_rate =
      q[static_cast<std::size_t>(*g.find_actor("bitSrc"))];
  const std::int64_t ber_rate =
      q[static_cast<std::size_t>(*g.find_actor("berCheck"))];
  EXPECT_EQ(bit_rate, 16 * ber_rate);
}

TEST(PtolemyGraphs, OverlapAddFftHasHistoryDelay) {
  const Graph g = overlap_add_fft();
  bool has_delay = false;
  for (const Edge& e : g.edges()) has_delay |= (e.delay > 0);
  EXPECT_TRUE(has_delay);
}

class RandomSdf : public ::testing::TestWithParam<int> {};

TEST_P(RandomSdf, AlwaysConsistentConnectedAcyclic) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  RandomSdfOptions options;
  options.num_actors = 10 + GetParam() * 7 % 60;
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_sdf_graph(options, rng);
    EXPECT_EQ(g.num_actors(),
              static_cast<std::size_t>(options.num_actors));
    EXPECT_TRUE(is_acyclic(g));
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(analyze_consistency(g).consistent);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSdf, ::testing::Range(1, 9));

TEST(RandomSdf, DensityRoughlyHonored) {
  std::mt19937 rng(99);
  RandomSdfOptions options;
  options.num_actors = 60;
  options.extra_edge_ratio = 1.0;
  const Graph g = random_sdf_graph(options, rng);
  // spanning (n-1) + up to n extras.
  EXPECT_GE(g.num_edges(), 59u);
  EXPECT_LE(g.num_edges(), 119u);
}

TEST(RandomSdf, DeterministicGivenSeed) {
  RandomSdfOptions options;
  std::mt19937 rng1(5), rng2(5);
  const Graph a = random_sdf_graph(options, rng1);
  const Graph b = random_sdf_graph(options, rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(static_cast<EdgeId>(e)).src,
              b.edge(static_cast<EdgeId>(e)).src);
    EXPECT_EQ(a.edge(static_cast<EdgeId>(e)).prod,
              b.edge(static_cast<EdgeId>(e)).prod);
  }
}

}  // namespace
}  // namespace sdf
