// Deterministic trace replay harness for the adaptive control plane
// (docs/CONTROL.md).
//
// Four phases:
//
//   1. Capture. Each Table 1 graph is compiled once per degradation tier
//      (full / capped / degraded) against an in-process daemon, recording
//      the measured wall time per tier and the FNV-1a hash of the
//      full-fidelity response bytes.
//   2. Synthesis. A seeded adversarial workload — a `hog` tenant offering
//      ~10x the `light` tenant's request rate over a cold+hot key mix —
//      is written as a sdfmem.trace.v1 journal (service/trace.h) and read
//      back through the strict trace validator. The timescale derives
//      from the measured walls, so the offered load is adversarial on any
//      machine. SDFMEM_REPLAY_TRACE replaces this phase with an
//      externally recorded trace (e.g. from `serve --record`).
//   3. Simulated A/B. The trace runs through the virtual-time simulator
//      (service/control.h) with the controller off and on, each config
//      TWICE: the two runs' controller decision logs must be
//      byte-identical (always enforced — a nondeterministic controller is
//      a bug, not a tuning problem). The A/B table reports shed rate,
//      degraded fraction, and the light tenant's p95 per config;
//      SDFMEM_SERVICE_CONTROL_GATE=1 enforces the improvement contract:
//      controller-on improves at least one of the three by >= 20% and
//      leaves the others no more than 5% worse.
//   4. Live replay. The trace is re-issued against a real daemon at
//      1x/2x/4x time compression (one connection per recorded lane, so
//      per-lane order is exact), plus a controller-off run at 1x. Every
//      full-fidelity response is hashed and compared against the
//      recorded hash — byte-identity is always enforced.
//
//   SDFMEM_REPLAY_TRACE          replay this trace file instead of synthesizing
//   SDFMEM_REPLAY_SEED           workload seed (default 42)
//   SDFMEM_REPLAY_HOG_REQS       hog request count (default 120)
//   SDFMEM_REPLAY_LIVE           0/1: run the live-replay phase (default 1)
//   SDFMEM_SERVICE_CONTROL_GATE  1: exit 1 when the improvement contract
//                                or the byte-identity/determinism checks fail
//   SDFMEM_BENCH_JSON            write the trajectory as telemetry JSON
//
// Every SDFMEM_* value is validated strictly (util/flags.h); a malformed
// value is a usage error (exit 2), never a silent fallback.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/json_report.h"
#include "sdf/io.h"
#include "service/client.h"
#include "service/control.h"
#include "service/protocol.h"
#include "service/qos.h"
#include "service/server.h"
#include "service/trace.h"
#include "util/flags.h"
#include "util/hash.h"

namespace sdf::bench {
namespace ctl = svc::ctl;
namespace {

int env_count(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::optional<std::int64_t> parsed =
      util::parse_positive_flag(value);
  if (!parsed.has_value() || *parsed > 1000000) {
    std::fprintf(stderr,
                 "usage: %s must be a positive decimal integer, got '%s'\n",
                 name, value);
    std::exit(2);
  }
  return static_cast<int>(*parsed);
}

bool env_switch(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string_view text(value);
  if (text == "0") return false;
  if (text == "1") return true;
  std::fprintf(stderr, "usage: %s must be 0 or 1, got '%s'\n", name, value);
  std::exit(2);
}

std::int64_t percentile(std::vector<std::int64_t> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

/// Deterministic 64-bit LCG (Knuth MMIX constants); the whole synthesized
/// workload is a pure function of the seed.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  std::size_t pick(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

/// One captured graph: request payloads and measured walls per tier.
struct CapturedGraph {
  std::string graph_text;
  std::int64_t actors = 0;
  std::string key_hex;
  std::string request_full;  ///< kCompileRequest payload, tenant unset
  std::int64_t wall_full_ns = 0;
  std::int64_t wall_capped_ns = 0;
  std::int64_t wall_degraded_ns = 0;
  std::string response_hash;  ///< of the full-fidelity response
};

svc::CompileRequest tier_request(const std::string& graph_text, int tier) {
  svc::CompileRequest req;
  req.graph_text = graph_text;
  // The expensive best-quality pipeline — the configuration the server's
  // shed ladder has real room to degrade.
  req.options.order = OrderHeuristic::kRpmcMultistart;
  req.options.optimizer = LoopOptimizer::kChainExact;
  req.options.blocking_factor = 16;
  if (tier == 1) req.options.optimizer = LoopOptimizer::kDppo;
  if (tier == 2) {
    req.options.optimizer = LoopOptimizer::kFlat;
    req.options.order = OrderHeuristic::kTopological;
  }
  return req;
}

/// Compiles every Table 1 graph once per tier against a cache-less
/// in-process daemon, measuring client-observed wall time per tier and
/// hashing the full-fidelity response.
std::vector<CapturedGraph> capture_phase(const std::string& dir) {
  std::vector<CapturedGraph> captured;
  svc::ServerOptions opts;
  opts.socket_path = dir + "/capture.sock";
  opts.jobs = 1;
  opts.queue_capacity = 4096;
  svc::Server server(opts);
  server.start();
  std::thread runner([&server] { server.run(); });
  {
    svc::Client client({opts.socket_path, 0});
    for (const Graph& g : table1_systems()) {
      CapturedGraph cap;
      cap.graph_text = write_graph_text(g);
      cap.actors = static_cast<std::int64_t>(g.num_actors());
      const svc::CompileRequest full = tier_request(cap.graph_text, 0);
      cap.request_full = svc::encode_compile_request(full);
      cap.key_hex = svc::key_hex(
          svc::cache_key(cap.graph_text, svc::option_fingerprint(full)));
      for (int tier = 0; tier < 3; ++tier) {
        const auto t0 = std::chrono::steady_clock::now();
        const Result<std::string> r =
            client.compile(tier_request(cap.graph_text, tier));
        const std::int64_t ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (!r.ok()) {
          throw IoError("trace_replay: capture compile failed: " +
                        r.error().message);
        }
        if (tier == 0) {
          cap.wall_full_ns = ns;
          cap.response_hash = svc::key_hex(util::fnv1a64(r.value()));
        } else if (tier == 1) {
          cap.wall_capped_ns = ns;
        } else {
          cap.wall_degraded_ns = ns;
        }
      }
      captured.push_back(std::move(cap));
    }
  }
  server.stop();
  runner.join();
  return captured;
}

/// Synthesizes the seeded 10:1 hog-vs-light workload over the captured
/// graphs, journals it, and reads it back through the strict validator.
svc::Trace synthesize_trace(const std::vector<CapturedGraph>& captured,
                            const std::string& path, std::uint64_t seed,
                            int hog_reqs, std::int64_t hog_gap_us) {
  Lcg rng{seed};
  // The light tenant works a small fixed key set (hot after one pass);
  // the hog sweeps the whole suite with random repeats (cold+hot mix).
  std::vector<std::size_t> light_keys;
  while (light_keys.size() < 3 && light_keys.size() < captured.size()) {
    const std::size_t k = rng.pick(captured.size());
    if (std::find(light_keys.begin(), light_keys.end(), k) ==
        light_keys.end()) {
      light_keys.push_back(k);
    }
  }
  const int light_reqs = std::max(4, hog_reqs / 10);
  const std::int64_t light_gap_us =
      hog_gap_us * hog_reqs / std::max(1, light_reqs);

  const auto make_record = [&](const CapturedGraph& cap,
                               const std::string& tenant,
                               std::int64_t tick_us, std::int64_t lane) {
    svc::TraceRecord rec;
    rec.tick_us = tick_us;
    rec.lane = lane;
    rec.tenant = tenant;
    rec.key_hex = cap.key_hex;
    rec.outcome = "ok";
    rec.full_fidelity = true;
    rec.actors = cap.actors;
    rec.wall_ns = cap.wall_full_ns;
    rec.wall_ns_capped = cap.wall_capped_ns;
    rec.wall_ns_degraded = cap.wall_degraded_ns;
    rec.response_hash = cap.response_hash;
    svc::CompileRequest req = tier_request(cap.graph_text, 0);
    req.tenant = tenant;
    rec.request = svc::encode_compile_request(req);
    return rec;
  };

  std::vector<svc::TraceRecord> records;
  for (int i = 0; i < hog_reqs; ++i) {
    records.push_back(make_record(captured[rng.pick(captured.size())], "hog",
                                  i * hog_gap_us, 1 + (i % 4)));
  }
  for (int i = 0; i < light_reqs; ++i) {
    records.push_back(make_record(
        captured[light_keys[rng.pick(light_keys.size())]], "light",
        i * light_gap_us, 0));
  }

  std::filesystem::remove(path);
  {
    const std::unique_ptr<svc::TraceWriter> writer =
        svc::TraceWriter::create(path);
    for (const svc::TraceRecord& rec : records) writer->append(rec);
  }
  return svc::read_trace(path);
}

/// Tenant registry covering every tenant in the trace: `light` keeps its
/// 8x weight, everything else (the hog included) gets weight 1.
svc::qos::TenantRegistry trace_registry(const svc::Trace& trace) {
  svc::qos::TenantRegistry registry;
  std::set<std::string> names;
  for (const svc::TraceRecord& rec : trace.records) {
    if (!rec.tenant.empty()) names.insert(rec.tenant);
  }
  for (const std::string& name : names) {
    svc::qos::TenantSettings settings;
    settings.weight = name == "light" ? 8.0 : 1.0;
    registry.add(name, settings);
  }
  return registry;
}

struct AbRow {
  std::string label;
  std::int64_t requests = 0;
  double shed_rate = 0;
  double degraded_rate = 0;
  std::int64_t light_p95_us = 0;
  std::int64_t utility_ticks = 0;
};

AbRow summarize(const std::string& label, const ctl::SimResult& sim) {
  AbRow row;
  row.label = label;
  row.requests = sim.requests;
  row.shed_rate = sim.requests == 0
                      ? 0.0
                      : static_cast<double>(sim.overloaded) /
                            static_cast<double>(sim.requests);
  row.degraded_rate = sim.requests == 0
                          ? 0.0
                          : static_cast<double>(sim.shed_degraded) /
                                static_cast<double>(sim.requests);
  const auto light = sim.tenants.find("light");
  row.light_p95_us = light == sim.tenants.end() ? 0 : light->second.p95_us;
  row.utility_ticks = static_cast<std::int64_t>(sim.decisions.size());
  return row;
}

void print_intervals(const char* label, const ctl::SimResult& sim) {
  std::printf("  %s per-interval trajectory (virtual time):\n", label);
  std::printf("  %10s %8s %8s %9s %8s\n", "end_ms", "reqs", "shed",
              "degraded", "p95_us");
  for (const ctl::SimIntervalRow& row : sim.intervals) {
    std::printf("  %10lld %8lld %8lld %9lld %8lld\n",
                static_cast<long long>(row.end_ms),
                static_cast<long long>(row.requests),
                static_cast<long long>(row.overloaded),
                static_cast<long long>(row.shed_degraded),
                static_cast<long long>(row.p95_us));
  }
}

struct LiveResult {
  int compression = 1;
  bool controller_on = true;
  std::int64_t requests = 0;
  std::int64_t ok_full = 0;
  std::int64_t shed_degraded = 0;
  std::int64_t overloaded = 0;
  std::int64_t hash_checked = 0;
  std::int64_t hash_mismatches = 0;
  std::int64_t light_p95_us = 0;
  std::int64_t controller_ticks = 0;
};

/// Replays the trace against a fresh daemon, one client per recorded
/// lane, pacing arrivals at tick_us / compression. Full-fidelity
/// responses are hashed against the recorded hash.
LiveResult replay_live(const svc::Trace& trace, const std::string& dir,
                       std::int64_t default_cost_ms, int compression,
                       bool controller_on) {
  const std::string tag = std::to_string(compression) + "x_" +
                          (controller_on ? "on" : "off");
  svc::ServerOptions opts;
  opts.socket_path = dir + "/replay_" + tag + ".sock";
  opts.cache_dir = dir + "/replay_" + tag + ".cache";
  opts.jobs = 4;
  opts.queue_capacity = 16;
  opts.default_cost_ms = default_cost_ms;
  opts.tenants = trace_registry(trace);
  opts.control = controller_on;
  opts.control_interval_ms = controller_on ? 100 : 0;
  svc::Server server(opts);
  server.start();
  std::thread runner([&server] { server.run(); });

  std::map<std::int64_t, std::vector<const svc::TraceRecord*>> lanes;
  for (const svc::TraceRecord& rec : trace.records) {
    lanes[rec.lane].push_back(&rec);
  }

  LiveResult result;
  result.compression = compression;
  result.controller_on = controller_on;
  std::mutex mu;
  std::vector<std::int64_t> light_us;
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& [lane, recs] : lanes) {
    workers.emplace_back([&, records = recs] {
      svc::Client client({opts.socket_path, 0});
      std::int64_t ok_full = 0;
      std::int64_t shed = 0;
      std::int64_t overloaded = 0;
      std::int64_t checked = 0;
      std::int64_t mismatched = 0;
      std::vector<std::int64_t> local_light;
      for (const svc::TraceRecord* rec : records) {
        const auto due =
            start + std::chrono::microseconds(rec->tick_us / compression);
        std::this_thread::sleep_until(due);
        const Result<svc::CompileRequest> req =
            svc::parse_compile_request(rec->request);
        if (!req.ok()) {
          throw IoError("trace_replay: unreplayable record: " +
                        req.error().message);
        }
        const auto t0 = std::chrono::steady_clock::now();
        const Result<std::string> r = client.compile(req.value());
        const std::int64_t us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (rec->tenant == "light") local_light.push_back(us);
        if (!r.ok()) {
          if (r.error().code == ErrorCode::kOverloaded) {
            ++overloaded;
            continue;
          }
          throw IoError("trace_replay: replay request failed: " +
                        r.error().message);
        }
        const obs::Json doc = obs::Json::parse(r.value());
        const obs::Json* results = doc.find("results");
        const bool degraded =
            results != nullptr &&
            (results->find("load_shed") != nullptr ||
             results->find("degraded_from") != nullptr ||
             results->find("order_degraded") != nullptr);
        if (degraded) {
          ++shed;
          continue;
        }
        ++ok_full;
        if (!rec->response_hash.empty()) {
          ++checked;
          if (svc::key_hex(util::fnv1a64(r.value())) != rec->response_hash) {
            ++mismatched;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok_full += ok_full;
      result.shed_degraded += shed;
      result.overloaded += overloaded;
      result.hash_checked += checked;
      result.hash_mismatches += mismatched;
      light_us.insert(light_us.end(), local_light.begin(),
                      local_light.end());
    });
  }
  for (std::thread& t : workers) t.join();
  result.requests = static_cast<std::int64_t>(trace.records.size());

  const std::string stats = [&] {
    svc::Client client({opts.socket_path, 0});
    return client.stats();
  }();
  const obs::Json doc = obs::Json::parse(stats);
  if (const obs::Json* control = doc.find("control")) {
    if (const obs::Json* ticks = control->find("ticks")) {
      result.controller_ticks = ticks->as_int();
    }
  }
  server.stop();
  runner.join();

  std::sort(light_us.begin(), light_us.end());
  result.light_p95_us = percentile(light_us, 95);
  return result;
}

int body() {
  JsonTrajectory trajectory("trace_replay");
  const auto seed =
      static_cast<std::uint64_t>(env_count("SDFMEM_REPLAY_SEED", 42));
  const int hog_reqs = env_count("SDFMEM_REPLAY_HOG_REQS", 120);
  const bool live = env_switch("SDFMEM_REPLAY_LIVE", true);
  const bool gate = env_switch("SDFMEM_SERVICE_CONTROL_GATE", false);
  const char* external = std::getenv("SDFMEM_REPLAY_TRACE");

  const std::string dir =
      "/tmp/sdfmem_trace_replay_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // --------------------------------------------------- capture + synthesis
  svc::Trace trace;
  std::int64_t default_cost_ms = 0;
  if (external != nullptr && *external != '\0') {
    trace = svc::read_trace(external);
    std::int64_t cost_sum_ms = 0;
    for (const svc::TraceRecord& rec : trace.records) {
      cost_sum_ms += std::max<std::int64_t>(1, rec.wall_ns / 1000000);
    }
    const std::int64_t avg = trace.records.empty()
                                 ? 1
                                 : cost_sum_ms / static_cast<std::int64_t>(
                                                     trace.records.size());
    default_cost_ms = std::max<std::int64_t>(50, 20 * std::max<std::int64_t>(
                                                          1, avg));
    std::printf("trace_replay: external trace %s: %zu records\n", external,
                trace.records.size());
  } else {
    const std::vector<CapturedGraph> captured = capture_phase(dir);
    std::int64_t wall_sum_ns = 0;
    for (const CapturedGraph& cap : captured) {
      wall_sum_ns += cap.wall_full_ns;
    }
    const std::int64_t avg_full_ms = std::max<std::int64_t>(
        1,
        wall_sum_ns / static_cast<std::int64_t>(captured.size()) / 1000000);
    // Hog inter-arrival at half the mean full compile: a sustained ~2x
    // offered overload on one slot, comfortably servable across 4 slots
    // once admission charges honest costs.
    const std::int64_t hog_gap_us = std::max<std::int64_t>(
        2000, avg_full_ms * 500);
    // The static admission estimate is a deliberate 20x overestimate of
    // the measured mean — the miscalibration the cost model corrects.
    default_cost_ms = std::max<std::int64_t>(50, 20 * avg_full_ms);
    trace = synthesize_trace(captured, dir + "/adversarial.trace", seed,
                             hog_reqs, hog_gap_us);
    std::printf(
        "trace_replay: synthesized %zu records (seed %llu, hog gap %lld "
        "us, mean full compile %lld ms, static cost %lld ms)\n",
        trace.records.size(), static_cast<unsigned long long>(seed),
        static_cast<long long>(hog_gap_us),
        static_cast<long long>(avg_full_ms),
        static_cast<long long>(default_cost_ms));
  }
  std::int64_t span_us = 0;
  for (const svc::TraceRecord& rec : trace.records) {
    span_us = std::max(span_us, rec.tick_us);
  }

  // ------------------------------------------------------------ sim A/B
  ctl::SimOptions sim_opts;
  sim_opts.slots = 4;
  sim_opts.queue_capacity = 16;
  sim_opts.default_cost_ms = default_cost_ms;
  sim_opts.control_interval_ms =
      std::max<std::int64_t>(1, span_us / 1000 / 12);
  sim_opts.tenants = trace_registry(trace);

  int failures = 0;
  const auto run_twice = [&](bool on) {
    ctl::SimOptions o = sim_opts;
    o.controller_on = on;
    const ctl::SimResult first = ctl::simulate_trace(trace, o);
    const ctl::SimResult second = ctl::simulate_trace(trace, o);
    if (first.decisions != second.decisions) {
      std::fprintf(stderr,
                   "trace_replay: FAIL determinism: controller-%s decision "
                   "logs differ between two runs of the same trace\n",
                   on ? "on" : "off");
      ++failures;
    }
    return first;
  };
  const ctl::SimResult sim_off = run_twice(false);
  const ctl::SimResult sim_on = run_twice(true);

  const AbRow off = summarize("controller-off", sim_off);
  const AbRow on = summarize("controller-on", sim_on);
  std::printf("\nsimulated A/B (virtual time, deterministic):\n");
  std::printf("%-16s %8s %9s %10s %12s %7s\n", "config", "reqs",
              "shed", "degraded", "light_p95_us", "ticks");
  for (const AbRow& row : {off, on}) {
    std::printf("%-16s %8lld %8.1f%% %9.1f%% %12lld %7lld\n",
                row.label.c_str(), static_cast<long long>(row.requests),
                100.0 * row.shed_rate, 100.0 * row.degraded_rate,
                static_cast<long long>(row.light_p95_us),
                static_cast<long long>(row.utility_ticks));
  }
  print_intervals("controller-off", sim_off);
  print_intervals("controller-on", sim_on);
  std::printf("  final knobs: capped %lld degraded %lld (x1000)\n",
              static_cast<long long>(sim_on.final_knobs.capped_x1000),
              static_cast<long long>(sim_on.final_knobs.degraded_x1000));

  // Improvement contract: >= 20% better on at least one axis, no more
  // than 5% worse on any.
  const auto improved = [](double off_v, double on_v) {
    return off_v > 0 && (off_v - on_v) / off_v >= 0.20;
  };
  const auto no_worse = [](double off_v, double on_v) {
    return on_v <= off_v * 1.05 + 1e-9;
  };
  const bool any_improved =
      improved(off.shed_rate, on.shed_rate) ||
      improved(off.degraded_rate, on.degraded_rate) ||
      improved(static_cast<double>(off.light_p95_us),
               static_cast<double>(on.light_p95_us));
  const bool none_worse =
      no_worse(off.shed_rate, on.shed_rate) &&
      no_worse(off.degraded_rate, on.degraded_rate) &&
      no_worse(static_cast<double>(off.light_p95_us),
               static_cast<double>(on.light_p95_us));
  const bool off_adversarial = off.shed_rate >= 0.05;
  std::printf("improvement contract: any>=20%%: %s, none>5%% worse: %s "
              "(off shed %.1f%%)\n",
              any_improved ? "yes" : "no", none_worse ? "yes" : "no",
              100.0 * off.shed_rate);
  if (gate) {
    if (!off_adversarial) {
      std::printf("control gate: skipped (off-run shed %.1f%% < 5%% — the "
                  "trace is not adversarial)\n",
                  100.0 * off.shed_rate);
    } else if (!any_improved || !none_worse) {
      std::fprintf(stderr,
                   "trace_replay: FAIL control gate: controller-on must "
                   "improve >= 1 metric by >= 20%% and worsen none by > "
                   "5%%\n");
      ++failures;
    }
  }

  // --------------------------------------------------------- live replay
  obs::Json live_rows = obs::Json::array();
  if (live) {
    std::printf("\nlive replay (one client per lane, paced arrivals):\n");
    std::printf("%-10s %8s %8s %8s %8s %12s %8s %6s\n", "config", "reqs",
                "full", "shed", "over", "light_p95_us", "hashes", "ticks");
    std::vector<LiveResult> runs;
    runs.push_back(replay_live(trace, dir, default_cost_ms, 1, false));
    for (const int compression : {1, 2, 4}) {
      runs.push_back(
          replay_live(trace, dir, default_cost_ms, compression, true));
    }
    for (const LiveResult& run : runs) {
      const std::string label = std::to_string(run.compression) + "x-" +
                                (run.controller_on ? "on" : "off");
      std::printf("%-10s %8lld %8lld %8lld %8lld %12lld %8lld %6lld\n",
                  label.c_str(), static_cast<long long>(run.requests),
                  static_cast<long long>(run.ok_full),
                  static_cast<long long>(run.shed_degraded),
                  static_cast<long long>(run.overloaded),
                  static_cast<long long>(run.light_p95_us),
                  static_cast<long long>(run.hash_checked),
                  static_cast<long long>(run.controller_ticks));
      if (run.hash_mismatches != 0) {
        std::fprintf(stderr,
                     "trace_replay: FAIL byte-identity: %lld of %lld "
                     "full-fidelity responses differ from the recorded "
                     "hash (%s)\n",
                     static_cast<long long>(run.hash_mismatches),
                     static_cast<long long>(run.hash_checked),
                     label.c_str());
        ++failures;
      }
      if (trajectory.active()) {
        obs::Json row = obs::Json::object();
        row["config"] = label;
        row["requests"] = run.requests;
        row["ok_full"] = run.ok_full;
        row["shed_degraded"] = run.shed_degraded;
        row["overloaded"] = run.overloaded;
        row["light_p95_us"] = run.light_p95_us;
        row["hash_checked"] = run.hash_checked;
        row["controller_ticks"] = run.controller_ticks;
        live_rows.push_back(std::move(row));
      }
    }
  }

  if (trajectory.active()) {
    obs::Json ab = obs::Json::object();
    for (const AbRow* row : {&off, &on}) {
      obs::Json r = obs::Json::object();
      r["requests"] = row->requests;
      r["shed_rate"] = row->shed_rate;
      r["degraded_rate"] = row->degraded_rate;
      r["light_p95_us"] = row->light_p95_us;
      ab[row->label] = std::move(r);
    }
    trajectory.results()["sim_ab"] = std::move(ab);
    trajectory.results()["live"] = std::move(live_rows);
    trajectory.results()["records"] =
        static_cast<std::int64_t>(trace.records.size());
    trajectory.results()["default_cost_ms"] = default_cost_ms;
  }

  std::filesystem::remove_all(dir);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdf::bench

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, sdf::bench::body);
}
