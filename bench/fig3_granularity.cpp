// Fig. 3 (Sec. 5): coarse-grained vs fine-grained buffer sharing models.
// The coarse model (what this library allocates) treats a buffer as fully
// live from the source's first write to the sink's last read inside a loop
// body; the finest model counts live tokens instant by instant. The gap
// between the first-fit allocation and the fine-grained peak quantifies
// what the coarse simplification costs on each system.
#include <cstdio>

#include "bench_util.h"
#include "pipeline/compile.h"
#include "sched/simulator.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Coarse vs fine buffer-sharing models (Fig. 3)\n\n"
      "%-14s %10s %12s %12s %8s\n",
      "system", "coarseFF", "fineLB", "nonshared", "gap%");
  for (const Graph& g : bench::table1_systems()) {
    const CompileResult res = compile(g);
    const TokenTrace trace = trace_tokens(g, res.schedule, 1u << 22);
    if (!trace.valid) {
      std::printf("%-14s %10lld %12s %12lld %8s\n", g.name().c_str(),
                  static_cast<long long>(res.shared_size), "(too long)",
                  static_cast<long long>(res.nonshared_bufmem), "-");
      continue;
    }
    const std::int64_t fine = max_live_tokens(trace);
    const double gap =
        fine > 0 ? 100.0 * (res.shared_size - fine) / fine : 0.0;
    std::printf("%-14s %10lld %12lld %12lld %7.1f%%\n", g.name().c_str(),
                static_cast<long long>(res.shared_size),
                static_cast<long long>(fine),
                static_cast<long long>(res.nonshared_bufmem), gap);
  }
  std::printf(
      "\nfineLB is a lower bound no static array allocation can beat;\n"
      "the paper adopts the coarse model because finer granularities cost\n"
      "pointer/allocation complexity at run time (Sec. 5).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
