// Engineering micro-benchmarks for the lifetime-analysis and allocation
// stages (Secs. 8-9): extraction, intersection-graph construction (tree-
// aware vs generic), first-fit, and the MCW estimators.
#include <benchmark/benchmark.h>

#include "alloc/clique.h"
#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "graphs/filterbank.h"
#include "graphs/satellite.h"
#include "lifetime/lifetime_extract.h"
#include "pipeline/compile.h"
#include "sched/sdppo.h"
#include "sched/rpmc.h"

namespace {

using namespace sdf;

struct Prepared {
  Graph g;
  Repetitions q;
  Schedule schedule;
};

Prepared prepare(Graph graph) {
  Repetitions q = repetitions_vector(graph);
  Schedule s = sdppo(graph, q, rpmc(graph, q).lexorder).schedule;
  return Prepared{std::move(graph), std::move(q), std::move(s)};
}

Graph graph_for(int index) {
  switch (index) {
    case 0: return satellite_receiver();
    case 1: return qmf12(3);
    case 2: return qmf12(4);
    default: return qmf12(5);
  }
}

void BM_ExtractLifetimes(benchmark::State& state) {
  const Prepared p = prepare(graph_for(static_cast<int>(state.range(0))));
  const ScheduleTree tree(p.g, p.schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_lifetimes(p.g, p.q, tree));
  }
  state.SetLabel(p.g.name());
}
BENCHMARK(BM_ExtractLifetimes)->DenseRange(0, 3);

void BM_IntersectionGraphTreeAware(benchmark::State& state) {
  const Prepared p = prepare(graph_for(static_cast<int>(state.range(0))));
  const ScheduleTree tree(p.g, p.schedule);
  const auto lifetimes = extract_lifetimes(p.g, p.q, tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_intersection_graph(tree, lifetimes));
  }
  state.SetLabel(p.g.name());
}
BENCHMARK(BM_IntersectionGraphTreeAware)->DenseRange(0, 3);

void BM_IntersectionGraphGeneric(benchmark::State& state) {
  const Prepared p = prepare(graph_for(static_cast<int>(state.range(0))));
  const ScheduleTree tree(p.g, p.schedule);
  const auto lifetimes = extract_lifetimes(p.g, p.q, tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_intersection_graph_generic(lifetimes));
  }
  state.SetLabel(p.g.name());
}
BENCHMARK(BM_IntersectionGraphGeneric)->DenseRange(0, 3);

void BM_FirstFit(benchmark::State& state) {
  const Prepared p = prepare(graph_for(static_cast<int>(state.range(0))));
  const ScheduleTree tree(p.g, p.schedule);
  const auto lifetimes = extract_lifetimes(p.g, p.q, tree);
  const auto wig = build_intersection_graph(tree, lifetimes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        first_fit(wig, lifetimes, FirstFitOrder::kByDuration));
  }
  state.SetLabel(p.g.name());
}
BENCHMARK(BM_FirstFit)->DenseRange(0, 3);

void BM_McwEstimates(benchmark::State& state) {
  const Prepared p = prepare(graph_for(static_cast<int>(state.range(0))));
  const ScheduleTree tree(p.g, p.schedule);
  const auto lifetimes = extract_lifetimes(p.g, p.q, tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcw_optimistic(lifetimes));
    benchmark::DoNotOptimize(mcw_pessimistic(lifetimes));
  }
  state.SetLabel(p.g.name());
}
BENCHMARK(BM_McwEstimates)->DenseRange(0, 3);

void BM_FullPipeline(benchmark::State& state) {
  const Graph g = graph_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile(g));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
