// Design-space frontier: for each practical system, the Pareto-optimal
// (inline code size, shared memory) implementations across ordering
// heuristics, loop optimizers, n-appearance budgets and CBP merging —
// the paper's code-size-vs-buffer philosophy as an automated sweep.
#include <cstdio>

#include "bench_util.h"
#include "pipeline/explore.h"

namespace {

int run() {
  using namespace sdf;
  for (const Graph& g : bench::table1_systems()) {
    const ExploreResult r = explore_designs(g);
    std::printf("%s (%zu strategies evaluated):\n", g.name().c_str(),
                r.points.size());
    for (const DesignPoint& p : r.frontier) {
      std::printf("  code %6lld  sharedMem %6lld   %s\n",
                  static_cast<long long>(p.code_size),
                  static_cast<long long>(p.shared_memory),
                  p.strategy.c_str());
    }
  }
  std::printf(
      "\neach line is Pareto-optimal: no evaluated strategy is better on\n"
      "both axes. n-appearance points report non-shared memory (their\n"
      "schedules repeat actors, outside the SAS lifetime model).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
