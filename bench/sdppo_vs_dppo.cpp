// Sec. 10.1 auxiliary experiment: does running first-fit on the
// sdppo-optimized schedule beat running it on the dppo-optimized schedule?
// The paper observed a maximum improvement of about 8% — worthwhile but
// not dramatic.
#include <algorithm>
#include <cstdio>
#include <limits>

#include "alloc/first_fit.h"
#include "bench_util.h"
#include "pipeline/compile.h"

namespace {

std::int64_t best_ff(const sdf::CompileResult& res) {
  using namespace sdf;
  return std::min(res.shared_size,
                  first_fit(res.wig, res.lifetimes,
                            FirstFitOrder::kByStartTime)
                      .total_size);
}

}  // namespace

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Allocating the sdppo schedule vs the dppo schedule (Sec. 10.1)\n\n"
      "%-14s %12s %12s %8s\n",
      "system", "ff(dppo)", "ff(sdppo)", "gain%");
  double max_gain = 0.0;
  double sum_gain = 0.0;
  int count = 0;
  for (const Graph& g : bench::table1_systems()) {
    std::int64_t via_dppo = std::numeric_limits<std::int64_t>::max();
    std::int64_t via_sdppo = std::numeric_limits<std::int64_t>::max();
    for (const OrderHeuristic order :
         {OrderHeuristic::kRpmc, OrderHeuristic::kApgan}) {
      CompileOptions opts;
      opts.order = order;
      opts.optimizer = LoopOptimizer::kDppo;
      via_dppo = std::min(via_dppo, best_ff(compile(g, opts)));
      opts.optimizer = LoopOptimizer::kSdppo;
      via_sdppo = std::min(via_sdppo, best_ff(compile(g, opts)));
    }
    const double gain =
        100.0 * (via_dppo - via_sdppo) / static_cast<double>(via_dppo);
    max_gain = std::max(max_gain, gain);
    sum_gain += gain;
    ++count;
    std::printf("%-14s %12lld %12lld %7.1f%%\n", g.name().c_str(),
                static_cast<long long>(via_dppo),
                static_cast<long long>(via_sdppo), gain);
  }
  std::printf(
      "\naverage gain %.1f%%, max gain %.1f%% (paper observed a maximum of "
      "~8%%)\n",
      sum_gain / count, max_gain);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
