// Micro-benchmarks for the extension modules: demand-driven scheduling,
// loop compaction, buffer merging, pool checking, functional simulation,
// HSDF expansion and the timing analyses.
#include <benchmark/benchmark.h>

#include "alloc/pool_checker.h"
#include "graphs/cddat.h"
#include "graphs/filterbank.h"
#include "graphs/fir.h"
#include "graphs/satellite.h"
#include "lifetime/schedule_tree.h"
#include "merge/buffer_merge.h"
#include "pipeline/compile.h"
#include "sched/demand_driven.h"
#include "sched/loop_compaction.h"
#include "sched/sas.h"
#include "sdf/throughput.h"
#include "sdf/transform.h"
#include "sim/functional.h"

namespace {

using namespace sdf;

Graph graph_for(int index) {
  switch (index) {
    case 0: return cd_to_dat();
    case 1: return satellite_receiver();
    case 2: return qmf12(3);
    default: return qmf12(4);
  }
}

void BM_DemandDriven(benchmark::State& state) {
  const Graph g = graph_for(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand_driven_schedule(g, q));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_DemandDriven)->DenseRange(0, 3);

void BM_LoopCompaction(benchmark::State& state) {
  const Graph g = cd_to_dat();
  const Repetitions q = repetitions_vector(g);
  const DemandDrivenResult dynamic = demand_driven_schedule(g, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compact_firing_sequence(dynamic.firing_seq));
  }
  state.SetLabel(std::to_string(dynamic.firing_seq.size()) + " firings");
}
BENCHMARK(BM_LoopCompaction);

void BM_BufferMerging(benchmark::State& state) {
  const Graph g = graph_for(static_cast<int>(state.range(0)));
  const CompileResult res = compile(g);
  const ScheduleTree tree(g, res.schedule);
  const CbpTable cbp = cbp_all_consuming(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge_buffers(g, tree, res.lifetimes, cbp));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_BufferMerging)->DenseRange(0, 3);

void BM_PoolChecker(benchmark::State& state) {
  const Graph g = graph_for(static_cast<int>(state.range(0)));
  const CompileResult res = compile(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_allocation_by_execution(
        g, res.schedule, res.lifetimes, res.allocation));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_PoolChecker)->DenseRange(0, 3);

void BM_FunctionalPooledRun(benchmark::State& state) {
  const Graph g = graph_for(static_cast<int>(state.range(0)));
  const CompileResult res = compile(g);
  const KernelTable kernels = default_kernels(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pooled_and_compare(
        g, res.schedule, kernels, res.lifetimes, res.allocation));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_FunctionalPooledRun)->DenseRange(0, 3);

void BM_HsdfExpansion(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expand_to_homogeneous(g, q, 1u << 20));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_HsdfExpansion)->DenseRange(2, 5);

void BM_CriticalPath(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  const std::vector<std::int64_t> exec(g.num_actors(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        critical_path_latency(g, q, exec, 1u << 20));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_CriticalPath)->DenseRange(2, 5);

void BM_FirCompaction(benchmark::State& state) {
  const FirGraph fir = fir_fine_grained(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(fir.graph);
  const Schedule threaded = flat_sas(fir.graph, q);
  std::vector<ActorId> typed;
  for (ActorId a : threaded.flatten()) {
    typed.push_back(
        static_cast<ActorId>(fir.type_of[static_cast<std::size_t>(a)]));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compact_firing_sequence(typed));
  }
  state.SetLabel(std::to_string(state.range(0)) + " taps");
}
BENCHMARK(BM_FirCompaction)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
