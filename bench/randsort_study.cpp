// Sec. 10.1 random-topological-sort study: how many random lexical orders
// does it take to beat RPMC/APGAN, and by how much? The paper ran 50-1000
// trials on satrec/blockVox (small) and qmf12_5d/qmf235_5d (~200 nodes).
// Override the trial count with SDFMEM_RANDSORT_TRIALS (default 200).
#include <algorithm>
#include <cstdio>
#include <limits>
#include <random>

#include "alloc/first_fit.h"
#include "bench_util.h"
#include "graphs/ptolemy.h"
#include "graphs/satellite.h"
#include "pipeline/compile.h"
#include "sdf/analysis.h"

namespace {

std::int64_t shared_size_for_order(const sdf::Graph& g,
                                   const std::vector<sdf::ActorId>& order) {
  using namespace sdf;
  CompileOptions opts;
  opts.optimizer = LoopOptimizer::kSdppo;
  const CompileResult res = compile_with_order(g, order, opts);
  return std::min(res.shared_size,
                  first_fit(res.wig, res.lifetimes,
                            FirstFitOrder::kByStartTime)
                      .total_size);
}

}  // namespace

namespace {

int run() {
  using namespace sdf;
  const int trials = bench::env_int("SDFMEM_RANDSORT_TRIALS", 200);
  std::printf(
      "Random-lexical-order study (Sec. 10.1), %d trials per system\n\n"
      "%-12s %8s %10s %10s %12s %14s\n",
      trials, "system", "actors", "heuristic", "bestRand", "trialsToBeat",
      "randBeatsBy%");

  std::mt19937 rng(424242);
  std::vector<Graph> systems;
  systems.push_back(satellite_receiver());
  systems.push_back(block_vox());
  systems.push_back(qmf12(5));
  systems.push_back(qmf235(5));
  for (const Graph& g : systems) {
    const Repetitions q = repetitions_vector(g);

    CompileOptions opts;
    std::int64_t heuristic = std::numeric_limits<std::int64_t>::max();
    for (const OrderHeuristic order :
         {OrderHeuristic::kRpmc, OrderHeuristic::kRpmcMultistart,
          OrderHeuristic::kApgan}) {
      opts.order = order;
      const CompileResult res = compile(g, opts);
      const std::int64_t shared = std::min(
          res.shared_size,
          first_fit(res.wig, res.lifetimes, FirstFitOrder::kByStartTime)
              .total_size);
      heuristic = std::min(heuristic, shared);
    }

    std::int64_t best_random = std::numeric_limits<std::int64_t>::max();
    int first_beat = -1;
    for (int t = 0; t < trials; ++t) {
      const auto order = random_topological_sort(g, rng);
      const std::int64_t shared = shared_size_for_order(g, order);
      if (shared < best_random) best_random = shared;
      if (first_beat < 0 && shared < heuristic) first_beat = t + 1;
    }
    const double beats_by =
        best_random < heuristic
            ? 100.0 * (heuristic - best_random) / heuristic
            : 0.0;
    const std::string beat_text =
        first_beat < 0 ? "never" : std::to_string(first_beat);
    std::printf("%-12s %8zu %10lld %10lld %12s %13.1f%%\n", g.name().c_str(),
                g.num_actors(), static_cast<long long>(heuristic),
                static_cast<long long>(best_random), beat_text.c_str(),
                beats_by);
  }
  std::printf(
      "\npaper reference: ~50 trials to beat the heuristics on ~25-node "
      "systems,\nbut the best of 1000 random orders improved satrec by ~1%% "
      "only; on ~200-node\nbanks random search stayed well behind "
      "(79 vs 58, 8011 vs 5690 after 100 trials).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
