// Sec. 11.1.4 trade-off: buffer memory bought by extra actor appearances
// (code size), after Sung et al. [25]. For each system, sweep the extra-
// appearance budget and print the non-shared buffer-memory curve.
#include <cstdio>

#include "bench_util.h"
#include "pipeline/compile.h"
#include "sched/nappearance.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "n-appearance trade-off: buffer memory vs extra code blocks\n\n"
      "%-14s %9s | %8s %8s %8s %8s %8s\n",
      "system", "SAS", "+8", "+32", "+128", "+512", "+2048");
  for (const Graph& g : bench::table1_systems()) {
    const Repetitions q = repetitions_vector(g);
    const CompileResult res = compile(g);
    std::printf("%-14s %9lld |", g.name().c_str(),
                static_cast<long long>(res.nonshared_bufmem));
    for (const std::int64_t budget : {8, 32, 128, 512, 2048}) {
      const NAppearanceResult r =
          relax_appearances(g, q, res.schedule, budget);
      std::printf(" %8lld", static_cast<long long>(r.buffer_memory));
    }
    std::printf("\n");
  }
  std::printf(
      "\neach column allows that many extra appearances over the SAS;\n"
      "rewrites interleave innermost producer/consumer loop pairs.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
