// Load generator for the compile service (docs/SERVICE.md): starts an
// in-process sdfmemd on a Unix socket with a fresh result cache, replays
// the Table 1 practical suite cold (every request compiles) and then hot
// (every request is a verified cache hit) from several concurrent
// clients, and reports p50/p95/p99 request latency plus the hit-rate
// trajectory per round.
//
//   SDFMEM_SERVICE_CLIENTS  concurrent client connections (default 4)
//   SDFMEM_SERVICE_ROUNDS   hot rounds over the suite (default 3)
//   SDFMEM_BENCH_JSON       write the trajectory as telemetry JSON
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sdf/io.h"
#include "service/client.h"
#include "service/server.h"

namespace sdf::bench {
namespace {

std::int64_t percentile(std::vector<std::int64_t> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct RoundResult {
  std::string label;
  std::vector<std::int64_t> latencies_us;
  std::int64_t hits = 0;
  std::int64_t misses = 0;

  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// One pass over the request list from `clients` concurrent connections;
/// returns every request's client-observed latency.
std::vector<std::int64_t> run_round(const std::string& socket_path,
                                    const std::vector<std::string>& requests,
                                    int clients) {
  std::vector<std::int64_t> latencies;
  std::mutex mu;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      svc::Client client({socket_path, 0});
      std::vector<std::int64_t> local;
      // Client c starts at a different offset so concurrent clients do
      // not convoy on one key.
      const std::size_t n = requests.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::string& graph =
            requests[(i + static_cast<std::size_t>(c)) % n];
        svc::CompileRequest req;
        req.graph_text = graph;
        // The configuration worth caching: the expensive best-quality
        // pipeline (multistart RPMC ordering + exact chain DP) over the
        // vectorized schedule (blocking factor 16, paper Sec. 9).
        req.options.order = OrderHeuristic::kRpmcMultistart;
        req.options.optimizer = LoopOptimizer::kChainExact;
        req.options.blocking_factor = 16;
        const auto t0 = std::chrono::steady_clock::now();
        const Result<std::string> r = client.compile(req);
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          throw IoError("service_load: request failed: " +
                        r.error().message);
        }
        local.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                            t1 - t0)
                            .count());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : workers) t.join();
  return latencies;
}

int body() {
  JsonTrajectory trajectory("service_load");
  const int clients = env_int("SDFMEM_SERVICE_CLIENTS", 4);
  const int hot_rounds = env_int("SDFMEM_SERVICE_ROUNDS", 3);

  const std::string dir =
      "/tmp/sdfmem_service_load_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string socket_path = dir + "/d.sock";

  std::vector<std::string> requests;
  for (const Graph& g : table1_systems()) {
    requests.push_back(write_graph_text(g));
  }

  svc::ServerOptions opts;
  opts.socket_path = socket_path;
  opts.cache_dir = dir + "/cache";
  opts.jobs = -1;  // all hardware threads: the server is the benchmark
  opts.queue_capacity = 1024;  // admission off the critical path here
  svc::Server server(opts);
  server.start();
  std::thread runner([&server] { server.run(); });

  std::vector<RoundResult> rounds;
  svc::CacheStats last{};
  const auto snapshot = [&](RoundResult* round) {
    const svc::ServerStats stats = server.stats();
    round->hits = stats.cache_hits - last.hits;
    round->misses = stats.cache_misses - last.misses;
    last.hits = stats.cache_hits;
    last.misses = stats.cache_misses;
  };

  {
    // Cold: one client, an empty cache — every request compiles.
    RoundResult cold;
    cold.label = "cold";
    cold.latencies_us = run_round(socket_path, requests, 1);
    snapshot(&cold);
    rounds.push_back(std::move(cold));
  }
  for (int r = 0; r < hot_rounds; ++r) {
    RoundResult hot;
    hot.label = "hot" + std::to_string(r + 1);
    hot.latencies_us = run_round(socket_path, requests, clients);
    snapshot(&hot);
    rounds.push_back(std::move(hot));
  }

  server.stop();
  runner.join();

  std::printf("service_load: %zu graphs, %d client(s), %d hot round(s)\n",
              requests.size(), clients, hot_rounds);
  std::printf("%-8s %8s %10s %10s %10s %7s %7s %9s\n", "round", "reqs",
              "p50_us", "p95_us", "p99_us", "hits", "misses", "hit_rate");
  obs::Json rows = obs::Json::array();
  for (RoundResult& round : rounds) {
    std::sort(round.latencies_us.begin(), round.latencies_us.end());
    const std::int64_t p50 = percentile(round.latencies_us, 50);
    const std::int64_t p95 = percentile(round.latencies_us, 95);
    const std::int64_t p99 = percentile(round.latencies_us, 99);
    std::printf("%-8s %8zu %10lld %10lld %10lld %7lld %7lld %8.1f%%\n",
                round.label.c_str(), round.latencies_us.size(),
                static_cast<long long>(p50), static_cast<long long>(p95),
                static_cast<long long>(p99),
                static_cast<long long>(round.hits),
                static_cast<long long>(round.misses),
                100.0 * round.hit_rate());
    obs::Json row = obs::Json::object();
    row["round"] = round.label;
    row["requests"] = static_cast<std::int64_t>(round.latencies_us.size());
    row["p50_us"] = p50;
    row["p95_us"] = p95;
    row["p99_us"] = p99;
    row["hits"] = round.hits;
    row["misses"] = round.misses;
    row["hit_rate"] = round.hit_rate();
    rows.push_back(std::move(row));
  }

  // Headline: the cache's p50 speedup on hot keys vs the cold compile.
  std::sort(rounds.front().latencies_us.begin(),
            rounds.front().latencies_us.end());
  const std::int64_t cold_p50 = percentile(rounds.front().latencies_us, 50);
  const std::int64_t hot_p50 =
      percentile(rounds.back().latencies_us, 50);
  const double speedup =
      hot_p50 > 0 ? static_cast<double>(cold_p50) /
                        static_cast<double>(hot_p50)
                  : 0.0;
  std::printf("hot-key p50 speedup: %.1fx (cold %lld us -> hot %lld us)\n",
              speedup, static_cast<long long>(cold_p50),
              static_cast<long long>(hot_p50));

  if (trajectory.active()) {
    trajectory.results()["rounds"] = std::move(rows);
    trajectory.results()["clients"] = static_cast<std::int64_t>(clients);
    trajectory.results()["graphs"] =
        static_cast<std::int64_t>(requests.size());
    trajectory.results()["cold_p50_us"] = cold_p50;
    trajectory.results()["hot_p50_us"] = hot_p50;
    trajectory.results()["p50_speedup"] = speedup;
  }

  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace sdf::bench

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, sdf::bench::body);
}
