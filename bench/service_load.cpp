// Load generator for the compile service (docs/SERVICE.md): starts an
// in-process sdfmemd on a Unix socket with a fresh result cache, replays
// the Table 1 practical suite cold (every request compiles) and then hot
// (every request is a verified cache hit) from several concurrent
// clients, and reports p50/p95/p99 request latency plus the hit-rate
// trajectory per round.
//
// A second phase benchmarks the multi-tenant QoS contract
// (docs/TENANCY.md): a `light` tenant is measured solo, then again while
// a throttled `hog` tenant floods the same daemon from several
// connections. The headline is the fairness ratio — light's adversarial
// p95 over its solo p95 — which the QoS contract promises stays <= 2x.
//
// A third phase benchmarks fleet mode (docs/SERVICE.md, "Fleet mode"):
// the same workload replayed through the shard router over 1, 2, and 4
// workers (each with its own cache + hot tier). The headline is that the
// hot p50 and the routed hit rate hold as the fleet grows — shard
// routing keeps every key's cache on one worker, so adding workers never
// dilutes hit rates the way naive round-robin would.
//
// A fourth phase benchmarks recovery (docs/RELIABILITY.md): kill/restart
// cycles over a 3-worker routed fleet, timing how long the fleet takes
// to serve the full suite again after each disruption. The headline is
// the kill-recovery p50/p95 — how fast the breaker + failover path
// restores service after a worker vanishes.
//
//   SDFMEM_SERVICE_CLIENTS        concurrent client connections (default 4)
//   SDFMEM_SERVICE_ROUNDS         hot rounds over the suite (default 3)
//   SDFMEM_SERVICE_LIGHT_REQS     light-tenant requests per phase (default 24)
//   SDFMEM_SERVICE_HOG_CLIENTS    hog connections in the mix (default 4)
//   SDFMEM_SERVICE_CHAOS_CYCLES   kill/restart cycles (default 5)
//   SDFMEM_SERVICE_FAIRNESS_GATE  1: exit 1 when the ratio exceeds 2
//   SDFMEM_SERVICE_FLEET_GATE     1: exit 1 when the routed hot hit
//                                 rate drops below 95% at any fleet size,
//                                 or the 4-worker hot p50 exceeds 3x the
//                                 1-worker hot p50
//   SDFMEM_BENCH_JSON             write the trajectory as telemetry JSON
//
// Every SDFMEM_SERVICE_* value is validated strictly (util/flags.h):
// counts must be positive decimal integers, gates exactly "0" or "1";
// anything else is a usage error (exit 2), never a silent fallback.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sdf/io.h"
#include "service/client.h"
#include "service/qos.h"
#include "service/retry.h"
#include "service/router.h"
#include "service/server.h"
#include "util/flags.h"

namespace sdf::bench {
namespace {

/// Strict SDFMEM_* count: unset means the fallback; anything set must
/// parse as a strictly positive decimal integer (util/flags.h) or the
/// run is a usage error — exit 2, never a silent fallback that would
/// quietly benchmark the wrong configuration.
int env_count(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::optional<std::int64_t> parsed =
      util::parse_positive_flag(value);
  if (!parsed.has_value() || *parsed > 1000000) {
    std::fprintf(stderr,
                 "usage: %s must be a positive decimal integer, got '%s'\n",
                 name, value);
    std::exit(2);
  }
  return static_cast<int>(*parsed);
}

/// Strict SDFMEM_*_GATE flag: unset or "0" is off, "1" is on, anything
/// else is a usage error — a typo'd gate must not silently skip the
/// check it was meant to arm.
bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  const std::string_view text(value);
  if (text == "0") return false;
  if (text == "1") return true;
  std::fprintf(stderr, "usage: %s must be 0 or 1, got '%s'\n", name, value);
  std::exit(2);
}

std::int64_t percentile(std::vector<std::int64_t> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct RoundResult {
  std::string label;
  std::vector<std::int64_t> latencies_us;
  std::int64_t hits = 0;
  std::int64_t misses = 0;

  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// One pass over the request list from `clients` concurrent connections;
/// returns every request's client-observed latency.
std::vector<std::int64_t> run_round(const std::string& socket_path,
                                    const std::vector<std::string>& requests,
                                    int clients) {
  std::vector<std::int64_t> latencies;
  std::mutex mu;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      svc::Client client({socket_path, 0});
      std::vector<std::int64_t> local;
      // Client c starts at a different offset so concurrent clients do
      // not convoy on one key.
      const std::size_t n = requests.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::string& graph =
            requests[(i + static_cast<std::size_t>(c)) % n];
        svc::CompileRequest req;
        req.graph_text = graph;
        // The configuration worth caching: the expensive best-quality
        // pipeline (multistart RPMC ordering + exact chain DP) over the
        // vectorized schedule (blocking factor 16, paper Sec. 9).
        req.options.order = OrderHeuristic::kRpmcMultistart;
        req.options.optimizer = LoopOptimizer::kChainExact;
        req.options.blocking_factor = 16;
        const auto t0 = std::chrono::steady_clock::now();
        const Result<std::string> r = client.compile(req);
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          throw IoError("service_load: request failed: " +
                        r.error().message);
        }
        local.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                            t1 - t0)
                            .count());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : workers) t.join();
  return latencies;
}

// ---------------------------------------------------------------- fairness

/// One measured light-tenant request: the whole Table 1 suite compiled
/// fresh (the server runs without a cache directory, so every request
/// pays the full compile).
std::vector<std::int64_t> run_light(const std::string& socket_path,
                                    const std::vector<std::string>& requests,
                                    int total) {
  svc::Client client({socket_path, 0});
  std::vector<std::int64_t> latencies;
  latencies.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    svc::CompileRequest req;
    req.graph_text = requests[static_cast<std::size_t>(i) % requests.size()];
    req.tenant = "light";
    req.options.order = OrderHeuristic::kRpmcMultistart;
    req.options.optimizer = LoopOptimizer::kChainExact;
    req.options.blocking_factor = 16;
    const auto t0 = std::chrono::steady_clock::now();
    const Result<std::string> r = client.compile(req);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      throw IoError("service_load: light request failed: " +
                    r.error().message);
    }
    latencies.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
  }
  return latencies;
}

/// Benchmarks the QoS contract on a fresh cache-less daemon: light solo,
/// then light vs a flooding rate-limited hog. Returns nonzero when the
/// fairness gate is armed and violated.
int fairness_phase(JsonTrajectory& trajectory) {
  const int light_reqs = env_count("SDFMEM_SERVICE_LIGHT_REQS", 24);
  const int hog_clients = env_count("SDFMEM_SERVICE_HOG_CLIENTS", 4);
  const bool gate = env_flag("SDFMEM_SERVICE_FAIRNESS_GATE");

  const std::string dir =
      "/tmp/sdfmem_service_fair_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string socket_path = dir + "/d.sock";

  std::vector<std::string> requests;
  for (const Graph& g : table1_systems()) {
    requests.push_back(write_graph_text(g));
  }

  // light carries 8x the hog's weight; the hog is additionally capped at
  // 100 cost-ms of sustained compile throughput per second. With the
  // default request cost at 50 ms that is two hog compiles per second —
  // everything beyond queues briefly, then sheds once the hog's backlog
  // share fills.
  const Result<svc::qos::TenantRegistry> registry =
      svc::qos::TenantRegistry::parse(
          R"({"schema": "sdfmem.tenants.v1",
              "tenants": {"light": {"weight": 8},
                          "hog": {"weight": 1, "rate_ms_per_sec": 100,
                                  "burst_ms": 100}}})");
  if (!registry.ok()) {
    throw IoError("service_load: tenants config: " +
                  registry.error().message);
  }

  svc::ServerOptions opts;
  opts.socket_path = socket_path;
  // Few slots so contention is real, but enough that one admitted hog
  // compile cannot serialize the whole daemon behind it.
  opts.jobs = 4;
  opts.queue_capacity = 32;
  opts.default_cost_ms = 50;
  opts.tenants = registry.value();
  svc::Server server(opts);
  server.start();
  std::thread runner([&server] { server.run(); });

  // Phase A: the light tenant alone.
  std::vector<std::int64_t> solo =
      run_light(socket_path, requests, light_reqs);

  // Phase B: the same light workload while `hog` floods from
  // `hog_clients` connections (roughly a 10:1 offered-load mix).
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> hog_ok{0};
  std::atomic<std::int64_t> hog_rejected{0};
  std::vector<std::thread> hogs;
  hogs.reserve(static_cast<std::size_t>(hog_clients));
  for (int c = 0; c < hog_clients; ++c) {
    hogs.emplace_back([&, c] {
      svc::Client client({socket_path, 0});
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        svc::CompileRequest req;
        req.graph_text = requests[i++ % requests.size()];
        req.tenant = "hog";
        req.options.order = OrderHeuristic::kRpmcMultistart;
        req.options.optimizer = LoopOptimizer::kChainExact;
        req.options.blocking_factor = 16;
        const Result<std::string> r = client.compile(req);
        if (r.ok()) {
          hog_ok.fetch_add(1, std::memory_order_relaxed);
        } else if (r.error().code == ErrorCode::kOverloaded) {
          // Expected: the hog sheds once its backlog share fills. Back
          // off like a real client would (ERRORS.md tells exit-24
          // callers to retry later) instead of hot-spinning rejects.
          hog_rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        } else {
          throw IoError("service_load: hog request failed: " +
                        r.error().message);
        }
      }
    });
  }
  // Let the hog drain its initial token-bucket burst before measuring:
  // the contract covers steady-state fairness, not the first admitted
  // burst the bucket deliberately allows.
  std::this_thread::sleep_for(std::chrono::milliseconds(750));
  std::vector<std::int64_t> adversarial =
      run_light(socket_path, requests, light_reqs);
  stop.store(true);
  for (std::thread& t : hogs) t.join();

  const svc::ServerStats stats = server.stats();
  server.stop();
  runner.join();
  std::filesystem::remove_all(dir);

  std::sort(solo.begin(), solo.end());
  std::sort(adversarial.begin(), adversarial.end());
  const std::int64_t solo_p50 = percentile(solo, 50);
  const std::int64_t solo_p95 = percentile(solo, 95);
  const std::int64_t solo_p99 = percentile(solo, 99);
  const std::int64_t adv_p50 = percentile(adversarial, 50);
  const std::int64_t adv_p95 = percentile(adversarial, 95);
  const std::int64_t adv_p99 = percentile(adversarial, 99);
  const double ratio = solo_p95 > 0 ? static_cast<double>(adv_p95) /
                                          static_cast<double>(solo_p95)
                                    : 0.0;

  std::printf("\nfairness: light (weight 8) vs hog (weight 1, "
              "100 cost-ms/s) on %d hog connection(s)\n",
              hog_clients);
  std::printf("%-12s %8s %10s %10s %10s\n", "tenant-phase", "reqs",
              "p50_us", "p95_us", "p99_us");
  std::printf("%-12s %8zu %10lld %10lld %10lld\n", "light-solo",
              solo.size(), static_cast<long long>(solo_p50),
              static_cast<long long>(solo_p95),
              static_cast<long long>(solo_p99));
  std::printf("%-12s %8zu %10lld %10lld %10lld\n", "light-adv",
              adversarial.size(), static_cast<long long>(adv_p50),
              static_cast<long long>(adv_p95),
              static_cast<long long>(adv_p99));
  std::printf("hog: %lld served, %lld shed overloaded, "
              "throttle wait %lld us total\n",
              static_cast<long long>(hog_ok.load()),
              static_cast<long long>(hog_rejected.load()),
              static_cast<long long>(
                  stats.tenants.count("hog")
                      ? stats.tenants.at("hog").throttle_wait_us
                      : 0));
  std::printf("fairness p95 ratio (light adv/solo): %.2fx "
              "(contract: <= 2x)\n", ratio);

  if (trajectory.active()) {
    obs::Json fair = obs::Json::object();
    fair["light_solo_p50_us"] = solo_p50;
    fair["light_solo_p95_us"] = solo_p95;
    fair["light_solo_p99_us"] = solo_p99;
    fair["light_adv_p50_us"] = adv_p50;
    fair["light_adv_p95_us"] = adv_p95;
    fair["light_adv_p99_us"] = adv_p99;
    fair["hog_ok"] = hog_ok.load();
    fair["hog_overloaded"] = hog_rejected.load();
    fair["hog_clients"] = static_cast<std::int64_t>(hog_clients);
    fair["p95_ratio"] = ratio;
    trajectory.results()["fairness"] = std::move(fair);
  }

  if (gate && ratio > 2.0) {
    std::fprintf(stderr,
                 "service_load: FAIL fairness gate: light p95 ratio "
                 "%.2fx > 2x\n", ratio);
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------ fleet

/// Benchmarks the shard router over 1/2/4 workers: cold replay, then hot
/// rounds, reporting routed latency percentiles and the router-observed
/// hit rate per round. Returns nonzero when the fleet gate is armed and
/// the hit rate or p50 scaling contract is violated.
int fleet_phase(JsonTrajectory& trajectory) {
  const int clients = env_count("SDFMEM_SERVICE_CLIENTS", 4);
  const int hot_rounds = env_count("SDFMEM_SERVICE_ROUNDS", 3);
  const bool gate = env_flag("SDFMEM_SERVICE_FLEET_GATE");

  std::vector<std::string> requests;
  for (const Graph& g : table1_systems()) {
    requests.push_back(write_graph_text(g));
  }

  std::printf("\nfleet: shard-routed workers (consistent hashing + "
              "per-worker cache/hot tier), %d client(s), %d hot round(s)\n",
              clients, hot_rounds);
  std::printf("%-14s %8s %10s %10s %10s %7s %7s %9s\n", "fleet-round",
              "reqs", "p50_us", "p95_us", "p99_us", "hits", "misses",
              "hit_rate");

  obs::Json sizes_json = obs::Json::array();
  std::vector<std::int64_t> hot_p50_by_size;
  std::vector<double> hit_rate_by_size;
  for (const int n : {1, 2, 4}) {
    const std::string dir = "/tmp/sdfmem_service_fleet_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(n);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    std::vector<std::unique_ptr<svc::Server>> servers;
    std::vector<std::thread> runners;
    svc::RouterOptions ropts;
    ropts.socket_path = dir + "/router.sock";
    for (int w = 0; w < n; ++w) {
      svc::ServerOptions wopts;
      wopts.socket_path = dir + "/w" + std::to_string(w) + ".sock";
      wopts.cache_dir = dir + "/w" + std::to_string(w) + ".cache";
      wopts.worker_id = "w" + std::to_string(w);
      wopts.jobs = -1;
      wopts.queue_capacity = 1024;
      servers.push_back(std::make_unique<svc::Server>(wopts));
      servers.back()->start();
      runners.emplace_back([s = servers.back().get()] { s->run(); });
      svc::WorkerConfig cfg;
      cfg.id = wopts.worker_id;
      cfg.endpoint.socket_path = wopts.socket_path;
      cfg.pinned_id = true;
      ropts.workers.push_back(cfg);
    }
    svc::Router router(ropts);
    router.start();
    std::thread router_runner([&router] { router.run(); });

    svc::RouterStats last = router.stats();
    const auto routed_round = [&](const std::string& label,
                                  int round_clients) {
      RoundResult round;
      round.label = label;
      round.latencies_us =
          run_round(ropts.socket_path, requests, round_clients);
      const svc::RouterStats now = router.stats();
      round.hits = (now.lookup_hits + now.peer_hits) -
                   (last.lookup_hits + last.peer_hits);
      round.misses = now.compiles - last.compiles;
      last = now;
      return round;
    };

    std::vector<RoundResult> rounds;
    rounds.push_back(routed_round("w" + std::to_string(n) + "-cold", 1));
    for (int r = 0; r < hot_rounds; ++r) {
      rounds.push_back(routed_round(
          "w" + std::to_string(n) + "-hot" + std::to_string(r + 1),
          clients));
    }

    router.stop();
    router_runner.join();
    for (std::size_t i = 0; i < servers.size(); ++i) {
      servers[i]->stop();
      runners[i].join();
    }

    obs::Json rows = obs::Json::array();
    for (RoundResult& round : rounds) {
      std::sort(round.latencies_us.begin(), round.latencies_us.end());
      const std::int64_t p50 = percentile(round.latencies_us, 50);
      const std::int64_t p95 = percentile(round.latencies_us, 95);
      const std::int64_t p99 = percentile(round.latencies_us, 99);
      std::printf("%-14s %8zu %10lld %10lld %10lld %7lld %7lld %8.1f%%\n",
                  round.label.c_str(), round.latencies_us.size(),
                  static_cast<long long>(p50), static_cast<long long>(p95),
                  static_cast<long long>(p99),
                  static_cast<long long>(round.hits),
                  static_cast<long long>(round.misses),
                  100.0 * round.hit_rate());
      obs::Json row = obs::Json::object();
      row["round"] = round.label;
      row["requests"] =
          static_cast<std::int64_t>(round.latencies_us.size());
      row["p50_us"] = p50;
      row["p95_us"] = p95;
      row["p99_us"] = p99;
      row["hits"] = round.hits;
      row["misses"] = round.misses;
      row["hit_rate"] = round.hit_rate();
      rows.push_back(std::move(row));
    }
    hot_p50_by_size.push_back(percentile(rounds.back().latencies_us, 50));
    hit_rate_by_size.push_back(rounds.back().hit_rate());

    obs::Json size_json = obs::Json::object();
    size_json["workers"] = static_cast<std::int64_t>(n);
    size_json["rounds"] = std::move(rows);
    size_json["hot_p50_us"] = hot_p50_by_size.back();
    size_json["hot_hit_rate"] = hit_rate_by_size.back();
    sizes_json.push_back(std::move(size_json));

    std::filesystem::remove_all(dir);
  }

  std::printf("fleet hot p50: 1w %lld us, 2w %lld us, 4w %lld us; "
              "hot hit rate: %.1f%% / %.1f%% / %.1f%%\n",
              static_cast<long long>(hot_p50_by_size[0]),
              static_cast<long long>(hot_p50_by_size[1]),
              static_cast<long long>(hot_p50_by_size[2]),
              100.0 * hit_rate_by_size[0], 100.0 * hit_rate_by_size[1],
              100.0 * hit_rate_by_size[2]);

  if (trajectory.active()) {
    trajectory.results()["fleet"] = std::move(sizes_json);
  }

  if (gate) {
    for (std::size_t i = 0; i < hit_rate_by_size.size(); ++i) {
      if (hit_rate_by_size[i] < 0.95) {
        std::fprintf(stderr,
                     "service_load: FAIL fleet gate: hot hit rate %.1f%% "
                     "< 95%% at size %zu\n",
                     100.0 * hit_rate_by_size[i], i);
        return 1;
      }
    }
    if (hot_p50_by_size[0] > 0 &&
        static_cast<double>(hot_p50_by_size[2]) >
            3.0 * static_cast<double>(hot_p50_by_size[0])) {
      std::fprintf(stderr,
                   "service_load: FAIL fleet gate: 4-worker hot p50 "
                   "%lld us > 3x 1-worker %lld us\n",
                   static_cast<long long>(hot_p50_by_size[2]),
                   static_cast<long long>(hot_p50_by_size[0]));
      return 1;
    }
  }
  return 0;
}

// ------------------------------------------------------------------ chaos

/// A worker the chaos phase can kill and resurrect over the same cache
/// directory (the bench analogue of tests/chaos_harness.h).
struct RestartableWorker {
  svc::ServerOptions options;
  std::unique_ptr<svc::Server> server;
  std::thread runner;
  bool up = false;

  explicit RestartableWorker(svc::ServerOptions opts)
      : options(std::move(opts)) {
    start();
  }
  ~RestartableWorker() { stop(); }

  void start() {
    if (up) return;
    server = std::make_unique<svc::Server>(options);
    server->start();
    runner = std::thread([this] { server->run(); });
    up = true;
  }
  void stop() {
    if (!up) return;
    server->stop();
    runner.join();
    server.reset();
    up = false;
  }
};

/// Kill/restart cycles over a 3-worker routed fleet: after each kill,
/// the time until the retrying client serves the full suite again with
/// zero failures; after each restart, the time until the router's
/// health prober reports every worker routable. Recovery p50/p95 are
/// the headline (docs/RELIABILITY.md).
int chaos_phase(JsonTrajectory& trajectory) {
  const int cycles = env_count("SDFMEM_SERVICE_CHAOS_CYCLES", 5);
  constexpr int kWorkers = 3;

  const std::string dir =
      "/tmp/sdfmem_service_chaos_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Default (cheap) compile options: recovery time should measure the
  // breaker + failover path, not an expensive pipeline.
  std::vector<std::string> requests;
  for (const Graph& g : table1_systems()) {
    requests.push_back(write_graph_text(g));
  }

  std::vector<std::unique_ptr<RestartableWorker>> workers;
  svc::RouterOptions ropts;
  ropts.socket_path = dir + "/router.sock";
  for (int w = 0; w < kWorkers; ++w) {
    svc::ServerOptions wopts;
    wopts.socket_path = dir + "/w" + std::to_string(w) + ".sock";
    wopts.cache_dir = dir + "/w" + std::to_string(w) + ".cache";
    wopts.worker_id = "w" + std::to_string(w);
    wopts.queue_capacity = 1024;
    workers.push_back(std::make_unique<RestartableWorker>(wopts));
    svc::WorkerConfig cfg;
    cfg.id = wopts.worker_id;
    cfg.endpoint.socket_path = wopts.socket_path;
    cfg.pinned_id = true;
    ropts.workers.push_back(cfg);
  }
  ropts.worker_timeout_ms = 250;
  ropts.breaker_threshold = 2;
  ropts.health_interval_ms = 25;
  svc::Router router(ropts);
  router.start();
  std::thread router_runner([&router] { router.run(); });

  svc::RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 40;
  policy.seed = 42;
  svc::RetryBudget budget(100000);
  svc::RetryingClient client({ropts.socket_path, 0}, policy, &budget);

  std::int64_t typed_failures = 0;
  // One clean pass over the suite; counts (typed) failures seen.
  const auto full_pass = [&]() -> bool {
    bool clean = true;
    for (const std::string& graph : requests) {
      svc::CompileRequest req;
      req.graph_text = graph;
      const Result<std::string> r = client.compile(req);
      if (!r.ok()) {
        if (!svc::retryable(r.error().code)) {
          throw IoError("service_load: non-retryable chaos failure: " +
                        r.error().message);
        }
        ++typed_failures;
        clean = false;
      }
    }
    return clean;
  };
  const auto all_alive = [&]() -> bool {
    int alive = 0;
    for (const auto& [id, w] : router.stats().workers) {
      if (w.alive) ++alive;
    }
    return alive == kWorkers;
  };

  // Warm pass: caches populated, every worker proven serving.
  if (!full_pass()) {
    throw IoError("service_load: chaos warm pass failed on healthy fleet");
  }

  std::vector<std::int64_t> kill_rec_ms;
  std::vector<std::int64_t> restart_rec_ms;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const int victim = cycle % kWorkers;
    const auto killed = std::chrono::steady_clock::now();
    workers[static_cast<std::size_t>(victim)]->stop();
    // Recovery = first fully clean pass after the kill; 30 s without one
    // is a hang, and the phase fails rather than wedges.
    const auto kill_deadline = killed + std::chrono::seconds(30);
    while (!full_pass()) {
      if (std::chrono::steady_clock::now() > kill_deadline) {
        std::fprintf(stderr,
                     "service_load: FAIL chaos: no clean pass within 30 s "
                     "of killing w%d\n", victim);
        router.stop();
        router_runner.join();
        return 1;
      }
    }
    kill_rec_ms.push_back(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - killed)
            .count());

    const auto restarted = std::chrono::steady_clock::now();
    workers[static_cast<std::size_t>(victim)]->start();
    const auto restart_deadline = restarted + std::chrono::seconds(30);
    while (!all_alive()) {
      if (std::chrono::steady_clock::now() > restart_deadline) {
        std::fprintf(stderr,
                     "service_load: FAIL chaos: w%d not routable within "
                     "30 s of restart\n", victim);
        router.stop();
        router_runner.join();
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    restart_rec_ms.push_back(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - restarted)
            .count());
  }

  router.stop();
  router_runner.join();
  workers.clear();
  std::filesystem::remove_all(dir);

  std::sort(kill_rec_ms.begin(), kill_rec_ms.end());
  std::sort(restart_rec_ms.begin(), restart_rec_ms.end());
  const std::int64_t kill_p50 = percentile(kill_rec_ms, 50);
  const std::int64_t kill_p95 = percentile(kill_rec_ms, 95);
  const std::int64_t restart_p50 = percentile(restart_rec_ms, 50);
  const std::int64_t restart_p95 = percentile(restart_rec_ms, 95);

  std::printf("\nchaos: %d kill/restart cycle(s) over %d workers "
              "(breaker threshold 2, 25 ms health probes)\n",
              cycles, kWorkers);
  std::printf("kill recovery:    p50 %lld ms, p95 %lld ms "
              "(first clean suite pass after a worker vanishes)\n",
              static_cast<long long>(kill_p50),
              static_cast<long long>(kill_p95));
  std::printf("restart recovery: p50 %lld ms, p95 %lld ms "
              "(probe sees the worker routable again)\n",
              static_cast<long long>(restart_p50),
              static_cast<long long>(restart_p95));
  std::printf("typed failures absorbed mid-chaos: %lld "
              "(every one retryable — none escaped untyped)\n",
              static_cast<long long>(typed_failures));

  if (trajectory.active()) {
    obs::Json chaos = obs::Json::object();
    chaos["cycles"] = static_cast<std::int64_t>(cycles);
    chaos["kill_recovery_p50_ms"] = kill_p50;
    chaos["kill_recovery_p95_ms"] = kill_p95;
    chaos["restart_recovery_p50_ms"] = restart_p50;
    chaos["restart_recovery_p95_ms"] = restart_p95;
    chaos["typed_failures"] = typed_failures;
    chaos["retries_granted"] = budget.retries_granted();
    trajectory.results()["chaos"] = std::move(chaos);
  }
  return 0;
}

int body() {
  JsonTrajectory trajectory("service_load");
  const int clients = env_count("SDFMEM_SERVICE_CLIENTS", 4);
  const int hot_rounds = env_count("SDFMEM_SERVICE_ROUNDS", 3);

  const std::string dir =
      "/tmp/sdfmem_service_load_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string socket_path = dir + "/d.sock";

  std::vector<std::string> requests;
  for (const Graph& g : table1_systems()) {
    requests.push_back(write_graph_text(g));
  }

  svc::ServerOptions opts;
  opts.socket_path = socket_path;
  opts.cache_dir = dir + "/cache";
  opts.jobs = -1;  // all hardware threads: the server is the benchmark
  opts.queue_capacity = 1024;  // admission off the critical path here
  svc::Server server(opts);
  server.start();
  std::thread runner([&server] { server.run(); });

  std::vector<RoundResult> rounds;
  svc::CacheStats last{};
  const auto snapshot = [&](RoundResult* round) {
    const svc::ServerStats stats = server.stats();
    round->hits = stats.cache_hits - last.hits;
    round->misses = stats.cache_misses - last.misses;
    last.hits = stats.cache_hits;
    last.misses = stats.cache_misses;
  };

  {
    // Cold: one client, an empty cache — every request compiles.
    RoundResult cold;
    cold.label = "cold";
    cold.latencies_us = run_round(socket_path, requests, 1);
    snapshot(&cold);
    rounds.push_back(std::move(cold));
  }
  for (int r = 0; r < hot_rounds; ++r) {
    RoundResult hot;
    hot.label = "hot" + std::to_string(r + 1);
    hot.latencies_us = run_round(socket_path, requests, clients);
    snapshot(&hot);
    rounds.push_back(std::move(hot));
  }

  server.stop();
  runner.join();

  std::printf("service_load: %zu graphs, %d client(s), %d hot round(s)\n",
              requests.size(), clients, hot_rounds);
  std::printf("%-8s %8s %10s %10s %10s %7s %7s %9s\n", "round", "reqs",
              "p50_us", "p95_us", "p99_us", "hits", "misses", "hit_rate");
  obs::Json rows = obs::Json::array();
  for (RoundResult& round : rounds) {
    std::sort(round.latencies_us.begin(), round.latencies_us.end());
    const std::int64_t p50 = percentile(round.latencies_us, 50);
    const std::int64_t p95 = percentile(round.latencies_us, 95);
    const std::int64_t p99 = percentile(round.latencies_us, 99);
    std::printf("%-8s %8zu %10lld %10lld %10lld %7lld %7lld %8.1f%%\n",
                round.label.c_str(), round.latencies_us.size(),
                static_cast<long long>(p50), static_cast<long long>(p95),
                static_cast<long long>(p99),
                static_cast<long long>(round.hits),
                static_cast<long long>(round.misses),
                100.0 * round.hit_rate());
    obs::Json row = obs::Json::object();
    row["round"] = round.label;
    row["requests"] = static_cast<std::int64_t>(round.latencies_us.size());
    row["p50_us"] = p50;
    row["p95_us"] = p95;
    row["p99_us"] = p99;
    row["hits"] = round.hits;
    row["misses"] = round.misses;
    row["hit_rate"] = round.hit_rate();
    rows.push_back(std::move(row));
  }

  // Headline: the cache's p50 speedup on hot keys vs the cold compile.
  std::sort(rounds.front().latencies_us.begin(),
            rounds.front().latencies_us.end());
  const std::int64_t cold_p50 = percentile(rounds.front().latencies_us, 50);
  const std::int64_t hot_p50 =
      percentile(rounds.back().latencies_us, 50);
  const double speedup =
      hot_p50 > 0 ? static_cast<double>(cold_p50) /
                        static_cast<double>(hot_p50)
                  : 0.0;
  std::printf("hot-key p50 speedup: %.1fx (cold %lld us -> hot %lld us)\n",
              speedup, static_cast<long long>(cold_p50),
              static_cast<long long>(hot_p50));

  if (trajectory.active()) {
    trajectory.results()["rounds"] = std::move(rows);
    trajectory.results()["clients"] = static_cast<std::int64_t>(clients);
    trajectory.results()["graphs"] =
        static_cast<std::int64_t>(requests.size());
    trajectory.results()["cold_p50_us"] = cold_p50;
    trajectory.results()["hot_p50_us"] = hot_p50;
    trajectory.results()["p50_speedup"] = speedup;
  }

  std::filesystem::remove_all(dir);
  const int fairness_rc = fairness_phase(trajectory);
  const int fleet_rc = fleet_phase(trajectory);
  const int chaos_rc = chaos_phase(trajectory);
  if (fairness_rc != 0) return fairness_rc;
  return fleet_rc != 0 ? fleet_rc : chaos_rc;
}

}  // namespace
}  // namespace sdf::bench

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, sdf::bench::body);
}
