// Serial-vs-parallel design-space exploration: wall-clock trajectory for
// the work-stealing sweep (pipeline/explore.cpp). For each benchmark
// system, runs the identical sweep at increasing worker counts, verifies
// the output is byte-identical to the serial run, and reports speedup and
// points/sec. With SDFMEM_BENCH_JSON set, the rows land in the shared
// `sdfmem.telemetry.v1` trajectory so BENCH JSON captures the speedup
// across PRs.
//
// Env knobs: SDFMEM_BENCH_REPEAT (default 3; best-of-N per cell),
// SDFMEM_JOBS_MAX (default 4; highest worker count tried beyond the
// hardware count).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pipeline/explore.h"
#include "util/thread_pool.h"

namespace {

/// Canonical text form of a sweep result: every point and the frontier,
/// with all numbers and strategy strings. Two runs are "identical" iff
/// these strings match byte-for-byte.
std::string result_fingerprint(const sdf::ExploreResult& r) {
  std::string out;
  for (const sdf::DesignPoint& p : r.points) {
    out += p.strategy + "|" + std::to_string(p.code_size) + "|" +
           std::to_string(p.shared_memory) + "|" +
           std::to_string(p.nonshared_memory) + "|" +
           (p.pareto ? "P" : "-") + "\n";
  }
  out += "--\n";
  for (const sdf::DesignPoint& f : r.frontier) {
    out += f.strategy + "|" + std::to_string(f.code_size) + "|" +
           std::to_string(f.shared_memory) + "\n";
  }
  return out;
}

double best_of_ms(const sdf::Graph& g, int jobs, int repeat,
                  sdf::ExploreResult* out) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int i = 0; i < repeat; ++i) {
    sdf::ExploreOptions options;
    options.jobs = jobs;
    const auto t0 = Clock::now();
    sdf::ExploreResult r = sdf::explore_designs(g, options);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    best = std::min(best, ms);
    if (out != nullptr) *out = std::move(r);
  }
  return best;
}

}  // namespace

namespace {

int run() {
  using namespace sdf;
  bench::JsonTrajectory traj("explore_scaling");
  obs::Json rows = obs::Json::array();

  const int repeat = bench::env_int("SDFMEM_BENCH_REPEAT", 3);
  const int jobs_cap = bench::env_int("SDFMEM_JOBS_MAX", 4);

  std::vector<int> job_counts{1, 2, 4};
  job_counts.push_back(util::ThreadPool::hardware_jobs());
  job_counts.push_back(jobs_cap);
  std::sort(job_counts.begin(), job_counts.end());
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()),
                   job_counts.end());

  std::vector<Graph> systems;
  systems.push_back(satellite_receiver());
  systems.push_back(qmf23(4));
  systems.push_back(qmf235(3));

  std::printf("%-12s %6s %10s %9s %10s  %s\n", "system", "jobs", "ms",
              "speedup", "points/s", "identical");
  for (const Graph& g : systems) {
    ExploreResult serial;
    const double serial_ms = best_of_ms(g, 1, repeat, &serial);
    const std::string want = result_fingerprint(serial);

    for (const int jobs : job_counts) {
      ExploreResult r;
      const double ms =
          jobs == 1 ? serial_ms : best_of_ms(g, jobs, repeat, &r);
      const bool identical =
          jobs == 1 || result_fingerprint(r) == want;
      const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
      const double pps =
          ms > 0.0 ? 1000.0 * static_cast<double>(serial.points.size()) / ms
                   : 0.0;
      std::printf("%-12s %6d %10.2f %8.2fx %10.0f  %s\n", g.name().c_str(),
                  jobs, ms, speedup, pps, identical ? "yes" : "NO");
      if (!identical) {
        std::fprintf(stderr,
                     "error: %s with %d jobs diverged from the serial "
                     "sweep\n",
                     g.name().c_str(), jobs);
        return 1;
      }
      if (traj.active()) {
        obs::Json row = obs::Json::object();
        row["system"] = g.name();
        row["jobs"] = static_cast<std::int64_t>(jobs);
        row["ms"] = ms;
        row["speedup_vs_serial"] = speedup;
        row["points"] = static_cast<std::int64_t>(serial.points.size());
        row["points_per_sec"] = pps;
        rows.push_back(std::move(row));
      }
    }
  }
  if (traj.active()) traj.results()["scaling"] = std::move(rows);
  std::printf(
      "\nspeedup is serial wall-clock / parallel wall-clock (best of %d);\n"
      "'identical' checks the parallel sweep reproduced the serial points\n"
      "and frontier byte-for-byte.\n",
      repeat);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
