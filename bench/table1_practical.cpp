// Table 1 (Sec. 10.1): overall performance on practical examples.
//
// Columns mirror the paper: dppo/sdppo/mco/mcp/ffdur/ffstart under RPMC,
// the BMLB, the same six under APGAN, and the % improvement of the best
// shared implementation over the best non-shared DPPO result.
#include <cstdio>

#include "bench_util.h"
#include "pipeline/compile.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Table 1: shared vs non-shared buffer memory on practical systems\n"
      "(R = RPMC ordering, A = APGAN ordering)\n\n");
  std::printf(
      "%-14s %6s | %7s %7s %5s %5s %6s %7s | %5s | %7s %7s %5s %5s %6s %7s "
      "| %6s\n",
      "system", "actors", "dppoR", "sdppoR", "mcoR", "mcpR", "ffdurR",
      "ffstrtR", "bmlb", "dppoA", "sdppoA", "mcoA", "mcpA", "ffdurA",
      "ffstrtA", "impr%");

  bench::JsonTrajectory traj("table1_practical");
  obs::Json rows = obs::Json::array();
  double improvement_sum = 0.0;
  double improvement_max = 0.0;
  int count = 0;
  for (const Graph& g : bench::table1_systems()) {
    // Per-system DP allocation profile: counter deltas across this row's
    // compiles. chunk_allocs is the number of times the DP arena had to
    // grow (each one a heap allocation + dp_mem charge); oversize_chunks
    // is the dedicated-chunk fallback for requests beyond the doubling
    // curve. The dp-speedup CI gate asserts the steady-state hot loop
    // allocates nothing; these rows record what the cold path costs.
    const std::int64_t allocs0 = obs::counter("dp.arena.allocs");
    const std::int64_t chunks0 = obs::counter("dp.arena.chunk_allocs");
    const std::int64_t oversize0 = obs::counter("dp.arena.oversize_chunks");
    const Table1Row row = table1_row(g);
    if (traj.active()) {
      obs::Json r = obs::Json::object();
      r["system"] = row.system;
      r["actors"] = static_cast<std::int64_t>(g.num_actors());
      r["best_nonshared"] = row.best_nonshared();
      r["best_shared"] = row.best_shared();
      r["bmlb"] = row.bmlb;
      r["improvement_percent"] = row.improvement_percent();
      r["dp_arena_allocs"] = obs::counter("dp.arena.allocs") - allocs0;
      r["dp_arena_chunk_allocs"] =
          obs::counter("dp.arena.chunk_allocs") - chunks0;
      r["dp_arena_oversize_chunks"] =
          obs::counter("dp.arena.oversize_chunks") - oversize0;
      r["dp_arena_high_water_bytes"] =
          obs::gauge_value("dp.arena.high_water_bytes");
      rows.push_back(std::move(r));
    }
    std::printf(
        "%-14s %6zu | %7lld %7lld %5lld %5lld %6lld %7lld | %5lld | %7lld "
        "%7lld %5lld %5lld %6lld %7lld | %5.1f%%\n",
        row.system.c_str(), g.num_actors(),
        static_cast<long long>(row.dppo_r),
        static_cast<long long>(row.sdppo_r),
        static_cast<long long>(row.mco_r), static_cast<long long>(row.mcp_r),
        static_cast<long long>(row.ffdur_r),
        static_cast<long long>(row.ffstart_r),
        static_cast<long long>(row.bmlb),
        static_cast<long long>(row.dppo_a),
        static_cast<long long>(row.sdppo_a),
        static_cast<long long>(row.mco_a), static_cast<long long>(row.mcp_a),
        static_cast<long long>(row.ffdur_a),
        static_cast<long long>(row.ffstart_a), row.improvement_percent());
    improvement_sum += row.improvement_percent();
    improvement_max = std::max(improvement_max, row.improvement_percent());
    ++count;
  }
  std::printf(
      "\naverage improvement: %.1f%%   max: %.1f%%\n"
      "paper reference: average >50%%, max 83%% (qmf12_5d); satrec shared "
      "991 vs non-shared 1542.\n",
      improvement_sum / count, improvement_max);
  if (traj.active()) {
    traj.results()["rows"] = std::move(rows);
    traj.results()["average_improvement"] = improvement_sum / count;
    traj.results()["max_improvement"] = improvement_max;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
