// Sec. 11.1.3: static SAS vs dynamic (demand-driven / EDF-style)
// scheduling. The paper's satellite-receiver data points: EDF non-shared
// 1599, EDF shared ~1101, vs static SAS 1542 non-shared / 991 shared.
// Here: the greedy data-driven scheduler's per-edge-optimal buffering and
// its pooled (max-live-tokens) requirement, against the SAS pipeline, plus
// the schedule-length price a dynamic scheduler pays.
#include <cstdio>

#include "bench_util.h"
#include "graphs/cddat.h"
#include "pipeline/compile.h"
#include "sched/bounds.h"
#include "sched/demand_driven.h"
#include "sdf/repetitions.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Static SAS vs dynamic demand-driven scheduling\n\n"
      "%-14s | %9s %9s %9s | %9s %9s %10s | %8s\n",
      "system", "sasNonSh", "sasShare", "sasFire", "dynNonSh", "dynPool",
      "dynFire", "minBound");

  std::vector<Graph> systems = bench::table1_systems();
  systems.push_back(cd_to_dat());
  for (const Graph& g : systems) {
    const Repetitions q = repetitions_vector(g);
    const Table1Row row = table1_row(g);
    const CompileResult sas = compile(g);
    const DemandDrivenResult dynamic = demand_driven_schedule(g, q);
    std::printf("%-14s | %9lld %9lld %9lld | %9lld %9lld %10zu | %8lld\n",
                g.name().c_str(),
                static_cast<long long>(row.best_nonshared()),
                static_cast<long long>(row.best_shared()),
                static_cast<long long>(sas.schedule.total_firings()),
                static_cast<long long>(dynamic.buffer_memory),
                static_cast<long long>(dynamic.max_live_tokens),
                dynamic.firing_seq.size(),
                static_cast<long long>(min_buffer_any_schedule(g)));
  }
  std::printf(
      "\ndynNonSh hits the all-schedules per-edge bound on chains; the\n"
      "price is a schedule of sum(q) firings with no loop structure\n"
      "(paper: dynamic scheduling up to 2x slower at run time).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
