// Frozen pre-arena DP implementations, kept as the measurement baseline
// for bench/micro_scheduling.cpp: nested-vector prefix squares and
// tables, one SplitCosts oracle rebuilt per call — exactly the shape the
// production code had before the arena/structure-of-arrays rewrite
// (governor charges and telemetry stripped; neither side pays them
// here). The bench cross-checks every baseline result against the
// production implementation and exits non-zero on any divergence, so
// this copy cannot silently drift.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "sched/chain_dp.h"
#include "sched/dppo.h"
#include "sched/sas.h"
#include "sched/sdppo.h"
#include "sdf/graph.h"
#include "sdf/repetitions.h"

namespace sdf::bench::baseline {

using Prefix = std::vector<std::vector<std::int64_t>>;

template <typename WeightFn>
Prefix build_prefix(const Graph& g, const std::vector<ActorId>& order,
                    WeightFn&& weight) {
  const std::size_t n = order.size();
  std::vector<std::int32_t> pos(g.num_actors(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }
  Prefix prefix(n + 1, std::vector<std::int64_t>(n + 1, 0));
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    const auto ps =
        static_cast<std::size_t>(pos[static_cast<std::size_t>(edge.src)]);
    const auto pt =
        static_cast<std::size_t>(pos[static_cast<std::size_t>(edge.snk)]);
    prefix[ps + 1][pt + 1] += weight(static_cast<EdgeId>(e));
  }
  for (std::size_t a = 1; a <= n; ++a) {
    for (std::size_t b = 1; b <= n; ++b) {
      prefix[a][b] +=
          prefix[a - 1][b] + prefix[a][b - 1] - prefix[a - 1][b - 1];
    }
  }
  return prefix;
}

inline std::int64_t rect(const Prefix& prefix, std::size_t i, std::size_t k,
                         std::size_t j) {
  return prefix[k + 1][j + 1] - prefix[i][j + 1] - prefix[k + 1][k + 1] +
         prefix[i][k + 1];
}

/// The pre-rewrite oracle: three nested-vector prefix squares and a full
/// n x n gcd matrix, rebuilt from scratch for every DP call.
struct SplitCosts {
  SplitCosts(const Graph& g, const Repetitions& q,
             const std::vector<ActorId>& order)
      : n(order.size()),
        tnse_prefix(build_prefix(
            g, order, [&](EdgeId e) { return tnse(g, q, e); })),
        delay_prefix(build_prefix(
            g, order, [&](EdgeId e) { return g.edge(e).delay; })),
        count_prefix(build_prefix(g, order, [](EdgeId) { return 1; })) {
    gcd.assign(n, std::vector<std::int64_t>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t acc = 0;
      for (std::size_t j = i; j < n; ++j) {
        acc = std::gcd(acc, q[static_cast<std::size_t>(order[j])]);
        gcd[i][j] = acc;
      }
    }
  }

  std::int64_t cost(std::size_t i, std::size_t k, std::size_t j) const {
    return rect(tnse_prefix, i, k, j) / gcd[i][j] +
           rect(delay_prefix, i, k, j);
  }
  std::int64_t edge_count(std::size_t i, std::size_t k,
                          std::size_t j) const {
    return rect(count_prefix, i, k, j);
  }

  std::size_t n;
  Prefix tnse_prefix;
  Prefix delay_prefix;
  Prefix count_prefix;
  std::vector<std::vector<std::int64_t>> gcd;
};

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

inline DppoResult dppo(const Graph& g, const Repetitions& q,
                       const std::vector<ActorId>& order) {
  const std::size_t n = order.size();
  const SplitCosts costs(g, q, order);
  std::vector<std::vector<std::int64_t>> b(
      n, std::vector<std::int64_t>(n, 0));
  SplitTable splits;
  splits.at.assign(n, std::vector<std::size_t>(n, 0));
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      std::int64_t best = kInf;
      std::size_t best_k = i;
      for (std::size_t k = i; k < j; ++k) {
        const std::int64_t total =
            b[i][k] + b[k + 1][j] + costs.cost(i, k, j);
        if (total < best) {
          best = total;
          best_k = k;
        }
      }
      b[i][j] = best;
      splits.at[i][j] = best_k;
    }
  }
  DppoResult result;
  result.cost = n >= 2 ? b[0][n - 1] : 0;
  result.splits = splits;
  result.schedule = schedule_from_splits(g, q, order, splits);
  return result;
}

inline SdppoResult sdppo(const Graph& g, const Repetitions& q,
                         const std::vector<ActorId>& order) {
  const std::size_t n = order.size();
  const SplitCosts costs(g, q, order);
  std::vector<std::vector<std::int64_t>> b(
      n, std::vector<std::int64_t>(n, 0));
  SplitTable splits;
  splits.at.assign(n, std::vector<std::size_t>(n, 0));
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      std::int64_t best = kInf;
      std::int64_t best_edges = kInf;
      std::size_t best_k = i;
      for (std::size_t k = i; k < j; ++k) {
        const std::int64_t total =
            std::max(b[i][k], b[k + 1][j]) + costs.cost(i, k, j);
        const std::int64_t edges = costs.edge_count(i, k, j);
        if (total < best || (total == best && edges < best_edges)) {
          best = total;
          best_edges = edges;
          best_k = k;
        }
      }
      b[i][j] = best;
      splits.at[i][j] = best_k;
    }
  }
  SdppoResult result;
  result.estimate = n >= 2 ? b[0][n - 1] : 0;
  result.splits = splits;
  result.schedule = schedule_from_splits(
      g, q, order, splits,
      [&](std::size_t i, std::size_t k, std::size_t j) {
        return costs.edge_count(i, k, j) > 0;
      });
  return result;
}

struct Entry {
  CostTriple t;
  std::size_t split = 0;
  std::size_t left_index = 0;
  std::size_t right_index = 0;
};

inline bool pareto_insert(std::vector<Entry>& set, const Entry& e,
                          std::size_t bound) {
  for (const Entry& existing : set) {
    if (existing.t.dominates(e.t)) return false;
  }
  std::erase_if(set, [&](const Entry& existing) {
    return e.t.dominates(existing.t);
  });
  set.push_back(e);
  if (set.size() > bound) {
    std::sort(set.begin(), set.end(), [](const Entry& a, const Entry& b) {
      if (a.t.cost != b.t.cost) return a.t.cost < b.t.cost;
      return a.t.left + a.t.right < b.t.left + b.t.right;
    });
    set.resize(bound);
    return true;
  }
  return false;
}

inline ChainDpResult chain_sdppo_exact(const Graph& g, const Repetitions& q,
                                       const std::vector<ActorId>& order,
                                       std::size_t max_incomparable) {
  const std::size_t n = order.size();
  const SplitCosts costs(g, q, order);
  ChainDpResult result;
  std::vector<std::vector<std::vector<Entry>>> table(
      n, std::vector<std::vector<Entry>>(n));
  for (std::size_t i = 0; i < n; ++i) {
    table[i][i].push_back(Entry{CostTriple{0, 0, 0}, i, 0, 0});
  }
  result.max_pareto_width = 1;
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      const std::int64_t gij = costs.gcd[i][j];
      auto& cell = table[i][j];
      for (std::size_t k = i; k < j; ++k) {
        const std::int64_t c = costs.cost(i, k, j);
        const std::int64_t rl = costs.gcd[i][k] / gij;
        const std::int64_t rr = costs.gcd[k + 1][j] / gij;
        const auto& lcell = table[i][k];
        const auto& rcell = table[k + 1][j];
        for (std::size_t li = 0; li < lcell.size(); ++li) {
          for (std::size_t ri = 0; ri < rcell.size(); ++ri) {
            Entry e;
            e.t = combine_triples(lcell[li].t, rcell[ri].t, c, rl, rr);
            e.split = k;
            e.left_index = li;
            e.right_index = ri;
            result.truncated |= pareto_insert(cell, e, max_incomparable);
          }
        }
      }
      result.max_pareto_width =
          std::max(result.max_pareto_width, cell.size());
    }
  }
  const auto& top = table[0][n - 1];
  std::size_t best = 0;
  for (std::size_t e = 1; e < top.size(); ++e) {
    if (top[e].t.cost < top[best].t.cost) best = e;
  }
  result.estimate = n >= 2 ? top[best].t.cost : 0;
  result.pareto.reserve(top.size());
  for (const Entry& e : top) result.pareto.push_back(e.t);
  auto build = [&](auto&& self, std::size_t i, std::size_t j,
                   std::size_t entry, std::int64_t divisor) -> Schedule {
    if (i == j) {
      return Schedule::leaf(
          order[i], q[static_cast<std::size_t>(order[i])] / divisor);
    }
    const Entry& e = table[i][j][entry];
    const std::int64_t gij = costs.gcd[i][j];
    Schedule body = Schedule::sequence(
        {self(self, i, e.split, e.left_index, gij),
         self(self, e.split + 1, j, e.right_index, gij)});
    body.set_count(gij / divisor);
    return body;
  };
  result.schedule = build(build, 0, n - 1, best, 1).normalized();
  return result;
}

}  // namespace sdf::bench::baseline
