// Allocation-strategy ablation: first-fit vs best-fit across enumeration
// orders, against the MCW lower bound and (when tractable) the exact
// branch-and-bound optimum — quantifying the paper's reliance on [20]'s
// "first-fit by duration is near-optimal in practice".
#include <cstdio>
#include <string>

#include "alloc/clique.h"
#include "alloc/first_fit.h"
#include "alloc/optimal_dsa.h"
#include "bench_util.h"
#include "lifetime/schedule_tree.h"
#include "pipeline/compile.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Allocator ablation (all on the RPMC+sdppo schedule's lifetimes)\n\n"
      "%-14s %7s %7s %7s %7s %7s %7s %8s %8s\n",
      "system", "ffdur", "ffstart", "ffwidth", "bfdur", "bfstart", "bfwidth",
      "mcwOpt", "optimal");
  for (const Graph& g : bench::table1_systems()) {
    const CompileResult res = compile(g);
    auto ff = [&](FirstFitOrder order) {
      return first_fit(res.wig, res.lifetimes, order).total_size;
    };
    auto bf = [&](FirstFitOrder order) {
      return best_fit(res.wig, res.lifetimes, order).total_size;
    };
    const auto exact = optimal_allocation(res.wig, /*max_buffers=*/16,
                                          /*node_budget=*/500000);
    const std::string exact_text =
        exact ? std::to_string(exact->total_size) : "-";
    std::printf("%-14s %7lld %7lld %7lld %7lld %7lld %7lld %8lld %8s\n",
                g.name().c_str(),
                static_cast<long long>(ff(FirstFitOrder::kByDuration)),
                static_cast<long long>(ff(FirstFitOrder::kByStartTime)),
                static_cast<long long>(ff(FirstFitOrder::kByWidth)),
                static_cast<long long>(bf(FirstFitOrder::kByDuration)),
                static_cast<long long>(bf(FirstFitOrder::kByStartTime)),
                static_cast<long long>(bf(FirstFitOrder::kByWidth)),
                static_cast<long long>(res.mcw_optimistic),
                exact_text.c_str());
  }
  std::printf("\n('-' = instance too large for the exact solver)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
