// Total memory = code size + buffer memory (the paper's Sec. 3
// motivation and the Sec. 11.1.4/11.2 trade-offs in one table): for each
// system, four implementation styles compared under a uniform code-size
// model:
//   flat SAS, nested (sdppo) SAS, n-appearance relaxation (+64 blocks),
//   and the fully dynamic demand-driven sequence compacted by the optimal
//   looping DP when it fits.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "codegen/code_size.h"
#include "pipeline/compile.h"
#include "sched/demand_driven.h"
#include "sched/loop_compaction.h"
#include "sched/nappearance.h"
#include "sched/sas.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "code+buffer trade-off (uniform 10-unit blocks, inline model)\n\n"
      "%-14s | %6s %6s | %6s %6s | %6s %6s | %7s %7s\n",
      "system", "flatC", "flatB", "nestC", "nestB", "napC", "napB", "dynC",
      "dynB");
  for (const Graph& g : bench::table1_systems()) {
    const Repetitions q = repetitions_vector(g);
    const CodeSizeModel model = CodeSizeModel::uniform(g, 10);

    CompileOptions flat_opts;
    flat_opts.optimizer = LoopOptimizer::kFlat;
    const CompileResult flat = compile(g, flat_opts);
    const CompileResult nested = compile(g);
    const NAppearanceResult nap =
        relax_appearances(g, q, nested.schedule, 64);
    const DemandDrivenResult dynamic = demand_driven_schedule(g, q);

    std::string dyn_code = "-";
    if (dynamic.firing_seq.size() <= 1024) {
      const CompactionResult compacted =
          compact_firing_sequence(dynamic.firing_seq);
      dyn_code = std::to_string(inline_code_size(compacted.schedule, model));
    }
    std::printf(
        "%-14s | %6lld %6lld | %6lld %6lld | %6lld %6lld | %7s %7lld\n",
        g.name().c_str(),
        static_cast<long long>(inline_code_size(flat.schedule, model)),
        static_cast<long long>(flat.nonshared_bufmem),
        static_cast<long long>(inline_code_size(nested.schedule, model)),
        static_cast<long long>(nested.nonshared_bufmem),
        static_cast<long long>(inline_code_size(nap.schedule, model)),
        static_cast<long long>(nap.buffer_memory), dyn_code.c_str(),
        static_cast<long long>(dynamic.buffer_memory));
  }
  std::printf(
      "\nC = inline code units, B = non-shared buffer tokens; '-' = firing\n"
      "sequence too long for the optimal looping DP.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
