// Engineering micro-benchmarks: scheduling-stage throughput as graph size
// grows (not a paper experiment; documents the polynomial running times
// claimed in Secs. 6-9).
#include <benchmark/benchmark.h>

#include "graphs/filterbank.h"
#include "sched/apgan.h"
#include "sched/chain_dp.h"
#include "sched/dppo.h"
#include "sched/rpmc.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "sdf/repetitions.h"

namespace {

using namespace sdf;

void BM_Repetitions(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(repetitions_vector(g));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_Repetitions)->DenseRange(2, 6);

void BM_Apgan(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apgan(g, q));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_Apgan)->DenseRange(2, 6);

void BM_Rpmc(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpmc(g, q));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_Rpmc)->DenseRange(2, 6);

void BM_Dppo(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  const auto order = *topological_sort(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dppo(g, q, order));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_Dppo)->DenseRange(2, 6);

void BM_Sdppo(benchmark::State& state) {
  const Graph g = qmf12(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  const auto order = *topological_sort(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdppo(g, q, order));
  }
  state.SetLabel(std::to_string(g.num_actors()) + " actors");
}
BENCHMARK(BM_Sdppo)->DenseRange(2, 6);

Graph long_chain(int n) {
  Graph g("chain" + std::to_string(n));
  ActorId prev = g.add_actor("x0");
  for (int i = 1; i < n; ++i) {
    const ActorId cur = g.add_actor("x" + std::to_string(i));
    g.add_edge(prev, cur, 1 + i % 3, 1 + (i * 2) % 4);
    prev = cur;
  }
  return g;
}

void BM_ChainDpExact(benchmark::State& state) {
  const Graph g = long_chain(static_cast<int>(state.range(0)));
  const Repetitions q = repetitions_vector(g);
  const auto order = *chain_order(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain_sdppo_exact(g, q, order));
  }
}
BENCHMARK(BM_ChainDpExact)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
