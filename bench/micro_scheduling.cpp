// DP hot-path speedup bench: the arena-pooled, structure-of-arrays DP
// stack (sched/dppo, sdppo, chain_dp + util/arena) measured in-process
// against the frozen pre-rewrite implementation (dp_baseline.h) on the
// paper's practical systems and long chains.
//
// Two workloads per system:
//   estimate — the DP cost-scoring pass orderings searches run per
//     candidate (sched/rpmc.h multistart): before the rewrite that was a
//     full dppo()+sdppo() call per score (oracle rebuilt, schedule built
//     and thrown away); now it is dppo_cost()+sdppo_estimate() on a warm
//     arena with a shared SplitCosts slab. This is the gated headline.
//   full — the complete DP trio including schedule reconstruction
//     (dppo + sdppo + exact chain DP), reported for context; schedule
//     building is shared verbatim by both sides so its speedup is
//     structurally smaller.
//
// Contract (gated by the dp-speedup CI job):
//   - every baseline result is byte-identical to the production result
//     (cost, estimate, schedule string) — any divergence exits non-zero;
//   - the production DP makes ZERO allocations in steady state: after the
//     warm-up iteration the per-compile arena acquires no further chunks
//     (steady_chunk_allocs == 0 in every row);
//   - the estimate-path geometric-mean speedup over the practical systems
//     stays >= 5x. The chain32/chain64 rows are stress rows: at those
//     sizes both sides stream whole cache lines per inner k-iteration, so
//     the honest ceiling is bandwidth-bound (~3x); they are reported and
//     divergence-checked but excluded from the gated geomean.
//
// Configure with SDFMEM_BENCH_REPEAT (timed iterations per workload) and
// SDFMEM_BENCH_JSON (trajectory file with per-workload rows).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dp_baseline.h"
#include "graphs/satellite.h"
#include "sched/chain_dp.h"
#include "sched/dppo.h"
#include "sched/sdppo.h"
#include "sdf/analysis.h"
#include "sdf/repetitions.h"
#include "util/arena.h"

namespace {

using namespace sdf;

constexpr std::size_t kParetoBound = 32;

Graph long_chain(int n) {
  Graph g("chain" + std::to_string(n));
  ActorId prev = g.add_actor("x0");
  for (int i = 1; i < n; ++i) {
    const ActorId cur = g.add_actor("x" + std::to_string(i));
    g.add_edge(prev, cur, 1 + i % 3, 1 + (i * 2) % 4);
    prev = cur;
  }
  return g;
}

/// One DP-trio pass over the baseline implementation: oracle rebuilt per
/// call, nested-vector tables — what every compile paid before the arena.
std::int64_t run_baseline(const Graph& g, const Repetitions& q,
                          const std::vector<ActorId>& order) {
  const DppoResult d = bench::baseline::dppo(g, q, order);
  const SdppoResult s = bench::baseline::sdppo(g, q, order);
  const ChainDpResult c =
      bench::baseline::chain_sdppo_exact(g, q, order, kParetoBound);
  return d.cost + s.estimate + c.estimate;
}

/// The production hot path as the pipeline runs it: a warm per-compile
/// arena rewound between runs and the per-ordering SplitCosts slab shared
/// across calls (pipeline/explore_cache.h).
std::int64_t run_arena(const Graph& g, const Repetitions& q,
                       const std::vector<ActorId>& order, util::Arena& a,
                       const SplitCosts& slab) {
  const DppoResult d = dppo(g, q, order, &a, &slab);
  const SdppoResult s = sdppo(g, q, order, &a, &slab);
  const ChainDpResult c =
      chain_sdppo_exact(g, q, order, kParetoBound, &a, &slab);
  return d.cost + s.estimate + c.estimate;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The pre-rewrite candidate-scoring call (sched/rpmc.h multistart): a
/// full sdppo() whose schedule is discarded, oracle rebuilt inside.
std::int64_t score_baseline(const Graph& g, const Repetitions& q,
                            const std::vector<ActorId>& order) {
  return bench::baseline::sdppo(g, q, order).estimate;
}

/// The production scoring call: estimate-only SDPPO on a warm arena with
/// a shared split-cost slab.
std::int64_t score_arena(const Graph& g, const Repetitions& q,
                         const std::vector<ActorId>& order, util::Arena& a,
                         const SplitCosts& slab) {
  return sdppo_estimate(g, q, order, &a, &slab);
}

struct Row {
  std::string system;
  std::string mode;  // "estimate" (gated) or "full" (informative)
  std::size_t actors = 0;
  double baseline_ns = 0;
  double arena_ns = 0;
  double speedup = 0;
  std::int64_t high_water = 0;
  std::int64_t steady_chunk_allocs = 0;
  std::int64_t oversize_chunks = 0;
};

int run() {
  const int repeat = bench::env_int("SDFMEM_BENCH_REPEAT", 300);
  std::printf(
      "DP hot path: arena/SoA rewrite vs frozen pre-arena baseline\n"
      "(estimate = ordering-search scoring pass, dppo+sdppo values only;\n"
      " full = dppo + sdppo + exact chain DP including schedules;\n"
      " %d timed iterations per system)\n\n",
      repeat);
  std::printf("%-16s %-8s %6s | %12s %12s %8s | %10s %7s %8s\n", "system",
              "mode", "actors", "baseline/it", "arena/it", "speedup",
              "highwater", "chunks", "oversize");

  struct System {
    Graph graph;
    bool stress;  // reported + divergence-checked, excluded from the gate
  };
  std::vector<System> systems;
  systems.push_back({nqmf23(2), false});
  systems.push_back({qmf23(2), false});
  systems.push_back({qmf235(2), false});
  systems.push_back({qmf12(3), false});
  systems.push_back({nqmf23(4), false});
  systems.push_back({satellite_receiver(), false});
  systems.push_back({long_chain(16), false});
  systems.push_back({long_chain(32), true});
  systems.push_back({long_chain(64), true});

  bench::JsonTrajectory traj("micro_scheduling");
  obs::Json rows = obs::Json::array();
  double est_log_speedup_sum = 0.0;
  double est_min_speedup = 0.0;
  std::size_t est_rows = 0;
  double full_log_speedup_sum = 0.0;
  std::size_t full_rows = 0;
  int divergences = 0;
  std::int64_t steady_chunk_allocs_total = 0;

  for (const System& sys : systems) {
    const Graph& g = sys.graph;
    const Repetitions q = repetitions_vector(g);
    const std::vector<ActorId> order = *topological_sort(g);

    // Divergence check first: the baseline copy must still agree with
    // production byte-for-byte (full results AND the estimate-only entry
    // points), or the speedups below are meaningless.
    {
      const DppoResult bd = bench::baseline::dppo(g, q, order);
      const DppoResult pd = dppo(g, q, order);
      const SdppoResult bs = bench::baseline::sdppo(g, q, order);
      const SdppoResult ps = sdppo(g, q, order);
      const ChainDpResult bc =
          bench::baseline::chain_sdppo_exact(g, q, order, kParetoBound);
      const ChainDpResult pc =
          chain_sdppo_exact(g, q, order, kParetoBound);
      if (bd.cost != pd.cost ||
          bd.schedule.to_string(g) != pd.schedule.to_string(g) ||
          bs.estimate != ps.estimate ||
          bs.schedule.to_string(g) != ps.schedule.to_string(g) ||
          bc.estimate != pc.estimate ||
          bc.schedule.to_string(g) != pc.schedule.to_string(g) ||
          dppo_cost(g, q, order) != bd.cost ||
          sdppo_estimate(g, q, order) != bs.estimate) {
        std::fprintf(stderr,
                     "DIVERGENCE on %s: baseline and arena DP disagree\n",
                     g.name().c_str());
        ++divergences;
        continue;
      }
    }

    util::Arena arena("bench.micro_scheduling");
    const SplitCosts slab(g, q, order);
    std::int64_t sink = 0;

    // Times one workload mode: warm-up populates the arena's chunk list,
    // then steady state must run entirely inside it. The `repeat`
    // iterations are split into blocks and each side reports its BEST
    // block: scheduling noise on a shared machine only ever adds time, so
    // the per-block minimum estimates the uncontended rate.
    const auto measure = [&](const char* mode, auto&& arena_fn,
                             auto&& baseline_fn) {
      constexpr int kBlocks = 50;
      const int block = std::max(1, repeat / kBlocks);

      {
        const util::Arena::Scope scope(arena);
        sink += arena_fn();
      }
      const std::int64_t chunks_warm = arena.stats().chunk_allocs;

      std::int64_t arena_best = std::numeric_limits<std::int64_t>::max();
      std::int64_t baseline_best = arena_best;
      for (int b = 0; b < kBlocks; ++b) {
        const std::int64_t arena_start = now_ns();
        for (int it = 0; it < block; ++it) {
          const util::Arena::Scope scope(arena);
          sink += arena_fn();
        }
        arena_best = std::min(arena_best, now_ns() - arena_start);

        const std::int64_t baseline_start = now_ns();
        for (int it = 0; it < block; ++it) {
          sink += baseline_fn();
        }
        baseline_best = std::min(baseline_best, now_ns() - baseline_start);
      }

      Row row;
      row.system = g.name();
      row.mode = mode;
      row.actors = g.num_actors();
      row.baseline_ns = static_cast<double>(baseline_best) / block;
      row.arena_ns = static_cast<double>(arena_best) / block;
      row.speedup = row.baseline_ns / row.arena_ns;
      row.high_water = arena.stats().high_water;
      row.steady_chunk_allocs = arena.stats().chunk_allocs - chunks_warm;
      row.oversize_chunks = arena.stats().oversize_chunks;
      return row;
    };

    const Row est = measure(
        "estimate",
        [&] { return score_arena(g, q, order, arena, slab); },
        [&] { return score_baseline(g, q, order); });
    const Row full = measure(
        "full",
        [&] { return run_arena(g, q, order, arena, slab); },
        [&] { return run_baseline(g, q, order); });
    if (sink == 42) std::printf(" ");  // keep `sink` observable

    for (const Row& row : {est, full}) {
      steady_chunk_allocs_total += row.steady_chunk_allocs;
      if (row.mode == "estimate" && !sys.stress) {
        est_log_speedup_sum += std::log(row.speedup);
        est_min_speedup = est_min_speedup == 0.0
                              ? row.speedup
                              : std::min(est_min_speedup, row.speedup);
        ++est_rows;
      } else if (row.mode == "full") {
        full_log_speedup_sum += std::log(row.speedup);
        ++full_rows;
      }
      std::printf(
          "%-16s %-8s %6zu | %10.0fns %10.0fns %7.2fx | %10lld %7lld %8lld\n",
          row.system.c_str(), row.mode.c_str(), row.actors, row.baseline_ns,
          row.arena_ns, row.speedup,
          static_cast<long long>(row.high_water),
          static_cast<long long>(row.steady_chunk_allocs),
          static_cast<long long>(row.oversize_chunks));

      if (traj.active()) {
        obs::Json r = obs::Json::object();
        r["system"] = row.system;
        r["mode"] = row.mode;
        r["stress"] = sys.stress;
        r["actors"] = static_cast<std::int64_t>(row.actors);
        r["baseline_ns_per_iter"] = row.baseline_ns;
        r["arena_ns_per_iter"] = row.arena_ns;
        r["speedup"] = row.speedup;
        r["arena_high_water_bytes"] = row.high_water;
        r["steady_chunk_allocs"] = row.steady_chunk_allocs;
        r["oversize_chunks"] = row.oversize_chunks;
        rows.push_back(std::move(r));
      }
    }
  }

  const double est_geomean =
      est_rows > 0
          ? std::exp(est_log_speedup_sum / static_cast<double>(est_rows))
          : 0.0;
  const double full_geomean =
      full_rows > 0
          ? std::exp(full_log_speedup_sum / static_cast<double>(full_rows))
          : 0.0;
  std::printf(
      "\nestimate-path geomean speedup (practical systems): %.2fx   "
      "min: %.2fx   (gated >= 5x; chain32/64 are ungated stress rows)\n"
      "full-trio geomean speedup: %.2fx   (informative)\n"
      "steady-state chunk allocations: %lld (must be 0)\n",
      est_geomean, est_min_speedup, full_geomean,
      static_cast<long long>(steady_chunk_allocs_total));

  if (traj.active()) {
    traj.results()["rows"] = std::move(rows);
    traj.results()["estimate_geomean_speedup"] = est_geomean;
    traj.results()["estimate_min_speedup"] = est_min_speedup;
    traj.results()["full_geomean_speedup"] = full_geomean;
    traj.results()["steady_chunk_allocs_total"] = steady_chunk_allocs_total;
    traj.results()["divergences"] =
        static_cast<std::int64_t>(divergences);
  }
  if (divergences > 0) {
    std::fprintf(stderr, "%d workload(s) diverged\n", divergences);
    return 1;
  }
  if (steady_chunk_allocs_total != 0) {
    std::fprintf(stderr,
                 "steady-state DP made %lld chunk allocations; the hot "
                 "path must be allocation-free\n",
                 static_cast<long long>(steady_chunk_allocs_total));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
