// Fig. 27 (Sec. 10.3): experiments on random SDF graphs.
//
// For each graph size in {20, 50, 100, 150}, N random consistent acyclic
// graphs (default 100, override with SDFMEM_RANDOM_GRAPHS) are compiled
// with RPMC and APGAN orderings; the charts (a)-(f) of the paper become
// columns here:
//   (a) average % improvement of best shared over best non-shared
//   (b) average % by which the allocation exceeds the optimistic MCW
//   (c) average % by which the pessimistic MCW exceeds the allocation
//   (d) average % difference between best allocation and best sdppo
//       estimate
//   (e) average % by which the RPMC allocation beats the APGAN allocation
//   (f) fraction of graphs where RPMC beats APGAN
#include <algorithm>
#include <cstdio>
#include <limits>
#include <random>

#include "alloc/first_fit.h"
#include "bench_util.h"
#include "graphs/random_sdf.h"
#include "pipeline/compile.h"

namespace {

struct PerGraph {
  std::int64_t nonshared = 0;   // best dppo
  std::int64_t shared = 0;      // best allocation
  std::int64_t shared_rpmc = 0;
  std::int64_t shared_apgan = 0;
  std::int64_t mco = 0, mcp = 0;  // for the best shared configuration
  std::int64_t sdppo_best = 0;
};

PerGraph evaluate(const sdf::Graph& g) {
  using namespace sdf;
  PerGraph out;
  out.nonshared = std::numeric_limits<std::int64_t>::max();
  out.sdppo_best = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_shared = std::numeric_limits<std::int64_t>::max();
  for (const OrderHeuristic order :
       {OrderHeuristic::kRpmc, OrderHeuristic::kApgan}) {
    CompileOptions opts;
    opts.order = order;
    opts.optimizer = LoopOptimizer::kDppo;
    out.nonshared = std::min(out.nonshared, compile(g, opts).nonshared_bufmem);

    opts.optimizer = LoopOptimizer::kSdppo;
    const CompileResult res = compile(g, opts);
    const std::int64_t ffstart =
        first_fit(res.wig, res.lifetimes, FirstFitOrder::kByStartTime)
            .total_size;
    const std::int64_t shared = std::min(res.shared_size, ffstart);
    (order == OrderHeuristic::kRpmc ? out.shared_rpmc : out.shared_apgan) =
        shared;
    out.sdppo_best = std::min(out.sdppo_best, res.dp_estimate);
    if (shared < best_shared) {
      best_shared = shared;
      out.mco = res.mcw_optimistic;
      out.mcp = res.mcw_pessimistic;
    }
  }
  out.shared = best_shared;
  return out;
}

}  // namespace

namespace {

int run() {
  using namespace sdf;
  const int graphs_per_size = bench::env_int("SDFMEM_RANDOM_GRAPHS", 100);
  std::printf("Fig. 27: random-graph study (%d graphs per size)\n\n",
              graphs_per_size);

  std::mt19937 rng(20000301);
  for (const RandomRateMode mode : {RandomRateMode::kBoundedRepetitions,
                                    RandomRateMode::kCompoundingRates}) {
  std::printf("-- %s generator --\n%6s %8s %8s %8s %8s %8s %8s\n",
              mode == RandomRateMode::kBoundedRepetitions
                  ? "bounded-repetition"
                  : "compounding-rate",
              "nodes", "(a)impr%", "(b)>mco%", "(c)mcp>%", "(d)dp-d%",
              "(e)R>A%", "(f)Rwin%");
  for (const int size : {20, 50, 100, 150}) {
    double impr = 0, over_mco = 0, mcp_over = 0, dp_diff = 0, margin = 0;
    int rpmc_wins = 0, ties = 0;
    for (int i = 0; i < graphs_per_size; ++i) {
      RandomSdfOptions options;
      options.num_actors = size;
      options.rate_mode = mode;
      const Graph g = random_sdf_graph(options, rng);
      const PerGraph r = evaluate(g);
      impr += 100.0 * (r.nonshared - r.shared) / r.nonshared;
      if (r.mco > 0) over_mco += 100.0 * (r.shared - r.mco) / r.mco;
      if (r.shared > 0) mcp_over += 100.0 * (r.mcp - r.shared) / r.shared;
      if (r.sdppo_best > 0) {
        dp_diff += 100.0 *
                   std::abs(static_cast<double>(r.shared - r.sdppo_best)) /
                   static_cast<double>(r.sdppo_best);
      }
      if (r.shared_apgan > 0) {
        margin += 100.0 * (r.shared_apgan - r.shared_rpmc) /
                  static_cast<double>(r.shared_apgan);
      }
      if (r.shared_rpmc < r.shared_apgan) ++rpmc_wins;
      if (r.shared_rpmc == r.shared_apgan) ++ties;
    }
    const double n = graphs_per_size;
    std::printf("%6d %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n", size, impr / n,
                over_mco / n, mcp_over / n, dp_diff / n, margin / n,
                100.0 * rpmc_wins / n);
  }
  std::printf("\n");
  }
  std::printf(
      "\npaper reference: (a) drops from ~20%% at 20 nodes to ~5%% at "
      "100-150 nodes;\n(b,c) 2-4%%; (d) <0.5%%; (f) RPMC wins 52-60%%.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
