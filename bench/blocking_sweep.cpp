// Blocking-factor (vectorization) sweep: scheduling J minimal periods per
// iteration amortizes loop overhead at the cost of buffer memory. The
// sweep quantifies the trade on the practical suite — the engineering
// counterpart to the paper's code-size-first philosophy.
#include <cstdio>

#include "bench_util.h"
#include "codegen/code_size.h"
#include "pipeline/compile.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "blocking sweep: shared pool tokens (and loop iterations per minimal "
      "period)\n\n"
      "%-14s | %12s %12s %12s %12s\n",
      "system", "J=1", "J=2", "J=4", "J=8");
  for (const Graph& g : bench::table1_systems()) {
    std::printf("%-14s |", g.name().c_str());
    for (const std::int64_t j : {1, 2, 4, 8}) {
      CompileOptions opts;
      opts.blocking_factor = j;
      const CompileResult res = compile(g, opts);
      // Loop-iteration proxy: schedule steps executed per minimal period.
      const std::int64_t steps = res.schedule.total_firings() / j;
      std::printf(" %6lld/%-5lld", static_cast<long long>(res.shared_size),
                  static_cast<long long>(steps));
    }
    std::printf("\n");
  }
  std::printf(
      "\nshared memory grows roughly linearly in J while the firings per\n"
      "minimal period stay fixed — blocking pays only when per-iteration\n"
      "control overhead (not modeled here) dominates.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
