// Sec. 10.2 / Fig. 26: homogeneous M x N meshes. Shared allocation reaches
// M+1 locations for every M and N while any non-shared implementation
// needs M(N+1); loop scheduling alone cannot help homogeneous graphs.
#include <algorithm>
#include <cstdio>

#include "alloc/first_fit.h"
#include "bench_util.h"
#include "graphs/homogeneous.h"
#include "pipeline/compile.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Homogeneous mesh study (Fig. 26)\n\n"
      "%4s %4s %12s %8s %14s %11s %8s\n",
      "M", "N", "non-shared", "shared", "paper M(N+1)", "paper M+1", "ok");
  bool all_match = true;
  for (int m : {2, 3, 4, 6, 8, 12}) {
    for (int n : {2, 3, 4, 8, 16}) {
      const Graph g = homogeneous_mesh(m, n);
      CompileOptions opts;
      opts.order = OrderHeuristic::kTopological;
      const CompileResult res = compile(g, opts);
      const std::int64_t shared = std::min(
          res.shared_size,
          first_fit(res.wig, res.lifetimes, FirstFitOrder::kByStartTime)
              .total_size);
      const bool match = shared == homogeneous_mesh_shared(m) &&
                         res.nonshared_bufmem ==
                             homogeneous_mesh_nonshared(m, n);
      all_match &= match;
      std::printf("%4d %4d %12lld %8lld %14lld %11lld %8s\n", m, n,
                  static_cast<long long>(res.nonshared_bufmem),
                  static_cast<long long>(shared),
                  static_cast<long long>(homogeneous_mesh_nonshared(m, n)),
                  static_cast<long long>(homogeneous_mesh_shared(m)),
                  match ? "yes" : "NO");
    }
  }
  std::printf("\n%s\n", all_match
                            ? "all entries match the paper's closed forms"
                            : "MISMATCH against the paper's closed forms");
  return all_match ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
