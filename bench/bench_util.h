// Shared helpers for the experiment drivers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "sdf/diagnostics.h"

#include "graphs/filterbank.h"
#include "graphs/ptolemy.h"
#include "graphs/satellite.h"
#include "obs/counters.h"
#include "obs/json_report.h"
#include "obs/trace.h"
#include "sdf/graph.h"

namespace sdf::bench {

/// The practical benchmark suite of Table 1 (filterbank depths follow the
/// paper's naming: qmf<rates>_<depth>d).
inline std::vector<Graph> table1_systems() {
  std::vector<Graph> systems;
  systems.push_back(nqmf23(2));
  systems.push_back(nqmf23(4));
  systems.push_back(one_sided_filterbank(4, kRates12, "nqmf12_4d"));
  systems.push_back(qmf23(2));
  systems.push_back(qmf235(2));
  systems.push_back(qmf12(2));
  systems.push_back(qmf23(3));
  systems.push_back(qmf235(3));
  systems.push_back(qmf12(3));
  systems.push_back(qmf23(4));
  systems.push_back(qmf12(4));
  systems.push_back(qmf12(5));
  systems.push_back(qmf235(5));
  systems.push_back(satellite_receiver());
  systems.push_back(modem_16qam());
  systems.push_back(pam4_xmitrec());
  systems.push_back(block_vox());
  systems.push_back(overlap_add_fft());
  systems.push_back(phased_array());
  return systems;
}

/// Environment-variable override for experiment sizes, e.g.
/// SDFMEM_RANDOM_GRAPHS=20 ./fig27_random for a quick run.
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Opt-in JSON trajectory for a bench driver, sharing the CLI's
/// `sdfmem.telemetry.v1` schema (docs/OBSERVABILITY.md) so BENCH_*.json
/// files stay comparable across PRs.
///
/// When $SDFMEM_BENCH_JSON names a file, construction enables telemetry
/// for the whole run and destruction writes the report (spans + counters +
/// gauges + whatever the driver put into results()) to that file. When the
/// variable is unset this is a no-op and the bench's stdout is
/// byte-identical to an uninstrumented run.
class JsonTrajectory {
 public:
  explicit JsonTrajectory(std::string tool) : tool_(std::move(tool)) {
    const char* path = std::getenv("SDFMEM_BENCH_JSON");
    if (path != nullptr && *path != '\0') {
      path_ = path;
      obs::set_enabled(true);
      obs::reset();
    }
    results_ = obs::Json::object();
  }

  JsonTrajectory(const JsonTrajectory&) = delete;
  JsonTrajectory& operator=(const JsonTrajectory&) = delete;

  /// True when a report will be written (drivers can skip building rows
  /// otherwise).
  [[nodiscard]] bool active() const { return !path_.empty(); }

  /// Driver-specific payload, serialized under "results".
  [[nodiscard]] obs::Json& results() { return results_; }

  ~JsonTrajectory() {
    if (path_.empty()) return;
    obs::Json doc = obs::report();
    doc["tool"] = tool_;
    doc["results"] = std::move(results_);
    // A short write (ENOSPC, closed pipe) must not masquerade as a
    // trajectory file: surface the structured diagnostic on stderr.
    if (const auto diag = obs::write_file_checked(path_, doc)) {
      std::fprintf(stderr, "error[%s]: %s\n",
                   std::string(error_code_name(diag->code)).c_str(),
                   diag->message.c_str());
    }
    obs::set_enabled(false);
  }

 private:
  std::string tool_;
  std::string path_;
  obs::Json results_;
};

/// Entry-point wrapper shared by the experiment drivers. The drivers are
/// configured through SDFMEM_* environment variables, so any positional
/// argument is a mistake — reject it with a usage message instead of
/// silently ignoring it. Uncaught errors are funneled through the
/// structured taxonomy and mapped to the CLI's exit codes
/// (docs/ERRORS.md) instead of aborting via std::terminate.
inline int run_driver(int argc, char** argv, int (*body)()) {
  if (argc > 1) {
    std::fprintf(stderr,
                 "usage: %s\n"
                 "  takes no arguments; configure runs via SDFMEM_*"
                 " environment variables\n"
                 "  (SDFMEM_BENCH_JSON, SDFMEM_BENCH_REPEAT, ... --"
                 " see docs/ERRORS.md)\n",
                 argv[0]);
    return 2;
  }
  try {
    return body();
  } catch (const std::exception& e) {
    const Diagnostic diag = diagnostic_from_exception(e);
    std::fprintf(stderr, "error[%s]: %s\n",
                 std::string(error_code_name(diag.code)).c_str(),
                 diag.message.c_str());
    return exit_code_for(diag.code);
  }
}

}  // namespace sdf::bench
