// Shared helpers for the experiment drivers.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "graphs/filterbank.h"
#include "graphs/ptolemy.h"
#include "graphs/satellite.h"
#include "sdf/graph.h"

namespace sdf::bench {

/// The practical benchmark suite of Table 1 (filterbank depths follow the
/// paper's naming: qmf<rates>_<depth>d).
inline std::vector<Graph> table1_systems() {
  std::vector<Graph> systems;
  systems.push_back(nqmf23(2));
  systems.push_back(nqmf23(4));
  systems.push_back(one_sided_filterbank(4, kRates12, "nqmf12_4d"));
  systems.push_back(qmf23(2));
  systems.push_back(qmf235(2));
  systems.push_back(qmf12(2));
  systems.push_back(qmf23(3));
  systems.push_back(qmf235(3));
  systems.push_back(qmf12(3));
  systems.push_back(qmf23(4));
  systems.push_back(qmf12(4));
  systems.push_back(qmf12(5));
  systems.push_back(qmf235(5));
  systems.push_back(satellite_receiver());
  systems.push_back(modem_16qam());
  systems.push_back(pam4_xmitrec());
  systems.push_back(block_vox());
  systems.push_back(overlap_add_fft());
  systems.push_back(phased_array());
  return systems;
}

/// Environment-variable override for experiment sizes, e.g.
/// SDFMEM_RANDOM_GRAPHS=20 ./fig27_random for a quick run.
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace sdf::bench
