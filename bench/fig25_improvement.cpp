// Fig. 25 (Sec. 10.1): bar graph of the percentage improvement of the best
// shared implementation over the best non-shared implementation, one bar
// per practical system. Rendered as an ASCII bar chart.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "pipeline/compile.h"

namespace {

int run() {
  using namespace sdf;
  std::printf("Fig. 25: %% improvement of shared over non-shared\n\n");
  bench::JsonTrajectory traj("fig25_improvement");
  obs::Json rows = obs::Json::array();
  for (const Graph& g : bench::table1_systems()) {
    const Table1Row row = table1_row(g);
    const double pct = row.improvement_percent();
    const int bars = std::max(0, static_cast<int>(pct / 2.0));
    std::printf("%-14s %5.1f%% |%s\n", row.system.c_str(), pct,
                std::string(static_cast<std::size_t>(bars), '#').c_str());
    if (traj.active()) {
      obs::Json r = obs::Json::object();
      r["system"] = row.system;
      r["improvement_percent"] = pct;
      rows.push_back(std::move(r));
    }
  }
  std::printf("\n(each # = 2%%; paper range: ~27%% to 83%%)\n");
  if (traj.active()) traj.results()["rows"] = std::move(rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
