// Sec. 11.1.3 CD-DAT interface-buffering experiment: the nested
// buffer-optimal SAS spreads source firings through the period and needs
// roughly a tenth of the input buffering a flat SAS needs (paper: ~11 vs
// 65 tokens over a 147-sample period, with 1994-era execution times).
#include <cstdio>

#include "graphs/cddat.h"
#include "graphs/satellite.h"
#include "sched/apgan.h"
#include "sched/dppo.h"
#include "sched/io_buffering.h"
#include "sched/sas.h"

#include "bench_util.h"
#include "sdf/analysis.h"

namespace {

void report(const sdf::Graph& g, const sdf::Repetitions& q,
            const sdf::Schedule& s, const sdf::ExecutionTimes& exec,
            sdf::ActorId src, const char* label) {
  const auto r = sdf::interface_buffering(g, q, s, exec, src,
                                          sdf::kInvalidActor);
  std::printf("  %-22s input backlog %5lld of %lld samples/period\n", label,
              static_cast<long long>(r.input_backlog),
              static_cast<long long>(r.input_samples_per_period));
}

}  // namespace

namespace {

int run() {
  using namespace sdf;
  {
    const Graph g = cd_to_dat();
    const Repetitions q = repetitions_vector(g);
    const ActorId src = *g.find_actor("A");
    // Relative execution costs: polyphase stages dominate (cf. the
    // "typical DSP of 1994" assumption in [19]).
    const ExecutionTimes exec{2, 6, 8, 10, 10, 2};
    std::printf("CD-DAT (147-sample period):\n");
    report(g, q, flat_sas(g, q), exec, src, "flat SAS");
    report(g, q, dppo(g, q, *topological_sort(g)).schedule, exec, src,
           "nested (DPPO) SAS");
    report(g, q, apgan(g, q).schedule, exec, src, "nested (APGAN) SAS");
    std::printf("  paper reference: flat 65, nested ~11\n\n");
  }
  {
    const Graph g = satellite_receiver();
    const Repetitions q = repetitions_vector(g);
    const ActorId src = *g.find_actor("A");
    ExecutionTimes exec(g.num_actors(), 4);
    exec[static_cast<std::size_t>(src)] = 1;
    exec[static_cast<std::size_t>(*g.find_actor("D"))] = 1;
    std::printf("Satellite receiver (q(A) = 1056 source firings):\n");
    report(g, q, flat_sas(g, q), exec, src, "flat SAS");
    report(g, q, apgan(g, q).schedule, exec, src, "nested (APGAN) SAS");
    std::printf(
        "  paper: Goddard/Jeffay charge the static SAS 1056 input samples;\n"
        "  the nested schedule's true requirement is far smaller.\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
