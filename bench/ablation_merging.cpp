// Ablation for the Sec. 12 buffer-merging extension: how much does CBP-
// based input/output merging save on top of lifetime sharing?
#include <algorithm>
#include <cstdio>

#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "bench_util.h"
#include "lifetime/schedule_tree.h"
#include "merge/buffer_merge.h"
#include "pipeline/compile.h"

namespace {

int run() {
  using namespace sdf;
  std::printf(
      "Buffer merging ablation (consume-before-produce model)\n\n"
      "%-14s %10s %12s %10s %8s %8s\n",
      "system", "shared", "merged", "regions", "folded", "gain%");
  for (const Graph& g : bench::table1_systems()) {
    const CompileResult res = compile(g);
    const ScheduleTree tree(g, res.schedule);

    const MergeResult merged = merge_buffers(
        g, tree, res.lifetimes, cbp_all_consuming(g));
    const auto merged_ls = merged_lifetimes(merged);
    const IntersectionGraph wig = build_intersection_graph_generic(merged_ls);
    const std::int64_t merged_size =
        std::min(first_fit(wig, merged_ls, FirstFitOrder::kByDuration)
                     .total_size,
                 first_fit(wig, merged_ls, FirstFitOrder::kByStartTime)
                     .total_size);
    const std::size_t folded = res.lifetimes.size() - merged.buffers.size();
    const double gain =
        100.0 * (res.shared_size - merged_size) /
        static_cast<double>(std::max<std::int64_t>(1, res.shared_size));
    std::printf("%-14s %10lld %12lld %10zu %8zu %7.1f%%\n", g.name().c_str(),
                static_cast<long long>(res.shared_size),
                static_cast<long long>(merged_size), merged.buffers.size(),
                folded, gain);
  }
  std::printf(
      "\nassumes every single-input/single-output actor fully consumes its\n"
      "input before writing output (the optimistic CBP); real actor\n"
      "libraries would annotate CBP per block.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sdf::bench::run_driver(argc, argv, run);
}
