file(REMOVE_RECURSE
  "CMakeFiles/fig27_random.dir/fig27_random.cpp.o"
  "CMakeFiles/fig27_random.dir/fig27_random.cpp.o.d"
  "fig27_random"
  "fig27_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
