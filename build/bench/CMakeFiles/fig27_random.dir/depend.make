# Empty dependencies file for fig27_random.
# This may be replaced when dependencies are built.
