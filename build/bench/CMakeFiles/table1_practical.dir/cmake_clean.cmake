file(REMOVE_RECURSE
  "CMakeFiles/table1_practical.dir/table1_practical.cpp.o"
  "CMakeFiles/table1_practical.dir/table1_practical.cpp.o.d"
  "table1_practical"
  "table1_practical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_practical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
