# Empty compiler generated dependencies file for table1_practical.
# This may be replaced when dependencies are built.
