# Empty compiler generated dependencies file for io_buffering_cddat.
# This may be replaced when dependencies are built.
