file(REMOVE_RECURSE
  "CMakeFiles/io_buffering_cddat.dir/io_buffering_cddat.cpp.o"
  "CMakeFiles/io_buffering_cddat.dir/io_buffering_cddat.cpp.o.d"
  "io_buffering_cddat"
  "io_buffering_cddat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_buffering_cddat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
