file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduling.dir/micro_scheduling.cpp.o"
  "CMakeFiles/micro_scheduling.dir/micro_scheduling.cpp.o.d"
  "micro_scheduling"
  "micro_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
