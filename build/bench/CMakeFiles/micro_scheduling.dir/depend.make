# Empty dependencies file for micro_scheduling.
# This may be replaced when dependencies are built.
