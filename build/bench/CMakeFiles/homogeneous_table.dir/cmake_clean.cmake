file(REMOVE_RECURSE
  "CMakeFiles/homogeneous_table.dir/homogeneous_table.cpp.o"
  "CMakeFiles/homogeneous_table.dir/homogeneous_table.cpp.o.d"
  "homogeneous_table"
  "homogeneous_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogeneous_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
