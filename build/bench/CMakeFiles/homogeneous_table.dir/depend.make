# Empty dependencies file for homogeneous_table.
# This may be replaced when dependencies are built.
