# Empty compiler generated dependencies file for randsort_study.
# This may be replaced when dependencies are built.
