file(REMOVE_RECURSE
  "CMakeFiles/randsort_study.dir/randsort_study.cpp.o"
  "CMakeFiles/randsort_study.dir/randsort_study.cpp.o.d"
  "randsort_study"
  "randsort_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randsort_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
