file(REMOVE_RECURSE
  "CMakeFiles/micro_extensions.dir/micro_extensions.cpp.o"
  "CMakeFiles/micro_extensions.dir/micro_extensions.cpp.o.d"
  "micro_extensions"
  "micro_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
