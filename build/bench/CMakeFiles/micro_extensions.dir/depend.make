# Empty dependencies file for micro_extensions.
# This may be replaced when dependencies are built.
