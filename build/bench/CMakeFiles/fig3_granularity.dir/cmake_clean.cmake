file(REMOVE_RECURSE
  "CMakeFiles/fig3_granularity.dir/fig3_granularity.cpp.o"
  "CMakeFiles/fig3_granularity.dir/fig3_granularity.cpp.o.d"
  "fig3_granularity"
  "fig3_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
