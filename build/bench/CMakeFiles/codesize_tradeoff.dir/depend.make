# Empty dependencies file for codesize_tradeoff.
# This may be replaced when dependencies are built.
