file(REMOVE_RECURSE
  "CMakeFiles/codesize_tradeoff.dir/codesize_tradeoff.cpp.o"
  "CMakeFiles/codesize_tradeoff.dir/codesize_tradeoff.cpp.o.d"
  "codesize_tradeoff"
  "codesize_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesize_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
