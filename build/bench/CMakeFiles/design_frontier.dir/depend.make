# Empty dependencies file for design_frontier.
# This may be replaced when dependencies are built.
