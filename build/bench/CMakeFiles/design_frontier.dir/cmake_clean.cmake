file(REMOVE_RECURSE
  "CMakeFiles/design_frontier.dir/design_frontier.cpp.o"
  "CMakeFiles/design_frontier.dir/design_frontier.cpp.o.d"
  "design_frontier"
  "design_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
