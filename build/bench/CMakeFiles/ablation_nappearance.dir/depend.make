# Empty dependencies file for ablation_nappearance.
# This may be replaced when dependencies are built.
