file(REMOVE_RECURSE
  "CMakeFiles/ablation_nappearance.dir/ablation_nappearance.cpp.o"
  "CMakeFiles/ablation_nappearance.dir/ablation_nappearance.cpp.o.d"
  "ablation_nappearance"
  "ablation_nappearance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nappearance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
