file(REMOVE_RECURSE
  "CMakeFiles/fig25_improvement.dir/fig25_improvement.cpp.o"
  "CMakeFiles/fig25_improvement.dir/fig25_improvement.cpp.o.d"
  "fig25_improvement"
  "fig25_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
