# Empty dependencies file for fig25_improvement.
# This may be replaced when dependencies are built.
