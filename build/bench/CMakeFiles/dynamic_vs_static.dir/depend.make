# Empty dependencies file for dynamic_vs_static.
# This may be replaced when dependencies are built.
