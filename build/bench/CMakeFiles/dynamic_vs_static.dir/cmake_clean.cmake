file(REMOVE_RECURSE
  "CMakeFiles/dynamic_vs_static.dir/dynamic_vs_static.cpp.o"
  "CMakeFiles/dynamic_vs_static.dir/dynamic_vs_static.cpp.o.d"
  "dynamic_vs_static"
  "dynamic_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
