# Empty dependencies file for micro_allocation.
# This may be replaced when dependencies are built.
