file(REMOVE_RECURSE
  "CMakeFiles/micro_allocation.dir/micro_allocation.cpp.o"
  "CMakeFiles/micro_allocation.dir/micro_allocation.cpp.o.d"
  "micro_allocation"
  "micro_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
