# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sdppo_vs_dppo.
