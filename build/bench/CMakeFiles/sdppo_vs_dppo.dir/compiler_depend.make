# Empty compiler generated dependencies file for sdppo_vs_dppo.
# This may be replaced when dependencies are built.
