file(REMOVE_RECURSE
  "CMakeFiles/sdppo_vs_dppo.dir/sdppo_vs_dppo.cpp.o"
  "CMakeFiles/sdppo_vs_dppo.dir/sdppo_vs_dppo.cpp.o.d"
  "sdppo_vs_dppo"
  "sdppo_vs_dppo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdppo_vs_dppo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
