file(REMOVE_RECURSE
  "CMakeFiles/blocking_sweep.dir/blocking_sweep.cpp.o"
  "CMakeFiles/blocking_sweep.dir/blocking_sweep.cpp.o.d"
  "blocking_sweep"
  "blocking_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
