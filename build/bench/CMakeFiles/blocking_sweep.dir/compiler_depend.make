# Empty compiler generated dependencies file for blocking_sweep.
# This may be replaced when dependencies are built.
