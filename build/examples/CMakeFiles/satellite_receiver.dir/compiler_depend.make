# Empty compiler generated dependencies file for satellite_receiver.
# This may be replaced when dependencies are built.
