file(REMOVE_RECURSE
  "CMakeFiles/satellite_receiver.dir/satellite_receiver.cpp.o"
  "CMakeFiles/satellite_receiver.dir/satellite_receiver.cpp.o.d"
  "satellite_receiver"
  "satellite_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
