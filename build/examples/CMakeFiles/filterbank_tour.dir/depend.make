# Empty dependencies file for filterbank_tour.
# This may be replaced when dependencies are built.
