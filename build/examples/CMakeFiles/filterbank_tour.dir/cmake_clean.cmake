file(REMOVE_RECURSE
  "CMakeFiles/filterbank_tour.dir/filterbank_tour.cpp.o"
  "CMakeFiles/filterbank_tour.dir/filterbank_tour.cpp.o.d"
  "filterbank_tour"
  "filterbank_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filterbank_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
