file(REMOVE_RECURSE
  "CMakeFiles/fir_regularity.dir/fir_regularity.cpp.o"
  "CMakeFiles/fir_regularity.dir/fir_regularity.cpp.o.d"
  "fir_regularity"
  "fir_regularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_regularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
