# Empty dependencies file for fir_regularity.
# This may be replaced when dependencies are built.
