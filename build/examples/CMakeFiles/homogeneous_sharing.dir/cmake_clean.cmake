file(REMOVE_RECURSE
  "CMakeFiles/homogeneous_sharing.dir/homogeneous_sharing.cpp.o"
  "CMakeFiles/homogeneous_sharing.dir/homogeneous_sharing.cpp.o.d"
  "homogeneous_sharing"
  "homogeneous_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogeneous_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
