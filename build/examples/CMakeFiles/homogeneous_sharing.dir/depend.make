# Empty dependencies file for homogeneous_sharing.
# This may be replaced when dependencies are built.
