file(REMOVE_RECURSE
  "CMakeFiles/cyclic_control_loop.dir/cyclic_control_loop.cpp.o"
  "CMakeFiles/cyclic_control_loop.dir/cyclic_control_loop.cpp.o.d"
  "cyclic_control_loop"
  "cyclic_control_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_control_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
