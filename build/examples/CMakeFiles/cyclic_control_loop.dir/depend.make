# Empty dependencies file for cyclic_control_loop.
# This may be replaced when dependencies are built.
