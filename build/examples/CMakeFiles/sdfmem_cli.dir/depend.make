# Empty dependencies file for sdfmem_cli.
# This may be replaced when dependencies are built.
