file(REMOVE_RECURSE
  "CMakeFiles/sdfmem_cli.dir/sdfmem_cli.cpp.o"
  "CMakeFiles/sdfmem_cli.dir/sdfmem_cli.cpp.o.d"
  "sdfmem_cli"
  "sdfmem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdfmem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
