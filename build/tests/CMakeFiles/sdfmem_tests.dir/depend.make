# Empty dependencies file for sdfmem_tests.
# This may be replaced when dependencies are built.
