
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_apgan.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_apgan.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_apgan.cpp.o.d"
  "/root/repo/tests/test_bounds.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_bounds.cpp.o.d"
  "/root/repo/tests/test_buffer_merge.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_buffer_merge.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_buffer_merge.cpp.o.d"
  "/root/repo/tests/test_chain_dp.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_chain_dp.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_chain_dp.cpp.o.d"
  "/root/repo/tests/test_clique.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_clique.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_clique.cpp.o.d"
  "/root/repo/tests/test_code_size.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_code_size.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_code_size.cpp.o.d"
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_cyclic.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_cyclic.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_cyclic.cpp.o.d"
  "/root/repo/tests/test_demand_driven.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_demand_driven.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_demand_driven.cpp.o.d"
  "/root/repo/tests/test_dot.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_dot.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_dot.cpp.o.d"
  "/root/repo/tests/test_dppo.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_dppo.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_dppo.cpp.o.d"
  "/root/repo/tests/test_explore.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_explore.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_explore.cpp.o.d"
  "/root/repo/tests/test_fir.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_fir.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_fir.cpp.o.d"
  "/root/repo/tests/test_first_fit.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_first_fit.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_first_fit.cpp.o.d"
  "/root/repo/tests/test_functional.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_functional.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_functional.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_io.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_graph_io.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_graph_io.cpp.o.d"
  "/root/repo/tests/test_graphs.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_graphs.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_graphs.cpp.o.d"
  "/root/repo/tests/test_intersection_graph.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_intersection_graph.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_intersection_graph.cpp.o.d"
  "/root/repo/tests/test_io_buffering.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_io_buffering.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_io_buffering.cpp.o.d"
  "/root/repo/tests/test_lifetime_extract.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_lifetime_extract.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_lifetime_extract.cpp.o.d"
  "/root/repo/tests/test_loop_compaction.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_loop_compaction.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_loop_compaction.cpp.o.d"
  "/root/repo/tests/test_nappearance.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_nappearance.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_nappearance.cpp.o.d"
  "/root/repo/tests/test_optimal_dsa.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_optimal_dsa.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_optimal_dsa.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_periodic_interval.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_periodic_interval.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_periodic_interval.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pool_checker.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_pool_checker.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_pool_checker.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_properties2.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_properties2.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_properties2.cpp.o.d"
  "/root/repo/tests/test_rational.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_rational.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_rational.cpp.o.d"
  "/root/repo/tests/test_repetitions.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_repetitions.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_repetitions.cpp.o.d"
  "/root/repo/tests/test_rpmc.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_rpmc.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_rpmc.cpp.o.d"
  "/root/repo/tests/test_sas.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_sas.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_sas.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schedule_tree.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_schedule_tree.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_schedule_tree.cpp.o.d"
  "/root/repo/tests/test_sdppo.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_sdppo.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_sdppo.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_throughput.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_throughput.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_throughput.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/sdfmem_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/sdfmem_tests.dir/test_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdfmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
