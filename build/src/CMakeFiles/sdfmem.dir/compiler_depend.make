# Empty compiler generated dependencies file for sdfmem.
# This may be replaced when dependencies are built.
