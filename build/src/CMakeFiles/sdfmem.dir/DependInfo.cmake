
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocation.cpp" "src/CMakeFiles/sdfmem.dir/alloc/allocation.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/alloc/allocation.cpp.o.d"
  "/root/repo/src/alloc/clique.cpp" "src/CMakeFiles/sdfmem.dir/alloc/clique.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/alloc/clique.cpp.o.d"
  "/root/repo/src/alloc/first_fit.cpp" "src/CMakeFiles/sdfmem.dir/alloc/first_fit.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/alloc/first_fit.cpp.o.d"
  "/root/repo/src/alloc/intersection_graph.cpp" "src/CMakeFiles/sdfmem.dir/alloc/intersection_graph.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/alloc/intersection_graph.cpp.o.d"
  "/root/repo/src/alloc/optimal_dsa.cpp" "src/CMakeFiles/sdfmem.dir/alloc/optimal_dsa.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/alloc/optimal_dsa.cpp.o.d"
  "/root/repo/src/alloc/pool_checker.cpp" "src/CMakeFiles/sdfmem.dir/alloc/pool_checker.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/alloc/pool_checker.cpp.o.d"
  "/root/repo/src/codegen/c_codegen.cpp" "src/CMakeFiles/sdfmem.dir/codegen/c_codegen.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/codegen/c_codegen.cpp.o.d"
  "/root/repo/src/codegen/code_size.cpp" "src/CMakeFiles/sdfmem.dir/codegen/code_size.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/codegen/code_size.cpp.o.d"
  "/root/repo/src/graphs/cddat.cpp" "src/CMakeFiles/sdfmem.dir/graphs/cddat.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/cddat.cpp.o.d"
  "/root/repo/src/graphs/filterbank.cpp" "src/CMakeFiles/sdfmem.dir/graphs/filterbank.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/filterbank.cpp.o.d"
  "/root/repo/src/graphs/fir.cpp" "src/CMakeFiles/sdfmem.dir/graphs/fir.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/fir.cpp.o.d"
  "/root/repo/src/graphs/homogeneous.cpp" "src/CMakeFiles/sdfmem.dir/graphs/homogeneous.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/homogeneous.cpp.o.d"
  "/root/repo/src/graphs/ptolemy.cpp" "src/CMakeFiles/sdfmem.dir/graphs/ptolemy.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/ptolemy.cpp.o.d"
  "/root/repo/src/graphs/random_sdf.cpp" "src/CMakeFiles/sdfmem.dir/graphs/random_sdf.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/random_sdf.cpp.o.d"
  "/root/repo/src/graphs/satellite.cpp" "src/CMakeFiles/sdfmem.dir/graphs/satellite.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/graphs/satellite.cpp.o.d"
  "/root/repo/src/lifetime/lifetime_extract.cpp" "src/CMakeFiles/sdfmem.dir/lifetime/lifetime_extract.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/lifetime/lifetime_extract.cpp.o.d"
  "/root/repo/src/lifetime/periodic_interval.cpp" "src/CMakeFiles/sdfmem.dir/lifetime/periodic_interval.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/lifetime/periodic_interval.cpp.o.d"
  "/root/repo/src/lifetime/schedule_tree.cpp" "src/CMakeFiles/sdfmem.dir/lifetime/schedule_tree.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/lifetime/schedule_tree.cpp.o.d"
  "/root/repo/src/merge/buffer_merge.cpp" "src/CMakeFiles/sdfmem.dir/merge/buffer_merge.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/merge/buffer_merge.cpp.o.d"
  "/root/repo/src/pipeline/compile.cpp" "src/CMakeFiles/sdfmem.dir/pipeline/compile.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/pipeline/compile.cpp.o.d"
  "/root/repo/src/pipeline/explore.cpp" "src/CMakeFiles/sdfmem.dir/pipeline/explore.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/pipeline/explore.cpp.o.d"
  "/root/repo/src/sched/apgan.cpp" "src/CMakeFiles/sdfmem.dir/sched/apgan.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/apgan.cpp.o.d"
  "/root/repo/src/sched/bounds.cpp" "src/CMakeFiles/sdfmem.dir/sched/bounds.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/bounds.cpp.o.d"
  "/root/repo/src/sched/chain_dp.cpp" "src/CMakeFiles/sdfmem.dir/sched/chain_dp.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/chain_dp.cpp.o.d"
  "/root/repo/src/sched/cyclic.cpp" "src/CMakeFiles/sdfmem.dir/sched/cyclic.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/cyclic.cpp.o.d"
  "/root/repo/src/sched/demand_driven.cpp" "src/CMakeFiles/sdfmem.dir/sched/demand_driven.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/demand_driven.cpp.o.d"
  "/root/repo/src/sched/dppo.cpp" "src/CMakeFiles/sdfmem.dir/sched/dppo.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/dppo.cpp.o.d"
  "/root/repo/src/sched/io_buffering.cpp" "src/CMakeFiles/sdfmem.dir/sched/io_buffering.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/io_buffering.cpp.o.d"
  "/root/repo/src/sched/loop_compaction.cpp" "src/CMakeFiles/sdfmem.dir/sched/loop_compaction.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/loop_compaction.cpp.o.d"
  "/root/repo/src/sched/nappearance.cpp" "src/CMakeFiles/sdfmem.dir/sched/nappearance.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/nappearance.cpp.o.d"
  "/root/repo/src/sched/rpmc.cpp" "src/CMakeFiles/sdfmem.dir/sched/rpmc.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/rpmc.cpp.o.d"
  "/root/repo/src/sched/sas.cpp" "src/CMakeFiles/sdfmem.dir/sched/sas.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/sas.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/sdfmem.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/sdppo.cpp" "src/CMakeFiles/sdfmem.dir/sched/sdppo.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/sdppo.cpp.o.d"
  "/root/repo/src/sched/simulator.cpp" "src/CMakeFiles/sdfmem.dir/sched/simulator.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sched/simulator.cpp.o.d"
  "/root/repo/src/sdf/analysis.cpp" "src/CMakeFiles/sdfmem.dir/sdf/analysis.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/analysis.cpp.o.d"
  "/root/repo/src/sdf/dot.cpp" "src/CMakeFiles/sdfmem.dir/sdf/dot.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/dot.cpp.o.d"
  "/root/repo/src/sdf/graph.cpp" "src/CMakeFiles/sdfmem.dir/sdf/graph.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/graph.cpp.o.d"
  "/root/repo/src/sdf/io.cpp" "src/CMakeFiles/sdfmem.dir/sdf/io.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/io.cpp.o.d"
  "/root/repo/src/sdf/repetitions.cpp" "src/CMakeFiles/sdfmem.dir/sdf/repetitions.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/repetitions.cpp.o.d"
  "/root/repo/src/sdf/throughput.cpp" "src/CMakeFiles/sdfmem.dir/sdf/throughput.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/throughput.cpp.o.d"
  "/root/repo/src/sdf/transform.cpp" "src/CMakeFiles/sdfmem.dir/sdf/transform.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sdf/transform.cpp.o.d"
  "/root/repo/src/sim/functional.cpp" "src/CMakeFiles/sdfmem.dir/sim/functional.cpp.o" "gcc" "src/CMakeFiles/sdfmem.dir/sim/functional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
