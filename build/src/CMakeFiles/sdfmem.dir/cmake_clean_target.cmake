file(REMOVE_RECURSE
  "libsdfmem.a"
)
