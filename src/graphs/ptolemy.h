// Reconstructions of the Ptolemy demonstration systems used in Table 1.
//
// The original Ptolemy 0.x demo graphs are not distributable, so these are
// structural reconstructions with the application's characteristic rate
// ladders (see DESIGN.md, substitutions). The scheduling/allocation
// algorithms consume only topology and rates, so the qualitative behaviour
// (shared << non-shared, heuristic rankings) carries over.
#pragma once

#include "sdf/graph.h"

namespace sdf {

/// 16-QAM modem: bit source -> scrambler -> 4-bit symbol mapping -> pulse
/// shaping (x4 upsampling) -> channel -> matched filter (x4 decimation) ->
/// equalizer -> slicer -> bits -> descrambler -> sink.
[[nodiscard]] Graph modem_16qam();

/// 4-PAM transmitter/receiver pair: 2 bits/symbol, x8 interpolation and
/// decimation chains split across two half-band stages.
[[nodiscard]] Graph pam4_xmitrec();

/// Block vocoder: framing, spectral envelope extraction on 32-sample
/// blocks, excitation synthesis, modulation, overlap synthesis.
[[nodiscard]] Graph block_vox();

/// Overlap-add FFT filter: 50%-overlapped 16-point frames, FFT, spectral
/// gain, IFFT, overlap-add reconstruction.
[[nodiscard]] Graph overlap_add_fft();

/// Phased array front end: 4 sensor channels, per-channel filtering and
/// phase steering, beam summation, x8 decimating detector, threshold.
[[nodiscard]] Graph phased_array();

}  // namespace sdf
