#include "graphs/satellite.h"

namespace sdf {

Graph satellite_receiver() {
  Graph g("satrec");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId gg = g.add_actor("G");
  const ActorId h = g.add_actor("H");
  const ActorId i = g.add_actor("I");
  const ActorId d = g.add_actor("D");
  const ActorId e = g.add_actor("E");
  const ActorId f = g.add_actor("F");
  const ActorId k = g.add_actor("K");
  const ActorId l = g.add_actor("L");
  const ActorId m = g.add_actor("M");
  const ActorId n = g.add_actor("N");
  const ActorId s = g.add_actor("S");
  const ActorId j = g.add_actor("J");
  const ActorId t = g.add_actor("T");
  const ActorId u = g.add_actor("U");
  const ActorId p = g.add_actor("P");
  const ActorId qq = g.add_actor("Q");
  const ActorId r = g.add_actor("R");
  const ActorId v = g.add_actor("V");
  const ActorId w = g.add_actor("W");

  // Channel 1 front end: 1056 -> 264 -> 24 firings.
  g.add_edge(a, b, 1, 4);
  g.add_edge(b, c, 1, 11);
  g.connect(c, gg);
  g.connect(gg, h);
  g.connect(h, i);
  // Channel 2 front end.
  g.add_edge(d, e, 1, 4);
  g.add_edge(e, f, 1, 11);
  g.connect(f, k);
  g.connect(k, l);
  g.connect(l, m);
  // Merge into the shared back end running at 240 firings per period.
  g.add_edge(i, n, 10, 1);
  g.add_edge(m, s, 10, 1);
  g.connect(n, s);
  g.connect(s, j);
  g.connect(j, t);
  g.connect(t, u);
  g.connect(u, p);
  // Block-level control path (fires once per period).
  g.add_edge(p, qq, 1, 240);
  g.connect(qq, r);
  g.connect(r, v);
  // Output stage.
  g.add_edge(v, w, 240, 1);
  return g;
}

}  // namespace sdf
