#include "graphs/fir.h"

#include <stdexcept>

namespace sdf {

FirGraph fir_fine_grained(int taps) {
  if (taps < 2) {
    throw std::invalid_argument("fir_fine_grained: taps must be >= 2");
  }
  FirGraph fir;
  Graph& g = fir.graph;
  g.set_name("fir" + std::to_string(taps));

  fir.source = g.add_actor("x");
  fir.type_of.push_back(0);
  const ActorId fork = g.add_actor("fork");
  fir.type_of.push_back(0);
  g.connect(fir.source, fork);

  // The adder chain is built by the Chain higher-order function: unit i
  // owns gain Gi and (for i >= 1) adder A(i-1) combining the running sum
  // with Gi's product.
  ActorId last = chain_hof(
      g, taps,
      [&](Graph& graph, int index, std::optional<ActorId> prev) -> ActorId {
        const ActorId gain =
            graph.add_actor("G" + std::to_string(index));
        fir.type_of.push_back(1);
        graph.connect(fork, gain);
        if (!prev) return gain;  // first tap: the running sum starts here
        const ActorId add =
            graph.add_actor("A" + std::to_string(index - 1));
        fir.type_of.push_back(2);
        graph.connect(*prev, add);
        graph.connect(gain, add);
        return add;
      });

  fir.sink = g.add_actor("y");
  fir.type_of.push_back(3);
  g.connect(last, fir.sink);
  return fir;
}

ActorId chain_hof(Graph& g, int n, const ChainUnitBuilder& builder) {
  if (n < 1) throw std::invalid_argument("chain_hof: n must be >= 1");
  std::optional<ActorId> prev;
  for (int i = 0; i < n; ++i) {
    prev = builder(g, i, prev);
  }
  return *prev;
}

}  // namespace sdf
