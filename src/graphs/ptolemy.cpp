#include "graphs/ptolemy.h"

#include <string>

namespace sdf {

Graph modem_16qam() {
  Graph g("16qamModem");
  const ActorId bits = g.add_actor("bitSrc");
  const ActorId scram = g.add_actor("scrambler");
  const ActorId sym = g.add_actor("bits2sym");    // 4 bits -> 1 symbol
  const ActorId map = g.add_actor("qamMap");      // symbol -> I/Q pair
  const ActorId shape = g.add_actor("pulseShape");  // x4 upsample
  const ActorId dac = g.add_actor("dac");
  const ActorId chan = g.add_actor("channel");
  const ActorId agc = g.add_actor("agc");
  const ActorId match = g.add_actor("matchedFilt");  // x4 decimate
  const ActorId eq = g.add_actor("equalizer");
  const ActorId slicer = g.add_actor("slicer");
  const ActorId demap = g.add_actor("sym2bits");  // 1 symbol -> 4 bits
  const ActorId descr = g.add_actor("descrambler");
  const ActorId ber = g.add_actor("berCheck");    // compares 16-bit blocks
  const ActorId snk = g.add_actor("sink");

  g.connect(bits, scram);
  g.add_edge(scram, sym, 1, 4);
  g.connect(sym, map);
  g.add_edge(map, shape, 1, 4);
  g.connect(shape, dac);
  g.connect(dac, chan);
  g.connect(chan, agc);
  g.add_edge(agc, match, 4, 1);
  g.connect(match, eq);
  g.connect(eq, slicer);
  g.add_edge(slicer, demap, 4, 1);
  g.connect(demap, descr);
  g.add_edge(descr, ber, 1, 16);
  g.connect(ber, snk);
  return g;
}

Graph pam4_xmitrec() {
  Graph g("4pamxmitrec");
  const ActorId bits = g.add_actor("bitSrc");
  const ActorId enc = g.add_actor("grayEnc");   // 2 bits -> 1 level
  const ActorId lvl = g.add_actor("level");
  const ActorId up1 = g.add_actor("interp1");   // x2
  const ActorId up2 = g.add_actor("interp2");   // x2
  const ActorId up3 = g.add_actor("interp3");   // x2
  const ActorId tx = g.add_actor("txFilt");
  const ActorId chan = g.add_actor("channel");
  const ActorId rx = g.add_actor("rxFilt");
  const ActorId dn1 = g.add_actor("decim1");    // /2
  const ActorId dn2 = g.add_actor("decim2");    // /2
  const ActorId dn3 = g.add_actor("decim3");    // /2
  const ActorId det = g.add_actor("detector");
  const ActorId dec = g.add_actor("grayDec");   // 1 level -> 2 bits
  const ActorId snk = g.add_actor("sink");

  g.add_edge(bits, enc, 1, 2);
  g.connect(enc, lvl);
  g.add_edge(lvl, up1, 1, 1);
  g.add_edge(up1, up2, 2, 1);
  g.add_edge(up2, up3, 2, 1);
  g.add_edge(up3, tx, 2, 1);
  g.connect(tx, chan);
  g.connect(chan, rx);
  g.add_edge(rx, dn1, 1, 2);
  g.add_edge(dn1, dn2, 1, 2);
  g.add_edge(dn2, dn3, 1, 2);
  g.connect(dn3, det);
  g.add_edge(det, dec, 2, 1);
  g.connect(dec, snk);
  return g;
}

Graph block_vox() {
  Graph g("blockVox");
  const ActorId mic = g.add_actor("voiceSrc");
  const ActorId frame = g.add_actor("framer");     // 32-sample frames
  const ActorId win = g.add_actor("window");
  const ActorId lpc = g.add_actor("lpcAnalysis");  // frame -> 8 coeffs
  const ActorId pitch = g.add_actor("pitchTrack");  // frame -> 1 value
  const ActorId quant = g.add_actor("quantizer");
  const ActorId synthSrc = g.add_actor("toneSrc");  // synthesized carrier
  const ActorId exFrame = g.add_actor("exFramer");
  const ActorId envApply = g.add_actor("applyEnv");  // consumes coeffs+frame
  const ActorId gain = g.add_actor("gainMod");       // consumes pitch
  const ActorId deframe = g.add_actor("deframer");   // frame -> samples
  const ActorId interp = g.add_actor("smoother");
  const ActorId spk = g.add_actor("speaker");

  g.add_edge(mic, frame, 1, 32);
  g.connect(frame, win);
  g.connect(win, lpc);      // one frame in, one coeff-set out
  g.connect(win, pitch);
  g.add_edge(lpc, quant, 8, 8);
  g.add_edge(synthSrc, exFrame, 1, 32);
  g.add_edge(quant, envApply, 8, 8);
  g.connect(exFrame, envApply);
  g.connect(envApply, gain);
  g.connect(pitch, gain);
  g.add_edge(gain, deframe, 1, 1);
  g.add_edge(deframe, interp, 32, 1);
  g.connect(interp, spk);
  return g;
}

Graph overlap_add_fft() {
  Graph g("overAddFFT");
  const ActorId src = g.add_actor("src");
  const ActorId seg = g.add_actor("segment");   // hop 8 -> frame 16
  const ActorId win = g.add_actor("window");
  const ActorId fft = g.add_actor("fft16");
  const ActorId gain = g.add_actor("specGain");
  const ActorId ifft = g.add_actor("ifft16");
  const ActorId ola = g.add_actor("overlapAdd");  // frame 16 -> hop 8
  const ActorId snk = g.add_actor("sink");

  // 50% overlap: 8 fresh samples produce a 16-sample frame. The 8-sample
  // history is modeled as initial tokens on the segmenter input.
  g.add_edge(src, seg, 1, 8, /*delay=*/8);
  g.add_edge(seg, win, 16, 16);
  g.add_edge(win, fft, 16, 16);
  g.add_edge(fft, gain, 16, 16);
  g.add_edge(gain, ifft, 16, 16);
  g.add_edge(ifft, ola, 16, 16);
  g.add_edge(ola, snk, 8, 1);
  return g;
}

Graph phased_array() {
  Graph g("phasedArray");
  const ActorId beam = g.add_actor("beamSum");
  for (int ch = 0; ch < 4; ++ch) {
    const std::string suffix = std::to_string(ch);
    const ActorId sensor = g.add_actor("sensor" + suffix);
    const ActorId filt = g.add_actor("bandpass" + suffix);
    const ActorId phase = g.add_actor("steer" + suffix);
    g.connect(sensor, filt);
    g.connect(filt, phase);
    g.connect(phase, beam);
  }
  const ActorId mag = g.add_actor("magnitude");
  const ActorId integ = g.add_actor("integrate");  // 8-sample coherent sum
  const ActorId cfar = g.add_actor("cfar");        // needs 4 cells
  const ActorId thresh = g.add_actor("threshold");
  const ActorId disp = g.add_actor("display");
  g.connect(beam, mag);
  g.add_edge(mag, integ, 1, 8);
  g.add_edge(integ, cfar, 1, 4);
  g.connect(cfar, thresh);
  g.connect(thresh, disp);
  return g;
}

}  // namespace sdf
