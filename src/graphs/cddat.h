// CD-to-DAT sample rate converter (44.1 kHz -> 48 kHz), the classic
// multistage multirate chain used in [19]'s input-buffering discussion:
//   A -(1/1)-> B -(2/3)-> C -(2/7)-> D -(8/7)-> E -(5/1)-> F
// with repetitions (147, 147, 98, 28, 32, 160).
#pragma once

#include "sdf/graph.h"

namespace sdf {

[[nodiscard]] Graph cd_to_dat();

}  // namespace sdf
