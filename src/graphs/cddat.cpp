#include "graphs/cddat.h"

namespace sdf {

Graph cd_to_dat() {
  Graph g("cddat");
  const ActorId a = g.add_actor("A");
  const ActorId b = g.add_actor("B");
  const ActorId c = g.add_actor("C");
  const ActorId d = g.add_actor("D");
  const ActorId e = g.add_actor("E");
  const ActorId f = g.add_actor("F");
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, c, 2, 3);
  g.add_edge(c, d, 2, 7);
  g.add_edge(d, e, 8, 7);
  g.add_edge(e, f, 5, 1);
  return g;
}

}  // namespace sdf
