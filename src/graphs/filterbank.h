// Parametric QMF filterbank benchmarks (paper Figs. 22-23, Sec. 10.1).
//
// Two-sided banks split every band recursively to the given depth and
// resynthesize: node count 6*2^depth - 4 (paper: 20/44/188 at depth
// 2/3/5). One-sided banks split only the low band: node count 6*depth + 2.
//
// A rate pair (den, lo, hi) means the analysis low/high filters consume
// `den` tokens and produce `lo` / `hi` tokens per firing; the synthesis
// side mirrors. The paper's three variants: 1/2-1/2 -> (2,1,1),
// 1/3-2/3 -> (3,1,2), 2/5-3/5 -> (5,2,3).
#pragma once

#include <cstdint>

#include "sdf/graph.h"

namespace sdf {

struct FilterbankRates {
  std::int64_t den = 2;
  std::int64_t lo = 1;
  std::int64_t hi = 1;
};

inline constexpr FilterbankRates kRates12{2, 1, 1};
inline constexpr FilterbankRates kRates23{3, 1, 2};
inline constexpr FilterbankRates kRates235{5, 2, 3};

/// Two-sided (full binary tree) filterbank of the given depth (>= 1).
[[nodiscard]] Graph two_sided_filterbank(int depth, FilterbankRates rates,
                                         std::string name = {});

/// One-sided (low-band-recursive) filterbank of the given depth (>= 1),
/// paper Fig. 22.
[[nodiscard]] Graph one_sided_filterbank(int depth, FilterbankRates rates,
                                         std::string name = {});

// Named variants used in Table 1.
[[nodiscard]] Graph qmf12(int depth);   ///< two-sided, 1/2-1/2
[[nodiscard]] Graph qmf23(int depth);   ///< two-sided, 1/3-2/3
[[nodiscard]] Graph qmf235(int depth);  ///< two-sided, 2/5-3/5
[[nodiscard]] Graph nqmf23(int depth);  ///< one-sided, 1/3-2/3

}  // namespace sdf
