// Fine-grained FIR structures and the "Chain" higher-order constructor
// (Sec. 12, Figs. 28-29).
//
// A fine-grained FIR is the scheduling stress test the paper closes with:
// a fork feeding `taps` gain actors whose outputs fold through an adder
// chain. Naive threading emits one code block per instance
// (G0 G1 A0 G2 A1 ...); regularity extraction (loop compaction over
// instance *types*) should recover the hand-written (n (G)(A)) loop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sdf/graph.h"

namespace sdf {

struct FirGraph {
  Graph graph;
  ActorId source = kInvalidActor;
  ActorId sink = kInvalidActor;
  /// Type label per actor for code-sharing/regularity analysis:
  /// 0 = source/fork, 1 = gain, 2 = add, 3 = sink.
  std::vector<std::int32_t> type_of;
};

/// Fig. 28: src -> fork -> taps gains -> adder chain -> sink. taps >= 2.
[[nodiscard]] FirGraph fir_fine_grained(int taps);

/// The Chain higher-order function (Fig. 29): instantiates `n` copies of a
/// unit subgraph and wires them head-to-tail. The builder receives the
/// graph, the instance index, and the previous instance's output actor
/// (nullopt for the first), and returns the new instance's output actor.
using ChainUnitBuilder = std::function<ActorId(
    Graph&, int index, std::optional<ActorId> previous_output)>;

/// Returns the final instance's output actor.
ActorId chain_hof(Graph& g, int n, const ChainUnitBuilder& builder);

}  // namespace sdf
