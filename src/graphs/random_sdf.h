// Random consistent acyclic SDF graph generation (Sec. 10.3 corpus).
//
// Consistency by construction: a repetition count is drawn per actor first
// (smooth numbers, so neighbors share factors the way practical multirate
// systems do), then each edge's prod/cns pair is derived from the endpoint
// repetitions:  prod = q(snk)/gcd, cns = q(src)/gcd, scaled by a small
// random factor. Connectivity via a random spanning arborescence over a
// random topological order, plus extra forward edges to the target density.
#pragma once

#include <cstdint>
#include <random>

#include "sdf/graph.h"

namespace sdf {

/// How edge rates are drawn.
enum class RandomRateMode {
  /// Repetition counts drawn per actor first (bounded, smooth); edge rates
  /// derived from them. Keeps q bounded regardless of graph size — graphs
  /// resemble practical multirate systems.
  kBoundedRepetitions,
  /// prod/cns drawn independently per spanning-tree edge and propagated,
  /// so repetition counts compound multiplicatively with depth, like a
  /// chain of decimators. Large graphs grow a dominant buffer, which is
  /// the regime where shared-vs-non-shared improvement decays with size
  /// (the paper's Fig. 27(a) trend).
  kCompoundingRates,
};

struct RandomSdfOptions {
  int num_actors = 20;
  /// Average edges per actor beyond the spanning tree (0.5 keeps graphs
  /// sparse like practical systems).
  double extra_edge_ratio = 0.5;
  /// Repetition counts are products of factors drawn from {1,2,3,4,5};
  /// this bounds how many factors multiply together
  /// (kBoundedRepetitions only).
  int max_rate_factors = 2;
  /// Scale factor k on (prod, cns) pairs is drawn from [1, max_scale].
  int max_scale = 2;
  RandomRateMode rate_mode = RandomRateMode::kBoundedRepetitions;
  /// kCompoundingRates: tree-edge prod/cns drawn from [1, max_tree_rate].
  int max_tree_rate = 3;
};

/// Generates one random graph. Always consistent, connected and acyclic.
[[nodiscard]] Graph random_sdf_graph(const RandomSdfOptions& options,
                                     std::mt19937& rng);

}  // namespace sdf
