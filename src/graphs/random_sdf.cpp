#include "graphs/random_sdf.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <string>

namespace sdf {

Graph random_sdf_graph(const RandomSdfOptions& options, std::mt19937& rng) {
  const int n = options.num_actors;
  Graph g("random_" + std::to_string(n));
  for (int i = 0; i < n; ++i) g.add_actor("r" + std::to_string(i));

  // Random topological position per actor.
  std::vector<ActorId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  // Repetition counts: either bounded smooth numbers per actor, or (in
  // compounding mode) filled in while the spanning tree is grown.
  std::vector<std::int64_t> reps(static_cast<std::size_t>(n), 1);
  if (options.rate_mode == RandomRateMode::kBoundedRepetitions) {
    static constexpr int kFactors[] = {1, 2, 2, 3, 3, 4, 5, 6, 8};
    std::uniform_int_distribution<std::size_t> pick_factor(
        0, std::size(kFactors) - 1);
    std::uniform_int_distribution<int> pick_nfactors(
        1, std::max(1, options.max_rate_factors));
    for (auto& r : reps) {
      const int k = pick_nfactors(rng);
      for (int f = 0; f < k; ++f) r *= kFactors[pick_factor(rng)];
    }
  }

  std::uniform_int_distribution<int> pick_scale(1, std::max(
      1, options.max_scale));
  auto add_rate_edge = [&](ActorId src, ActorId snk) {
    const std::int64_t qs = reps[static_cast<std::size_t>(src)];
    const std::int64_t qt = reps[static_cast<std::size_t>(snk)];
    const std::int64_t gcd = std::gcd(qs, qt);
    const std::int64_t k = pick_scale(rng);
    // prod*qs == cns*qt  <=>  prod = k*qt/g, cns = k*qs/g.
    g.add_edge(src, snk, k * (qt / gcd), k * (qs / gcd));
  };

  // Spanning structure: every non-first actor in topological order gets an
  // edge from a uniformly random earlier actor.
  std::set<std::pair<ActorId, ActorId>> present;
  std::uniform_int_distribution<int> pick_tree_rate(
      1, std::max(1, options.max_tree_rate));
  constexpr std::int64_t kRepCap = 1ll << 22;  // keep periods simulatable
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> pick_pred(0, i - 1);
    const ActorId src = order[static_cast<std::size_t>(pick_pred(rng))];
    const ActorId snk = order[static_cast<std::size_t>(i)];
    if (options.rate_mode == RandomRateMode::kCompoundingRates) {
      // Draw prod/cns for the tree edge and let q(snk) follow from
      // q(src): q(snk) = q(src) * prod / cns, scaling the whole component
      // up when the division does not come out even. Scaling is avoided
      // here by forcing prod to absorb the remainder: pick prod, cns and
      // rescale q(snk) rationally via gcd.
      std::int64_t prod = pick_tree_rate(rng);
      std::int64_t cns = pick_tree_rate(rng);
      const std::int64_t qs = reps[static_cast<std::size_t>(src)];
      // q(snk) = qs * prod / cns must be integral: shrink cns to a divisor
      // of qs * prod.
      const std::int64_t num = qs * prod;
      cns = std::gcd(cns, num);
      std::int64_t qt = num / cns;
      if (qt > kRepCap) {  // clamp runaway growth
        prod = 1;
        cns = 1;
        qt = qs;
      }
      reps[static_cast<std::size_t>(snk)] = qt;
      g.add_edge(src, snk, prod, cns);
    } else {
      add_rate_edge(src, snk);
    }
    present.insert({src, snk});
  }

  // Extra forward edges up to the density target.
  const auto extra = static_cast<int>(options.extra_edge_ratio * n);
  std::uniform_int_distribution<int> pick_pos(0, n - 1);
  for (int tries = 0, added = 0; added < extra && tries < 20 * extra;
       ++tries) {
    int a = pick_pos(rng);
    int b = pick_pos(rng);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    const ActorId src = order[static_cast<std::size_t>(a)];
    const ActorId snk = order[static_cast<std::size_t>(b)];
    if (!present.insert({src, snk}).second) continue;
    add_rate_edge(src, snk);
    ++added;
  }
  return g;
}

}  // namespace sdf
