#include "graphs/homogeneous.h"

#include <stdexcept>
#include <string>

namespace sdf {

Graph homogeneous_mesh(int chains, int chain_length) {
  if (chains < 1 || chain_length < 1) {
    throw std::invalid_argument("homogeneous_mesh: M, N must be >= 1");
  }
  Graph g("mesh_M" + std::to_string(chains) + "_N" +
          std::to_string(chain_length));
  const ActorId src = g.add_actor("src");
  const ActorId snk = g.add_actor("snk");
  for (int m = 0; m < chains; ++m) {
    ActorId prev = src;
    for (int n = 0; n < chain_length; ++n) {
      const ActorId cur = g.add_actor("c" + std::to_string(m) + "_" +
                                      std::to_string(n));
      g.connect(prev, cur);
      prev = cur;
    }
    g.connect(prev, snk);
  }
  return g;
}

std::int64_t homogeneous_mesh_nonshared(int chains, int chain_length) {
  return static_cast<std::int64_t>(chains) * (chain_length + 1);
}

std::int64_t homogeneous_mesh_shared(int chains) { return chains + 1; }

}  // namespace sdf
