#include "graphs/filterbank.h"

#include <stdexcept>
#include <string>

namespace sdf {
namespace {

struct Builder {
  Graph& g;
  FilterbankRates rates;
  int next_id = 0;

  ActorId add(const std::string& prefix) {
    return g.add_actor(prefix + std::to_string(next_id++));
  }

  /// Builds one analysis+synthesis band pair of the remaining depth.
  /// Returns (analysis entry actor, synthesis exit actor). `two_sided`
  /// controls whether the high band recurses too.
  std::pair<ActorId, ActorId> band(int remaining, bool two_sided) {
    const ActorId fork = add("f");
    const ActorId lo = add("lo");
    const ActorId hi = add("hi");
    const ActorId lo_up = add("ulo");
    const ActorId hi_up = add("uhi");
    const ActorId join = add("j");

    g.add_edge(fork, lo, 1, rates.den);
    g.add_edge(fork, hi, 1, rates.den);
    g.add_edge(lo_up, join, rates.den, 1);
    g.add_edge(hi_up, join, rates.den, 1);

    auto wire_branch = [&](ActorId filter, ActorId up, std::int64_t rate,
                           bool recurse) {
      if (recurse && remaining > 1) {
        const auto [entry, exit] = band(remaining - 1, two_sided);
        g.add_edge(filter, entry, rate, 1);
        g.add_edge(exit, up, 1, rate);
      } else {
        g.add_edge(filter, up, rate, rate);
      }
    };
    wire_branch(lo, lo_up, rates.lo, /*recurse=*/true);
    wire_branch(hi, hi_up, rates.hi, /*recurse=*/two_sided);
    return {fork, join};
  }
};

Graph make(int depth, FilterbankRates rates, bool two_sided,
           std::string name) {
  if (depth < 1) throw std::invalid_argument("filterbank: depth must be >=1");
  Graph g(std::move(name));
  Builder builder{g, rates};
  const ActorId src = g.add_actor("src");
  const ActorId snk = g.add_actor("snk");
  const auto [entry, exit] = builder.band(depth, two_sided);
  g.connect(src, entry);
  g.connect(exit, snk);
  return g;
}

}  // namespace

Graph two_sided_filterbank(int depth, FilterbankRates rates,
                           std::string name) {
  if (name.empty()) {
    name = "qmf_" + std::to_string(rates.lo) + "_" + std::to_string(rates.hi) +
           "of" + std::to_string(rates.den) + "_" + std::to_string(depth) +
           "d";
  }
  return make(depth, rates, /*two_sided=*/true, std::move(name));
}

Graph one_sided_filterbank(int depth, FilterbankRates rates,
                           std::string name) {
  if (name.empty()) {
    name = "nqmf_" + std::to_string(rates.lo) + "_" +
           std::to_string(rates.hi) + "of" + std::to_string(rates.den) + "_" +
           std::to_string(depth) + "d";
  }
  return make(depth, rates, /*two_sided=*/false, std::move(name));
}

Graph qmf12(int depth) {
  return two_sided_filterbank(depth, kRates12,
                              "qmf12_" + std::to_string(depth) + "d");
}

Graph qmf23(int depth) {
  return two_sided_filterbank(depth, kRates23,
                              "qmf23_" + std::to_string(depth) + "d");
}

Graph qmf235(int depth) {
  return two_sided_filterbank(depth, kRates235,
                              "qmf235_" + std::to_string(depth) + "d");
}

Graph nqmf23(int depth) {
  return one_sided_filterbank(depth, kRates23,
                              "nqmf23_" + std::to_string(depth) + "d");
}

}  // namespace sdf
