// Satellite receiver benchmark (paper Fig. 24, from Ritz et al. [24]).
//
// Reconstructed from the repetition vector pinned by the APGAN schedule the
// paper prints in Sec. 11.1.3:
//   (24 (11 (4A) B) C G H I (11 (4D) E) F K L M 10(N S J T U P)) (Q R V 240W)
// i.e. q(A)=q(D)=1056, q(B)=q(E)=264, q(C,G,H,I,F,K,L,M)=24,
// q(N,S,J,T,U,P)=240, q(Q,R,V)=1, q(W)=240. Two identical front-end
// channels merge into a shared back end. See DESIGN.md (substitutions).
#pragma once

#include "sdf/graph.h"

namespace sdf {

[[nodiscard]] Graph satellite_receiver();

}  // namespace sdf
