// The homogeneous M x N mesh of paper Fig. 26 (Sec. 10.2): a source fans
// out to M parallel chains of N actors each, all merging into one sink;
// every rate is 1. No matter the schedule there are never more than M+1
// live tokens, so shared allocation achieves M+1 while a non-shared
// implementation needs M(N-1) + 2M = M(N+1).
#pragma once

#include "sdf/graph.h"

namespace sdf {

[[nodiscard]] Graph homogeneous_mesh(int chains, int chain_length);

/// Non-shared cost the paper quotes for this family: M(N+1).
[[nodiscard]] std::int64_t homogeneous_mesh_nonshared(int chains,
                                                      int chain_length);

/// Shared cost the paper quotes: M+1.
[[nodiscard]] std::int64_t homogeneous_mesh_shared(int chains);

}  // namespace sdf
