#include "alloc/pool_checker.h"

#include <sstream>

namespace sdf {

PoolCheckResult check_allocation_by_execution(
    const Graph& g, const Schedule& schedule,
    const std::vector<BufferLifetime>& lifetimes, const Allocation& alloc) {
  PoolCheckResult result;
  if (lifetimes.size() != g.num_edges() ||
      alloc.offsets.size() != lifetimes.size()) {
    result.error = "lifetimes/allocation do not match the graph";
    return result;
  }

  // Slot ownership: -1 free, otherwise the owning EdgeId.
  std::vector<std::int64_t> owner(
      static_cast<std::size_t>(alloc.total_size), -1);
  // Widths indexed by edge; offsets likewise.
  std::vector<std::int64_t> width(g.num_edges());
  std::vector<std::int64_t> offset(g.num_edges());
  for (const BufferLifetime& b : lifetimes) {
    width[static_cast<std::size_t>(b.edge)] = b.width;
    offset[static_cast<std::size_t>(b.edge)] =
        alloc.offsets[static_cast<std::size_t>(b.edge)];
  }
  std::vector<std::int64_t> write_count(g.num_edges(), 0);
  std::vector<std::int64_t> read_count(g.num_edges(), 0);

  auto slot_of = [&](EdgeId e, std::int64_t k) {
    const auto ie = static_cast<std::size_t>(e);
    return static_cast<std::size_t>(offset[ie] + (k % width[ie]));
  };

  std::ostringstream err;
  // Place initial tokens.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    if (edge.delay > width[e]) {
      err << "edge " << e << " delay " << edge.delay
          << " exceeds buffer width " << width[e];
      result.error = err.str();
      return result;
    }
    for (std::int64_t k = 0; k < edge.delay; ++k) {
      owner[slot_of(static_cast<EdgeId>(e), k)] =
          static_cast<std::int64_t>(e);
    }
    write_count[e] = edge.delay;
  }

  bool failed = false;
  auto write_token = [&](EdgeId e) {
    const std::size_t slot = slot_of(e, write_count[
        static_cast<std::size_t>(e)]);
    if (owner[slot] != -1) {
      const Edge& mine = g.edge(e);
      err << "write of " << g.actor(mine.src).name << "->"
          << g.actor(mine.snk).name << " token "
          << write_count[static_cast<std::size_t>(e)] << " at address "
          << slot << " would overwrite a live token of edge "
          << owner[slot];
      failed = true;
      return;
    }
    owner[slot] = e;
    ++write_count[static_cast<std::size_t>(e)];
  };
  auto read_token = [&](EdgeId e) {
    const std::size_t slot = slot_of(e, read_count[
        static_cast<std::size_t>(e)]);
    if (owner[slot] != e) {
      err << "read of edge " << e << " token "
          << read_count[static_cast<std::size_t>(e)] << " at address "
          << slot << " found owner " << owner[slot];
      failed = true;
      return;
    }
    owner[slot] = -1;
    ++read_count[static_cast<std::size_t>(e)];
  };

  auto walk = [&](auto&& self, const Schedule& node) -> void {
    if (failed) return;
    for (std::int64_t i = 0; i < node.count() && !failed; ++i) {
      if (node.is_leaf()) {
        const ActorId a = node.actor();
        for (EdgeId e : g.in_edges(a)) {
          for (std::int64_t t = 0; t < g.edge(e).cns && !failed; ++t) {
            read_token(e);
          }
        }
        for (EdgeId e : g.out_edges(a)) {
          for (std::int64_t t = 0; t < g.edge(e).prod && !failed; ++t) {
            write_token(e);
          }
        }
      } else {
        for (const Schedule& child : node.body()) {
          self(self, child);
          if (failed) return;
        }
      }
    }
  };
  walk(walk, schedule);
  if (failed) {
    result.error = err.str();
    return result;
  }

  // End state: exactly the initial tokens remain.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const std::int64_t live = write_count[e] - read_count[e];
    if (live != g.edge(static_cast<EdgeId>(e)).delay) {
      err << "edge " << e << " ended with " << live
          << " live tokens, expected " << g.edge(static_cast<EdgeId>(e)).delay;
      result.error = err.str();
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace sdf
