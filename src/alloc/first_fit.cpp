#include "alloc/first_fit.h"

#include <algorithm>
#include <numeric>

#include "obs/counters.h"

namespace sdf {

std::vector<std::int32_t> enumeration_order(
    const std::vector<BufferLifetime>& lifetimes, FirstFitOrder order) {
  std::vector<std::int32_t> idx(lifetimes.size());
  std::iota(idx.begin(), idx.end(), 0);
  auto by = [&](auto key) {
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return key(lifetimes[static_cast<std::size_t>(a)]) <
                              key(lifetimes[static_cast<std::size_t>(b)]);
                     });
  };
  switch (order) {
    case FirstFitOrder::kByDuration:
      // Decreasing duration; larger widths first on ties.
      by([](const BufferLifetime& b) {
        return std::pair(-b.interval.burst_duration(), -b.width);
      });
      break;
    case FirstFitOrder::kByStartTime:
      by([](const BufferLifetime& b) {
        return std::pair(b.interval.first_start(), -b.width);
      });
      break;
    case FirstFitOrder::kByWidth:
      by([](const BufferLifetime& b) {
        return std::pair(-b.width, -b.interval.burst_duration());
      });
      break;
    case FirstFitOrder::kInputOrder:
      break;
  }
  return idx;
}

Allocation first_fit_enumerated(const IntersectionGraph& wig,
                                const std::vector<std::int32_t>& order) {
  Allocation alloc;
  alloc.offsets.assign(wig.size(), 0);
  std::vector<bool> placed(wig.size(), false);

  std::int64_t conflicts_checked = 0;  // placed WIG neighbors examined
  std::int64_t probes = 0;             // busy ranges walked over
  std::int64_t gap_skipped_tokens = 0; // holes too small for the buffer
  for (std::int32_t i : order) {
    const auto ii = static_cast<std::size_t>(i);
    // Collect already-placed conflicting ranges, sorted by offset.
    std::vector<std::pair<std::int64_t, std::int64_t>> busy;  // (off, width)
    for (std::int32_t j : wig.adjacency[ii]) {
      const auto jj = static_cast<std::size_t>(j);
      if (placed[jj]) busy.emplace_back(alloc.offsets[jj], wig.weights[jj]);
    }
    conflicts_checked += static_cast<std::int64_t>(wig.adjacency[ii].size());
    std::sort(busy.begin(), busy.end());
    // Lowest gap that fits this buffer's width.
    std::int64_t candidate = 0;
    for (const auto& [off, width] : busy) {
      ++probes;
      if (candidate + wig.weights[ii] <= off) break;  // fits before this one
      // A hole in [candidate, off) exists but is too narrow: first-fit
      // fragmentation the paper's ffdur/ffstart orders try to minimize.
      if (off > candidate) gap_skipped_tokens += off - candidate;
      candidate = std::max(candidate, off + width);
    }
    alloc.offsets[ii] = candidate;
    placed[ii] = true;
    alloc.total_size =
        std::max(alloc.total_size, candidate + wig.weights[ii]);
  }
  obs::count("alloc.first_fit.placements",
             static_cast<std::int64_t>(order.size()));
  obs::count("alloc.first_fit.conflicts_checked", conflicts_checked);
  obs::count("alloc.first_fit.probes", probes);
  obs::count("alloc.first_fit.gap_skipped_tokens", gap_skipped_tokens);
  obs::gauge("alloc.first_fit.total_size", alloc.total_size);
  return alloc;
}

Allocation first_fit(const IntersectionGraph& wig,
                     const std::vector<BufferLifetime>& lifetimes,
                     FirstFitOrder order) {
  return first_fit_enumerated(wig, enumeration_order(lifetimes, order));
}

}  // namespace sdf
