// Weighted intersection graph (WIG) of buffer lifetimes (Sec. 9.1).
//
// Nodes are buffers (node-weighted by width); an edge joins two buffers
// whose lifetimes overlap in time, i.e. they can never share memory.
#pragma once

#include <cstdint>
#include <vector>

#include "lifetime/lifetime_extract.h"
#include "lifetime/schedule_tree.h"

namespace sdf {

struct IntersectionGraph {
  /// adjacency[i] = indices (into the lifetime vector) of buffers whose
  /// lifetimes overlap buffer i's. Symmetric, no self entries, sorted.
  std::vector<std::vector<std::int32_t>> adjacency;
  /// weights[i] = width of buffer i.
  std::vector<std::int64_t> weights;

  [[nodiscard]] std::size_t size() const { return adjacency.size(); }
  [[nodiscard]] bool adjacent(std::int32_t a, std::int32_t b) const;
};

/// Builds the WIG with the O(depth) tree-aware overlap test.
[[nodiscard]] IntersectionGraph build_intersection_graph(
    const ScheduleTree& tree, const std::vector<BufferLifetime>& lifetimes);

/// Builds the WIG with the generic (tree-free) PeriodicInterval::overlaps;
/// used by tests to cross-check the tree-aware version.
[[nodiscard]] IntersectionGraph build_intersection_graph_generic(
    const std::vector<BufferLifetime>& lifetimes);

}  // namespace sdf
