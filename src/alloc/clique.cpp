#include "alloc/clique.h"

#include <algorithm>
#include <stdexcept>

namespace sdf {

std::int64_t mcw_optimistic(const std::vector<BufferLifetime>& lifetimes) {
  std::int64_t best = 0;
  for (const BufferLifetime& b : lifetimes) {
    const std::int64_t t = b.interval.first_start();
    std::int64_t live = 0;
    for (const BufferLifetime& other : lifetimes) {
      if (other.interval.live_at(t)) live += other.width;
    }
    best = std::max(best, live);
  }
  return best;
}

std::int64_t mcw_pessimistic(const std::vector<BufferLifetime>& lifetimes) {
  // Exact sweep over the solidified intervals: the max overlap of a set of
  // solid intervals occurs at some interval's start.
  struct Event {
    std::int64_t time;
    std::int64_t delta;
  };
  std::vector<Event> events;
  events.reserve(lifetimes.size() * 2);
  for (const BufferLifetime& b : lifetimes) {
    events.push_back({b.interval.first_start(), b.width});
    events.push_back({b.interval.last_stop(), -b.width});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // process removals before additions
  });
  std::int64_t live = 0, best = 0;
  for (const Event& e : events) {
    live += e.delta;
    best = std::max(best, live);
  }
  return best;
}

std::int64_t mcw_exact(const std::vector<BufferLifetime>& lifetimes,
                       std::size_t burst_limit) {
  // The max overlap occurs at the start of some burst (Sec. 9.1, Fig. 20:
  // possibly a later occurrence, not only the earliest).
  std::size_t total_bursts = 0;
  for (const BufferLifetime& b : lifetimes) {
    total_bursts += static_cast<std::size_t>(b.interval.occurrences());
    if (total_bursts > burst_limit) {
      throw std::length_error("mcw_exact: too many periodic occurrences");
    }
  }
  std::int64_t best = 0;
  for (const BufferLifetime& b : lifetimes) {
    std::int64_t t = b.interval.first_start();
    while (true) {
      std::int64_t live = 0;
      for (const BufferLifetime& other : lifetimes) {
        if (other.interval.live_at(t)) live += other.width;
      }
      best = std::max(best, live);
      const auto next = b.interval.next_start_at_or_after(t + 1);
      if (!next) break;
      t = *next;
    }
  }
  return best;
}

}  // namespace sdf
