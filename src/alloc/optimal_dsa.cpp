#include "alloc/optimal_dsa.h"

#include <algorithm>
#include <limits>

#include "alloc/first_fit.h"

namespace sdf {

Allocation best_fit(const IntersectionGraph& wig,
                    const std::vector<BufferLifetime>& lifetimes,
                    FirstFitOrder order) {
  const std::vector<std::int32_t> enumeration =
      enumeration_order(lifetimes, order);
  Allocation alloc;
  alloc.offsets.assign(wig.size(), 0);
  std::vector<bool> placed(wig.size(), false);

  for (std::int32_t i : enumeration) {
    const auto ii = static_cast<std::size_t>(i);
    std::vector<std::pair<std::int64_t, std::int64_t>> busy;
    for (std::int32_t j : wig.adjacency[ii]) {
      const auto jj = static_cast<std::size_t>(j);
      if (placed[jj]) busy.emplace_back(alloc.offsets[jj], wig.weights[jj]);
    }
    std::sort(busy.begin(), busy.end());
    // Enumerate maximal gaps; keep the tightest one that fits. The final
    // open-ended gap (above all neighbors) is the fallback.
    const std::int64_t w = wig.weights[ii];
    std::int64_t cursor = 0;
    std::int64_t best_offset = -1;
    std::int64_t best_slack = std::numeric_limits<std::int64_t>::max();
    for (const auto& [off, width] : busy) {
      if (off > cursor) {
        const std::int64_t gap = off - cursor;
        if (gap >= w && gap - w < best_slack) {
          best_slack = gap - w;
          best_offset = cursor;
        }
      }
      cursor = std::max(cursor, off + width);
    }
    if (best_offset < 0) best_offset = cursor;  // open-ended top gap
    alloc.offsets[ii] = best_offset;
    placed[ii] = true;
    alloc.total_size = std::max(alloc.total_size, best_offset + w);
  }
  return alloc;
}

namespace {

// Exactness argument: any allocation can be normalized so that, listing
// buffers by increasing offset, each buffer sits at offset 0 or exactly on
// top of an earlier-listed conflicting buffer (slide every buffer down
// until it is supported; heights never grow). The search therefore
// branches on "which buffer is placed next" with candidate offsets
// restricted to supported positions that are >= the last placed offset —
// every canonical allocation is reachable, so the minimum found over the
// whole tree is the true optimum.
struct Search {
  const IntersectionGraph& wig;
  std::vector<std::int64_t> offsets;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best_offsets;
  std::int64_t nodes = 0;
  std::int64_t budget;
  bool exhausted_budget = false;

  explicit Search(const IntersectionGraph& g, std::int64_t node_budget)
      : wig(g), budget(node_budget) {
    offsets.assign(g.size(), -1);
  }

  void run(std::size_t placed_count, std::int64_t height,
           std::int64_t min_offset) {
    if (++nodes > budget) {
      exhausted_budget = true;
      return;
    }
    if (height >= best) return;
    if (placed_count == wig.size()) {
      best = height;
      best_offsets = offsets;
      return;
    }
    for (std::size_t i = 0; i < wig.size(); ++i) {
      if (offsets[i] >= 0) continue;
      const std::int64_t w = wig.weights[i];

      // Supported candidates at or above the frontier.
      std::vector<std::int64_t> candidates;
      if (min_offset == 0) candidates.push_back(0);
      for (std::int32_t j : wig.adjacency[i]) {
        const auto jj = static_cast<std::size_t>(j);
        if (offsets[jj] >= 0) {
          const std::int64_t top = offsets[jj] + wig.weights[jj];
          if (top >= min_offset) candidates.push_back(top);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());

      for (const std::int64_t offset : candidates) {
        bool feasible = true;
        for (std::int32_t j : wig.adjacency[i]) {
          const auto jj = static_cast<std::size_t>(j);
          if (offsets[jj] < 0) continue;
          const bool disjoint = offset + w <= offsets[jj] ||
                                offsets[jj] + wig.weights[jj] <= offset;
          if (!disjoint) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        offsets[i] = offset;
        run(placed_count + 1, std::max(height, offset + w), offset);
        offsets[i] = -1;
        if (exhausted_budget) return;
      }
    }
  }
};

}  // namespace

std::optional<Allocation> optimal_allocation(const IntersectionGraph& wig,
                                             std::size_t max_buffers,
                                             std::int64_t node_budget) {
  if (wig.size() > max_buffers) return std::nullopt;
  if (wig.size() == 0) return Allocation{};
  Search search(wig, node_budget);
  search.run(0, 0, 0);
  if (search.exhausted_budget || search.best_offsets.empty()) {
    return std::nullopt;
  }
  Allocation alloc;
  alloc.offsets = search.best_offsets;
  alloc.total_size = search.best;
  return alloc;
}

}  // namespace sdf
