#include "alloc/allocation.h"

namespace sdf {

bool allocation_is_valid(const IntersectionGraph& wig,
                         const Allocation& alloc) {
  const std::size_t n = wig.size();
  if (alloc.offsets.size() != n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (alloc.offsets[i] < 0) return false;
    if (alloc.offsets[i] + wig.weights[i] > alloc.total_size) return false;
    for (std::int32_t j : wig.adjacency[i]) {
      if (static_cast<std::size_t>(j) <= i) continue;  // check each pair once
      const std::int64_t ai = alloc.offsets[i];
      const std::int64_t aj = alloc.offsets[static_cast<std::size_t>(j)];
      const std::int64_t wi = wig.weights[i];
      const std::int64_t wj = wig.weights[static_cast<std::size_t>(j)];
      const bool disjoint = (ai + wi <= aj) || (aj + wj <= ai);
      if (!disjoint) return false;
    }
  }
  return true;
}

}  // namespace sdf
