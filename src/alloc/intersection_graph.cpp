#include "alloc/intersection_graph.h"

#include <algorithm>

#include "obs/counters.h"

namespace sdf {
namespace {

template <typename OverlapFn>
IntersectionGraph build(const std::vector<BufferLifetime>& lifetimes,
                        OverlapFn&& overlap) {
  IntersectionGraph wig;
  const std::size_t n = lifetimes.size();
  wig.adjacency.assign(n, {});
  wig.weights.reserve(n);
  for (const BufferLifetime& b : lifetimes) wig.weights.push_back(b.width);
  std::int64_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (overlap(lifetimes[i], lifetimes[j])) {
        wig.adjacency[i].push_back(static_cast<std::int32_t>(j));
        wig.adjacency[j].push_back(static_cast<std::int32_t>(i));
        ++edges;
      }
    }
  }
  for (auto& row : wig.adjacency) std::sort(row.begin(), row.end());
  obs::count("alloc.wig.pairs_checked",
             n < 2 ? 0 : static_cast<std::int64_t>(n * (n - 1) / 2));
  obs::count("alloc.wig.edges", edges);
  return wig;
}

}  // namespace

bool IntersectionGraph::adjacent(std::int32_t a, std::int32_t b) const {
  const auto& row = adjacency[static_cast<std::size_t>(a)];
  return std::binary_search(row.begin(), row.end(), b);
}

IntersectionGraph build_intersection_graph(
    const ScheduleTree& tree, const std::vector<BufferLifetime>& lifetimes) {
  return build(lifetimes, [&](const BufferLifetime& a,
                              const BufferLifetime& b) {
    return lifetimes_overlap(tree, a, b);
  });
}

IntersectionGraph build_intersection_graph_generic(
    const std::vector<BufferLifetime>& lifetimes) {
  return build(lifetimes, [](const BufferLifetime& a,
                             const BufferLifetime& b) {
    return a.interval.overlaps(b.interval);
  });
}

}  // namespace sdf
