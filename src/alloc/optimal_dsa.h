// Exact dynamic storage allocation by branch and bound, and a best-fit
// placement variant of the Fig. 19 allocator.
//
// DSA is NP-complete (Theorem 1, [9]); the exact solver is exponential and
// guarded to small instances. It exists to quantify how far first-fit is
// from optimal (the paper argues, via [20], that first-fit is within a few
// percent of the MCW in practice — here that claim is checkable directly).
#pragma once

#include <cstdint>
#include <optional>

#include "alloc/allocation.h"
#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "lifetime/lifetime_extract.h"

namespace sdf {

/// Best-fit: like first-fit but picks the feasible gap with the least
/// leftover space (ties: lowest address).
[[nodiscard]] Allocation best_fit(const IntersectionGraph& wig,
                                  const std::vector<BufferLifetime>& lifetimes,
                                  FirstFitOrder order);

/// Exact minimum-height allocation via branch and bound over the canonical
/// offset candidates (0 or the top of a conflicting, already-placed
/// buffer). Returns nullopt when the instance exceeds `max_buffers` or the
/// search exceeds `node_budget` explored nodes.
[[nodiscard]] std::optional<Allocation> optimal_allocation(
    const IntersectionGraph& wig, std::size_t max_buffers = 18,
    std::int64_t node_budget = 2'000'000);

}  // namespace sdf
