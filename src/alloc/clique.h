// Maximum-clique-weight estimates for lifetime instances (Sec. 9.1).
//
// The MCW of the intersection graph (= max total width simultaneously
// live) lower-bounds the chromatic number and hence any allocation. With
// periodic lifetimes computing it exactly can require examining every
// occurrence, so the paper uses two polynomial heuristics:
//   optimistic  — examine only each buffer's earliest start time,
//   pessimistic — ignore periodicity (treat [first_start, last_stop) as
//                 solid) and sweep exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "lifetime/lifetime_extract.h"
#include "lifetime/schedule_tree.h"

namespace sdf {

/// Optimistic estimate: max over buffers b of the total width live at b's
/// earliest start time. Never exceeds the true MCW.
[[nodiscard]] std::int64_t mcw_optimistic(
    const std::vector<BufferLifetime>& lifetimes);

/// Pessimistic estimate: exact MCW of the solidified instance (periodicity
/// ignored). Never below the true MCW.
[[nodiscard]] std::int64_t mcw_pessimistic(
    const std::vector<BufferLifetime>& lifetimes);

/// Exact MCW by sweeping every occurrence start of every buffer. Cost is
/// proportional to the total number of bursts; intended for tests and small
/// instances (throws std::length_error above `burst_limit`).
[[nodiscard]] std::int64_t mcw_exact(
    const std::vector<BufferLifetime>& lifetimes,
    std::size_t burst_limit = 1u << 20);

}  // namespace sdf
