// Execution-level validation of a shared-memory allocation.
//
// Replays one schedule period against the actual pool layout: every token
// write claims the concrete address  offset(edge) + (k mod width(edge)),
// every read frees it. If two buffers were overlapped in memory while
// simultaneously holding live tokens — i.e. if any stage of the pipeline
// (lifetime model, overlap test, first-fit) were wrong — some write would
// land on an occupied slot and the check fails with a precise diagnosis.
// This is the end-to-end oracle the whole library is tested against.
#pragma once

#include <string>
#include <vector>

#include "alloc/allocation.h"
#include "lifetime/lifetime_extract.h"
#include "sched/schedule.h"
#include "sdf/graph.h"

namespace sdf {

struct PoolCheckResult {
  bool ok = false;
  std::string error;  ///< first violation, with edge/address detail
};

/// Executes `schedule` (one period) against the pool layout given by
/// `lifetimes` (widths) and `alloc` (offsets). Initial tokens occupy the
/// first delay slots of their buffer. Verifies:
///  * every write lands on a free slot (no live value overwritten),
///  * every read finds its own edge's token,
///  * after the period, exactly the initial tokens remain.
[[nodiscard]] PoolCheckResult check_allocation_by_execution(
    const Graph& g, const Schedule& schedule,
    const std::vector<BufferLifetime>& lifetimes, const Allocation& alloc);

}  // namespace sdf
