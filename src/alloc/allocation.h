// Allocation result type and validity checking (Definition 5).
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/intersection_graph.h"

namespace sdf {

/// Memory placement of every buffer: offsets[i] is the first word assigned
/// to buffer i (indices parallel the lifetime vector used to build the WIG).
struct Allocation {
  std::vector<std::int64_t> offsets;
  std::int64_t total_size = 0;  ///< max over i of offsets[i] + width[i]
};

/// Checks Definition 5: time-overlapping buffers get disjoint address
/// ranges and all offsets are non-negative.
[[nodiscard]] bool allocation_is_valid(const IntersectionGraph& wig,
                                       const Allocation& alloc);

}  // namespace sdf
