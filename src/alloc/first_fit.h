// First-fit dynamic storage allocation (Sec. 9.1, Fig. 19).
//
// Buffers are placed one at a time, each at the lowest address where it
// fits below/above every already-placed time-overlapping neighbor. The
// enumeration order is the only knob; the paper evaluates ordering by
// decreasing duration (ffdur) and by increasing start time (ffstart),
// following the empirical study of [20].
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.h"
#include "alloc/intersection_graph.h"
#include "lifetime/lifetime_extract.h"

namespace sdf {

enum class FirstFitOrder {
  kByDuration,    ///< decreasing burst duration (ffdur)
  kByStartTime,   ///< increasing first start time (ffstart)
  kByWidth,       ///< decreasing width (engineering extension)
  kInputOrder,    ///< the order buffers were handed in
};

/// Runs first-fit over the given enumeration order.
[[nodiscard]] Allocation first_fit(const IntersectionGraph& wig,
                                   const std::vector<BufferLifetime>& lifetimes,
                                   FirstFitOrder order);

/// Returns the explicit enumeration produced by `order` (exposed for tests
/// and for the paper's order-sensitivity experiments).
[[nodiscard]] std::vector<std::int32_t> enumeration_order(
    const std::vector<BufferLifetime>& lifetimes, FirstFitOrder order);

/// First-fit over a caller-provided enumeration.
[[nodiscard]] Allocation first_fit_enumerated(
    const IntersectionGraph& wig, const std::vector<std::int32_t>& order);

}  // namespace sdf
