// Fleet router: shard-routed forwarding over N sdfmemd workers
// (docs/SERVICE.md, "Fleet mode").
//
// The router speaks the same SDFSVC1 protocol as a worker, so existing
// clients point at it unchanged. For every compile request it:
//
//   1. derives the shard key — the request's content-addressed cache key
//      (canonical graph x option fingerprint), the same value the worker
//      would compute, so routing and caching agree byte-for-byte. A
//      request whose graph does not parse is routed by the raw-text hash
//      instead: it still lands deterministically on one worker, which
//      produces the structured parse error.
//   2. asks the shard owner (ring.h, first live worker clockwise from
//      the key) for its cached bytes (kPeerLookupRequest). Hit: the
//      response is relayed and the request never queues for a compile.
//   3. on a shard miss, probes the other live workers for the key; a
//      peer hit is relayed to the client AND warmed into the owner
//      (kPeerInsertRequest), so subsequent requests hit at step 2. This
//      is how the fleet heals after resizes and worker replacement.
//   4. otherwise forwards the full compile request to the owner and
//      relays the reply verbatim — compile responses and typed errors
//      (overloaded, unknown-tenant, parse...) pass through unchanged, so
//      per-tenant admission keeps working per worker.
//
// Failure semantics — degrade, never hang: every worker round-trip has a
// deadline (`worker_timeout_ms`). A connect failure, torn reply, or
// timeout marks the worker dead and the request re-routes to the next
// live worker on the ring (counted in `rerouted`); each attempt removes
// a worker, so the loop terminates. When no live worker remains the
// client gets a typed `unavailable` diagnostic (ErrorCode::kUnavailable,
// exit 26) — an error frame, not a stalled connection. A health thread
// re-probes every worker each `health_interval_ms` via stats frames, so
// a restarted worker rejoins automatically; when the worker reports a
// `worker_id` and the spec pinned one, a mismatch counts as down
// (mis-wired socket, not routed to). Pre-fleet workers that answer peer
// frames with an error are remembered as `peer_support = false` and
// served by plain forwarding — version negotiation by behaviour, like
// the v2 tenancy schema.
//
// Counters (docs/OBSERVABILITY.md): service.route.requests /
// lookup_hits / peer_hits / warms / compiles / rerouted / worker_down /
// unavailable, gauge service.route.workers_alive.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/ring.h"
#include "service/transport.h"

namespace sdf::svc {

struct WorkerConfig {
  std::string id;     ///< ring identity; defaults to the endpoint name
  Endpoint endpoint;
  /// True when the spec pinned the id ("id@endpoint"): the health check
  /// then verifies the worker's reported worker_id against it.
  bool pinned_id = false;
};

/// Parses a --worker spec: "[id@]{path | tcp:PORT}". The id defaults to
/// the endpoint name. kBadArgument diagnostic on malformed specs.
[[nodiscard]] Result<WorkerConfig> parse_worker_spec(std::string_view spec);

struct RouterOptions {
  /// Listeners, same convention as ServerOptions.
  std::string socket_path;
  int tcp_port = 0;
  std::vector<WorkerConfig> workers;
  /// Virtual nodes per worker on the hash ring.
  int vnodes = 64;
  /// Health-probe period. <= 0 disables the background prober (failures
  /// are still detected inline and recovery needs a restart — tests
  /// only).
  int health_interval_ms = 250;
  /// Deadline for any single worker round-trip (connect + reply). A
  /// compile slower than this is treated as a dead worker and re-routed;
  /// generous by default because the re-route recompiles from scratch.
  int worker_timeout_ms = 60000;
};

struct RouterWorkerStats {
  std::string endpoint;
  bool alive = true;
  bool peer_support = true;
  std::int64_t forwarded = 0;  ///< compile requests sent to this worker
  std::int64_t failures = 0;   ///< connect/timeout/torn-reply events
};

struct RouterStats {
  std::int64_t requests = 0;
  std::int64_t connections = 0;
  std::int64_t bad_frames = 0;
  std::int64_t errors = 0;       ///< error frames the router itself sent
  std::int64_t lookup_hits = 0;  ///< served from the shard owner's cache
  std::int64_t peer_hits = 0;    ///< served from a non-owner peer's cache
  std::int64_t warms = 0;        ///< successful owner warm inserts
  std::int64_t compiles = 0;     ///< full compiles forwarded
  std::int64_t rerouted = 0;     ///< owner failed mid-request, retried
  std::int64_t unavailable = 0;  ///< requests failed: no live worker
  std::int64_t worker_down = 0;  ///< alive -> dead transitions
  std::map<std::string, RouterWorkerStats> workers;
};

class Router {
 public:
  /// Throws BadArgumentError when `workers` is empty or ids collide.
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds listeners and starts the health thread. Same error contract
  /// as Server::start().
  void start();

  /// Accept loop; returns after a graceful drain (stop() or the process
  /// shutdown flag).
  void run();

  void stop() noexcept;

  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  [[nodiscard]] RouterStats stats() const;

  /// Live stats as the kStatsResponse payload ("sdfmem.routestats.v1").
  [[nodiscard]] std::string stats_json() const;

  /// The configured shard owner for a key, ignoring liveness (tests and
  /// capacity planning; requests use the live-failover order).
  [[nodiscard]] const std::string& shard_owner(std::uint64_t key) const {
    return ring_.owner(key);
  }

 private:
  struct WorkerState {
    WorkerConfig cfg;
    bool alive = true;
    bool peer_support = true;
    std::int64_t forwarded = 0;
    std::int64_t failures = 0;
  };

  [[nodiscard]] bool stop_requested() const noexcept;
  void serve_connection(int fd);
  void handle_frame(int fd, const Frame& frame);
  void handle_route(int fd, std::string_view payload);
  /// The failover body of handle_route once the shard key is known.
  void route_with_failover(int fd, std::string_view payload,
                           std::uint64_t key, bool have_cache_key);
  void send_frame(int fd, FrameKind kind, std::string_view payload);
  void send_error(int fd, const Diagnostic& diag);

  /// One bounded round-trip on an open worker connection; nullopt on
  /// send failure, torn reply, or timeout (caller marks the worker dead).
  [[nodiscard]] std::optional<Frame> worker_roundtrip(
      int wfd, FrameKind kind, std::string_view payload);
  /// Connects to a worker; -1 on failure (already marked dead).
  [[nodiscard]] int worker_connect(const std::string& id);
  void mark_dead(const std::string& id);
  void mark_alive(const std::string& id);
  void note_workers_alive_locked();
  /// Live workers in failover preference order for `key`.
  [[nodiscard]] std::vector<std::string> live_preference(
      std::uint64_t key) const;
  void health_loop();
  void health_check_once();

  RouterOptions options_;
  HashRing ring_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::thread health_;

  mutable std::mutex mu_;  ///< workers_ + stats_
  std::map<std::string, WorkerState> workers_;
  RouterStats stats_;
};

}  // namespace sdf::svc
