// Fleet router: shard-routed forwarding over N sdfmemd workers
// (docs/SERVICE.md, "Fleet mode").
//
// The router speaks the same SDFSVC1 protocol as a worker, so existing
// clients point at it unchanged. For every compile request it:
//
//   1. derives the shard key — the request's content-addressed cache key
//      (canonical graph x option fingerprint), the same value the worker
//      would compute, so routing and caching agree byte-for-byte. A
//      request whose graph does not parse is routed by the raw-text hash
//      instead: it still lands deterministically on one worker, which
//      produces the structured parse error.
//   2. asks the shard owner (ring.h, first live worker clockwise from
//      the key) for its cached bytes (kPeerLookupRequest). Hit: the
//      response is relayed and the request never queues for a compile.
//   3. on a shard miss, probes the other live workers for the key; a
//      peer hit is relayed to the client AND warmed into the owner
//      (kPeerInsertRequest), so subsequent requests hit at step 2. This
//      is how the fleet heals after resizes and worker replacement.
//   4. otherwise forwards the full compile request to the owner and
//      relays the reply verbatim — compile responses and typed errors
//      (overloaded, unknown-tenant, parse...) pass through unchanged, so
//      per-tenant admission keeps working per worker.
//
// Failure semantics — degrade, never hang: every worker round-trip has a
// deadline (`worker_timeout_ms`). A connect failure, torn reply, or
// timeout counts against the worker's circuit breaker and the request
// re-routes to the next live worker on the ring (counted in `rerouted`);
// each worker is attempted at most once per request, so the loop
// terminates. When no routable worker remains the client gets a typed
// `unavailable` diagnostic (ErrorCode::kUnavailable, exit 26) — an error
// frame, not a stalled connection.
//
// Circuit breakers (docs/RELIABILITY.md, "Circuit breakers"): each
// worker carries a three-state breaker instead of a binary dead flag.
// `closed` routes normally; `breaker_threshold` *consecutive* failures
// open it (one flaky round-trip among successes does not). An `open`
// worker takes no traffic until the health prober (stats frames, each
// `health_interval_ms`) sees it answer again, which moves it to
// `half_open`: exactly one in-flight trial request is allowed through —
// success closes the breaker, failure re-opens it. A probe success on a
// closed breaker also clears the failure streak, so sporadic failures
// spread over time never accumulate to a spurious open. When the worker
// reports a `worker_id` and the spec pinned one, a probe mismatch counts
// as a failure (mis-wired socket, not routed to). Pre-fleet workers that
// answer peer frames with an error are remembered as
// `peer_support = false` and served by plain forwarding — version
// negotiation by behaviour, like the v2 tenancy schema.
//
// Counters (docs/OBSERVABILITY.md): service.route.requests /
// lookup_hits / peer_hits / warms / compiles / rerouted / worker_down /
// unavailable / breaker_open / breaker_half_open / breaker_close /
// breaker_reopen, gauge service.route.workers_alive.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/ring.h"
#include "service/transport.h"

namespace sdf::svc {

struct WorkerConfig {
  std::string id;     ///< ring identity; defaults to the endpoint name
  Endpoint endpoint;
  /// True when the spec pinned the id ("id@endpoint"): the health check
  /// then verifies the worker's reported worker_id against it.
  bool pinned_id = false;
};

/// Parses a --worker spec: "[id@]{path | tcp:PORT}". The id defaults to
/// the endpoint name. kBadArgument diagnostic on malformed specs.
[[nodiscard]] Result<WorkerConfig> parse_worker_spec(std::string_view spec);

struct RouterOptions {
  /// Listeners, same convention as ServerOptions.
  std::string socket_path;
  int tcp_port = 0;
  std::vector<WorkerConfig> workers;
  /// Virtual nodes per worker on the hash ring.
  int vnodes = 64;
  /// Health-probe period. <= 0 disables the background prober (failures
  /// are still detected inline and recovery needs a restart — tests
  /// only).
  int health_interval_ms = 250;
  /// Deadline for any single worker round-trip (connect + reply). A
  /// compile slower than this is treated as a dead worker and re-routed;
  /// generous by default because the re-route recompiles from scratch.
  int worker_timeout_ms = 60000;
  /// Consecutive failures that open a worker's circuit breaker. 1
  /// reproduces the pre-breaker instant-dead behaviour.
  int breaker_threshold = 3;
};

/// Per-worker circuit-breaker state (see the file comment).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] std::string_view breaker_state_name(BreakerState s) noexcept;

struct RouterWorkerStats {
  std::string endpoint;
  bool alive = true;  ///< derived: breaker != kOpen (dashboards, smoke)
  BreakerState breaker = BreakerState::kClosed;
  int consecutive_failures = 0;
  bool peer_support = true;
  std::int64_t forwarded = 0;  ///< compile requests sent to this worker
  std::int64_t failures = 0;   ///< connect/timeout/torn-reply events
};

struct RouterStats {
  std::int64_t requests = 0;
  std::int64_t connections = 0;
  std::int64_t bad_frames = 0;
  std::int64_t errors = 0;       ///< error frames the router itself sent
  std::int64_t lookup_hits = 0;  ///< served from the shard owner's cache
  std::int64_t peer_hits = 0;    ///< served from a non-owner peer's cache
  std::int64_t warms = 0;        ///< successful owner warm inserts
  std::int64_t compiles = 0;     ///< full compiles forwarded
  std::int64_t rerouted = 0;     ///< owner failed mid-request, retried
  std::int64_t unavailable = 0;  ///< requests failed: no live worker
  std::int64_t worker_down = 0;  ///< breaker closed/half-open -> open
  std::int64_t breaker_half_open = 0;  ///< open -> half-open (probe)
  std::int64_t breaker_close = 0;      ///< half-open -> closed (trial ok)
  std::int64_t breaker_reopen = 0;     ///< half-open -> open (trial bad)
  std::map<std::string, RouterWorkerStats> workers;
};

class Router {
 public:
  /// Throws BadArgumentError when `workers` is empty or ids collide.
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds listeners and starts the health thread. Same error contract
  /// as Server::start().
  void start();

  /// Accept loop; returns after a graceful drain (stop() or the process
  /// shutdown flag).
  void run();

  void stop() noexcept;

  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  [[nodiscard]] RouterStats stats() const;

  /// Live stats as the kStatsResponse payload ("sdfmem.routestats.v1").
  [[nodiscard]] std::string stats_json() const;

  /// The configured shard owner for a key, ignoring liveness (tests and
  /// capacity planning; requests use the live-failover order).
  [[nodiscard]] const std::string& shard_owner(std::uint64_t key) const {
    return ring_.owner(key);
  }

 private:
  struct WorkerState {
    WorkerConfig cfg;
    BreakerState breaker = BreakerState::kClosed;
    int consecutive_failures = 0;
    /// True while a half-open trial request is in flight; only one
    /// request at a time probes a half-open worker.
    bool trial_inflight = false;
    bool peer_support = true;
    std::int64_t forwarded = 0;
    std::int64_t failures = 0;
  };

  [[nodiscard]] bool stop_requested() const noexcept;
  void serve_connection(int fd);
  void handle_frame(int fd, const Frame& frame);
  void handle_route(int fd, std::string_view payload);
  /// The failover body of handle_route once the shard key is known.
  void route_with_failover(int fd, std::string_view payload,
                           std::uint64_t key, bool have_cache_key);
  void send_frame(int fd, FrameKind kind, std::string_view payload);
  void send_error(int fd, const Diagnostic& diag);

  /// One bounded round-trip on an open worker connection; nullopt on
  /// send failure, torn reply, or timeout (caller records the failure).
  [[nodiscard]] std::optional<Frame> worker_roundtrip(
      int wfd, FrameKind kind, std::string_view payload);
  /// Connects to a worker; -1 on failure (failure already recorded).
  [[nodiscard]] int worker_connect(const std::string& id);
  /// One breaker failure: half-open re-opens, closed opens at the
  /// threshold. Clears any trial claim this request held.
  void record_failure(const std::string& id);
  /// One breaker success: clears the failure streak; a half-open trial
  /// success closes the breaker.
  void record_success(const std::string& id);
  /// Health-probe success: an open breaker becomes half-open (routable
  /// for one trial); a closed one just clears its failure streak.
  void note_probe_success(const std::string& id);
  void note_workers_alive_locked();
  /// The first routable worker for `key` that is not in `exclude`;
  /// claims the half-open trial slot when it takes one. Empty when none.
  [[nodiscard]] std::string acquire_owner(
      std::uint64_t key, const std::vector<std::string>& exclude);
  /// Closed-breaker peers (preference order for `key`) for shard-miss
  /// probing; never half-open workers — trials stay single-file.
  [[nodiscard]] std::vector<std::string> peer_candidates(
      std::uint64_t key, const std::string& owner,
      const std::vector<std::string>& exclude) const;
  void health_loop();
  void health_check_once();

  RouterOptions options_;
  HashRing ring_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::thread health_;

  mutable std::mutex mu_;  ///< workers_ + stats_
  std::map<std::string, WorkerState> workers_;
  RouterStats stats_;
};

}  // namespace sdf::svc
