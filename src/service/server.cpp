#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/json_report.h"
#include "obs/trace.h"
#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "service/transport.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/shutdown.h"

namespace sdf::svc {
namespace {

/// Ladder rank for load-shed capping; higher = more expensive.
int optimizer_rank(LoopOptimizer opt) noexcept {
  switch (opt) {
    case LoopOptimizer::kChainExact: return 3;
    case LoopOptimizer::kSdppo: return 2;
    case LoopOptimizer::kDppo: return 1;
    case LoopOptimizer::kFlat: return 0;
  }
  return 0;
}

}  // namespace

void LatencyHistogram::record(std::int64_t us) noexcept {
  std::size_t i = 0;
  while (i < kLatencyBucketUs.size() && us > kLatencyBucketUs[i]) ++i;
  ++buckets[i];
  ++count;
  sum_us += us;
}

LatencyHistogram LatencyHistogram::delta_since(
    const LatencyHistogram& earlier) const noexcept {
  LatencyHistogram delta;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    delta.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  delta.count = count - earlier.count;
  delta.sum_us = sum_us - earlier.sum_us;
  return delta;
}

std::int64_t LatencyHistogram::percentile_us(double p) const noexcept {
  if (count <= 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      return i < kLatencyBucketUs.size() ? kLatencyBucketUs[i]
                                         : kLatencyBucketUs.back() * 10;
    }
  }
  return kLatencyBucketUs.back() * 10;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), controller_(options_.controller) {
  if (options_.default_cost_ms <= 0) options_.default_cost_ms = 1;
  window_start_ = std::chrono::steady_clock::now();
  trace_start_ = window_start_;
  if (!options_.cache_dir.empty()) {
    cache_.emplace(options_.cache_dir);
    if (options_.hot_tier_bytes > 0) hot_.emplace(options_.hot_tier_bytes);
  }
  const int workers = util::ThreadPool::resolve_jobs(options_.jobs);
  pool_ = std::make_unique<util::ThreadPool>(workers);
  qos::AdmissionController::Options aopts;
  aopts.slots = workers > 0 ? workers : 1;
  aopts.capacity_ms = static_cast<std::int64_t>(options_.queue_capacity) *
                      options_.default_cost_ms;
  admission_ = std::make_unique<qos::AdmissionController>(options_.tenants,
                                                          aopts);
}

Server::~Server() {
  stop();
  if (scrub_.joinable()) scrub_.join();
  if (control_.joinable()) control_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
}

bool Server::stop_requested() const noexcept {
  return stop_.load(std::memory_order_relaxed) || util::shutdown_requested();
}

void Server::stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

void Server::start() {
  if (options_.socket_path.empty() && options_.tcp_port == 0) {
    throw BadArgumentError("serve: no listener configured "
                           "(need --socket and/or --port)");
  }
  // A client that hangs up mid-response turns the next send into EPIPE,
  // not a process-killing SIGPIPE.
  ignore_sigpipe();
  if (!options_.socket_path.empty()) {
    unix_fd_ = listen_unix(options_.socket_path);
  }
  if (options_.tcp_port != 0) {
    try {
      tcp_fd_ = listen_tcp(options_.tcp_port, &bound_tcp_port_);
    } catch (...) {
      close_fd(unix_fd_);
      throw;
    }
  }
  if (cache_.has_value() && options_.scrub_interval_ms > 0) {
    scrub_ = std::thread([this] { scrub_loop(); });
  }
  if (!options_.record_path.empty()) {
    recorder_ = TraceWriter::create(options_.record_path);
    trace_start_ = std::chrono::steady_clock::now();
  }
  if (control_enabled()) {
    control_ = std::thread([this] { control_loop(); });
  }
}

void Server::run() {
  while (!stop_requested()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = pollfd{tcp_fd_, POLLIN, 0};
    const int r = ::poll(fds, nfds, 50);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      // EINTR (and any other accept error) falls back to the poll loop —
      // never treated as a listener failure.
      if (conn < 0) continue;
      if (fault::enabled() && fault::should_fail("svc_accept")) {
        ::close(conn);  // injected: the accepted connection is dropped
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.connections;
      }
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.emplace_back([this, conn] { serve_connection(conn); });
    }
  }
  // Drain: no new connections; every connection thread finishes the
  // requests it already received and exits. Rate limits are lifted so a
  // throttled tenant's queued work cannot wedge the shutdown.
  admission_->drain();
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  pool_->wait();
}

void Server::serve_connection(int fd) {
  // The 50 ms read timeout is the drain-check tick: buffered frames are
  // always decoded and answered first (FrameReader drains its buffer
  // before polling), so requests received before shutdown still get
  // their responses.
  FrameReader reader;
  for (;;) {
    Frame frame;
    const ReadOutcome rc = reader.read(fd, &frame, 50);
    if (rc == ReadOutcome::kFrame) {
      try {
        handle_frame(fd, frame);
      } catch (const std::exception& e) {
        // Backstop: a handler that throws (cache IO, disk full) answers
        // with a typed error instead of taking the whole daemon down
        // via an exception escaping this thread.
        send_error(fd, diagnostic_from_exception(e));
      }
      continue;
    }
    if (rc == ReadOutcome::kTimeout) {
      if (stop_requested()) break;
      continue;
    }
    if (rc == ReadOutcome::kClosed) break;  // EOF — client is done
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_frames;
    }
    obs::count("service.bad_frames");
    Diagnostic diag;
    diag.code = ErrorCode::kBadArgument;
    diag.message =
        "bad frame: " + std::string(decode_status_name(reader.last_decode())) +
        " (protocol SDFSVC1, see docs/SERVICE.md)";
    send_error(fd, diag);
    break;
  }
  ::close(fd);
}

void Server::handle_frame(int fd, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kPing:
      send_frame(fd, FrameKind::kPong, frame.payload);
      return;
    case FrameKind::kStatsRequest:
      send_frame(fd, FrameKind::kStatsResponse, stats_json());
      return;
    case FrameKind::kCompileRequest:
      handle_compile(fd, frame.payload);
      return;
    case FrameKind::kPeerLookupRequest:
      handle_peer_lookup(fd, frame.payload);
      return;
    case FrameKind::kPeerInsertRequest:
      handle_peer_insert(fd, frame.payload);
      return;
    default: {
      Diagnostic diag;
      diag.code = ErrorCode::kBadArgument;
      diag.message = "unexpected frame kind " +
                     std::to_string(static_cast<int>(frame.kind)) +
                     " (server accepts compile/ping/stats requests)";
      send_error(fd, diag);
      return;
    }
  }
}

void Server::note_queue_depth() {
  const std::int64_t depth = admission_->total_depth();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  }
  obs::gauge("service.queue_depth", depth);
}

void Server::handle_compile(int fd, std::string_view payload) {
  const auto started = std::chrono::steady_clock::now();
  // Latency is attributed per tenant once the request names one; until
  // then (frame/JSON errors) it lands on `public`.
  std::string tenant{qos::kPublicTenant};
  // Trace skeleton (docs/CONTROL.md); every return path below goes
  // through finish(), which appends it when recording is on.
  TraceRecord rec;
  rec.lane = fd;
  rec.outcome = "error";
  const auto finish = [&] {
    record_latency(tenant,
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - started)
                       .count());
    if (recorder_ != nullptr) {
      rec.tick_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        started - trace_start_)
                        .count();
      if (rec.tick_us < 0) rec.tick_us = 0;
      rec.tenant = tenant;
      rec.request.assign(payload.data(), payload.size());
      record_trace(rec);
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  obs::count("service.requests");

  if (fault::enabled() && fault::should_fail("svc_worker_stall")) {
    // Injected stall: long enough to trip a chaos-tuned router deadline
    // (worker_timeout_ms well under 400 ms), short enough that test
    // teardown drains promptly.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }

  Result<CompileRequest> parsed = parse_compile_request(payload);
  if (!parsed.ok()) {
    send_error(fd, parsed.error());
    finish();
    return;
  }
  const CompileRequest& req = parsed.value();

  // Tenant resolution comes before any work — including cache reads —
  // so an unregistered tenant cannot consume anything but the lookup.
  if (!req.tenant.empty()) tenant = req.tenant;
  const qos::TenantSettings* tenant_settings =
      admission_->registry().find(tenant);
  if (tenant_settings == nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.unknown_tenant;
    }
    obs::count("service.tenant.unknown");
    Diagnostic diag;
    diag.code = ErrorCode::kUnknownTenant;
    diag.message = "unknown tenant '" + tenant +
                   "': not in this server's registry "
                   "(--tenants-config, docs/TENANCY.md)";
    send_error(fd, diag);
    finish();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.tenants[tenant].requests;
  }
  obs::count("service.tenant." + tenant + ".requests");

  Graph g;
  try {
    g = parse_graph_text(req.graph_text);
  } catch (const std::exception& e) {
    send_error(fd, diagnostic_from_exception(e));
    finish();
    return;
  }
  const std::string canonical = write_graph_text(g);
  const std::string fingerprint = option_fingerprint(req);
  const std::uint64_t key = cache_key(canonical, fingerprint);
  rec.key_hex = key_hex(key);
  rec.actors = static_cast<std::int64_t>(g.num_actors());
  rec.deadline_ms = req.deadline_ms;

  if (cache_.has_value()) {
    if (std::optional<std::string> hit = cache_fetch(key)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.cache_hits;
        ++stats_.tenants[tenant].cache_hits;
        ++stats_.responses_ok;
      }
      obs::count("service.tenant." + tenant + ".cache_hits");
      rec.outcome = "hit";
      rec.full_fidelity = true;  // the cache only holds full fidelity
      rec.response_hash = key_hex(util::fnv1a64(*hit));
      send_frame(fd, FrameKind::kCompileResponse, *hit);
      finish();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_misses;
      ++stats_.tenants[tenant].cache_misses;
    }
    obs::count("service.tenant." + tenant + ".cache_misses");
  }

  // Admission cost: the request's own deadline when it has one; else the
  // measured per-size-bucket EWMA while the controller is on (falling
  // back to --cost-ms until the bucket has a sample), else --cost-ms.
  std::int64_t cost_ms;
  if (req.deadline_ms > 0) {
    cost_ms = req.deadline_ms;
  } else if (control_enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    cost_ms = cost_model_.estimate_ms(rec.actors, options_.default_cost_ms);
  } else {
    cost_ms = options_.default_cost_ms;
  }
  rec.cost_ms = cost_ms;
  const qos::AdmissionController::Ticket ticket =
      admission_->acquire(tenant, cost_ms);
  if (ticket.status !=
      qos::AdmissionController::Ticket::Status::kGranted) {
    rec.outcome = "overloaded";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.overloaded;
      ++stats_.tenants[tenant].overloaded;
    }
    obs::count("service.overloaded");
    obs::count("service.tenant." + tenant + ".overloaded");
    Diagnostic diag;
    diag.code = ErrorCode::kOverloaded;
    diag.message =
        "tenant '" + tenant + "' overloaded: backlog would exceed its " +
        std::to_string(ticket.share_ms) + " ms share of capacity (queue " +
        std::to_string(options_.queue_capacity) + " x " +
        std::to_string(options_.default_cost_ms) + " ms); retry later";
    send_error(fd, diag);
    finish();
    return;
  }
  note_queue_depth();
  if (ticket.queue_wait_us > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.tenants[tenant].throttle_wait_us += ticket.queue_wait_us;
  }

  // Apply the tenant's load-shed tier, if any, without touching the
  // request's own option fingerprint — shed responses are served but
  // never cached.
  CompileOptions effective = req.options;
  bool shedded = false;
  std::optional<LoopOptimizer> optimizer_cap;
  bool force_topo_order = false;
  switch (ticket.tier) {
    case qos::AdmissionController::PressureTier::kNormal: break;
    case qos::AdmissionController::PressureTier::kCapped:
      optimizer_cap = LoopOptimizer::kDppo;
      break;
    case qos::AdmissionController::PressureTier::kDegraded:
      optimizer_cap = LoopOptimizer::kFlat;
      force_topo_order = true;
      break;
  }
  if (optimizer_cap.has_value() &&
      optimizer_rank(effective.optimizer) >
          optimizer_rank(*optimizer_cap)) {
    effective.optimizer = *optimizer_cap;
    shedded = true;
  }
  if (force_topo_order &&
      effective.order != OrderHeuristic::kTopological) {
    effective.order = OrderHeuristic::kTopological;
    shedded = true;
  }
  if (shedded) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.shed_degraded;
      ++stats_.tenants[tenant].shed_degraded;
    }
    obs::count("service.shed_degraded");
    obs::count("service.tenant." + tenant + ".shed_degraded");
  }

  // Merge the request budget under the server ceiling: the tighter of
  // the two nonzero values wins on each axis.
  ResourceBudget budget = options_.budget;
  if (req.deadline_ms > 0 &&
      (budget.deadline_ms == 0 || req.deadline_ms < budget.deadline_ms)) {
    budget.deadline_ms = req.deadline_ms;
  }
  if (req.dp_mem_bytes > 0 &&
      (budget.dp_mem_bytes == 0 ||
       req.dp_mem_bytes < budget.dp_mem_bytes)) {
    budget.dp_mem_bytes = req.dp_mem_bytes;
  }
  const bool governed = budget.deadline_ms > 0 || budget.dp_mem_bytes > 0;

  std::int64_t wall_ns = 0;
  const auto run_compile = [&]() -> Result<CompileResult> {
    const obs::Span span("service.compile");
    // Measured wall time feeds the admission cost model; it brackets the
    // compile only, not queueing or response framing.
    const auto t0 = std::chrono::steady_clock::now();
    Result<CompileResult> result = [&] {
      if (!governed) return compile_checked(g, effective);
      // The governor scope is process-global; budgeted compiles
      // serialize so concurrent scopes cannot cross-restore.
      std::lock_guard<std::mutex> lock(governed_mu_);
      ResourceGovernor governor(budget);
      const ResourceGovernor::Scope scope(governor);
      return compile_checked(g, effective);
    }();
    wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    return result;
  };

  std::optional<Result<CompileResult>> outcome;
  if (pool_->threads() == 0) {
    // Worker spawning failed (pool_spawn fault / exhausted host): degrade
    // to compiling on the connection thread rather than deadlocking.
    outcome.emplace(run_compile());
  } else {
    std::promise<void> done;
    pool_->submit([&] {
      outcome.emplace(run_compile());
      done.set_value();
    });
    done.get_future().wait();
  }
  admission_->release(ticket);
  note_queue_depth();
  rec.wall_ns = wall_ns;
  {
    // The model learns whatever compile actually ran — degraded tiers
    // included — which is exactly what the next admission decision for a
    // similarly-sized graph will cost under the same load.
    std::lock_guard<std::mutex> lock(mu_);
    cost_model_.record(rec.actors, wall_ns);
  }
  obs::count("service.cost_model.samples");

  if (!outcome->ok()) {
    send_error(fd, outcome->error());
    finish();
    return;
  }
  const CompileResult& res = outcome->value();

  obs::Json doc = obs::Json::object();
  doc["schema"] = "sdfmem.telemetry.v1";
  doc["tool"] = "sdfmemd";
  obs::Json graph = obs::Json::object();
  graph["name"] = g.name();
  graph["actors"] = static_cast<std::int64_t>(g.num_actors());
  graph["edges"] = static_cast<std::int64_t>(g.num_edges());
  doc["graph"] = std::move(graph);
  obs::Json request = obs::Json::object();
  request["key"] = key_hex(key);
  request["options"] = fingerprint;
  doc["request"] = std::move(request);
  obs::Json results = obs::Json::object();
  results["schedule"] = res.schedule.to_string(g);
  results["nonshared_bufmem"] = res.nonshared_bufmem;
  results["dp_estimate"] = res.dp_estimate;
  results["shared_size"] = res.shared_size;
  results["bmlb"] = res.bmlb;
  results["mcw_optimistic"] = res.mcw_optimistic;
  results["mcw_pessimistic"] = res.mcw_pessimistic;
  results["order"] = std::string(order_name(effective.order));
  results["optimizer"] =
      std::string(optimizer_name(res.effective_optimizer));
  results["requested_optimizer"] =
      std::string(optimizer_name(req.options.optimizer));
  if (!res.degradation_path().empty()) {
    results["degraded_from"] = res.degradation_path();
  }
  if (res.order_degraded) results["order_degraded"] = true;
  if (shedded) results["load_shed"] = true;
  doc["results"] = std::move(results);
  const std::string response = doc.dump(2);

  // Only full-fidelity compiles enter the cache: a shed- or
  // budget-degraded result depends on transient load and must never be
  // replayed as the canonical answer for this key.
  const bool full_fidelity =
      !shedded && res.degradation_path().empty() && !res.order_degraded;
  const bool cacheable = cache_.has_value() && full_fidelity;
  rec.outcome = "ok";
  rec.shed = shedded;
  rec.full_fidelity = full_fidelity;
  if (full_fidelity) rec.response_hash = key_hex(util::fnv1a64(response));
  if (cacheable) {
    // Cache-bytes quota (docs/TENANCY.md): a tenant over its insert
    // quota stops adding entries but keeps reading — the cache is
    // content-addressed and shared, so hits on entries other tenants
    // inserted still apply.
    bool quota_ok = true;
    if (tenant_settings->cache_quota_bytes > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      quota_ok = stats_.tenants[tenant].cache_bytes +
                     static_cast<std::int64_t>(response.size()) <=
                 tenant_settings->cache_quota_bytes;
    }
    if (quota_ok) {
      if (cache_store(key, response)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.tenants[tenant].cache_inserts;
          stats_.tenants[tenant].cache_bytes +=
              static_cast<std::int64_t>(response.size());
        }
        obs::count("service.tenant." + tenant + ".cache_inserts");
      }
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.tenants[tenant].quota_denied;
      }
      obs::count("service.tenant." + tenant + ".cache_quota_denied");
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.responses_ok;
  }
  send_frame(fd, FrameKind::kCompileResponse, response);
  finish();
}

std::optional<std::string> Server::cache_fetch(std::uint64_t key) {
  if (hot_.has_value()) {
    if (std::optional<std::string> hit = hot_->lookup(key)) return hit;
  }
  if (!cache_.has_value()) return std::nullopt;
  std::optional<std::string> hit = cache_->lookup(key);
  // A verified disk read warms the hot tier, so the next read for this
  // key never touches the filesystem. Bytes are identical by
  // construction: the hot tier only ever holds what the disk tier
  // returned (or what was just durably inserted).
  if (hit.has_value() && hot_.has_value()) hot_->insert(key, *hit);
  return hit;
}

bool Server::cache_store(std::uint64_t key, std::string_view payload) {
  try {
    if (cache_.has_value()) cache_->insert(key, payload);
  } catch (const std::exception&) {
    // A failed durable insert (disk full, injected svc_cache_write)
    // degrades to an uncached response — the client still gets its
    // bytes; only this key's next request pays a recompile. The hot
    // tier is skipped: it must only hold disk-vouched bytes.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_write_failures;
    }
    obs::count("service.cache.write_failures");
    return false;
  }
  if (hot_.has_value()) hot_->insert(key, payload);
  return true;
}

void Server::scrub_loop() {
  for (;;) {
    for (int waited = 0;
         waited < options_.scrub_interval_ms && !stop_requested();
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (stop_requested()) return;
    const std::vector<std::uint64_t> quarantined = cache_->scrub_once();
    // A quarantined key's hot-tier copy is dropped too: the disk tier no
    // longer vouches for those bytes, so the next read must be a clean
    // miss -> recompile, not a resident stale copy.
    if (hot_.has_value()) {
      for (const std::uint64_t key : quarantined) hot_->erase(key);
    }
  }
}

void Server::record_trace(const TraceRecord& record) {
  try {
    recorder_->append(record);
  } catch (const std::exception&) {
    // Recording is observability, not correctness: a full disk must not
    // fail the request it was describing.
    std::lock_guard<std::mutex> lock(mu_);
    ++trace_errors_;
  }
}

void Server::control_loop() {
  for (;;) {
    for (int waited = 0;
         waited < options_.control_interval_ms && !stop_requested();
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (stop_requested()) return;
    control_tick();
  }
}

ControlWindow Server::snapshot_window_locked() const {
  const auto now = std::chrono::steady_clock::now();
  ControlWindow w;
  w.window_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - window_start_)
                    .count();
  w.requests = stats_.requests - window_base_.requests;
  w.responses_ok = stats_.responses_ok - window_base_.responses_ok;
  w.cache_hits = stats_.cache_hits - window_base_.cache_hits;
  w.cache_misses = stats_.cache_misses - window_base_.cache_misses;
  w.overloaded = stats_.overloaded - window_base_.overloaded;
  w.shed_degraded = stats_.shed_degraded - window_base_.shed_degraded;
  w.errors = stats_.errors - window_base_.errors;
  w.latency = stats_.latency.delta_since(window_base_.latency);
  for (const auto& [name, ts] : stats_.tenants) {
    const auto base = window_base_.tenants.find(name);
    const std::int64_t base_req =
        base == window_base_.tenants.end() ? 0 : base->second.requests;
    const std::int64_t base_ov =
        base == window_base_.tenants.end() ? 0 : base->second.overloaded;
    if (ts.requests != base_req) {
      w.tenant_requests[name] = ts.requests - base_req;
    }
    if (ts.overloaded != base_ov) {
      w.tenant_overloaded[name] = ts.overloaded - base_ov;
    }
  }
  w.counters = counter_window_.snapshot("service.");
  window_base_ = stats_;
  window_start_ = now;
  last_window_ = w;
  return w;
}

ctl::Decision Server::control_tick() {
  ctl::IntervalMetrics metrics;
  ctl::Decision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ControlWindow w = snapshot_window_locked();
    metrics.requests = w.requests;
    metrics.overloaded = w.overloaded;
    metrics.shed_degraded = w.shed_degraded;
    metrics.cache_hits = w.cache_hits;
    metrics.p95_us = w.latency.percentile_us(95);
    metrics.tenant_requests = w.tenant_requests;
    metrics.tenant_overloaded = w.tenant_overloaded;
    decision = controller_.tick(metrics);
    last_decision_ = decision;
  }
  // Apply outside mu_: the admission controller has its own lock and
  // must never nest inside the stats mutex.
  admission_->set_trip_points(decision.knobs.capped_x1000,
                              decision.knobs.degraded_x1000);
  for (const auto& [name, settings] : admission_->registry().tenants()) {
    const auto it = decision.knobs.boost_x1000.find(name);
    admission_->set_share_boost(
        name, it == decision.knobs.boost_x1000.end() ? 1000 : it->second);
  }
  obs::count("service.control.ticks");
  if (decision.adjustments > 0) {
    obs::count("service.control.adjustments", decision.adjustments);
  }
  if (decision.clamped > 0) {
    obs::count("service.control.clamped", decision.clamped);
  }
  obs::gauge("service.control.capped_x1000", decision.knobs.capped_x1000);
  obs::gauge("service.control.degraded_x1000",
             decision.knobs.degraded_x1000);
  obs::gauge("service.control.utility_x1000", decision.utility_x1000);
  obs::gauge("service.control.shed_x1000", decision.shed_x1000);
  return decision;
}

// Fleet peering (docs/SERVICE.md "Fleet mode"): the router asks this
// worker for cached bytes by key. Peer lookups must stay cheap — they
// are on the router's critical path for every shard hit — so they go
// straight to the cache tiers and never touch admission or tenancy (the
// cached document is tenant-independent by the cache-key contract).
void Server::handle_peer_lookup(int fd, std::string_view payload) {
  const Result<std::uint64_t> key = parse_peer_lookup(payload);
  if (!key.ok()) {
    send_error(fd, key.error());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.peer_lookups;
  }
  obs::count("service.peer.lookups");
  std::optional<std::string> hit = cache_fetch(key.value());
  if (hit.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.peer_lookup_hits;
  }
  // Miss = empty payload; cached documents are never empty.
  send_frame(fd, FrameKind::kPeerLookupResponse,
             hit.has_value() ? *hit : std::string_view{});
}

// Warm insert: the router found the bytes on another worker and hands
// them to this shard owner. Only ever called with bytes that came out of
// a peer's verified cache, so full-fidelity by the cache contract; the
// insert is durable (disk tier) before the ack.
void Server::handle_peer_insert(int fd, std::string_view payload) {
  const Result<PeerInsert> parsed = parse_peer_insert(payload);
  if (!parsed.ok()) {
    send_error(fd, parsed.error());
    return;
  }
  if (!cache_.has_value()) {
    Diagnostic diag;
    diag.code = ErrorCode::kBadArgument;
    diag.message = "peer insert: this worker runs without a cache";
    send_error(fd, diag);
    return;
  }
  if (!cache_store(parsed.value().key, parsed.value().object)) {
    // The router must not count a warm that is not durable here.
    Diagnostic diag;
    diag.code = ErrorCode::kIo;
    diag.message = "peer insert: durable cache write failed";
    send_error(fd, diag);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.peer_inserts;
  }
  obs::count("service.peer.inserts");
  send_frame(fd, FrameKind::kPeerInsertResponse, "");
}

void Server::send_frame(int fd, FrameKind kind, std::string_view payload) {
  if (!send_all(fd, encode_frame(kind, payload))) {
    // A half-sent reply is unrecoverable on this connection: shut the
    // socket down so the peer's blocking read sees EOF (a typed kClosed)
    // instead of waiting forever on a frame that will never complete.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::send_error(int fd, const Diagnostic& diag) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  obs::count("service.errors");
  obs::Json doc = obs::Json::object();
  doc["error"] = diagnostic_to_json(diag);
  send_frame(fd, FrameKind::kErrorResponse, doc.dump(2));
}

void Server::record_latency(const std::string& tenant, std::int64_t us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.latency.record(us);
    if (admission_->registry().find(tenant) != nullptr) {
      stats_.tenants[tenant].latency.record(us);
    }
  }
  std::size_t i = 0;
  while (i < kLatencyBucketUs.size() && us > kLatencyBucketUs[i]) ++i;
  obs::count(i < kLatencyBucketUs.size()
                 ? "service.latency_le_us." +
                       std::to_string(kLatencyBucketUs[i])
                 : std::string("service.latency_le_us.inf"));
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string Server::stats_json() const {
  ServerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  const std::int64_t depth = admission_->total_depth();
  obs::Json doc = obs::Json::object();
  doc["schema"] = "sdfmem.stats.v1";
  if (!options_.worker_id.empty()) doc["worker_id"] = options_.worker_id;
  doc["requests"] = snapshot.requests;
  doc["responses_ok"] = snapshot.responses_ok;
  doc["errors"] = snapshot.errors;
  doc["overloaded"] = snapshot.overloaded;
  doc["shed_degraded"] = snapshot.shed_degraded;
  doc["bad_frames"] = snapshot.bad_frames;
  doc["unknown_tenant"] = snapshot.unknown_tenant;
  doc["connections"] = snapshot.connections;
  doc["queue_depth"] = depth;
  doc["max_queue_depth"] = snapshot.max_queue_depth;
  obs::Json cache = obs::Json::object();
  if (cache_.has_value()) {
    const CacheStats cs = cache_->stats();
    const HotTierStats hs =
        hot_.has_value() ? hot_->stats() : HotTierStats{};
    // "hits" keeps its pre-fleet meaning — served from cache, whichever
    // tier — so dashboards and the CI smoke asserts survive the split.
    cache["hits"] = cs.hits + hs.hits;
    cache["misses"] = cs.misses;
    cache["inserts"] = cs.inserts;
    cache["corrupt"] = cs.corrupt;
    cache["entries"] = cs.entries;
    cache["hot_hits"] = hs.hits;
    cache["hot_misses"] = hs.misses;
    cache["hot_inserts"] = hs.inserts;
    cache["hot_evictions"] = hs.evictions;
    cache["hot_bytes"] = hs.bytes;
    cache["hot_entries"] = hs.entries;
    cache["scrub_passes"] = cs.scrub_passes;
    cache["scrub_checked"] = cs.scrub_checked;
    cache["scrub_quarantined"] = cs.scrub_quarantined;
    cache["write_failures"] = snapshot.cache_write_failures;
  }
  doc["cache"] = std::move(cache);
  obs::Json peer = obs::Json::object();
  peer["lookups"] = snapshot.peer_lookups;
  peer["lookup_hits"] = snapshot.peer_lookup_hits;
  peer["inserts"] = snapshot.peer_inserts;
  doc["peer"] = std::move(peer);
  obs::Json latency = obs::Json::object();
  latency["count"] = snapshot.latency.count;
  latency["sum_us"] = snapshot.latency.sum_us;
  latency["p50_us"] = snapshot.latency.percentile_us(50);
  latency["p95_us"] = snapshot.latency.percentile_us(95);
  latency["p99_us"] = snapshot.latency.percentile_us(99);
  doc["latency"] = std::move(latency);
  // Every registered tenant appears, traffic or not, so dashboards and
  // the CI smoke assertions can key on names unconditionally.
  obs::Json tenants = obs::Json::object();
  for (const auto& [name, settings] : admission_->registry().tenants()) {
    const TenantStats& ts = snapshot.tenants[name];
    obs::Json t = obs::Json::object();
    t["weight"] = settings.weight;
    t["share_ms"] = admission_->share_ms(name);
    t["backlog_ms"] = admission_->backlog_ms(name);
    t["rate_ms_per_sec"] = settings.rate_ms_per_sec;
    t["cache_quota_bytes"] = settings.cache_quota_bytes;
    t["requests"] = ts.requests;
    t["cache_hits"] = ts.cache_hits;
    t["cache_misses"] = ts.cache_misses;
    t["overloaded"] = ts.overloaded;
    t["shed_degraded"] = ts.shed_degraded;
    t["throttle_wait_us"] = ts.throttle_wait_us;
    t["cache_inserts"] = ts.cache_inserts;
    t["cache_bytes"] = ts.cache_bytes;
    t["cache_quota_denied"] = ts.quota_denied;
    obs::Json lat = obs::Json::object();
    lat["count"] = ts.latency.count;
    lat["p50_us"] = ts.latency.percentile_us(50);
    lat["p95_us"] = ts.latency.percentile_us(95);
    lat["p99_us"] = ts.latency.percentile_us(99);
    t["latency"] = std::move(lat);
    tenants[name] = std::move(t);
  }
  doc["tenants"] = std::move(tenants);
  // Reset-on-snapshot monitoring window plus the sdfmem.controlstats.v1
  // object (docs/CONTROL.md). When the control loop is running it owns
  // the window cadence and stats reports the last completed interval;
  // otherwise each stats call advances the window itself.
  ControlWindow w;
  ctl::Decision last;
  ctl::CostModel cost_model;
  std::int64_t ctl_ticks = 0;
  std::int64_t ctl_adjustments = 0;
  std::int64_t ctl_clamped = 0;
  std::int64_t trace_errors = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    w = control_enabled() ? last_window_ : snapshot_window_locked();
    last = last_decision_;
    cost_model = cost_model_;
    ctl_ticks = controller_.ticks();
    ctl_adjustments = controller_.adjustments();
    ctl_clamped = controller_.clamped();
    trace_errors = trace_errors_;
  }
  obs::Json window = obs::Json::object();
  window["window_ms"] = w.window_ms;
  window["requests"] = w.requests;
  window["responses_ok"] = w.responses_ok;
  window["cache_hits"] = w.cache_hits;
  window["cache_misses"] = w.cache_misses;
  window["overloaded"] = w.overloaded;
  window["shed_degraded"] = w.shed_degraded;
  window["errors"] = w.errors;
  obs::Json window_latency = obs::Json::object();
  window_latency["count"] = w.latency.count;
  window_latency["p50_us"] = w.latency.percentile_us(50);
  window_latency["p95_us"] = w.latency.percentile_us(95);
  window_latency["p99_us"] = w.latency.percentile_us(99);
  window["latency"] = std::move(window_latency);
  obs::Json window_tenant_requests = obs::Json::object();
  for (const auto& [name, value] : w.tenant_requests) {
    window_tenant_requests[name] = value;
  }
  window["tenant_requests"] = std::move(window_tenant_requests);
  obs::Json window_tenant_overloaded = obs::Json::object();
  for (const auto& [name, value] : w.tenant_overloaded) {
    window_tenant_overloaded[name] = value;
  }
  window["tenant_overloaded"] = std::move(window_tenant_overloaded);
  obs::Json window_counters = obs::Json::object();
  for (const auto& [name, value] : w.counters) {
    window_counters[name] = value;
  }
  window["counters"] = std::move(window_counters);
  doc["window"] = std::move(window);
  obs::Json control = obs::Json::object();
  control["schema"] = "sdfmem.controlstats.v1";
  control["enabled"] = control_enabled();
  control["interval_ms"] = options_.control_interval_ms;
  control["ticks"] = ctl_ticks;
  control["adjustments"] = ctl_adjustments;
  control["clamped"] = ctl_clamped;
  // Knob readbacks come from admission itself — what is actually being
  // enforced, not what the controller last asked for.
  control["capped_x1000"] = admission_->capped_x1000();
  control["degraded_x1000"] = admission_->degraded_x1000();
  obs::Json boosts = obs::Json::object();
  for (const auto& [name, settings] : admission_->registry().tenants()) {
    const std::int64_t boost = admission_->share_boost_x1000(name);
    if (boost != 1000) boosts[name] = boost;
  }
  control["boosts_x1000"] = std::move(boosts);
  obs::Json last_decision = obs::Json::object();
  last_decision["reason"] = last.reason.empty() ? "none" : last.reason;
  last_decision["shed_x1000"] = last.shed_x1000;
  last_decision["degraded_x1000"] = last.degraded_x1000;
  last_decision["utility_x1000"] = last.utility_x1000;
  last_decision["adjustments"] = last.adjustments;
  last_decision["clamped"] = last.clamped;
  control["last_decision"] = std::move(last_decision);
  obs::Json cost = obs::Json::object();
  cost["source"] = control_enabled() ? "ewma" : "static";
  cost["static_cost_ms"] = options_.default_cost_ms;
  obs::Json cost_buckets = obs::Json::array();
  for (int b = 0; b < ctl::kCostBuckets; ++b) {
    const ctl::CostBucket& bucket = cost_model.buckets()[b];
    obs::Json entry = obs::Json::object();
    entry["min_actors"] = ctl::cost_bucket_floor(b);
    entry["samples"] = bucket.samples;
    entry["ewma_ns"] = bucket.ewma_ns;
    entry["estimate_ms"] = cost_model.estimate_ms(ctl::cost_bucket_floor(b),
                                                  options_.default_cost_ms);
    cost_buckets.push_back(std::move(entry));
  }
  cost["buckets"] = std::move(cost_buckets);
  control["cost_model"] = std::move(cost);
  obs::Json recording = obs::Json::object();
  recording["active"] = recorder_ != nullptr;
  if (recorder_ != nullptr) {
    recording["path"] = recorder_->path();
    recording["records"] = recorder_->records();
  }
  recording["errors"] = trace_errors;
  control["recording"] = std::move(recording);
  doc["control"] = std::move(control);
  return doc.dump(2);
}

}  // namespace sdf::svc
