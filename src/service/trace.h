// Deterministic request tracing for sdfmemd (docs/CONTROL.md).
//
// `serve --record <file>` journals one record per compile request —
// arrival tick, connection lane, tenant, canonical cache key, outcome,
// measured compile wall time, and the raw request payload — as
// CRC-framed `sdfmem.trace.v1` records on the crash-consistent journal
// (util/journal.h). A trace is therefore:
//
//   * replayable: every record carries the exact kCompileRequest bytes,
//     so `bench/trace_replay` can re-issue the identical workload
//     against a live daemon at 1x/2x/4x time compression;
//   * verifiable: full-fidelity responses record an FNV-1a hash of the
//     response payload, so a replay can assert byte-identity without
//     storing the (much larger) response bytes;
//   * simulatable: measured wall-ns per degradation tier feed the
//     virtual-time simulator (service/control.h) that evaluates
//     controller policies deterministically.
//
// Strictness: a trace consumed for replay must be complete. Unlike the
// batch journal — where a torn tail is expected crash debris —
// read_trace() treats a torn tail, a wrong header schema, or an
// unparseable record as a typed error (CorruptJournalError / ParseError),
// because replaying a silently truncated workload would invalidate every
// A/B conclusion drawn from it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/journal.h"
#include "util/status.h"

namespace sdf::svc {

inline constexpr std::string_view kTraceSchema = "sdfmem.trace.v1";

/// One request observed by the daemon (or synthesized by the bench).
struct TraceRecord {
  /// Arrival offset from the start of recording, microseconds. Replay
  /// divides this by the compression factor to pace re-issue.
  std::int64_t tick_us = 0;
  /// Stable per-connection lane id; replay uses one client per lane so
  /// per-lane request order is preserved exactly.
  std::int64_t lane = 0;
  std::string tenant;        ///< resolved tenant ("" = public)
  std::string key_hex;       ///< canonical cache key; "" when unparsed
  /// "ok" | "hit" | "overloaded" | "error" — what the recording server
  /// actually answered. Replay outcomes may differ (that is the point).
  std::string outcome;
  bool shed = false;         ///< served at a load-degraded tier
  bool full_fidelity = false;  ///< response carried no degradation marker
  std::int64_t deadline_ms = 0;  ///< request deadline (admission cost basis)
  std::int64_t cost_ms = 0;      ///< admission cost the recorder charged
  std::int64_t actors = 0;       ///< graph size (cost-model bucket basis)
  /// Measured compile wall time at the tier actually served; 0 for
  /// hits/rejects. The *_capped/*_degraded variants are optional (0 =
  /// unknown) and only populated by the bench capture pass, where each
  /// key is compiled once per tier so the simulator can model the
  /// speedup a degraded tier buys.
  std::int64_t wall_ns = 0;
  std::int64_t wall_ns_capped = 0;
  std::int64_t wall_ns_degraded = 0;
  /// FNV-1a 64 of the full-fidelity response payload, as 16 hex chars
  /// ("" when the response was degraded or errored).
  std::string response_hash;
  /// The exact kCompileRequest payload bytes, for re-issue.
  std::string request;
};

/// Serialized record (one JSON object, fixed field order).
[[nodiscard]] std::string encode_trace_record(const TraceRecord& record);

/// Strict inverse of encode_trace_record; kParse diagnostic on malformed
/// JSON, missing required fields, or wrong value types.
[[nodiscard]] Result<TraceRecord> parse_trace_record(std::string_view text);

/// Thread-safe appender: one durable journal record per request.
/// create() refuses to overwrite an existing file (BadArgumentError), so
/// a restarted daemon cannot silently splice two workloads into one
/// trace.
class TraceWriter {
 public:
  [[nodiscard]] static std::unique_ptr<TraceWriter> create(
      const std::string& path);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& record);

  [[nodiscard]] std::int64_t records() const;
  [[nodiscard]] const std::string& path() const noexcept {
    return journal_.path();
  }

 private:
  explicit TraceWriter(util::JournalWriter journal)
      : journal_(std::move(journal)) {}

  mutable std::mutex mu_;
  util::JournalWriter journal_;
  std::int64_t count_ = 0;
};

/// A fully-validated trace, sorted by (tick_us, lane, append order) — the
/// byte-deterministic replay order.
struct Trace {
  std::vector<TraceRecord> records;
};

/// Reads and validates a trace file. Throws IoError (unreadable),
/// CorruptJournalError (bad magic, wrong schema, torn tail), or
/// ParseError (malformed record) — truncated or corrupt traces are
/// rejected, never partially replayed.
[[nodiscard]] Trace read_trace(const std::string& path);

}  // namespace sdf::svc
