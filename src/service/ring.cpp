#include "service/ring.h"

#include "util/hash.h"
#include "util/status.h"

namespace sdf::svc {
namespace {

/// splitmix64 finalizer. FNV-1a avalanches poorly on short inputs — the
/// high bits that drive the ring ordering barely move between "w1#3" and
/// "w1#4", which clumps a worker's vnodes and wrecks the balance bound —
/// so the ring mixes the FNV value before using it as a position.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t vnode_hash(std::string_view id, int k) {
  // "id#k" hashed in two chained steps so the id bytes and the vnode
  // ordinal cannot collide across different id lengths.
  const std::uint64_t base = util::fnv1a64(id);
  return mix64(util::fnv1a64("#" + std::to_string(k), base));
}

}  // namespace

HashRing::HashRing(int vnodes) : vnodes_(vnodes > 0 ? vnodes : 1) {}

void HashRing::add(const std::string& id) {
  if (id.empty()) throw BadArgumentError("ring: empty worker id");
  if (ids_.count(id) > 0) return;
  ids_[id] = vnodes_;
  for (int k = 0; k < vnodes_; ++k) {
    // On the (astronomically unlikely) vnode hash collision the earlier
    // id keeps the point; ownership stays deterministic either way.
    points_.emplace(vnode_hash(id, k), id);
  }
}

void HashRing::remove(const std::string& id) {
  const auto it = ids_.find(id);
  if (it == ids_.end()) return;
  for (int k = 0; k < it->second; ++k) {
    const auto p = points_.find(vnode_hash(id, k));
    if (p != points_.end() && p->second == id) points_.erase(p);
  }
  ids_.erase(it);
}

bool HashRing::contains(std::string_view id) const {
  return ids_.count(std::string(id)) > 0;
}

std::vector<std::string> HashRing::ids() const {
  std::vector<std::string> out;
  out.reserve(ids_.size());
  for (const auto& [id, n] : ids_) out.push_back(id);
  return out;
}

const std::string& HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) throw InternalError("ring: no workers");
  auto it = points_.lower_bound(key);
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<std::string> HashRing::owners(std::uint64_t key,
                                          std::size_t count) const {
  std::vector<std::string> out;
  if (points_.empty() || count == 0) return out;
  count = std::min(count, ids_.size());
  auto it = points_.lower_bound(key);
  // Walk clockwise collecting distinct ids in first-seen order.
  for (std::size_t steps = 0; steps < points_.size() && out.size() < count;
       ++steps) {
    if (it == points_.end()) it = points_.begin();
    bool seen = false;
    for (const std::string& id : out) {
      if (id == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(it->second);
    ++it;
  }
  return out;
}

}  // namespace sdf::svc
