#include "service/control.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <utility>

#include "service/protocol.h"

namespace sdf::svc::ctl {
namespace {

/// Ladder rank, mirroring the server's shed mapping; higher = more
/// expensive.
int optimizer_rank(LoopOptimizer opt) noexcept {
  switch (opt) {
    case LoopOptimizer::kChainExact: return 3;
    case LoopOptimizer::kSdppo: return 2;
    case LoopOptimizer::kDppo: return 1;
    case LoopOptimizer::kFlat: return 0;
  }
  return 0;
}

/// Exact percentile over raw sample values (the simulator keeps every
/// latency, unlike the server's bucketed histogram). p in [0, 100].
std::int64_t exact_percentile_us(std::vector<std::int64_t> samples,
                                 double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;
  if (idx > 0) --idx;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace

// ---------------------------------------------------------------------------
// CostModel

int cost_bucket(std::int64_t actors) noexcept {
  if (actors < 2) return 0;
  int b = 0;
  while (actors > 1 && b < kCostBuckets - 1) {
    actors >>= 1;
    ++b;
  }
  return b;
}

std::int64_t cost_bucket_floor(int b) noexcept {
  if (b <= 0) return 1;
  if (b >= kCostBuckets) b = kCostBuckets - 1;
  return std::int64_t{1} << b;
}

void CostModel::record(std::int64_t actors, std::int64_t wall_ns) noexcept {
  if (wall_ns < 0) return;
  CostBucket& b = buckets_[static_cast<std::size_t>(cost_bucket(actors))];
  if (b.samples == 0) {
    b.ewma_ns = wall_ns;
  } else {
    b.ewma_ns += (wall_ns - b.ewma_ns) / 8;
  }
  ++b.samples;
}

std::int64_t CostModel::estimate_ms(std::int64_t actors,
                                    std::int64_t fallback_ms) const noexcept {
  const CostBucket& b =
      buckets_[static_cast<std::size_t>(cost_bucket(actors))];
  if (b.samples == 0) return fallback_ms;
  const std::int64_t ms = (b.ewma_ns + 999'999) / 1'000'000;
  return std::clamp<std::int64_t>(ms, 1, kEstimateCapMs);
}

// ---------------------------------------------------------------------------
// Controller

std::int64_t utility_x1000(const IntervalMetrics& m) noexcept {
  if (m.requests <= 0) return 0;
  const std::int64_t full = m.requests - m.overloaded - m.shed_degraded;
  return (full * 1000 + m.shed_degraded * 500 - m.overloaded * 2000) /
         m.requests;
}

Controller::Controller(ControllerConfig config) : config_(config) {
  if (config_.hysteresis < 1) config_.hysteresis = 1;
}

Decision Controller::tick(const IntervalMetrics& m) {
  ++ticks_;
  Decision d;
  d.reason = "hold";
  if (m.requests > 0) {
    d.shed_x1000 = m.overloaded * 1000 / m.requests;
    d.degraded_x1000 = m.shed_degraded * 1000 / m.requests;
  }
  d.utility_x1000 = utility_x1000(m);

  if (m.requests < config_.min_requests) {
    // A near-idle window carries no signal; it must also not carry a
    // streak across a lull (that is how flapping starts).
    relief_streak_ = 0;
    recover_streak_ = 0;
    starve_streak_.clear();
    calm_streak_.clear();
    d.reason = "quiet";
    d.knobs = knobs_;
    return d;
  }

  const Clamps& c = config_.clamps;
  const bool relief = d.shed_x1000 > config_.shed_hi_x1000;
  const bool recover = d.shed_x1000 < config_.shed_lo_x1000 &&
                       d.degraded_x1000 > config_.degraded_hi_x1000;
  relief_streak_ = relief ? relief_streak_ + 1 : 0;
  recover_streak_ = recover ? recover_streak_ + 1 : 0;

  const auto step = [&](std::int64_t& knob, std::int64_t delta,
                        std::int64_t lo, std::int64_t hi) {
    const std::int64_t want = knob + delta;
    const std::int64_t next = std::clamp(want, lo, hi);
    if (next != want) ++d.clamped;
    if (next != knob) {
      knob = next;
      ++d.adjustments;
    }
  };

  if (relief_streak_ >= config_.hysteresis) {
    step(knobs_.capped_x1000, -config_.trip_step_x1000, c.capped_min_x1000,
         c.capped_max_x1000);
    step(knobs_.degraded_x1000, -config_.trip_step_x1000,
         c.degraded_min_x1000, c.degraded_max_x1000);
    relief_streak_ = 0;  // each applied step re-arms the hysteresis
    d.reason = "relief";
  } else if (recover_streak_ >= config_.hysteresis) {
    step(knobs_.capped_x1000, config_.trip_step_x1000, c.capped_min_x1000,
         c.capped_max_x1000);
    step(knobs_.degraded_x1000, config_.trip_step_x1000,
         c.degraded_min_x1000, c.degraded_max_x1000);
    recover_streak_ = 0;
    d.reason = "recover";
  }
  // The ladder must stay ordered no matter how the clamps interact.
  if (knobs_.degraded_x1000 < knobs_.capped_x1000 + 50) {
    knobs_.degraded_x1000 =
        std::min(c.degraded_max_x1000, knobs_.capped_x1000 + 50);
  }

  bool boosted = false;
  for (const auto& [name, treq] : m.tenant_requests) {
    if (treq < config_.min_requests) {
      starve_streak_[name] = 0;
      calm_streak_[name] = 0;
      continue;
    }
    const auto ov_it = m.tenant_overloaded.find(name);
    const std::int64_t tov =
        ov_it == m.tenant_overloaded.end() ? 0 : ov_it->second;
    const std::int64_t t_shed = tov * 1000 / treq;
    const std::int64_t others_req = m.requests - treq;
    const std::int64_t others_ov = m.overloaded - tov;
    const std::int64_t others_shed =
        others_req > 0 ? others_ov * 1000 / others_req : 0;
    // Starving: this tenant sheds hard while the rest of the system is
    // healthy — its share, not global capacity, is the bottleneck.
    const bool starving = t_shed > config_.shed_hi_x1000 &&
                          others_shed < config_.shed_lo_x1000;
    const bool calm = t_shed < config_.shed_lo_x1000;
    int& starve = starve_streak_[name];
    int& calm_s = calm_streak_[name];
    starve = starving ? starve + 1 : 0;
    calm_s = calm ? calm_s + 1 : 0;
    const auto [it, inserted] = knobs_.boost_x1000.try_emplace(name, 1000);
    if (starve >= config_.hysteresis) {
      const int before = d.adjustments;
      step(it->second, config_.boost_step_x1000, c.boost_min_x1000,
           c.boost_max_x1000);
      starve = 0;
      boosted = boosted || d.adjustments != before;
    } else if (calm_s >= config_.hysteresis && it->second > c.boost_min_x1000) {
      step(it->second, -config_.boost_step_x1000, c.boost_min_x1000,
           c.boost_max_x1000);
      calm_s = 0;
      boosted = true;
    }
    if (it->second <= 1000) knobs_.boost_x1000.erase(it);
  }
  if (boosted && d.reason == "hold") d.reason = "boost";

  adjustments_ += d.adjustments;
  clamped_ += d.clamped;
  d.knobs = knobs_;
  return d;
}

std::string Controller::decision_line(std::int64_t tick_index,
                                      const IntervalMetrics& m,
                                      const Decision& d) {
  std::string line = "tick=" + std::to_string(tick_index);
  line += " req=" + std::to_string(m.requests);
  line += " shed_x1000=" + std::to_string(d.shed_x1000);
  line += " deg_x1000=" + std::to_string(d.degraded_x1000);
  line += " util_x1000=" + std::to_string(d.utility_x1000);
  line += " capped_x1000=" + std::to_string(d.knobs.capped_x1000);
  line += " degraded_x1000=" + std::to_string(d.knobs.degraded_x1000);
  line += " boosts=";
  if (d.knobs.boost_x1000.empty()) {
    line += "-";
  } else {
    bool first = true;
    for (const auto& [name, boost] : d.knobs.boost_x1000) {
      if (!first) line += ",";
      first = false;
      line += name + ":" + std::to_string(boost);
    }
  }
  line += " adj=" + std::to_string(d.adjustments);
  line += " clamped=" + std::to_string(d.clamped);
  line += " reason=" + d.reason;
  return line;
}

// ---------------------------------------------------------------------------
// simulate_trace

namespace {

enum class Tier { kNormal, kCapped, kDegraded };

/// Per-record precomputation: what a degraded tier would change, and the
/// service time it would take.
struct SimRecord {
  const TraceRecord* rec = nullptr;
  std::string tenant;
  bool parseable = false;
  bool capped_changes = false;    ///< kCapped tier alters the options
  bool degraded_changes = false;  ///< kDegraded tier alters the options
  std::int64_t wall_full_ns = 0;
  std::int64_t wall_capped_ns = 0;
  std::int64_t wall_degraded_ns = 0;
};

struct Admitted {
  std::size_t idx = 0;  ///< index into the SimRecord vector
  std::int64_t arrival_us = 0;
  std::int64_t cost_ms = 0;
  std::int64_t service_us = 1;
  bool degraded = false;
  std::string tenant;
};

}  // namespace

SimResult simulate_trace(const Trace& trace, const SimOptions& options) {
  SimResult out;
  const int compression = options.compression > 0 ? options.compression : 1;
  const std::int64_t capacity_ms =
      static_cast<std::int64_t>(options.queue_capacity) *
      options.default_cost_ms;
  const double total_weight = options.tenants.total_weight();
  const std::int64_t interval_us =
      std::max<std::int64_t>(1, options.control_interval_ms) * 1000;

  // Precompute degradability and per-tier service times per record.
  std::vector<SimRecord> records;
  records.reserve(trace.records.size());
  for (const TraceRecord& rec : trace.records) {
    SimRecord sr;
    sr.rec = &rec;
    sr.tenant = rec.tenant.empty() ? std::string(qos::kPublicTenant)
                                   : rec.tenant;
    Result<CompileRequest> parsed = parse_compile_request(rec.request);
    if (parsed.ok() && !rec.key_hex.empty()) {
      sr.parseable = true;
      const CompileOptions& o = parsed.value().options;
      sr.capped_changes =
          optimizer_rank(o.optimizer) > optimizer_rank(LoopOptimizer::kDppo);
      sr.degraded_changes =
          optimizer_rank(o.optimizer) > 0 ||
          o.order != OrderHeuristic::kTopological;
    }
    sr.wall_full_ns = std::max<std::int64_t>(rec.wall_ns, 1000);
    sr.wall_capped_ns =
        rec.wall_ns_capped > 0 ? rec.wall_ns_capped : sr.wall_full_ns;
    sr.wall_degraded_ns =
        rec.wall_ns_degraded > 0 ? rec.wall_ns_degraded : sr.wall_full_ns;
    records.push_back(sr);
  }

  // Virtual state.
  qos::WeightedFairQueue wfq;
  for (const auto& [name, settings] : options.tenants.tenants()) {
    wfq.add_tenant(name, settings.weight,
                   qos::TokenBucket(settings.rate_ms_per_sec,
                                    settings.burst_ms));
  }
  int free_slots = std::max(1, options.slots);
  using Completion = std::pair<std::int64_t, std::uint64_t>;  // (time, seq)
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;
  std::map<std::uint64_t, Admitted> admitted;
  std::map<std::string, std::int64_t> backlog_ms;
  std::set<std::string> cached;
  CostModel cost_model;
  Controller controller(options.controller);
  Knobs knobs;  // static defaults while the controller is off

  IntervalMetrics win;
  std::vector<std::int64_t> win_latencies;
  std::int64_t next_tick_us = interval_us;
  std::int64_t tick_index = 0;
  std::map<std::string, std::vector<std::int64_t>> tenant_latencies;
  std::vector<std::int64_t> all_latencies;

  const auto share_ms = [&](const std::string& tenant) -> std::int64_t {
    const qos::TenantSettings* settings = options.tenants.find(tenant);
    if (settings == nullptr || total_weight <= 0) return 0;
    std::int64_t share = static_cast<std::int64_t>(
        static_cast<double>(capacity_ms) * settings->weight / total_weight);
    const auto it = knobs.boost_x1000.find(tenant);
    if (it != knobs.boost_x1000.end()) share = share * it->second / 1000;
    return share;
  };

  const auto serve_latency = [&](const std::string& tenant,
                                 std::int64_t us) {
    tenant_latencies[tenant].push_back(us);
    all_latencies.push_back(us);
    win_latencies.push_back(us);
  };

  const auto try_dispatch = [&](std::int64_t now_us) {
    while (free_slots > 0) {
      std::optional<qos::QueueItem> item = wfq.pop(now_us);
      if (!item) break;
      const Admitted& a = admitted.at(item->seq);
      completions.emplace(now_us + a.service_us, item->seq);
      --free_slots;
    }
  };

  const auto complete = [&](std::int64_t now_us, std::uint64_t seq) {
    const auto it = admitted.find(seq);
    const Admitted a = it->second;
    admitted.erase(it);
    ++free_slots;
    backlog_ms[a.tenant] -= a.cost_ms;
    serve_latency(a.tenant, now_us - a.arrival_us);
    const SimRecord& sr = records[a.idx];
    if (!a.degraded) {
      ++out.served_full;
      cached.insert(sr.rec->key_hex);
    }
    // Mirror the server: the model learns the wall time of whatever
    // compile actually ran, degraded tiers included.
    cost_model.record(sr.rec->actors, a.service_us * 1000);
    try_dispatch(now_us);
  };

  const auto flush_interval = [&](std::int64_t end_us) {
    SimIntervalRow row;
    row.end_ms = end_us / 1000;
    row.requests = win.requests;
    row.overloaded = win.overloaded;
    row.shed_degraded = win.shed_degraded;
    row.cache_hits = win.cache_hits;
    row.p95_us = exact_percentile_us(win_latencies, 95);
    out.intervals.push_back(row);
  };

  const auto do_tick = [&](std::int64_t tick_us) {
    win.p95_us = exact_percentile_us(win_latencies, 95);
    flush_interval(tick_us);
    if (options.controller_on) {
      const Decision d = controller.tick(win);
      knobs = d.knobs;
      out.decisions.push_back(
          Controller::decision_line(tick_index, win, d));
    }
    ++tick_index;
    win = IntervalMetrics{};
    win_latencies.clear();
    next_tick_us += interval_us;
  };

  // Virtual-time cursor: the time of the last processed event. Only ever
  // advances, which keeps the WeightedFairQueue's bucket refills monotone.
  std::int64_t sim_now = 0;

  // Drains every event at or before `upto_us`, completions first, then
  // controller ticks, then throttle-release retries — a fixed order, so
  // equal-time events replay identically.
  const auto drain_until = [&](std::int64_t upto_us) {
    constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
    for (;;) {
      const std::int64_t t_completion =
          completions.empty() ? kNever : completions.top().first;
      std::int64_t t_bucket = kNever;
      if (free_slots > 0 && !wfq.empty()) {
        // A throttled head becomes affordable at a known refill instant.
        const std::optional<std::int64_t> ready = wfq.next_ready_us(sim_now);
        if (ready) t_bucket = std::max(*ready, sim_now);
      }
      const std::int64_t t_next =
          std::min({t_completion, next_tick_us, t_bucket});
      if (t_next > upto_us) return;
      sim_now = std::max(sim_now, t_next);
      if (t_next == t_completion) {
        const std::uint64_t seq = completions.top().second;
        completions.pop();
        complete(t_next, seq);
      } else if (t_next == next_tick_us) {
        do_tick(t_next);
      } else {
        const std::size_t before = wfq.size();
        try_dispatch(t_next);
        if (wfq.size() == before) return;  // defensive: no progress
      }
    }
  };

  for (std::size_t i = 0; i < records.size(); ++i) {
    const SimRecord& sr = records[i];
    const std::int64_t arrival_us = sr.rec->tick_us / compression;
    drain_until(arrival_us);

    const std::string& tenant = sr.tenant;
    ++out.requests;
    ++win.requests;
    ++win.tenant_requests[tenant];
    SimTenantTotals& tt = out.tenants[tenant];
    ++tt.requests;
    if (!sr.parseable) continue;  // recorded errors never reach admission
    if (cached.count(sr.rec->key_hex) != 0) {
      ++out.cache_hits;
      ++win.cache_hits;
      ++tt.cache_hits;
      serve_latency(tenant, 0);
      continue;
    }
    const bool use_model = options.controller_on;
    const std::int64_t cost_ms =
        sr.rec->deadline_ms > 0
            ? sr.rec->deadline_ms
            : (use_model ? cost_model.estimate_ms(sr.rec->actors,
                                                  options.default_cost_ms)
                         : options.default_cost_ms);
    const std::int64_t share = share_ms(tenant);
    std::int64_t& backlog = backlog_ms[tenant];
    if (backlog + cost_ms > share) {
      ++out.overloaded;
      ++win.overloaded;
      ++win.tenant_overloaded[tenant];
      ++tt.overloaded;
      continue;
    }
    const std::int64_t after = backlog + cost_ms;
    Tier tier = Tier::kNormal;
    if (share > 0) {
      if (after * 1000 >= share * knobs.degraded_x1000) {
        tier = Tier::kDegraded;
      } else if (after * 1000 >= share * knobs.capped_x1000) {
        tier = Tier::kCapped;
      }
    }
    Admitted a;
    a.idx = i;
    a.arrival_us = arrival_us;
    a.cost_ms = cost_ms;
    a.tenant = tenant;
    std::int64_t wall_ns = sr.wall_full_ns;
    if (tier == Tier::kCapped && sr.capped_changes) {
      a.degraded = true;
      wall_ns = sr.wall_capped_ns;
    } else if (tier == Tier::kDegraded && sr.degraded_changes) {
      a.degraded = true;
      wall_ns = sr.wall_degraded_ns;
    }
    a.service_us = std::max<std::int64_t>(1, wall_ns / 1000);
    if (a.degraded) {
      ++out.shed_degraded;
      ++win.shed_degraded;
      ++tt.shed_degraded;
    }
    backlog += cost_ms;
    const std::uint64_t seq = wfq.push(tenant, cost_ms);
    admitted.emplace(seq, std::move(a));
    try_dispatch(arrival_us);
  }

  // Drain the tail: completions and any throttle-released queue items;
  // controller ticks continue while work remains.
  while (!completions.empty() || !wfq.empty()) {
    std::int64_t horizon = -1;
    if (!completions.empty()) horizon = completions.top().first;
    if (free_slots > 0 && !wfq.empty()) {
      const std::optional<std::int64_t> ready = wfq.next_ready_us(sim_now);
      const std::int64_t t_bucket =
          ready ? std::max(*ready, sim_now) : sim_now;
      horizon = horizon < 0 ? t_bucket : std::min(horizon, t_bucket);
    }
    if (horizon < 0) break;  // defensive: queued work with no slot or event
    const std::size_t queued_before = wfq.size();
    const std::size_t running_before = completions.size();
    drain_until(horizon);
    if (wfq.size() == queued_before && completions.size() == running_before) {
      break;  // defensive: the queue cannot make progress
    }
  }
  if (win.requests > 0 || !win_latencies.empty()) {
    flush_interval(next_tick_us);
    if (options.controller_on) {
      win.p95_us = exact_percentile_us(win_latencies, 95);
      // The trailing partial window still gets a decision line so two
      // replays agree on the complete log, not just its prefix.
      const Decision d = controller.tick(win);
      out.decisions.push_back(Controller::decision_line(tick_index, win, d));
    }
  }

  out.p50_us = exact_percentile_us(all_latencies, 50);
  out.p95_us = exact_percentile_us(all_latencies, 95);
  for (auto& [name, totals] : out.tenants) {
    const auto it = tenant_latencies.find(name);
    if (it == tenant_latencies.end()) continue;
    totals.p50_us = exact_percentile_us(it->second, 50);
    totals.p95_us = exact_percentile_us(it->second, 95);
  }
  out.final_knobs = knobs;
  return out;
}

}  // namespace sdf::svc::ctl
