#include "service/client.h"

#include <unistd.h>

#include "obs/json_report.h"
#include "sdf/diagnostics.h"
#include "service/transport.h"

namespace sdf::svc {

Client::Client(const ClientOptions& options) {
  Endpoint ep;
  ep.socket_path = options.socket_path;
  ep.tcp_port = options.tcp_port;
  fd_ = connect_endpoint(ep);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::roundtrip(FrameKind kind, std::string_view payload) {
  send_all_or_throw(fd_, encode_frame(kind, payload));
  FrameReader reader;
  Frame frame;
  switch (reader.read(fd_, &frame)) {
    case ReadOutcome::kFrame:
      return frame;
    case ReadOutcome::kClosed:
      throw IoError("client: connection closed mid-reply "
                    "(daemon draining or crashed?)");
    case ReadOutcome::kBadFrame:
      throw IoError("client: malformed reply frame (" +
                    std::string(decode_status_name(reader.last_decode())) +
                    ")");
    case ReadOutcome::kTimeout:
      break;  // unreachable: blocking read has no deadline
  }
  throw IoError("client: reply timeout");
}

Result<std::string> Client::compile(const CompileRequest& request) {
  const Frame reply = roundtrip(FrameKind::kCompileRequest,
                                encode_compile_request(request));
  if (reply.kind == FrameKind::kCompileResponse) return reply.payload;
  if (reply.kind == FrameKind::kErrorResponse) {
    return parse_error_response(reply.payload);
  }
  throw IoError("client: unexpected reply kind " +
                std::to_string(static_cast<int>(reply.kind)));
}

bool Client::ping(std::string_view token) {
  const Frame reply = roundtrip(FrameKind::kPing, token);
  return reply.kind == FrameKind::kPong && reply.payload == token;
}

std::string Client::stats() {
  const Frame reply = roundtrip(FrameKind::kStatsRequest, "");
  if (reply.kind != FrameKind::kStatsResponse) {
    throw IoError("client: unexpected reply to stats request");
  }
  return reply.payload;
}

Diagnostic parse_error_response(std::string_view payload) {
  Diagnostic diag;
  try {
    const obs::Json doc = obs::Json::parse(payload);
    const obs::Json* error = doc.find("error");
    if (error == nullptr) throw std::runtime_error("no error object");
    if (const obs::Json* code = error->find("code")) {
      diag.code = error_code_from_name(code->as_string());
    }
    if (const obs::Json* message = error->find("message")) {
      diag.message = message->as_string();
    }
    if (const obs::Json* actor = error->find("actor")) {
      diag.actor = actor->as_string();
    }
    if (const obs::Json* edge = error->find("edge")) {
      diag.edge = edge->as_string();
    }
    if (const obs::Json* loc = error->find("loc")) {
      if (const obs::Json* line = loc->find("line")) {
        diag.loc.line = static_cast<int>(line->as_int());
      }
      if (const obs::Json* column = loc->find("column")) {
        diag.loc.column = static_cast<int>(column->as_int());
      }
    }
  } catch (const std::exception&) {
    diag.code = ErrorCode::kInternal;
    diag.message = "unparseable error response: " + std::string(payload);
  }
  return diag;
}

}  // namespace sdf::svc
