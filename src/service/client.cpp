#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json_report.h"
#include "sdf/diagnostics.h"

namespace sdf::svc {
namespace {

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("client: send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

Client::Client(const ClientOptions& options) {
  if (!options.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.socket_path.size() >= sizeof(addr.sun_path)) {
      throw BadArgumentError("client: socket path too long: " +
                             options.socket_path);
    }
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw IoError(std::string("client: socket(): ") + std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const std::string detail = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw IoError("client: cannot connect to " + options.socket_path +
                    ": " + detail);
    }
    return;
  }
  if (options.tcp_port <= 0) {
    throw BadArgumentError("client: no endpoint (need --socket or --port)");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError(std::string("client: socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw IoError("client: cannot connect to 127.0.0.1:" +
                  std::to_string(options.tcp_port) + ": " + detail);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::roundtrip(FrameKind kind, std::string_view payload) {
  send_all(fd_, encode_frame(kind, payload));
  std::string buffer;
  char chunk[65536];
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(buffer, &frame, &consumed);
    if (st == DecodeStatus::kOk) return frame;
    if (st != DecodeStatus::kNeedMore) {
      throw IoError("client: malformed reply frame (" +
                    std::string(decode_status_name(st)) + ")");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("client: recv(): ") + std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("client: connection closed mid-reply "
                    "(daemon draining or crashed?)");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> Client::compile(const CompileRequest& request) {
  const Frame reply = roundtrip(FrameKind::kCompileRequest,
                                encode_compile_request(request));
  if (reply.kind == FrameKind::kCompileResponse) return reply.payload;
  if (reply.kind == FrameKind::kErrorResponse) {
    return parse_error_response(reply.payload);
  }
  throw IoError("client: unexpected reply kind " +
                std::to_string(static_cast<int>(reply.kind)));
}

bool Client::ping(std::string_view token) {
  const Frame reply = roundtrip(FrameKind::kPing, token);
  return reply.kind == FrameKind::kPong && reply.payload == token;
}

std::string Client::stats() {
  const Frame reply = roundtrip(FrameKind::kStatsRequest, "");
  if (reply.kind != FrameKind::kStatsResponse) {
    throw IoError("client: unexpected reply to stats request");
  }
  return reply.payload;
}

Diagnostic parse_error_response(std::string_view payload) {
  Diagnostic diag;
  try {
    const obs::Json doc = obs::Json::parse(payload);
    const obs::Json* error = doc.find("error");
    if (error == nullptr) throw std::runtime_error("no error object");
    if (const obs::Json* code = error->find("code")) {
      diag.code = error_code_from_name(code->as_string());
    }
    if (const obs::Json* message = error->find("message")) {
      diag.message = message->as_string();
    }
    if (const obs::Json* actor = error->find("actor")) {
      diag.actor = actor->as_string();
    }
    if (const obs::Json* edge = error->find("edge")) {
      diag.edge = edge->as_string();
    }
    if (const obs::Json* loc = error->find("loc")) {
      if (const obs::Json* line = loc->find("line")) {
        diag.loc.line = static_cast<int>(line->as_int());
      }
      if (const obs::Json* column = loc->find("column")) {
        diag.loc.column = static_cast<int>(column->as_int());
      }
    }
  } catch (const std::exception&) {
    diag.code = ErrorCode::kInternal;
    diag.message = "unparseable error response: " + std::string(payload);
  }
  return diag;
}

}  // namespace sdf::svc
