// sdfmemd wire protocol (docs/SERVICE.md): length-prefixed, CRC32-framed
// messages over a stream socket (Unix domain or loopback TCP).
//
// Every message is one frame:
//
//   bytes 0..6    "SDFSVC1"                  protocol magic + version
//   byte  7       kind (FrameKind, u8)
//   bytes 8..11   payload length, u32 little-endian (<= kMaxPayloadBytes)
//   bytes 12..15  CRC32 (IEEE, util/crc32.h) of the payload bytes
//   bytes 16..    payload
//
// The CRC makes a torn or bit-flipped frame detectable before any byte of
// it is interpreted — the same discipline as the durable journal
// (util/journal.h), applied to the wire. Integers are little-endian by
// byte construction, so the encoding is identical on any host.
//
// Payloads are JSON by convention:
//   * kCompileRequest   — {"schema": "sdfmem.request.v1" | ".v2",
//                         "graph": <.sdf text>, "options": {...},
//                         "tenant": <id, v2 only>} (see CompileRequest).
//                         Version negotiation is per-request: a client
//                         that sets no tenant emits v1 (byte-identical
//                         to older clients, accepted by older servers);
//                         setting a tenant upgrades the payload to v2.
//                         Servers accept both; a v1 request lands in the
//                         `public` tenant (docs/TENANCY.md).
//   * kCompileResponse  — the deterministic compile-result document
//                         ("sdfmem.telemetry.v1"); byte-identical whether
//                         served cold or from the result cache
//   * kErrorResponse    — {"error": {code, message, ..., exit_code}}, the
//                         same shape as `sdfmem_cli --json`
//   * kPing / kPong     — payload echoed verbatim (health checks)
//   * kStatsRequest / kStatsResponse — live server counters as JSON
//   * kPeerLookup* / kPeerInsert* — fleet-internal cache peering
//                         (docs/SERVICE.md "Fleet mode"): the router asks
//                         a worker for its cached bytes by key, and warms
//                         a shard owner with bytes another worker held.
//                         Version negotiation is by behaviour, like the
//                         v2 tenancy schema: a pre-fleet worker answers
//                         these kinds with a bad-frame error and the
//                         router falls back to plain compile forwarding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "pipeline/compile.h"
#include "util/status.h"

namespace sdf::svc {

inline constexpr std::string_view kMagic = "SDFSVC1";
inline constexpr std::size_t kHeaderBytes = 16;
/// Requests larger than this are rejected before buffering, so a corrupt
/// length prefix can never balloon a connection buffer.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

enum class FrameKind : std::uint8_t {
  kCompileRequest = 1,
  kCompileResponse = 2,
  kErrorResponse = 3,
  kPing = 4,
  kPong = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
  kPeerLookupRequest = 8,
  kPeerLookupResponse = 9,
  kPeerInsertRequest = 10,
  kPeerInsertResponse = 11,
};

/// True for the kinds above; decode rejects anything else.
[[nodiscard]] bool frame_kind_valid(std::uint8_t kind) noexcept;

struct Frame {
  FrameKind kind = FrameKind::kPing;
  std::string payload;
};

/// One encoded frame: header + payload, ready to write to a socket.
[[nodiscard]] std::string encode_frame(FrameKind kind,
                                       std::string_view payload);

enum class DecodeStatus {
  kOk,        ///< one frame decoded; *consumed bytes were eaten
  kNeedMore,  ///< the buffer holds only a frame prefix — read more
  kBadMagic,  ///< not this protocol; close the connection
  kBadKind,   ///< unknown frame kind byte
  kTooLarge,  ///< declared payload exceeds kMaxPayloadBytes
  kBadCrc,    ///< payload checksum mismatch — corrupt frame
};

/// Attempts to decode one frame from the head of `buffer`. On kOk fills
/// `*out` and sets `*consumed` to the frame's total size; every other
/// status leaves them untouched (and `*consumed` == 0).
[[nodiscard]] DecodeStatus decode_frame(std::string_view buffer, Frame* out,
                                        std::size_t* consumed);

/// Stable name for logs/tests ("ok", "need-more", "bad-crc", ...).
[[nodiscard]] std::string_view decode_status_name(DecodeStatus s) noexcept;

/// One compile request: the graph text (NOT parsed client-side — the
/// server canonicalizes, so malformed text travels to the server and
/// comes back as a structured parse error) plus the compile options and
/// optional per-request resource budget.
struct CompileRequest {
  std::string graph_text;
  CompileOptions options;
  std::int64_t deadline_ms = 0;   ///< 0 = server default / unlimited
  std::int64_t dp_mem_bytes = 0;  ///< 0 = server default / unlimited
  /// Tenant id for QoS accounting (docs/TENANCY.md); empty means the
  /// `public` tenant and keeps the encoded payload at schema v1.
  /// Deliberately NOT part of option_fingerprint(): the result cache is
  /// content-addressed and shared, so every tenant sees byte-identical
  /// responses for the same graph + options.
  std::string tenant;
};

[[nodiscard]] std::string encode_compile_request(const CompileRequest& req);

/// Parses a kCompileRequest payload; kBadArgument diagnostic on malformed
/// JSON, unknown option names, or out-of-range values.
[[nodiscard]] Result<CompileRequest> parse_compile_request(
    std::string_view payload);

/// The canonical option string hashed into the cache key, e.g.
/// "order=rpmc;opt=sdppo;alloc=duration;block=1;deadline=0;dpmem=0".
/// Stable across releases: changing it invalidates every persistent
/// cache, so treat it like a schema.
[[nodiscard]] std::string option_fingerprint(const CompileRequest& req);

/// Content-addressed cache key: FNV-1a of the canonical graph text,
/// chained with the option fingerprint (util/hash.h).
[[nodiscard]] std::uint64_t cache_key(std::string_view canonical_graph,
                                      std::string_view fingerprint) noexcept;

/// `key` as a fixed-width lowercase hex string (the on-disk object name).
[[nodiscard]] std::string key_hex(std::uint64_t key);

/// Inverse of key_hex: exactly 16 lowercase hex chars; nullopt otherwise.
[[nodiscard]] std::optional<std::uint64_t> parse_key_hex(
    std::string_view hex) noexcept;

/// Fleet cache-peering payloads ("sdfmem.peer.v1", docs/SERVICE.md).
/// A kPeerLookupRequest carries {"schema", "key"}; the response payload
/// is the raw cached object bytes on a hit and empty on a miss (the
/// cached document is never empty, so emptiness is unambiguous).
/// A kPeerInsertRequest carries {"schema", "key", "object"}; the insert
/// response payload is empty.
[[nodiscard]] std::string encode_peer_lookup(std::uint64_t key);
[[nodiscard]] Result<std::uint64_t> parse_peer_lookup(
    std::string_view payload);

struct PeerInsert {
  std::uint64_t key = 0;
  std::string object;  ///< the exact response-payload bytes to cache
};

[[nodiscard]] std::string encode_peer_insert(std::uint64_t key,
                                             std::string_view object);
[[nodiscard]] Result<PeerInsert> parse_peer_insert(std::string_view payload);

/// Inverse of order_name / optimizer_name / the alloc fingerprint names;
/// nullopt for unknown names.
[[nodiscard]] std::optional<OrderHeuristic> order_from_name(
    std::string_view name) noexcept;
[[nodiscard]] std::optional<LoopOptimizer> optimizer_from_name(
    std::string_view name) noexcept;
[[nodiscard]] std::optional<FirstFitOrder> alloc_order_from_name(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view alloc_order_name(FirstFitOrder order) noexcept;

}  // namespace sdf::svc
