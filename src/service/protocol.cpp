#include "service/protocol.h"

#include <cstdio>

#include "obs/json_report.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/hash.h"

namespace sdf::svc {
namespace {

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32_le(std::string_view data, std::size_t off) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[off])) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[off + 1]))
          << 8) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[off + 2]))
          << 16) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[off + 3]))
          << 24);
}

Diagnostic bad_request(std::string message) {
  Diagnostic diag;
  diag.code = ErrorCode::kBadArgument;
  diag.message = std::move(message);
  return diag;
}

}  // namespace

bool frame_kind_valid(std::uint8_t kind) noexcept {
  return kind >= static_cast<std::uint8_t>(FrameKind::kCompileRequest) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kPeerInsertResponse);
}

std::string encode_frame(FrameKind kind, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw BadArgumentError("encode_frame: payload exceeds " +
                           std::to_string(kMaxPayloadBytes) + " bytes");
  }
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic);
  out.push_back(static_cast<char>(kind));
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(out, util::crc32(payload));
  out.append(payload);
  return out;
}

DecodeStatus decode_frame(std::string_view buffer, Frame* out,
                          std::size_t* consumed) {
  *consumed = 0;
  // Reject a wrong magic as soon as the prefix diverges, not only once 16
  // bytes arrived — a plain-text client gets cut off immediately.
  const std::size_t check = std::min(buffer.size(), kMagic.size());
  if (buffer.substr(0, check) != kMagic.substr(0, check)) {
    return DecodeStatus::kBadMagic;
  }
  if (buffer.size() < kHeaderBytes) return DecodeStatus::kNeedMore;
  const auto kind = static_cast<std::uint8_t>(buffer[kMagic.size()]);
  if (!frame_kind_valid(kind)) return DecodeStatus::kBadKind;
  const std::uint32_t len = get_u32_le(buffer, 8);
  if (len > kMaxPayloadBytes) return DecodeStatus::kTooLarge;
  const std::uint32_t crc = get_u32_le(buffer, 12);
  if (buffer.size() < kHeaderBytes + len) return DecodeStatus::kNeedMore;
  const std::string_view payload = buffer.substr(kHeaderBytes, len);
  if (util::crc32(payload) != crc) return DecodeStatus::kBadCrc;
  out->kind = static_cast<FrameKind>(kind);
  out->payload.assign(payload);
  *consumed = kHeaderBytes + len;
  return DecodeStatus::kOk;
}

std::string_view decode_status_name(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadKind: return "bad-kind";
    case DecodeStatus::kTooLarge: return "too-large";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "?";
}

std::string_view alloc_order_name(FirstFitOrder order) noexcept {
  switch (order) {
    case FirstFitOrder::kByDuration: return "duration";
    case FirstFitOrder::kByStartTime: return "start";
    case FirstFitOrder::kByWidth: return "width";
    case FirstFitOrder::kInputOrder: return "input";
  }
  return "?";
}

std::optional<OrderHeuristic> order_from_name(std::string_view name) noexcept {
  if (name == "apgan") return OrderHeuristic::kApgan;
  if (name == "rpmc") return OrderHeuristic::kRpmc;
  if (name == "rpmc*") return OrderHeuristic::kRpmcMultistart;
  if (name == "topo") return OrderHeuristic::kTopological;
  return std::nullopt;
}

std::optional<LoopOptimizer> optimizer_from_name(
    std::string_view name) noexcept {
  if (name == "dppo") return LoopOptimizer::kDppo;
  if (name == "sdppo") return LoopOptimizer::kSdppo;
  if (name == "chainx") return LoopOptimizer::kChainExact;
  if (name == "flat") return LoopOptimizer::kFlat;
  return std::nullopt;
}

std::optional<FirstFitOrder> alloc_order_from_name(
    std::string_view name) noexcept {
  if (name == "duration") return FirstFitOrder::kByDuration;
  if (name == "start") return FirstFitOrder::kByStartTime;
  if (name == "width") return FirstFitOrder::kByWidth;
  if (name == "input") return FirstFitOrder::kInputOrder;
  return std::nullopt;
}

std::string encode_compile_request(const CompileRequest& req) {
  obs::Json doc = obs::Json::object();
  // Version negotiation: a tenant-less request encodes as v1, byte-
  // identical to what pre-tenancy clients send, so it works against any
  // server generation. Setting a tenant upgrades the schema to v2.
  doc["schema"] = req.tenant.empty() ? "sdfmem.request.v1"
                                     : "sdfmem.request.v2";
  doc["graph"] = req.graph_text;
  if (!req.tenant.empty()) doc["tenant"] = req.tenant;
  obs::Json opts = obs::Json::object();
  opts["order"] = std::string(order_name(req.options.order));
  opts["optimizer"] = std::string(optimizer_name(req.options.optimizer));
  opts["alloc"] = std::string(alloc_order_name(req.options.allocation_order));
  opts["blocking"] = req.options.blocking_factor;
  if (req.deadline_ms > 0) opts["deadline_ms"] = req.deadline_ms;
  if (req.dp_mem_bytes > 0) opts["dp_mem_bytes"] = req.dp_mem_bytes;
  doc["options"] = std::move(opts);
  return doc.dump();
}

Result<CompileRequest> parse_compile_request(std::string_view payload) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(payload);
  } catch (const std::exception& e) {
    return bad_request(std::string("compile request: ") + e.what());
  }
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || (schema->as_string() != "sdfmem.request.v1" &&
                            schema->as_string() != "sdfmem.request.v2")) {
    return bad_request("compile request: missing or unknown schema");
  }
  const obs::Json* graph = doc.find("graph");
  if (graph == nullptr || graph->type() != obs::Json::Type::kString) {
    return bad_request("compile request: missing graph text");
  }
  CompileRequest req;
  req.graph_text = graph->as_string();
  if (const obs::Json* tenant = doc.find("tenant")) {
    if (tenant->type() != obs::Json::Type::kString ||
        !util::valid_tenant_name(tenant->as_string())) {
      return bad_request(
          "compile request: tenant must be 1-64 chars of [a-z0-9_-]");
    }
    req.tenant = tenant->as_string();
  }
  if (const obs::Json* opts = doc.find("options")) {
    if (const obs::Json* v = opts->find("order")) {
      const auto order = order_from_name(v->as_string());
      if (!order) {
        return bad_request("compile request: unknown order '" +
                           v->as_string() + "'");
      }
      req.options.order = *order;
    }
    if (const obs::Json* v = opts->find("optimizer")) {
      const auto opt = optimizer_from_name(v->as_string());
      if (!opt) {
        return bad_request("compile request: unknown optimizer '" +
                           v->as_string() + "'");
      }
      req.options.optimizer = *opt;
    }
    if (const obs::Json* v = opts->find("alloc")) {
      const auto alloc = alloc_order_from_name(v->as_string());
      if (!alloc) {
        return bad_request("compile request: unknown alloc order '" +
                           v->as_string() + "'");
      }
      req.options.allocation_order = *alloc;
    }
    if (const obs::Json* v = opts->find("blocking")) {
      if (v->type() != obs::Json::Type::kInt || v->as_int() < 1) {
        return bad_request("compile request: blocking must be a positive "
                           "integer");
      }
      req.options.blocking_factor = v->as_int();
    }
    if (const obs::Json* v = opts->find("deadline_ms")) {
      if (v->type() != obs::Json::Type::kInt || v->as_int() < 0) {
        return bad_request("compile request: deadline_ms must be a "
                           "non-negative integer");
      }
      req.deadline_ms = v->as_int();
    }
    if (const obs::Json* v = opts->find("dp_mem_bytes")) {
      if (v->type() != obs::Json::Type::kInt || v->as_int() < 0) {
        return bad_request("compile request: dp_mem_bytes must be a "
                           "non-negative integer");
      }
      req.dp_mem_bytes = v->as_int();
    }
  }
  return req;
}

// The tenant id is excluded on purpose: the cache is shared across
// tenants, and including it would both fork the cache per tenant and
// break the hot==cold byte-determinism contract.
std::string option_fingerprint(const CompileRequest& req) {
  std::string fp = "order=";
  fp += order_name(req.options.order);
  fp += ";opt=";
  fp += optimizer_name(req.options.optimizer);
  fp += ";alloc=";
  fp += alloc_order_name(req.options.allocation_order);
  fp += ";block=" + std::to_string(req.options.blocking_factor);
  fp += ";deadline=" + std::to_string(req.deadline_ms);
  fp += ";dpmem=" + std::to_string(req.dp_mem_bytes);
  return fp;
}

std::uint64_t cache_key(std::string_view canonical_graph,
                        std::string_view fingerprint) noexcept {
  return util::fnv1a64(fingerprint, util::fnv1a64(canonical_graph));
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::optional<std::uint64_t> parse_key_hex(std::string_view hex) noexcept {
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t key = 0;
  for (const char c : hex) {
    key <<= 4;
    if (c >= '0' && c <= '9') {
      key |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      key |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return key;
}

namespace {

constexpr std::string_view kPeerSchema = "sdfmem.peer.v1";

/// Shared header validation for the two peer request payloads.
Result<std::uint64_t> parse_peer_header(const obs::Json& doc,
                                        std::string_view what) {
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != kPeerSchema) {
    return bad_request(std::string(what) +
                       ": missing or unknown schema (want sdfmem.peer.v1)");
  }
  const obs::Json* key = doc.find("key");
  if (key == nullptr || key->type() != obs::Json::Type::kString) {
    return bad_request(std::string(what) + ": missing key");
  }
  const std::optional<std::uint64_t> parsed = parse_key_hex(key->as_string());
  if (!parsed) {
    return bad_request(std::string(what) + ": key must be 16 lowercase "
                       "hex chars");
  }
  return *parsed;
}

}  // namespace

std::string encode_peer_lookup(std::uint64_t key) {
  obs::Json doc = obs::Json::object();
  doc["schema"] = std::string(kPeerSchema);
  doc["key"] = key_hex(key);
  return doc.dump();
}

Result<std::uint64_t> parse_peer_lookup(std::string_view payload) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(payload);
  } catch (const std::exception& e) {
    return bad_request(std::string("peer lookup: ") + e.what());
  }
  return parse_peer_header(doc, "peer lookup");
}

std::string encode_peer_insert(std::uint64_t key, std::string_view object) {
  obs::Json doc = obs::Json::object();
  doc["schema"] = std::string(kPeerSchema);
  doc["key"] = key_hex(key);
  doc["object"] = std::string(object);
  return doc.dump();
}

Result<PeerInsert> parse_peer_insert(std::string_view payload) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(payload);
  } catch (const std::exception& e) {
    return bad_request(std::string("peer insert: ") + e.what());
  }
  Result<std::uint64_t> key = parse_peer_header(doc, "peer insert");
  if (!key.ok()) return key.error();
  const obs::Json* object = doc.find("object");
  if (object == nullptr || object->type() != obs::Json::Type::kString ||
      object->as_string().empty()) {
    return bad_request("peer insert: missing object bytes");
  }
  PeerInsert out;
  out.key = key.value();
  out.object = object->as_string();
  return out;
}

}  // namespace sdf::svc
