#include "service/cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/counters.h"
#include "obs/json_report.h"
#include "service/protocol.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/status.h"

namespace sdf::svc {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kIndexSchema = "sdfmem.cache.v1";

std::optional<std::string> read_file(const std::string& path) {
  if (fault::enabled() && fault::should_fail("svc_cache_read")) {
    return std::nullopt;  // injected: the object is unreadable
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return data;
}

}  // namespace

ResultCache::ResultCache(const std::string& dir) : dir_(dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "objects", ec);
  if (ec) {
    throw IoError("cache: cannot create directory " + dir + ": " +
                  ec.message());
  }

  // Single-writer lock: the index journal tolerates exactly one
  // appender. Taken before the journal is even opened so a concurrent
  // opener cannot observe a half-replayed index.
  const std::string lock_path = (fs::path(dir) / "lock").string();
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw IoError("cache: cannot open " + lock_path + ": " +
                  std::strerror(errno));
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    const bool busy = errno == EWOULDBLOCK;
    const std::string detail = std::strerror(errno);
    ::close(lock_fd_);
    lock_fd_ = -1;
    if (busy) {
      throw IoError("cache: " + dir + " is locked by another process "
                    "(each sdfmemd worker needs its own --cache dir; "
                    "docs/SERVICE.md \"Fleet mode\")");
    }
    throw IoError("cache: cannot lock " + lock_path + ": " + detail);
  }

  // From here on the lock is held; release it if index replay throws
  // (the destructor never runs for a partially constructed object).
  try {
  const std::string index_path = (fs::path(dir) / "index.journal").string();
  if (fs::exists(index_path)) {
    const util::RecoveredJournal recovered =
        util::recover_journal(index_path);
    // Record 0 is the creation header; everything after is an insert.
    bool header_ok = false;
    if (!recovered.records.empty()) {
      try {
        const obs::Json header = obs::Json::parse(recovered.records[0]);
        const obs::Json* schema = header.find("schema");
        header_ok = schema != nullptr && schema->as_string() == kIndexSchema;
      } catch (const std::exception&) {
        header_ok = false;
      }
    }
    if (!header_ok) {
      throw CorruptJournalError("cache: " + index_path +
                                " is not a cache index");
    }
    for (std::size_t i = 1; i < recovered.records.size(); ++i) {
      // A record that does not parse is treated like a corrupt object:
      // skipped, never believed. The journal CRC makes this unreachable
      // short of a bug, but the cache must not take the daemon down.
      try {
        const obs::Json rec = obs::Json::parse(recovered.records[i]);
        const obs::Json* key_field = rec.find("key");
        const obs::Json* crc_field = rec.find("crc");
        const obs::Json* bytes_field = rec.find("bytes");
        if (key_field == nullptr || crc_field == nullptr ||
            bytes_field == nullptr) {
          continue;
        }
        const auto key = parse_key_hex(key_field->as_string());
        if (!key) continue;
        Entry entry;
        entry.crc = static_cast<std::uint32_t>(crc_field->as_int());
        entry.bytes = static_cast<std::uint64_t>(bytes_field->as_int());
        entries_[*key] = entry;  // last record wins
      } catch (const std::exception&) {
        continue;
      }
    }
    writer_.emplace(
        util::JournalWriter::append_to(index_path, recovered.valid_bytes));
  } else {
    obs::Json header = obs::Json::object();
    header["schema"] = std::string(kIndexSchema);
    writer_.emplace(util::JournalWriter::create(index_path, header.dump()));
  }
  stats_.entries = static_cast<std::int64_t>(entries_.size());
  } catch (...) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }
}

ResultCache::~ResultCache() {
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
}

std::string ResultCache::object_path(std::uint64_t key) const {
  return (fs::path(dir_) / "objects" / (key_hex(key) + ".json")).string();
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      obs::count("service.cache.misses");
      return std::nullopt;
    }
    entry = it->second;
  }
  std::optional<std::string> data = read_file(object_path(key));
  const bool valid = data.has_value() && data->size() == entry.bytes &&
                     util::crc32(*data) == entry.crc;
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid) {
    // Corrupt or vanished object: drop the entry so the caller
    // recompiles and re-inserts. Never serve unverified bytes.
    if (entries_.erase(key) > 0) {
      ++stats_.corrupt;
      obs::count("service.cache.corrupt");
    }
    ++stats_.misses;
    obs::count("service.cache.misses");
    stats_.entries = static_cast<std::int64_t>(entries_.size());
    return std::nullopt;
  }
  ++stats_.hits;
  obs::count("service.cache.hits");
  return data;
}

void ResultCache::insert(std::uint64_t key, std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(key) > 0) return;  // first writer wins
    // A same-key insert already mid-flight shares the object's tmp file,
    // so a second writer would race the publish rename. The key is
    // content-addressed — the in-flight writer is storing these exact
    // bytes — so the loser simply drops out.
    if (!inflight_.insert(key).second) return;
  }
  try {
    if (fault::enabled() && fault::should_fail("svc_cache_write")) {
      throw IoError("cache: injected svc_cache_write fault");
    }
    util::atomic_write_file(object_path(key), payload);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    throw;
  }

  obs::Json rec = obs::Json::object();
  rec["key"] = key_hex(key);
  rec["crc"] = static_cast<std::int64_t>(util::crc32(payload));
  rec["bytes"] = static_cast<std::int64_t>(payload.size());
  const std::string record = rec.dump();

  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(key);
  if (entries_.count(key) > 0) return;  // lost a race; object is identical
  writer_->append(record);
  Entry entry;
  entry.crc = util::crc32(payload);
  entry.bytes = payload.size();
  entries_[key] = entry;
  ++stats_.inserts;
  stats_.entries = static_cast<std::int64_t>(entries_.size());
  obs::count("service.cache.inserts");
}

std::vector<std::uint64_t> ResultCache::scrub_once() {
  // Snapshot under the lock, verify outside it: a scrub pass reads every
  // object and must not stall request handlers while it does.
  std::vector<std::pair<std::uint64_t, Entry>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) snapshot.emplace_back(key, entry);
  }

  std::vector<std::uint64_t> quarantined;
  for (const auto& [key, entry] : snapshot) {
    const std::string path = object_path(key);
    const std::optional<std::string> data = read_file(path);
    const bool valid = data.has_value() && data->size() == entry.bytes &&
                       util::crc32(*data) == entry.crc;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.scrub_checked;
      if (valid) continue;
      // Re-check under the lock: a concurrent re-insert may have
      // replaced the object since the snapshot; believe the live index.
      const auto it = entries_.find(key);
      if (it == entries_.end() || inflight_.count(key) > 0 ||
          it->second.crc != entry.crc || it->second.bytes != entry.bytes) {
        continue;
      }
      entries_.erase(it);
      ++stats_.scrub_quarantined;
      stats_.entries = static_cast<std::int64_t>(entries_.size());
    }
    obs::count("service.cache.scrub_quarantined");
    // Quarantine, don't delete: the corrupt bytes are forensic evidence
    // (which bit flipped? repeated sector?). The index entry is already
    // gone, so a failed rename just leaves an orphan object — wasted
    // bytes, never a wrong answer.
    std::error_code ec;
    const fs::path qdir = fs::path(dir_) / "quarantine";
    fs::create_directories(qdir, ec);
    if (!ec) {
      fs::rename(path, qdir / (key_hex(key) + ".json"), ec);
    }
    if (ec) {
      fs::remove(path, ec);  // best effort; the entry is dropped anyway
    }
    quarantined.push_back(key);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.scrub_passes;
  }
  obs::count("service.cache.scrub_passes");
  return quarantined;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdf::svc
