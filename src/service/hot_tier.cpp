#include "service/hot_tier.h"

#include "obs/counters.h"
#include "util/fault.h"

namespace sdf::svc {

HotTier::HotTier(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes > 0 ? capacity_bytes : 0) {}

std::optional<std::string> HotTier::lookup(std::uint64_t key) {
  if (fault::enabled() && fault::should_fail("svc_cache_read")) {
    // Injected: the resident copy is unusable — degrade to the disk
    // tier exactly like a capacity miss.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    obs::count("service.cache.hot_misses");
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    obs::count("service.cache.hot_misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
  ++stats_.hits;
  obs::count("service.cache.hot_hits");
  return it->second->payload;
}

void HotTier::insert(std::uint64_t key, std::string_view payload) {
  const auto size = static_cast<std::int64_t>(payload.size());
  if (capacity_ <= 0 || size > capacity_) return;  // oversized/disabled
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // content-addressed: same key = same bytes
  }
  evict_to_fit_locked(size);
  lru_.push_front(Entry{key, std::string(payload)});
  index_[key] = lru_.begin();
  stats_.bytes += size;
  stats_.entries = static_cast<std::int64_t>(lru_.size());
  ++stats_.inserts;
  obs::count("service.cache.hot_inserts");
  obs::gauge("service.cache.hot_bytes", stats_.bytes);
}

bool HotTier::erase(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  stats_.bytes -= static_cast<std::int64_t>(it->second->payload.size());
  lru_.erase(it->second);
  index_.erase(it);
  stats_.entries = static_cast<std::int64_t>(lru_.size());
  ++stats_.evictions;
  obs::count("service.cache.hot_evictions");
  obs::gauge("service.cache.hot_bytes", stats_.bytes);
  return true;
}

void HotTier::evict_to_fit_locked(std::int64_t incoming) {
  while (!lru_.empty() && stats_.bytes + incoming > capacity_) {
    const Entry& victim = lru_.back();
    stats_.bytes -= static_cast<std::int64_t>(victim.payload.size());
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    obs::count("service.cache.hot_evictions");
  }
  stats_.entries = static_cast<std::int64_t>(lru_.size());
  obs::gauge("service.cache.hot_bytes", stats_.bytes);
}

HotTierStats HotTier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdf::svc
