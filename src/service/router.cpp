#include "service/router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/counters.h"
#include "obs/json_report.h"
#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "util/hash.h"
#include "util/shutdown.h"

namespace sdf::svc {
namespace {

/// Closes `fd` on scope exit unless released (moved to the caller).
class FdGuard {
 public:
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() { close_fd(fd_); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  void reset(int fd) noexcept {
    close_fd(fd_);
    fd_ = fd;
  }

 private:
  int fd_;
};

}  // namespace

Result<WorkerConfig> parse_worker_spec(std::string_view spec) {
  const auto bad = [](std::string message) {
    Diagnostic diag;
    diag.code = ErrorCode::kBadArgument;
    diag.message = std::move(message);
    return diag;
  };
  WorkerConfig cfg;
  std::string_view endpoint = spec;
  const std::size_t at = spec.find('@');
  if (at != std::string_view::npos) {
    cfg.id = std::string(spec.substr(0, at));
    cfg.pinned_id = true;
    endpoint = spec.substr(at + 1);
    if (cfg.id.empty()) {
      return bad("--worker: empty id in '" + std::string(spec) + "'");
    }
  }
  if (endpoint.empty()) {
    return bad("--worker: empty endpoint in '" + std::string(spec) + "'");
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string_view digits = endpoint.substr(4);
    int port = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9' || port > 65535) {
        port = -1;
        break;
      }
      port = port * 10 + (c - '0');
    }
    if (digits.empty() || port <= 0 || port > 65535) {
      return bad("--worker: bad TCP port in '" + std::string(spec) + "'");
    }
    cfg.endpoint.tcp_port = port;
  } else {
    cfg.endpoint.socket_path = std::string(endpoint);
  }
  if (cfg.id.empty()) cfg.id = cfg.endpoint.name();
  return cfg;
}

Router::Router(RouterOptions options)
    : options_(std::move(options)), ring_(options_.vnodes) {
  if (options_.workers.empty()) {
    throw BadArgumentError("route: no workers configured (need --worker)");
  }
  if (options_.worker_timeout_ms <= 0) options_.worker_timeout_ms = 60000;
  for (const WorkerConfig& cfg : options_.workers) {
    if (workers_.count(cfg.id) > 0) {
      throw BadArgumentError("route: duplicate worker id '" + cfg.id + "'");
    }
    WorkerState st;
    st.cfg = cfg;
    workers_.emplace(cfg.id, std::move(st));
    ring_.add(cfg.id);
  }
}

Router::~Router() {
  stop();
  if (health_.joinable()) health_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
}

bool Router::stop_requested() const noexcept {
  return stop_.load(std::memory_order_relaxed) || util::shutdown_requested();
}

void Router::stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

void Router::start() {
  if (options_.socket_path.empty() && options_.tcp_port == 0) {
    throw BadArgumentError("route: no listener configured "
                           "(need --socket and/or --port)");
  }
  if (!options_.socket_path.empty()) {
    unix_fd_ = listen_unix(options_.socket_path);
  }
  if (options_.tcp_port != 0) {
    try {
      tcp_fd_ = listen_tcp(options_.tcp_port, &bound_tcp_port_);
    } catch (...) {
      close_fd(unix_fd_);
      throw;
    }
  }
  if (options_.health_interval_ms > 0) {
    health_ = std::thread([this] { health_loop(); });
  }
}

void Router::run() {
  while (!stop_requested()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = pollfd{tcp_fd_, POLLIN, 0};
    const int r = ::poll(fds, nfds, 50);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.connections;
      }
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.emplace_back([this, conn] { serve_connection(conn); });
    }
  }
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
}

void Router::serve_connection(int fd) {
  FrameReader reader;
  for (;;) {
    Frame frame;
    const ReadOutcome rc = reader.read(fd, &frame, 50);
    if (rc == ReadOutcome::kFrame) {
      try {
        handle_frame(fd, frame);
      } catch (const std::exception& e) {
        // Backstop mirroring Server::serve_connection: a throwing
        // handler answers typed instead of terminating the router.
        send_error(fd, diagnostic_from_exception(e));
      }
      continue;
    }
    if (rc == ReadOutcome::kTimeout) {
      if (stop_requested()) break;
      continue;
    }
    if (rc == ReadOutcome::kClosed) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_frames;
    }
    obs::count("service.route.bad_frames");
    Diagnostic diag;
    diag.code = ErrorCode::kBadArgument;
    diag.message =
        "bad frame: " + std::string(decode_status_name(reader.last_decode())) +
        " (protocol SDFSVC1, see docs/SERVICE.md)";
    send_error(fd, diag);
    break;
  }
  ::close(fd);
}

void Router::handle_frame(int fd, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kPing:
      send_frame(fd, FrameKind::kPong, frame.payload);
      return;
    case FrameKind::kStatsRequest:
      send_frame(fd, FrameKind::kStatsResponse, stats_json());
      return;
    case FrameKind::kCompileRequest:
      handle_route(fd, frame.payload);
      return;
    default: {
      Diagnostic diag;
      diag.code = ErrorCode::kBadArgument;
      diag.message = "unexpected frame kind " +
                     std::to_string(static_cast<int>(frame.kind)) +
                     " (router accepts compile/ping/stats requests)";
      send_error(fd, diag);
      return;
    }
  }
}

void Router::handle_route(int fd, std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  obs::count("service.route.requests");

  // The router rejects what every worker would reject — same parser —
  // instead of burning a forward on a malformed request.
  Result<CompileRequest> parsed = parse_compile_request(payload);
  if (!parsed.ok()) {
    send_error(fd, parsed.error());
    return;
  }
  const CompileRequest& req = parsed.value();

  // Shard key: the worker's exact cache key when the graph parses, the
  // raw-text hash otherwise (sticky routing for the parse error too).
  std::uint64_t key = 0;
  bool have_cache_key = false;
  try {
    const Graph g = parse_graph_text(req.graph_text);
    key = cache_key(write_graph_text(g), option_fingerprint(req));
    have_cache_key = true;
  } catch (const std::exception&) {
    key = util::fnv1a64(req.graph_text);
  }
  route_with_failover(fd, payload, key, have_cache_key);
}

std::vector<std::string> Router::live_preference(std::uint64_t key) const {
  const std::vector<std::string> order = ring_.owners(key, workers_.size());
  std::vector<std::string> live;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& id : order) {
    const auto it = workers_.find(id);
    if (it != workers_.end() && it->second.alive) live.push_back(id);
  }
  return live;
}

void Router::route_with_failover(int fd, std::string_view payload,
                                 std::uint64_t key, bool have_cache_key) {
  // Each failed attempt marks its owner dead, so at most one attempt per
  // configured worker — the loop cannot spin.
  for (std::size_t attempt = 0; attempt < options_.workers.size();
       ++attempt) {
    const std::vector<std::string> live = live_preference(key);
    if (live.empty()) break;
    const std::string& owner = live.front();
    const int raw_fd = worker_connect(owner);
    if (raw_fd < 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rerouted;
      obs::count("service.route.rerouted");
      continue;
    }
    FdGuard wfd(raw_fd);

    bool owner_peer_support;
    {
      std::lock_guard<std::mutex> lock(mu_);
      owner_peer_support = workers_[owner].peer_support;
    }

    if (have_cache_key && owner_peer_support) {
      const std::optional<Frame> reply =
          worker_roundtrip(wfd.get(), FrameKind::kPeerLookupRequest,
                           encode_peer_lookup(key));
      if (!reply.has_value()) {
        mark_dead(owner);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rerouted;
        obs::count("service.route.rerouted");
        continue;
      }
      if (reply->kind == FrameKind::kPeerLookupResponse &&
          !reply->payload.empty()) {
        // Shard hit: the owner's cache already had the bytes.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.lookup_hits;
        }
        obs::count("service.route.lookup_hits");
        send_frame(fd, FrameKind::kCompileResponse, reply->payload);
        return;
      }
      if (reply->kind == FrameKind::kErrorResponse) {
        // Pre-fleet worker: it answered the peer frame with a bad-frame
        // error and closed the connection. Remember, reconnect, and fall
        // back to plain forwarding for this worker from now on.
        {
          std::lock_guard<std::mutex> lock(mu_);
          workers_[owner].peer_support = false;
        }
        owner_peer_support = false;
        const int refd = worker_connect(owner);
        if (refd < 0) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.rerouted;
          obs::count("service.route.rerouted");
          continue;
        }
        wfd.reset(refd);
      } else if (reply->kind != FrameKind::kPeerLookupResponse) {
        mark_dead(owner);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rerouted;
        obs::count("service.route.rerouted");
        continue;
      } else {
        // Shard miss. Probe the remaining live workers: a peer that
        // cached this key serves the client immediately and warms the
        // owner so the shard heals.
        for (std::size_t p = 1; p < live.size(); ++p) {
          const std::string& peer = live[p];
          {
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = workers_.find(peer);
            if (it == workers_.end() || !it->second.alive ||
                !it->second.peer_support) {
              continue;
            }
          }
          const int praw = worker_connect(peer);
          if (praw < 0) continue;
          FdGuard pfd(praw);
          const std::optional<Frame> probe =
              worker_roundtrip(pfd.get(), FrameKind::kPeerLookupRequest,
                               encode_peer_lookup(key));
          if (!probe.has_value()) {
            mark_dead(peer);
            continue;
          }
          if (probe->kind == FrameKind::kErrorResponse) {
            std::lock_guard<std::mutex> lock(mu_);
            workers_[peer].peer_support = false;
            continue;
          }
          if (probe->kind != FrameKind::kPeerLookupResponse ||
              probe->payload.empty()) {
            continue;
          }
          // Peer hit: warm the owner on the connection we already hold,
          // THEN relay to the client. Ordering matters — once the client
          // sees this reply, the shard owner is guaranteed to answer the
          // next lookup itself (no window where a follow-up request
          // re-probes peers). The warm is durable on the owner before
          // its ack. A failed warm still serves the client; the next
          // request just probes again.
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.peer_hits;
          }
          obs::count("service.route.peer_hits");
          const std::optional<Frame> warm = worker_roundtrip(
              wfd.get(), FrameKind::kPeerInsertRequest,
              encode_peer_insert(key, probe->payload));
          if (warm.has_value() &&
              warm->kind == FrameKind::kPeerInsertResponse) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.warms;
            obs::count("service.route.warms");
          } else if (!warm.has_value()) {
            mark_dead(owner);
          }
          send_frame(fd, FrameKind::kCompileResponse, probe->payload);
          return;
        }
      }
    }

    // Cold path: forward the full compile to the owner and relay the
    // reply verbatim — worker-typed errors (overloaded, unknown tenant,
    // parse...) reach the client exactly as a direct connection would.
    const std::optional<Frame> reply =
        worker_roundtrip(wfd.get(), FrameKind::kCompileRequest, payload);
    if (!reply.has_value()) {
      mark_dead(owner);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rerouted;
      obs::count("service.route.rerouted");
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.compiles;
      ++workers_[owner].forwarded;
    }
    obs::count("service.route.compiles");
    send_frame(fd, reply->kind, reply->payload);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.unavailable;
  }
  obs::count("service.route.unavailable");
  Diagnostic diag;
  diag.code = ErrorCode::kUnavailable;
  diag.message = "no live worker: all " +
                 std::to_string(options_.workers.size()) +
                 " configured workers are unreachable; retry once the "
                 "fleet recovers (docs/SERVICE.md \"Fleet mode\")";
  send_error(fd, diag);
}

std::optional<Frame> Router::worker_roundtrip(int wfd, FrameKind kind,
                                              std::string_view payload) {
  if (!send_all(wfd, encode_frame(kind, payload))) return std::nullopt;
  FrameReader reader;
  Frame frame;
  if (reader.read(wfd, &frame, options_.worker_timeout_ms) !=
      ReadOutcome::kFrame) {
    return std::nullopt;
  }
  return frame;
}

int Router::worker_connect(const std::string& id) {
  Endpoint ep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = workers_.find(id);
    if (it == workers_.end()) return -1;
    ep = it->second.cfg.endpoint;
  }
  try {
    return connect_endpoint(ep);
  } catch (const std::exception&) {
    mark_dead(id);
    return -1;
  }
}

void Router::mark_dead(const std::string& id) {
  bool transition = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = workers_.find(id);
    if (it == workers_.end()) return;
    ++it->second.failures;
    if (it->second.alive) {
      it->second.alive = false;
      ++stats_.worker_down;
      transition = true;
    }
    note_workers_alive_locked();
  }
  if (transition) obs::count("service.route.worker_down");
}

void Router::mark_alive(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = workers_.find(id);
  if (it == workers_.end() || it->second.alive) return;
  it->second.alive = true;
  note_workers_alive_locked();
}

void Router::note_workers_alive_locked() {
  std::int64_t alive = 0;
  for (const auto& [id, st] : workers_) {
    if (st.alive) ++alive;
  }
  obs::gauge("service.route.workers_alive", alive);
}

void Router::health_loop() {
  while (!stop_requested()) {
    health_check_once();
    // Sleep in 20 ms slices so stop() is honoured promptly.
    for (int waited = 0;
         waited < options_.health_interval_ms && !stop_requested();
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void Router::health_check_once() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(workers_.size());
    for (const auto& [id, st] : workers_) ids.push_back(id);
  }
  for (const std::string& id : ids) {
    if (stop_requested()) return;
    const int raw_fd = worker_connect(id);
    if (raw_fd < 0) continue;  // already marked dead
    FdGuard wfd(raw_fd);
    if (!send_all(wfd.get(),
                  encode_frame(FrameKind::kStatsRequest, ""))) {
      mark_dead(id);
      continue;
    }
    FrameReader reader;
    Frame frame;
    // Health probes use a short deadline: a stats reply is cheap, and a
    // worker that cannot produce one inside 2 s is not routable.
    const int probe_ms = std::min(options_.worker_timeout_ms, 2000);
    if (reader.read(wfd.get(), &frame, probe_ms) != ReadOutcome::kFrame ||
        frame.kind != FrameKind::kStatsResponse) {
      mark_dead(id);
      continue;
    }
    bool pinned = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = workers_.find(id);
      if (it != workers_.end()) pinned = it->second.cfg.pinned_id;
    }
    if (pinned) {
      // Identity check: a socket answered by a *different* worker (e.g.
      // a path reused by another fleet) is down, not routed to.
      std::string reported;
      try {
        const obs::Json doc = obs::Json::parse(frame.payload);
        if (const obs::Json* wid = doc.find("worker_id")) {
          reported = wid->as_string();
        }
      } catch (const std::exception&) {
        // Not a stats document — treat as unhealthy below.
        reported = "\x01not-stats";
      }
      if (!reported.empty() && reported != id) {
        mark_dead(id);
        continue;
      }
    }
    mark_alive(id);
  }
}

void Router::send_frame(int fd, FrameKind kind, std::string_view payload) {
  send_all(fd, encode_frame(kind, payload));
}

void Router::send_error(int fd, const Diagnostic& diag) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  obs::count("service.route.errors");
  obs::Json doc = obs::Json::object();
  doc["error"] = diagnostic_to_json(diag);
  send_frame(fd, FrameKind::kErrorResponse, doc.dump(2));
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterStats out = stats_;
  for (const auto& [id, st] : workers_) {
    RouterWorkerStats ws;
    ws.endpoint = st.cfg.endpoint.name();
    ws.alive = st.alive;
    ws.peer_support = st.peer_support;
    ws.forwarded = st.forwarded;
    ws.failures = st.failures;
    out.workers.emplace(id, std::move(ws));
  }
  return out;
}

std::string Router::stats_json() const {
  const RouterStats snapshot = stats();
  obs::Json doc = obs::Json::object();
  doc["schema"] = "sdfmem.routestats.v1";
  doc["requests"] = snapshot.requests;
  doc["connections"] = snapshot.connections;
  doc["bad_frames"] = snapshot.bad_frames;
  doc["errors"] = snapshot.errors;
  doc["lookup_hits"] = snapshot.lookup_hits;
  doc["peer_hits"] = snapshot.peer_hits;
  doc["warms"] = snapshot.warms;
  doc["compiles"] = snapshot.compiles;
  doc["rerouted"] = snapshot.rerouted;
  doc["unavailable"] = snapshot.unavailable;
  doc["worker_down"] = snapshot.worker_down;
  std::int64_t alive = 0;
  obs::Json workers = obs::Json::object();
  for (const auto& [id, ws] : snapshot.workers) {
    if (ws.alive) ++alive;
    obs::Json w = obs::Json::object();
    w["endpoint"] = ws.endpoint;
    w["alive"] = ws.alive;
    w["peer_support"] = ws.peer_support;
    w["forwarded"] = ws.forwarded;
    w["failures"] = ws.failures;
    workers[id] = std::move(w);
  }
  doc["workers_alive"] = alive;
  doc["workers"] = std::move(workers);
  return doc.dump(2);
}

}  // namespace sdf::svc
