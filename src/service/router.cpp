#include "service/router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/counters.h"
#include "obs/json_report.h"
#include "sdf/diagnostics.h"
#include "sdf/io.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/shutdown.h"

namespace sdf::svc {
namespace {

/// Closes `fd` on scope exit unless released (moved to the caller).
class FdGuard {
 public:
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() { close_fd(fd_); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  void reset(int fd) noexcept {
    close_fd(fd_);
    fd_ = fd;
  }

 private:
  int fd_;
};

}  // namespace

Result<WorkerConfig> parse_worker_spec(std::string_view spec) {
  const auto bad = [](std::string message) {
    Diagnostic diag;
    diag.code = ErrorCode::kBadArgument;
    diag.message = std::move(message);
    return diag;
  };
  WorkerConfig cfg;
  std::string_view endpoint = spec;
  const std::size_t at = spec.find('@');
  if (at != std::string_view::npos) {
    cfg.id = std::string(spec.substr(0, at));
    cfg.pinned_id = true;
    endpoint = spec.substr(at + 1);
    if (cfg.id.empty()) {
      return bad("--worker: empty id in '" + std::string(spec) + "'");
    }
  }
  if (endpoint.empty()) {
    return bad("--worker: empty endpoint in '" + std::string(spec) + "'");
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string_view digits = endpoint.substr(4);
    int port = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9' || port > 65535) {
        port = -1;
        break;
      }
      port = port * 10 + (c - '0');
    }
    if (digits.empty() || port <= 0 || port > 65535) {
      return bad("--worker: bad TCP port in '" + std::string(spec) + "'");
    }
    cfg.endpoint.tcp_port = port;
  } else {
    cfg.endpoint.socket_path = std::string(endpoint);
  }
  if (cfg.id.empty()) cfg.id = cfg.endpoint.name();
  return cfg;
}

std::string_view breaker_state_name(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "closed";
}

Router::Router(RouterOptions options)
    : options_(std::move(options)), ring_(options_.vnodes) {
  if (options_.workers.empty()) {
    throw BadArgumentError("route: no workers configured (need --worker)");
  }
  if (options_.worker_timeout_ms <= 0) options_.worker_timeout_ms = 60000;
  if (options_.breaker_threshold < 1) options_.breaker_threshold = 1;
  for (const WorkerConfig& cfg : options_.workers) {
    if (workers_.count(cfg.id) > 0) {
      throw BadArgumentError("route: duplicate worker id '" + cfg.id + "'");
    }
    WorkerState st;
    st.cfg = cfg;
    workers_.emplace(cfg.id, std::move(st));
    ring_.add(cfg.id);
  }
}

Router::~Router() {
  stop();
  if (health_.joinable()) health_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
}

bool Router::stop_requested() const noexcept {
  return stop_.load(std::memory_order_relaxed) || util::shutdown_requested();
}

void Router::stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

void Router::start() {
  if (options_.socket_path.empty() && options_.tcp_port == 0) {
    throw BadArgumentError("route: no listener configured "
                           "(need --socket and/or --port)");
  }
  // A worker dying mid-relay turns the next send into EPIPE, not a
  // process-killing SIGPIPE.
  ignore_sigpipe();
  if (!options_.socket_path.empty()) {
    unix_fd_ = listen_unix(options_.socket_path);
  }
  if (options_.tcp_port != 0) {
    try {
      tcp_fd_ = listen_tcp(options_.tcp_port, &bound_tcp_port_);
    } catch (...) {
      close_fd(unix_fd_);
      throw;
    }
  }
  if (options_.health_interval_ms > 0) {
    health_ = std::thread([this] { health_loop(); });
  }
}

void Router::run() {
  while (!stop_requested()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = pollfd{tcp_fd_, POLLIN, 0};
    const int r = ::poll(fds, nfds, 50);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      // EINTR (and any other accept error) falls back to the poll loop —
      // never treated as a listener failure.
      if (conn < 0) continue;
      if (fault::enabled() && fault::should_fail("svc_accept")) {
        ::close(conn);  // injected: the accepted connection is dropped
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.connections;
      }
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.emplace_back([this, conn] { serve_connection(conn); });
    }
  }
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
}

void Router::serve_connection(int fd) {
  FrameReader reader;
  for (;;) {
    Frame frame;
    const ReadOutcome rc = reader.read(fd, &frame, 50);
    if (rc == ReadOutcome::kFrame) {
      try {
        handle_frame(fd, frame);
      } catch (const std::exception& e) {
        // Backstop mirroring Server::serve_connection: a throwing
        // handler answers typed instead of terminating the router.
        send_error(fd, diagnostic_from_exception(e));
      }
      continue;
    }
    if (rc == ReadOutcome::kTimeout) {
      if (stop_requested()) break;
      continue;
    }
    if (rc == ReadOutcome::kClosed) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_frames;
    }
    obs::count("service.route.bad_frames");
    Diagnostic diag;
    diag.code = ErrorCode::kBadArgument;
    diag.message =
        "bad frame: " + std::string(decode_status_name(reader.last_decode())) +
        " (protocol SDFSVC1, see docs/SERVICE.md)";
    send_error(fd, diag);
    break;
  }
  ::close(fd);
}

void Router::handle_frame(int fd, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kPing:
      send_frame(fd, FrameKind::kPong, frame.payload);
      return;
    case FrameKind::kStatsRequest:
      send_frame(fd, FrameKind::kStatsResponse, stats_json());
      return;
    case FrameKind::kCompileRequest:
      handle_route(fd, frame.payload);
      return;
    default: {
      Diagnostic diag;
      diag.code = ErrorCode::kBadArgument;
      diag.message = "unexpected frame kind " +
                     std::to_string(static_cast<int>(frame.kind)) +
                     " (router accepts compile/ping/stats requests)";
      send_error(fd, diag);
      return;
    }
  }
}

void Router::handle_route(int fd, std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  obs::count("service.route.requests");

  // The router rejects what every worker would reject — same parser —
  // instead of burning a forward on a malformed request.
  Result<CompileRequest> parsed = parse_compile_request(payload);
  if (!parsed.ok()) {
    send_error(fd, parsed.error());
    return;
  }
  const CompileRequest& req = parsed.value();

  // Shard key: the worker's exact cache key when the graph parses, the
  // raw-text hash otherwise (sticky routing for the parse error too).
  std::uint64_t key = 0;
  bool have_cache_key = false;
  try {
    const Graph g = parse_graph_text(req.graph_text);
    key = cache_key(write_graph_text(g), option_fingerprint(req));
    have_cache_key = true;
  } catch (const std::exception&) {
    key = util::fnv1a64(req.graph_text);
  }
  route_with_failover(fd, payload, key, have_cache_key);
}

std::string Router::acquire_owner(std::uint64_t key,
                                  const std::vector<std::string>& exclude) {
  const std::vector<std::string> order = ring_.owners(key, workers_.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& id : order) {
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    const auto it = workers_.find(id);
    if (it == workers_.end()) continue;
    WorkerState& st = it->second;
    if (st.breaker == BreakerState::kOpen) continue;
    if (st.breaker == BreakerState::kHalfOpen) {
      // One trial at a time: the first request through claims the slot;
      // everyone else skips to the next routable worker until the trial
      // settles the breaker one way or the other.
      if (st.trial_inflight) continue;
      st.trial_inflight = true;
    }
    return id;
  }
  return {};
}

std::vector<std::string> Router::peer_candidates(
    std::uint64_t key, const std::string& owner,
    const std::vector<std::string>& exclude) const {
  const std::vector<std::string> order = ring_.owners(key, workers_.size());
  std::vector<std::string> peers;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& id : order) {
    if (id == owner) continue;
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    const auto it = workers_.find(id);
    if (it == workers_.end()) continue;
    // Closed breakers only: open workers take no traffic, and half-open
    // trials stay single-file through acquire_owner.
    if (it->second.breaker != BreakerState::kClosed) continue;
    if (!it->second.peer_support) continue;
    peers.push_back(id);
  }
  return peers;
}

void Router::route_with_failover(int fd, std::string_view payload,
                                 std::uint64_t key, bool have_cache_key) {
  // Each failed attempt lands its owner on the per-request exclusion
  // list, so at most one attempt per configured worker — the loop cannot
  // spin even while the breaker threshold keeps a flaky worker routable.
  std::vector<std::string> excluded;
  for (std::size_t attempt = 0; attempt < options_.workers.size();
       ++attempt) {
    const std::string owner = acquire_owner(key, excluded);
    if (owner.empty()) break;
    const auto reroute_after = [&](const std::string& id) {
      record_failure(id);
      excluded.push_back(id);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rerouted;
      obs::count("service.route.rerouted");
    };
    const int raw_fd = worker_connect(owner);
    if (raw_fd < 0) {
      // worker_connect already recorded the breaker failure.
      excluded.push_back(owner);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rerouted;
      obs::count("service.route.rerouted");
      continue;
    }
    FdGuard wfd(raw_fd);

    bool owner_peer_support;
    {
      std::lock_guard<std::mutex> lock(mu_);
      owner_peer_support = workers_[owner].peer_support;
    }

    if (have_cache_key && owner_peer_support) {
      const std::optional<Frame> reply =
          worker_roundtrip(wfd.get(), FrameKind::kPeerLookupRequest,
                           encode_peer_lookup(key));
      if (!reply.has_value()) {
        reroute_after(owner);
        continue;
      }
      if (reply->kind == FrameKind::kPeerLookupResponse &&
          !reply->payload.empty()) {
        // Shard hit: the owner's cache already had the bytes.
        record_success(owner);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.lookup_hits;
        }
        obs::count("service.route.lookup_hits");
        send_frame(fd, FrameKind::kCompileResponse, reply->payload);
        return;
      }
      if (reply->kind == FrameKind::kErrorResponse) {
        // Pre-fleet worker: it answered the peer frame with a bad-frame
        // error and closed the connection — a transport-level success as
        // far as the breaker cares. Remember, reconnect, and fall back
        // to plain forwarding for this worker from now on.
        record_success(owner);
        {
          std::lock_guard<std::mutex> lock(mu_);
          workers_[owner].peer_support = false;
        }
        owner_peer_support = false;
        const int refd = worker_connect(owner);
        if (refd < 0) {
          excluded.push_back(owner);
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.rerouted;
          obs::count("service.route.rerouted");
          continue;
        }
        wfd.reset(refd);
      } else if (reply->kind != FrameKind::kPeerLookupResponse) {
        reroute_after(owner);
        continue;
      } else {
        // Shard miss — but the owner answered, which settles any trial.
        // Probe the closed-breaker peers: one that cached this key
        // serves the client immediately and warms the owner so the
        // shard heals.
        record_success(owner);
        for (const std::string& peer :
             peer_candidates(key, owner, excluded)) {
          const int praw = worker_connect(peer);
          if (praw < 0) continue;
          FdGuard pfd(praw);
          const std::optional<Frame> probe =
              worker_roundtrip(pfd.get(), FrameKind::kPeerLookupRequest,
                               encode_peer_lookup(key));
          if (!probe.has_value()) {
            record_failure(peer);
            continue;
          }
          if (probe->kind == FrameKind::kErrorResponse) {
            record_success(peer);
            std::lock_guard<std::mutex> lock(mu_);
            workers_[peer].peer_support = false;
            continue;
          }
          if (probe->kind != FrameKind::kPeerLookupResponse ||
              probe->payload.empty()) {
            if (probe->kind == FrameKind::kPeerLookupResponse) {
              record_success(peer);  // peer miss: still a clean answer
            }
            continue;
          }
          // Peer hit: warm the owner on the connection we already hold,
          // THEN relay to the client. Ordering matters — once the client
          // sees this reply, the shard owner is guaranteed to answer the
          // next lookup itself (no window where a follow-up request
          // re-probes peers). The warm is durable on the owner before
          // its ack. A failed warm still serves the client; the next
          // request just probes again.
          record_success(peer);
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.peer_hits;
          }
          obs::count("service.route.peer_hits");
          const std::optional<Frame> warm = worker_roundtrip(
              wfd.get(), FrameKind::kPeerInsertRequest,
              encode_peer_insert(key, probe->payload));
          if (warm.has_value() &&
              warm->kind == FrameKind::kPeerInsertResponse) {
            record_success(owner);
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.warms;
            obs::count("service.route.warms");
          } else if (!warm.has_value()) {
            record_failure(owner);
          }
          send_frame(fd, FrameKind::kCompileResponse, probe->payload);
          return;
        }
      }
    }

    // Cold path: forward the full compile to the owner and relay the
    // reply verbatim — worker-typed errors (overloaded, unknown tenant,
    // parse...) reach the client exactly as a direct connection would.
    const std::optional<Frame> reply =
        worker_roundtrip(wfd.get(), FrameKind::kCompileRequest, payload);
    if (!reply.has_value()) {
      reroute_after(owner);
      continue;
    }
    record_success(owner);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.compiles;
      ++workers_[owner].forwarded;
    }
    obs::count("service.route.compiles");
    send_frame(fd, reply->kind, reply->payload);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.unavailable;
  }
  obs::count("service.route.unavailable");
  Diagnostic diag;
  diag.code = ErrorCode::kUnavailable;
  diag.message = "no live worker: all " +
                 std::to_string(options_.workers.size()) +
                 " configured workers are unreachable; retry once the "
                 "fleet recovers (docs/SERVICE.md \"Fleet mode\")";
  send_error(fd, diag);
}

std::optional<Frame> Router::worker_roundtrip(int wfd, FrameKind kind,
                                              std::string_view payload) {
  if ((kind == FrameKind::kPeerLookupRequest ||
       kind == FrameKind::kPeerInsertRequest) &&
      fault::enabled() && fault::should_fail("svc_peer_timeout")) {
    return std::nullopt;  // injected: the peer round-trip timed out
  }
  if (!send_all(wfd, encode_frame(kind, payload))) return std::nullopt;
  FrameReader reader;
  Frame frame;
  if (reader.read(wfd, &frame, options_.worker_timeout_ms) !=
      ReadOutcome::kFrame) {
    return std::nullopt;
  }
  return frame;
}

int Router::worker_connect(const std::string& id) {
  Endpoint ep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = workers_.find(id);
    if (it == workers_.end()) return -1;
    ep = it->second.cfg.endpoint;
  }
  try {
    return connect_endpoint(ep);
  } catch (const std::exception&) {
    record_failure(id);
    return -1;
  }
}

void Router::record_failure(const std::string& id) {
  bool opened = false;
  bool reopened = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = workers_.find(id);
    if (it == workers_.end()) return;
    WorkerState& st = it->second;
    ++st.failures;
    ++st.consecutive_failures;
    st.trial_inflight = false;
    if (st.breaker == BreakerState::kHalfOpen) {
      // The trial failed: straight back to open, no threshold grace.
      st.breaker = BreakerState::kOpen;
      ++stats_.worker_down;
      ++stats_.breaker_reopen;
      reopened = true;
    } else if (st.breaker == BreakerState::kClosed &&
               st.consecutive_failures >= options_.breaker_threshold) {
      st.breaker = BreakerState::kOpen;
      ++stats_.worker_down;
      opened = true;
    }
    note_workers_alive_locked();
  }
  if (opened) {
    obs::count("service.route.worker_down");
    obs::count("service.route.breaker_open");
  }
  if (reopened) {
    obs::count("service.route.worker_down");
    obs::count("service.route.breaker_reopen");
  }
}

void Router::record_success(const std::string& id) {
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = workers_.find(id);
    if (it == workers_.end()) return;
    WorkerState& st = it->second;
    st.consecutive_failures = 0;
    st.trial_inflight = false;
    if (st.breaker == BreakerState::kHalfOpen) {
      st.breaker = BreakerState::kClosed;
      ++stats_.breaker_close;
      closed = true;
    }
    note_workers_alive_locked();
  }
  if (closed) obs::count("service.route.breaker_close");
}

void Router::note_probe_success(const std::string& id) {
  bool half = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = workers_.find(id);
    if (it == workers_.end()) return;
    WorkerState& st = it->second;
    if (st.breaker == BreakerState::kOpen) {
      st.breaker = BreakerState::kHalfOpen;
      st.trial_inflight = false;
      ++stats_.breaker_half_open;
      half = true;
      note_workers_alive_locked();
    } else if (st.breaker == BreakerState::kClosed) {
      // A healthy probe wipes the streak so sporadic request failures
      // spread over time never accumulate to a spurious open.
      st.consecutive_failures = 0;
    }
    // Half-open: leave it alone — the in-flight trial request decides.
  }
  if (half) obs::count("service.route.breaker_half_open");
}

void Router::note_workers_alive_locked() {
  std::int64_t alive = 0;
  for (const auto& [id, st] : workers_) {
    if (st.breaker != BreakerState::kOpen) ++alive;
  }
  obs::gauge("service.route.workers_alive", alive);
}

void Router::health_loop() {
  while (!stop_requested()) {
    health_check_once();
    // Sleep in 20 ms slices so stop() is honoured promptly.
    for (int waited = 0;
         waited < options_.health_interval_ms && !stop_requested();
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void Router::health_check_once() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(workers_.size());
    for (const auto& [id, st] : workers_) ids.push_back(id);
  }
  for (const std::string& id : ids) {
    if (stop_requested()) return;
    const int raw_fd = worker_connect(id);
    if (raw_fd < 0) continue;  // already marked dead
    FdGuard wfd(raw_fd);
    if (!send_all(wfd.get(),
                  encode_frame(FrameKind::kStatsRequest, ""))) {
      record_failure(id);
      continue;
    }
    FrameReader reader;
    Frame frame;
    // Health probes use a short deadline: a stats reply is cheap, and a
    // worker that cannot produce one inside 2 s is not routable.
    const int probe_ms = std::min(options_.worker_timeout_ms, 2000);
    if (reader.read(wfd.get(), &frame, probe_ms) != ReadOutcome::kFrame ||
        frame.kind != FrameKind::kStatsResponse) {
      record_failure(id);
      continue;
    }
    bool pinned = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = workers_.find(id);
      if (it != workers_.end()) pinned = it->second.cfg.pinned_id;
    }
    if (pinned) {
      // Identity check: a socket answered by a *different* worker (e.g.
      // a path reused by another fleet) is down, not routed to.
      std::string reported;
      try {
        const obs::Json doc = obs::Json::parse(frame.payload);
        if (const obs::Json* wid = doc.find("worker_id")) {
          reported = wid->as_string();
        }
      } catch (const std::exception&) {
        // Not a stats document — treat as unhealthy below.
        reported = "\x01not-stats";
      }
      if (!reported.empty() && reported != id) {
        record_failure(id);
        continue;
      }
    }
    note_probe_success(id);
  }
}

void Router::send_frame(int fd, FrameKind kind, std::string_view payload) {
  if (!send_all(fd, encode_frame(kind, payload))) {
    // A half-sent reply is unrecoverable on this connection: shut the
    // socket down so the client's blocking read sees EOF (a typed
    // kClosed) instead of waiting forever on a torn frame.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Router::send_error(int fd, const Diagnostic& diag) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  obs::count("service.route.errors");
  obs::Json doc = obs::Json::object();
  doc["error"] = diagnostic_to_json(diag);
  send_frame(fd, FrameKind::kErrorResponse, doc.dump(2));
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterStats out = stats_;
  for (const auto& [id, st] : workers_) {
    RouterWorkerStats ws;
    ws.endpoint = st.cfg.endpoint.name();
    ws.breaker = st.breaker;
    ws.alive = st.breaker != BreakerState::kOpen;
    ws.consecutive_failures = st.consecutive_failures;
    ws.peer_support = st.peer_support;
    ws.forwarded = st.forwarded;
    ws.failures = st.failures;
    out.workers.emplace(id, std::move(ws));
  }
  return out;
}

std::string Router::stats_json() const {
  const RouterStats snapshot = stats();
  obs::Json doc = obs::Json::object();
  doc["schema"] = "sdfmem.routestats.v1";
  doc["requests"] = snapshot.requests;
  doc["connections"] = snapshot.connections;
  doc["bad_frames"] = snapshot.bad_frames;
  doc["errors"] = snapshot.errors;
  doc["lookup_hits"] = snapshot.lookup_hits;
  doc["peer_hits"] = snapshot.peer_hits;
  doc["warms"] = snapshot.warms;
  doc["compiles"] = snapshot.compiles;
  doc["rerouted"] = snapshot.rerouted;
  doc["unavailable"] = snapshot.unavailable;
  doc["worker_down"] = snapshot.worker_down;
  doc["breaker_half_open"] = snapshot.breaker_half_open;
  doc["breaker_close"] = snapshot.breaker_close;
  doc["breaker_reopen"] = snapshot.breaker_reopen;
  std::int64_t alive = 0;
  obs::Json workers = obs::Json::object();
  for (const auto& [id, ws] : snapshot.workers) {
    if (ws.alive) ++alive;
    obs::Json w = obs::Json::object();
    w["endpoint"] = ws.endpoint;
    w["alive"] = ws.alive;
    w["breaker"] = std::string(breaker_state_name(ws.breaker));
    w["consecutive_failures"] =
        static_cast<std::int64_t>(ws.consecutive_failures);
    w["peer_support"] = ws.peer_support;
    w["forwarded"] = ws.forwarded;
    w["failures"] = ws.failures;
    workers[id] = std::move(w);
  }
  doc["workers_alive"] = alive;
  doc["workers"] = std::move(workers);
  return doc.dump(2);
}

}  // namespace sdf::svc
