// Transport layer of the compile service (docs/ARCHITECTURE.md, "Service
// layers"): raw stream sockets plus SDFSVC1 frame I/O, shared by the
// server (service/server.h), the blocking client (service/client.h) and
// the fleet router (service/router.h).
//
// The split keeps the layers separable:
//
//   transport  — this file: listen/connect/send_all + FrameReader
//   routing    — service/ring.h + service/router.h (who owns a key)
//   cache      — service/hot_tier.h over service/cache.h (where bytes live)
//
// Nothing here interprets payloads; framing integrity (magic, kind,
// length, CRC) is the only protocol knowledge at this layer.
#pragma once

#include <string>
#include <string_view>

#include "service/protocol.h"

namespace sdf::svc {

/// close() + reset to -1; no-op on -1. Safe on any thread.
void close_fd(int& fd) noexcept;

/// Ignores SIGPIPE process-wide (idempotent). Every send here already
/// passes MSG_NOSIGNAL, but library users and stdio can still write to a
/// dead pipe; a daemon must never die for that. Called from server,
/// router, and client setup.
void ignore_sigpipe() noexcept;

/// Writes all of `data` (MSG_NOSIGNAL, EINTR-retried). False when the
/// peer went away — callers on the serving side just drop the connection.
[[nodiscard]] bool send_all(int fd, std::string_view data) noexcept;

/// send_all for client-side paths where a short write is an error worth
/// reporting; throws IoError with the errno detail.
void send_all_or_throw(int fd, std::string_view data);

/// Binds + listens on a Unix-domain socket, replacing any stale socket
/// file at `path`. Throws BadArgumentError (path too long) or IoError.
[[nodiscard]] int listen_unix(const std::string& path);

/// Binds + listens on loopback TCP. `port` > 0 binds that port, < 0 asks
/// the kernel for an ephemeral one; the bound port is written to
/// `*bound_port` either way. Throws IoError.
[[nodiscard]] int listen_tcp(int port, int* bound_port);

/// Connects to a Unix-domain socket. Throws BadArgumentError / IoError.
[[nodiscard]] int connect_unix(const std::string& path);

/// Connects to loopback TCP. Throws BadArgumentError / IoError.
[[nodiscard]] int connect_tcp(int port);

/// One network address: Unix socket path when non-empty, else loopback
/// TCP. The same convention as ClientOptions / ServerOptions.
struct Endpoint {
  std::string socket_path;
  int tcp_port = 0;

  [[nodiscard]] std::string name() const {
    return socket_path.empty() ? "127.0.0.1:" + std::to_string(tcp_port)
                               : socket_path;
  }
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Connects to `ep`; throws BadArgumentError when neither field is set.
[[nodiscard]] int connect_endpoint(const Endpoint& ep);

enum class ReadOutcome {
  kFrame,     ///< one complete frame decoded into *out
  kClosed,    ///< EOF or socket error before a complete frame
  kTimeout,   ///< timeout_ms elapsed without a complete frame
  kBadFrame,  ///< framing violation — see FrameReader::last_decode()
};

/// Incremental SDFSVC1 frame reader over one stream socket. Owns the
/// partial-frame buffer, so bytes of a following frame that arrive in
/// the same recv() are kept for the next read() call. Not thread-safe;
/// one reader per connection.
class FrameReader {
 public:
  /// Blocks (poll + recv) until a full frame, EOF, a framing error, or
  /// the timeout. `timeout_ms` < 0 blocks indefinitely; the timeout is a
  /// total deadline for this call, not per-recv. EINTR never surfaces.
  [[nodiscard]] ReadOutcome read(int fd, Frame* out, int timeout_ms = -1);

  /// The decode status behind the last kBadFrame outcome.
  [[nodiscard]] DecodeStatus last_decode() const noexcept { return last_; }

  /// True when a partial frame is buffered (EOF now = torn frame).
  [[nodiscard]] bool mid_frame() const noexcept { return !buffer_.empty(); }

 private:
  std::string buffer_;
  DecodeStatus last_ = DecodeStatus::kNeedMore;
};

}  // namespace sdf::svc
