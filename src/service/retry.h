// Client-side retry policy for the compile service
// (docs/RELIABILITY.md, "Retry policy").
//
// Three pieces, composable and individually testable:
//
//   retryable(code)  — the taxonomy: which typed failures are worth a
//                      second attempt. Transient conditions (kIo broken
//                      connections, kOverloaded admission rejections,
//                      kUnavailable fleet outages) are; deterministic
//                      rejections (kParse, kBadArgument, kUnknownTenant,
//                      ...) never are — retrying them burns capacity to
//                      get the same answer.
//   RetryPolicy      — exponential backoff with deterministic seeded
//                      jitter: attempt k sleeps a value drawn from
//                      [d/2, d] where d = min(max, base * 2^k), keyed by
//                      (seed, k) through splitmix64. Same seed, same
//                      sleeps — chaos schedules replay exactly.
//   RetryBudget      — a per-process token bucket that bounds the
//                      *total* retry volume: each retry spends a token,
//                      each success refunds a tenth. When a fleet
//                      degrades, clients back off collectively instead
//                      of amplifying the outage with a retry storm; an
//                      exhausted budget surfaces as a typed
//                      kUnavailable, never a silent spin.
//
// RetryingClient wires the three around service/client.h: one logical
// compile() that reconnects between attempts (the previous connection
// usually died with the failure) and returns the last typed error when
// retries are exhausted.
//
// Counters (docs/OBSERVABILITY.md): service.retry.attempts / retries /
// successes / giveups / budget_exhausted.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "service/client.h"
#include "util/status.h"

namespace sdf::svc {

/// True when a failure with this code may succeed on a retry.
[[nodiscard]] bool retryable(ErrorCode code) noexcept;

struct RetryPolicy {
  /// Additional attempts after the first; 0 disables retrying.
  int max_retries = 0;
  /// Backoff before retry k is drawn from [d/2, d], d = min(max,
  /// base * 2^k).
  int base_backoff_ms = 10;
  int max_backoff_ms = 2000;
  /// Jitter seed; fixed seed = byte-reproducible schedules.
  std::uint64_t seed = 0;
};

/// The deterministic backoff before retry `retry_index` (0-based).
[[nodiscard]] std::int64_t retry_backoff_ms(const RetryPolicy& policy,
                                            int retry_index) noexcept;

/// Process-wide retry token bucket. `max_retries` tokens; a retry spends
/// one whole token, a success refunds a tenth (so sustained retrying
/// needs a 10:1 success ratio to break even — the classic anti-storm
/// shape). Thread-safe.
class RetryBudget {
 public:
  explicit RetryBudget(std::int64_t max_retries);

  /// Spends one retry token. False (and counted) when the bucket is dry.
  [[nodiscard]] bool try_acquire();

  /// Refunds a tenth of a token after a successful attempt.
  void on_success();

  [[nodiscard]] std::int64_t retries_granted() const;
  [[nodiscard]] std::int64_t exhausted_count() const;

 private:
  static constexpr std::int64_t kTokenScale = 10;  ///< deci-tokens

  mutable std::mutex mu_;
  std::int64_t capacity_;  ///< in deci-tokens
  std::int64_t tokens_;
  std::int64_t granted_ = 0;
  std::int64_t exhausted_ = 0;
};

/// A Client wrapper that retries transient failures under a policy and
/// an optional shared budget. Each attempt runs on a fresh connection
/// when the previous one broke; non-retryable typed errors return
/// immediately and untouched.
class RetryingClient {
 public:
  /// `budget` may be nullptr (bounded by max_retries alone) and is not
  /// owned; share one instance across every client in the process.
  RetryingClient(ClientOptions options, RetryPolicy policy,
                 RetryBudget* budget = nullptr);

  /// compile() with retries. The error branch is always typed: the last
  /// server/transport diagnostic, or kUnavailable when the retry budget
  /// ran dry first.
  [[nodiscard]] Result<std::string> compile(const CompileRequest& request);

 private:
  [[nodiscard]] Result<std::string> attempt_once(
      const CompileRequest& request);

  ClientOptions options_;
  RetryPolicy policy_;
  RetryBudget* budget_;
  std::optional<Client> conn_;
};

}  // namespace sdf::svc
