#include "service/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/counters.h"
#include "sdf/diagnostics.h"

namespace sdf::svc {
namespace {

// splitmix64, same construction as util/fault.cpp: the jitter only needs
// a deterministic well-mixed draw.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIo:          // broken connection, torn reply
    case ErrorCode::kOverloaded:  // admission backpressure — retry later
    case ErrorCode::kUnavailable: // fleet outage — retry once it heals
      return true;
    default:
      // Deterministic rejections (kParse, kBadArgument, kUnknownTenant,
      // kInconsistent, ...) return the same answer every time; retrying
      // them is pure amplification.
      return false;
  }
}

std::int64_t retry_backoff_ms(const RetryPolicy& policy,
                              int retry_index) noexcept {
  const std::int64_t base = std::max<std::int64_t>(policy.base_backoff_ms, 0);
  const std::int64_t cap = std::max<std::int64_t>(policy.max_backoff_ms, base);
  if (base == 0) return 0;
  // min(cap, base * 2^k) without overflow: stop doubling at the cap.
  std::int64_t d = base;
  for (int k = 0; k < retry_index && d < cap; ++k) d *= 2;
  d = std::min(d, cap);
  // Jitter in [d/2, d], keyed by (seed, retry_index) only — two runs
  // with the same seed sleep identically.
  const std::uint64_t draw =
      mix(policy.seed ^ mix(static_cast<std::uint64_t>(retry_index) + 1));
  const std::int64_t half = d / 2;
  const std::int64_t span = d - half + 1;
  return half + static_cast<std::int64_t>(
                    draw % static_cast<std::uint64_t>(span));
}

RetryBudget::RetryBudget(std::int64_t max_retries)
    : capacity_(std::max<std::int64_t>(max_retries, 0) * kTokenScale),
      tokens_(capacity_) {}

bool RetryBudget::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < kTokenScale) {
    ++exhausted_;
    obs::count("service.retry.budget_exhausted");
    return false;
  }
  tokens_ -= kTokenScale;
  ++granted_;
  return true;
}

void RetryBudget::on_success() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(capacity_, tokens_ + 1);
}

std::int64_t RetryBudget::retries_granted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return granted_;
}

std::int64_t RetryBudget::exhausted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhausted_;
}

RetryingClient::RetryingClient(ClientOptions options, RetryPolicy policy,
                               RetryBudget* budget)
    : options_(std::move(options)), policy_(policy), budget_(budget) {}

Result<std::string> RetryingClient::attempt_once(
    const CompileRequest& request) {
  obs::count("service.retry.attempts");
  try {
    if (!conn_.has_value()) conn_.emplace(options_);
    return conn_->compile(request);
  } catch (const std::exception& e) {
    // Transport failures (connect refused, torn reply) poison the
    // connection; the next attempt reconnects from scratch.
    conn_.reset();
    return diagnostic_from_exception(e);
  }
}

Result<std::string> RetryingClient::compile(const CompileRequest& request) {
  Result<std::string> outcome = attempt_once(request);
  for (int retry = 0; retry < policy_.max_retries; ++retry) {
    if (outcome.ok()) break;
    if (!retryable(outcome.error().code)) break;
    if (budget_ != nullptr && !budget_->try_acquire()) {
      // Budget dry: stop amplifying the outage. Typed, never a spin.
      Diagnostic diag;
      diag.code = ErrorCode::kUnavailable;
      diag.message =
          "retry budget exhausted after typed failure [" +
          std::string(error_code_name(outcome.error().code)) + "]: " +
          outcome.error().message +
          " (docs/RELIABILITY.md \"Retry policy\")";
      return diag;
    }
    const std::int64_t sleep_ms = retry_backoff_ms(policy_, retry);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    obs::count("service.retry.retries");
    outcome = attempt_once(request);
  }
  if (outcome.ok()) {
    obs::count("service.retry.successes");
    if (budget_ != nullptr) budget_->on_success();
  } else {
    obs::count("service.retry.giveups");
  }
  return outcome;
}

}  // namespace sdf::svc
