#include "service/qos.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/json_report.h"
#include "util/flags.h"

namespace sdf::svc::qos {
namespace {

constexpr std::int64_t kNsPerMs = 1'000'000;

/// cost-ms -> cost-ns, saturating instead of overflowing for absurd
/// deadlines (a saturated cost just behaves as "larger than any burst").
std::int64_t cost_to_ns(std::int64_t cost_ms) noexcept {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (cost_ms >= kMax / kNsPerMs) return kMax;
  return cost_ms * kNsPerMs;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Diagnostic bad_config(std::string message) {
  Diagnostic diag;
  diag.code = ErrorCode::kBadArgument;
  diag.message = std::move(message);
  return diag;
}

}  // namespace

// ---------------------------------------------------------------------------
// TokenBucket

TokenBucket::TokenBucket(std::int64_t rate_ms_per_sec,
                         std::int64_t burst_ms) {
  if (rate_ms_per_sec <= 0) return;  // unlimited
  rate_ = rate_ms_per_sec;  // R cost-ms/s accrues exactly R cost-ns/us
  if (burst_ms <= 0) burst_ms = rate_ms_per_sec;  // one second of refill
  burst_ns_ = cost_to_ns(burst_ms);
  available_ns_ = burst_ns_;  // a fresh tenant starts with a full burst
}

void TokenBucket::refill(std::int64_t now_us) noexcept {
  if (unlimited()) return;
  if (!primed_) {
    primed_ = true;
    last_us_ = now_us;
    return;
  }
  if (now_us <= last_us_) return;  // stale or repeated timestamp
  const std::int64_t elapsed_us = now_us - last_us_;
  last_us_ = now_us;
  const std::int64_t headroom_ns = burst_ns_ - available_ns_;
  // Clamp before multiplying so a long idle gap cannot overflow.
  if (elapsed_us > headroom_ns / rate_) {
    available_ns_ = burst_ns_;
  } else {
    available_ns_ += elapsed_us * rate_;
  }
}

bool TokenBucket::affordable(std::int64_t cost_ms) const noexcept {
  if (unlimited()) return true;
  const std::int64_t threshold =
      std::min(cost_to_ns(cost_ms), burst_ns_);
  return available_ns_ >= threshold;
}

void TokenBucket::spend(std::int64_t cost_ms) noexcept {
  if (unlimited()) return;
  available_ns_ -= std::min(cost_to_ns(cost_ms), available_ns_);
}

std::int64_t TokenBucket::ready_in_us(std::int64_t cost_ms) const noexcept {
  if (affordable(cost_ms)) return 0;
  const std::int64_t threshold =
      std::min(cost_to_ns(cost_ms), burst_ns_);
  const std::int64_t deficit_ns = threshold - available_ns_;
  return (deficit_ns + rate_ - 1) / rate_;  // exact ceiling
}

std::int64_t TokenBucket::available_ms() const noexcept {
  return available_ns_ / kNsPerMs;
}

// ---------------------------------------------------------------------------
// TenantRegistry

TenantRegistry::TenantRegistry() {
  tenants_.emplace(std::string(kPublicTenant), TenantSettings{});
}

void TenantRegistry::add(const std::string& name, TenantSettings settings) {
  tenants_[name] = settings;
}

const TenantSettings* TenantRegistry::find(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : &it->second;
}

double TenantRegistry::total_weight() const noexcept {
  double total = 0;
  for (const auto& [name, settings] : tenants_) total += settings.weight;
  return total;
}

Result<TenantRegistry> TenantRegistry::parse(std::string_view config_json) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(config_json);
  } catch (const std::exception& e) {
    return bad_config(std::string("tenants config: ") + e.what());
  }
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "sdfmem.tenants.v1") {
    return bad_config(
        "tenants config: missing or unknown schema "
        "(expected \"sdfmem.tenants.v1\")");
  }
  const obs::Json* tenants = doc.find("tenants");
  if (tenants == nullptr || tenants->type() != obs::Json::Type::kObject) {
    return bad_config("tenants config: missing \"tenants\" object");
  }
  TenantRegistry registry;
  for (const auto& [name, spec] : tenants->members()) {
    if (!util::valid_tenant_name(name)) {
      return bad_config("tenants config: invalid tenant name '" + name +
                        "' (want 1-64 chars of [a-z0-9_-])");
    }
    if (spec.type() != obs::Json::Type::kObject) {
      return bad_config("tenants config: tenant '" + name +
                        "' must be an object");
    }
    TenantSettings settings;
    for (const auto& [key, value] : spec.members()) {
      if (key == "weight") {
        if (value.type() != obs::Json::Type::kInt &&
            value.type() != obs::Json::Type::kDouble) {
          return bad_config("tenants config: tenant '" + name +
                            "': weight must be a number");
        }
        settings.weight = value.as_double();
        if (!(settings.weight > 0) || settings.weight > 1e6) {
          return bad_config("tenants config: tenant '" + name +
                            "': weight must be in (0, 1e6]");
        }
      } else if (key == "rate_ms_per_sec" || key == "burst_ms" ||
                 key == "cache_quota_bytes") {
        if (value.type() != obs::Json::Type::kInt || value.as_int() < 0) {
          return bad_config("tenants config: tenant '" + name + "': " +
                            key + " must be a non-negative integer");
        }
        if (key == "rate_ms_per_sec") {
          settings.rate_ms_per_sec = value.as_int();
        } else if (key == "burst_ms") {
          settings.burst_ms = value.as_int();
        } else {
          settings.cache_quota_bytes = value.as_int();
        }
      } else {
        return bad_config("tenants config: tenant '" + name +
                          "': unknown key '" + key + "'");
      }
    }
    registry.add(name, settings);
  }
  return registry;
}

// ---------------------------------------------------------------------------
// WeightedFairQueue

void WeightedFairQueue::add_tenant(const std::string& name, double weight,
                                   TokenBucket bucket) {
  Tenant t;
  t.weight = weight > 0 ? weight : 1.0;
  t.bucket = bucket;
  tenants_[name] = std::move(t);
}

std::uint64_t WeightedFairQueue::push(const std::string& tenant,
                                      std::int64_t cost_ms) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    throw UnknownTenantError("weighted-fair queue: push for unregistered "
                             "tenant '" + tenant + "'");
  }
  Tenant& t = it->second;
  Pending p;
  p.seq = next_seq_++;
  p.cost_ms = cost_ms;
  p.vstart = std::max(vtime_, t.last_vfinish);
  p.vfinish = p.vstart + static_cast<double>(cost_ms) / t.weight;
  t.last_vfinish = p.vfinish;
  t.queue.push_back(p);
  t.queued_ms += cost_ms;
  ++size_;
  return p.seq;
}

std::optional<QueueItem> WeightedFairQueue::pop(std::int64_t now_us,
                                                bool ignore_throttle) {
  Tenant* best = nullptr;
  const std::string* best_name = nullptr;
  for (auto& [name, t] : tenants_) {
    if (t.queue.empty()) continue;
    t.bucket.refill(now_us);
    if (!ignore_throttle && !t.bucket.affordable(t.queue.front().cost_ms)) {
      continue;
    }
    // Strict < keeps ties on the lexicographically first tenant (map
    // iteration order), so replays are byte-for-byte deterministic.
    if (best == nullptr ||
        t.queue.front().vfinish < best->queue.front().vfinish) {
      best = &t;
      best_name = &name;
    }
  }
  if (best == nullptr) return std::nullopt;
  const Pending head = best->queue.front();
  best->queue.pop_front();
  best->queued_ms -= head.cost_ms;
  best->bucket.spend(head.cost_ms);
  --size_;
  // SFQ: the virtual clock follows the start tag of the item in service,
  // so an idle tenant re-enters near the current virtual time instead of
  // being credited for its absence.
  vtime_ = std::max(vtime_, head.vstart);
  QueueItem item;
  item.seq = head.seq;
  item.tenant = *best_name;
  item.cost_ms = head.cost_ms;
  return item;
}

std::optional<std::int64_t> WeightedFairQueue::next_ready_us(
    std::int64_t now_us) const {
  std::optional<std::int64_t> earliest;
  for (const auto& [name, t] : tenants_) {
    if (t.queue.empty() || t.bucket.unlimited()) continue;
    TokenBucket probe = t.bucket;  // const probe: refill a copy
    probe.refill(now_us);
    const std::int64_t wait = probe.ready_in_us(t.queue.front().cost_ms);
    if (wait <= 0) continue;
    const std::int64_t ready = now_us + wait;
    if (!earliest || ready < *earliest) earliest = ready;
  }
  return earliest;
}

std::int64_t WeightedFairQueue::queued_ms(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queued_ms;
}

std::int64_t WeightedFairQueue::depth(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.queue.size());
}

// ---------------------------------------------------------------------------
// AdmissionController

AdmissionController::AdmissionController(TenantRegistry registry,
                                         Options options)
    : registry_(std::move(registry)), options_(options) {
  if (options_.slots < 1) options_.slots = 1;
  if (options_.capacity_ms < 0) options_.capacity_ms = 0;
  for (const auto& [name, settings] : registry_.tenants()) {
    queue_.add_tenant(
        name, settings.weight,
        TokenBucket(settings.rate_ms_per_sec, settings.burst_ms));
  }
}

std::int64_t AdmissionController::share_ms_locked(
    const std::string& tenant) const {
  const TenantSettings* settings = registry_.find(tenant);
  if (settings == nullptr) return 0;
  const double total = registry_.total_weight();
  if (total <= 0) return 0;
  std::int64_t share = static_cast<std::int64_t>(
      static_cast<double>(options_.capacity_ms) * settings->weight / total);
  const auto it = boost_x1000_.find(tenant);
  if (it != boost_x1000_.end()) share = share * it->second / 1000;
  return share;
}

std::int64_t AdmissionController::share_ms(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return share_ms_locked(tenant);
}

void AdmissionController::set_trip_points(std::int64_t capped_x1000,
                                          std::int64_t degraded_x1000) {
  std::lock_guard<std::mutex> lock(mu_);
  capped_x1000_ = std::clamp<std::int64_t>(capped_x1000, 100, 1000);
  degraded_x1000_ = std::clamp<std::int64_t>(degraded_x1000, 100, 1000);
  if (degraded_x1000_ < capped_x1000_) degraded_x1000_ = capped_x1000_;
}

void AdmissionController::set_share_boost(const std::string& tenant,
                                          std::int64_t boost_x1000) {
  std::lock_guard<std::mutex> lock(mu_);
  boost_x1000 = std::clamp<std::int64_t>(boost_x1000, 1000, 4000);
  if (boost_x1000 == 1000) {
    boost_x1000_.erase(tenant);
  } else {
    boost_x1000_[tenant] = boost_x1000;
  }
}

std::int64_t AdmissionController::capped_x1000() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capped_x1000_;
}

std::int64_t AdmissionController::degraded_x1000() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_x1000_;
}

std::int64_t AdmissionController::share_boost_x1000(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = boost_x1000_.find(tenant);
  return it == boost_x1000_.end() ? 1000 : it->second;
}

void AdmissionController::dispatch_locked(std::int64_t now_us) {
  bool granted_any = false;
  while (running_ < options_.slots) {
    std::optional<QueueItem> item = queue_.pop(now_us, draining_);
    if (!item) break;
    granted_[item->seq] = true;
    ++running_;
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

AdmissionController::Ticket AdmissionController::acquire(
    const std::string& tenant, std::int64_t cost_ms) {
  const std::int64_t t0_us = steady_now_us();
  Ticket ticket;
  ticket.tenant = tenant;
  ticket.cost_ms = cost_ms;

  std::unique_lock<std::mutex> lock(mu_);
  const TenantSettings* settings = registry_.find(tenant);
  if (settings == nullptr) {
    ticket.status = Ticket::Status::kUnknownTenant;
    return ticket;
  }
  ticket.share_ms = share_ms_locked(tenant);
  std::int64_t& backlog = backlog_ms_[tenant];
  if (backlog + cost_ms > ticket.share_ms) {
    ticket.status = Ticket::Status::kOverloaded;
    return ticket;
  }
  const std::int64_t after = backlog + cost_ms;
  // Per-tenant pressure drives the same degradation ladder the global
  // queue used to, at trip points the adaptive controller can move
  // (docs/CONTROL.md). The defaults 500/750 are exactly the historical
  // `after*2 >= share` / `after*4 >= share*3` integer comparisons. One
  // tenant's pressure never taints another's tier.
  if (ticket.share_ms > 0) {
    if (after * 1000 >= ticket.share_ms * degraded_x1000_) {
      ticket.tier = PressureTier::kDegraded;
    } else if (after * 1000 >= ticket.share_ms * capped_x1000_) {
      ticket.tier = PressureTier::kCapped;
    }
  }
  backlog += cost_ms;

  const std::uint64_t seq = queue_.push(tenant, cost_ms);
  dispatch_locked(steady_now_us());
  for (;;) {
    const auto it = granted_.find(seq);
    if (it != granted_.end()) {
      granted_.erase(it);
      break;
    }
    // Only a throttle can stall the queue while slots are free; sleep
    // until the earliest bucket refill, else until a release/drain.
    std::optional<std::int64_t> ready_us;
    if (!draining_ && running_ < options_.slots) {
      ready_us = queue_.next_ready_us(steady_now_us());
    }
    if (ready_us) {
      cv_.wait_until(
          lock, std::chrono::steady_clock::time_point(
                    std::chrono::microseconds(*ready_us)));
    } else {
      cv_.wait(lock);
    }
    dispatch_locked(steady_now_us());
  }
  ticket.status = Ticket::Status::kGranted;
  ticket.queue_wait_us = steady_now_us() - t0_us;
  return ticket;
}

void AdmissionController::release(const Ticket& ticket) {
  if (ticket.status != Ticket::Status::kGranted) return;
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  backlog_ms_[ticket.tenant] -= ticket.cost_ms;
  dispatch_locked(steady_now_us());
  cv_.notify_all();
}

void AdmissionController::drain() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  dispatch_locked(steady_now_us());
  cv_.notify_all();
}

std::int64_t AdmissionController::total_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(queue_.size()) + running_;
}

std::int64_t AdmissionController::backlog_ms(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = backlog_ms_.find(tenant);
  return it == backlog_ms_.end() ? 0 : it->second;
}

}  // namespace sdf::svc::qos
