// Blocking client for the sdfmemd wire protocol (docs/SERVICE.md).
//
// One Client owns one connection; requests on it are strictly
// request/response (the protocol has no pipelining). The CLI `client`
// mode and the bench load generator both sit on top of this class.
#pragma once

#include <string>
#include <string_view>

#include "service/protocol.h"
#include "util/status.h"

namespace sdf::svc {

struct ClientOptions {
  /// Unix-domain socket path to connect to; empty means use TCP.
  std::string socket_path;
  /// Loopback TCP port; used when socket_path is empty.
  int tcp_port = 0;
};

class Client {
 public:
  /// Connects immediately; throws IoError when the daemon is not
  /// reachable and BadArgumentError when no endpoint is configured.
  explicit Client(const ClientOptions& options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one frame and blocks for the next frame from the server.
  /// Throws IoError on a broken connection or a malformed reply frame.
  [[nodiscard]] Frame roundtrip(FrameKind kind, std::string_view payload);

  /// Sends a compile request. ok() carries the exact response payload
  /// bytes (the telemetry JSON document); the error branch carries the
  /// server's typed Diagnostic, reconstructed from the error response
  /// (so exit_code_for() maps it exactly like a local failure).
  [[nodiscard]] Result<std::string> compile(const CompileRequest& request);

  /// Round-trips a ping; true when the pong echoed the token.
  [[nodiscard]] bool ping(std::string_view token = "sdfmem");

  /// The server's live stats document (sdfmem.stats.v1).
  [[nodiscard]] std::string stats();

 private:
  int fd_ = -1;
};

/// Parses the payload of a kErrorResponse frame back into the Diagnostic
/// the server sent ({"error": {code, message, ...}}). Unparseable
/// payloads become a kInternal diagnostic quoting the raw bytes.
[[nodiscard]] Diagnostic parse_error_response(std::string_view payload);

}  // namespace sdf::svc
