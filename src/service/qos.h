// Multi-tenant QoS for sdfmemd (docs/TENANCY.md): the tenant registry,
// the token bucket, the weighted-fair queue, and the threaded admission
// controller that the server composes them into.
//
// Design constraints, in order:
//
//   * Deterministic and unit-testable without sockets or wall clocks.
//     TokenBucket and WeightedFairQueue take explicit `now_us`
//     timestamps; only AdmissionController reads the real clock, and it
//     is nothing but a mutex/condvar wrapper around the two.
//   * Integer arithmetic in the hot path. Bucket state is kept in
//     "cost-nanoseconds" (1 cost-ms = 1'000'000 cost-ns), which makes
//     the refill exact: a rate of R cost-ms per wall-second accrues
//     exactly R cost-ns per wall-microsecond. No floating-point drift,
//     no unit fudging (the lizardfs SpeedLimitQueue discipline).
//   * Start-time fair queuing for the scheduler. Each queued compile
//     gets a virtual finish time `max(V, tenant.last_finish) +
//     cost/weight`; the next compile is the affordable head with the
//     lowest virtual finish, ties broken by tenant name so replaying
//     the same pushes always yields the same pops. A backlogged hog
//     inflates only its own virtual clock — a light tenant's next
//     request lands near the global virtual time and is served within a
//     bounded number of pops (the classic SFQ fairness bound).
//
// The server maps the controller's verdicts onto the existing surfaces:
// per-tenant backlog shares drive the degradation ladder and the typed
// kOverloaded rejection; an unregistered tenant is a typed
// kUnknownTenant (exit code 25) before any work is queued.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace sdf::svc::qos {

/// The tenant every request without a tenant id (v1 clients) lands in.
/// Always registered; configs may re-tune its weight and limits.
inline constexpr std::string_view kPublicTenant = "public";

/// Per-tenant QoS settings (docs/TENANCY.md). Zero means "unlimited" on
/// every axis, so a default-constructed tenant is unthrottled with an
/// equal share.
struct TenantSettings {
  /// Relative share of the admission capacity and of the scheduler's
  /// bandwidth. Must be > 0.
  double weight = 1.0;
  /// Sustained compile-cost throughput, in cost-ms per wall-second.
  /// 0 = unthrottled.
  std::int64_t rate_ms_per_sec = 0;
  /// Bucket depth, in cost-ms. 0 with a nonzero rate defaults to one
  /// second of refill (rate_ms_per_sec).
  std::int64_t burst_ms = 0;
  /// Ceiling on result-cache bytes this tenant may insert per daemon
  /// run; reads are never quota-gated (the cache is content-addressed
  /// and shared). 0 = unlimited.
  std::int64_t cache_quota_bytes = 0;
};

/// Token bucket over explicit timestamps. State lives in cost-ns; the
/// bucket starts full (a fresh tenant gets its burst immediately).
class TokenBucket {
 public:
  TokenBucket() = default;  ///< unlimited (rate 0)
  TokenBucket(std::int64_t rate_ms_per_sec, std::int64_t burst_ms);

  [[nodiscard]] bool unlimited() const noexcept { return rate_ <= 0; }

  /// Advances the bucket to `now_us`, accruing capacity (clamped at the
  /// burst). Timestamps must be monotone; a stale `now_us` is ignored.
  void refill(std::int64_t now_us) noexcept;

  /// Whether `cost_ms` is payable right now. A cost larger than the
  /// burst is payable at a full bucket — oversized requests wait at
  /// most one full refill, they are not starved forever (the lizardfs
  /// oversized-front rule).
  [[nodiscard]] bool affordable(std::int64_t cost_ms) const noexcept;

  /// Pays `cost_ms`, clamping the balance at zero (an oversized cost
  /// simply empties the bucket).
  void spend(std::int64_t cost_ms) noexcept;

  /// Microseconds until `cost_ms` becomes affordable; 0 when it already
  /// is. Exact ceiling division — the returned delay is the earliest
  /// instant at which affordable() flips.
  [[nodiscard]] std::int64_t ready_in_us(std::int64_t cost_ms) const noexcept;

  /// Current balance in whole cost-ms (floor); for stats only.
  [[nodiscard]] std::int64_t available_ms() const noexcept;

 private:
  std::int64_t rate_ = 0;          ///< cost-ns accrued per wall-us
  std::int64_t burst_ns_ = 0;      ///< balance ceiling, cost-ns
  std::int64_t available_ns_ = 0;  ///< current balance, cost-ns
  std::int64_t last_us_ = 0;
  bool primed_ = false;  ///< first refill() pins last_us_
};

/// The set of tenants the daemon serves, parsed from the
/// `sdfmem.tenants.v1` JSON config (docs/TENANCY.md). `public` is
/// always present. Lookup of an unknown name returns nullptr — the
/// server turns that into a typed kUnknownTenant rejection.
class TenantRegistry {
 public:
  /// Just `public` with default settings.
  TenantRegistry();

  /// Parses a config document:
  ///   {"schema": "sdfmem.tenants.v1",
  ///    "tenants": {"interactive": {"weight": 8},
  ///                "batch": {"weight": 1, "rate_ms_per_sec": 500,
  ///                          "burst_ms": 2000,
  ///                          "cache_quota_bytes": 1048576}}}
  /// Strict: unknown keys, invalid tenant names (util::valid_tenant_name)
  /// and non-positive weights are kBadArgument diagnostics.
  [[nodiscard]] static Result<TenantRegistry> parse(
      std::string_view config_json);

  void add(const std::string& name, TenantSettings settings);

  /// nullptr when `name` is not registered.
  [[nodiscard]] const TenantSettings* find(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, TenantSettings>& tenants()
      const noexcept {
    return tenants_;
  }

  [[nodiscard]] double total_weight() const noexcept;

 private:
  std::map<std::string, TenantSettings> tenants_;
};

/// One granted or queued compile, identified by a push sequence number.
struct QueueItem {
  std::uint64_t seq = 0;
  std::string tenant;
  std::int64_t cost_ms = 0;
};

/// Start-time fair queue over per-tenant FIFOs, throttled per tenant by
/// a token bucket. Single-threaded; AdmissionController adds the locks.
class WeightedFairQueue {
 public:
  /// Registers a tenant before any push for it. Weight must be > 0.
  void add_tenant(const std::string& name, double weight,
                  TokenBucket bucket);

  /// Enqueues a compile of `cost_ms` for a registered tenant; returns
  /// its sequence number. Items of one tenant stay FIFO. Throws
  /// UnknownTenantError for an unregistered tenant (callers validate
  /// against the registry first; this is the typed backstop).
  std::uint64_t push(const std::string& tenant, std::int64_t cost_ms);

  /// Pops the affordable head with the lowest virtual finish time at
  /// `now_us`, paying its cost from the tenant's bucket. nullopt when
  /// the queue is empty or every nonempty tenant is throttled.
  /// `ignore_throttle` (drain mode) pops in fair order regardless of
  /// bucket balances, so a shutdown never hangs on a rate limit.
  [[nodiscard]] std::optional<QueueItem> pop(std::int64_t now_us,
                                             bool ignore_throttle = false);

  /// The earliest `now_us` at which some currently-throttled head
  /// becomes affordable; nullopt when nothing is throttle-blocked.
  [[nodiscard]] std::optional<std::int64_t> next_ready_us(
      std::int64_t now_us) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::int64_t queued_ms(const std::string& tenant) const;
  [[nodiscard]] std::int64_t depth(const std::string& tenant) const;

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::int64_t cost_ms = 0;
    double vstart = 0;
    double vfinish = 0;
  };
  struct Tenant {
    double weight = 1.0;
    TokenBucket bucket;
    std::deque<Pending> queue;
    double last_vfinish = 0;
    std::int64_t queued_ms = 0;
  };

  double vtime_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t size_ = 0;
  /// std::map iteration is lexicographic by tenant name — that order IS
  /// the deterministic tie-break.
  std::map<std::string, Tenant> tenants_;
};

/// Thread-safe admission layer: per-tenant backlog shares, the
/// weighted-fair queue, and a slot limit equal to the compile worker
/// count. acquire() blocks until the scheduler grants the caller a slot
/// (or rejects immediately); release() frees the slot and dispatches
/// the next grant.
class AdmissionController {
 public:
  struct Options {
    /// Concurrent compile slots (>= 1); normally the pool worker count.
    int slots = 1;
    /// Total backlog capacity in cost-ms, split between tenants by
    /// weight. 0 sheds every request.
    std::int64_t capacity_ms = 0;
  };

  /// How close a tenant is to its share; the server maps tiers onto the
  /// compile degradation ladder. The trip points default to the
  /// historical 1/2 and 3/4 of the share and are movable at runtime by
  /// the adaptive controller (set_trip_points, docs/CONTROL.md).
  enum class PressureTier {
    kNormal,    ///< below the capped trip point of the tenant share
    kCapped,    ///< >= capped point: cap the loop optimizer at kDppo
    kDegraded,  ///< >= degraded point: force kFlat + topological order
  };

  struct Ticket {
    enum class Status { kGranted, kOverloaded, kUnknownTenant };
    Status status = Status::kGranted;
    std::string tenant;
    std::int64_t cost_ms = 0;
    std::int64_t share_ms = 0;       ///< the tenant's backlog share
    std::int64_t queue_wait_us = 0;  ///< time spent queued before grant
    PressureTier tier = PressureTier::kNormal;
  };

  AdmissionController(TenantRegistry registry, Options options);

  /// Blocks until this request is scheduled. Rejections (unknown tenant,
  /// per-tenant backlog over share) return immediately.
  [[nodiscard]] Ticket acquire(const std::string& tenant,
                               std::int64_t cost_ms);

  /// Frees the slot held by a granted ticket (no-op otherwise).
  void release(const Ticket& ticket);

  /// Drain mode: stop enforcing rate limits so queued work finishes in
  /// fair order and blocked acquirers wake. Irreversible; idempotent.
  void drain() noexcept;

  /// Moves the degradation-ladder trip points, as exact milli-fractions
  /// of a tenant's share (docs/CONTROL.md). The historical constants are
  /// capped=500 (1/2) and degraded=750 (3/4); integer comparison keeps
  /// 500/750 bit-identical to the old `after*2 >= share` / `after*4 >=
  /// share*3` tests. Values are clamped into [100, 1000] and reordered
  /// so capped <= degraded — the controller's own clamps are tighter;
  /// these are the hard floor under ANY caller.
  void set_trip_points(std::int64_t capped_x1000,
                       std::int64_t degraded_x1000);
  /// Per-tenant share multiplier (x1000), clamped into [1000, 4000];
  /// 1000 restores the pure weighted share. Boosts only ever relax a
  /// tenant's backlog cap — the slot count and the scheduler's weighted
  /// fairness still bound global work.
  void set_share_boost(const std::string& tenant, std::int64_t boost_x1000);
  [[nodiscard]] std::int64_t capped_x1000() const;
  [[nodiscard]] std::int64_t degraded_x1000() const;
  [[nodiscard]] std::int64_t share_boost_x1000(
      const std::string& tenant) const;

  [[nodiscard]] const TenantRegistry& registry() const noexcept {
    return registry_;
  }
  /// `capacity_ms * weight / total_weight` for a registered tenant,
  /// times its share boost.
  [[nodiscard]] std::int64_t share_ms(const std::string& tenant) const;
  /// Queued + running compiles (the service.queue_depth gauge).
  [[nodiscard]] std::int64_t total_depth() const;
  /// Queued + running cost for one tenant, in cost-ms.
  [[nodiscard]] std::int64_t backlog_ms(const std::string& tenant) const;

 private:
  void dispatch_locked(std::int64_t now_us);
  [[nodiscard]] std::int64_t share_ms_locked(const std::string& tenant) const;

  TenantRegistry registry_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  WeightedFairQueue queue_;
  std::map<std::string, std::int64_t> backlog_ms_;  ///< queued + running
  std::map<std::uint64_t, bool> granted_;  ///< seq -> picked by scheduler
  std::int64_t running_ = 0;
  bool draining_ = false;
  /// Adaptive-control knobs (guarded by mu_, see set_trip_points).
  std::int64_t capped_x1000_ = 500;
  std::int64_t degraded_x1000_ = 750;
  std::map<std::string, std::int64_t> boost_x1000_;
};

}  // namespace sdf::svc::qos
