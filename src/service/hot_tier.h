// In-memory LRU hot tier over the on-disk result cache (docs/SERVICE.md,
// "Cache tiers").
//
// The cache-tier half of the service layer split: the hot tier serves
// repeat hits without touching the filesystem, the disk tier
// (service/cache.h) stays the durable source of truth. Bytes enter the
// hot tier only from verified sources — a disk lookup that already
// passed its size+CRC check, or a response the server just produced —
// so a hot-tier read is byte-identical to the disk-tier read for the
// same key (pinned by tests/test_hot_tier.cpp). Eviction is strict LRU
// by total payload bytes; an entry larger than the whole capacity is
// never admitted. A capacity of 0 disables the tier (every lookup
// misses, inserts drop).
//
// Counters (docs/OBSERVABILITY.md): service.cache.hot_hits / hot_misses /
// hot_inserts / hot_evictions, gauge service.cache.hot_bytes.
//
// Thread safety: all methods are safe from concurrent request handlers.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sdf::svc {

struct HotTierStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
  std::int64_t bytes = 0;    ///< live payload bytes
  std::int64_t entries = 0;  ///< live entry count
};

class HotTier {
 public:
  /// `capacity_bytes` bounds the sum of cached payload sizes; 0 disables.
  explicit HotTier(std::int64_t capacity_bytes);

  HotTier(const HotTier&) = delete;
  HotTier& operator=(const HotTier&) = delete;

  /// The cached payload, refreshed to most-recently-used; nullopt on miss.
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key);

  /// Caches `payload` under `key`, evicting LRU entries to fit. A key
  /// already present is refreshed, not rewritten (the cache is
  /// content-addressed: same key = same bytes). Oversized payloads are
  /// dropped.
  void insert(std::uint64_t key, std::string_view payload);

  /// Drops `key` if resident (the cache scrubber quarantined its disk
  /// object, so the hot copy must not outlive it). Returns true when an
  /// entry was removed; counted in service.cache.hot_evictions.
  bool erase(std::uint64_t key);

  [[nodiscard]] std::int64_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] HotTierStats stats() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::string payload;
  };

  void evict_to_fit_locked(std::int64_t incoming);

  std::int64_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  HotTierStats stats_;
};

}  // namespace sdf::svc
