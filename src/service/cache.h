// Persistent content-addressed result cache for the compile service
// (docs/SERVICE.md, "Result cache").
//
// Layout under the cache directory:
//
//   <dir>/index.journal          crash-consistent index (util/journal.h);
//                                header {"schema": "sdfmem.cache.v1"},
//                                then one record per insert:
//                                {"key": "<16-hex>", "crc": u32,
//                                 "bytes": N}
//   <dir>/objects/<16-hex>.json  the exact response payload bytes,
//                                published with an atomic rename
//                                (util::atomic_write_file)
//
// Durability: an insert writes the object file atomically first, then
// appends the index record (single write + fsync). A SIGKILL between the
// two leaves an orphan object that the index never mentions — wasted
// bytes, never a wrong answer. A torn index tail is truncated on open by
// the journal recovery, exactly like the batch journal.
//
// Integrity: every lookup re-reads the object file and verifies its size
// and CRC32 against the index record. A flipped byte (or a truncated
// object from a dying filesystem) turns the lookup into a miss and drops
// the entry — the caller recompiles and re-inserts; corrupt bytes are
// never served. Duplicate index records for one key are legal (a
// re-insert after corruption); the last record wins on replay.
//
// Single-writer contract: the index journal assumes exactly one process
// appends to it. Opening the cache takes an exclusive flock on
// `<dir>/lock`; a second process (e.g. two fleet workers misconfigured
// to share one --cache dir) gets a typed IoError immediately instead of
// silently interleaving index records. The lock is advisory, held for
// the cache's lifetime, and released automatically on any process exit —
// including SIGKILL — so a crashed daemon never wedges the directory.
//
// Thread safety: all methods are safe from concurrent request handlers;
// the disk I/O of lookup()/insert() runs outside the map lock.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/journal.h"

namespace sdf::svc {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t corrupt = 0;   ///< entries dropped on a failed verify
  std::int64_t entries = 0;   ///< live index size
  std::int64_t scrub_passes = 0;       ///< completed scrub walks
  std::int64_t scrub_checked = 0;      ///< objects CRC-verified by scrubs
  std::int64_t scrub_quarantined = 0;  ///< corrupt objects quarantined
};

class ResultCache {
 public:
  /// Opens (or creates) the cache under `dir`, replaying the index
  /// journal and truncating any torn tail. Throws IoError when the
  /// directory cannot be created/read or when another process already
  /// holds the cache (see the single-writer contract above), and
  /// CorruptJournalError when the index exists but is not a cache index
  /// at all.
  explicit ResultCache(const std::string& dir);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached payload for `key`, verified against the index record's
  /// size and CRC32. A missing, short, or corrupt object is a miss (the
  /// entry is dropped and counted in CacheStats::corrupt).
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key);

  /// Stores `payload` under `key`: atomic object write, then a durable
  /// index append. Idempotent — a key that is already live is left
  /// untouched (first writer wins, so hot responses stay byte-stable).
  void insert(std::uint64_t key, std::string_view payload);

  /// One scrubber pass (docs/RELIABILITY.md, "Cache scrubber"):
  /// CRC-walks every live index entry, moving each corrupt or unreadable
  /// object into `<dir>/quarantine/` and dropping its index entry, so
  /// bit-rot is repaired before a client pays the miss. Returns the keys
  /// quarantined in this pass — the caller must evict them from any hot
  /// tier fronting this store. Safe to call concurrently with
  /// lookup()/insert(); a key mid-insert is skipped.
  [[nodiscard]] std::vector<std::uint64_t> scrub_once();

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    std::uint32_t crc = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::string object_path(std::uint64_t key) const;

  std::string dir_;
  int lock_fd_ = -1;  ///< exclusive flock on <dir>/lock
  std::optional<util::JournalWriter> writer_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  std::set<std::uint64_t> inflight_;  ///< keys mid-insert (tmp file owned)
  CacheStats stats_;
};

}  // namespace sdf::svc
