// Consistent-hash ring over worker ids (docs/SERVICE.md, "Fleet mode").
//
// The routing layer of the service split (transport / routing / cache
// tiers). Each worker id is hashed onto the ring at `vnodes` points
// (FNV-1a of "id#k", util/hash.h); a request key is owned by the first
// vnode clockwise from the key. Virtual nodes smooth the distribution —
// with 64 vnodes the per-worker share across 4 workers stays within
// +-25% of ideal (pinned by tests/test_ring.cpp) — and consistent
// hashing keeps remapping minimal: adding or removing one worker moves
// only the keys adjacent to that worker's vnodes (< 1/N of the keyspace),
// never reshuffling keys between two surviving workers. That is what
// keeps the per-worker result caches hot across fleet resizes.
//
// The ring is deterministic: the same ids in any insertion order produce
// the same ownership (the ring is a sorted map keyed by hash). Not
// thread-safe; the router treats it as immutable after construction and
// handles liveness separately (a dead worker stays on the ring so its
// keys come straight back to it on recovery).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sdf::svc {

class HashRing {
 public:
  /// `vnodes` points per worker id; higher = smoother balance, larger
  /// ring. 64 keeps 4-worker imbalance within +-25%.
  explicit HashRing(int vnodes = 64);

  /// Adds a worker id (idempotent). Throws BadArgumentError on empty id.
  void add(const std::string& id);

  /// Removes a worker id (no-op when absent).
  void remove(const std::string& id);

  [[nodiscard]] bool contains(std::string_view id) const;
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] std::vector<std::string> ids() const;

  /// The worker owning `key`: first vnode at or clockwise after the key.
  /// Throws InternalError when the ring is empty.
  [[nodiscard]] const std::string& owner(std::uint64_t key) const;

  /// Up to `count` distinct workers in ring order starting at the owner —
  /// the failover preference order for `key`. Fewer when the ring holds
  /// fewer workers.
  [[nodiscard]] std::vector<std::string> owners(std::uint64_t key,
                                                std::size_t count) const;

 private:
  int vnodes_;
  std::map<std::uint64_t, std::string> points_;  ///< vnode hash -> id
  std::map<std::string, int> ids_;               ///< id -> vnode count
};

}  // namespace sdf::svc
