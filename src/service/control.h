// Adaptive control plane for sdfmemd (docs/CONTROL.md).
//
// Three pieces, in dependency order:
//
//   * CostModel — per-graph-size-bucket integer EWMA of measured compile
//     wall time. The static `--cost-ms` admission estimate is usually
//     wrong by orders of magnitude (it guesses; the model measures), and
//     an over-estimate makes admission shed work the daemon could easily
//     serve. The model is always recorded so `stats` can show the drift;
//     it replaces the static estimate only while the controller is on.
//
//   * Controller — a pure, deterministic, integer-arithmetic feedback
//     controller ticked once per monitoring interval with that
//     interval's delta metrics. It computes a utility score and nudges
//     the degradation-ladder trip points and per-tenant share boosts
//     within hard clamps, with consecutive-signal hysteresis so it never
//     flaps. Same metrics sequence in, same decisions out — on any
//     machine, at any `--jobs`: all knobs and thresholds live in exact
//     milli-units (x1000 integers), never floats.
//
//   * simulate_trace — a virtual-time replay of a recorded trace
//     (service/trace.h) through a faithful model of the admission path
//     (the real qos::WeightedFairQueue, per-tenant shares, trip tiers,
//     the result cache's full-fidelity-only rule, and measured per-tier
//     compile times). It is how controller policies are evaluated:
//     byte-identical decision logs across runs by construction, because
//     nothing in it reads a clock or a thread schedule.
//
// Control law (the exact rules tests pin, see docs/CONTROL.md):
//
//   relief   — shed rate above shed_hi for `hysteresis` consecutive
//              intervals: step both trip points DOWN (degrade earlier;
//              cheaper tiers drain backlog faster, so less is shed).
//   recover  — shed rate below shed_lo AND degraded fraction above
//              degraded_hi for `hysteresis` intervals: step both trip
//              points UP (serve full fidelity again).
//   boost    — a tenant shedding above shed_hi while the rest of the
//              system sheds below shed_lo earns a share boost step;
//              the boost decays a step once the tenant calms down.
//   quiet    — intervals with fewer than min_requests reset every
//              streak; near-idle noise must not steer the knobs.
//
// Every step is clamped (Clamps below); a step that hits its clamp is
// counted but not applied beyond it. Hysteresis restarts after each
// applied step, so the fastest possible knob movement is one step per
// `hysteresis` intervals.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/qos.h"
#include "service/trace.h"

namespace sdf::svc::ctl {

// ---------------------------------------------------------------------------
// Cost model

/// Graphs are bucketed by floor(log2(actors)): 1, 2-3, 4-7, 8-15, 16-31,
/// 32-63, >= 64. Compile cost is superlinear in actor count, so one
/// global EWMA would let a stream of tiny graphs talk admission into
/// under-charging a giant one.
inline constexpr int kCostBuckets = 7;

[[nodiscard]] int cost_bucket(std::int64_t actors) noexcept;

/// Lower bound (inclusive) of actor counts in bucket `b` — for stats.
[[nodiscard]] std::int64_t cost_bucket_floor(int b) noexcept;

struct CostBucket {
  std::int64_t samples = 0;
  std::int64_t ewma_ns = 0;
};

/// Integer EWMA with alpha = 1/8: ewma += (sample - ewma) / 8. The first
/// sample seeds the average exactly. Not thread-safe; the server guards
/// it with its stats mutex.
class CostModel {
 public:
  void record(std::int64_t actors, std::int64_t wall_ns) noexcept;

  /// Admission cost estimate in whole ms (ceil, >= 1) for a graph of
  /// `actors`; falls back to `fallback_ms` while the bucket has no
  /// samples. Clamped to [1, kEstimateCapMs] so a corrupt sample can
  /// never wedge admission shut.
  [[nodiscard]] std::int64_t estimate_ms(std::int64_t actors,
                                         std::int64_t fallback_ms) const
      noexcept;

  [[nodiscard]] const std::array<CostBucket, kCostBuckets>& buckets() const
      noexcept {
    return buckets_;
  }

  static constexpr std::int64_t kEstimateCapMs = 60'000;

 private:
  std::array<CostBucket, kCostBuckets> buckets_{};
};

// ---------------------------------------------------------------------------
// Controller

/// Hard safety clamps, in milli-units. The controller can never push a
/// knob outside these no matter what the metrics say.
struct Clamps {
  std::int64_t capped_min_x1000 = 200;    ///< trip point floor: 0.20
  std::int64_t capped_max_x1000 = 900;    ///< ceiling: 0.90
  std::int64_t degraded_min_x1000 = 300;  ///< 0.30
  std::int64_t degraded_max_x1000 = 950;  ///< 0.95
  std::int64_t boost_min_x1000 = 1000;    ///< boosts only ever relax a share
  std::int64_t boost_max_x1000 = 2000;    ///< at most 2x the weighted share
};

struct ControllerConfig {
  Clamps clamps;
  std::int64_t shed_hi_x1000 = 80;       ///< relief above 8% shed
  std::int64_t shed_lo_x1000 = 20;       ///< healthy below 2% shed
  std::int64_t degraded_hi_x1000 = 250;  ///< recover fidelity above 25%
  int hysteresis = 2;                    ///< consecutive intervals per step
  std::int64_t trip_step_x1000 = 50;     ///< trip points move 0.05 per step
  std::int64_t boost_step_x1000 = 250;   ///< boosts move 0.25 per step
  std::int64_t min_requests = 4;         ///< below this a window is "quiet"
};

/// One monitoring interval's delta metrics (never lifetime totals).
struct IntervalMetrics {
  std::int64_t requests = 0;       ///< compile requests seen (incl. hits)
  std::int64_t overloaded = 0;     ///< typed sheds
  std::int64_t shed_degraded = 0;  ///< served at a load-capped tier
  std::int64_t cache_hits = 0;
  std::int64_t p95_us = 0;  ///< window p95 latency (reporting only)
  /// Per-tenant request/shed deltas; map order is the deterministic
  /// iteration order for boost decisions.
  std::map<std::string, std::int64_t> tenant_requests;
  std::map<std::string, std::int64_t> tenant_overloaded;
};

/// The knobs the controller owns. Trip points are fractions of a
/// tenant's backlog share (x1000); defaults reproduce the historical
/// hard-coded 1/2 and 3/4 ladder exactly.
struct Knobs {
  std::int64_t capped_x1000 = 500;
  std::int64_t degraded_x1000 = 750;
  /// Per-tenant share multipliers (x1000); absent means 1000 (1.0x).
  std::map<std::string, std::int64_t> boost_x1000;
};

struct Decision {
  Knobs knobs;           ///< knob state after this tick
  int adjustments = 0;   ///< knob changes applied this tick
  int clamped = 0;       ///< steps that hit a clamp
  std::string reason;    ///< "relief" | "recover" | "boost" | "hold" | "quiet"
  std::int64_t shed_x1000 = 0;      ///< interval shed rate
  std::int64_t degraded_x1000 = 0;  ///< interval degraded fraction
  std::int64_t utility_x1000 = 0;   ///< interval utility score
};

/// Interval utility, x1000 per request: a full-fidelity response scores
/// 1.0, a degraded one 0.5, a shed request -2.0. The thresholds in the
/// control law are the knobs' approximation of climbing this score; it
/// is emitted every tick so operators and the replay harness can compare
/// controller variants by one number.
[[nodiscard]] std::int64_t utility_x1000(const IntervalMetrics& m) noexcept;

class Controller {
 public:
  explicit Controller(ControllerConfig config = {});

  /// One monitoring interval. Pure: no clocks, no randomness, integer
  /// arithmetic only — identical metric sequences yield identical
  /// decision sequences.
  Decision tick(const IntervalMetrics& metrics);

  [[nodiscard]] const Knobs& knobs() const noexcept { return knobs_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::int64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::int64_t adjustments() const noexcept {
    return adjustments_;
  }
  [[nodiscard]] std::int64_t clamped() const noexcept { return clamped_; }

  /// Canonical one-line rendering of a decision — the unit the
  /// determinism tests and the replay harness compare byte-for-byte.
  [[nodiscard]] static std::string decision_line(std::int64_t tick_index,
                                                 const IntervalMetrics& m,
                                                 const Decision& d);

 private:
  ControllerConfig config_;
  Knobs knobs_;
  int relief_streak_ = 0;
  int recover_streak_ = 0;
  std::map<std::string, int> starve_streak_;
  std::map<std::string, int> calm_streak_;
  std::int64_t ticks_ = 0;
  std::int64_t adjustments_ = 0;
  std::int64_t clamped_ = 0;
};

// ---------------------------------------------------------------------------
// Virtual-time trace simulation

struct SimOptions {
  int slots = 2;                       ///< concurrent compile slots
  int queue_capacity = 16;             ///< capacity = this * default_cost_ms
  std::int64_t default_cost_ms = 1000;
  /// Arrival-time divisor (1x/2x/4x replay compression). Service times
  /// are real compute and are NOT compressed.
  int compression = 1;
  bool controller_on = false;
  std::int64_t control_interval_ms = 250;
  ControllerConfig controller;
  qos::TenantRegistry tenants;
};

struct SimTenantTotals {
  std::int64_t requests = 0;
  std::int64_t cache_hits = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;
  std::int64_t p50_us = 0;  ///< over served responses
  std::int64_t p95_us = 0;
};

struct SimIntervalRow {
  std::int64_t end_ms = 0;  ///< virtual interval end
  std::int64_t requests = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;
  std::int64_t cache_hits = 0;
  std::int64_t p95_us = 0;
};

struct SimResult {
  std::int64_t requests = 0;
  std::int64_t cache_hits = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;
  std::int64_t served_full = 0;
  std::int64_t p50_us = 0;
  std::int64_t p95_us = 0;
  std::map<std::string, SimTenantTotals> tenants;
  std::vector<SimIntervalRow> intervals;
  /// One Controller::decision_line per tick (empty when controller_off);
  /// byte-identical across runs of the same trace + options.
  std::vector<std::string> decisions;
  Knobs final_knobs;
};

/// Deterministically replays `trace` through the admission/QoS model in
/// virtual time. Uses the real WeightedFairQueue for scheduling order,
/// mirrors AdmissionController's share/trip arithmetic (including the
/// controller's knobs as they move), models the full-fidelity-only cache
/// rule, and advances time only via recorded arrival ticks and measured
/// wall-ns — no clocks, threads, or randomness anywhere.
[[nodiscard]] SimResult simulate_trace(const Trace& trace,
                                       const SimOptions& options);

}  // namespace sdf::svc::ctl
