#include "service/trace.h"

#include <algorithm>
#include <utility>

#include "obs/counters.h"
#include "obs/json_report.h"

namespace sdf::svc {
namespace {

std::string header_json() {
  obs::Json doc = obs::Json::object();
  doc["schema"] = std::string(kTraceSchema);
  doc["tool"] = "sdfmemd";
  return doc.dump(0);
}

Diagnostic parse_fail(std::string message) {
  Diagnostic diag;
  diag.code = ErrorCode::kParse;
  diag.message = std::move(message);
  return diag;
}

/// Fetches a required integer field; nullopt (after filling *error) on a
/// missing field or wrong type.
std::optional<std::int64_t> want_int(const obs::Json& doc,
                                     const std::string& key,
                                     std::string* error) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr || v->type() != obs::Json::Type::kInt) {
    *error = "trace record: missing or non-integer field \"" + key + "\"";
    return std::nullopt;
  }
  return v->as_int();
}

std::optional<std::string> want_string(const obs::Json& doc,
                                       const std::string& key,
                                       std::string* error) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr || v->type() != obs::Json::Type::kString) {
    *error = "trace record: missing or non-string field \"" + key + "\"";
    return std::nullopt;
  }
  return v->as_string();
}

}  // namespace

std::string encode_trace_record(const TraceRecord& record) {
  obs::Json doc = obs::Json::object();
  doc["tick_us"] = record.tick_us;
  doc["lane"] = record.lane;
  doc["tenant"] = record.tenant;
  doc["key"] = record.key_hex;
  doc["outcome"] = record.outcome;
  doc["shed"] = record.shed;
  doc["full_fidelity"] = record.full_fidelity;
  doc["deadline_ms"] = record.deadline_ms;
  doc["cost_ms"] = record.cost_ms;
  doc["actors"] = record.actors;
  doc["wall_ns"] = record.wall_ns;
  doc["wall_ns_capped"] = record.wall_ns_capped;
  doc["wall_ns_degraded"] = record.wall_ns_degraded;
  doc["response_hash"] = record.response_hash;
  doc["request"] = record.request;
  return doc.dump(0);
}

Result<TraceRecord> parse_trace_record(std::string_view text) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(text);
  } catch (const std::exception& e) {
    return parse_fail(std::string("trace record: ") + e.what());
  }
  if (doc.type() != obs::Json::Type::kObject) {
    return parse_fail("trace record: not a JSON object");
  }
  TraceRecord record;
  std::string error;
  const auto tick = want_int(doc, "tick_us", &error);
  if (!tick) return parse_fail(error);
  record.tick_us = *tick;
  const auto lane = want_int(doc, "lane", &error);
  if (!lane) return parse_fail(error);
  record.lane = *lane;
  const auto tenant = want_string(doc, "tenant", &error);
  if (!tenant) return parse_fail(error);
  record.tenant = *tenant;
  const auto key = want_string(doc, "key", &error);
  if (!key) return parse_fail(error);
  record.key_hex = *key;
  const auto outcome = want_string(doc, "outcome", &error);
  if (!outcome) return parse_fail(error);
  record.outcome = *outcome;
  const auto request = want_string(doc, "request", &error);
  if (!request) return parse_fail(error);
  record.request = *request;
  // The remaining fields default when absent, so the format can grow
  // without invalidating old traces.
  if (const obs::Json* v = doc.find("shed")) record.shed = v->as_bool();
  if (const obs::Json* v = doc.find("full_fidelity")) {
    record.full_fidelity = v->as_bool();
  }
  if (const obs::Json* v = doc.find("deadline_ms")) {
    record.deadline_ms = v->as_int();
  }
  if (const obs::Json* v = doc.find("cost_ms")) record.cost_ms = v->as_int();
  if (const obs::Json* v = doc.find("actors")) record.actors = v->as_int();
  if (const obs::Json* v = doc.find("wall_ns")) record.wall_ns = v->as_int();
  if (const obs::Json* v = doc.find("wall_ns_capped")) {
    record.wall_ns_capped = v->as_int();
  }
  if (const obs::Json* v = doc.find("wall_ns_degraded")) {
    record.wall_ns_degraded = v->as_int();
  }
  if (const obs::Json* v = doc.find("response_hash")) {
    record.response_hash = v->as_string();
  }
  if (record.tick_us < 0 || record.lane < 0) {
    return parse_fail("trace record: negative tick_us or lane");
  }
  return record;
}

std::unique_ptr<TraceWriter> TraceWriter::create(const std::string& path) {
  return std::unique_ptr<TraceWriter>(
      new TraceWriter(util::JournalWriter::create(path, header_json())));
}

void TraceWriter::append(const TraceRecord& record) {
  const std::string encoded = encode_trace_record(record);
  const std::lock_guard<std::mutex> lock(mu_);
  journal_.append(encoded);
  ++count_;
  obs::count("service.trace.records");
}

std::int64_t TraceWriter::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

Trace read_trace(const std::string& path) {
  const util::RecoveredJournal recovered = util::recover_journal(path);
  if (recovered.torn_tail) {
    throw CorruptJournalError(
        "trace '" + path +
        "': torn tail (recording was interrupted mid-append); a truncated "
        "trace cannot be replayed faithfully — re-record it");
  }
  if (recovered.records.empty()) {
    throw CorruptJournalError("trace '" + path + "': no header record");
  }
  obs::Json header;
  try {
    header = obs::Json::parse(recovered.records.front());
  } catch (const std::exception& e) {
    throw CorruptJournalError("trace '" + path + "': unreadable header (" +
                              e.what() + ")");
  }
  const obs::Json* schema = header.find("schema");
  if (schema == nullptr || schema->as_string() != kTraceSchema) {
    throw CorruptJournalError("trace '" + path +
                              "': not a sdfmem.trace.v1 journal");
  }
  Trace trace;
  trace.records.reserve(recovered.records.size() - 1);
  for (std::size_t i = 1; i < recovered.records.size(); ++i) {
    Result<TraceRecord> record = parse_trace_record(recovered.records[i]);
    if (!record.ok()) {
      throw ParseError("trace '" + path + "' record " + std::to_string(i) +
                       ": " + record.error().message);
    }
    trace.records.push_back(std::move(record.value()));
  }
  // stable_sort keeps append order for same-(tick, lane) records — the
  // byte-deterministic replay order the acceptance tests pin.
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.tick_us != b.tick_us) return a.tick_us < b.tick_us;
                     return a.lane < b.lane;
                   });
  return trace;
}

}  // namespace sdf::svc
