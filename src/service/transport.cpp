#include "service/transport.h"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/fault.h"
#include "util/status.h"

namespace sdf::svc {
namespace {

[[nodiscard]] sockaddr_un unix_addr(const std::string& path,
                                    std::string_view who) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw BadArgumentError(std::string(who) + ": socket path too long: " +
                           path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[nodiscard]] sockaddr_in loopback_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port > 0 ? static_cast<std::uint16_t>(port) : 0);
  return addr;
}

/// connect() with EINTR handled correctly. A blocking connect interrupted
/// by a signal keeps establishing in the background (POSIX); re-calling
/// connect() would yield a spurious EALREADY/EISCONN. Wait for the socket
/// to become writable, then read the real result from SO_ERROR.
[[nodiscard]] int connect_eintr(int fd, const sockaddr* addr,
                                socklen_t len) noexcept {
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINTR) return -1;
  for (;;) {
    pollfd p{fd, POLLOUT, 0};
    const int r = ::poll(&p, 1, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r > 0) break;
  }
  int err = 0;
  socklen_t elen = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

}  // namespace

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void ignore_sigpipe() noexcept { std::signal(SIGPIPE, SIG_IGN); }

bool send_all(int fd, std::string_view data) noexcept {
  if (fault::enabled() && fault::should_fail("svc_send_short")) {
    return false;  // injected: the peer vanished mid-write
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away; nothing sensible to do
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void send_all_or_throw(int fd, std::string_view data) {
  if (fault::enabled() && fault::should_fail("svc_send_short")) {
    throw IoError("client: send(): injected svc_send_short fault");
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("client: send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

int listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path, "serve");
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("serve: socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // replace a stale socket
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const std::string detail = std::strerror(errno);
    close_fd(fd);
    throw IoError("serve: cannot listen on " + path + ": " + detail);
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("serve: socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const std::string detail = std::strerror(errno);
    close_fd(fd);
    throw IoError("serve: cannot listen on loopback TCP: " + detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (bound_port != nullptr &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path, "client");
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("client: socket(): ") + std::strerror(errno));
  }
  if (connect_eintr(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) != 0) {
    const std::string detail = std::strerror(errno);
    close_fd(fd);
    throw IoError("client: cannot connect to " + path + ": " + detail);
  }
  return fd;
}

int connect_tcp(int port) {
  if (port <= 0) {
    throw BadArgumentError("client: invalid TCP port " +
                           std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("client: socket(): ") + std::strerror(errno));
  }
  const sockaddr_in addr = loopback_addr(port);
  if (connect_eintr(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) != 0) {
    const std::string detail = std::strerror(errno);
    close_fd(fd);
    throw IoError("client: cannot connect to 127.0.0.1:" +
                  std::to_string(port) + ": " + detail);
  }
  return fd;
}

int connect_endpoint(const Endpoint& ep) {
  if (!ep.socket_path.empty()) return connect_unix(ep.socket_path);
  if (ep.tcp_port > 0) return connect_tcp(ep.tcp_port);
  throw BadArgumentError("client: no endpoint (need --socket or --port)");
}

ReadOutcome FrameReader::read(int fd, Frame* out, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      timeout_ms < 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(timeout_ms);
  char chunk[65536];
  for (;;) {
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(buffer_, out, &consumed);
    if (st == DecodeStatus::kOk) {
      buffer_.erase(0, consumed);
      return ReadOutcome::kFrame;
    }
    if (st != DecodeStatus::kNeedMore) {
      last_ = st;
      return ReadOutcome::kBadFrame;
    }
    int wait = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return ReadOutcome::kTimeout;
      wait = static_cast<int>(left);
    }
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, wait);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kClosed;
    }
    if (r == 0) return ReadOutcome::kTimeout;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kClosed;
    }
    if (n == 0) return ReadOutcome::kClosed;
    if (fault::enabled() && fault::should_fail("svc_recv_torn")) {
      // Injected: the stream tears here — whatever was buffered is a
      // torn frame, exactly like a peer dying mid-send.
      buffer_.clear();
      return ReadOutcome::kClosed;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace sdf::svc
