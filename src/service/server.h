// sdfmemd: the long-running compile daemon (docs/SERVICE.md).
//
// Request lifecycle:
//
//   accept -> frame decode -> request parse -> tenant resolve
//     -> graph canonicalize
//     -> cache lookup ──hit──────────────────────────┐
//     -> weighted-fair admission (service/qos.h)     │
//          ──over share──> overloaded error          │
//     -> compile on util/thread_pool                 │
//     -> cache insert (full fidelity + under quota)  │
//     -> response frame <──────────────────────────────┘
//
// Concurrency model: the accept loop runs on the caller of run(); each
// connection gets its own reader thread (connections are cheap and block
// on I/O), while compiles fan out on the shared util::ThreadPool — the
// expensive work is bounded by the worker count, never by the connection
// count.
//
// Multi-tenant admission (docs/TENANCY.md): every compile that misses
// the cache carries a cost — its requested deadline_ms, or
// `default_cost_ms` when it has none. The total capacity
// `queue_capacity * default_cost_ms` is split between the registered
// tenants by weight; a request whose admission would push ITS tenant's
// backlog past that tenant's share is rejected with a typed
// `overloaded` diagnostic (ErrorCode::kOverloaded, exit code 24) —
// backpressure scoped to the tenant that caused it. An unregistered
// tenant id is a typed kUnknownTenant (exit code 25). Admitted requests
// queue per tenant and are scheduled by start-time fair queuing with
// per-tenant token-bucket throttling (qos::AdmissionController); the
// slot count equals the compile worker count.
//
// Load shedding is per tenant and reuses the pipeline's degradation
// ladder (pipeline/compile.h): at >= 1/2 of the tenant's share the loop
// optimizer is capped at kDppo, at >= 3/4 it is forced to kFlat and the
// ordering heuristic to the plain topological sort. Shed-degraded
// responses are served but never cached, so cache entries are always
// full-fidelity and hot responses stay byte-identical to an unloaded
// cold compile — for every tenant, since responses never embed the
// tenant id and the cache is shared.
//
// Graceful drain (util/shutdown.h): once SIGINT/SIGTERM sets the
// shutdown flag (or stop() is called), the accept loop closes the
// listeners, connection threads finish the requests already received and
// exit, the pool drains, and run() returns. Every cache insert was
// already durable when its response left, so there is nothing to flush —
// the index survives even SIGKILL. The CLI maps a signal-initiated drain
// to exit code 23 (kInterrupted).
//
// Background cache scrubbing (docs/RELIABILITY.md "Cache scrubber"):
// with `scrub_interval_ms > 0` a housekeeping thread CRC-walks the
// object store between intervals, quarantines entries whose bytes no
// longer verify (service/cache.h scrub_once), and drops their hot-tier
// copies — silent disk corruption becomes a clean miss followed by a
// recompile, never a served wrong answer.
//
// Adaptive control (docs/CONTROL.md): with `--control-interval N` a
// housekeeping thread ticks the feedback controller (service/control.h)
// every N ms over that interval's delta metrics; it replaces the static
// `--cost-ms` admission estimate with the measured per-size-bucket EWMA
// and nudges the ladder trip points and per-tenant share boosts within
// hard clamps. `--record <file>` journals every request as a
// sdfmem.trace.v1 record (service/trace.h) for deterministic replay.
//
// Telemetry (docs/OBSERVABILITY.md): service.requests,
// service.cache.{hits,misses,inserts,corrupt}, the scrubber family
// service.cache.{scrub_passes,scrub_quarantined,write_failures},
// service.overloaded,
// service.shed_degraded, service.errors, gauge service.queue_depth, the
// latency histogram counters service.latency_le_us.<bound>, and the
// per-tenant family service.tenant.<name>.{requests,cache_hits,
// cache_misses,overloaded,shed_degraded,throttle_wait_us,cache_inserts,
// cache_quota_denied} plus service.tenant.unknown (cardinality is
// bounded by the registry: unregistered names never mint counters).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "pipeline/governor.h"
#include "service/cache.h"
#include "service/control.h"
#include "service/hot_tier.h"
#include "service/protocol.h"
#include "service/qos.h"
#include "service/trace.h"
#include "util/thread_pool.h"

namespace sdf::svc {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener. An
  /// existing socket file at the path is replaced (stale-daemon cleanup).
  std::string socket_path;
  /// Loopback TCP port; 0 disables the TCP listener, negative asks for an
  /// ephemeral port (read back via Server::tcp_port()).
  int tcp_port = 0;
  /// Result-cache directory; empty runs without a cache.
  std::string cache_dir;
  /// In-memory LRU hot tier over the disk cache (service/hot_tier.h);
  /// bytes of response payloads kept resident. 0 disables the tier.
  /// Only meaningful with a cache_dir — the hot tier fronts the store.
  std::int64_t hot_tier_bytes = 32ll << 20;
  /// Period of the background cache scrubber; <= 0 disables it. Only
  /// meaningful with a cache_dir.
  int scrub_interval_ms = 0;
  /// Stable identity reported in stats_json() ("worker_id"); the fleet
  /// router health-checks it against its configuration so a socket that
  /// was taken over by a different worker is caught, not routed to.
  /// Empty (the default) omits the field.
  std::string worker_id;
  /// Compile worker threads (util::ThreadPool::resolve_jobs semantics).
  int jobs = 1;
  /// Admission bound: capacity is queue_capacity * default_cost_ms of
  /// backlog. 0 sheds every cache miss (useful for tests and for a
  /// read-only replica serving only cached results).
  int queue_capacity = 16;
  /// Cost charged for a request that carries no deadline, in ms.
  std::int64_t default_cost_ms = 1000;
  /// Server-side ceiling applied to every compile; a request's own
  /// budget can only tighten it.
  ResourceBudget budget;
  /// Tenant registry (docs/TENANCY.md). The default holds only the
  /// `public` tenant, which reproduces the single-queue behaviour;
  /// `--tenants-config` replaces it with a parsed sdfmem.tenants.v1
  /// document.
  qos::TenantRegistry tenants;
  /// Monitoring interval of the adaptive controller (docs/CONTROL.md);
  /// <= 0 disables the control loop entirely (`--control-interval`).
  int control_interval_ms = 0;
  /// Master switch (`--control off`): false pins every knob at its
  /// static default even when an interval is configured. With the
  /// controller off the cost model is still *recorded* (so `stats` can
  /// show how wrong --cost-ms is) but never *used* for admission.
  bool control = true;
  /// Controller thresholds/clamps; the defaults are the documented
  /// control law.
  ctl::ControllerConfig controller;
  /// When nonempty, journal every compile request to this sdfmem.trace.v1
  /// file (`serve --record`, service/trace.h). Refuses to overwrite.
  std::string record_path;
};

/// Upper bucket bounds (microseconds) of the request-latency histogram;
/// one overflow bucket follows.
inline constexpr std::array<std::int64_t, 8> kLatencyBucketUs = {
    100, 300, 1000, 3000, 10000, 30000, 100000, 300000};

struct LatencyHistogram {
  std::array<std::int64_t, kLatencyBucketUs.size() + 1> buckets{};
  std::int64_t count = 0;
  std::int64_t sum_us = 0;

  void record(std::int64_t us) noexcept;
  /// Upper-bound estimate of the p-th percentile (p in [0, 100]); 0 when
  /// empty. Resolution is the bucket granularity.
  [[nodiscard]] std::int64_t percentile_us(double p) const noexcept;
  /// Elementwise difference against an earlier snapshot of the same
  /// histogram — the reset-on-snapshot window view (docs/CONTROL.md).
  [[nodiscard]] LatencyHistogram delta_since(
      const LatencyHistogram& earlier) const noexcept;
};

/// Per-tenant slice of the server counters. Only registered tenants get
/// an entry, so a client cannot mint unbounded stats keys.
struct TenantStats {
  std::int64_t requests = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;
  std::int64_t throttle_wait_us = 0;  ///< total time queued before grant
  std::int64_t cache_inserts = 0;
  std::int64_t cache_bytes = 0;       ///< bytes inserted (quota basis)
  std::int64_t quota_denied = 0;      ///< inserts skipped: over quota
  LatencyHistogram latency;
};

struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t responses_ok = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;  ///< served, but at a load-capped tier
  std::int64_t errors = 0;         ///< error responses sent
  std::int64_t bad_frames = 0;     ///< connections dropped on bad framing
  std::int64_t unknown_tenant = 0; ///< requests naming no registered tenant
  std::int64_t peer_lookups = 0;   ///< fleet peer-lookup requests served
  std::int64_t peer_lookup_hits = 0;
  std::int64_t peer_inserts = 0;   ///< fleet warm inserts accepted
  std::int64_t connections = 0;
  std::int64_t max_queue_depth = 0;
  /// Durable cache inserts that failed (disk full, injected fault); the
  /// response was still served, just not cached.
  std::int64_t cache_write_failures = 0;
  LatencyHistogram latency;
  std::map<std::string, TenantStats> tenants;
};

/// One monitoring interval's delta over the server stats — what the
/// controller consumes and what `stats_json()` exposes as "window".
/// Every field is "since the previous snapshot", never a lifetime total.
struct ControlWindow {
  std::int64_t window_ms = 0;
  std::int64_t requests = 0;
  std::int64_t responses_ok = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;
  std::int64_t errors = 0;
  LatencyHistogram latency;  ///< delta histogram (window percentiles)
  std::map<std::string, std::int64_t> tenant_requests;
  std::map<std::string, std::int64_t> tenant_overloaded;
  /// service.* counter deltas (obs::CounterWindow); empty when the
  /// telemetry session is disabled.
  std::map<std::string, std::int64_t> counters;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners. Throws IoError when none can be
  /// bound (and BadArgumentError when none is configured).
  void start();

  /// Accept loop; returns after a graceful drain once stop() was called
  /// or the process shutdown flag (util/shutdown.h) is set. start() must
  /// have succeeded.
  void run();

  /// Requests a drain (idempotent, callable from any thread or from a
  /// signal-adjacent context).
  void stop() noexcept;

  /// The bound TCP port (after start()); 0 when the TCP listener is off.
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  [[nodiscard]] ServerStats stats() const;

  /// Live stats as the kStatsResponse JSON document.
  [[nodiscard]] std::string stats_json() const;

  /// Whether the adaptive controller is live (`control` master switch
  /// AND a positive interval).
  [[nodiscard]] bool control_enabled() const noexcept {
    return options_.control && options_.control_interval_ms > 0;
  }

  /// One controller interval: snapshot the window, tick the controller,
  /// apply the knobs to admission, emit service.control.* telemetry.
  /// The background control loop calls this every interval; tests and
  /// the replay harness call it directly for deterministic stepping.
  ctl::Decision control_tick();

 private:
  [[nodiscard]] bool stop_requested() const noexcept;
  void serve_connection(int fd);
  void handle_frame(int fd, const Frame& frame);
  void handle_compile(int fd, std::string_view payload);
  void handle_peer_lookup(int fd, std::string_view payload);
  void handle_peer_insert(int fd, std::string_view payload);
  /// Tiered read: hot tier first, then the verified disk read (which
  /// also warms the hot tier). nullopt when both miss or no cache.
  [[nodiscard]] std::optional<std::string> cache_fetch(std::uint64_t key);
  /// Tiered write: durable disk insert plus hot-tier population. False
  /// when the durable insert failed (counted; the hot tier is skipped —
  /// it must only hold what the disk tier vouches for).
  bool cache_store(std::uint64_t key, std::string_view payload);
  /// Background scrubber body (see the file comment).
  void scrub_loop();
  /// Background controller body: control_tick() every interval.
  void control_loop();
  /// Advances the reset-on-snapshot window (mutable state, mu_ held) and
  /// returns the delta. Also refreshes last_window_ for stats_json().
  ControlWindow snapshot_window_locked() const;
  /// Appends to the request trace, swallowing (but counting) IO errors —
  /// recording must never fail a request.
  void record_trace(const TraceRecord& record);
  void send_frame(int fd, FrameKind kind, std::string_view payload);
  void send_error(int fd, const Diagnostic& diag);
  /// Records into the global histogram always, and into the tenant's
  /// when `tenant` is registered (unknown ids must not mint entries).
  void record_latency(const std::string& tenant, std::int64_t us);
  void note_queue_depth();

  ServerOptions options_;
  std::optional<ResultCache> cache_;
  std::optional<HotTier> hot_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<qos::AdmissionController> admission_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::thread scrub_;
  std::thread control_;

  mutable std::mutex mu_;  ///< stats + cost model + controller + window
  ServerStats stats_;
  ctl::CostModel cost_model_;
  ctl::Controller controller_;
  ctl::Decision last_decision_;
  /// Reset-on-snapshot window state; mutable because stats_json() (a
  /// const read in spirit) advances the window when no control loop is
  /// doing so.
  mutable ServerStats window_base_;
  mutable ControlWindow last_window_;
  mutable obs::CounterWindow counter_window_;
  mutable std::chrono::steady_clock::time_point window_start_;
  std::chrono::steady_clock::time_point trace_start_;
  std::unique_ptr<TraceWriter> recorder_;
  std::int64_t trace_errors_ = 0;  ///< append failures (guarded by mu_)

  /// Budgeted compiles serialize on this: the ResourceGovernor scope is
  /// process-global, so two concurrent scopes would cross-restore.
  /// Budget-free compiles (the common cached-tool traffic) stay fully
  /// parallel.
  std::mutex governed_mu_;
};

}  // namespace sdf::svc
