// sdfmemd: the long-running compile daemon (docs/SERVICE.md).
//
// Request lifecycle:
//
//   accept -> frame decode -> request parse -> graph canonicalize
//     -> cache lookup ──hit──────────────────────────┐
//     -> admission control ──shed──> overloaded error│
//     -> compile on util/thread_pool                 │
//     -> cache insert (full-fidelity results only)   │
//     -> response frame <──────────────────────────────┘
//
// Concurrency model: the accept loop runs on the caller of run(); each
// connection gets its own reader thread (connections are cheap and block
// on I/O), while compiles fan out on the shared util::ThreadPool — the
// expensive work is bounded by the worker count, never by the connection
// count.
//
// Admission control and load shedding: every compile that misses the
// cache carries a cost — its requested deadline_ms, or
// `default_cost_ms` when it has none. Costs of queued-or-running
// compiles accumulate into a backlog; the capacity is
// `queue_capacity * default_cost_ms`. A request whose admission would
// push the backlog past capacity is rejected with a typed `overloaded`
// diagnostic (ErrorCode::kOverloaded, exit code 24) — backpressure the
// client can see and retry. Before that hard limit, load reuses the
// pipeline's degradation ladder (pipeline/compile.h): at >= 1/2 of
// capacity the loop optimizer is capped at kDppo, at >= 3/4 it is forced
// to kFlat and the ordering heuristic to the plain topological sort.
// Shed-degraded responses are served but never cached, so cache entries
// are always full-fidelity and hot responses stay byte-identical to an
// unloaded cold compile.
//
// Graceful drain (util/shutdown.h): once SIGINT/SIGTERM sets the
// shutdown flag (or stop() is called), the accept loop closes the
// listeners, connection threads finish the requests already received and
// exit, the pool drains, and run() returns. Every cache insert was
// already durable when its response left, so there is nothing to flush —
// the index survives even SIGKILL. The CLI maps a signal-initiated drain
// to exit code 23 (kInterrupted).
//
// Telemetry (docs/OBSERVABILITY.md): service.requests,
// service.cache.{hits,misses,inserts,corrupt}, service.overloaded,
// service.shed_degraded, service.errors, gauge service.queue_depth, and
// the latency histogram counters service.latency_le_us.<bound>.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/governor.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "util/thread_pool.h"

namespace sdf::svc {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener. An
  /// existing socket file at the path is replaced (stale-daemon cleanup).
  std::string socket_path;
  /// Loopback TCP port; 0 disables the TCP listener, negative asks for an
  /// ephemeral port (read back via Server::tcp_port()).
  int tcp_port = 0;
  /// Result-cache directory; empty runs without a cache.
  std::string cache_dir;
  /// Compile worker threads (util::ThreadPool::resolve_jobs semantics).
  int jobs = 1;
  /// Admission bound: capacity is queue_capacity * default_cost_ms of
  /// backlog. 0 sheds every cache miss (useful for tests and for a
  /// read-only replica serving only cached results).
  int queue_capacity = 16;
  /// Cost charged for a request that carries no deadline, in ms.
  std::int64_t default_cost_ms = 1000;
  /// Server-side ceiling applied to every compile; a request's own
  /// budget can only tighten it.
  ResourceBudget budget;
};

/// Upper bucket bounds (microseconds) of the request-latency histogram;
/// one overflow bucket follows.
inline constexpr std::array<std::int64_t, 8> kLatencyBucketUs = {
    100, 300, 1000, 3000, 10000, 30000, 100000, 300000};

struct LatencyHistogram {
  std::array<std::int64_t, kLatencyBucketUs.size() + 1> buckets{};
  std::int64_t count = 0;
  std::int64_t sum_us = 0;

  void record(std::int64_t us) noexcept;
  /// Upper-bound estimate of the p-th percentile (p in [0, 100]); 0 when
  /// empty. Resolution is the bucket granularity.
  [[nodiscard]] std::int64_t percentile_us(double p) const noexcept;
};

struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t responses_ok = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t overloaded = 0;
  std::int64_t shed_degraded = 0;  ///< served, but at a load-capped tier
  std::int64_t errors = 0;         ///< error responses sent
  std::int64_t bad_frames = 0;     ///< connections dropped on bad framing
  std::int64_t connections = 0;
  std::int64_t max_queue_depth = 0;
  LatencyHistogram latency;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners. Throws IoError when none can be
  /// bound (and BadArgumentError when none is configured).
  void start();

  /// Accept loop; returns after a graceful drain once stop() was called
  /// or the process shutdown flag (util/shutdown.h) is set. start() must
  /// have succeeded.
  void run();

  /// Requests a drain (idempotent, callable from any thread or from a
  /// signal-adjacent context).
  void stop() noexcept;

  /// The bound TCP port (after start()); 0 when the TCP listener is off.
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  [[nodiscard]] ServerStats stats() const;

  /// Live stats as the kStatsResponse JSON document.
  [[nodiscard]] std::string stats_json() const;

 private:
  struct Admission {
    bool admitted = false;
    bool rejected_overloaded = false;
    std::int64_t cost_ms = 0;
    /// Load-shed caps (nullopt = request untouched).
    std::optional<LoopOptimizer> optimizer_cap;
    bool force_topo_order = false;
  };

  [[nodiscard]] bool stop_requested() const noexcept;
  void serve_connection(int fd);
  void handle_frame(int fd, const Frame& frame);
  void handle_compile(int fd, std::string_view payload);
  [[nodiscard]] Admission admit(std::int64_t deadline_ms);
  void release(const Admission& admission);
  void send_frame(int fd, FrameKind kind, std::string_view payload);
  void send_error(int fd, const Diagnostic& diag);
  void record_latency(std::int64_t us);

  ServerOptions options_;
  std::optional<ResultCache> cache_;
  std::unique_ptr<util::ThreadPool> pool_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  mutable std::mutex mu_;        ///< stats + admission backlog
  ServerStats stats_;
  std::int64_t backlog_ms_ = 0;
  std::int64_t queue_depth_ = 0;

  /// Budgeted compiles serialize on this: the ResourceGovernor scope is
  /// process-global, so two concurrent scopes would cross-restore.
  /// Budget-free compiles (the common cached-tool traffic) stay fully
  /// parallel.
  std::mutex governed_mu_;
};

}  // namespace sdf::svc
