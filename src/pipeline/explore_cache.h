// Keyed memo cache for design-space exploration.
//
// The explore sweep evaluates |orders| x |optimizers| x |budgets| x
// {merge} design points, but only |orders| lexical orderings and
// |orders| x |optimizers| loop-DP results are actually distinct — the
// appearance-budget / merging / fit-order variants all start from the same
// compiled base. This cache computes each ordering and each base compile
// exactly once and shares it (by const reference) across every variant and
// every worker thread.
//
// Thread safety: each slot is guarded by a std::once_flag, so concurrent
// lookups of the same key block until the single computation finishes and
// then all observe the same value. Returned references stay valid for the
// cache's lifetime. Hit/miss counts are deterministic for a fixed set of
// lookups regardless of thread count or interleaving: misses == distinct
// keys computed, hits == lookups - misses (a caller that merely *waited*
// on another thread's computation still counts the lookup as a hit — the
// work was not repeated).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "pipeline/compile.h"
#include "sdf/graph.h"

namespace sdf {

class ExploreCache {
 public:
  /// Borrows `g`; the graph must outlive the cache.
  explicit ExploreCache(const Graph& g) : graph_(g) {}

  ExploreCache(const ExploreCache&) = delete;
  ExploreCache& operator=(const ExploreCache&) = delete;

  /// The lexical ordering for `order`, computed once per heuristic.
  const std::vector<ActorId>& lexorder(OrderHeuristic order);

  /// The compiled base (schedule, DP estimate, lifetimes, allocation) for
  /// (order, optimizer), computed once via the cached lexorder and shared
  /// const across all budget/merging/fit-order variants.
  const CompileResult& base(OrderHeuristic order, LoopOptimizer optimizer);

  /// Lookups that found (or waited on) an already-keyed computation.
  [[nodiscard]] std::int64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Lookups that ran the computation (== distinct keys touched).
  [[nodiscard]] std::int64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kOrders = 4;      ///< OrderHeuristic values
  static constexpr std::size_t kOptimizers = 4;  ///< LoopOptimizer values

  struct OrderSlot {
    std::once_flag once;
    std::vector<ActorId> value;
  };
  struct BaseSlot {
    std::once_flag once;
    CompileResult value;
  };

  const Graph& graph_;
  OrderSlot orders_[kOrders];
  BaseSlot bases_[kOrders][kOptimizers];
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
};

}  // namespace sdf
