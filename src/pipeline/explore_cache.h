// Keyed memo cache for design-space exploration.
//
// The explore sweep evaluates |orders| x |optimizers| x |budgets| x
// {merge} design points, but only |orders| lexical orderings and
// |orders| x |optimizers| loop-DP results are actually distinct — the
// appearance-budget / merging / fit-order variants all start from the same
// compiled base. This cache computes each ordering and each base compile
// exactly once and shares it (by const reference) across every variant and
// every worker thread.
//
// DP-base slabs: neighboring explore points that share a lexical ordering
// also share the DP's SplitCosts oracle (prefix squares + the lower
// triangle of range-gcds). The cache keeps one heap-resident slab per
// distinct ordering, keyed by an FNV-1a hash over the ordering bytes, and
// threads it into each base compile via CompileOptions::split_costs. Slab
// bytes are charged against the installed ResourceGovernor's dp_mem
// budget; under pressure the oldest slabs are evicted (in-flight compiles
// hold shared_ptr references, so eviction never invalidates a user).
//
// Thread safety: each slot is guarded by a std::once_flag, so concurrent
// lookups of the same key block until the single computation finishes and
// then all observe the same value. Returned references stay valid for the
// cache's lifetime. Hit/miss counts are deterministic for a fixed set of
// lookups regardless of thread count or interleaving: misses == distinct
// keys computed, hits == lookups - misses (a caller that merely *waited*
// on another thread's computation still counts the lookup as a hit — the
// work was not repeated). Slab hit/miss counts are deterministic the same
// way because slab construction happens inside the registry mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pipeline/compile.h"
#include "sched/dppo.h"
#include "sdf/graph.h"

namespace sdf {

class ResourceGovernor;  // pipeline/governor.h

class ExploreCache {
 public:
  /// Borrows `g`; the graph must outlive the cache. `share_dp_bases`
  /// toggles the SplitCosts slab registry (ExploreOptions::share_dp_bases).
  explicit ExploreCache(const Graph& g, bool share_dp_bases = true)
      : graph_(g), share_dp_bases_(share_dp_bases) {}
  /// Releases any slab bytes still charged to their governors.
  ~ExploreCache();

  ExploreCache(const ExploreCache&) = delete;
  ExploreCache& operator=(const ExploreCache&) = delete;

  /// The lexical ordering for `order`, computed once per heuristic.
  const std::vector<ActorId>& lexorder(OrderHeuristic order);

  /// The compiled base (schedule, DP estimate, lifetimes, allocation) for
  /// (order, optimizer), computed once via the cached lexorder and shared
  /// const across all budget/merging/fit-order variants.
  const CompileResult& base(OrderHeuristic order, LoopOptimizer optimizer);

  /// Lookups that found (or waited on) an already-keyed computation.
  [[nodiscard]] std::int64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Lookups that ran the computation (== distinct keys touched).
  [[nodiscard]] std::int64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Slab registry telemetry (published as dp.arena.slab_* by explore).
  [[nodiscard]] std::int64_t slab_hits() const noexcept {
    return slab_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t slab_misses() const noexcept {
    return slab_misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t slab_evictions() const noexcept {
    return slab_evictions_.load(std::memory_order_relaxed);
  }
  /// Slabs built but not retained (would not fit the dp_mem budget even
  /// after evicting everything else).
  [[nodiscard]] std::int64_t slab_skips() const noexcept {
    return slab_skips_.load(std::memory_order_relaxed);
  }
  /// Live registry bytes (charged against the governor when one is
  /// installed).
  [[nodiscard]] std::int64_t slab_bytes() const noexcept {
    return slab_bytes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kOrders = 4;      ///< OrderHeuristic values
  static constexpr std::size_t kOptimizers = 4;  ///< LoopOptimizer values

  struct OrderSlot {
    std::once_flag once;
    std::vector<ActorId> value;
  };
  struct BaseSlot {
    std::once_flag once;
    CompileResult value;
  };
  /// One retained slab; `charged` bytes were charged to `governor` (null
  /// when the slab was built ungoverned).
  struct Slab {
    std::uint64_t key = 0;
    std::shared_ptr<const SplitCosts> costs;
    std::int64_t charged = 0;
    ResourceGovernor* governor = nullptr;
  };

  /// The shared slab for `ord` (built on demand, inside the registry
  /// mutex for deterministic counters); nullptr when sharing is off.
  std::shared_ptr<const SplitCosts> dp_base_slab(
      const std::vector<ActorId>& ord);
  void evict_locked(std::size_t index);

  const Graph& graph_;
  const bool share_dp_bases_;
  OrderSlot orders_[kOrders];
  BaseSlot bases_[kOrders][kOptimizers];
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};

  std::mutex slab_mutex_;
  std::vector<Slab> slabs_;  ///< insertion order == eviction order
  std::atomic<std::int64_t> slab_hits_{0};
  std::atomic<std::int64_t> slab_misses_{0};
  std::atomic<std::int64_t> slab_evictions_{0};
  std::atomic<std::int64_t> slab_skips_{0};
  std::atomic<std::int64_t> slab_bytes_{0};
};

}  // namespace sdf
