#include "pipeline/explore.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "alloc/first_fit.h"
#include "alloc/intersection_graph.h"
#include "lifetime/schedule_tree.h"
#include "merge/buffer_merge.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "pipeline/explore_cache.h"
#include "sched/nappearance.h"
#include "sched/simulator.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sdf {
namespace {

/// Canonical enumeration order of the sweep; the reduction emits points in
/// exactly this nesting, so parallel runs reproduce the serial output.
constexpr OrderHeuristic kOrders[] = {OrderHeuristic::kApgan,
                                      OrderHeuristic::kRpmc,
                                      OrderHeuristic::kRpmcMultistart};
constexpr LoopOptimizer kOptimizers[] = {LoopOptimizer::kSdppo,
                                         LoopOptimizer::kDppo,
                                         LoopOptimizer::kFlat};
constexpr std::size_t kNumOrders = std::size(kOrders);
constexpr std::size_t kNumOptimizers = std::size(kOptimizers);

// Fault-context salts: every logical unit of the sweep (warm-order i,
// warm-base i, point task i, retry attempt, watchdog requeue) gets a
// context key that depends only on its enumeration index, never on which
// worker runs it — injected faults fire at the same unit for any `jobs`,
// keeping the sweep byte-identical. Retry attempts get their own context
// (kRetrySalt + (i << 5) + attempt) so each attempt re-draws the fault
// decision: `explore_point:n` with n > 1 then behaves like a transient
// fault, n == 1 like a persistent one.
constexpr std::uint64_t kWarmOrderSalt = 0x1000000;
constexpr std::uint64_t kWarmBaseSalt = 0x2000000;
constexpr std::uint64_t kPointSalt = 0x3000000;
constexpr std::uint64_t kRetrySalt = 0x4000000;
constexpr std::uint64_t kWatchdogSalt = 0x5000000;

/// Retry attempts above this would collide in the kRetrySalt keying.
constexpr int kMaxRetries = 30;

/// Shared-memory size of a schedule: lifetimes + best-of-two first-fit
/// orders, optionally after CBP merging.
std::int64_t shared_size_of(const Graph& g, const Repetitions& q,
                            const Schedule& schedule, bool merge) {
  const ScheduleTree tree(g, schedule);
  std::vector<BufferLifetime> lifetimes = extract_lifetimes(g, q, tree);
  IntersectionGraph wig;
  if (merge) {
    const MergeResult merged =
        merge_buffers(g, tree, lifetimes, cbp_all_consuming(g));
    lifetimes = merged_lifetimes(merged);
    wig = build_intersection_graph_generic(lifetimes);
  } else {
    wig = build_intersection_graph(tree, lifetimes);
  }
  return std::min(
      first_fit(wig, lifetimes, FirstFitOrder::kByDuration).total_size,
      first_fit(wig, lifetimes, FirstFitOrder::kByStartTime).total_size);
}

/// One independent unit of the fan-out: everything downstream of the
/// memoized base compile for a fixed (order, optimizer, budget).
struct TaskSpec {
  OrderHeuristic order;
  LoopOptimizer optimizer;
  std::int64_t budget;
};

/// A design point plus the schedule that produced it (kept out of
/// DesignPoint so the reduction can decide what to retain).
struct Evaluated {
  DesignPoint point;
  Schedule schedule;
};

/// Evaluates the 0..2 design points of one task, reading only immutable
/// inputs and the (computed-once) cache — safe from any worker thread.
std::vector<Evaluated> evaluate_task(const Graph& g, const Repetitions& q,
                                     const CodeSizeModel& model,
                                     bool try_merging, ExploreCache& cache,
                                     const TaskSpec& task) {
  std::vector<Evaluated> out;
  const CompileResult& base = cache.base(task.order, task.optimizer);

  Schedule schedule = base.schedule;
  std::string suffix;
  if (task.budget > 0) {
    const NAppearanceResult relaxed =
        relax_appearances(g, q, base.schedule, task.budget);
    if (relaxed.rewrites == 0) return out;  // same point as budget 0
    schedule = relaxed.schedule;
    suffix = "+nap" + std::to_string(task.budget);
  }
  // n-appearance schedules are no longer SAS; the lifetime pipeline
  // requires single appearances, so those points report the non-shared
  // cost as their memory (the honest implementable number without
  // per-instance lifetime support).
  const bool sas = schedule.is_single_appearance(g.num_actors());
  for (const bool merge : {false, true}) {
    if (merge && (!try_merging || !sas)) continue;
    DesignPoint point;
    point.strategy = std::string(order_name(task.order)) + "+" +
                     std::string(optimizer_name(task.optimizer)) + suffix +
                     (merge ? "+merge" : "");
    point.degraded_from = base.degradation_path();
    point.code_size = inline_code_size(schedule, model);
    point.nonshared_memory = simulate(g, schedule).buffer_memory;
    point.shared_memory = sas ? shared_size_of(g, q, schedule, merge)
                              : point.nonshared_memory;
    out.push_back(Evaluated{std::move(point), schedule});
    if (!sas) break;  // merge loop meaningless without lifetimes
  }
  return out;
}

}  // namespace

ExploreResult explore_designs(const Graph& g, const ExploreOptions& options) {
  const obs::Span span("pipeline.explore");
  const auto wall_start = std::chrono::steady_clock::now();

  CodeSizeModel model = options.model;
  if (model.actor_size.empty()) model = CodeSizeModel::uniform(g, 10);
  const Repetitions q = repetitions_vector(g);

  std::vector<TaskSpec> tasks;
  tasks.reserve(kNumOrders * kNumOptimizers *
                options.appearance_budgets.size());
  for (const OrderHeuristic order : kOrders) {
    for (const LoopOptimizer optimizer : kOptimizers) {
      for (const std::int64_t budget : options.appearance_budgets) {
        tasks.push_back(TaskSpec{order, optimizer, budget});
      }
    }
  }

  // Per-task slot, pre-sized so workers never touch shared state. A task
  // is either restored from a prior run's journal (outcome used verbatim,
  // schedules re-parsed from their printed form) or freshly evaluated
  // (live Schedule objects kept aside in `schedules`).
  struct TaskSlot {
    TaskOutcome outcome;
    std::vector<Schedule> schedules;  ///< aligned with outcome.points (fresh)
    bool restored = false;
    bool completed = false;  ///< false only when cancellation skipped it
  };
  std::vector<TaskSlot> slots(tasks.size());
  if (options.restore != nullptr) {
    for (const auto& [index, outcome] : *options.restore) {
      if (index >= slots.size()) continue;  // stale journal; batch validates
      slots[index].outcome = outcome;
      slots[index].restored = true;
      slots[index].completed = true;
    }
  }
  const bool any_fresh = std::any_of(slots.begin(), slots.end(),
                                     [](const TaskSlot& s) {
                                       return !s.restored;
                                     });

  ExploreCache cache(g, options.share_dp_bases);
  const int jobs = util::ThreadPool::resolve_jobs(options.jobs);
  std::optional<util::ThreadPool> pool;
  if (jobs > 1 && any_fresh) pool.emplace(jobs);
  util::ThreadPool* workers = pool ? &*pool : nullptr;

  // Phase 1+2: warm the memo cache breadth-first — all orderings, then all
  // loop-DP bases — so the point fan-out below never duplicates a compile
  // (and the cache miss count is exactly #orderings + #bases, independent
  // of thread count). A fully restored sweep skips the warm-up: nothing
  // below would compile anyway.
  if (any_fresh) {
    {
      const obs::Span warm("pipeline.explore.warm_orders");
      util::parallel_for(workers, kNumOrders, [&](std::size_t i) {
        const fault::Context fault_ctx(kWarmOrderSalt + i);
        (void)cache.lexorder(kOrders[i]);
      });
    }
    {
      const obs::Span warm("pipeline.explore.warm_bases");
      util::parallel_for(workers, kNumOrders * kNumOptimizers,
                         [&](std::size_t i) {
                           const fault::Context fault_ctx(kWarmBaseSalt + i);
                           (void)cache.base(kOrders[i / kNumOptimizers],
                                            kOptimizers[i % kNumOptimizers]);
                         });
    }
  }

  // One evaluation attempt under its own fault context. Returns nullopt on
  // a budget trip or injected fault (both surface as ResourceExhausted).
  const auto run_attempt =
      [&](std::uint64_t context_key, std::size_t i, const TaskSpec& spec)
      -> std::optional<std::vector<Evaluated>> {
    const fault::Context fault_ctx(context_key);
    try {
      if (fault::should_fail("explore_point")) {
        throw ResourceExhaustedError(
            "explore: injected fault at point task " + std::to_string(i));
      }
      return evaluate_task(g, q, model, options.try_merging, cache, spec);
    } catch (const ResourceExhaustedError&) {
      return std::nullopt;
    }
  };
  const auto cancelled_now = [&options]() {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // Phase 3: fan the independent design points out across the pool. Each
  // task writes its own pre-sized slot; no cross-task communication, so
  // the surviving points and every tally are identical for any `jobs`.
  // Attempt 0 runs in the same fault context as the pre-durability sweep
  // (kPointSalt + i), keeping default-option output byte-identical; each
  // retry and the watchdog requeue draw fresh contexts.
  if (any_fresh) {
    const obs::Span fan("pipeline.explore.points");
    const int max_retries =
        std::clamp(options.max_point_retries, 0, kMaxRetries);
    util::parallel_for(workers, tasks.size(), [&](std::size_t i) {
      TaskSlot& slot = slots[i];
      if (slot.restored) return;
      if (cancelled_now()) return;  // stop admitting; slot stays incomplete
      const obs::Span point_span("pipeline.explore.point");
      TaskOutcome& outcome = slot.outcome;

      std::optional<std::vector<Evaluated>> got =
          run_attempt(kPointSalt + i, i, tasks[i]);
      for (int attempt = 1; !got && attempt <= max_retries; ++attempt) {
        if (cancelled_now()) break;  // drain without spinning the backoff
        if (options.retry_backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              static_cast<std::int64_t>(options.retry_backoff_ms)
              << (attempt - 1)));
        }
        ++outcome.retries;
        got = run_attempt(kRetrySalt + (static_cast<std::uint64_t>(i) << 5) +
                              static_cast<std::uint64_t>(attempt),
                          i, tasks[i]);
      }
      if (!got && options.watchdog_requeue &&
          tasks[i].optimizer != LoopOptimizer::kFlat) {
        // Ladder floor: kFlat never consults the governor, so the requeued
        // attempt cannot trip the same deadline again.
        const TaskSpec degraded{tasks[i].order, LoopOptimizer::kFlat,
                                tasks[i].budget};
        got = run_attempt(kWatchdogSalt + i, i, degraded);
        if (got) outcome.requeued = true;
      }
      if (!got) {
        outcome.dropped = true;
      } else {
        outcome.points.reserve(got->size());
        slot.schedules.reserve(got->size());
        for (Evaluated& e : *got) {
          if (outcome.requeued) {
            e.point.degraded_from =
                std::string(optimizer_name(tasks[i].optimizer)) +
                ">watchdog";
          }
          TaskOutcome::Point p;
          p.strategy = e.point.strategy;
          p.code_size = e.point.code_size;
          p.shared_memory = e.point.shared_memory;
          p.nonshared_memory = e.point.nonshared_memory;
          p.degraded_from = e.point.degraded_from;
          if (options.on_task_done) p.schedule_text = e.schedule.to_string(g);
          outcome.points.push_back(std::move(p));
          slot.schedules.push_back(std::move(e.schedule));
        }
      }
      slot.completed = true;
      if (options.on_task_done) options.on_task_done(i, outcome);
    });
  }
  pool.reset();  // join workers before the single-threaded reduction

  // Deterministic reduction: concatenate per-task results in enumeration
  // order. Schedules are kept aside so `points` can stay schedule-free;
  // restored tasks re-hydrate theirs from the recorded printed form.
  ExploreResult result;
  result.tasks_total = static_cast<std::int64_t>(tasks.size());
  std::vector<Schedule> schedules;
  for (TaskSlot& slot : slots) {
    if (!slot.completed) {
      result.cancelled = true;
      continue;
    }
    const TaskOutcome& o = slot.outcome;
    if (slot.restored) ++result.tasks_restored;
    result.retries += o.retries;
    if ((o.dropped || o.requeued) && o.retries > 0) {
      ++result.retries_exhausted;
    }
    if (o.requeued) ++result.watchdog_requeues;
    if (o.dropped) ++result.points_dropped;
    for (std::size_t k = 0; k < o.points.size(); ++k) {
      const TaskOutcome::Point& p = o.points[k];
      DesignPoint point;
      point.strategy = p.strategy;
      point.code_size = p.code_size;
      point.shared_memory = p.shared_memory;
      point.nonshared_memory = p.nonshared_memory;
      point.degraded_from = p.degraded_from;
      result.points.push_back(std::move(point));
      if (slot.restored) {
        schedules.push_back(p.schedule_text.empty()
                                ? Schedule{}
                                : parse_schedule(g, p.schedule_text));
      } else {
        schedules.push_back(std::move(slot.schedules[k]));
      }
    }
  }
  if (result.points_dropped > 0) {
    obs::count("pipeline.explore.points_dropped", result.points_dropped);
  }
  if (result.retries > 0) {
    obs::count("pipeline.explore.retries", result.retries);
  }
  if (result.retries_exhausted > 0) {
    obs::count("pipeline.explore.retries_exhausted",
               result.retries_exhausted);
  }
  if (result.watchdog_requeues > 0) {
    obs::count("pipeline.explore.watchdog_requeues",
               result.watchdog_requeues);
  }
  if (result.tasks_restored > 0) {
    obs::count("pipeline.explore.tasks_restored", result.tasks_restored);
  }

  // Pareto: minimize both axes; dedupe identical (code, memory) pairs.
  for (DesignPoint& p : result.points) {
    p.pareto = true;
    for (const DesignPoint& other : result.points) {
      const bool dominates =
          (other.code_size <= p.code_size &&
           other.shared_memory <= p.shared_memory) &&
          (other.code_size < p.code_size ||
           other.shared_memory < p.shared_memory);
      if (dominates) {
        p.pareto = false;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const DesignPoint& p = result.points[i];
    if (!p.pareto) continue;
    const bool duplicate =
        std::any_of(result.frontier.begin(), result.frontier.end(),
                    [&](const DesignPoint& f) {
                      return f.code_size == p.code_size &&
                             f.shared_memory == p.shared_memory;
                    });
    if (duplicate) continue;
    result.frontier.push_back(p);
    result.frontier.back().schedule = schedules[i];
  }
  std::sort(result.frontier.begin(), result.frontier.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.code_size != b.code_size) {
                return a.code_size < b.code_size;
              }
              return a.shared_memory < b.shared_memory;
            });
  if (options.keep_point_schedules) {
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      result.points[i].schedule = std::move(schedules[i]);
    }
  }

  obs::count("pipeline.explore.points",
             static_cast<std::int64_t>(result.points.size()));
  obs::gauge("pipeline.explore.frontier_size",
             static_cast<std::int64_t>(result.frontier.size()));
  obs::count("pipeline.explore.cache_hit", cache.hits());
  obs::count("pipeline.explore.cache_miss", cache.misses());
  obs::count("dp.arena.slab_hits", cache.slab_hits());
  obs::count("dp.arena.slab_misses", cache.slab_misses());
  obs::count("dp.arena.slab_evictions", cache.slab_evictions());
  obs::count("dp.arena.slab_skips", cache.slab_skips());
  if (obs::enabled()) {
    obs::gauge("pipeline.explore.jobs", jobs);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (secs > 0.0) {
      obs::gauge("pipeline.explore.points_per_sec",
                 static_cast<std::int64_t>(
                     static_cast<double>(result.points.size()) / secs));
    }
  }
  return result;
}

}  // namespace sdf
